/** @file Unit tests for the instruction queue. */

#include <gtest/gtest.h>

#include "core/iq.hh"

namespace vpr
{
namespace
{

DynInst
alu(InstSeqNum seq)
{
    DynInst d;
    d.si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                           RegId::intReg(3));
    d.seq = seq;
    return d;
}

TEST(InstQueue, InsertKeepsAgeOrder)
{
    InstQueue iq(8);
    DynInst a = alu(1), b = alu(2), c = alu(3);
    iq.insert(&a);
    iq.insert(&c);
    // Re-insertion of an older instruction (write-back squash path).
    iq.insert(&b);
    ASSERT_EQ(iq.size(), 3u);
    EXPECT_EQ(iq.entries()[0]->seq, 1u);
    EXPECT_EQ(iq.entries()[1]->seq, 2u);
    EXPECT_EQ(iq.entries()[2]->seq, 3u);
}

TEST(InstQueue, RemoveSpecificEntry)
{
    InstQueue iq(8);
    DynInst a = alu(1), b = alu(2);
    iq.insert(&a);
    iq.insert(&b);
    iq.remove(&a);
    ASSERT_EQ(iq.size(), 1u);
    EXPECT_EQ(iq.entries()[0]->seq, 2u);
}

TEST(InstQueue, WakeupMatchesClassAndTag)
{
    InstQueue iq(8);
    DynInst a = alu(1);
    a.src[0].valid = true;
    a.src[0].cls = RegClass::Int;
    a.src[0].tag = 40;
    a.src[1].valid = true;
    a.src[1].cls = RegClass::Float;
    a.src[1].tag = 40;  // same tag number, different class!
    iq.insert(&a);

    EXPECT_EQ(iq.wakeup(RegClass::Int, 40, 7), 1u);
    EXPECT_TRUE(a.src[0].ready);
    EXPECT_EQ(a.src[0].tag, 7);      // captured the physical register
    EXPECT_FALSE(a.src[1].ready);    // FP operand untouched
}

TEST(InstQueue, WakeupIgnoresAlreadyReady)
{
    InstQueue iq(8);
    DynInst a = alu(1);
    a.src[0].valid = true;
    a.src[0].cls = RegClass::Int;
    a.src[0].tag = 40;
    a.src[0].ready = true;
    iq.insert(&a);
    EXPECT_EQ(iq.wakeup(RegClass::Int, 40, 9), 0u);
    EXPECT_EQ(a.src[0].tag, 40);
}

TEST(InstQueue, WakeupHitsAllWaiters)
{
    InstQueue iq(8);
    DynInst a = alu(1), b = alu(2);
    for (DynInst *d : {&a, &b}) {
        d->src[0].valid = true;
        d->src[0].cls = RegClass::Float;
        d->src[0].tag = 99;
        iq.insert(d);
    }
    EXPECT_EQ(iq.wakeup(RegClass::Float, 99, 3), 2u);
    EXPECT_TRUE(a.src[0].ready && b.src[0].ready);
}

TEST(InstQueue, SquashYoungerThanDropsTail)
{
    InstQueue iq(8);
    DynInst a = alu(1), b = alu(5), c = alu(9);
    iq.insert(&a);
    iq.insert(&b);
    iq.insert(&c);
    iq.squashYoungerThan(5);
    ASSERT_EQ(iq.size(), 2u);
    EXPECT_EQ(iq.entries().back()->seq, 5u);
    iq.squashYoungerThan(0);
    EXPECT_TRUE(iq.empty());
}

TEST(InstQueue, CapacityTracking)
{
    InstQueue iq(2);
    DynInst a = alu(1), b = alu(2);
    EXPECT_FALSE(iq.full());
    iq.insert(&a);
    iq.insert(&b);
    EXPECT_TRUE(iq.full());
}

TEST(InstQueueDeath, InsertIntoFullPanics)
{
    InstQueue iq(1);
    DynInst a = alu(1), b = alu(2);
    iq.insert(&a);
    EXPECT_DEATH(iq.insert(&b), "full IQ");
}

TEST(InstQueueDeath, DuplicateInsertPanics)
{
    InstQueue iq(4);
    DynInst a = alu(1), b = alu(2);
    iq.insert(&a);
    iq.insert(&b);
    DynInst dup = alu(1);
    EXPECT_DEATH(iq.insert(&dup), "duplicate IQ entry");
}

TEST(InstQueueDeath, RemoveAbsentPanics)
{
    InstQueue iq(4);
    DynInst a = alu(1);
    EXPECT_DEATH(iq.remove(&a), "not present");
}

} // namespace
} // namespace vpr
