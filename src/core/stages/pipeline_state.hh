/**
 * @file
 * The shared microarchitectural state of one core.
 *
 * PipelineState owns the structures that are genuinely shared between
 * stages in a real machine — ROB, IQ, LSQ, cache, functional units,
 * register/cache ports, the renamer — plus the global cycle counter and
 * sequence-number allocator. Stages receive a reference to it; purely
 * stage-to-stage signals travel through the latches in latches.hh
 * instead.
 */

#ifndef VPR_CORE_STAGES_PIPELINE_STATE_HH
#define VPR_CORE_STAGES_PIPELINE_STATE_HH

#include <memory>

#include "common/stats.hh"
#include "core/core_config.hh"
#include "core/iq.hh"
#include "core/lsq.hh"
#include "core/regfile_ports.hh"
#include "core/rob.hh"

namespace vpr
{

/** Shared structures and clocks of one core's pipeline. */
struct PipelineState
{
    PipelineState(TraceStream &stream, const CoreConfig &config);

    /** Per-cycle bookkeeping common to every stage; advances the clock. */
    void beginCycle();

    /** End-of-cycle occupancy sampling across the shared structures. */
    void sampleStats();

    /** Begin a measurement interval across the whole stats tree. */
    void resetStats();

    /**
     * Return every shared structure and clock to the constructed state
     * (simulator reuse between grid cells). The renamer is reinitialised
     * in place — the stats tree holds pointers into it, so it is never
     * reconstructed. Runs the stats-tree reset last, after every raw
     * counter is zeroed, so the interval bases recapture at zero exactly
     * as a fresh construction leaves them.
     */
    void reinit();

    /**
     * Branch recovery over the shared structures: drop IQ/LSQ entries
     * and walk the ROB youngest-first down to @p youngestKept, undoing
     * each rename (the paper's recovery walk).
     */
    void squashYoungerThan(InstSeqNum youngestKept);

    CoreConfig cfg;
    std::unique_ptr<RenameManager> renameMgr;
    FetchUnit fetch;
    /** Packed hot state of all in-flight instructions, indexed by ROB
     *  slot (inst_hot.hh). Declared before the structures that index
     *  into it. */
    InstHotPool hot;
    Rob rob;
    InstQueue iq;
    Lsq lsq;
    NonBlockingCache cache;
    FuPool fus;
    RegFilePorts regPorts;
    PortSchedule cachePortSched;

    /**
     * The core's stats tree. Every component and stage registers its
     * StatGroup(s) here (structures in this constructor, stages in
     * theirs); exporters reach everything through one
     * statsTree.visit() walk.
     */
    stats::StatRegistry statsTree;

    Cycle curCycle = 0;
    InstSeqNum nextSeq = 0;
    Cycle lastCommitCycle = 0;

    /** Cycles elapsed in the current measurement interval. */
    Cycle intervalCycles() const { return curCycle - statBaseCycle; }

  private:
    stats::StatGroup coreGroup{"core"};
    stats::Scalar cyclesStat{"cycles", "simulated cycles in the interval"};
    stats::Scalar squashedStat{"squashed", "instructions squashed"};
    Cycle statBaseCycle = 0;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_PIPELINE_STATE_HH
