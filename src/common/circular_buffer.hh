/**
 * @file
 * Fixed-capacity circular FIFO used by the ROB, LSQ and fetch queue.
 */

#ifndef VPR_COMMON_CIRCULAR_BUFFER_HH
#define VPR_COMMON_CIRCULAR_BUFFER_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace vpr
{

/**
 * A bounded FIFO with O(1) push/pop at both ends and random access by
 * logical position (0 = oldest). Capacity is fixed at construction.
 */
template <typename T>
class CircularBuffer
{
  public:
    explicit CircularBuffer(std::size_t capacity)
        : slots(capacity), head(0), count(0)
    {
        VPR_ASSERT(capacity > 0, "capacity must be positive");
    }

    std::size_t capacity() const { return slots.size(); }
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    bool full() const { return count == slots.size(); }
    std::size_t freeSlots() const { return slots.size() - count; }

    /** Append at the tail (youngest end). */
    void
    pushBack(const T &value)
    {
        VPR_ASSERT(!full(), "pushBack on full buffer");
        slots[physIndex(count)] = value;
        ++count;
    }

    /** Remove the oldest element. */
    void
    popFront()
    {
        VPR_ASSERT(!empty(), "popFront on empty buffer");
        head = (head + 1) % slots.size();
        --count;
    }

    /** Remove the youngest element. */
    void
    popBack()
    {
        VPR_ASSERT(!empty(), "popBack on empty buffer");
        --count;
    }

    /** Oldest element. */
    T &front() { VPR_ASSERT(!empty(), "front of empty"); return at(0); }
    const T &
    front() const
    {
        VPR_ASSERT(!empty(), "front of empty");
        return at(0);
    }

    /** Youngest element. */
    T &
    back()
    {
        VPR_ASSERT(!empty(), "back of empty");
        return at(count - 1);
    }
    const T &
    back() const
    {
        VPR_ASSERT(!empty(), "back of empty");
        return at(count - 1);
    }

    /** Access by logical index: 0 is the oldest element. */
    T &
    at(std::size_t logical)
    {
        VPR_ASSERT(logical < count, "index ", logical, " out of range ",
                   count);
        return slots[physIndex(logical)];
    }
    const T &
    at(std::size_t logical) const
    {
        VPR_ASSERT(logical < count, "index ", logical, " out of range ",
                   count);
        return slots[physIndex(logical)];
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /** Physical storage slot of logical position @p logical — stable for
     *  an element's whole residency (the ROB uses it as the hot-state
     *  handle of the entry). */
    std::size_t
    physIndexOf(std::size_t logical) const
    {
        VPR_ASSERT(logical < count, "index ", logical, " out of range ",
                   count);
        return physIndex(logical);
    }

  private:
    std::size_t
    physIndex(std::size_t logical) const
    {
        return (head + logical) % slots.size();
    }

    std::vector<T> slots;
    std::size_t head;
    std::size_t count;
};

} // namespace vpr

#endif // VPR_COMMON_CIRCULAR_BUFFER_HH
