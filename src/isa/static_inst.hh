/**
 * @file
 * Static (trace-level) instruction definition.
 *
 * A StaticInst carries everything the timing model needs: op class,
 * destination/source logical registers, and — for memory and control
 * operations — the effective address and branch outcome recorded in the
 * trace. There is no functional execution: like the paper's ATOM-based
 * methodology, correct-path results are implied by the trace itself.
 */

#ifndef VPR_ISA_STATIC_INST_HH
#define VPR_ISA_STATIC_INST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/op_class.hh"
#include "isa/reg.hh"

namespace vpr
{

/** Maximum number of register source operands per instruction. */
inline constexpr std::size_t kMaxSrcRegs = 2;

/**
 * One trace-level instruction. Plain value type; cheap to copy.
 */
struct StaticInst
{
    Addr pc = 0;              ///< instruction address
    OpClass op = OpClass::Nop;
    RegId dest;               ///< destination register (may be none())
    RegId src[kMaxSrcRegs];   ///< source registers (may be none())

    // Memory operations only.
    Addr effAddr = 0;         ///< effective byte address
    std::uint8_t memSize = 8; ///< access size in bytes

    // Branches only.
    bool taken = false;       ///< actual outcome from the trace
    Addr target = 0;          ///< actual target from the trace

    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool isMem() const { return isMemOp(op); }
    bool isBranch() const { return op == OpClass::Branch; }
    bool isNop() const { return op == OpClass::Nop; }
    bool hasDest() const { return dest.valid(); }

    /** Number of valid source register operands. */
    unsigned
    numSrcs() const
    {
        unsigned n = 0;
        for (const auto &s : src)
            if (s.valid())
                ++n;
        return n;
    }

    /** Disassembly-style rendering for debugging and error messages. */
    std::string disassemble() const;

    /** Builder helpers used by the trace DSL and tests. @{ */
    static StaticInst alu(RegId dest, RegId s1, RegId s2);
    static StaticInst mult(RegId dest, RegId s1, RegId s2);
    static StaticInst div(RegId dest, RegId s1, RegId s2);
    static StaticInst fpAdd(RegId dest, RegId s1, RegId s2);
    static StaticInst fpMul(RegId dest, RegId s1, RegId s2);
    static StaticInst fpDiv(RegId dest, RegId s1, RegId s2);
    static StaticInst fpSqrt(RegId dest, RegId s1);
    static StaticInst load(RegId dest, RegId base, Addr addr);
    static StaticInst store(RegId data, RegId base, Addr addr);
    static StaticInst branch(RegId s1, bool taken, Addr target);
    static StaticInst nop();
    /** @} */
};

} // namespace vpr

#endif // VPR_ISA_STATIC_INST_HH
