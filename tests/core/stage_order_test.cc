/**
 * @file
 * Stage-graph tests: the composition root ticks the stages back to
 * front, and instructions hand off between stages through the latches
 * one cycle at a time.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/core.hh"
#include "trace/builder.hh"

#include "../support/core_stats.hh"

namespace vpr
{
namespace
{

using test::statsOf;

CoreConfig
quietConfig()
{
    CoreConfig cfg;
    cfg.scheme = RenameScheme::Conventional;
    cfg.fetch.wrongPath = WrongPathMode::Stall;
    cfg.rename.numVPRegs =
        static_cast<std::uint16_t>(kNumLogicalRegs + cfg.robSize);
    return cfg;
}

TEST(StageOrder, GraphIsBackToFront)
{
    TraceBuilder b;
    b.nop();
    VectorTraceStream s(b.records());
    Core core(s, quietConfig());

    std::vector<std::string> names;
    for (const Stage *stage : core.stages())
        names.push_back(stage->name());
    EXPECT_EQ(names,
              (std::vector<std::string>{"commit", "complete", "issue",
                                        "rename", "fetch"}));
}

TEST(StageOrder, ThreeInstructionWindowAdvancesOneStagePerCycle)
{
    // Three independent single-cycle ALU ops. Because the graph ticks
    // back to front, an instruction can never skip a stage within one
    // cycle: fetched in cycle 1, renamed in 2, issued in 3, completed
    // in 4, committed in 5.
    TraceBuilder b;
    for (int i = 0; i < 3; ++i)
        b.alu(RegId::intReg(i + 1), RegId::intReg(10), RegId::intReg(11));
    VectorTraceStream s(b.records());
    Core core(s, quietConfig());

    // Cycle 1: fetch fills the buffer; rename ran first and saw nothing.
    core.tick();
    EXPECT_TRUE(core.fetchUnit().hasInst());
    EXPECT_EQ(core.rob().size(), 0u);

    // Cycle 2: rename drains the fetch buffer into ROB/IQ; issue ran
    // earlier this cycle, so nothing has issued yet.
    core.tick();
    ASSERT_EQ(core.rob().size(), 3u);
    EXPECT_EQ(core.iq().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(core.rob().at(i).phase(), InstPhase::Renamed);
    EXPECT_EQ(statsOf(core).counter("issue.issued"), 0u);

    // Cycle 3: issue selects all three; their completion events now sit
    // in the issue→complete latch.
    core.tick();
    EXPECT_EQ(statsOf(core).counter("issue.issued"), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(core.rob().at(i).phase(), InstPhase::Issued);
        EXPECT_TRUE(core.hasPendingEvent(core.rob().at(i).seq()));
    }
    EXPECT_TRUE(core.iq().empty());

    // Cycle 4: the latch hands the events to the complete stage; commit
    // ran before complete this cycle, so nothing has retired yet.
    core.tick();
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(core.rob().at(i).phase(), InstPhase::Completed);
        EXPECT_FALSE(core.hasPendingEvent(core.rob().at(i).seq()));
    }
    EXPECT_EQ(core.committedInsts(), 0u);

    // Cycle 5: commit retires the window.
    core.tick();
    EXPECT_EQ(core.committedInsts(), 3u);
    EXPECT_TRUE(core.rob().empty());
    EXPECT_TRUE(core.done());
}

TEST(StageOrder, StoreDataHandsOffThroughCompletionLatch)
{
    // A store whose data operand is produced by a long-latency divide:
    // the store issues for address generation, parks in the completion
    // latch, and completes only after the divide's broadcast.
    TraceBuilder b;
    b.fpDiv(RegId::fpReg(1), RegId::fpReg(2), RegId::fpReg(3));
    b.store(RegId::fpReg(1), RegId::intReg(4), 0x8000);
    VectorTraceStream s(b.records());
    Core core(s, quietConfig());

    // Run until the store has issued (address part) but the divide has
    // not completed; the store must be parked, i.e. have a pending
    // event association without being Completed.
    for (int i = 0; i < 6; ++i)
        core.tick();
    ASSERT_EQ(core.rob().size(), 2u);
    const DynInst &divide = core.rob().at(0);
    const DynInst &store = core.rob().at(1);
    EXPECT_EQ(divide.phase(), InstPhase::Issued);
    EXPECT_EQ(store.phase(), InstPhase::Issued);
    EXPECT_TRUE(core.hasPendingEvent(store.seq()));

    while (core.tick()) {
    }
    EXPECT_EQ(core.committedInsts(), 2u);
}

TEST(StageOrder, SquashFansOutToStages)
{
    // Alternating-taken branches with wrong-path synthesis: recovery
    // must leave every structure consistent (this exercises the
    // SquashCoordinator fan-out through the stage graph).
    TraceBuilder b;
    for (int i = 0; i < 100; ++i) {
        b.alu(RegId::intReg(1), RegId::intReg(1), RegId::intReg(2));
        b.branch(RegId::intReg(1), i % 2 == 0, 0x9000);
    }
    CoreConfig cfg = quietConfig();
    cfg.fetch.wrongPath = WrongPathMode::Synthesize;
    cfg.invariantChecks = true;
    VectorTraceStream s(b.records());
    Core core(s, cfg);
    while (core.tick()) {
    }
    EXPECT_EQ(core.committedInsts(), 200u);
    EXPECT_GT(statsOf(core).counter("core.squashed"), 0u);
    EXPECT_TRUE(core.iq().empty());
    EXPECT_TRUE(core.lsq().empty());
    core.renamer().checkInvariants();
}

} // namespace
} // namespace vpr
