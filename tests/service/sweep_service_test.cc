/**
 * @file
 * The sweep daemon's endpoint surface, tested without sockets: request
 * in, response out. The load-bearing property is that POST /sweep is
 * byte-identical to the batch path (buildSweepGrid + runGrid +
 * writeResultsCsv) for the same spec; around it, every malformed input
 * must map to a 400 with a useful message (never a daemon exit), the
 * result cache must serve repeated sweeps, and /status must report the
 * per-endpoint time series.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "service/sweep_service.hh"
#include "sim/experiment.hh"
#include "sim/result_cache.hh"
#include "sim/results_io.hh"
#include "sim/sweep.hh"

namespace vpr::service
{
namespace
{

namespace fs = std::filesystem;

SimConfig
quick()
{
    SimConfig c = paperConfig();
    c.skipInsts = 2000;
    c.measureInsts = 20000;
    c.core.fetch.wrongPath = WrongPathMode::Stall;
    return c;
}

HttpRequest
post(const std::string &path, const std::string &body)
{
    HttpRequest r;
    r.method = "POST";
    r.path = path;
    r.body = body;
    return r;
}

HttpRequest
get(const std::string &path)
{
    HttpRequest r;
    r.method = "GET";
    r.path = path;
    return r;
}

/** What the batch path renders for the same grid. */
std::string
batchCsv(const SimConfig &base, const std::string &figure)
{
    const std::vector<GridCell> cells = buildSweepGrid(
        {"go"}, base,
        {SweepAxis{"core.rename.regfile_size", {"48", "64"}}});
    const std::vector<SimResults> results = runGrid(cells, 1);
    std::vector<std::size_t> indices(cells.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    std::ostringstream os;
    writeResultsCsv(os, figure, ShardSpec{}, indices, cells, results);
    return os.str();
}

const char *kSweepBody =
    "{\"target\": \"go\", "
    "\"sweep\": [\"core.rename.regfile_size=48,64\"], "
    "\"figure\": \"svc-test\"}";

TEST(SweepService, SweepMatchesBatchPathByteForByte)
{
    SweepService service(quick(), /*jobs=*/1);
    const HttpResponse response =
        service.handle(post("/sweep", kSweepBody), 0);
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_EQ(response.contentType, "text/csv");
    EXPECT_EQ(response.body, batchCsv(quick(), "svc-test"));
}

TEST(SweepService, SetOverridesAndJsonFormat)
{
    SweepService service(quick(), 1);
    const HttpResponse response = service.handle(
        post("/sweep",
             "{\"target\": \"go\", "
             "\"sweep\": \"core.rename.regfile_size=48,64\", "
             "\"set\": [\"measure_insts=10000\"], "
             "\"figure\": \"svc-test\", \"format\": \"json\"}"),
        0);
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_EQ(response.contentType, "application/json");

    SimConfig overridden = quick();
    overridden.measureInsts = 10000;
    const std::vector<GridCell> cells = buildSweepGrid(
        {"go"}, overridden,
        {SweepAxis{"core.rename.regfile_size", {"48", "64"}}});
    const std::vector<SimResults> results = runGrid(cells, 1);
    std::vector<std::size_t> indices{0, 1};
    std::ostringstream os;
    writeResultsJson(os, "svc-test", ShardSpec{}, indices, cells,
                     results);
    EXPECT_EQ(response.body, os.str());
}

TEST(SweepService, RepeatedSweepIsServedFromResultCache)
{
    const std::string dir =
        (fs::path(::testing::TempDir()) / "vpr_svc_cache").string();
    fs::remove_all(dir);
    SimConfig base = quick();
    base.resultCache.dir = dir;
    SweepService service(base, 1);

    const std::uint64_t hits0 = resultCacheCounters().hits.load();
    const HttpResponse first =
        service.handle(post("/sweep", kSweepBody), 0);
    ASSERT_EQ(first.status, 200) << first.body;
    EXPECT_EQ(resultCacheCounters().hits.load(), hits0);

    const HttpResponse second =
        service.handle(post("/sweep", kSweepBody), 1);
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(second.body, first.body);
    EXPECT_EQ(resultCacheCounters().hits.load(), hits0 + 2);  // 2 cells
}

TEST(SweepService, BadRequestsAre400NeverFatal)
{
    SweepService service(quick(), 1);
    const auto expect400 = [&](const std::string &body,
                               const std::string &needle) {
        const HttpResponse response =
            service.handle(post("/sweep", body), 0);
        EXPECT_EQ(response.status, 400) << body;
        EXPECT_NE(response.body.find(needle), std::string::npos)
            << "response '" << response.body << "' should mention '"
            << needle << "'";
    };

    expect400("", "bad JSON");
    expect400("{\"target\": ", "bad JSON");
    expect400("{\"target\": 42}", "bad JSON");
    expect400("{\"tarjet\": \"all\"}", "unknown or malformed field");
    expect400("{\"target\": \"nosuchbench\"}", "unknown benchmark");
    expect400("{\"set\": [\"bogus.key=1\"]}", "unknown parameter");
    expect400("{\"set\": [\"seed\"]}", "malformed assignment");
    expect400("{\"set\": [\"seed=notanumber\"]}", "bad value");
    expect400("{\"sweep\": [\"bogus.key=1,2\"]}",
              "unknown sweep parameter");
    expect400("{\"sweep\": [\"core.scheme=conv,nope\"]}", "bad value");
    expect400("{\"sweep\": [\"core.scheme\"]}", "malformed sweep axis");
    expect400("{\"format\": \"xml\"}", "bad format");
}

TEST(SweepService, MethodAndPathDispatch)
{
    SweepService service(quick(), 1);
    EXPECT_EQ(service.handle(get("/sweep"), 0).status, 405);
    EXPECT_EQ(service.handle(post("/status", ""), 0).status, 405);
    EXPECT_EQ(service.handle(post("/params", ""), 0).status, 405);
    EXPECT_EQ(service.handle(get("/shutdown"), 0).status, 405);
    EXPECT_EQ(service.handle(get("/nope"), 0).status, 404);

    // The catch-all bucket records unknown paths as errors.
    EXPECT_EQ(service.series("other").totalRequests(), 1u);
    EXPECT_EQ(service.series("other").totalErrors(), 1u);
    // Known-path misuses land on their endpoint's series.
    EXPECT_EQ(service.series("/sweep").totalErrors(), 1u);

    const HttpResponse params = service.handle(get("/params"), 0);
    EXPECT_EQ(params.status, 200);
    EXPECT_NE(params.body.find("core.rename.regfile_size"),
              std::string::npos);
    EXPECT_NE(params.body.find("go"), std::string::npos);

    EXPECT_FALSE(service.shutdownRequested());
    EXPECT_EQ(service.handle(post("/shutdown", ""), 0).status, 200);
    EXPECT_TRUE(service.shutdownRequested());
}

TEST(SweepService, StatusReportsSeriesAndCacheCounters)
{
    SweepService service(quick(), 3);
    service.handle(get("/nope"), 0);
    service.handle(get("/nope"), 2);
    const HttpResponse status = service.handle(get("/status"), 2);
    ASSERT_EQ(status.status, 200);
    EXPECT_EQ(status.contentType, "application/json");

    const std::string &doc = status.body;
    EXPECT_NE(doc.find("\"service\": \"vpr_simd\""), std::string::npos);
    EXPECT_NE(doc.find("\"uptime_minutes\": 2"), std::string::npos);
    EXPECT_NE(doc.find("\"jobs\": 3"), std::string::npos);
    EXPECT_NE(doc.find("\"result_cache\""), std::string::npos);
    EXPECT_NE(doc.find("\"hits\""), std::string::npos);
    for (const char *endpoint :
         {"\"/sweep\"", "\"/status\"", "\"/params\"", "\"/shutdown\"",
          "\"other\""})
        EXPECT_NE(doc.find(endpoint), std::string::npos) << endpoint;
    // The catch-all series: one 404 at minute 0, one at minute 2 —
    // most recent first.
    EXPECT_NE(doc.find("\"requests\": [1, 0, 1]"), std::string::npos)
        << doc;
}

TEST(SweepService, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("x\n\t\r"), "x\\n\\t\\r");
    EXPECT_EQ(jsonEscape(std::string("\x01", 1)), "\\u0001");
}

} // namespace
} // namespace vpr::service
