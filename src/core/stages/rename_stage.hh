/**
 * @file
 * Rename stage: drains the fetch buffer into ROB/IQ/LSQ through the
 * RenameManager, stalling on full structures or an empty free list.
 */

#ifndef VPR_CORE_STAGES_RENAME_STAGE_HH
#define VPR_CORE_STAGES_RENAME_STAGE_HH

#include "common/stats.hh"
#include "core/stages/latches.hh"
#include "core/stages/pipeline_state.hh"
#include "core/stages/stage.hh"

namespace vpr
{

/** The rename/dispatch stage. */
class RenameStage : public Stage
{
  public:
    RenameStage(PipelineState &state, FetchBufferPort &fetchBuffer)
        : s(state), fetched(fetchBuffer)
    {
        group.add(&stallReg);
        group.add(&stallRob);
        group.add(&stallIq);
        group.add(&stallLsq);
        s.statsTree.add(&group);
    }

    const char *name() const override { return "rename"; }

    void tick() override;

    void
    squash(InstSeqNum) override
    {
        // Rename holds no instruction state between cycles; the fetch
        // buffer (its input latch) is flushed by the redirect port.
    }

  private:
    PipelineState &s;
    FetchBufferPort &fetched;

    stats::StatGroup group{"rename"};
    stats::Scalar stallReg{"stall_reg", "rename stalls: no free register"};
    stats::Scalar stallRob{"stall_rob", "rename stalls: ROB full"};
    stats::Scalar stallIq{"stall_iq", "rename stalls: IQ full"};
    stats::Scalar stallLsq{"stall_lsq", "rename stalls: LSQ full"};
};

} // namespace vpr

#endif // VPR_CORE_STAGES_RENAME_STAGE_HH
