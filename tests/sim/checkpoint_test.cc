/**
 * @file
 * The warm-state checkpoint cache end to end: content-addressed digests
 * must share exactly when the warm state is shareable, a restored run
 * must be byte-identical to the cold run that produced the checkpoint,
 * and every damaged cache file must fall back to a cold warm-up with
 * the same results — a bad checkpoint may cost time, never correctness.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/io/zio.hh"
#include "common/state.hh"
#include "sim/checkpoint.hh"
#include "sim/experiment.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{
namespace
{

namespace fs = std::filesystem;

SimConfig
quick()
{
    SimConfig c = paperConfig();
    c.skipInsts = 2000;
    c.measureInsts = 20000;
    c.core.fetch.wrongPath = WrongPathMode::Synthesize;
    return c;
}

SimConfig
sampledQuick()
{
    SimConfig c = quick();
    c.sampling.enable = true;
    c.sampling.periodInsts = 5000;
    c.sampling.warmupInsts = 500;
    c.sampling.detailedInsts = 1000;
    return c;
}

/** A fresh, empty checkpoint directory under the test temp root. */
std::string
freshDir(const std::string &tag)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("vpr_ckpt_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::size_t
countCheckpoints(const std::string &dir)
{
    std::size_t n = 0;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".vprck")
            ++n;
    return n;
}

/** Every exported metric of @p b must match @p a textually. */
void
expectIdenticalMetrics(const SimResults &a, const SimResults &b,
                       const std::string &label)
{
    ASSERT_TRUE(a.metrics.sameSchema(b.metrics)) << label;
    for (std::size_t i = 0; i < a.metrics.all().size(); ++i) {
        const Metric &ma = a.metrics.all()[i];
        const Metric &mb = b.metrics.all()[i];
        EXPECT_EQ(ma.text(), mb.text()) << label << ": " << ma.name();
    }
}

/** The cache-file path the simulator will use for @p cfg. Only valid
 *  for cfg.seed == 0 (a non-zero master seed re-derives component
 *  seeds inside the Simulator before hashing). */
std::string
expectedPath(const SimConfig &cfg, const std::string &bench,
             CkptScope scope)
{
    const std::string identity =
        makeBenchmarkStream(bench, cfg.seed)->identity();
    return checkpointPath(
        cfg.ckpt.dir, bench, scope,
        warmStateDigest(cfg, bench, identity, scope));
}

TEST(CheckpointDigest, StableAndScopeTagged)
{
    SimConfig c = quick();
    const std::string id = makeBenchmarkStream("vortex")->identity();
    const std::uint64_t f =
        warmStateDigest(c, "vortex", id, CkptScope::Functional);
    EXPECT_EQ(f, warmStateDigest(c, "vortex", id, CkptScope::Functional));
    // The scope is part of the key: a functional file can never be
    // taken for a full one even with identical config.
    EXPECT_NE(f, warmStateDigest(c, "vortex", id, CkptScope::Full));
    // Different benchmark or stream content, different key.
    EXPECT_NE(f, warmStateDigest(c, "go", id, CkptScope::Functional));
    EXPECT_NE(f, warmStateDigest(c, "vortex", id + "x",
                                 CkptScope::Functional));
}

TEST(CheckpointDigest, FunctionalKeyIgnoresDetailedMicroarchitecture)
{
    // A functional fast-forward warms the trace position, BHT and
    // caches only — so the renaming scheme and regfile size must NOT
    // change the functional key (that is what lets a scheme x size
    // sweep share one checkpoint), while they MUST change the full key.
    SimConfig base = quick();
    const std::string id = makeBenchmarkStream("vortex")->identity();
    SimConfig other = base;
    other.setScheme(RenameScheme::VPAllocAtWriteback);
    other.core.rename.numPhysRegs = base.core.rename.numPhysRegs + 8;

    EXPECT_EQ(warmStateDigest(base, "vortex", id, CkptScope::Functional),
              warmStateDigest(other, "vortex", id,
                              CkptScope::Functional));
    EXPECT_NE(warmStateDigest(base, "vortex", id, CkptScope::Full),
              warmStateDigest(other, "vortex", id, CkptScope::Full));
}

TEST(CheckpointDigest, WarmRelevantKeysChangeBothScopes)
{
    SimConfig base = quick();
    const std::string id = makeBenchmarkStream("vortex")->identity();
    for (CkptScope scope : {CkptScope::Functional, CkptScope::Full}) {
        SimConfig cache = base;
        cache.core.cache.sizeBytes *= 2;
        EXPECT_NE(warmStateDigest(base, "vortex", id, scope),
                  warmStateDigest(cache, "vortex", id, scope))
            << ckptScopeName(scope) << " ignored cache geometry";
        SimConfig skip = base;
        skip.skipInsts = base.skipInsts * 2;
        EXPECT_NE(warmStateDigest(base, "vortex", id, scope),
                  warmStateDigest(skip, "vortex", id, scope))
            << ckptScopeName(scope) << " ignored warm-up length";
    }
    // The measurement length begins after the checkpoint: same key.
    SimConfig measure = base;
    measure.measureInsts = base.measureInsts * 2;
    EXPECT_EQ(warmStateDigest(base, "vortex", id, CkptScope::Full),
              warmStateDigest(measure, "vortex", id, CkptScope::Full));
}

TEST(CheckpointDigest, ExecOnlyCkptParamsDoNotChangeTheKey)
{
    // Where the cache lives and whether files are compressed is
    // execution plumbing, not warm state: the digest (and the exported
    // provenance) must not see sim.ckpt.*.
    SimConfig base = quick();
    const std::string id = makeBenchmarkStream("vortex")->identity();
    SimConfig other = base;
    other.ckpt.dir = "/somewhere/else";
    other.ckpt.compress = false;
    other.ckpt.save = false;
    for (CkptScope scope : {CkptScope::Functional, CkptScope::Full})
        EXPECT_EQ(warmStateDigest(base, "vortex", id, scope),
                  warmStateDigest(other, "vortex", id, scope));
}

class CheckpointPerScheme : public ::testing::TestWithParam<RenameScheme>
{
};

TEST_P(CheckpointPerScheme, RestoredRunIsByteIdenticalToCold)
{
    SimConfig c = quick();
    c.setScheme(GetParam());
    if (GetParam() == RenameScheme::ConventionalEarlyRelease)
        c.core.fetch.wrongPath = WrongPathMode::Stall;
    c.ckpt.dir = freshDir(
        std::string("scheme_") + renameSchemeName(GetParam()));

    auto cold = runOne("vortex", c);  // miss: warms up, saves
    EXPECT_EQ(countCheckpoints(c.ckpt.dir), 1u);
    EXPECT_TRUE(fs::exists(expectedPath(c, "vortex", CkptScope::Full)));

    auto restored = runOne("vortex", c);  // hit: loads the file
    EXPECT_EQ(countCheckpoints(c.ckpt.dir), 1u);
    expectIdenticalMetrics(cold, restored,
                           std::string("restored vs cold: ") +
                               renameSchemeName(GetParam()));
    fs::remove_all(c.ckpt.dir);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CheckpointPerScheme,
    ::testing::Values(RenameScheme::Conventional,
                      RenameScheme::ConventionalEarlyRelease,
                      RenameScheme::VPAllocAtWriteback,
                      RenameScheme::VPAllocAtIssue),
    [](const auto &info) {
        std::string s = renameSchemeName(info.param);
        for (auto &ch : s)
            if (ch == '-')
                ch = '_';
        return s;
    });

TEST(Checkpoint, CompressedAndStoredFilesRestoreIdentically)
{
    // The container codec only changes bytes on disk, never the state
    // inside: cold and restored legs must agree across both codecs.
    SimConfig c = quick();
    c.ckpt.dir = freshDir("codec_z");
    c.ckpt.compress = true;
    auto coldZ = runOne("vortex", c);
    auto restoredZ = runOne("vortex", c);

    SimConfig s = quick();
    s.ckpt.dir = freshDir("codec_raw");
    s.ckpt.compress = false;
    auto coldRaw = runOne("vortex", s);
    auto restoredRaw = runOne("vortex", s);

    expectIdenticalMetrics(coldZ, restoredZ, "compressed restore");
    expectIdenticalMetrics(coldRaw, restoredRaw, "stored restore");
    expectIdenticalMetrics(coldZ, coldRaw, "compressed vs stored cold");

    if (zlibAvailable()) {
        std::string z, raw;
        ASSERT_TRUE(readFileBytes(
            expectedPath(c, "vortex", CkptScope::Full), z));
        ASSERT_TRUE(readFileBytes(
            expectedPath(s, "vortex", CkptScope::Full), raw));
        EXPECT_LT(z.size(), raw.size());
    }
    fs::remove_all(c.ckpt.dir);
    fs::remove_all(s.ckpt.dir);
}

TEST(Checkpoint, SampledSweepSharesOneFunctionalCheckpoint)
{
    // The payoff case: a sampled scheme sweep's initial fast-forward is
    // identical across cells, so every cell addresses the SAME
    // functional checkpoint file — and because a functional reload
    // reconstructs exactly the post-fast-forward state, the results
    // also match a sweep that never used the cache at all.
    const std::string dir = freshDir("shared_func");
    std::vector<RenameScheme> schemes = {
        RenameScheme::Conventional, RenameScheme::VPAllocAtWriteback,
        RenameScheme::VPAllocAtIssue};
    for (RenameScheme scheme : schemes) {
        SimConfig plain = sampledQuick();
        plain.setScheme(scheme);
        SimConfig cached = plain;
        cached.ckpt.dir = dir;
        auto reference = runOne("vortex", plain);
        auto viaCache = runOne("vortex", cached);
        expectIdenticalMetrics(reference, viaCache,
                               std::string("sampled ckpt vs plain: ") +
                                   renameSchemeName(scheme));
        EXPECT_EQ(countCheckpoints(dir), 1u)
            << "scheme " << renameSchemeName(scheme)
            << " did not share the functional checkpoint";
    }
    fs::remove_all(dir);
}

TEST(Checkpoint, DamagedCacheFilesFallBackToColdByteIdentically)
{
    // Reference: a clean cache directory (cold leg saves + reloads).
    SimConfig ref = quick();
    ref.ckpt.dir = freshDir("fallback_ref");
    auto cold = runOne("vortex", ref);
    const std::string goodPath =
        expectedPath(ref, "vortex", CkptScope::Full);
    std::string good;
    ASSERT_TRUE(readFileBytes(goodPath, good));

    struct Damage
    {
        const char *name;
        std::string bytes;
    };
    const std::string unpacked = vprzUnpack(good, "ckpt");
    std::string versionSkew = unpacked;
    versionSkew[8] ^= 0x40;  // version word after the 8-byte magic
    const Damage damages[] = {
        {"wrong magic", "not a checkpoint at all"},
        {"truncated container", good.substr(0, good.size() / 2)},
        {"empty file", ""},
        {"version skew", versionSkew},
        {"digest mismatch",
         packCheckpoint(CkptScope::Full, 0xdeadbeefull, "bogus state")},
        {"scope mismatch",
         packCheckpoint(CkptScope::Functional, 0xdeadbeefull, "bogus")},
    };
    for (const Damage &d : damages) {
        SimConfig c = quick();
        c.ckpt.dir = freshDir("fallback_case");
        ASSERT_TRUE(writeFileAtomic(
            expectedPath(c, "vortex", CkptScope::Full), d.bytes))
            << d.name;
        auto fallback = runOne("vortex", c);
        expectIdenticalMetrics(cold, fallback,
                               std::string("fallback after ") + d.name);
        // The cold fallback re-saves; the repaired file must now load.
        auto repaired = runOne("vortex", c);
        expectIdenticalMetrics(cold, repaired,
                               std::string("repaired after ") + d.name);
        fs::remove_all(c.ckpt.dir);
    }
    fs::remove_all(ref.ckpt.dir);
}

TEST(Checkpoint, SaveOffReadsButNeverWrites)
{
    SimConfig c = quick();
    c.ckpt.dir = freshDir("save_off");
    c.ckpt.save = false;
    auto first = runOne("vortex", c);
    EXPECT_EQ(countCheckpoints(c.ckpt.dir), 0u);

    // A writer populates the cache; the read-only config then hits it.
    SimConfig w = quick();
    w.ckpt.dir = c.ckpt.dir;
    auto writer = runOne("vortex", w);
    EXPECT_EQ(countCheckpoints(c.ckpt.dir), 1u);
    auto reader = runOne("vortex", c);
    expectIdenticalMetrics(first, writer, "save=0 cold vs writer cold");
    expectIdenticalMetrics(first, reader, "save=0 cold vs cache hit");
    fs::remove_all(c.ckpt.dir);
}

TEST(Checkpoint, NoWarmupMeansNoCheckpoint)
{
    SimConfig c = quick();
    c.skipInsts = 0;
    c.ckpt.dir = freshDir("no_warmup");
    runOne("vortex", c);
    EXPECT_EQ(countCheckpoints(c.ckpt.dir), 0u);
    fs::remove_all(c.ckpt.dir);
}

TEST(Checkpoint, GridCellsHitTheCacheAcrossJobs)
{
    // A grid populated serially and re-run with 4 workers must agree
    // cell for cell — concurrent cache hits (and the atomic-rename
    // writes on first touch) never perturb results.
    const std::string dir = freshDir("grid");
    SimConfig c = quick();
    c.ckpt.dir = dir;
    std::vector<GridCell> cells;
    for (RenameScheme s : {RenameScheme::Conventional,
                           RenameScheme::VPAllocAtWriteback,
                           RenameScheme::VPAllocAtIssue}) {
        c.setScheme(s);
        cells.push_back({"vortex", c});
        cells.push_back({"swim", c});
    }
    auto first = runGrid(cells, 1);   // cold: populates the cache
    auto again = runGrid(cells, 4);   // warm: every cell restores
    ASSERT_EQ(first.size(), cells.size());
    ASSERT_EQ(again.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        expectIdenticalMetrics(first[i], again[i],
                               "grid ckpt cell " + std::to_string(i));
    // Full-scope keys cover the scheme: 3 schemes x 2 benchmarks.
    EXPECT_EQ(countCheckpoints(dir), cells.size());
    fs::remove_all(dir);
}

} // namespace
} // namespace vpr

