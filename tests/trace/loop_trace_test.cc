/** @file Unit tests for the LoopTrace procedural generator. */

#include <gtest/gtest.h>

#include "trace/loop_trace.hh"

namespace vpr
{
namespace
{

KernelDesc
tinyKernel()
{
    KernelDesc k;
    k.name = "tiny";
    k.seed = 7;
    MemStreamDesc s;
    s.kind = MemStreamDesc::Kind::Stride;
    s.base = 0x1000;
    s.stride = 8;
    s.region = 64;
    k.streams = {s};

    BlockDesc b;
    b.insts = {
        InstTemplate::loadFrom(0, RegId::intReg(1), RegId::intReg(2)),
        InstTemplate::compute(OpClass::IntAlu, RegId::intReg(3),
                              RegId::intReg(1), RegId::intReg(4)),
    };
    b.branch.kind = BranchDesc::Kind::Loop;
    b.branch.src = RegId::intReg(3);
    b.branch.tripCount = 4;
    b.branch.takenTarget = 0;
    b.branch.fallThrough = 0;
    k.blocks = {b};
    return k;
}

TEST(LoopTrace, EmitsBlockBodyThenBranch)
{
    LoopTraceStream s(tinyKernel());
    auto r1 = s.next();
    auto r2 = s.next();
    auto r3 = s.next();
    ASSERT_TRUE(r1 && r2 && r3);
    EXPECT_EQ(r1->op, OpClass::Load);
    EXPECT_EQ(r2->op, OpClass::IntAlu);
    EXPECT_EQ(r3->op, OpClass::Branch);
}

TEST(LoopTrace, LoopBranchTakenTripMinusOneTimes)
{
    LoopTraceStream s(tinyKernel());
    int taken = 0, notTaken = 0;
    for (int i = 0; i < 3 * 4; ++i) {
        auto r = s.next();
        ASSERT_TRUE(r);
        if (r->isBranch())
            (r->taken ? taken : notTaken)++;
    }
    // Trip count 4: taken 3 times, then not taken, repeating.
    EXPECT_EQ(taken, 3);
    EXPECT_EQ(notTaken, 1);
}

TEST(LoopTrace, StrideAddressesAdvanceAndWrap)
{
    LoopTraceStream s(tinyKernel());
    std::vector<Addr> addrs;
    while (addrs.size() < 10) {
        auto r = s.next();
        if (r->isLoad())
            addrs.push_back(r->effAddr);
    }
    for (std::size_t i = 0; i < addrs.size(); ++i)
        EXPECT_EQ(addrs[i], 0x1000u + (i * 8) % 64);
}

TEST(LoopTrace, DeterministicAndResettable)
{
    LoopTraceStream a(tinyKernel()), b(tinyKernel());
    std::vector<Addr> pa, pb;
    for (int i = 0; i < 200; ++i) {
        pa.push_back(a.next()->pc);
        pb.push_back(b.next()->pc);
    }
    EXPECT_EQ(pa, pb);

    a.reset();
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.next()->pc, pa[i]);
}

TEST(LoopTrace, BernoulliBranchFollowsBias)
{
    KernelDesc k;
    k.name = "coin";
    k.seed = 11;
    BlockDesc b;
    b.insts = {InstTemplate::compute(OpClass::IntAlu, RegId::intReg(1),
                                     RegId::intReg(2), RegId::intReg(3))};
    b.branch.kind = BranchDesc::Kind::Bernoulli;
    b.branch.src = RegId::intReg(1);
    b.branch.takenPermille = 700;
    b.branch.takenTarget = 0;
    b.branch.fallThrough = 0;
    k.blocks = {b};

    LoopTraceStream s(k);
    int taken = 0, total = 0;
    for (int i = 0; i < 40000; ++i) {
        auto r = s.next();
        if (r->isBranch()) {
            ++total;
            taken += r->taken;
        }
    }
    double frac = static_cast<double>(taken) / total;
    EXPECT_NEAR(frac, 0.7, 0.02);
}

TEST(LoopTrace, BranchTargetsMatchBlockPcs)
{
    KernelDesc k;
    k.name = "twoblocks";
    k.seed = 3;
    BlockDesc b0, b1;
    b0.insts = {InstTemplate::compute(OpClass::IntAlu, RegId::intReg(1),
                                      RegId::intReg(2), RegId::intReg(3))};
    b0.branch.kind = BranchDesc::Kind::Loop;
    b0.branch.src = RegId::intReg(1);
    b0.branch.tripCount = 2;
    b0.branch.takenTarget = 0;
    b0.branch.fallThrough = 1;
    b1.insts = {InstTemplate::compute(OpClass::IntAlu, RegId::intReg(4),
                                      RegId::intReg(5), RegId::intReg(6))};
    b1.branch.kind = BranchDesc::Kind::None;
    k.blocks = {b0, b1};

    LoopTraceStream s(k);
    // First pass: alu, branch (taken -> block 0).
    auto alu0 = s.next();
    auto br = s.next();
    ASSERT_TRUE(br->isBranch());
    EXPECT_TRUE(br->taken);
    EXPECT_EQ(br->target, alu0->pc);
    // Second pass: alu, branch (not taken -> block 1 next).
    s.next();
    auto br2 = s.next();
    EXPECT_FALSE(br2->taken);
    auto blk1 = s.next();
    EXPECT_EQ(blk1->op, OpClass::IntAlu);
    EXPECT_EQ(blk1->pc, br2->target + 0u);  // fall-through == block 1 pc
}

TEST(LoopTrace, RandomStreamStaysInRegion)
{
    KernelDesc k;
    k.name = "rand";
    k.seed = 13;
    MemStreamDesc s;
    s.kind = MemStreamDesc::Kind::Random;
    s.base = 0x8000;
    s.region = 256;
    k.streams = {s};
    BlockDesc b;
    b.insts = {InstTemplate::loadFrom(0, RegId::intReg(1),
                                      RegId::intReg(2))};
    k.blocks = {b};

    LoopTraceStream ts(k);
    for (int i = 0; i < 1000; ++i) {
        auto r = ts.next();
        ASSERT_GE(r->effAddr, 0x8000u);
        ASSERT_LT(r->effAddr, 0x8000u + 256u);
        EXPECT_EQ(r->effAddr % 8, 0u);  // aligned to elemSize
    }
}

TEST(LoopTraceDeath, ValidateCatchesBadStreamIndex)
{
    KernelDesc k;
    k.name = "bad";
    BlockDesc b;
    b.insts = {InstTemplate::loadFrom(3, RegId::intReg(1),
                                      RegId::intReg(2))};
    k.blocks = {b};
    EXPECT_DEATH(k.validate(), "bad memory stream index");
}

TEST(LoopTraceDeath, ValidateCatchesBadTargets)
{
    KernelDesc k;
    k.name = "bad2";
    BlockDesc b;
    b.insts = {InstTemplate::compute(OpClass::IntAlu, RegId::intReg(1),
                                     RegId::intReg(2), RegId::intReg(3))};
    b.branch.kind = BranchDesc::Kind::Loop;
    b.branch.tripCount = 2;
    b.branch.takenTarget = 5;
    b.branch.fallThrough = 0;
    k.blocks = {b};
    EXPECT_DEATH(k.validate(), "bad taken target");
}

} // namespace
} // namespace vpr
