/**
 * @file
 * merge_results — stitch sharded sweep records back together.
 *
 * Usage:
 *   merge_results [-o merged.csv] [--render] shard0.csv shard1.csv ...
 *
 * Reads the CSV record files written by the bench binaries' --out flag
 * (one record per grid cell, any subset per file), verifies that
 * together they cover the whole grid exactly once, and writes the full
 * cell-ordered result set — byte-identical to what a single unsharded
 * --out run would have produced.
 *
 * With --render, the paper-style table is re-rendered from the merged
 * records to stdout. The figure named in the file metadata is looked up
 * in the bench figure registry and its renderer — the same code the
 * bench binary runs — is fed the reconstructed results, so the table is
 * byte-identical to the unsharded run's.
 *
 * Options:
 *   -o <path>    write the merged CSV (default: stdout unless --render)
 *   --render     re-render the figure's table from the merged records
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "figures.hh"
#include "sim/results_io.hh"

using namespace vpr;

int
main(int argc, char **argv)
{
    std::string outPath;
    bool render = false;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--render") == 0) {
            render = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::cout << "usage: " << argv[0]
                      << " [-o merged.csv] [--render] shard.csv...\n"
                         "see the file header for details\n";
            return 0;
        } else if (argv[i][0] == '-') {
            std::cerr << "unknown option '" << argv[i] << "'\n";
            return 1;
        } else {
            inputs.push_back(argv[i]);
        }
    }
    if (inputs.empty()) {
        std::cerr << "usage: " << argv[0]
                  << " [-o merged.csv] [--render] shard.csv...\n";
        return 1;
    }

    std::vector<ResultsFile> shards;
    for (const std::string &path : inputs)
        shards.push_back(readResultsCsvFile(path));
    ResultsFile merged = mergeResults(shards);

    if (!outPath.empty()) {
        std::ofstream os(outPath);
        if (!os)
            VPR_FATAL("cannot open '", outPath, "' for writing");
        writeMergedCsv(os, merged);
        if (!os)
            VPR_FATAL("error writing '", outPath, "'");
    } else if (!render) {
        writeMergedCsv(std::cout, merged);
    }

    if (render) {
        const bench::FigureDef *def = bench::findFigure(merged.figure);
        if (!def)
            VPR_FATAL("figure '", merged.figure,
                      "' is not in the bench registry; cannot render "
                      "(merge with -o still works)");
        const std::vector<GridCell> cells = def->build();
        if (cells.size() != merged.totalCells)
            VPR_FATAL("figure '", merged.figure, "' now has ",
                      cells.size(), " cells but the records carry ",
                      merged.totalCells,
                      " — re-run the sweep with this binary");
        def->render(cells, resultsFromFile(merged), std::cout);
    }
    return 0;
}
