/**
 * @file
 * Dynamic instruction: one in-flight instance of a trace record with all
 * of its pipeline and rename state.
 *
 * The fields mirror Figure 2 of the paper: the instruction-queue entry
 * (opcode, destination tag, Src1/R1, Src2/R2) and the reorder-buffer
 * entry (logical destination, completed bit, previous virtual-physical
 * mapping) are all carried here; the IQ and ROB reference DynInsts
 * rather than duplicating the fields.
 */

#ifndef VPR_CORE_DYN_INST_HH
#define VPR_CORE_DYN_INST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/static_inst.hh"

namespace vpr
{

/** Lifecycle phase of a dynamic instruction. */
enum class InstPhase : std::uint8_t
{
    Renamed,    ///< dispatched to IQ/ROB, waiting for operands
    Issued,     ///< executing on a functional unit
    Completed,  ///< result produced (and register allocated, if any)
    Committed,  ///< retired
    Squashed    ///< removed by branch recovery (slot may be reused)
};

/** Why a load cannot begin its memory access yet (LSQ disambiguation).
 *  Lives here rather than in lsq.hh because each load carries its most
 *  recent hold state (DynInst::lastHold). */
enum class LoadHold : std::uint8_t
{
    Ready,          ///< may access the cache
    Forward,        ///< older matching store will forward its data
    UnknownAddress, ///< an older store's address is not known yet
    PartialOverlap  ///< overlaps an older store but cannot forward
};

/** One renamed source operand (Src/R fields of Figure 2). */
struct SrcOperand
{
    std::uint16_t tag = kNoReg; ///< phys reg if ready, else wakeup tag
    RegClass cls = RegClass::Int;
    bool valid = false;         ///< operand exists
    bool ready = false;         ///< R bit: value readable at issue
};

/** An in-flight instruction. */
struct DynInst
{
    StaticInst si;
    InstSeqNum seq = 0;
    bool wrongPath = false;     ///< fetched past a mispredicted branch

    // --- rename state -------------------------------------------------
    SrcOperand src[kMaxSrcRegs];
    /** Tag consumers wake up on: the physical register in the
     *  conventional scheme, the VP register in the VP schemes. */
    std::uint16_t wakeupTag = kNoReg;
    /** VP register of the destination (VP schemes only). */
    VPRegId vpReg = kNoReg;
    /** Physical destination register. Conventional: set at rename.
     *  VP: set at issue or write-back depending on the policy. */
    PhysRegId physReg = kNoReg;
    /** Previous mapping of the logical destination (phys reg in the
     *  conventional scheme, VP reg in the VP schemes); freed when this
     *  instruction commits, restored if it squashes. */
    std::uint16_t prevTag = kNoReg;

    // --- pipeline state -----------------------------------------------
    InstPhase phase = InstPhase::Renamed;
    /** Maintained by InstQueue: true while this instruction is resident
     *  in the IQ (validates per-tag wakeup wait-list entries). */
    bool inIq = false;
    /** Maintained by InstQueue/IssueStage: true while the instruction is
     *  owned by the event-driven issue scheduler (published on the ready
     *  list or parked on a stall list / LSQ hold subscription). Guards
     *  against publishing the same instruction twice. */
    bool inReadyQ = false;
    bool mispredictedBranch = false;
    unsigned executions = 0;    ///< times issued (re-execution counter)

    Cycle fetchCycle = kNoCycle;
    Cycle renameCycle = kNoCycle;
    Cycle issueCycle = kNoCycle;
    Cycle completeCycle = kNoCycle;
    Cycle commitCycle = kNoCycle;

    // --- memory state (LSQ) -------------------------------------------
    bool addrReady = false;     ///< effective address computed
    Cycle addrReadyCycle = kNoCycle;
    bool storeForwarded = false; ///< load got data from an older store
    /** Most recent disambiguation outcome of this load. Hold statistics
     *  count *episodes* (transitions into a blocking state), so the
     *  event-driven scheduler — which re-checks a held load only when
     *  the blocking store resolves — and the legacy every-cycle scan
     *  account identically. */
    LoadHold lastHold = LoadHold::Ready;

    bool hasDest() const { return si.hasDest(); }
    RegClass destClass() const { return si.dest.regClass(); }
    bool isLoad() const { return si.isLoad(); }
    bool isStore() const { return si.isStore(); }
    bool isMem() const { return si.isMem(); }
    bool isBranch() const { return si.isBranch(); }

    /** All source operands ready (instruction may be selected). */
    bool
    operandsReady() const
    {
        for (const auto &s : src)
            if (s.valid && !s.ready)
                return false;
        return true;
    }

    /**
     * Operands needed to *issue*. Stores split like the PA-8000: the
     * address part (src[1], the base register) issues as soon as it is
     * ready; the data (src[0]) may arrive later and only gates
     * completion.
     */
    bool
    issueOperandsReady() const
    {
        if (isStore())
            return !src[1].valid || src[1].ready;
        return operandsReady();
    }

    /** Debug rendering: seq, phase and disassembly. */
    std::string toString() const;
};

/** A published/parked scheduler entry (IQ ready list, issue-stage stall
 *  lists, LSQ hold subscriptions): @p inst is valid while the
 *  instruction is still resident with the recorded sequence number —
 *  the same lazy-staleness idiom as the wakeup wait lists. */
struct ReadyRef
{
    DynInst *inst;
    InstSeqNum seq;
};

} // namespace vpr

#endif // VPR_CORE_DYN_INST_HH
