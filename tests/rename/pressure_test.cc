/** @file Unit tests for the register-pressure tracker. */

#include <gtest/gtest.h>

#include "rename/pressure.hh"

namespace vpr
{
namespace
{

TEST(Pressure, IntegratesHoldingTime)
{
    PressureTracker p(8);
    p.onAlloc(0, 10);
    p.onAlloc(1, 12);
    p.onFree(0, 30);   // held 20
    p.onFree(1, 42);   // held 30
    EXPECT_EQ(p.totalHoldCycles(), 50u);
    EXPECT_EQ(p.completedAllocations(), 2u);
    EXPECT_DOUBLE_EQ(p.meanHoldCycles(), 25.0);
}

TEST(Pressure, TracksBusyAndPeak)
{
    PressureTracker p(8);
    EXPECT_EQ(p.busy(), 0u);
    p.onAlloc(0, 0);
    p.onAlloc(1, 0);
    p.onAlloc(2, 0);
    EXPECT_EQ(p.busy(), 3u);
    p.onFree(1, 5);
    EXPECT_EQ(p.busy(), 2u);
    EXPECT_EQ(p.peakBusy(), 3u);
}

TEST(Pressure, ReuseAfterFree)
{
    PressureTracker p(4);
    p.onAlloc(2, 0);
    p.onFree(2, 10);
    p.onAlloc(2, 20);
    p.onFree(2, 25);
    EXPECT_EQ(p.totalHoldCycles(), 15u);
}

TEST(Pressure, ResetRebasesLiveAllocations)
{
    PressureTracker p(4);
    p.onAlloc(0, 0);
    p.onAlloc(1, 0);
    p.onFree(1, 50);
    p.reset(100);
    EXPECT_EQ(p.totalHoldCycles(), 0u);
    EXPECT_EQ(p.completedAllocations(), 0u);
    EXPECT_EQ(p.busy(), 1u);  // register 0 still held
    // Register 0 now counts from the reset point.
    p.onFree(0, 110);
    EXPECT_EQ(p.totalHoldCycles(), 10u);
}

TEST(Pressure, ZeroWhenNothingCompleted)
{
    PressureTracker p(4);
    EXPECT_DOUBLE_EQ(p.meanHoldCycles(), 0.0);
}

TEST(PressureDeath, DoubleAllocPanics)
{
    PressureTracker p(4);
    p.onAlloc(0, 0);
    EXPECT_DEATH(p.onAlloc(0, 1), "double alloc");
}

TEST(PressureDeath, FreeUnallocatedPanics)
{
    PressureTracker p(4);
    EXPECT_DEATH(p.onFree(0, 1), "unallocated");
}

TEST(PressureDeath, OutOfRangeRegPanics)
{
    PressureTracker p(4);
    EXPECT_DEATH(p.onAlloc(4, 0), "bad phys reg");
}

} // namespace
} // namespace vpr
