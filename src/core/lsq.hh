/**
 * @file
 * Load/store queue with PA-8000-style memory disambiguation.
 *
 * The paper assumes the memory disambiguation scheme of the PA-8000's
 * address-reorder buffer: loads may execute out of order with respect to
 * stores only once every older store's address is known; a load whose
 * address matches an older store forwards the store's data instead of
 * accessing the cache. Stores update the data cache at commit.
 */

#ifndef VPR_CORE_LSQ_HH
#define VPR_CORE_LSQ_HH

#include <cstdint>
#include <deque>

#include "common/stats.hh"
#include "core/dyn_inst.hh"

namespace vpr
{

/** Why a load cannot begin its memory access yet. */
enum class LoadHold : std::uint8_t
{
    Ready,          ///< may access the cache
    Forward,        ///< older matching store will forward its data
    UnknownAddress, ///< an older store's address is not known yet
    PartialOverlap  ///< overlaps an older store but cannot forward
};

/** The load/store queue (a single age-ordered structure). */
class Lsq
{
  public:
    explicit Lsq(std::size_t capacity)
        : cap(capacity),
          occupancy(stats::Distribution::evenBuckets(
              "occupancy", "entries occupied per cycle", 0, capacity, 16))
    {
        group.add(&occupancy);
        group.add(&nForwards);
        group.add(&nUnknownHolds);
        group.add(&nPartialHolds);
    }

    bool full() const { return list.size() >= cap; }
    bool empty() const { return list.empty(); }
    std::size_t size() const { return list.size(); }
    std::size_t capacity() const { return cap; }

    /** Insert a memory instruction at rename (program order). */
    void insert(DynInst *inst);

    /** Remove the entry for @p inst (at commit). */
    void remove(DynInst *inst);

    /** Remove every entry younger than @p seq (branch recovery). */
    void squashYoungerThan(InstSeqNum seq);

    /**
     * Disambiguation check for @p load at cycle @p now: scan older
     * entries for stores with unknown or conflicting addresses.
     */
    LoadHold checkLoad(const DynInst *load, Cycle now) const;

    /** Statistics. @{ */
    std::uint64_t forwards() const { return nForwards.value(); }
    std::uint64_t unknownAddrHolds() const { return nUnknownHolds.value(); }
    std::uint64_t partialOverlapHolds() const
    {
        return nPartialHolds.value();
    }
    /** @} */

    /** Account a hold decision (called by the core at issue time). */
    void recordHold(LoadHold h);

    /** Record this cycle's occupancy (called once per cycle). */
    void sampleOccupancy() { occupancy.sample(list.size()); }

    /** Register the "lsq" stat group into the core's stats tree. */
    void regStats(stats::StatRegistry &r) { r.add(&group); }

    const std::deque<DynInst *> &entries() const { return list; }

    void clear() { list.clear(); }

  private:
    static bool
    overlap(Addr a, unsigned aSize, Addr b, unsigned bSize)
    {
        return a < b + bSize && b < a + aSize;
    }

    std::size_t cap;
    std::deque<DynInst *> list;  ///< program order, front = oldest

    stats::StatGroup group{"lsq"};
    stats::Distribution occupancy;
    stats::Scalar nForwards{"forwards", "store-to-load forwards"};
    stats::Scalar nUnknownHolds{"unknown_addr_holds",
                                "loads held on an unknown store address"};
    stats::Scalar nPartialHolds{
        "partial_overlap_holds",
        "loads held on a partial store overlap"};
};

} // namespace vpr

#endif // VPR_CORE_LSQ_HH
