/**
 * @file
 * Functional-unit pool per Table 1 of the paper.
 *
 * Per-type unit counts with per-cycle issue limits. Fully pipelined
 * units accept one operation per cycle each; the integer and FP dividers
 * are unpipelined and stay busy for the whole operation.
 */

#ifndef VPR_CORE_FU_POOL_HH
#define VPR_CORE_FU_POOL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/op_class.hh"

namespace vpr
{

class ParamVisitor;

/** Configurable unit counts (defaults = paper's Table 1). */
struct FuPoolConfig
{
    unsigned simpleInt = 3;
    unsigned complexInt = 2;
    unsigned effAddr = 3;
    unsigned simpleFp = 3;
    unsigned fpMul = 2;
    unsigned fpDivSqrt = 2;

    unsigned count(FUType t) const;

    /** Reflect the unit counts (sim/params.hh). */
    void visitParams(ParamVisitor &v);
};

/** Tracks functional-unit availability cycle by cycle. */
class FuPool
{
  public:
    explicit FuPool(const FuPoolConfig &config = FuPoolConfig());

    /** Start a new cycle: clears the per-cycle issue counters. */
    void beginCycle(Cycle now);

    /** Units of @p t that could still accept an op this cycle. Inline
     *  with the per-type count cached at construction: the issue stage
     *  probes availability for every candidate every cycle. */
    unsigned
    available(FUType t, Cycle now) const
    {
        if (t == FUType::None)
            return ~0u;
        std::size_t i = static_cast<std::size_t>(t);
        unsigned busy = 0;
        for (Cycle c : busyUntil[i])
            if (c > now)
                ++busy;
        unsigned inUse = busy + usedThisCycle[i];
        return inUse >= counts[i] ? 0 : counts[i] - inUse;
    }

    /**
     * Try to issue an op of class @p op at cycle @p now finishing at
     * @p completeCycle. Unpipelined classes hold a unit until
     * completion.
     * @return true on success (the unit is claimed).
     */
    bool tryIssue(OpClass op, Cycle now, Cycle completeCycle);

    const FuPoolConfig &config() const { return cfg; }

    /** Issued-op counters per FU type (stats). */
    std::uint64_t issuedOps(FUType t) const
    {
        return issued[static_cast<std::size_t>(t)];
    }

    /** Ops denied because all units were busy (stats). */
    std::uint64_t structuralHazards() const { return nHazards; }

    /** Return to the constructed state: every unit idle, per-cycle and
     *  whole-run counters zeroed (simulator reuse between grid cells). */
    void
    clear()
    {
        usedThisCycle.fill(0);
        for (auto &v : busyUntil)
            v.clear();
        issued.fill(0);
        nHazards = 0;
    }

  private:
    FuPoolConfig cfg;
    /** cfg.count(t) per type, cached at construction (hot-path read). */
    std::array<unsigned, kNumFUTypes> counts{};
    /** Per-type ops accepted this cycle. */
    std::array<unsigned, kNumFUTypes> usedThisCycle{};
    /** Busy-until cycles of unpipelined ops, per type. */
    std::array<std::vector<Cycle>, kNumFUTypes> busyUntil;
    std::array<std::uint64_t, kNumFUTypes> issued{};
    std::uint64_t nHazards = 0;
};

} // namespace vpr

#endif // VPR_CORE_FU_POOL_HH
