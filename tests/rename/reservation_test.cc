/**
 * @file
 * Unit tests for the NRR reservation tracker — the paper's section 3.3
 * deadlock-avoidance predicate (PRR pointers + Reg/Used counters).
 */

#include <gtest/gtest.h>

#include "rename/reservation.hh"

namespace vpr
{
namespace
{

TEST(Reservation, OldestNrrAreReserved)
{
    ReservationTracker t(2);
    t.onRename(10);
    t.onRename(11);
    t.onRename(12);
    EXPECT_TRUE(t.isReserved(10));
    EXPECT_TRUE(t.isReserved(11));
    EXPECT_FALSE(t.isReserved(12));
    EXPECT_EQ(t.reservedCount(), 2u);
}

TEST(Reservation, ReservedSetSmallerThanNrrWhenFewInFlight)
{
    ReservationTracker t(4);
    t.onRename(1);
    EXPECT_EQ(t.reservedCount(), 1u);
    EXPECT_TRUE(t.isReserved(1));
}

TEST(Reservation, ReservedAlwaysMayAllocateWithFreeRegs)
{
    ReservationTracker t(2);
    t.onRename(1);
    t.onRename(2);
    t.onRename(3);
    EXPECT_TRUE(t.mayAllocate(1, 1));
    EXPECT_TRUE(t.mayAllocate(2, 1));
}

TEST(Reservation, NothingAllocatesWithZeroFree)
{
    ReservationTracker t(2);
    t.onRename(1);
    EXPECT_FALSE(t.mayAllocate(1, 0));
}

TEST(Reservation, YoungerNeedsSlackBeyondReservation)
{
    // The paper's condition: free > NRR - Used for non-reserved.
    ReservationTracker t(2);
    t.onRename(1);
    t.onRename(2);
    t.onRename(3);
    // Used = 0: instruction 3 needs free > 2.
    EXPECT_FALSE(t.mayAllocate(3, 1));
    EXPECT_FALSE(t.mayAllocate(3, 2));
    EXPECT_TRUE(t.mayAllocate(3, 3));
}

TEST(Reservation, UsedCounterRelaxesYoungerAllocation)
{
    ReservationTracker t(2);
    t.onRename(1);
    t.onRename(2);
    t.onRename(3);
    t.onAllocate(1);
    EXPECT_EQ(t.usedInReserved(), 1u);
    // Now free > 2 - 1 suffices.
    EXPECT_TRUE(t.mayAllocate(3, 2));
    EXPECT_FALSE(t.mayAllocate(3, 1));
    t.onAllocate(2);
    EXPECT_TRUE(t.mayAllocate(3, 1));
}

TEST(Reservation, CommitAdvancesReservedWindow)
{
    ReservationTracker t(1);
    t.onRename(1);
    t.onRename(2);
    t.onAllocate(1);
    t.onCommit(1);
    // Instruction 2 is now the oldest and becomes reserved.
    EXPECT_TRUE(t.isReserved(2));
    EXPECT_EQ(t.usedInReserved(), 0u);
}

TEST(Reservation, SquashRemovesYoungest)
{
    ReservationTracker t(2);
    t.onRename(1);
    t.onRename(2);
    t.onRename(3);
    t.onSquash(3);
    EXPECT_EQ(t.inFlight(), 2u);
    t.onSquash(2);
    t.onSquash(1);
    EXPECT_TRUE(t.empty());
}

TEST(Reservation, PaperScenarioSequentialTail)
{
    // Section 3.3's NRR=1 example: with one reserved register the
    // machine still makes forward progress — the oldest instruction may
    // always allocate; younger ones need free > 1 - Used.
    ReservationTracker t(1);
    for (InstSeqNum i = 1; i <= 5; ++i)
        t.onRename(i);
    EXPECT_TRUE(t.mayAllocate(1, 1));
    EXPECT_FALSE(t.mayAllocate(4, 1));
    EXPECT_TRUE(t.mayAllocate(4, 2));
    t.onAllocate(1);
    // The reserved instruction has its register: younger may drain the
    // remaining pool completely.
    EXPECT_TRUE(t.mayAllocate(4, 1));
}

TEST(ReservationDeath, ZeroNrrPanics)
{
    EXPECT_DEATH(ReservationTracker(0), "NRR");
}

TEST(ReservationDeath, OutOfOrderRenamePanics)
{
    ReservationTracker t(2);
    t.onRename(5);
    EXPECT_DEATH(t.onRename(3), "program order");
}

TEST(ReservationDeath, CommitOfNonOldestPanics)
{
    ReservationTracker t(2);
    t.onRename(1);
    t.onRename(2);
    EXPECT_DEATH(t.onCommit(2), "non-oldest");
}

TEST(ReservationDeath, DoubleAllocatePanics)
{
    ReservationTracker t(2);
    t.onRename(1);
    t.onAllocate(1);
    EXPECT_DEATH(t.onAllocate(1), "double allocation");
}

} // namespace
} // namespace vpr
