/**
 * @file
 * Figure 7 of the paper: IPC of the conventional and virtual-physical
 * organizations (write-back allocation, NRR = NPR - 32) for register
 * files of 48, 64 and 96 physical registers, plus the paper's register
 * saving observation (VP at 48 regs ≈ conventional at 64).
 * Grid/table: bench/figures/.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("fig7_regfile_size", argc, argv);
}
