/**
 * @file
 * Property test: the paper's ROB-walk recovery is an exact inverse of
 * renaming. For random instruction sequences with random completions,
 * squashing the youngest k instructions must restore the renamer to a
 * state indistinguishable from the checkpoint taken before they were
 * renamed — for both schemes and both allocation policies.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "common/random.hh"
#include "rename/factory.hh"
#include "rename/conventional.hh"
#include "rename/virtual_physical.hh"

namespace vpr
{
namespace
{

/** Observable rename state used for checkpoint comparison. */
struct Observed
{
    std::vector<std::uint16_t> srcTag[kNumRegClasses];
    std::vector<bool> srcReady[kNumRegClasses];
    std::size_t freeInt;
    std::size_t freeFp;

    bool
    operator==(const Observed &o) const
    {
        for (std::size_t c = 0; c < kNumRegClasses; ++c)
            if (srcTag[c] != o.srcTag[c] || srcReady[c] != o.srcReady[c])
                return false;
        return freeInt == o.freeInt && freeFp == o.freeFp;
    }
};

/** Bind a standalone DynInst to a fresh hot-pool slot (the ROB does
 *  this in production) and stamp its sequence number. */
void
bind(DynInst &d, InstSeqNum seq)
{
    static InstHotPool pool(1 << 14);
    static HotIdx next = 0;
    HotIdx sl = next++ % pool.capacity();
    pool.reset(sl);
    d.bindHot(&pool, sl);
    d.setSeq(seq);
}

/**
 * Probe the renamer by renaming "fake" readers of every logical
 * register and recording how the sources map — a behavioural snapshot
 * that does not disturb the renamer (the probe instruction has no
 * destination; store templates have no dest register).
 */
Observed
observe(RenameManager &rn)
{
    Observed o;
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        for (std::uint16_t l = 0; l < kNumLogicalRegs; ++l) {
            RegId reg = c == 0 ? RegId::intReg(l) : RegId::fpReg(l);
            DynInst probe;
            probe.si = StaticInst::store(reg, RegId(), 0x1000);
            bind(probe, 0);  // never registered: no dest
            rn.renameInst(probe, 0);
            o.srcTag[c].push_back(probe.src[0].tag);
            o.srcReady[c].push_back(probe.src[0].ready);
        }
    }
    o.freeInt = rn.freePhysRegs(RegClass::Int);
    o.freeFp = rn.freePhysRegs(RegClass::Float);
    return o;
}

class RollbackPropertyTest
    : public ::testing::TestWithParam<std::tuple<RenameScheme,
                                                 std::uint64_t>>
{
};

TEST_P(RollbackPropertyTest, SquashIsExactInverse)
{
    auto [scheme, seed] = GetParam();
    RenameConfig rc;
    rc.numPhysRegs = 64;
    rc.numVPRegs = 160;
    rc.nrrInt = 8;
    rc.nrrFp = 8;
    auto rn = makeRenamer(scheme, rc);
    Random rng(seed);

    InstSeqNum seq = 0;
    Cycle now = 0;
    std::vector<std::unique_ptr<DynInst>> committedPath;

    // Build a random committed prefix so the state is not the reset
    // state: rename+complete+commit a few instructions.
    for (int i = 0; i < 20; ++i) {
        ++now;
        rn->tick(now);
        auto d = std::make_unique<DynInst>();
        bool fp = rng.chancePermille(500);
        std::uint16_t l = rng.below(kNumLogicalRegs);
        d->si = fp ? StaticInst::fpAdd(RegId::fpReg(l), RegId::fpReg(1),
                                       RegId::fpReg(2))
                   : StaticInst::alu(RegId::intReg(l), RegId::intReg(1),
                                     RegId::intReg(2));
        bind(*d, ++seq);
        rn->renameInst(*d, now);
        rn->tryIssue(*d, now);
        EXPECT_TRUE(rn->complete(*d, now).ok);
        rn->commitInst(*d, now);
    }
    ++now;
    rn->tick(now);

    Observed checkpoint = observe(*rn);

    // Rename a random burst; complete (and maybe issue) a random subset
    // in random legal order; never commit.
    std::vector<std::unique_ptr<DynInst>> burst;
    unsigned n = 1 + rng.below(24);
    for (unsigned i = 0; i < n; ++i) {
        auto d = std::make_unique<DynInst>();
        bool fp = rng.chancePermille(400);
        std::uint16_t l = rng.below(kNumLogicalRegs);
        d->si = fp ? StaticInst::fpMul(RegId::fpReg(l), RegId::fpReg(3),
                                       RegId::fpReg(4))
                   : StaticInst::alu(RegId::intReg(l), RegId::intReg(3),
                                     RegId::intReg(4));
        bind(*d, ++seq);
        rn->renameInst(*d, now);
        burst.push_back(std::move(d));
    }
    for (auto &d : burst) {
        if (rng.chancePermille(600)) {
            ++now;
            rn->tick(now);
            if (rn->tryIssue(*d, now)) {
                rn->complete(*d, now);
            }
        }
    }

    // Recovery walk: squash youngest-first.
    for (auto it = burst.rbegin(); it != burst.rend(); ++it) {
        ++now;
        rn->squashInst(**it, now);
    }
    rn->checkInvariants();

    Observed after = observe(*rn);
    EXPECT_TRUE(after == checkpoint)
        << "rollback did not restore rename state (scheme "
        << renameSchemeName(scheme) << ", seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, RollbackPropertyTest,
    ::testing::Combine(
        ::testing::Values(RenameScheme::Conventional,
                          RenameScheme::VPAllocAtWriteback,
                          RenameScheme::VPAllocAtIssue),
        ::testing::Range<std::uint64_t>(1, 13)),
    [](const auto &info) {
        std::string s = renameSchemeName(std::get<0>(info.param));
        for (auto &ch : s)
            if (ch == '-')
                ch = '_';
        return s + "_seed" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace vpr
