#include "sim/simulator.hh"

#include <iomanip>

#include "common/logging.hh"
#include "common/random.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{

namespace
{

/** Component salt for deriveSeed: the wrong-path synthesis RNG. */
constexpr std::uint64_t kWrongPathSalt = 0x77f00dull;

/** Thread the run's master seed into every stochastic component the
 *  config controls; with seed 0 the per-component defaults apply. */
void
threadSeed(SimConfig &cfg)
{
    if (cfg.seed != 0)
        cfg.core.fetch.wrongPathSeed =
            deriveSeed(cfg.seed, kWrongPathSalt);
}

} // namespace

Simulator::Simulator(TraceStream &stream, const SimConfig &config)
    : cfg(config)
{
    cfg.validate();
    threadSeed(cfg);
    theCore = std::make_unique<Core>(stream, cfg.core);
}

Simulator::Simulator(const std::string &benchmark, const SimConfig &config)
    : cfg(config)
{
    cfg.validate();
    threadSeed(cfg);
    ownedStream = makeBenchmarkStream(benchmark, cfg.seed);
    theCore = std::make_unique<Core>(*ownedStream, cfg.core);
}

SimResults
Simulator::run()
{
    Core &c = *theCore;
    if (cfg.skipInsts > 0)
        c.runUntilCommitted(cfg.skipInsts);
    c.resetStats();
    std::uint64_t target = c.committedInsts() + cfg.measureInsts;
    c.runUntilCommitted(target);

    SimResults r;
    collectMetrics(r.metrics);
    return r;
}

void
Simulator::collectMetrics(MetricsRecord &m)
{
    // The record is one walk of the core's stats tree: every component
    // and stage owns its StatGroup, so a stat added anywhere appears
    // here (and in every exporter downstream) with no glue.
    theCore->visitStats(m);
}

void
Simulator::printReport(std::ostream &os, const SimResults &r) const
{
    os << "scheme            " << renameSchemeName(cfg.core.scheme)
       << "\n";
    os << "physRegs/file     " << cfg.core.rename.numPhysRegs << "\n";
    os << "NRR (int/fp)      " << cfg.core.rename.nrrInt << "/"
       << cfg.core.rename.nrrFp << "\n";
    // The record is self-describing: one line per metric. Histogram
    // buckets are elided — the moments summarize each distribution and
    // the full shape travels in the --out record files.
    for (const Metric &m : r.metrics.all()) {
        if (m.name.find(".hist[") != std::string::npos)
            continue;
        os << std::left << std::setw(32) << m.name << " " << std::right
           << std::setw(14);
        if (m.kind == Metric::Kind::UInt)
            os << m.uval;
        else
            os << std::fixed << std::setprecision(4) << m.rval
               << std::defaultfloat;
        os << "  # " << m.desc << "\n";
    }
}

} // namespace vpr
