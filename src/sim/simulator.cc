#include "sim/simulator.hh"

#include <iomanip>
#include <iostream>

#include "common/io/zio.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "sim/checkpoint.hh"
#include "sim/params.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{

namespace
{

/** Component salt for deriveSeed: the wrong-path synthesis RNG. */
constexpr std::uint64_t kWrongPathSalt = 0x77f00dull;

/** Thread the run's master seed into every stochastic component the
 *  config controls; with seed 0 the per-component defaults apply. */
void
threadSeed(SimConfig &cfg)
{
    if (cfg.seed != 0)
        cfg.core.fetch.wrongPathSeed =
            deriveSeed(cfg.seed, kWrongPathSalt);
}

} // namespace

Simulator::Simulator(TraceStream &externalStream, const SimConfig &config)
    : cfg(config), stream(&externalStream)
{
    cfg.validate();
    threadSeed(cfg);
    benchName = stream->identity();
    theCore = std::make_unique<Core>(*stream, cfg.core);
}

Simulator::Simulator(const std::string &benchmark, const SimConfig &config)
    : cfg(config), benchName(benchmark)
{
    cfg.validate();
    threadSeed(cfg);
    ownedStream = makeBenchmarkStream(benchmark, cfg.seed);
    stream = ownedStream.get();
    theCore = std::make_unique<Core>(*stream, cfg.core);
}

void
Simulator::rebuildCore()
{
    theCore = std::make_unique<Core>(*stream, cfg.core);
}

bool
Simulator::reinit(const std::string &benchmark, const SimConfig &config)
{
    // Reuse needs the same stream: owned (we may rewind it), the same
    // benchmark, and the same seed (the kernel stream bakes the seed in
    // at construction).
    if (!ownedStream || benchmark != benchName)
        return false;
    SimConfig fresh = config;
    fresh.validate();
    threadSeed(fresh);
    if (fresh.seed != cfg.seed)
        return false;

    // Same core-level provenance (both sides seed-threaded) means the
    // constructed core would be structurally and behaviourally
    // identical, so the existing one is reinitialised in place; any
    // difference falls back to reconstruction. Run-control parameters
    // (skip/measure/sampling) never affect core construction.
    const auto provA = configProvenance(cfg);
    const auto provB = configProvenance(fresh);
    bool sameCore = provA.size() == provB.size();
    for (std::size_t i = 0; sameCore && i < provA.size(); ++i) {
        if (provA[i].first.compare(0, 5, "core.") != 0)
            continue;
        sameCore = provA[i] == provB[i];
    }

    cfg = fresh;
    stream->reset();
    if (sameCore)
        theCore->reinit();
    else
        rebuildCore();
    return true;
}

bool
Simulator::ckptActive() const
{
    return !cfg.ckpt.dir.empty() && cfg.skipInsts > 0 &&
           !stream->identity().empty();
}

bool
Simulator::tryRestoreCheckpoint(CkptScope scope)
{
    const std::uint64_t digest =
        warmStateDigest(cfg, benchName, stream->identity(), scope);
    const std::string path =
        checkpointPath(cfg.ckpt.dir, benchName, scope, digest);
    std::string raw;
    if (!readFileBytes(path, raw))
        return false;  // cache miss: core untouched, warm up cold
    try {
        if (guessFormat(raw) == FileFormat::Vprz)
            raw = vprzUnpack(raw, "ckpt");
        const std::string payload = unpackCheckpoint(raw, scope, digest);
        rebuildCore();
        StateLoader loader(payload);
        theCore->visitState(loader, scope);
        if (!loader.exhausted())
            throw CkptError("trailing bytes after checkpoint state");
        return true;
    } catch (const CkptError &e) {
        std::cerr << "vpr: warning: ignoring checkpoint " << path << ": "
                  << e.what() << "; warming up cold\n";
        // The failed load may have half-mutated the core and advanced
        // the stream; rebuild both before the cold fallback.
        stream->reset();
        rebuildCore();
        return false;
    }
}

void
Simulator::saveAndReloadCheckpoint(CkptScope scope)
{
    const std::uint64_t digest =
        warmStateDigest(cfg, benchName, stream->identity(), scope);
    StateSaver saver;
    theCore->visitState(saver, scope);
    const std::string raw = packCheckpoint(scope, digest, saver.take());
    if (cfg.ckpt.save) {
        const std::string path =
            checkpointPath(cfg.ckpt.dir, benchName, scope, digest);
        const std::string bytes =
            vprzPack(raw, "ckpt", cfg.ckpt.compress);
        if (!writeFileAtomic(path, bytes))
            std::cerr << "vpr: warning: cannot write checkpoint " << path
                      << "; continuing without saving\n";
    }
    // Measure from a constructed-then-loaded core even on the cold run,
    // so cold and restored measurements are byte-identical.
    const std::string payload = unpackCheckpoint(raw, scope, digest);
    rebuildCore();
    StateLoader loader(payload);
    theCore->visitState(loader, scope);
    VPR_ASSERT(loader.exhausted(), "checkpoint reload left bytes over");
}

SimResults
Simulator::run()
{
    if (cfg.sampling.enable)
        return runSampled();

    if (cfg.skipInsts > 0) {
        if (ckptActive()) {
            // Full-scope checkpoint: the detailed warm-up touches
            // everything, so the warm key covers the full provenance.
            if (!tryRestoreCheckpoint(CkptScope::Full)) {
                theCore->runUntilCommitted(cfg.skipInsts);
                theCore->drainForCheckpoint();
                saveAndReloadCheckpoint(CkptScope::Full);
            }
        } else {
            theCore->runUntilCommitted(cfg.skipInsts);
        }
    }
    // The checkpoint step may have replaced the core; bind after it.
    Core &c = *theCore;
    c.resetStats();
    std::uint64_t target = c.committedInsts() + cfg.measureInsts;
    c.runUntilCommitted(target);

    SimResults r;
    collectMetrics(r.metrics);
    return r;
}

SimResults
Simulator::runSampled()
{
    const SamplingConfig &sp = cfg.sampling;
    // Per validate(): detailedInsts >= 1, warmup+detailed <= period,
    // period <= measure, so ffInsts and nIntervals are well defined.
    const std::uint64_t ffInsts =
        sp.periodInsts - sp.warmupInsts - sp.detailedInsts;
    const std::uint64_t nIntervals = cfg.measureInsts / sp.periodInsts;

    // The initial skip goes through the same functional-warming path as
    // the inter-interval fast-forwards — that is the whole point of
    // sampling: the paper's 100M-skip warm-up becomes nearly free.
    // Functional-scope checkpoint: the fast-forward only warms the
    // trace position, BHT and caches, so one cached checkpoint is
    // shared by every cell of a scheme x regfile-size sweep grid.
    if (cfg.skipInsts > 0) {
        if (ckptActive()) {
            if (!tryRestoreCheckpoint(CkptScope::Functional)) {
                theCore->fastForward(cfg.skipInsts, sp.functionalWarming);
                theCore->drainForCheckpoint();
                saveAndReloadCheckpoint(CkptScope::Functional);
            }
        } else {
            theCore->fastForward(cfg.skipInsts, sp.functionalWarming);
        }
    }
    // The checkpoint step may have replaced the core; bind after it.
    Core &c = *theCore;

    stats::SampleEstimator ipcSampled{
        "ipc.sampled", "sampled-IPC estimator over detailed intervals"};
    // Companion to the point estimator: the full shape of the
    // per-interval IPC observations, in milli-IPC so the integer
    // histogram keeps three decimals of resolution. An 8-wide core
    // cannot exceed IPC 8, so the range is exact.
    stats::Distribution ipcDist = stats::Distribution::evenBuckets(
        "ipc.sampled.dist", "per-interval IPC observations (milli-IPC)",
        0, 8000, 16);

    // One record, revisited in place every interval: the stats tree's
    // schema is fixed after construction, so walks after the first
    // overwrite values without rebuilding names — record construction
    // would otherwise dominate short sampled runs. Parallel arrays
    // accumulate the per-column aggregates; UInt metrics (counters,
    // histogram buckets) sum across intervals, Real metrics (rates,
    // ratios) take the unweighted mean — for core.ipc that mean of
    // interval IPCs *is* the SMARTS point estimator the
    // core.ipc.sampled.* stats quantify.
    SimResults r;
    MetricsRecord &rec = r.metrics;
    std::vector<std::uint64_t> usum;
    std::vector<double> rsum;
    std::uint64_t measured = 0;
    for (std::uint64_t i = 0; i < nIntervals; ++i) {
        if (ffInsts > 0)
            c.fastForward(ffInsts, sp.functionalWarming);
        if (sp.warmupInsts > 0)
            c.runUntilCommitted(c.committedInsts() + sp.warmupInsts);
        c.resetStats();
        c.runUntilCommitted(c.committedInsts() + sp.detailedInsts);

        c.visitStats(rec);
        if (nIntervals > 1) {
            const std::vector<Metric> &cols = rec.all();
            if (measured == 0) {
                usum.assign(cols.size(), 0);
                rsum.assign(cols.size(), 0.0);
            }
            VPR_ASSERT(cols.size() == usum.size(),
                       "interval metric schema changed mid-run");
            for (std::size_t k = 0; k < cols.size(); ++k) {
                if (cols[k].kind == Metric::Kind::UInt)
                    usum[k] += cols[k].uval;
                else
                    rsum[k] += cols[k].rval;
            }
        }
        const double ipc = rec.real("core.ipc");
        ipcSampled.sample(ipc);
        ipcDist.sample(static_cast<std::uint64_t>(ipc * 1000.0 + 0.5));
        ++measured;
        if (c.done())
            break;
    }
    VPR_ASSERT(measured > 0, "sampled run measured zero intervals");

    // Fold the accumulated aggregates back into the record. A run that
    // measured a single interval is already its own aggregate (sum and
    // mean of one sample), so the record stands as visited.
    if (measured > 1) {
        for (std::size_t k = 0; k < rec.all().size(); ++k) {
            const Metric &m = rec.all()[k];
            if (m.kind == Metric::Kind::UInt)
                rec.setUInt(m.nameSym, m.descSym, usum[k]);
            else
                rec.setReal(m.nameSym, m.descSym,
                            rsum[k] / static_cast<double>(measured));
        }
    }

    // Append the estimator through the same group/visit machinery as
    // every other stat so it lands as core.ipc.sampled.* in the schema.
    stats::StatGroup sampledGroup{"core"};
    sampledGroup.add(&ipcSampled);
    sampledGroup.add(&ipcDist);
    sampledGroup.visit(rec);
    return r;
}

void
Simulator::collectMetrics(MetricsRecord &m)
{
    // The record is one walk of the core's stats tree: every component
    // and stage owns its StatGroup, so a stat added anywhere appears
    // here (and in every exporter downstream) with no glue.
    theCore->visitStats(m);
}

void
Simulator::printReport(std::ostream &os, const SimResults &r) const
{
    os << "scheme            " << renameSchemeName(cfg.core.scheme)
       << "\n";
    os << "physRegs/file     " << cfg.core.rename.numPhysRegs << "\n";
    os << "NRR (int/fp)      " << cfg.core.rename.nrrInt << "/"
       << cfg.core.rename.nrrFp << "\n";
    if (r.metrics.has("core.ipc.sampled.mean")) {
        os << "sampled ipc       " << std::fixed << std::setprecision(4)
           << r.metrics.real("core.ipc.sampled.mean") << " +/- "
           << r.metrics.real("core.ipc.sampled.ci95")
           << std::defaultfloat << "  (95% CI over "
           << r.metrics.counter("core.ipc.sampled.intervals")
           << " intervals)\n";
    }
    // The record is self-describing: one line per metric. Histogram
    // buckets are elided — the moments summarize each distribution and
    // the full shape travels in the --out record files.
    for (const Metric &m : r.metrics.all()) {
        if (m.name().find(".hist[") != std::string::npos)
            continue;
        os << std::left << std::setw(32) << m.name() << " "
           << std::right << std::setw(14);
        if (m.kind == Metric::Kind::UInt)
            os << m.uval;
        else
            os << std::fixed << std::setprecision(4) << m.rval
               << std::defaultfloat;
        os << "  # " << m.desc() << "\n";
    }
}

} // namespace vpr
