/** @file Unit tests for TraceBuilder. */

#include <gtest/gtest.h>

#include "trace/builder.hh"

namespace vpr
{
namespace
{

TEST(TraceBuilder, AssignsSequentialPcs)
{
    TraceBuilder b(0x1000);
    b.alu(RegId::intReg(1), RegId::intReg(2));
    b.nop();
    b.load(RegId::intReg(3), RegId::intReg(1), 0x100);
    auto recs = b.records();
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].pc, 0x1000u);
    EXPECT_EQ(recs[1].pc, 0x1004u);
    EXPECT_EQ(recs[2].pc, 0x1008u);
}

TEST(TraceBuilder, RepeatDuplicatesBodyKeepingPcs)
{
    TraceBuilder b;
    b.alu(RegId::intReg(1), RegId::intReg(2));
    b.mark();
    b.fpAdd(RegId::fpReg(1), RegId::fpReg(2));
    b.fpMul(RegId::fpReg(2), RegId::fpReg(1), RegId::fpReg(3));
    b.repeat(3);
    auto recs = b.records();
    // 1 prefix + 2 body * 3 repetitions.
    ASSERT_EQ(recs.size(), 7u);
    // Repeated iterations reuse the original PCs (same static insts).
    EXPECT_EQ(recs[1].pc, recs[3].pc);
    EXPECT_EQ(recs[2].pc, recs[4].pc);
    EXPECT_EQ(recs[1].op, OpClass::FpAdd);
    EXPECT_EQ(recs[5].op, OpClass::FpAdd);
}

TEST(TraceBuilder, StreamYieldsAllRecordsThenEnds)
{
    TraceBuilder b;
    b.nop().nop().nop();
    auto s = b.stream(false);
    int n = 0;
    while (s->next())
        ++n;
    EXPECT_EQ(n, 3);
    EXPECT_FALSE(s->next().has_value());
}

TEST(TraceBuilder, LoopingStreamWrapsForever)
{
    TraceBuilder b;
    b.nop().nop();
    auto s = b.stream(true);
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(s->next().has_value());
}

TEST(TraceBuilder, StreamResetRewinds)
{
    TraceBuilder b(0x2000);
    b.alu(RegId::intReg(1), RegId::intReg(2));
    b.nop();
    auto s = b.stream(false);
    auto first = s->next();
    s->next();
    s->reset();
    auto again = s->next();
    ASSERT_TRUE(first && again);
    EXPECT_EQ(first->pc, again->pc);
}

TEST(TraceBuilder, AllEmittersProduceExpectedOps)
{
    TraceBuilder b;
    b.alu(RegId::intReg(1), RegId::intReg(2))
        .mult(RegId::intReg(1), RegId::intReg(2), RegId::intReg(3))
        .div(RegId::intReg(1), RegId::intReg(2), RegId::intReg(3))
        .fpAdd(RegId::fpReg(1), RegId::fpReg(2))
        .fpMul(RegId::fpReg(1), RegId::fpReg(2), RegId::fpReg(3))
        .fpDiv(RegId::fpReg(1), RegId::fpReg(2), RegId::fpReg(3))
        .fpSqrt(RegId::fpReg(1), RegId::fpReg(2))
        .load(RegId::intReg(1), RegId::intReg(2), 0x10)
        .store(RegId::intReg(1), RegId::intReg(2), 0x20)
        .branch(RegId::intReg(1), true, 0x1234)
        .nop();
    auto r = b.records();
    ASSERT_EQ(r.size(), 11u);
    EXPECT_EQ(r[0].op, OpClass::IntAlu);
    EXPECT_EQ(r[1].op, OpClass::IntMult);
    EXPECT_EQ(r[2].op, OpClass::IntDiv);
    EXPECT_EQ(r[3].op, OpClass::FpAdd);
    EXPECT_EQ(r[4].op, OpClass::FpMult);
    EXPECT_EQ(r[5].op, OpClass::FpDiv);
    EXPECT_EQ(r[6].op, OpClass::FpSqrt);
    EXPECT_EQ(r[7].op, OpClass::Load);
    EXPECT_EQ(r[8].op, OpClass::Store);
    EXPECT_EQ(r[9].op, OpClass::Branch);
    EXPECT_EQ(r[10].op, OpClass::Nop);
}

} // namespace
} // namespace vpr
