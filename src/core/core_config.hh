/**
 * @file
 * Full configuration of one core (defaults = the paper's section 4.1
 * machine). Split out of core.hh so the pipeline stages and the
 * composition root can share it without a cycle.
 */

#ifndef VPR_CORE_CORE_CONFIG_HH
#define VPR_CORE_CORE_CONFIG_HH

#include "core/fetch.hh"
#include "core/fu_pool.hh"
#include "memory/cache.hh"
#include "rename/rename_iface.hh"

namespace vpr
{

class ParamVisitor;

/** Full configuration of one core (defaults = the paper's machine). */
struct CoreConfig
{
    unsigned renameWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    std::size_t robSize = 128;
    std::size_t iqSize = 128;
    std::size_t lsqSize = 128;
    unsigned regReadPorts = 16;
    unsigned regWritePorts = 8;
    unsigned cachePorts = 3;

    RenameScheme scheme = RenameScheme::VPAllocAtWriteback;
    RenameConfig rename;
    FetchConfig fetch;
    FuPoolConfig fu;
    CacheConfig cache;

    /** Use the legacy full-queue IQ wakeup scan instead of per-tag wait
     *  lists (reference path; schedules are byte-identical). */
    bool iqScanWakeup = false;
    /** Use the legacy full-queue oldest-first issue scan instead of the
     *  event-driven ready list (reference path; byte-identical). */
    bool iqScanIssue = false;
    /** Use the legacy reverse-scan LSQ disambiguation instead of the
     *  address-indexed store table (reference path; byte-identical). */
    bool lsqScanDisambig = false;
    /** Use the cycle-indexed completion calendar instead of the legacy
     *  binary heap (reference path; schedules are byte-identical). */
    bool cqCalendar = true;
    /** Run the renamer's invariant self-check every 64 cycles. */
    bool invariantChecks = false;
    /** Panic if no instruction commits for this many cycles. */
    Cycle deadlockThreshold = 200000;

    /** Reflect the core parameters and every nested config struct
     *  (sim/params.hh); implemented in core.cc. */
    void visitParams(ParamVisitor &v);
};

} // namespace vpr

#endif // VPR_CORE_CORE_CONFIG_HH
