/**
 * @file
 * Registry-based factory for register-renaming schemes.
 *
 * The pipeline never names a concrete RenameManager type: it asks the
 * factory for the scheme selected in its configuration. Adding a scheme
 * is one enumerator in RenameScheme plus one registration line in
 * builtinSchemes() (or a registerRenameScheme call from anywhere before
 * the first simulation starts).
 */

#ifndef VPR_RENAME_FACTORY_HH
#define VPR_RENAME_FACTORY_HH

#include <functional>
#include <memory>
#include <vector>

#include "rename/rename_iface.hh"

namespace vpr
{

/** Constructs a RenameManager for a given register-file configuration. */
using RenamerFactory =
    std::function<std::unique_ptr<RenameManager>(const RenameConfig &)>;

/**
 * Register @p factory as the implementation of @p scheme. @p name is the
 * stable human-readable identifier returned by renameSchemeName().
 * Re-registering a scheme replaces it (useful for tests). Not
 * thread-safe: register schemes before simulations start.
 */
void registerRenameScheme(RenameScheme scheme, const char *name,
                          RenamerFactory factory);

/** Build the rename manager implementing @p scheme; panics on an
 *  unregistered scheme. Thread-safe once registration is done. */
std::unique_ptr<RenameManager> makeRenamer(RenameScheme scheme,
                                           const RenameConfig &config);

/** Every registered scheme, in enumerator order (tests/sweeps). */
std::vector<RenameScheme> registeredRenameSchemes();

} // namespace vpr

#endif // VPR_RENAME_FACTORY_HH
