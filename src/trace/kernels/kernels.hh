/**
 * @file
 * Synthetic SPEC95-like benchmark kernels.
 *
 * The paper evaluates nine SPEC95 programs traced with ATOM on an Alpha
 * 21164 (50 M instructions after a 100 M skip). We cannot ship SPEC95
 * binaries or an Alpha tracer, so each benchmark is replaced by a
 * deterministic synthetic kernel with the same *signature*: instruction
 * mix, working-set size (and hence L1 miss rate against the paper's
 * 16 KB direct-mapped cache), dependence-chain depth, and branch
 * predictability. DESIGN.md §4 documents the substitution rationale:
 * the virtual-physical register effect is driven precisely by these
 * parameters, not by the functional program semantics.
 *
 * FP kernels:  apsi, swim, mgrid, hydro2d, wave5
 * Int kernels: go, li, compress, vortex
 */

#ifndef VPR_TRACE_KERNELS_KERNELS_HH
#define VPR_TRACE_KERNELS_KERNELS_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/loop_trace.hh"

namespace vpr
{

/** Static information about one synthetic benchmark. */
struct BenchmarkInfo
{
    std::string name;   ///< SPEC95 name the kernel mimics
    bool isFp;          ///< true for floating-point benchmarks
    std::string sketch; ///< one-line description of the synthetic shape
};

/** The benchmarks in the paper's reporting order (int first, then FP). */
const std::vector<BenchmarkInfo> &benchmarkTable();

/** Names only, in reporting order. */
std::vector<std::string> benchmarkNames();

/** Lookup by name; fatal()s on unknown benchmark. */
const BenchmarkInfo &benchmarkInfo(const std::string &name);

/** Build the kernel description for a benchmark. */
KernelDesc makeKernel(const std::string &name, std::uint64_t seed = 0);

/** Build a ready-to-run trace stream for a benchmark. */
std::unique_ptr<LoopTraceStream>
makeBenchmarkStream(const std::string &name, std::uint64_t seed = 0);

/** Individual kernel constructors (seed 0 = per-kernel default). @{ */
KernelDesc makeGo(std::uint64_t seed = 0);
KernelDesc makeLi(std::uint64_t seed = 0);
KernelDesc makeCompress(std::uint64_t seed = 0);
KernelDesc makeVortex(std::uint64_t seed = 0);
KernelDesc makeApsi(std::uint64_t seed = 0);
KernelDesc makeSwim(std::uint64_t seed = 0);
KernelDesc makeMgrid(std::uint64_t seed = 0);
KernelDesc makeHydro2d(std::uint64_t seed = 0);
KernelDesc makeWave5(std::uint64_t seed = 0);
/** @} */

} // namespace vpr

#endif // VPR_TRACE_KERNELS_KERNELS_HH
