/**
 * @file
 * Binary trace file format: the repository's equivalent of the paper's
 * ATOM trace artifacts. Kernels (or external tools) can persist dynamic
 * instruction streams to disk and the simulator can replay them.
 *
 * Format: an 16-byte header ("VPRTRACE", version, record count) followed
 * by fixed-size little-endian records. The format is versioned so
 * future fields can be added without breaking old traces.
 */

#ifndef VPR_TRACE_TRACE_FILE_HH
#define VPR_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "trace/stream.hh"

namespace vpr
{

/** Current trace file format version. */
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/**
 * Write trace records to @p path.
 * @return number of records written; fatal()s on I/O errors.
 */
std::size_t writeTraceFile(const std::string &path,
                           const std::vector<TraceRecord> &records);

/**
 * Drain up to @p maxRecords from @p stream into a trace file.
 * @return number of records written.
 */
std::size_t writeTraceFile(const std::string &path, TraceStream &stream,
                           std::size_t maxRecords);

/**
 * Read a whole trace file into memory; fatal()s on malformed files.
 */
std::vector<TraceRecord> readTraceFile(const std::string &path);

/** TraceStream over a trace file (loaded eagerly). */
class FileTraceStream : public TraceStream
{
  public:
    explicit FileTraceStream(const std::string &path, bool loop = false)
        : vec(readTraceFile(path), loop)
    {}

    std::optional<TraceRecord> next() override { return vec.next(); }
    void reset() override { vec.reset(); }
    std::size_t size() const { return vec.size(); }

  private:
    VectorTraceStream vec;
};

} // namespace vpr

#endif // VPR_TRACE_TRACE_FILE_HH
