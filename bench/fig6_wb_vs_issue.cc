/**
 * @file
 * Figure 6 of the paper: write-back versus issue allocation, each at
 * its optimal NRR (32 for both), reported as speedup over the
 * conventional scheme per benchmark.
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    SimConfig config = experimentConfig();
    const auto &names = benchmarkNames();

    // Grid: (conv, wb, issue) cell triple per benchmark.
    std::vector<GridCell> cells;
    for (const auto &name : names) {
        config.setScheme(RenameScheme::Conventional);
        cells.push_back({name, config});
        config.setScheme(RenameScheme::VPAllocAtWriteback);
        config.setNrr(32);
        cells.push_back({name, config});
        config.setScheme(RenameScheme::VPAllocAtIssue);
        config.setNrr(32);
        cells.push_back({name, config});
    }
    std::vector<SimResults> results = runGrid(cells, config.jobs);

    printTableHeader(std::cout,
                     "Figure 6: write-back vs issue allocation "
                     "(speedup over conventional, NRR=32)",
                     {"writeback", "issue"});

    std::vector<double> wbAll, issAll;
    for (std::size_t bi = 0; bi < names.size(); ++bi) {
        double conv = results[3 * bi].ipc();
        double wb = results[3 * bi + 1].ipc() / conv;
        double iss = results[3 * bi + 2].ipc() / conv;

        wbAll.push_back(wb);
        issAll.push_back(iss);
        printTableRow(std::cout, names[bi], {wb, iss}, 3);
    }
    std::cout << std::string(36, '-') << "\n";
    printTableRow(std::cout, "geomean", {geoMean(wbAll), geoMean(issAll)},
                  3);
    std::cout << "\npaper reference: write-back allocation significantly "
                 "outperforms issue allocation on every benchmark, in "
                 "spite of the re-executions it causes.\n";
    return 0;
}
