/**
 * @file
 * Cross-scheme behavioural properties from the paper, checked on the
 * real workloads with short runs:
 *  - VP with maximum NRR performs at least as well as conventional
 *    renaming (section 3.3's "most conservative configuration");
 *  - register pressure (holding time per value) is lower under VP;
 *  - more physical registers never hurt;
 *  - write-back allocation beats issue allocation on memory-bound FP
 *    codes (Figure 6's direction).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{
namespace
{

SimConfig
quickConfig()
{
    SimConfig c = paperConfig();
    c.skipInsts = 5000;
    c.measureInsts = 40000;
    c.core.fetch.wrongPath = WrongPathMode::Stall;
    c.core.invariantChecks = true;
    return c;
}

class PerBenchmark : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PerBenchmark, MaxNrrVpNotSlowerThanConventional)
{
    SimConfig c = quickConfig();
    c.setScheme(RenameScheme::Conventional);
    double conv = runOne(GetParam(), c).ipc();
    c.setScheme(RenameScheme::VPAllocAtWriteback);
    c.setNrr(32);
    double vp = runOne(GetParam(), c).ipc();
    // Paper: "expected to perform at least as well as the conventional
    // scheme". Allow 3% slack for the +1-cycle commit free delay.
    EXPECT_GE(vp, conv * 0.97) << GetParam();
}

TEST_P(PerBenchmark, VpReducesRegisterHoldingTime)
{
    SimConfig c = quickConfig();
    c.setScheme(RenameScheme::Conventional);
    auto conv = runOne(GetParam(), c);
    c.setScheme(RenameScheme::VPAllocAtWriteback);
    auto vp = runOne(GetParam(), c);

    const auto &info = benchmarkInfo(GetParam());
    double convHold =
        info.isFp ? conv.meanHoldCyclesFp() : conv.meanHoldCyclesInt();
    double vpHold =
        info.isFp ? vp.meanHoldCyclesFp() : vp.meanHoldCyclesInt();
    EXPECT_LT(vpHold, convHold) << GetParam();
}

TEST_P(PerBenchmark, MorePhysicalRegistersNeverHurt)
{
    SimConfig c = quickConfig();
    for (RenameScheme s : {RenameScheme::Conventional,
                           RenameScheme::VPAllocAtWriteback}) {
        c.setScheme(s);
        c.setPhysRegs(48);
        double ipc48 = runOne(GetParam(), c).ipc();
        c.setPhysRegs(96);
        double ipc96 = runOne(GetParam(), c).ipc();
        EXPECT_GE(ipc96, ipc48 * 0.98)
            << GetParam() << " " << renameSchemeName(s);
    }
}

TEST_P(PerBenchmark, NoRenameRegisterStallsUnderVp)
{
    SimConfig c = quickConfig();
    c.setScheme(RenameScheme::VPAllocAtWriteback);
    auto r = runOne(GetParam(), c);
    // Decode can only stall for VP tags, which are sized to the window:
    // physical-register decode stalls must be zero.
    EXPECT_EQ(r.renameStallReg(), 0u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PerBenchmark,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto &info) { return info.param; });

TEST(SchemeComparison, WritebackBeatsIssueOnMemoryBoundFp)
{
    SimConfig c = quickConfig();
    for (const char *bench : {"swim", "mgrid"}) {
        c.setScheme(RenameScheme::VPAllocAtWriteback);
        c.setNrr(32);
        double wb = runOne(bench, c).ipc();
        c.setScheme(RenameScheme::VPAllocAtIssue);
        double iss = runOne(bench, c).ipc();
        EXPECT_GT(wb, iss) << bench;
    }
}

TEST(SchemeComparison, FpBenchmarksGainMoreThanInteger)
{
    SimConfig c = quickConfig();
    auto speedup = [&](const std::string &b) {
        c.setScheme(RenameScheme::Conventional);
        double conv = runOne(b, c).ipc();
        c.setScheme(RenameScheme::VPAllocAtWriteback);
        return runOne(b, c).ipc() / conv;
    };
    // The paper's headline qualitative claim.
    double swim = speedup("swim");
    double go = speedup("go");
    double li = speedup("li");
    EXPECT_GT(swim, 1.3);
    EXPECT_LT(go, 1.15);
    EXPECT_LT(li, 1.15);
    EXPECT_GT(swim, go);
}

TEST(SchemeComparison, ReExecutionsOnlyUnderWritebackAllocation)
{
    SimConfig c = quickConfig();
    c.setScheme(RenameScheme::VPAllocAtIssue);
    auto iss = runOne("swim", c);
    EXPECT_DOUBLE_EQ(iss.executionsPerCommit(), 1.0);
    EXPECT_EQ(iss.wbRejections(), 0u);

    c.setScheme(RenameScheme::Conventional);
    auto conv = runOne("swim", c);
    EXPECT_DOUBLE_EQ(conv.executionsPerCommit(), 1.0);
}

TEST(SchemeComparison, SmallerVpFileMatchesBiggerConventional)
{
    // Paper conclusion: VP with 48 registers ≈ conventional with 64.
    SimConfig c = quickConfig();
    std::vector<double> conv64, vp48;
    for (const auto &name : benchmarkNames()) {
        c.setScheme(RenameScheme::Conventional);
        c.setPhysRegs(64);
        conv64.push_back(runOne(name, c).ipc());
        c.setScheme(RenameScheme::VPAllocAtWriteback);
        c.setPhysRegs(48);
        vp48.push_back(runOne(name, c).ipc());
    }
    double hConv = harmonicMean(conv64);
    double hVp = harmonicMean(vp48);
    EXPECT_GT(hVp, hConv * 0.9);
}

} // namespace
} // namespace vpr
