/**
 * @file
 * Figure 4 of the paper: speedup of the virtual-physical organization
 * (register allocation at write-back) over the conventional scheme for
 * NRR in {1, 4, 8, 16, 24, 32}, with 64 physical registers per file.
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);
    printSpeedupFigure(
        "Figure 4: VP speedup over conventional, write-back allocation",
        RenameScheme::VPAllocAtWriteback, {1, 4, 8, 16, 24, 32});
    std::cout << "\npaper reference: NRR=32 best overall (FP average "
                 "speedup 1.3); small NRR can fall below 1.0 for FP "
                 "programs; swim speeds up (1.27-1.84) at every NRR.\n";
    return 0;
}
