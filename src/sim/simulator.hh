/**
 * @file
 * Simulator: owns a trace stream and a core, runs the warm-up /
 * measurement protocol, and reports results.
 */

#ifndef VPR_SIM_SIMULATOR_HH
#define VPR_SIM_SIMULATOR_HH

#include <memory>
#include <ostream>
#include <string>

#include "sim/config.hh"
#include "trace/stream.hh"

namespace vpr
{

/** Results of one measured simulation interval. */
struct SimResults
{
    CoreStatsSnapshot stats;
    double bhtAccuracy = 0.0;
    double cacheMissRate = 0.0;
    double meanHoldCyclesInt = 0.0;  ///< register pressure per value
    double meanHoldCyclesFp = 0.0;
    std::uint64_t lsqForwards = 0;

    double ipc() const { return stats.ipc(); }
};

/** One simulation run: stream + core + measurement protocol. */
class Simulator
{
  public:
    /** Build with an externally owned stream. */
    Simulator(TraceStream &stream, const SimConfig &config);

    /** Build by benchmark name (owns the stream). */
    Simulator(const std::string &benchmark, const SimConfig &config);

    /** Warm up for skipInsts, measure for measureInsts, return stats. */
    SimResults run();

    /** Print a human-readable report of the last run. */
    void printReport(std::ostream &os, const SimResults &r) const;

    Core &core() { return *theCore; }
    const Core &core() const { return *theCore; }

  private:
    SimConfig cfg;
    std::unique_ptr<TraceStream> ownedStream;
    std::unique_ptr<Core> theCore;
};

} // namespace vpr

#endif // VPR_SIM_SIMULATOR_HH
