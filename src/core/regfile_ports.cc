#include "core/regfile_ports.hh"

#include "common/logging.hh"

namespace vpr
{

unsigned &
PortSchedule::slotFor(Cycle cycle)
{
    // Claims never land behind the prune watermark: every caller
    // prunes at the top of the cycle and claims at now or later. The
    // growth logic relies on all live tags sharing the [base, max]
    // window, so enforce the contract here.
    VPR_ASSERT(cycle >= base, "port claim at ", cycle,
               " behind prune watermark ", base);
    std::size_t s = cycle % counts.size();
    if (tags[s] == cycle)
        return counts[s];
    if (tags[s] != kNoCycle && tags[s] >= base) {
        // The slot's owner is a *different* live cycle: the ring is
        // lapped by the claim span. Grow until the whole live window
        // fits, giving every live cycle a distinct slot.
        grow(cycle);
        s = cycle % counts.size();
    }
    // Free, lapped-stale, or pruned slot: take it over for this cycle.
    tags[s] = cycle;
    counts[s] = 0;
    return counts[s];
}

void
PortSchedule::grow(Cycle needed)
{
    // Live tags all sit in [base, maxLive]; size the new ring past
    // that whole span (plus the incoming cycle) so distinct live
    // cycles can never share a slot — values within a window shorter
    // than the capacity have distinct residues.
    Cycle maxLive = needed;
    for (Cycle t : tags)
        if (t != kNoCycle && t >= base && t > maxLive)
            maxLive = t;
    std::size_t size = counts.size();
    while (size <= maxLive - base)
        size *= 2;
    std::vector<unsigned> newCounts(size, 0);
    std::vector<Cycle> newTags(size, kNoCycle);
    for (std::size_t i = 0; i < tags.size(); ++i) {
        if (tags[i] == kNoCycle || tags[i] < base)
            continue;
        const std::size_t s = tags[i] % size;
        newTags[s] = tags[i];
        newCounts[s] = counts[i];
    }
    counts.swap(newCounts);
    tags.swap(newTags);
}

unsigned
PortSchedule::used(Cycle cycle) const
{
    const std::size_t s = cycle % counts.size();
    return tags[s] == cycle && cycle >= base ? counts[s] : 0;
}

void
PortSchedule::clear()
{
    counts.assign(counts.size(), 0);
    tags.assign(tags.size(), kNoCycle);
    base = 0;
}

void
RegFilePorts::beginCycle(Cycle now)
{
    readsUsed[0] = readsUsed[1] = 0;
    writes[0].pruneBefore(now);
    writes[1].pruneBefore(now);
}

bool
RegFilePorts::canClaimReads(unsigned nInt, unsigned nFp) const
{
    return readsUsed[classIdx(RegClass::Int)] + nInt <= nReadPorts &&
           readsUsed[classIdx(RegClass::Float)] + nFp <= nReadPorts;
}

bool
RegFilePorts::tryClaimReads(unsigned nInt, unsigned nFp)
{
    if (!canClaimReads(nInt, nFp))
        return false;
    readsUsed[classIdx(RegClass::Int)] += nInt;
    readsUsed[classIdx(RegClass::Float)] += nFp;
    return true;
}

void
RegFilePorts::unclaimReads(unsigned nInt, unsigned nFp)
{
    readsUsed[classIdx(RegClass::Int)] -= nInt;
    readsUsed[classIdx(RegClass::Float)] -= nFp;
}

Cycle
RegFilePorts::scheduleWrite(RegClass cls, Cycle earliest)
{
    return writes[classIdx(cls)].claimFirstFree(earliest);
}

} // namespace vpr
