/**
 * @file
 * SMARTS-style statistical sampling: estimator accuracy against the
 * full detailed run, the functional-warming phase machine, parameter
 * validation, and the sampling-off invariant.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "sim/experiment.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{
namespace
{

/** The accuracy configuration: 10 sampling periods of 16000
 *  instructions, each warming 1500 detailed instructions and measuring
 *  2000 — a 12.5% measured fraction, enough intervals for a Student-t
 *  confidence interval that means something, with windows wide enough
 *  to average over the kernels' loop phases (a 1000-inst window aliases
 *  against swim's loop period and biases the mean outside its own CI). */
SimConfig
accuracyConfig()
{
    SimConfig c = paperConfig();
    c.skipInsts = 4000;
    c.measureInsts = 160000;
    c.core.fetch.wrongPath = WrongPathMode::Stall;
    c.sampling.enable = true;
    c.sampling.periodInsts = 16000;
    c.sampling.warmupInsts = 1500;
    c.sampling.detailedInsts = 2000;
    return c;
}

class SamplingAccuracy : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SamplingAccuracy, FullRunIpcInsideSampled95Ci)
{
    // The whole point of the estimator: the detailed run's IPC over the
    // same budget must fall inside the sampled mean's 95% confidence
    // interval, and the interval must be a useful one (nonzero, not
    // wider than the IPC scale itself).
    const char *kernel = GetParam();
    SimConfig sampled = accuracyConfig();
    SimConfig full = sampled;
    full.sampling.enable = false;

    auto s = runOne(kernel, sampled);
    auto f = runOne(kernel, full);

    const double mean = s.metrics.real("core.ipc.sampled.mean");
    const double ci95 = s.metrics.real("core.ipc.sampled.ci95");
    ASSERT_EQ(s.metrics.counter("core.ipc.sampled.intervals"), 10u);
    ASSERT_GT(mean, 0.0);
    ASSERT_GT(ci95, 0.0);
    EXPECT_LT(ci95, f.ipc());
    EXPECT_LE(std::abs(mean - f.ipc()), ci95)
        << kernel << ": sampled " << mean << " +/- " << ci95
        << " vs full " << f.ipc();
}

INSTANTIATE_TEST_SUITE_P(Kernels, SamplingAccuracy,
                         ::testing::Values("compress", "swim"));

TEST(Sampling, EstimatorMatchesManualIntervalMath)
{
    // core.ipc.sampled.mean must be exactly the mean of the interval
    // IPCs, i.e. what core.ipc itself reports after the fold (the
    // unweighted mean across intervals).
    SimConfig c = accuracyConfig();
    auto r = runOne("compress", c);
    EXPECT_DOUBLE_EQ(r.metrics.real("core.ipc.sampled.mean"),
                     r.metrics.real("core.ipc"));
    // stderr and ci95 are tied by the fixed t-critical for df = 9.
    const double se = r.metrics.real("core.ipc.sampled.stderr");
    const double ci = r.metrics.real("core.ipc.sampled.ci95");
    EXPECT_GT(se, 0.0);
    EXPECT_NEAR(ci / se, 2.262, 1e-9);
}

TEST(Sampling, FunctionalWarmingMatters)
{
    // Disabling functional warming turns fast-forward into a bare trace
    // skip: the detailed intervals then start from cold caches and BHT,
    // which must show up as a different (worse) cycle count.
    SimConfig warm = accuracyConfig();
    SimConfig cold = warm;
    cold.sampling.functionalWarming = false;
    auto w = runOne("compress", warm);
    auto cc = runOne("compress", cold);
    EXPECT_NE(w.cycles(), cc.cycles());
    EXPECT_LT(w.metrics.real("memory.cache_miss_rate"),
              cc.metrics.real("memory.cache_miss_rate"));
}

TEST(Sampling, SamplingOffExportsNoEstimator)
{
    // The estimator columns exist only in sampled runs — a full run's
    // schema (and therefore every golden CSV/JSON) is unchanged.
    SimConfig c = paperConfig();
    c.skipInsts = 1000;
    c.measureInsts = 10000;
    c.core.fetch.wrongPath = WrongPathMode::Stall;
    auto r = runOne("compress", c);
    EXPECT_FALSE(r.metrics.has("core.ipc.sampled.mean"));
    EXPECT_FALSE(r.metrics.has("core.ipc.sampled.stderr"));
    EXPECT_FALSE(r.metrics.has("core.ipc.sampled.ci95"));
    EXPECT_FALSE(r.metrics.has("core.ipc.sampled.intervals"));
}

TEST(Sampling, SampledRunStopsAtTraceEnd)
{
    // A finite stream shorter than the configured budget ends the run
    // after the intervals that fit; the estimator reports what was
    // actually measured.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 30000; ++i) {
        TraceRecord r;
        r.pc = 0x1000 + 4 * static_cast<Addr>(i % 64);
        r.op = OpClass::IntAlu;
        r.dest = RegId::intReg(static_cast<std::uint16_t>(1 + i % 8));
        r.src[0] = RegId::intReg(static_cast<std::uint16_t>(1 + (i + 1) % 8));
        recs.push_back(r);
    }
    VectorTraceStream stream(std::move(recs), false);
    SimConfig c = paperConfig();
    c.skipInsts = 0;
    c.measureInsts = 100000; // more than the trace holds
    c.core.fetch.wrongPath = WrongPathMode::Stall;
    c.sampling.enable = true;
    c.sampling.periodInsts = 10000;
    c.sampling.warmupInsts = 500;
    c.sampling.detailedInsts = 1000;
    Simulator sim(stream, c);
    auto r = sim.run();
    const std::uint64_t n =
        r.metrics.counter("core.ipc.sampled.intervals");
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 3u);
}

using SamplingDeath = ::testing::Test;

TEST(SamplingDeath, ZeroDetailedIntervalIsFatal)
{
    SimConfig c = paperConfig();
    c.sampling.enable = true;
    c.sampling.detailedInsts = 0;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "sim.sampling.detailed_insts must be >= 1");
}

TEST(SamplingDeath, WarmupPlusDetailedBeyondPeriodIsFatal)
{
    SimConfig c = paperConfig();
    c.sampling.enable = true;
    c.sampling.periodInsts = 1000;
    c.sampling.warmupInsts = 800;
    c.sampling.detailedInsts = 300;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "exceeds the period");
}

TEST(SamplingDeath, PeriodBeyondMeasureBudgetIsFatal)
{
    SimConfig c = paperConfig();
    c.measureInsts = 10000;
    c.sampling.enable = true;
    c.sampling.periodInsts = 20000;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "not even one interval fits");
}

} // namespace
} // namespace vpr
