/**
 * @file
 * Ablation: instruction-window (ROB) size sweep.
 *
 * The paper's conclusion argues the virtual-physical benefit grows for
 * "future architectures with a larger instruction window and thus, a
 * much higher register pressure". This bench sweeps the ROB from 32 to
 * 256 entries at a fixed 64-register file and reports the VP/conv
 * speedup per window size.
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    const std::vector<std::size_t> windows = {32, 64, 128, 256};
    std::vector<std::string> cols;
    for (auto w : windows)
        cols.push_back("ROB=" + std::to_string(w));
    printTableHeader(std::cout,
                     "Ablation: VP speedup vs window size (64 regs, "
                     "write-back alloc, NRR=32)",
                     cols);

    std::vector<std::vector<double>> colVals(windows.size());
    for (const auto &name : benchmarkNames()) {
        std::vector<double> row;
        for (std::size_t i = 0; i < windows.size(); ++i) {
            SimConfig config = experimentConfig();
            config.core.robSize = windows[i];
            config.core.iqSize = windows[i];
            config.core.lsqSize = windows[i];
            config.setPhysRegs(64, 32);  // resizes the VP pool too

            config.setScheme(RenameScheme::Conventional);
            double conv = runOne(name, config).ipc();
            config.setScheme(RenameScheme::VPAllocAtWriteback);
            double vp = runOne(name, config).ipc();
            row.push_back(vp / conv);
            colVals[i].push_back(vp / conv);
        }
        printTableRow(std::cout, name, row, 3);
    }
    std::cout << std::string(12 + 12 * windows.size(), '-') << "\n";
    std::vector<double> means;
    for (const auto &col : colVals)
        means.push_back(geoMean(col));
    printTableRow(std::cout, "geomean", means, 3);

    std::cout << "\nexpectation: the speedup is a non-decreasing "
                 "function of the window size — a small window cannot "
                 "out-run 32 rename registers, a large one starves the "
                 "conventional scheme (paper, Conclusions).\n";
    return 0;
}
