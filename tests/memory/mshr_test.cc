/** @file Unit tests for the MSHR file. */

#include <gtest/gtest.h>

#include <vector>

#include "memory/mshr.hh"

namespace vpr
{
namespace
{

TEST(Mshr, AllocateAndFind)
{
    MshrFile m(4);
    EXPECT_EQ(m.find(0x100), nullptr);
    m.allocate(0x100, 50);
    ASSERT_NE(m.find(0x100), nullptr);
    EXPECT_EQ(m.find(0x100)->fillCycle, 50u);
    EXPECT_EQ(m.find(0x100)->targets, 1u);
}

TEST(Mshr, FullAtCapacity)
{
    MshrFile m(2);
    m.allocate(0x100, 50);
    EXPECT_FALSE(m.full());
    m.allocate(0x200, 60);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.maxEntries(), 2u);
}

TEST(Mshr, MergeIncrementsTargets)
{
    MshrFile m(4);
    Mshr &e = m.allocate(0x100, 50);
    ++e.targets;
    ++e.targets;
    EXPECT_EQ(m.find(0x100)->targets, 3u);
}

TEST(Mshr, RetireReleasesOnlyExpired)
{
    MshrFile m(4);
    m.allocate(0x100, 50);
    m.allocate(0x200, 60);
    m.allocate(0x300, 70);

    std::vector<Addr> retired;
    m.retireUpTo(60, [&](const Mshr &e) { retired.push_back(e.lineAddr); });

    ASSERT_EQ(retired.size(), 2u);
    EXPECT_EQ(retired[0], 0x100u);
    EXPECT_EQ(retired[1], 0x200u);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_NE(m.find(0x300), nullptr);
    EXPECT_EQ(m.find(0x100), nullptr);
}

TEST(Mshr, RetirePreservesDirtyFlag)
{
    MshrFile m(4);
    Mshr &e = m.allocate(0x100, 10);
    e.dirty = true;
    bool sawDirty = false;
    m.retireUpTo(10, [&](const Mshr &x) { sawDirty = x.dirty; });
    EXPECT_TRUE(sawDirty);
}

TEST(Mshr, ClearEmpties)
{
    MshrFile m(4);
    m.allocate(0x100, 50);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(m.full());
}

TEST(MshrDeath, DuplicateLinePanics)
{
    MshrFile m(4);
    m.allocate(0x100, 50);
    EXPECT_DEATH(m.allocate(0x100, 60), "duplicate MSHR");
}

TEST(MshrDeath, AllocateWhenFullPanics)
{
    MshrFile m(1);
    m.allocate(0x100, 50);
    EXPECT_DEATH(m.allocate(0x200, 60), "full MSHR");
}

} // namespace
} // namespace vpr
