/**
 * @file
 * Load/store queue with PA-8000-style memory disambiguation.
 *
 * The paper assumes the memory disambiguation scheme of the PA-8000's
 * address-reorder buffer: loads may execute out of order with respect to
 * stores only once every older store's address is known; a load whose
 * address matches an older store forwards the store's data instead of
 * accessing the cache. Stores update the data cache at commit.
 *
 * Disambiguation is resolved through an address-indexed store table
 * instead of scanning the queue: in-flight stores with computed
 * addresses are hashed at disambiguation-line granularity (16 bytes,
 * >= the largest access, so any overlapping store shares a line with
 * the load), and stores whose addresses are still unknown sit on a
 * seq-sorted watermark list. A load's check reduces to "youngest older
 * store that is unknown or overlaps" — O(1) expected instead of
 * O(queue). The legacy reverse scan survives behind setScanDisambig()
 * as a reference path; a determinism test asserts both byte-identical.
 *
 * Holds are events, not polls: the issue stage subscribes a held load
 * to its blocking store (subscribeHold), the blocker's address
 * computation or commit releases the subscription, and takeReadyHolds()
 * hands the re-attemptable loads back to the issue stage at exactly the
 * cycle the legacy every-cycle re-scan would have unblocked them.
 */

#ifndef VPR_CORE_LSQ_HH
#define VPR_CORE_LSQ_HH

#include <cstdint>
#include <vector>

#include "common/ring_deque.hh"
#include "common/stats.hh"
#include "core/dyn_inst.hh"

namespace vpr
{

/** A disambiguation verdict: the hold and the store that caused it
 *  (null when Ready). */
struct LoadCheck
{
    LoadHold hold = LoadHold::Ready;
    const DynInst *blocker = nullptr;
};

/**
 * Line address -> in-flight stores, tuned for streaming address
 * patterns.
 *
 * The live content is tiny — at most two lines per in-flight store —
 * but a streaming benchmark never revisits a line, so a node-based map
 * allocates (node + bucket vector) for every line it touches, forever.
 * This table is open-addressed with linear probing over a power-of-two
 * slot array: erasing a line backward-shifts the probe chain and
 * *swaps* the ReadyRef vectors instead of moving them, so every
 * slot's vector capacity stays resident and steady-state store
 * traffic never reaches the allocator. The array doubles only when
 * the live line count crosses half the capacity (warm-up).
 */
class LineRefMap
{
  public:
    LineRefMap() : slots(kMinSlots) {}

    /** The bucket for @p line, or null if the line is absent. */
    std::vector<ReadyRef> *
    find(Addr line)
    {
        Slot *s = probe(line);
        return s->used ? &s->refs : nullptr;
    }

    /** The bucket for @p line, inserting an empty one if absent. */
    std::vector<ReadyRef> &
    bucket(Addr line)
    {
        Slot *s = probe(line);
        if (!s->used) {
            if ((numUsed + 1) * 2 > slots.size()) {
                grow();
                s = probe(line);
            }
            s->used = true;
            s->line = line;
            ++numUsed;
        }
        return s->refs;
    }

    /** Drop @p line's (empty) bucket so dead keys cannot pile up and
     *  stretch the probe chains. */
    void erase(Addr line);

    void
    clear()
    {
        for (Slot &s : slots) {
            s.used = false;
            s.refs.clear();
        }
        numUsed = 0;
    }

    std::size_t size() const { return numUsed; }

  private:
    static constexpr std::size_t kMinSlots = 64;

    struct Slot
    {
        Addr line = 0;
        bool used = false;
        std::vector<ReadyRef> refs;
    };

    std::size_t
    ideal(Addr line) const
    {
        // Lines are small sequential integers for streaming patterns;
        // a multiplicative mix spreads clustered patterns without
        // hurting the sequential case.
        return static_cast<std::size_t>(line * 0x9e3779b97f4a7c15ull) &
               (slots.size() - 1);
    }

    /** First slot in @p line's probe chain that holds it or is free. */
    Slot *
    probe(Addr line)
    {
        std::size_t i = ideal(line);
        while (slots[i].used && slots[i].line != line)
            i = (i + 1) & (slots.size() - 1);
        return &slots[i];
    }

    void grow();

    std::vector<Slot> slots;  ///< power-of-two capacity
    std::size_t numUsed = 0;
};

/** The load/store queue (a single age-ordered structure). */
class Lsq
{
  public:
    explicit Lsq(std::size_t capacity)
        : cap(capacity),
          occupancy(stats::Distribution::evenBuckets(
              "occupancy", "entries occupied per cycle", 0, capacity, 16))
    {
        group.add(&occupancy);
        group.add(&nForwards);
        group.add(&nUnknownHolds);
        group.add(&nPartialHolds);
    }

    bool full() const { return list.size() >= cap; }
    bool empty() const { return list.empty(); }
    std::size_t size() const { return list.size(); }
    std::size_t capacity() const { return cap; }

    /** Insert a memory instruction at rename (program order). */
    void insert(DynInst *inst);

    /** Remove the entry for @p inst (at commit). A removed store
     *  releases the hold subscriptions parked on it, due this cycle
     *  (commit ticks before issue). */
    void remove(DynInst *inst);

    /** Remove every entry younger than @p seq (branch recovery). */
    void squashYoungerThan(InstSeqNum seq);

    /**
     * Disambiguation check for @p load at cycle @p now: find the
     * youngest older store with an unknown or conflicting address.
     * Table path by default; setScanDisambig(true) selects the legacy
     * youngest-to-oldest queue scan (byte-identical results).
     */
    LoadCheck disambiguate(const DynInst *load, Cycle now);

    /** Hold-only convenience wrapper around disambiguate(). */
    LoadHold
    checkLoad(const DynInst *load, Cycle now)
    {
        return disambiguate(load, now).hold;
    }

    /**
     * The store @p inst computed its effective address (issue stage,
     * first execution): index it in the line table and release its
     * unknown-address hold subscriptions at the address's visibility
     * cycle (inst->addrReadyCycle, set by the caller).
     */
    void onStoreAddrComputed(DynInst *inst);

    /**
     * Park @p load until @p blocker resolves: an UnknownAddress hold
     * releases when the blocker's address becomes visible, a
     * PartialOverlap hold when the blocker leaves the queue at commit.
     */
    void subscribeHold(DynInst *load, const DynInst *blocker,
                       LoadHold hold);

    /** Append the held loads whose release is due at @p now to @p out
     *  (the issue stage validates and sorts them). */
    void takeReadyHolds(Cycle now, std::vector<ReadyRef> &out);

    /** Use the legacy full-queue disambiguation scan (reference path
     *  for the determinism test). */
    void setScanDisambig(bool scan) { scanDisambig = scan; }

    /** Statistics. @{ */
    std::uint64_t forwards() const { return nForwards.value(); }
    std::uint64_t unknownAddrHolds() const { return nUnknownHolds.value(); }
    std::uint64_t partialOverlapHolds() const
    {
        return nPartialHolds.value();
    }
    /** @} */

    /** Account a hold decision (called by the core at issue time). */
    void recordHold(LoadHold h);

    /** Record this cycle's occupancy (called once per cycle). */
    void sampleOccupancy() { occupancy.sample(list.size()); }

    /** Register the "lsq" stat group into the core's stats tree. */
    void regStats(stats::StatRegistry &r) { r.add(&group); }

    const RingDeque<DynInst *> &entries() const { return list; }

    void clear();

  private:
    /** Disambiguation granularity: 16-byte lines, >= the largest
     *  access size, so an overlapping store always shares at least one
     *  line with the load and each access touches at most two lines. */
    static constexpr unsigned kLineShift = 4;

    /** A released hold waiting for its wake cycle. Carries the hot-pool
     *  slot so the issue stage's validity check stays in the packed
     *  arrays. */
    struct HoldRelease
    {
        DynInst *inst;
        InstSeqNum seq;
        HotIdx slot;
        Cycle wake;
    };

    static bool
    overlap(Addr a, unsigned aSize, Addr b, unsigned bSize)
    {
        return a < b + bSize && b < a + aSize;
    }

    /** First and last disambiguation lines touched by an access. */
    static Addr firstLine(const DynInst *m);
    static Addr lastLine(const DynInst *m);

    /** Legacy reference path: reverse queue walk. */
    LoadCheck scanCheck(const DynInst *load, Cycle now) const;

    /** Erase @p seq from the unknown-address list if present. */
    void eraseUnknown(InstSeqNum seq);

    /** Drop the due entries of pendingKnown (stores whose addresses
     *  became visible by @p now) from the unknown list. */
    void flushKnown(Cycle now);

    /** Remove a store's line-table entries (commit or squash). */
    void eraseLineEntries(DynInst *store);

    /** Move the subscribers of blocker @p store to the pending-release
     *  list with wake cycle @p wake. */
    void releaseSubs(const DynInst *store, Cycle wake);

    /** Drop the subscriptions parked on @p store without releasing
     *  them (squash: the subscribers die with their blocker). */
    void dropSubs(const DynInst *store);

    /** The loads parked on one blocking store, owner-validated.
     *
     *  Subscriptions are indexed by the blocker's hot-pool slot, not
     *  its sequence number: slots are bounded by the pipeline and
     *  reused, so the structure reaches its full size during warm-up
     *  and steady-state subscribe/release traffic never allocates (a
     *  seq-keyed map would mint a fresh node for every blocker). The
     *  owner seq detects slot reuse — a stale list left by a squashed
     *  store is discarded lazily by the next subscriber. */
    struct SubList
    {
        InstSeqNum owner = 0;
        std::vector<ReadyRef> subs;
    };

    /** The subscription list of blocker @p store, clearing a stale
     *  previous tenant's leftovers. */
    SubList &subsFor(const DynInst *store);

    std::size_t cap;
    RingDeque<DynInst *> list;  ///< program order, front = oldest

    /** Line address -> in-flight stores with computed addresses. */
    LineRefMap lineTable;
    /** Stores whose addresses are not visible yet, seq-ascending (the
     *  back is the unknown-address watermark). */
    std::vector<ReadyRef> unknownStores;
    /** FIFO of (store seq, visibility cycle): a computed address stays
     *  "unknown" until its cycle passes, then the unknown-list entry is
     *  flushed eagerly so queries never wade through stale entries. */
    RingDeque<std::pair<InstSeqNum, Cycle>> pendingKnown;

    /** Per-hot-slot hold subscriptions (see SubList). */
    std::vector<SubList> holdSubs;
    /** Released holds waiting for their wake cycle. */
    std::vector<HoldRelease> pendingRelease;

    bool scanDisambig = false;

    stats::StatGroup group{"lsq"};
    stats::Distribution occupancy;
    stats::Scalar nForwards{"forwards", "store-to-load forwards"};
    stats::Scalar nUnknownHolds{"unknown_addr_holds",
                                "loads held on an unknown store address"};
    stats::Scalar nPartialHolds{
        "partial_overlap_holds",
        "loads held on a partial store overlap"};
};

} // namespace vpr

#endif // VPR_CORE_LSQ_HH
