/** @file Unit tests for the binary trace file format. */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/builder.hh"
#include "trace/kernels/kernels.hh"
#include "trace/trace_file.hh"

namespace vpr
{
namespace
{

std::string
tmpPath(const char *tag)
{
    return ::testing::TempDir() + "/vpr_trace_" + tag + ".vprt";
}

TEST(TraceFile, RoundTripPreservesEveryField)
{
    TraceBuilder b(0x4000);
    b.load(RegId::fpReg(2), RegId::intReg(6), 0x123456789abcull);
    b.store(RegId::fpReg(3), RegId::intReg(7), 0x80);
    b.branch(RegId::intReg(1), true, 0xdeadbeef);
    b.fpDiv(RegId::fpReg(4), RegId::fpReg(5), RegId::fpReg(6));
    b.nop();
    auto recs = b.records();

    std::string path = tmpPath("roundtrip");
    EXPECT_EQ(writeTraceFile(path, recs), recs.size());
    auto back = readTraceFile(path);

    ASSERT_EQ(back.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(back[i].pc, recs[i].pc) << i;
        EXPECT_EQ(back[i].op, recs[i].op) << i;
        EXPECT_EQ(back[i].dest, recs[i].dest) << i;
        EXPECT_EQ(back[i].src[0], recs[i].src[0]) << i;
        EXPECT_EQ(back[i].src[1], recs[i].src[1]) << i;
        EXPECT_EQ(back[i].effAddr, recs[i].effAddr) << i;
        EXPECT_EQ(back[i].memSize, recs[i].memSize) << i;
        EXPECT_EQ(back[i].taken, recs[i].taken) << i;
        EXPECT_EQ(back[i].target, recs[i].target) << i;
    }
    std::remove(path.c_str());
}

TEST(TraceFile, StreamDrainRespectsLimit)
{
    auto kernel = makeBenchmarkStream("compress");
    std::string path = tmpPath("drain");
    EXPECT_EQ(writeTraceFile(path, *kernel, 1234), 1234u);
    auto back = readTraceFile(path);
    EXPECT_EQ(back.size(), 1234u);
    std::remove(path.c_str());
}

TEST(TraceFile, FileStreamReplaysKernelExactly)
{
    auto kernel = makeBenchmarkStream("swim");
    std::string path = tmpPath("replay");
    writeTraceFile(path, *kernel, 500);

    kernel->reset();
    FileTraceStream fs(path);
    for (int i = 0; i < 500; ++i) {
        auto a = kernel->next();
        auto b = fs.next();
        ASSERT_TRUE(a && b);
        EXPECT_EQ(a->pc, b->pc);
        EXPECT_EQ(a->effAddr, b->effAddr);
    }
    EXPECT_FALSE(fs.next().has_value());
    fs.reset();
    EXPECT_TRUE(fs.next().has_value());
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceIsValid)
{
    std::string path = tmpPath("empty");
    writeTraceFile(path, std::vector<TraceRecord>{});
    EXPECT_TRUE(readTraceFile(path).empty());
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(readTraceFile("/nonexistent/path.vprt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFileDeath, GarbageFileIsFatal)
{
    std::string path = tmpPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "not a vpr trace");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, TruncatedBodyIsFatal)
{
    TraceBuilder b;
    b.nop().nop().nop();
    std::string path = tmpPath("trunc");
    writeTraceFile(path, b.records());
    // Chop the last record in half.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), sz - 20), 0);
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

} // namespace
} // namespace vpr
