#include "memory/bus.hh"

#include "common/logging.hh"

namespace vpr
{

Bus::Bus(unsigned occupancyCycles) : occCycles(occupancyCycles)
{
    VPR_ASSERT(occupancyCycles > 0, "bus occupancy must be positive");
}

Cycle
Bus::acquire(Cycle earliest)
{
    Cycle start = earliest > nextFree ? earliest : nextFree;
    nQueueing += start - earliest;
    nextFree = start + occCycles;
    ++nTransfers;
    return start;
}

void
Bus::reset()
{
    nextFree = 0;
    nTransfers = 0;
    nQueueing = 0;
}

} // namespace vpr
