/**
 * @file
 * Byte-identity pin for the sampled-sweep CSV exporter.
 *
 * tests/data/sampled_sweep_golden.csv was recorded before stat names
 * were interned (and before the simulator reuse pool existed): a small
 * sampled sweep over all four rename schemes at two register-file
 * sizes, exported through writeResultsCsv. Re-running the identical
 * sweep must reproduce that file byte for byte — any change to metric
 * names, schema order, value formatting, provenance columns, or the
 * simulated outcomes themselves trips this test. This is the repo's
 * proof that interning and core reuse are pure plumbing changes.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/results_io.hh"
#include "sim/sweep.hh"

#ifndef VPR_TEST_DATA_DIR
#error "VPR_TEST_DATA_DIR must point at tests/data"
#endif

namespace vpr
{
namespace
{

std::string
runSampledSweepCsv(unsigned jobs)
{
    SimConfig config = paperConfig();
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    config.skipInsts = 2000;
    config.measureInsts = 8000;
    config.sampling.enable = true;
    config.sampling.periodInsts = 2000;

    const std::vector<SweepAxis> axes = {
        {"core.scheme", {"conv", "conv-er", "vp-wb", "vp-issue"}},
        {"core.rename.regfile_size", {"48", "64"}},
    };
    const std::vector<GridCell> cells =
        buildSweepGrid({"compress"}, config, axes);
    const std::vector<SimResults> results = runGrid(cells, jobs);

    std::vector<std::size_t> indices(cells.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    std::ostringstream os;
    writeResultsCsv(os, "sampled-sweep-golden", ShardSpec{}, indices,
                    cells, results);
    return os.str();
}

std::string
goldenFileContents()
{
    const std::string path =
        std::string(VPR_TEST_DATA_DIR) + "/sampled_sweep_golden.csv";
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(SampledSweepGolden, CsvIsByteIdenticalToPreInterningRecord)
{
    const std::string golden = goldenFileContents();
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(runSampledSweepCsv(2), golden);
}

TEST(SampledSweepGolden, JobsCountDoesNotChangeTheBytes)
{
    // Serial and parallel runs must export the same bytes: cell order
    // is positional, never completion-ordered, and the per-thread
    // simulator pool must not leak state between cells.
    EXPECT_EQ(runSampledSweepCsv(1), runSampledSweepCsv(4));
}

} // namespace
} // namespace vpr
