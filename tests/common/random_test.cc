/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace vpr
{
namespace
{

TEST(Random, DeterministicPerSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Random, ZeroSeedRemapped)
{
    Random a(0);
    EXPECT_NE(a.next64(), 0u);
}

TEST(Random, BelowStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Random r(7);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Random, ChancePermilleApproximatesProbability)
{
    Random r(99);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chancePermille(250);
    double p = static_cast<double>(hits) / n;
    EXPECT_NEAR(p, 0.25, 0.01);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ReseedRestartsSequence)
{
    Random r(11);
    auto first = r.next64();
    r.next64();
    r.reseed(11);
    EXPECT_EQ(r.next64(), first);
}

TEST(Random, BitsLookBalanced)
{
    Random r(123);
    int ones = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        ones += __builtin_popcountll(r.next64());
    double frac = static_cast<double>(ones) / (64.0 * n);
    EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(DeriveSeed, DeterministicPerInputs)
{
    EXPECT_EQ(deriveSeed(42, 7), deriveSeed(42, 7));
    EXPECT_NE(deriveSeed(42, 7), deriveSeed(42, 8));
    EXPECT_NE(deriveSeed(42, 7), deriveSeed(43, 7));
}

TEST(DeriveSeed, NeverReturnsZero)
{
    // Zero would collapse the consumer's xorshift64* state.
    for (std::uint64_t m = 0; m < 64; ++m)
        for (std::uint64_t s = 0; s < 64; ++s)
            EXPECT_NE(deriveSeed(m, s), 0u);
}

TEST(DeriveSeed, ConsecutiveSaltsDecorrelate)
{
    // Seeding two Randoms from adjacent salts must give unrelated
    // streams (the reason components never share a generator).
    Random a(deriveSeed(5, 0)), b(deriveSeed(5, 1));
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_EQ(same, 0);
}

} // namespace
} // namespace vpr
