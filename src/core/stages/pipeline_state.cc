#include "core/stages/pipeline_state.hh"

#include "common/logging.hh"
#include "rename/factory.hh"

namespace vpr
{

PipelineState::PipelineState(TraceStream &stream, const CoreConfig &config)
    : cfg(config),
      renameMgr(makeRenamer(config.scheme, config.rename)),
      fetch(stream, config.fetch),
      rob(config.robSize),
      iq(config.iqSize),
      lsq(config.lsqSize),
      cache(config.cache),
      fus(config.fu),
      regPorts(config.regReadPorts, config.regWritePorts),
      cachePortSched(config.cachePorts)
{
    VPR_ASSERT(cfg.iqSize >= cfg.robSize,
               "unified IQ must hold every in-flight instruction "
               "(write-back squashes re-insert issued instructions)");
}

void
PipelineState::beginCycle()
{
    ++curCycle;
    renameMgr->tick(curCycle);
    fus.beginCycle(curCycle);
    regPorts.beginCycle(curCycle);
    cachePortSched.pruneBefore(curCycle);
}

void
PipelineState::squashYoungerThan(InstSeqNum youngestKept)
{
    iq.squashYoungerThan(youngestKept);
    lsq.squashYoungerThan(youngestKept);
    while (!rob.empty() && rob.tail().seq > youngestKept) {
        DynInst &tail = rob.tail();
        renameMgr->squashInst(tail, curCycle);
        tail.phase = InstPhase::Squashed;
        ++nSquashed;
        rob.squashTail();
    }
}

} // namespace vpr
