/**
 * @file
 * The L1↔L2 data bus.
 *
 * The paper assumes a 64-bit bus between L1 and L2, so moving one 32-byte
 * line occupies the bus for four cycles. The bus serializes transfers:
 * fills and dirty write-backs queue behind each other.
 */

#ifndef VPR_MEMORY_BUS_HH
#define VPR_MEMORY_BUS_HH

#include "common/state.hh"
#include "common/types.hh"

namespace vpr
{

/** A single-master occupancy-modelled bus. */
class Bus
{
  public:
    /**
     * @param occupancyCycles cycles one line transfer holds the bus
     *        (paper: 32-byte line over 64-bit bus = 4 cycles).
     */
    explicit Bus(unsigned occupancyCycles = 4);

    /**
     * Claim the bus for one line transfer.
     *
     * @param earliest the first cycle the transfer could start.
     * @return the cycle the transfer actually starts (>= earliest).
     */
    Cycle acquire(Cycle earliest);

    /** First cycle a new transfer could currently start. */
    Cycle nextFreeCycle() const { return nextFree; }

    unsigned occupancy() const { return occCycles; }
    std::uint64_t transfers() const { return nTransfers; }

    /** Total cycles transfers spent waiting for the bus. */
    std::uint64_t queueingCycles() const { return nQueueing; }

    void reset();

    /** Serialize/restore occupancy horizon + counters. */
    void
    visitState(StateVisitor &v)
    {
        v.section("bus");
        v.value(nextFree);
        v.value(nTransfers);
        v.value(nQueueing);
    }

  private:
    unsigned occCycles;
    Cycle nextFree = 0;
    std::uint64_t nTransfers = 0;
    std::uint64_t nQueueing = 0;
};

} // namespace vpr

#endif // VPR_MEMORY_BUS_HH
