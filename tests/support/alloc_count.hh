/**
 * @file
 * Test-only allocation accounting.
 *
 * Linking tests/support/alloc_count.cc into a binary replaces the
 * global operator new/delete with counting wrappers. Counting is
 * armed per thread by AllocGuard scopes: outside any scope the hook
 * is a single thread-local branch, inside a scope every allocation on
 * the thread bumps a counter the guard can read. Guards nest — each
 * one observes the allocations of its own window, inner windows
 * included, which is exactly what "zero allocations in this region"
 * assertions and benchmark counters need.
 *
 * This is deliberately not part of libvpr: the simulator must never
 * depend on a replaced allocator. Only test and bench binaries link
 * the .cc.
 */

#ifndef VPR_TESTS_SUPPORT_ALLOC_COUNT_HH
#define VPR_TESTS_SUPPORT_ALLOC_COUNT_HH

#include <cstdint>

namespace vpr
{
namespace testsupport
{

/** Allocations recorded on this thread while a guard was live
 *  (monotonic; only advances inside AllocGuard scopes). */
std::uint64_t recordedAllocs();

/** Live AllocGuard scopes on this thread (0 = hook disarmed). */
int allocScopeDepth();

/** RAII scope arming the allocation counter on this thread. */
class AllocGuard
{
  public:
    AllocGuard();
    ~AllocGuard();
    AllocGuard(const AllocGuard &) = delete;
    AllocGuard &operator=(const AllocGuard &) = delete;

    /** Allocations on this thread since this guard opened. */
    std::uint64_t count() const;

  private:
    std::uint64_t start;
};

} // namespace testsupport
} // namespace vpr

#endif // VPR_TESTS_SUPPORT_ALLOC_COUNT_HH
