/**
 * @file
 * The register-pressure figure family: the data behind the paper's
 * motivation. Sweeps register-file size × rename scheme on one integer
 * and one FP benchmark and renders, per scheme, the regfile occupancy
 * and register lifetime *distributions* — decode-time allocation keeps
 * registers busy long before and after their values are live, and the
 * histograms make that waste visible in a way end-of-run averages
 * cannot.
 *
 * Everything rendered here comes straight from the exported metric
 * record (regfile.occupancy.*, rename.vp.lifetime.*), so the table
 * re-rendered by tools/merge_results from sharded CSV files is
 * byte-identical to an unsharded run.
 */

#include "figures.hh"

namespace vpr::bench
{

namespace
{

const std::vector<std::uint16_t> kSizes = {48, 64, 96};

const std::vector<RenameScheme> kSchemes = {
    RenameScheme::Conventional,
    RenameScheme::ConventionalEarlyRelease,
    RenameScheme::VPAllocAtIssue,
    RenameScheme::VPAllocAtWriteback,
};

/** One integer and one FP benchmark: the paper's two workload worlds. */
const std::vector<std::string> kBenchmarks = {"compress", "swim"};

/** Short scheme tag used as a row label. */
const char *
schemeTag(RenameScheme s)
{
    return renameSchemeName(s);
}

} // namespace

FigureDef
regPressureFigure()
{
    FigureDef def;
    def.name = "regpressure";
    def.build = [] {
        std::vector<GridCell> cells;
        for (const std::string &bench : kBenchmarks) {
            for (std::uint16_t size : kSizes) {
                for (RenameScheme scheme : kSchemes) {
                    SimConfig config = experimentConfig();
                    config.setPhysRegs(size);  // NRR = max = NPR - 32
                    config.setScheme(scheme);
                    cells.push_back({bench, config});
                }
            }
        }
        return cells;
    };
    def.render = [](const std::vector<GridCell> &,
                    const std::vector<SimResults> &results,
                    std::ostream &os) {
        os << "Register pressure: occupancy and lifetime distributions "
              "per rename scheme\n(regfile size sweep "
           << kSizes.front() << "/" << kSizes[1] << "/" << kSizes.back()
           << " registers per file; VP schemes at NRR = NPR-32)\n";

        auto cellAt = [&](std::size_t b, std::size_t s,
                          std::size_t sch) -> const SimResults & {
            return results[(b * kSizes.size() + s) * kSchemes.size() +
                           sch];
        };

        for (std::size_t b = 0; b < kBenchmarks.size(); ++b) {
            const bool fp = kBenchmarks[b] == "swim";
            const std::string cls = fp ? "fp" : "int";
            const std::string occ = "regfile.occupancy." + cls;
            const std::string life = "rename.vp.lifetime." + cls;

            for (std::size_t s = 0; s < kSizes.size(); ++s) {
                os << "\n";
                printTableHeader(
                    os,
                    kBenchmarks[b] + ", " + std::to_string(kSizes[s]) +
                        " regs (" + cls + " class)",
                    {"ipc", "occ.mean", "occ.sd", "life.mean",
                     "life.sd"});
                for (std::size_t c = 0; c < kSchemes.size(); ++c) {
                    const SimResults &r = cellAt(b, s, c);
                    printTableRow(os, schemeTag(kSchemes[c]),
                                  {r.ipc(), r.metrics.real(occ + ".mean"),
                                   r.metrics.real(occ + ".stddev"),
                                   r.metrics.real(life + ".mean"),
                                   r.metrics.real(life + ".stddev")},
                                  2);
                }
            }

            // Full shape at the paper's default regfile size, labelled
            // from the sweep itself. The bucket geometry comes from
            // the records (<stem>.bucket_size), never re-derived here.
            const std::size_t sMid = kSizes.size() / 2;
            const std::string regs = std::to_string(kSizes[sMid]);
            os << "\n" << kBenchmarks[b] << ": " << cls
               << " regfile occupancy histogram, " << regs
               << " regs (% of cycles)\n";
            for (std::size_t c = 0; c < kSchemes.size(); ++c) {
                os << "  " << schemeTag(kSchemes[c]) << "\n";
                printMetricHistogram(os, cellAt(b, sMid, c).metrics,
                                     occ);
            }
            os << "\n" << kBenchmarks[b] << ": " << cls
               << " register lifetime histogram, " << regs
               << " regs (% of values)\n";
            for (std::size_t c = 0; c < kSchemes.size(); ++c) {
                os << "  " << schemeTag(kSchemes[c]) << "\n";
                printMetricHistogram(os, cellAt(b, sMid, c).metrics,
                                     life);
            }
        }

        os << "\npaper reference (section 3.1): with decode-time "
              "allocation a register is busy from rename to the\n"
              "superseding commit; virtual-physical renaming shifts "
              "allocation to issue or write-back, so the\noccupancy "
              "histogram shifts left and the lifetime histogram "
              "collapses toward the value's useful life.\n";
    };
    return def;
}

} // namespace vpr::bench
