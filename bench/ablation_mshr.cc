/**
 * @file
 * Ablation: MSHR count (lockup-free cache depth).
 *
 * The virtual-physical win on streaming FP codes comes from overlapping
 * more cache misses than 32 rename registers allow. That makes the
 * 8-entry MSHR file (paper §4.1) the complementary ceiling: this bench
 * sweeps it to show where the VP speedup saturates.
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    const std::vector<unsigned> mshrs = {2, 4, 8, 16, 32};
    std::vector<std::string> cols;
    for (auto m : mshrs)
        cols.push_back("MSHR=" + std::to_string(m));
    printTableHeader(std::cout,
                     "Ablation: VP speedup vs outstanding-miss limit "
                     "(64 regs, write-back alloc)",
                     cols);

    for (const char *name : {"swim", "mgrid", "apsi", "compress"}) {
        std::vector<double> row;
        for (unsigned m : mshrs) {
            SimConfig config = experimentConfig();
            config.core.cache.numMshrs = m;
            config.setScheme(RenameScheme::Conventional);
            double conv = runOne(name, config).ipc();
            config.setScheme(RenameScheme::VPAllocAtWriteback);
            double vp = runOne(name, config).ipc();
            row.push_back(vp / conv);
        }
        printTableRow(std::cout, name, row, 3);
    }

    std::cout << "\nexpectation: with very few MSHRs both schemes are "
                 "pinned to the same miss ceiling (speedup -> 1); the "
                 "speedup grows with MSHRs until the 128-entry window "
                 "becomes the limit.\n";
    return 0;
}
