/** @file Unit tests for conventional renaming + early release. */

#include <gtest/gtest.h>

#include "rename/early_release.hh"

namespace vpr
{
namespace
{

RenameConfig
cfg64()
{
    RenameConfig c;
    c.numPhysRegs = 64;
    return c;
}

/** Bind a standalone DynInst to a fresh hot-pool slot (the ROB does
 *  this in production) and stamp its sequence number. */
void
bind(DynInst &d, InstSeqNum seq)
{
    static InstHotPool pool(1 << 12);
    static HotIdx next = 0;
    HotIdx sl = next++ % pool.capacity();
    pool.reset(sl);
    d.bindHot(&pool, sl);
    d.setSeq(seq);
}

DynInst
alu(InstSeqNum seq, std::uint16_t destIdx, std::uint16_t s1 = 1,
    std::uint16_t s2 = 2)
{
    DynInst d;
    d.si = StaticInst::alu(RegId::intReg(destIdx), RegId::intReg(s1),
                           RegId::intReg(s2));
    bind(d, seq);
    return d;
}

TEST(EarlyRelease, SchemeName)
{
    EarlyReleaseRename rn(cfg64());
    EXPECT_EQ(rn.scheme(), RenameScheme::ConventionalEarlyRelease);
    EXPECT_STREQ(renameSchemeName(rn.scheme()), "conv-early-release");
}

TEST(EarlyRelease, ReleasesWhenSupersededWrittenAndRead)
{
    EarlyReleaseRename rn(cfg64());
    // Producer writes r5.
    auto a = alu(1, 5);
    rn.renameInst(a, 1);
    rn.tryIssue(a, 2);
    rn.complete(a, 3);
    // Note: renaming a destination immediately releases the previous
    // mapping when it is already dead — the architected registers of
    // r5/r6 below fall in that category, hence the baseline counts.
    EXPECT_EQ(rn.earlyReleases(), 1u);  // arch r5, released at a's rename
    // Consumer reads r5 (renamed but not yet issued).
    auto c = alu(2, 6, 5, 1);
    rn.renameInst(c, 4);
    EXPECT_EQ(rn.earlyReleases(), 2u);  // arch r6
    // Superseder of r5: a's register has a pending reader (c) -> held.
    auto b = alu(3, 5);
    rn.renameInst(b, 5);
    std::size_t freeBefore = rn.freePhysRegs(RegClass::Int);
    EXPECT_EQ(rn.earlyReleases(), 2u);  // consumer still pending
    // Consumer issues: a's register is now dead -> early release.
    rn.tryIssue(c, 6);
    EXPECT_EQ(rn.earlyReleases(), 3u);
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), freeBefore + 1);
    rn.checkInvariants();

    // The superseder's commit must NOT free it a second time.
    rn.complete(c, 7);
    rn.complete(b, 7);
    rn.commitInst(a, 8);
    rn.commitInst(c, 8);
    std::size_t freeAfter = rn.freePhysRegs(RegClass::Int);
    rn.commitInst(b, 9);
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), freeAfter);
    rn.checkInvariants();
}

TEST(EarlyRelease, NoReleaseBeforeValueWritten)
{
    EarlyReleaseRename rn(cfg64());
    auto a = alu(1, 5);
    rn.renameInst(a, 1);     // a holds the new mapping of r5
    auto b = alu(2, 5);
    rn.renameInst(b, 2);     // supersedes a before a completed
    // Only the architected r5 (dead on a's rename) was released; a's
    // own register is superseded but not written yet.
    EXPECT_EQ(rn.earlyReleases(), 1u);
    rn.tryIssue(a, 3);
    rn.complete(a, 4);       // now written + superseded + no readers
    EXPECT_EQ(rn.earlyReleases(), 2u);
}

TEST(EarlyRelease, NoReleaseWhileReadersPending)
{
    EarlyReleaseRename rn(cfg64());
    auto a = alu(1, 5);
    rn.renameInst(a, 1);
    rn.tryIssue(a, 2);
    rn.complete(a, 3);
    auto reader = alu(2, 7, 5, 5);  // reads r5 twice
    rn.renameInst(reader, 4);
    EXPECT_EQ(rn.pendingReaders(RegClass::Int, a.physReg), 2u);
    auto b = alu(3, 5);
    rn.renameInst(b, 5);            // supersede
    // Two architected registers (r5 at a's rename, r7 at the reader's)
    // released so far; a's own register is pinned by the reader.
    EXPECT_EQ(rn.earlyReleases(), 2u);
    rn.tryIssue(reader, 6);
    EXPECT_EQ(rn.earlyReleases(), 3u);
}

TEST(EarlyRelease, CommitPathStillWorksWithoutEarlyRelease)
{
    // A value read before being superseded frees at the superseder's
    // commit, like plain conventional renaming... unless the release
    // conditions are met first (they are, right at the supersede).
    EarlyReleaseRename rn(cfg64());
    auto a = alu(1, 5);
    rn.renameInst(a, 1);
    rn.tryIssue(a, 2);
    rn.complete(a, 3);
    // arch reg 5 was already early-released at a's rename, so a's
    // commit must not free it again.
    std::size_t freeAtCommit = rn.freePhysRegs(RegClass::Int);
    rn.commitInst(a, 4);
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), freeAtCommit);
    // a's own register is freed early the moment r5 is renamed again
    // (written, no readers).
    auto b = alu(2, 5);
    std::size_t freeBefore = rn.freePhysRegs(RegClass::Int);
    rn.renameInst(b, 5);
    // -1 for b's new register, +1 for a's early-released one.
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), freeBefore);
    EXPECT_EQ(rn.earlyReleases(), 2u);
}

TEST(EarlyRelease, PressureLowerThanPlainConventional)
{
    auto run = [](RenameManager &rn) {
        InstSeqNum seq = 0;
        std::vector<DynInst> live;
        Cycle now = 0;
        std::uint64_t holds = 0;
        for (int i = 0; i < 200; ++i) {
            ++now;
            rn.tick(now);
            ++seq;
            DynInst d = alu(seq, seq % 16, (seq + 1) % 16, 2);
            rn.renameInst(d, now);
            rn.tryIssue(d, now);
            rn.complete(d, now + 20);  // long-ish lifetime
            live.push_back(d);
            if (live.size() > 6) {
                rn.commitInst(live.front(), now + 21);
                live.erase(live.begin());
            }
        }
        holds = rn.pressure(RegClass::Int).totalHoldCycles();
        return holds;
    };
    ConventionalRename conv(cfg64());
    EarlyReleaseRename er(cfg64());
    EXPECT_LT(run(er), run(conv));
}

TEST(EarlyRelease, SquashIsSafeWhenPrevMappingWasNotReleased)
{
    EarlyReleaseRename rn(cfg64());
    // Pin the architected r5 with a pending reader so superseding it
    // does not release it.
    auto reader = alu(1, 6, 5, 5);
    rn.renameInst(reader, 1);
    std::size_t baseline = rn.earlyReleases();
    auto a = alu(2, 5);
    rn.renameInst(a, 2);
    EXPECT_EQ(rn.earlyReleases(), baseline);  // r5 pinned by the reader
    // Squashing a (youngest first) is safe: its previous mapping is
    // still allocated and the map-table restore is valid. (The reader
    // itself cannot be squashed safely: its own rename already released
    // the dead architected r6.)
    rn.squashInst(a, 3);
    // reader's destination still held (-1), arch r6 released (+1).
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 32u);
    rn.checkInvariants();
}

TEST(EarlyReleaseDeath, SquashAfterEarlyReleasePanics)
{
    EarlyReleaseRename rn(cfg64());
    auto a = alu(1, 5);
    rn.renameInst(a, 1);
    rn.tryIssue(a, 2);
    rn.complete(a, 3);
    auto b = alu(2, 5);
    rn.renameInst(b, 4);  // triggers early release of a's register
    ASSERT_EQ(rn.earlyReleases(), 2u);  // arch r5 + a's register
    EXPECT_DEATH(rn.squashInst(b, 5), "incompatible with squashing");
}

} // namespace
} // namespace vpr
