#include "isa/static_inst.hh"

#include <sstream>

namespace vpr
{

std::string
StaticInst::disassemble() const
{
    std::ostringstream os;
    os << std::hex << "0x" << pc << std::dec << ": " << opClassName(op);
    if (dest.valid())
        os << " " << dest.str();
    for (const auto &s : src)
        if (s.valid())
            os << (dest.valid() || &s != &src[0] ? "," : " ") << s.str();
    if (isMem())
        os << " @0x" << std::hex << effAddr << std::dec;
    if (isBranch())
        os << (taken ? " T->" : " NT->") << std::hex << "0x" << target
           << std::dec;
    return os.str();
}

namespace
{

StaticInst
make(OpClass op, RegId dest, RegId s1, RegId s2)
{
    StaticInst si;
    si.op = op;
    si.dest = dest;
    si.src[0] = s1;
    si.src[1] = s2;
    return si;
}

} // namespace

StaticInst
StaticInst::alu(RegId dest, RegId s1, RegId s2)
{
    return make(OpClass::IntAlu, dest, s1, s2);
}

StaticInst
StaticInst::mult(RegId dest, RegId s1, RegId s2)
{
    return make(OpClass::IntMult, dest, s1, s2);
}

StaticInst
StaticInst::div(RegId dest, RegId s1, RegId s2)
{
    return make(OpClass::IntDiv, dest, s1, s2);
}

StaticInst
StaticInst::fpAdd(RegId dest, RegId s1, RegId s2)
{
    return make(OpClass::FpAdd, dest, s1, s2);
}

StaticInst
StaticInst::fpMul(RegId dest, RegId s1, RegId s2)
{
    return make(OpClass::FpMult, dest, s1, s2);
}

StaticInst
StaticInst::fpDiv(RegId dest, RegId s1, RegId s2)
{
    return make(OpClass::FpDiv, dest, s1, s2);
}

StaticInst
StaticInst::fpSqrt(RegId dest, RegId s1)
{
    return make(OpClass::FpSqrt, dest, s1, RegId::none());
}

StaticInst
StaticInst::load(RegId dest, RegId base, Addr addr)
{
    StaticInst si = make(OpClass::Load, dest, base, RegId::none());
    si.effAddr = addr;
    return si;
}

StaticInst
StaticInst::store(RegId data, RegId base, Addr addr)
{
    // src[0] = data to store, src[1] = base/address register.
    StaticInst si = make(OpClass::Store, RegId::none(), data, base);
    si.effAddr = addr;
    return si;
}

StaticInst
StaticInst::branch(RegId s1, bool taken, Addr target)
{
    StaticInst si = make(OpClass::Branch, RegId::none(), s1, RegId::none());
    si.taken = taken;
    si.target = target;
    return si;
}

StaticInst
StaticInst::nop()
{
    return make(OpClass::Nop, RegId::none(), RegId::none(), RegId::none());
}

} // namespace vpr
