/**
 * @file
 * Branch History Table predictor.
 *
 * The paper's configuration: a 2048-entry BHT with one 2-bit up/down
 * saturating counter per entry, indexed by the branch PC. Targets are
 * taken from the trace (equivalent to a perfect BTB), so only the
 * direction is predicted.
 */

#ifndef VPR_BRANCH_BHT_HH
#define VPR_BRANCH_BHT_HH

#include <cstdint>
#include <vector>

#include "common/state.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace vpr
{

/** 2-bit saturating-counter branch direction predictor. */
class BhtPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BhtPredictor(std::size_t entries = 2048);

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /** Train with the actual outcome. */
    void update(Addr pc, bool taken);

    /** Predict and immediately train; returns whether the prediction
     *  was correct. Convenience for the fetch stage. */
    bool predictAndUpdate(Addr pc, bool taken);

    std::size_t numEntries() const { return table.size(); }

    /** Raw counter value, for tests. */
    std::uint8_t counter(Addr pc) const { return table[index(pc)]; }

    /** Prediction accuracy so far (1.0 when no branches seen). */
    double accuracy() const;

    std::uint64_t lookups() const { return nLookups; }
    std::uint64_t mispredicts() const { return nMispredicts; }

    void reset();

    /** Serialize/restore the counters and the whole-run accuracy
     *  numerators (common/state.hh). */
    void
    visitState(StateVisitor &v)
    {
        v.section("bht");
        std::uint64_t n = table.size();
        v.value(n);
        if (v.loading() && n != table.size())
            throw CkptError("BHT size mismatch");
        v.bytes(table.data(), table.size());
        v.value(nLookups);
        v.value(nMispredicts);
    }

  private:
    std::size_t index(Addr pc) const { return (pc >> 2) & mask; }

    std::vector<std::uint8_t> table; ///< 2-bit counters, init weakly taken
    std::size_t mask;
    std::uint64_t nLookups = 0;
    std::uint64_t nMispredicts = 0;
};

} // namespace vpr

#endif // VPR_BRANCH_BHT_HH
