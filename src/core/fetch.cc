#include "core/fetch.hh"

#include <algorithm>

#include "common/logging.hh"
#include "memory/cache.hh"
#include "sim/params.hh"

namespace vpr
{

const char *
wrongPathModeName(WrongPathMode mode)
{
    return mode == WrongPathMode::Stall ? "stall" : "synthesize";
}

void
FetchConfig::visitParams(ParamVisitor &v)
{
    v.uintParam("fetch_width", fetchWidth,
                "instructions fetched per cycle");
    v.uintParam("buffer_capacity", bufferCapacity,
                "fetch-buffer entries between fetch and rename");
    v.uintParam("bht_entries", bhtEntries,
                "branch-history-table entries (2-bit counters)");
    v.uintParam("redirect_delay", redirectDelay,
                "cycles from branch resolve to redirected fetch");
    v.enumParam("wrong_path", wrongPath,
                {{"stall", WrongPathMode::Stall},
                 {"synthesize", WrongPathMode::Synthesize}},
                "fetch behaviour past a detected misprediction");
    v.uintParam("wrong_path_seed", wrongPathSeed,
                "base seed of the wrong-path synthesis RNG");
    v.boolParam("wrong_path_mem", wrongPathMem,
                "synthesized wrong-path instructions include loads and "
                "stores that really probe the cache and LSQ");
}

FetchUnit::FetchUnit(TraceStream &stream, const FetchConfig &config)
    : trace(stream), cfg(config), bht(config.bhtEntries),
      buffer(config.bufferCapacity == 0 ? 1 : config.bufferCapacity),
      wpRng(config.wrongPathSeed)
{
    VPR_ASSERT(cfg.fetchWidth >= 1, "fetch width must be >= 1");
    VPR_ASSERT(cfg.bufferCapacity >= cfg.fetchWidth,
               "fetch buffer smaller than fetch width");
    branchGroup.add(&bhtAccuracy);
}

void
FetchUnit::reinit()
{
    buffer.clear();
    bht.reset();
    waiting = false;
    paused = false;
    stallUntil = 0;
    exhausted = false;
    // Construct, don't reseed(): the two map a zero seed differently,
    // and fresh-construct equivalence is the whole contract here.
    wpRng = Random(cfg.wrongPathSeed);
    wpPc = 0xdead0000;
    nReal = 0;
    nWrongPath = 0;
    nBranches = 0;
    nMispredicts = 0;
}

StaticInst
FetchUnit::synthesizeWrongPath()
{
    // Wrong-path mixes are dominated by short integer ops; memory
    // operations stay out unless wrongPathMem is set, so speculative
    // pollution of the data cache is opt-in (see DESIGN.md).
    StaticInst si;
    std::uint64_t pick = wpRng.below(100);
    auto randInt = [this] {
        return RegId::intReg(static_cast<std::uint16_t>(
            wpRng.below(kNumLogicalRegs)));
    };
    auto randFp = [this] {
        return RegId::fpReg(static_cast<std::uint16_t>(
            wpRng.below(kNumLogicalRegs)));
    };
    if (cfg.wrongPathMem) {
        // Wrong-path addresses come from stale or garbage registers:
        // model them as random lines in a dedicated region. Pollution
        // works through cache-index conflicts, so the base is
        // irrelevant; only the line spread matters.
        auto randAddr = [this] {
            return static_cast<Addr>(0x30000000ull +
                                     wpRng.below(1ull << 16) * 64);
        };
        if (pick < 18) {
            si = StaticInst::load(randInt(), randInt(), randAddr());
        } else if (pick < 26) {
            si = StaticInst::store(randInt(), randInt(), randAddr());
        } else if (pick < 66) {
            si = StaticInst::alu(randInt(), randInt(), randInt());
        } else if (pick < 90) {
            si = StaticInst::fpAdd(randFp(), randFp(), randFp());
        } else {
            si = StaticInst::nop();
        }
    } else if (pick < 60) {
        si = StaticInst::alu(randInt(), randInt(), randInt());
    } else if (pick < 85) {
        si = StaticInst::fpAdd(randFp(), randFp(), randFp());
    } else {
        si = StaticInst::nop();
    }
    si.pc = wpPc;
    wpPc += 4;
    return si;
}

void
FetchUnit::tick(Cycle now)
{
    if (paused || now < stallUntil)
        return;

    for (unsigned i = 0; i < cfg.fetchWidth; ++i) {
        if (buffer.full())
            break;

        if (waiting) {
            if (cfg.wrongPath == WrongPathMode::Stall)
                break;
            FetchedInst fi;
            fi.si = synthesizeWrongPath();
            fi.wrongPath = true;
            fi.fetchCycle = now;
            buffer.pushBack(fi);
            ++nWrongPath;
            continue;
        }

        if (exhausted)
            break;
        auto rec = trace.next();
        if (!rec) {
            exhausted = true;
            break;
        }

        FetchedInst fi;
        fi.si = *rec;
        fi.fetchCycle = now;
        ++nReal;

        if (rec->isBranch()) {
            ++nBranches;
            bool correct = bht.predictAndUpdate(rec->pc, rec->taken);
            if (!correct) {
                ++nMispredicts;
                fi.mispredictedBranch = true;
                waiting = true;
                buffer.pushBack(fi);
                // The group ends; wrong-path fetch starts next cycle.
                break;
            }
            buffer.pushBack(fi);
            if (rec->taken) {
                // Predicted-taken branch ends the fetch group.
                break;
            }
            continue;
        }
        buffer.pushBack(fi);
    }
}

FetchedInst
FetchUnit::pop()
{
    VPR_ASSERT(!buffer.empty(), "pop from empty fetch buffer");
    FetchedInst fi = buffer.front();
    buffer.popFront();
    return fi;
}

std::size_t
FetchUnit::warmFunctional(std::size_t n, NonBlockingCache &cache,
                          Cycle &now)
{
    VPR_ASSERT(buffer.empty() && !waiting,
               "functional fetch with detailed fetch state in flight");
    if (exhausted)
        return 0;
    std::size_t done = 0;
    TraceRecord batch[256];
    while (done < n) {
        const std::size_t want =
            std::min(n - done, sizeof(batch) / sizeof(batch[0]));
        const std::size_t got = trace.nextBatch(batch, want);
        for (std::size_t i = 0; i < got; ++i) {
            const TraceRecord &rec = batch[i];
            ++now;
            if (rec.isBranch()) {
                // Train the predictor; ignore the prediction.
                // Functional warming has no pipeline to redirect, and
                // the whole-run branch counters stay detailed-only.
                bht.predictAndUpdate(rec.pc, rec.taken);
            } else if (rec.isMem()) {
                cache.access(rec.effAddr, rec.isStore(), now);
            }
        }
        done += got;
        if (got < want) {
            exhausted = true;
            break;
        }
    }
    return done;
}

std::size_t
FetchUnit::skipFunctional(std::size_t n)
{
    VPR_ASSERT(buffer.empty() && !waiting,
               "functional skip with detailed fetch state in flight");
    if (exhausted)
        return 0;
    const std::size_t done = trace.skip(n);
    if (done < n)
        exhausted = true;
    return done;
}

void
FetchUnit::resolveBranch(Cycle now)
{
    VPR_ASSERT(waiting, "resolveBranch with no outstanding mispredict");
    waiting = false;
    stallUntil = now + cfg.redirectDelay;
    // Everything left in the buffer is wrong-path by construction.
    for (std::size_t i = 0; i < buffer.size(); ++i)
        VPR_ASSERT(buffer.at(i).wrongPath,
                   "real instruction behind a mispredict");
    buffer.clear();
}

void
FetchUnit::visitState(StateVisitor &v, CkptScope scope)
{
    VPR_ASSERT(buffer.empty() && !waiting,
               "fetch checkpointed while not drained");
    v.section("fetch");
    trace.visitState(v);
    bht.visitState(v);
    v.value(exhausted);
    if (scope != CkptScope::Full)
        return;
    // stallUntil can still point past the drain point: the final commit
    // before quiescence may have resolved a mispredict.
    v.value(stallUntil);
    v.rng(wpRng);
    v.value(wpPc);
    v.value(nReal);
    v.value(nWrongPath);
    v.value(nBranches);
    v.value(nMispredicts);
}

} // namespace vpr
