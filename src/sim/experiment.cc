#include "sim/experiment.hh"

#include <cstdlib>
#include <iomanip>

#include "common/logging.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    for (double v : values) {
        VPR_ASSERT(v > 0.0, "harmonic mean of non-positive value");
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

SimResults
runOne(const std::string &benchmark, SimConfig config)
{
    applyInstructionScale(config);
    Simulator sim(benchmark, config);
    return sim.run();
}

std::vector<SimResults>
runGrid(const std::vector<GridCell> &cells, unsigned jobs)
{
    ParallelExperimentEngine engine(jobs);
    return engine.run(cells);
}

ShardSpec
parseShard(const char *text)
{
    char *end = nullptr;
    unsigned long i = std::strtoul(text, &end, 10);
    if (end == text || *end != '/')
        VPR_FATAL("bad shard '", text, "' (want i/N, e.g. 0/4)");
    const char *countText = end + 1;
    unsigned long n = std::strtoul(countText, &end, 10);
    if (end == countText || *end != '\0' || n == 0 || n > 4096 || i >= n)
        VPR_FATAL("bad shard '", text, "' (want i/N with 0 <= i < N)");
    return ShardSpec{static_cast<unsigned>(i), static_cast<unsigned>(n)};
}

std::vector<std::size_t>
shardCellIndices(std::size_t totalCells, const ShardSpec &shard)
{
    VPR_ASSERT(shard.count > 0 && shard.index < shard.count,
               "invalid shard ", shard.index, "/", shard.count);
    std::vector<std::size_t> indices;
    for (std::size_t i = shard.index; i < totalCells; i += shard.count)
        indices.push_back(i);
    return indices;
}

std::vector<GridCell>
selectCells(const std::vector<GridCell> &cells,
            const std::vector<std::size_t> &indices)
{
    std::vector<GridCell> out;
    out.reserve(indices.size());
    for (std::size_t i : indices) {
        VPR_ASSERT(i < cells.size(), "cell index ", i, " out of range");
        out.push_back(cells[i]);
    }
    return out;
}

std::map<std::string, SimResults>
runAll(const SimConfig &config)
{
    std::vector<GridCell> cells;
    for (const auto &name : benchmarkNames())
        cells.push_back({name, config});
    std::vector<SimResults> results = runGrid(cells, config.jobs);

    std::map<std::string, SimResults> out;
    for (std::size_t i = 0; i < cells.size(); ++i)
        out[cells[i].benchmark] = results[i];
    return out;
}

double
instructionScale()
{
    static double scale = [] {
        const char *env = std::getenv("VPR_INSTS_SCALE");
        if (!env)
            return 1.0;
        double v = std::atof(env);
        if (v <= 0.0) {
            VPR_WARN("ignoring bad VPR_INSTS_SCALE '", env, "'");
            return 1.0;
        }
        return v;
    }();
    return scale;
}

unsigned
parseJobs(const char *text)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v > 4096) {
        VPR_WARN("ignoring bad jobs value '", text,
                 "' (want 0 = hw threads, or a worker count)");
        return 1;
    }
    return static_cast<unsigned>(v);  // 0 = one per hardware thread
}

unsigned
defaultJobs()
{
    static unsigned jobs = [] {
        const char *env = std::getenv("VPR_JOBS");
        return env ? parseJobs(env) : 1u;
    }();
    return jobs;
}

void
applyInstructionScale(SimConfig &config)
{
    double s = instructionScale();
    config.skipInsts =
        static_cast<std::uint64_t>(config.skipInsts * s);
    config.measureInsts =
        static_cast<std::uint64_t>(config.measureInsts * s);
    if (config.measureInsts < 1000)
        config.measureInsts = 1000;
}

void
printTableHeader(std::ostream &os, const std::string &title,
                 const std::vector<std::string> &columns)
{
    os << "\n== " << title << " ==\n";
    os << std::left << std::setw(12) << "benchmark";
    for (const auto &c : columns)
        os << std::right << std::setw(12) << c;
    os << "\n";
    os << std::string(12 + 12 * columns.size(), '-') << "\n";
}

void
printTableRow(std::ostream &os, const std::string &label,
              const std::vector<double> &values, int precision)
{
    os << std::left << std::setw(12) << label;
    os << std::fixed << std::setprecision(precision);
    for (double v : values)
        os << std::right << std::setw(12) << v;
    os << "\n";
}

} // namespace vpr
