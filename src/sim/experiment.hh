/**
 * @file
 * Experiment harness: runs (benchmark × scheme × parameters) grids and
 * formats tables in the paper's style. Every bench binary is a thin
 * wrapper around these helpers.
 */

#ifndef VPR_SIM_EXPERIMENT_HH
#define VPR_SIM_EXPERIMENT_HH

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/parallel_engine.hh"
#include "sim/simulator.hh"

namespace vpr
{

/** Harmonic mean (the paper's average for IPC tables). */
double harmonicMean(const std::vector<double> &values);

/**
 * Run one benchmark under @p config and return the results.
 */
SimResults runOne(const std::string &benchmark, SimConfig config);

/**
 * Run a whole grid of cells on the parallel engine with @p jobs worker
 * threads (1 = serial, 0 = one per hardware thread) and return results
 * in cell order. This is the workhorse every bench binary sweeps
 * through; results are independent of jobs.
 */
std::vector<SimResults> runGrid(const std::vector<GridCell> &cells,
                                unsigned jobs);

/**
 * A deterministic slice of a grid: shard @p index of @p count. Cells
 * are dealt round-robin (cell i belongs to shard i % count) so unequal
 * cell runtimes balance across hosts. count == 1 is the whole grid.
 */
struct ShardSpec
{
    unsigned index = 0;
    unsigned count = 1;

    bool active() const { return count > 1; }
};

/** Strictly parse an "i/N" shard spec (0 <= i < N); fatal()s on user
 *  error so a CI matrix cannot silently run the wrong slice. */
ShardSpec parseShard(const char *text);

/** The global cell indices belonging to @p shard, ascending. */
std::vector<std::size_t> shardCellIndices(std::size_t totalCells,
                                          const ShardSpec &shard);

/** The subset of @p cells selected by @p indices, in index order. */
std::vector<GridCell> selectCells(const std::vector<GridCell> &cells,
                                  const std::vector<std::size_t> &indices);

/**
 * Run every benchmark of the paper under @p config, using config.jobs
 * worker threads.
 * @return results keyed by benchmark name (paper order preserved via
 *         benchmarkNames()).
 */
std::map<std::string, SimResults> runAll(const SimConfig &config);

/** Scale factor for instruction budgets, settable from the command
 *  line / environment (VPR_INSTS_SCALE) to trade time for fidelity. */
double instructionScale();

/** Default worker-thread count for grid sweeps: the VPR_JOBS
 *  environment variable (0 = one per hardware thread), or 1. */
unsigned defaultJobs();

/** Strictly parse a --jobs/VPR_JOBS value: "0" = one per hardware
 *  thread, a positive integer = that many workers; anything else
 *  warns and falls back to 1 worker. */
unsigned parseJobs(const char *text);

/** Apply the global instruction scale to a config. */
void applyInstructionScale(SimConfig &config);

/** Pretty-printing helpers for paper-style tables. @{ */
void printTableHeader(std::ostream &os, const std::string &title,
                      const std::vector<std::string> &columns);
void printTableRow(std::ostream &os, const std::string &label,
                   const std::vector<double> &values, int precision = 2);
/** @} */

} // namespace vpr

#endif // VPR_SIM_EXPERIMENT_HH
