#include "rename/rename_iface.hh"

#include "common/logging.hh"

namespace vpr
{

const char *
renameSchemeName(RenameScheme s)
{
    switch (s) {
      case RenameScheme::Conventional:
        return "conventional";
      case RenameScheme::VPAllocAtWriteback:
        return "vp-writeback";
      case RenameScheme::VPAllocAtIssue:
        return "vp-issue";
      case RenameScheme::ConventionalEarlyRelease:
        return "conv-early-release";
      default:
        VPR_PANIC("bad rename scheme");
    }
}

RenameManager::RenameManager(const RenameConfig &config)
    : cfg(config),
      pressureTrk{PressureTracker(config.numPhysRegs),
                  PressureTracker(config.numPhysRegs)}
{
    VPR_ASSERT(cfg.numPhysRegs > kNumLogicalRegs,
               "need more physical than logical registers");
}

} // namespace vpr
