#include "service/http.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace vpr::service
{

namespace
{

/** Largest accepted header block / request body. The daemon's only
 *  POST body is a small JSON sweep spec; anything bigger is abuse. */
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 4 * 1024 * 1024;

/** recv() timeout per connection — a wedged peer must not hold the
 *  single-threaded accept loop hostage. */
constexpr int kRecvTimeoutSec = 30;

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

/** send() everything, riding out EINTR and partial writes; MSG_NOSIGNAL
 *  turns a dead peer into an error return instead of SIGPIPE. */
bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
recvSome(int fd, std::string &buffer)
{
    char chunk[16 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;  // peer closed or timed out
        buffer.append(chunk, static_cast<std::size_t>(n));
        return true;
    }
}

bool
equalsIgnoreCase(const std::string &a, const char *b)
{
    std::size_t i = 0;
    for (; i < a.size() && b[i]; ++i) {
        const char ca = a[i] >= 'A' && a[i] <= 'Z'
                            ? static_cast<char>(a[i] - 'A' + 'a')
                            : a[i];
        const char cb = b[i] >= 'A' && b[i] <= 'Z'
                            ? static_cast<char>(b[i] - 'A' + 'a')
                            : b[i];
        if (ca != cb)
            return false;
    }
    return i == a.size() && !b[i];
}

std::string
trimSpace(const std::string &s)
{
    std::size_t begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return std::string();
    std::size_t end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

/** Parse the Content-Length of a raw header block (the bytes between
 *  the request/status line and the blank line); 0 when absent. False
 *  only on a malformed value. */
bool
parseContentLength(const std::string &headers, std::size_t &length)
{
    length = 0;
    std::size_t lineStart = 0;
    while (lineStart < headers.size()) {
        std::size_t lineEnd = headers.find("\r\n", lineStart);
        if (lineEnd == std::string::npos)
            lineEnd = headers.size();
        const std::string line =
            headers.substr(lineStart, lineEnd - lineStart);
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos &&
            equalsIgnoreCase(line.substr(0, colon), "content-length")) {
            const std::string value = trimSpace(line.substr(colon + 1));
            if (value.empty() ||
                value.find_first_not_of("0123456789") !=
                    std::string::npos)
                return false;
            length = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        }
        lineStart = lineEnd + 2;
    }
    return true;
}

/**
 * Read one full request/response message from @p fd: header block up
 * to the blank line, then Content-Length body bytes (or, when
 * @p bodyUntilEof, everything until the peer closes). @p firstLine and
 * @p headerBlock/@p body come back separated.
 */
bool
readMessage(int fd, std::string &firstLine, std::string &headerBlock,
            std::string &body, bool bodyUntilEof, std::string &error)
{
    std::string buffer;
    std::size_t headerEnd;
    for (;;) {
        headerEnd = buffer.find("\r\n\r\n");
        if (headerEnd != std::string::npos)
            break;
        if (buffer.size() > kMaxHeaderBytes) {
            error = "header block too large";
            return false;
        }
        if (!recvSome(fd, buffer)) {
            error = "connection closed mid-header";
            return false;
        }
    }

    const std::size_t lineEnd = buffer.find("\r\n");
    firstLine = buffer.substr(0, lineEnd);
    headerBlock =
        buffer.substr(lineEnd + 2, headerEnd - (lineEnd + 2));
    body = buffer.substr(headerEnd + 4);

    std::size_t contentLength = 0;
    if (!parseContentLength(headerBlock, contentLength)) {
        error = "malformed Content-Length";
        return false;
    }
    if (contentLength > kMaxBodyBytes) {
        error = "request body too large";
        return false;
    }
    if (bodyUntilEof && contentLength == 0) {
        while (recvSome(fd, body)) {
        }
        return true;
    }
    while (body.size() < contentLength) {
        if (!recvSome(fd, body)) {
            error = "connection closed mid-body";
            return false;
        }
    }
    body.resize(contentLength);
    return true;
}

std::string
renderResponse(const HttpResponse &response)
{
    std::string out = "HTTP/1.1 " + std::to_string(response.status) +
                      " " + httpReason(response.status) + "\r\n";
    out += "Content-Type: " + response.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) +
           "\r\n";
    out += "Connection: close\r\n\r\n";
    out += response.body;
    return out;
}

} // namespace

const char *
httpReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 500: return "Internal Server Error";
      default: return "Unknown";
    }
}

HttpServer::~HttpServer()
{
    closeFd(listenFd);
}

bool
HttpServer::bindAndListen(const std::string &host, std::uint16_t port,
                          std::string &error)
{
    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = "bad listen address '" + host + "'";
        return false;
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = "bind " + host + ":" + std::to_string(port) + ": " +
                std::strerror(errno);
        return false;
    }
    if (::listen(listenFd, 16) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        return false;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        error = std::string("getsockname: ") + std::strerror(errno);
        return false;
    }
    boundPort = ntohs(addr.sin_port);
    return true;
}

void
HttpServer::serve(const Handler &handler)
{
    VPR_ASSERT(listenFd >= 0, "serve() before bindAndListen()");
    while (!stopping) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            VPR_WARN("accept: ", std::strerror(errno));
            return;
        }
        timeval timeout{kRecvTimeoutSec, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));

        std::string requestLine, headerBlock, body, error;
        HttpResponse response;
        if (!readMessage(fd, requestLine, headerBlock, body,
                         /*bodyUntilEof=*/false, error)) {
            response.status = 400;
            response.body = "bad request: " + error + "\n";
        } else {
            HttpRequest request;
            const std::size_t sp1 = requestLine.find(' ');
            const std::size_t sp2 =
                sp1 == std::string::npos
                    ? sp1
                    : requestLine.find(' ', sp1 + 1);
            if (sp2 == std::string::npos ||
                requestLine.compare(sp2 + 1, 5, "HTTP/") != 0) {
                response.status = 400;
                response.body = "bad request: malformed request line\n";
            } else {
                request.method = requestLine.substr(0, sp1);
                request.path =
                    requestLine.substr(sp1 + 1, sp2 - sp1 - 1);
                request.body = std::move(body);
                response = handler(request);
            }
        }
        if (!sendAll(fd, renderResponse(response)))
            VPR_WARN("client hung up before the response was sent");
        closeFd(fd);
    }
}

bool
httpRequest(const std::string &host, std::uint16_t port,
            const std::string &method, const std::string &path,
            const std::string &body, HttpResponse &response,
            std::string &error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = "bad host '" + host + "' (want a dotted IPv4 address)";
        closeFd(fd);
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = "connect " + host + ":" + std::to_string(port) + ": " +
                std::strerror(errno);
        closeFd(fd);
        return false;
    }

    std::string request = method + " " + path + " HTTP/1.1\r\n";
    request += "Host: " + host + "\r\n";
    request += "Content-Length: " + std::to_string(body.size()) +
               "\r\n";
    request += "Connection: close\r\n\r\n";
    request += body;
    if (!sendAll(fd, request)) {
        error = std::string("send: ") + std::strerror(errno);
        closeFd(fd);
        return false;
    }

    std::string statusLine, headerBlock;
    if (!readMessage(fd, statusLine, headerBlock, response.body,
                     /*bodyUntilEof=*/true, error)) {
        closeFd(fd);
        return false;
    }
    closeFd(fd);

    // "HTTP/1.1 200 OK"
    const std::size_t sp = statusLine.find(' ');
    if (sp == std::string::npos ||
        statusLine.compare(0, 5, "HTTP/") != 0) {
        error = "malformed status line '" + statusLine + "'";
        return false;
    }
    response.status =
        static_cast<int>(std::strtol(statusLine.c_str() + sp + 1,
                                     nullptr, 10));
    if (response.status < 100 || response.status > 599) {
        error = "malformed status line '" + statusLine + "'";
        return false;
    }
    return true;
}

} // namespace vpr::service
