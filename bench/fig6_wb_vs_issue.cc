/**
 * @file
 * Figure 6 of the paper: write-back versus issue allocation, each at
 * its optimal NRR (32 for both), reported as speedup over the
 * conventional scheme per benchmark. Grid/table: bench/figures/.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("fig6_wb_vs_issue", argc, argv);
}
