/** @file Unit tests for op classes: Table 1 latencies and FU mapping. */

#include <gtest/gtest.h>

#include "isa/op_class.hh"

namespace vpr
{
namespace
{

TEST(OpClass, Table1Latencies)
{
    // Table 1 of the paper.
    EXPECT_EQ(opLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(opLatency(OpClass::IntMult), 9u);
    EXPECT_EQ(opLatency(OpClass::IntDiv), 67u);
    EXPECT_EQ(opLatency(OpClass::FpAdd), 4u);
    EXPECT_EQ(opLatency(OpClass::FpMult), 4u);
    EXPECT_EQ(opLatency(OpClass::FpDiv), 16u);
    EXPECT_EQ(opLatency(OpClass::FpSqrt), 16u);
    EXPECT_EQ(opLatency(OpClass::Branch), 1u);
}

TEST(OpClass, AddressGenerationIsOneCycle)
{
    EXPECT_EQ(opLatency(OpClass::Load), 1u);
    EXPECT_EQ(opLatency(OpClass::Store), 1u);
}

TEST(OpClass, FuMapping)
{
    EXPECT_EQ(fuTypeFor(OpClass::IntAlu), FUType::SimpleInt);
    EXPECT_EQ(fuTypeFor(OpClass::Branch), FUType::SimpleInt);
    EXPECT_EQ(fuTypeFor(OpClass::IntMult), FUType::ComplexInt);
    EXPECT_EQ(fuTypeFor(OpClass::IntDiv), FUType::ComplexInt);
    EXPECT_EQ(fuTypeFor(OpClass::Load), FUType::EffAddr);
    EXPECT_EQ(fuTypeFor(OpClass::Store), FUType::EffAddr);
    EXPECT_EQ(fuTypeFor(OpClass::FpAdd), FUType::SimpleFp);
    EXPECT_EQ(fuTypeFor(OpClass::FpMult), FUType::FpMul);
    EXPECT_EQ(fuTypeFor(OpClass::FpDiv), FUType::FpDivSqrt);
    EXPECT_EQ(fuTypeFor(OpClass::FpSqrt), FUType::FpDivSqrt);
    EXPECT_EQ(fuTypeFor(OpClass::Nop), FUType::None);
}

TEST(OpClass, OnlyDividersUnpipelined)
{
    // "Functional units are fully pipelined except for integer and FP
    // division" (paper section 4.1).
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        OpClass op = static_cast<OpClass>(i);
        bool isDiv = op == OpClass::IntDiv || op == OpClass::FpDiv ||
                     op == OpClass::FpSqrt;
        EXPECT_EQ(opUnpipelined(op), isDiv) << opClassName(op);
    }
}

TEST(OpClass, Predicates)
{
    EXPECT_TRUE(isMemOp(OpClass::Load));
    EXPECT_TRUE(isMemOp(OpClass::Store));
    EXPECT_FALSE(isMemOp(OpClass::IntAlu));
    EXPECT_TRUE(isFpOp(OpClass::FpAdd));
    EXPECT_TRUE(isFpOp(OpClass::FpSqrt));
    EXPECT_FALSE(isFpOp(OpClass::Load));
    EXPECT_FALSE(isFpOp(OpClass::Branch));
}

TEST(OpClass, NamesAreDistinct)
{
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        for (std::size_t j = i + 1; j < kNumOpClasses; ++j) {
            EXPECT_STRNE(opClassName(static_cast<OpClass>(i)),
                         opClassName(static_cast<OpClass>(j)));
        }
    }
}

} // namespace
} // namespace vpr
