#include "core/lsq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vpr
{

void
LineRefMap::erase(Addr line)
{
    Slot *s = probe(line);
    if (!s->used)
        return;
    const std::size_t mask = slots.size() - 1;
    std::size_t hole = static_cast<std::size_t>(s - slots.data());
    slots[hole].used = false;
    slots[hole].refs.clear();
    --numUsed;
    // Backward-shift the probe chain over the hole so lookups never
    // need tombstones. Vectors are swapped, not moved: the vacated
    // slot keeps a capacity for its next tenant.
    std::size_t i = (hole + 1) & mask;
    while (slots[i].used) {
        const std::size_t want = ideal(slots[i].line);
        // The entry at i may move into the hole iff the hole lies
        // within its probe path [want, i] (cyclically).
        if (((i - want) & mask) >= ((i - hole) & mask)) {
            slots[hole].line = slots[i].line;
            slots[hole].used = true;
            std::swap(slots[hole].refs, slots[i].refs);
            slots[i].used = false;
            hole = i;
        }
        i = (i + 1) & mask;
    }
}

void
LineRefMap::grow()
{
    std::vector<Slot> old(slots.size() * 2);
    old.swap(slots);
    numUsed = 0;
    for (Slot &s : old) {
        if (!s.used)
            continue;
        Slot *dst = probe(s.line);
        dst->used = true;
        dst->line = s.line;
        std::swap(dst->refs, s.refs);
        ++numUsed;
    }
}

Addr
Lsq::firstLine(const DynInst *m)
{
    return m->si.effAddr >> kLineShift;
}

Addr
Lsq::lastLine(const DynInst *m)
{
    return (m->si.effAddr + m->si.memSize - 1) >> kLineShift;
}

void
Lsq::insert(DynInst *inst)
{
    VPR_ASSERT(!full(), "insert into full LSQ");
    VPR_ASSERT(inst->isMem(), "non-memory instruction in LSQ");
    VPR_ASSERT(list.empty() || list.back()->seq() < inst->seq(),
               "LSQ insert out of program order");
    list.push_back(inst);
    // A store enters with its address unknown; program order keeps the
    // unknown list seq-sorted by construction.
    if (inst->isStore())
        unknownStores.push_back(inst->ref());
}

void
Lsq::eraseUnknown(InstSeqNum seq)
{
    auto it = std::lower_bound(
        unknownStores.begin(), unknownStores.end(), seq,
        [](const ReadyRef &r, InstSeqNum s) { return r.seq < s; });
    if (it != unknownStores.end() && it->seq == seq)
        unknownStores.erase(it);
}

void
Lsq::flushKnown(Cycle now)
{
    // Address visibility cycles are handed in nondecreasing order
    // (issue assigns now + 1 with a monotonic clock), so the pending
    // list is a FIFO.
    while (!pendingKnown.empty() && pendingKnown.front().second <= now) {
        eraseUnknown(pendingKnown.front().first);
        pendingKnown.pop_front();
    }
}

void
Lsq::eraseLineEntries(DynInst *store)
{
    if (!store->addrReady)
        return;  // never indexed
    for (Addr l = firstLine(store); l <= lastLine(store); ++l) {
        std::vector<ReadyRef> *bucket = lineTable.find(l);
        if (!bucket)
            continue;
        bucket->erase(std::remove_if(bucket->begin(), bucket->end(),
                                     [store](const ReadyRef &r) {
                                         return r.inst == store;
                                     }),
                      bucket->end());
        if (bucket->empty())
            lineTable.erase(l);
    }
}

Lsq::SubList &
Lsq::subsFor(const DynInst *store)
{
    const std::size_t slot = store->slot;
    if (slot >= holdSubs.size())
        holdSubs.resize(slot + 1);
    SubList &e = holdSubs[slot];
    if (e.owner != store->seq()) {
        // A previous tenant of the slot left its (already dead)
        // subscriptions behind; reclaim the list for the new owner.
        e.owner = store->seq();
        e.subs.clear();
    }
    return e;
}

void
Lsq::releaseSubs(const DynInst *store, Cycle wake)
{
    const std::size_t slot = store->slot;
    if (slot >= holdSubs.size())
        return;
    SubList &e = holdSubs[slot];
    if (e.owner != store->seq())
        return;
    for (const ReadyRef &r : e.subs)
        pendingRelease.push_back({r.inst, r.seq, r.slot, wake});
    e.subs.clear();
}

void
Lsq::dropSubs(const DynInst *store)
{
    const std::size_t slot = store->slot;
    if (slot < holdSubs.size() && holdSubs[slot].owner == store->seq())
        holdSubs[slot].subs.clear();
}

void
Lsq::onStoreAddrComputed(DynInst *inst)
{
    VPR_ASSERT(inst->isStore() && inst->addrReady,
               "address-computed hook without a computed address");
    for (Addr l = firstLine(inst); l <= lastLine(inst); ++l)
        lineTable.bucket(l).push_back(inst->ref());
    // The address is visible from addrReadyCycle on; until then the
    // store still counts as unknown (checked lazily against the cycle),
    // and the unknown-list entry is flushed once the cycle passes. The
    // flush relies on visibility cycles arriving in nondecreasing order
    // (issue assigns now + 1 with a monotonic clock).
    VPR_ASSERT(pendingKnown.empty() ||
                   pendingKnown.back().second <= inst->addrReadyCycle,
               "store address visibility cycles must be monotone");
    pendingKnown.push_back({inst->seq(), inst->addrReadyCycle});
    releaseSubs(inst, inst->addrReadyCycle);
}

void
Lsq::subscribeHold(DynInst *load, const DynInst *blocker, LoadHold hold)
{
    VPR_ASSERT(blocker && blocker->isStore(),
               "hold subscription without a blocking store");
    VPR_ASSERT(hold == LoadHold::UnknownAddress ||
                   hold == LoadHold::PartialOverlap,
               "subscribing a load that is not held");
    if (hold == LoadHold::UnknownAddress && blocker->addrReady) {
        // The blocker computed its address earlier this cycle, so its
        // release event already fired; park directly on the pending
        // list, due when the address becomes visible.
        pendingRelease.push_back(
            {load, load->seq(), load->slot, blocker->addrReadyCycle});
        return;
    }
    // UnknownAddress releases at address computation, PartialOverlap at
    // the blocker's commit (remove) — both via the blocker's slot.
    subsFor(blocker).subs.push_back(load->ref());
}

void
Lsq::takeReadyHolds(Cycle now, std::vector<ReadyRef> &out)
{
    std::size_t keep = 0;
    for (const HoldRelease &r : pendingRelease) {
        if (r.wake <= now)
            out.emplace_back(r.inst, r.seq, r.slot);
        else
            pendingRelease[keep++] = r;
    }
    pendingRelease.resize(keep);
}

void
Lsq::remove(DynInst *inst)
{
    // Commit removes in program order, so the entry is almost always
    // the front; the scan is a fallback for the rare mid-queue case.
    std::size_t i = 0;
    while (i < list.size() && list[i] != inst)
        ++i;
    VPR_ASSERT(i < list.size(), "LSQ remove: entry not present");
    list.erase(i);
    if (inst->isStore()) {
        eraseLineEntries(inst);
        eraseUnknown(inst->seq());
        // Commit ticks before issue, so loads held on this store may
        // re-attempt this very cycle — as the legacy re-scan would.
        releaseSubs(inst, 0);
    }
}

void
Lsq::squashYoungerThan(InstSeqNum seq)
{
    while (!list.empty() && list.back()->seq() > seq) {
        DynInst *inst = list.back();
        if (inst->isStore()) {
            eraseLineEntries(inst);
            eraseUnknown(inst->seq());
            // Subscribers are younger than their blocker: all squashed
            // with it, so the subscriptions die outright.
            dropSubs(inst);
        }
        list.pop_back();
    }
}

void
Lsq::clear()
{
    list.clear();
    lineTable.clear();
    unknownStores.clear();
    pendingKnown.clear();
    holdSubs.clear();
    pendingRelease.clear();
}

LoadCheck
Lsq::scanCheck(const DynInst *load, Cycle now) const
{
    // Walk older entries from youngest to oldest so the *nearest*
    // matching store decides forwarding.
    for (std::size_t i = list.size(); i-- > 0;) {
        const DynInst *other = list[i];
        if (other->seq() >= load->seq())
            continue;
        if (!other->isStore())
            continue;
        if (!other->addrReady || other->addrReadyCycle > now)
            return {LoadHold::UnknownAddress, other};
        if (!overlap(other->si.effAddr, other->si.memSize,
                     load->si.effAddr, load->si.memSize))
            continue;
        // Containing store with the data available: forward.
        if (other->si.effAddr <= load->si.effAddr &&
            other->si.effAddr + other->si.memSize >=
                load->si.effAddr + load->si.memSize) {
            return {LoadHold::Forward, other};
        }
        return {LoadHold::PartialOverlap, other};
    }
    return {LoadHold::Ready, nullptr};
}

LoadCheck
Lsq::disambiguate(const DynInst *load, Cycle now)
{
    VPR_ASSERT(load->isLoad(), "checkLoad on non-load");
    if (scanDisambig)
        return scanCheck(load, now);

    flushKnown(now);

    // Youngest older store whose address is still unknown at `now` (the
    // unknown-address watermark). Entries whose visibility cycle has
    // not passed yet are still pending in the FIFO, hence the lazy
    // cycle check.
    const DynInst *unknown = nullptr;
    InstSeqNum unknownSeq = 0;
    for (auto it = unknownStores.rbegin(); it != unknownStores.rend();
         ++it) {
        if (it->seq >= load->seq())
            continue;
        const DynInst *st = it->inst;
        if (st->addrReady && st->addrReadyCycle <= now)
            continue;  // visible now; flush is still pending
        unknown = st;
        unknownSeq = it->seq;
        break;
    }

    // Youngest older store with a visible overlapping address, found
    // through the line table (an access touches at most two lines).
    const DynInst *ovl = nullptr;
    InstSeqNum ovlSeq = 0;
    for (Addr l = firstLine(load); l <= lastLine(load); ++l) {
        const std::vector<ReadyRef> *bucket = lineTable.find(l);
        if (!bucket)
            continue;
        for (const ReadyRef &ref : *bucket) {
            if (ref.seq >= load->seq())
                continue;
            if (ovl && ref.seq <= ovlSeq)
                continue;  // already have a younger candidate
            const DynInst *st = ref.inst;
            if (!st->addrReady || st->addrReadyCycle > now)
                continue;  // counts as unknown, handled above
            if (!overlap(st->si.effAddr, st->si.memSize,
                         load->si.effAddr, load->si.memSize))
                continue;
            ovl = st;
            ovlSeq = ref.seq;
        }
    }

    // The *youngest* decisive store wins, exactly as the reverse scan
    // encounters it first.
    if (!unknown && !ovl)
        return {LoadHold::Ready, nullptr};
    if (unknown && (!ovl || unknownSeq > ovlSeq))
        return {LoadHold::UnknownAddress, unknown};
    if (ovl->si.effAddr <= load->si.effAddr &&
        ovl->si.effAddr + ovl->si.memSize >=
            load->si.effAddr + load->si.memSize) {
        return {LoadHold::Forward, ovl};
    }
    return {LoadHold::PartialOverlap, ovl};
}

void
Lsq::recordHold(LoadHold h)
{
    switch (h) {
      case LoadHold::Forward:
        ++nForwards;
        break;
      case LoadHold::UnknownAddress:
        ++nUnknownHolds;
        break;
      case LoadHold::PartialOverlap:
        ++nPartialHolds;
        break;
      default:
        break;
    }
}

} // namespace vpr
