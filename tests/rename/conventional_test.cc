/** @file Unit tests for the conventional (R10000-style) renamer. */

#include <gtest/gtest.h>

#include "rename/conventional.hh"

namespace vpr
{
namespace
{

RenameConfig
cfg64()
{
    RenameConfig c;
    c.numPhysRegs = 64;
    return c;
}

/** Bind a standalone DynInst to a fresh hot-pool slot (the ROB does
 *  this in production) and stamp its sequence number. */
void
bind(DynInst &d, InstSeqNum seq)
{
    static InstHotPool pool(1 << 12);
    static HotIdx next = 0;
    HotIdx sl = next++ % pool.capacity();
    pool.reset(sl);
    d.bindHot(&pool, sl);
    d.setSeq(seq);
}

DynInst
inst(InstSeqNum seq, StaticInst si)
{
    DynInst d;
    d.si = si;
    bind(d, seq);
    return d;
}

TEST(Conventional, InitialIdentityMapping)
{
    ConventionalRename rn(cfg64());
    for (std::uint16_t i = 0; i < kNumLogicalRegs; ++i) {
        EXPECT_EQ(rn.mapping(RegClass::Int, i), i);
        EXPECT_EQ(rn.mapping(RegClass::Float, i), i);
        EXPECT_TRUE(rn.isReady(RegClass::Int, i));
    }
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 32u);
    EXPECT_EQ(rn.freePhysRegs(RegClass::Float), 32u);
}

TEST(Conventional, DestGetsFreshRegisterAtDecode)
{
    ConventionalRename rn(cfg64());
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    EXPECT_NE(d.physReg, kNoReg);
    EXPECT_GE(d.physReg, kNumLogicalRegs);  // taken from the free pool
    EXPECT_EQ(d.wakeupTag, d.physReg);
    EXPECT_EQ(d.prevTag, 5);  // previous mapping was identity
    EXPECT_EQ(rn.mapping(RegClass::Int, 5), d.physReg);
    EXPECT_FALSE(rn.isReady(RegClass::Int, d.physReg));
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 31u);
}

TEST(Conventional, SourcesRenameToCurrentMappings)
{
    ConventionalRename rn(cfg64());
    auto p = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(p, 1);
    auto c = inst(2, StaticInst::alu(RegId::intReg(6), RegId::intReg(5),
                                     RegId::intReg(1)));
    rn.renameInst(c, 1);
    EXPECT_EQ(c.src[0].tag, p.physReg);
    EXPECT_FALSE(c.src[0].ready);  // producer not completed
    EXPECT_EQ(c.src[1].tag, 1);    // architected value
    EXPECT_TRUE(c.src[1].ready);
}

TEST(Conventional, SelfOverwriteReadsOldMapping)
{
    // add r1, r1, r2: the source must see the *old* mapping of r1.
    ConventionalRename rn(cfg64());
    auto d = inst(1, StaticInst::alu(RegId::intReg(1), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    EXPECT_EQ(d.src[0].tag, 1);
    EXPECT_NE(d.physReg, 1);
}

TEST(Conventional, CompleteSetsScoreboard)
{
    ConventionalRename rn(cfg64());
    auto d = inst(1, StaticInst::fpAdd(RegId::fpReg(3), RegId::fpReg(1),
                                       RegId::fpReg(2)));
    rn.renameInst(d, 1);
    auto res = rn.complete(d, 5);
    EXPECT_TRUE(res.ok);
    EXPECT_TRUE(rn.isReady(RegClass::Float, d.physReg));
}

TEST(Conventional, CommitFreesPreviousMapping)
{
    ConventionalRename rn(cfg64());
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    rn.complete(d, 3);
    std::size_t freeBefore = rn.freePhysRegs(RegClass::Int);
    rn.commitInst(d, 4);
    // The *previous* physical register of r5 (arch reg 5) is freed.
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), freeBefore + 1);
    // New mapping still in place.
    EXPECT_EQ(rn.mapping(RegClass::Int, 5), d.physReg);
}

TEST(Conventional, SquashRestoresMappingAndFreesOwnRegister)
{
    ConventionalRename rn(cfg64());
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    PhysRegId allocated = d.physReg;
    rn.squashInst(d, 2);
    EXPECT_EQ(rn.mapping(RegClass::Int, 5), 5);
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 32u);
    EXPECT_EQ(d.physReg, kNoReg);
    EXPECT_FALSE(rn.isReady(RegClass::Int, allocated));
}

TEST(Conventional, CanRenameTracksFreeLists)
{
    ConventionalRename rn(cfg64());
    EXPECT_TRUE(rn.canRename(32, 32));
    EXPECT_FALSE(rn.canRename(33, 0));
    // Exhaust the integer pool.
    std::vector<DynInst> insts;
    insts.reserve(32);
    for (InstSeqNum i = 0; i < 32; ++i) {
        insts.push_back(inst(i + 1,
                             StaticInst::alu(RegId::intReg(i % 30),
                                             RegId::intReg(1),
                                             RegId::intReg(2))));
        rn.renameInst(insts.back(), 1);
    }
    EXPECT_FALSE(rn.canRename(1, 0));
    EXPECT_TRUE(rn.canRename(0, 1));  // FP pool untouched
}

TEST(Conventional, TryIssueNeverBlocks)
{
    ConventionalRename rn(cfg64());
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    EXPECT_TRUE(rn.tryIssue(d, 2));
}

TEST(Conventional, RegisterPressureAccounting)
{
    ConventionalRename rn(cfg64());
    // 32 architected registers are live from cycle 0.
    EXPECT_EQ(rn.pressure(RegClass::Int).busy(), 32u);
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 10);
    EXPECT_EQ(rn.pressure(RegClass::Int).busy(), 33u);
    rn.complete(d, 15);
    rn.commitInst(d, 20);  // frees prev mapping held since cycle 0
    EXPECT_EQ(rn.pressure(RegClass::Int).busy(), 32u);
    EXPECT_EQ(rn.pressure(RegClass::Int).totalHoldCycles(), 20u);
}

TEST(Conventional, InvariantsHoldThroughRandomishSequence)
{
    ConventionalRename rn(cfg64());
    std::vector<DynInst> live;
    InstSeqNum seq = 0;
    for (int round = 0; round < 50; ++round) {
        ++seq;
        auto d = inst(seq,
                      StaticInst::alu(RegId::intReg(seq % 32),
                                      RegId::intReg((seq + 1) % 32),
                                      RegId::intReg((seq + 2) % 32)));
        rn.renameInst(d, round);
        rn.complete(d, round);
        live.push_back(d);
        if (live.size() > 8) {
            rn.commitInst(live.front(), round);
            live.erase(live.begin());
        }
        rn.checkInvariants();
    }
}

TEST(ConventionalDeath, TooFewPhysRegsPanics)
{
    RenameConfig c;
    c.numPhysRegs = 32;  // == logical: no rename registers at all
    EXPECT_DEATH(ConventionalRename{c}, "more physical than logical");
}

} // namespace
} // namespace vpr
