#include "sim/params.hh"

#include <cstring>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "sim/config.hh"

namespace vpr
{

bool
parseParamU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text.size() > 20)
        return false;
    std::uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

void
ParamVisitor::boolParam(const std::string &name, bool &field,
                        const std::string &doc, bool execOnly)
{
    ParamDef def;
    def.name = prefixed(name);
    def.kind = ParamDef::Kind::Bool;
    def.maxValue = 1;
    def.type = "bool";
    def.doc = doc;
    def.execOnly = execOnly;
    bool *field_p = &field;
    def.get = [field_p] { return std::string(*field_p ? "1" : "0"); };
    def.set = [field_p](const std::string &text) {
        if (text == "1" || text == "true")
            *field_p = true;
        else if (text == "0" || text == "false")
            *field_p = false;
        else
            return false;
        return true;
    };
    onParam(std::move(def));
}

void
ParamVisitor::strParam(const std::string &name, std::string &field,
                       const std::string &doc, bool execOnly)
{
    ParamDef def;
    def.name = prefixed(name);
    def.kind = ParamDef::Kind::Str;
    def.type = "str";
    def.doc = doc;
    def.execOnly = execOnly;
    std::string *field_p = &field;
    def.get = [field_p] { return *field_p; };
    def.set = [field_p](const std::string &text) {
        *field_p = text;
        return true;
    };
    onParam(std::move(def));
}

void
ParamVisitor::derivedUInt(const std::string &name, const std::string &doc,
                          std::uint64_t maxValue,
                          std::function<std::string()> get,
                          std::function<bool(std::uint64_t)> set)
{
    ParamDef def;
    def.name = prefixed(name);
    def.kind = ParamDef::Kind::UInt;
    def.maxValue = maxValue;
    def.type = "u" + std::to_string(
        maxValue <= std::numeric_limits<std::uint16_t>::max() ? 16
        : maxValue <= std::numeric_limits<std::uint32_t>::max() ? 32
        : 64);
    def.doc = doc;
    def.derived = true;
    def.get = std::move(get);
    def.set = [set = std::move(set), maxValue](const std::string &text) {
        std::uint64_t v = 0;
        if (!parseParamU64(text, v) || v > maxValue)
            return false;
        return set(v);
    };
    onParam(std::move(def));
}

void
ParamVisitor::pushGroup(const std::string &group)
{
    prefix += group + ".";
}

void
ParamVisitor::popGroup()
{
    VPR_ASSERT(!prefix.empty(), "popGroup without pushGroup");
    std::size_t dot = prefix.rfind('.', prefix.size() - 2);
    prefix.resize(dot == std::string::npos ? 0 : dot + 1);
}

std::string
ParamVisitor::prefixed(const std::string &name) const
{
    return prefix + name;
}

ConfigRegistry::ConfigRegistry(SimConfig &config)
{
    config.visitParams(*this);
}

void
ConfigRegistry::onParam(ParamDef def)
{
    VPR_ASSERT(index.find(def.name) == index.end(),
               "duplicate parameter name '", def.name, "'");
    index.emplace(def.name, defs.size());
    defs.push_back(std::move(def));
}

const ParamDef *
ConfigRegistry::find(const std::string &name) const
{
    auto it = index.find(name);
    return it == index.end() ? nullptr : &defs[it->second];
}

void
ConfigRegistry::set(const std::string &name, const std::string &value)
{
    const ParamDef *def = find(name);
    if (!def)
        VPR_FATAL("unknown parameter '", name,
                  "' (run --help-params for the full list)");
    if (!def->set(value))
        VPR_FATAL("bad value '", value, "' for parameter '", name,
                  "' of type ", def->type);
}

std::string
ConfigRegistry::get(const std::string &name) const
{
    const ParamDef *def = find(name);
    if (!def)
        VPR_FATAL("unknown parameter '", name,
                  "' (run --help-params for the full list)");
    return def->get();
}

void
applyAssignment(SimConfig &config, const std::string &assignment)
{
    std::size_t eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0)
        VPR_FATAL("malformed assignment '", assignment,
                  "' (expected key=value)");
    ConfigRegistry registry(config);
    registry.set(assignment.substr(0, eq), assignment.substr(eq + 1));
}

void
applyAssignments(SimConfig &config,
                 const std::vector<std::string> &assignments)
{
    for (const std::string &a : assignments)
        applyAssignment(config, a);
}

bool
parseConfigArg(int argc, char **argv, int &i, ConfigCliArgs &args)
{
    const char *arg = argv[i];
    if (std::strncmp(arg, "--set=", 6) == 0) {
        args.assignments.push_back(arg + 6);
    } else if (std::strcmp(arg, "--set") == 0 && i + 1 < argc) {
        args.assignments.push_back(argv[++i]);
    } else if (std::strncmp(arg, "--config=", 9) == 0) {
        args.configPath = arg + 9;
    } else if (std::strcmp(arg, "--dump-config") == 0) {
        args.dumpConfig = true;
    } else {
        return false;
    }
    return true;
}

void
applyConfigCli(SimConfig &config, const ConfigCliArgs &args)
{
    if (!args.configPath.empty())
        loadConfigFile(config, args.configPath);
    applyAssignments(config, args.assignments);
}

void
dumpConfig(std::ostream &os, const SimConfig &config)
{
    SimConfig copy = config;
    ConfigRegistry registry(copy);
    os << "{\n";
    bool first = true;
    for (const ParamDef &def : registry.params()) {
        // Derived params serialize through their underlying values;
        // execution-only knobs (jobs) describe how a grid is run, not
        // the machine, and must not be resurrected by --config.
        if (def.derived || def.execOnly)
            continue;
        os << (first ? "" : ",\n") << "  \"" << def.name << "\": \""
           << def.get() << "\"";
        first = false;
    }
    os << "\n}\n";
}

void
loadConfig(SimConfig &config, std::istream &is, const std::string &name)
{
    ConfigRegistry registry(config);
    std::string line;
    std::size_t lineNo = 0;
    bool sawOpen = false, sawClose = false;
    while (std::getline(is, line)) {
        ++lineNo;
        // Strip surrounding whitespace and the trailing comma.
        std::size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        std::size_t e = line.find_last_not_of(" \t\r");
        std::string body = line.substr(b, e - b + 1);
        if (!body.empty() && body.back() == ',')
            body.pop_back();
        if (body == "{") {
            sawOpen = true;
            continue;
        }
        if (body == "}") {
            sawClose = true;
            continue;
        }
        // Expect "key": "value".
        if (body.size() < 7 || body.front() != '"')
            VPR_FATAL(name, ":", lineNo, ": expected '\"key\": \"value\"'");
        std::size_t keyEnd = body.find('"', 1);
        if (keyEnd == std::string::npos)
            VPR_FATAL(name, ":", lineNo, ": unterminated key");
        std::string key = body.substr(1, keyEnd - 1);
        std::size_t colon = body.find(':', keyEnd);
        std::size_t vOpen =
            colon == std::string::npos ? std::string::npos
                                       : body.find('"', colon);
        std::size_t vClose = vOpen == std::string::npos
                                 ? std::string::npos
                                 : body.find('"', vOpen + 1);
        if (vClose == std::string::npos || vClose + 1 != body.size())
            VPR_FATAL(name, ":", lineNo, ": expected '\"key\": \"value\"'");
        registry.set(key, body.substr(vOpen + 1, vClose - vOpen - 1));
    }
    if (!sawOpen || !sawClose)
        VPR_FATAL(name, ": not a config dump (missing braces)");
}

void
loadConfigFile(SimConfig &config, const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        VPR_FATAL("cannot open config file '", path, "'");
    loadConfig(config, is, path);
}

std::vector<std::pair<std::string, std::string>>
configProvenance(const SimConfig &config)
{
    // Building a ConfigRegistry allocates ~40 ParamDefs' worth of
    // names, docs, and accessor closures — a fixed cost that sweeps
    // used to pay two or three times per grid cell. Keep one registry
    // per thread, permanently bound to a scratch config, and copy each
    // caller's config into that scratch: the accessor closures capture
    // fields of the scratch object, so they read the new values with
    // no rebinding. Thread-local because grid cells run on workers.
    static thread_local SimConfig scratch;
    static thread_local ConfigRegistry registry(scratch);
    scratch = config;
    std::vector<std::pair<std::string, std::string>> out;
    for (const ParamDef &def : registry.params())
        if (!def.execOnly && !def.derived)
            out.emplace_back(def.name, def.get());
    return out;
}

std::vector<ParamInfo>
paramReference()
{
    SimConfig defaults;
    ConfigRegistry registry(defaults);
    std::vector<ParamInfo> out;
    for (const ParamDef &def : registry.params()) {
        ParamInfo info;
        info.name = def.name;
        info.type = def.type;
        info.doc = def.doc;
        // Quote string defaults so an empty default is visible as ""
        // in the reference table rather than a blank column.
        info.defaultText = def.type == "str"
                               ? "\"" + def.get() + "\""
                               : def.get();
        info.execOnly = def.execOnly;
        info.derived = def.derived;
        out.push_back(std::move(info));
    }
    return out;
}

void
printParamHelp(std::ostream &os)
{
    const std::vector<ParamInfo> reference = paramReference();
    std::size_t nameWidth = 0, typeWidth = 0, defWidth = 0;
    for (const ParamInfo &p : reference) {
        nameWidth = std::max(nameWidth, p.name.size());
        typeWidth = std::max(typeWidth, p.type.size());
        defWidth = std::max(defWidth, p.defaultText.size());
    }

    auto printTable = [&](bool derived) {
        for (const ParamInfo &p : reference) {
            if (p.derived != derived)
                continue;
            os << "  " << std::left << std::setw(static_cast<int>(nameWidth))
               << p.name << "  " << std::setw(static_cast<int>(typeWidth))
               << p.type << "  " << std::setw(static_cast<int>(defWidth))
               << p.defaultText << "  " << p.doc
               << (p.execOnly ? " [execution-only; not exported]" : "")
               << "\n";
        }
    };

    os << "Configuration parameters (set with --set <name>=<value>, "
          "sweep with --sweep <name>=<v1,v2,...>;\n"
          "see README \"Configuration & sweeps\"). Every parameter below "
          "except execution-only knobs\nis embedded as cfg.<name> "
          "provenance in exported result records.\n\n";
    printTable(false);
    os << "\nConvenience parameters (write through to the parameters "
          "above; settable and sweepable\nbut never exported — records "
          "carry the underlying values):\n\n";
    printTable(true);
}

} // namespace vpr
