/**
 * @file
 * Table 2 of the paper: committed IPC of the conventional and the
 * virtual-physical (write-back allocation, NRR = 32) organizations with
 * 64 physical registers per file, plus the paper's side notes — the
 * harmonic-mean improvement (19% at a 50-cycle miss penalty, 12% at
 * 20 cycles) and the ~3.3 executions per committed instruction.
 * Grid/table: bench/figures/.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("table2_ipc", argc, argv);
}
