#include "core/stages/issue_stage.hh"

#include "common/logging.hh"
#include "isa/op_class.hh"

namespace vpr
{

namespace
{

/** Row labels of the issued_by_class matrix: every op class. */
std::vector<std::string>
opClassRows()
{
    std::vector<std::string> rows;
    for (std::size_t i = 0; i < kNumOpClasses; ++i)
        rows.push_back(opClassName(static_cast<OpClass>(i)));
    return rows;
}

} // namespace

IssueStage::IssueStage(PipelineState &state,
                       CompletionQueue &completionQueue)
    : s(state), completions(completionQueue),
      byClass("issued_by_class",
              "issues per op class, split first execution vs re-execution",
              opClassRows(), {"first", "reexec"})
{
    group.add(&issued);
    group.add(&byClass);
    s.statsTree.add(&group);
}

bool
IssueStage::tryIssueOne(DynInst *inst)
{
    if (!inst->issueOperandsReady())
        return false;

    OpClass op = inst->si.op;
    const Cycle now = s.curCycle;

    // A re-execution (squashed at write-back for lack of a register,
    // paper §3.3) already performed its memory access and disambiguation;
    // it only needs to traverse the execution pipeline again.
    const bool reExecution = inst->executions > 0;

    // Memory disambiguation (PA-8000 style) for loads.
    LoadHold hold = LoadHold::Ready;
    if (inst->isLoad() && !reExecution) {
        hold = s.lsq.checkLoad(inst, now);
        if (hold == LoadHold::UnknownAddress ||
            hold == LoadHold::PartialOverlap) {
            s.lsq.recordHold(hold);
            return false;
        }
    }

    // Functional unit available?
    if (s.fus.available(fuTypeFor(op), now) == 0)
        return false;

    // Register-file read ports. A store reads only its address operand
    // at issue; the data register is picked up when it completes.
    unsigned nIntReads = 0, nFpReads = 0;
    for (std::size_t i = 0; i < kMaxSrcRegs; ++i) {
        const auto &src = inst->src[i];
        if (!src.valid)
            continue;
        if (inst->isStore() && i == 0)
            continue;
        if (src.cls == RegClass::Int)
            ++nIntReads;
        else
            ++nFpReads;
    }
    if (!s.regPorts.canClaimReads(nIntReads, nFpReads))
        return false;

    // Cache port and MSHR space for loads that really access the cache.
    bool needsCache =
        inst->isLoad() && hold != LoadHold::Forward && !reExecution;
    if (needsCache) {
        if (s.cachePortSched.used(now + 1) >= s.cfg.cachePorts)
            return false;
        if (s.cache.wouldBlock(inst->si.effAddr, now + 1))
            return false;
    }

    // The renamer's issue gate (VP issue-allocation policy).
    if (!s.renameMgr->tryIssue(*inst, now))
        return false;

    // All checks passed: commit the side effects.
    s.regPorts.tryClaimReads(nIntReads, nFpReads);

    Cycle raw;
    if (inst->isLoad()) {
        if (reExecution) {
            // The line was filled by the first execution; the retry hits.
            raw = now + 1 + s.cache.config().hitLatency;
        } else if (hold == LoadHold::Forward) {
            s.lsq.recordHold(hold);
            inst->storeForwarded = true;
            raw = now + 1 + s.cache.config().hitLatency;
        } else {
            bool claimed = s.cachePortSched.tryClaim(now + 1);
            VPR_ASSERT(claimed, "cache port vanished");
            auto res = s.cache.access(inst->si.effAddr, false, now + 1);
            VPR_ASSERT(res.outcome != CacheOutcome::Blocked,
                       "cache blocked after wouldBlock said otherwise");
            raw = res.readyCycle;
        }
        inst->addrReady = true;
        inst->addrReadyCycle = now + 1;
    } else if (inst->isStore()) {
        // Address generation only; data is written to the cache at
        // commit. The store completes once address *and* data are
        // known; with the data still in flight it parks in the
        // CompletionQueue (drained at the end of the complete stage).
        raw = now + 1;
        inst->addrReady = true;
        inst->addrReadyCycle = now + 1;
        if (!inst->operandsReady()) {
            inst->phase = InstPhase::Issued;
            inst->issueCycle = now;
            ++inst->executions;
            ++issued;
            byClass.inc(static_cast<std::size_t>(op), reExecution ? 1 : 0);
            completions.parkStore(inst, inst->seq);
            bool fuOkStore = s.fus.tryIssue(op, now, raw);
            VPR_ASSERT(fuOkStore, "FU vanished after availability check");
            return true;
        }
    } else {
        raw = now + opLatency(op);
    }

    // Schedule the result write port; completion slips if all write
    // ports at the ideal cycle are taken. Re-executions write only on
    // their final (successful) attempt; charging a slot per retry would
    // let rejection storms build an unbounded port backlog that no real
    // machine exhibits, so retries bypass the scheduler.
    Cycle completion = inst->hasDest() && !reExecution
        ? s.regPorts.scheduleWrite(inst->destClass(), raw)
        : raw;

    bool fuOk = s.fus.tryIssue(op, now, completion);
    VPR_ASSERT(fuOk, "FU vanished after availability check");

    inst->phase = InstPhase::Issued;
    inst->issueCycle = now;
    ++inst->executions;
    ++issued;
    byClass.inc(static_cast<std::size_t>(op), reExecution ? 1 : 0);
    completions.schedule(completion, inst->seq, inst);
    return true;
}

void
IssueStage::tick()
{
    // Oldest-first selection directly over the age-ordered list — no
    // per-cycle snapshot copy. Issue is the only mutation during the
    // scan (nothing is inserted or squashed from inside tryIssueOne),
    // so removing the issued entry and keeping the index in place walks
    // every remaining entry exactly once. Two passes: first executions
    // have priority; re-executions fill the remaining slots ("resources
    // that otherwise would be unused", paper §4.2.1).
    unsigned issued = 0;
    for (int pass = 0; pass < 2 && issued < s.cfg.issueWidth; ++pass) {
        std::size_t i = 0;
        while (i < s.iq.size() && issued < s.cfg.issueWidth) {
            DynInst *inst = s.iq.at(i);
            if ((inst->executions > 0) != (pass == 1) ||
                inst->phase != InstPhase::Renamed) {
                ++i;
                continue;
            }
            if (tryIssueOne(inst)) {
                s.iq.removeAt(i);
                ++issued;
            } else {
                ++i;
            }
        }
    }
}

} // namespace vpr
