/**
 * @file
 * Determinism and reproducibility: identical configurations must give
 * bit-identical results; seeds must matter; stream reset must restart
 * the workload exactly.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "sim/experiment.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{
namespace
{

SimConfig
quick()
{
    SimConfig c = paperConfig();
    c.skipInsts = 2000;
    c.measureInsts = 20000;
    c.core.fetch.wrongPath = WrongPathMode::Synthesize;
    return c;
}

/** quick() with statistical sampling on: 4 intervals over the 20000
 *  measured instructions, each fast-forwarding 3500, warming 500 and
 *  measuring 1000. */
SimConfig
sampledQuick()
{
    SimConfig c = quick();
    c.sampling.enable = true;
    c.sampling.periodInsts = 5000;
    c.sampling.warmupInsts = 500;
    c.sampling.detailedInsts = 1000;
    return c;
}

class DeterminismPerScheme
    : public ::testing::TestWithParam<RenameScheme>
{
};

TEST_P(DeterminismPerScheme, IdenticalRunsIdenticalResults)
{
    SimConfig c = quick();
    c.setScheme(GetParam());
    auto a = runOne("vortex", c);
    auto b = runOne("vortex", c);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.committed(), b.committed());
    EXPECT_EQ(a.issued(), b.issued());
    EXPECT_EQ(a.squashed(), b.squashed());
    EXPECT_EQ(a.mispredicts(), b.mispredicts());
    EXPECT_DOUBLE_EQ(a.ipc(), b.ipc());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, DeterminismPerScheme,
    ::testing::Values(RenameScheme::Conventional,
                      RenameScheme::VPAllocAtWriteback,
                      RenameScheme::VPAllocAtIssue),
    [](const auto &info) {
        std::string s = renameSchemeName(info.param);
        for (auto &ch : s)
            if (ch == '-')
                ch = '_';
        return s;
    });

TEST(Determinism, WorkloadSeedChangesRandomBenchmarks)
{
    SimConfig c = quick();
    c.seed = 101;
    auto a = runOne("go", c);
    c.seed = 202;
    auto b = runOne("go", c);
    // go is driven by Bernoulli branches: a different seed must change
    // the cycle count.
    EXPECT_NE(a.cycles(), b.cycles());
}

/** Every exported metric of @p b must match @p a textually. */
void
expectIdenticalMetrics(const SimResults &a, const SimResults &b,
                       const std::string &label)
{
    ASSERT_TRUE(a.metrics.sameSchema(b.metrics)) << label;
    for (std::size_t i = 0; i < a.metrics.all().size(); ++i) {
        const Metric &ma = a.metrics.all()[i];
        const Metric &mb = b.metrics.all()[i];
        EXPECT_EQ(ma.text(), mb.text()) << label << ": " << ma.name();
    }
}

TEST(Determinism, EventSchedulerMatchesLegacyScansByteForByte)
{
    // The event-driven scheduler core — IQ ready-list issue and the
    // address-indexed LSQ disambiguation table — is a pure mechanism
    // change: every schedule, and therefore every exported metric
    // (latency distributions included), must be byte-identical to the
    // legacy full-queue scans, for every rename scheme (the VP
    // write-back squash re-inserts issued instructions, the hardest
    // path for the ready list).
    struct Mode
    {
        const char *name;
        bool scanIssue, scanDisambig, scanWakeup;
    };
    const Mode modes[] = {
        {"scan-issue", true, false, false},
        {"scan-disambig", false, true, false},
        {"all-scans", true, true, true},
    };
    for (RenameScheme scheme : {RenameScheme::Conventional,
                                RenameScheme::VPAllocAtWriteback,
                                RenameScheme::VPAllocAtIssue,
                                RenameScheme::ConventionalEarlyRelease}) {
        SimConfig c = quick();
        c.setScheme(scheme);
        if (scheme == RenameScheme::ConventionalEarlyRelease)
            c.core.fetch.wrongPath = WrongPathMode::Stall;
        auto event = runOne("vortex", c);
        for (const Mode &m : modes) {
            SimConfig s = c;
            s.core.iqScanIssue = m.scanIssue;
            s.core.lsqScanDisambig = m.scanDisambig;
            s.core.iqScanWakeup = m.scanWakeup;
            auto scan = runOne("vortex", s);
            expectIdenticalMetrics(
                event, scan,
                std::string(renameSchemeName(scheme)) + " vs " + m.name);
        }
    }
}

TEST(Determinism, CalendarQueueMatchesHeapByteForByte)
{
    // The cycle-indexed completion calendar replaces the binary heap as
    // the pending-completion store. Pop order is defined as (cycle,
    // sequence) in both, so every schedule — and therefore every
    // exported metric, distributions included — must be byte-identical.
    // Run every scheme: the VP write-back squash drops in-flight
    // completions and re-issues them, the hardest path for stale-event
    // filtering, and FP divides push events past the calendar horizon
    // into the overflow list.
    for (RenameScheme scheme : {RenameScheme::Conventional,
                                RenameScheme::VPAllocAtWriteback,
                                RenameScheme::VPAllocAtIssue,
                                RenameScheme::ConventionalEarlyRelease}) {
        SimConfig c = quick();
        c.setScheme(scheme);
        if (scheme == RenameScheme::ConventionalEarlyRelease)
            c.core.fetch.wrongPath = WrongPathMode::Stall;
        c.core.cqCalendar = true;
        auto calendar = runOne("vortex", c);
        c.core.cqCalendar = false;
        auto heap = runOne("vortex", c);
        expectIdenticalMetrics(calendar, heap,
                               std::string(renameSchemeName(scheme)) +
                                   " calendar vs heap");
    }
}

TEST(Determinism, WaitListWakeupMatchesScanByteForByte)
{
    // The per-tag wakeup wait lists are a pure mechanism change: every
    // schedule — and therefore every exported metric, distributions
    // included — must be byte-identical to the legacy full-queue scan.
    // Run every scheme (the VP write-back squash re-inserts issued
    // instructions, the hardest path for the wait lists).
    for (RenameScheme scheme : {RenameScheme::Conventional,
                                RenameScheme::VPAllocAtWriteback,
                                RenameScheme::VPAllocAtIssue,
                                RenameScheme::ConventionalEarlyRelease}) {
        SimConfig c = quick();
        c.setScheme(scheme);
        if (scheme == RenameScheme::ConventionalEarlyRelease)
            c.core.fetch.wrongPath = WrongPathMode::Stall;
        c.core.iqScanWakeup = false;
        auto waitlist = runOne("vortex", c);
        c.core.iqScanWakeup = true;
        auto scan = runOne("vortex", c);

        ASSERT_TRUE(
            waitlist.metrics.sameSchema(scan.metrics));
        for (std::size_t i = 0; i < waitlist.metrics.all().size(); ++i) {
            const Metric &a = waitlist.metrics.all()[i];
            const Metric &b = scan.metrics.all()[i];
            EXPECT_EQ(a.text(), b.text())
                << renameSchemeName(scheme) << ": " << a.name();
        }
    }
}

TEST(Determinism, SampledRunsAreByteIdenticalAcrossRepeats)
{
    // A sampled run is a pure function of (benchmark, config, seed):
    // repeating it must reproduce every exported metric — the
    // interval aggregates and the core.ipc.sampled.* estimator
    // included — byte for byte.
    for (RenameScheme scheme : {RenameScheme::Conventional,
                                RenameScheme::VPAllocAtWriteback}) {
        SimConfig c = sampledQuick();
        c.setScheme(scheme);
        auto a = runOne("vortex", c);
        auto b = runOne("vortex", c);
        EXPECT_GE(a.metrics.counter("core.ipc.sampled.intervals"), 2u);
        expectIdenticalMetrics(a, b,
                               std::string("sampled repeat: ") +
                                   renameSchemeName(scheme));
    }
}

TEST(Determinism, SampledGridCellsAreByteIdenticalAcrossJobs)
{
    // Sampling must not perturb cross-cell isolation: the same sampled
    // grid through 1 and 4 workers, and a fresh serial runOne, must
    // agree on every metric byte for byte.
    SimConfig c = sampledQuick();
    c.seed = 77;
    std::vector<GridCell> cells;
    for (RenameScheme s : {RenameScheme::Conventional,
                           RenameScheme::VPAllocAtWriteback,
                           RenameScheme::VPAllocAtIssue}) {
        c.setScheme(s);
        cells.push_back({"compress", c});
        cells.push_back({"swim", c});
    }
    auto serial = runGrid(cells, 1);
    auto parallel = runGrid(cells, 4);
    ASSERT_EQ(serial.size(), cells.size());
    ASSERT_EQ(parallel.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        expectIdenticalMetrics(serial[i], parallel[i],
                               "sampled jobs 1 vs 4, cell " +
                                   std::to_string(i));
        auto one = runOne(cells[i].benchmark, cells[i].config);
        expectIdenticalMetrics(serial[i], one,
                               "sampled grid vs runOne, cell " +
                                   std::to_string(i));
    }
}

TEST(Determinism, CheckpointRestoreIsByteIdenticalForEveryScheme)
{
    // Warm-state checkpoints are a pure time optimisation: a run that
    // restores the warm-up from the cache must export every metric byte
    // for byte as the cold run that wrote it, for every rename scheme
    // (the VP free-list order and the early-release owed-frees set are
    // architecturally visible state that must travel exactly).
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "/vpr_determinism_ckpt";
    fs::remove_all(dir);
    fs::create_directories(dir);
    for (RenameScheme scheme : {RenameScheme::Conventional,
                                RenameScheme::VPAllocAtWriteback,
                                RenameScheme::VPAllocAtIssue,
                                RenameScheme::ConventionalEarlyRelease}) {
        SimConfig c = quick();
        c.setScheme(scheme);
        if (scheme == RenameScheme::ConventionalEarlyRelease)
            c.core.fetch.wrongPath = WrongPathMode::Stall;
        c.ckpt.dir = dir;
        auto cold = runOne("vortex", c);      // writes the checkpoint
        auto restored = runOne("vortex", c);  // loads it back
        expectIdenticalMetrics(cold, restored,
                               std::string("ckpt restore: ") +
                                   renameSchemeName(scheme));
    }
    fs::remove_all(dir);
}

TEST(Determinism, SampledCheckpointRestoreMatchesPlainSampledRun)
{
    // A functional checkpoint reconstructs exactly the state a sampled
    // run's initial fast-forward would have produced, so a cached
    // sampled run — cold or restored — must match a run that never
    // touched the cache, byte for byte.
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "/vpr_determinism_ckpt_sampled";
    fs::remove_all(dir);
    fs::create_directories(dir);
    SimConfig plain = sampledQuick();
    plain.setScheme(RenameScheme::VPAllocAtWriteback);
    SimConfig cached = plain;
    cached.ckpt.dir = dir;
    auto reference = runOne("vortex", plain);
    auto cold = runOne("vortex", cached);
    auto restored = runOne("vortex", cached);
    expectIdenticalMetrics(reference, cold, "sampled ckpt cold");
    expectIdenticalMetrics(reference, restored, "sampled ckpt restored");
    fs::remove_all(dir);
}

TEST(Determinism, SimulatorOwnsIndependentStreams)
{
    // Two simulators over the same benchmark do not share stream state.
    SimConfig c = quick();
    Simulator s1("li", c), s2("li", c);
    auto r1 = s1.run();
    auto r2 = s2.run();
    EXPECT_EQ(r1.cycles(), r2.cycles());
}

TEST(Determinism, StreamResetRestartsExactly)
{
    auto s = makeBenchmarkStream("wave5");
    std::vector<Addr> first;
    for (int i = 0; i < 300; ++i)
        first.push_back(s->next()->effAddr);
    s->reset();
    for (int i = 0; i < 300; ++i)
        EXPECT_EQ(s->next()->effAddr, first[i]);
}

TEST(Determinism, ParallelGridCellsReproduceSerialRuns)
{
    // The same grid through 1 and 4 worker threads must agree cell by
    // cell with a fresh serial runOne — parallel cells share nothing.
    SimConfig c = quick();
    c.seed = 77;
    std::vector<GridCell> cells;
    for (RenameScheme s : {RenameScheme::Conventional,
                           RenameScheme::VPAllocAtWriteback,
                           RenameScheme::VPAllocAtIssue}) {
        c.setScheme(s);
        cells.push_back({"go", c});
        cells.push_back({"swim", c});
    }
    auto serial = runGrid(cells, 1);
    auto parallel = runGrid(cells, 4);
    ASSERT_EQ(serial.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(serial[i].cycles(), parallel[i].cycles());
        EXPECT_EQ(serial[i].committed(),
                  parallel[i].committed());
        EXPECT_EQ(serial[i].squashed(), parallel[i].squashed());
        auto one = runOne(cells[i].benchmark, cells[i].config);
        EXPECT_EQ(one.cycles(), parallel[i].cycles());
    }
}

TEST(Determinism, MasterSeedDrivesWrongPathSynthesis)
{
    // With wrong-path synthesis on, the master seed feeds the
    // wrong-path RNG through deriveSeed: same seed = identical run,
    // different seed = different wrong-path mix on a branchy benchmark.
    SimConfig c = quick();
    c.setScheme(RenameScheme::Conventional);
    c.seed = 11;
    auto a = runOne("go", c);
    auto a2 = runOne("go", c);
    EXPECT_EQ(a.cycles(), a2.cycles());
    EXPECT_EQ(a.issued(), a2.issued());
    c.seed = 12;
    auto b = runOne("go", c);
    EXPECT_NE(a.cycles(), b.cycles());
}

TEST(Determinism, ScaleEnvDoesNotChangePerInstructionBehaviour)
{
    // Same config run twice through runOne must agree even when invoked
    // repeatedly (guards against hidden global state in experiment.cc).
    SimConfig c = quick();
    c.setScheme(RenameScheme::VPAllocAtWriteback);
    double x = runOne("mgrid", c).ipc();
    double y = runOne("mgrid", c).ipc();
    EXPECT_DOUBLE_EQ(x, y);
}

} // namespace
} // namespace vpr
