/**
 * @file
 * End-to-end pipeline tests with hand-built traces: exact or bounded
 * cycle counts for simple programs, store-to-load forwarding, branch
 * recovery, drain behaviour.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "trace/builder.hh"

#include "../support/core_stats.hh"

namespace vpr
{
namespace
{

using test::statsOf;

CoreConfig
baseConfig(RenameScheme scheme = RenameScheme::Conventional)
{
    CoreConfig cfg;
    cfg.scheme = scheme;
    cfg.fetch.wrongPath = WrongPathMode::Stall;
    cfg.invariantChecks = true;
    cfg.rename.numVPRegs =
        static_cast<std::uint16_t>(kNumLogicalRegs + cfg.robSize);
    return cfg;
}

class AllSchemesPipeline
    : public ::testing::TestWithParam<RenameScheme>
{
};

TEST_P(AllSchemesPipeline, CommitsEveryInstruction)
{
    TraceBuilder b;
    for (int i = 0; i < 500; ++i)
        b.alu(RegId::intReg(i % 30), RegId::intReg(1), RegId::intReg(2));
    VectorTraceStream s(b.records());
    auto core = std::make_unique<Core>(s, baseConfig(GetParam()));
    while (core->tick()) {
    }
    EXPECT_EQ(core->committedInsts(), 500u);
    EXPECT_TRUE(core->rob().empty());
    EXPECT_TRUE(core->iq().empty());
    EXPECT_TRUE(core->lsq().empty());
}

TEST_P(AllSchemesPipeline, IndependentAlusReachHighIpc)
{
    TraceBuilder b;
    // Independent 1-cycle ops: bounded by 3 SimpleInt units.
    for (int i = 0; i < 3000; ++i)
        b.alu(RegId::intReg(i % 10), RegId::intReg(20), RegId::intReg(21));
    VectorTraceStream s(b.records());
    auto core = std::make_unique<Core>(s, baseConfig(GetParam()));
    while (core->tick()) {
    }
    double ipc = static_cast<double>(core->committedInsts()) /
                 static_cast<double>(core->cycle());
    EXPECT_GT(ipc, 2.5);
    EXPECT_LE(ipc, 3.01);
}

TEST_P(AllSchemesPipeline, SerialChainBoundByLatency)
{
    TraceBuilder b;
    // r1 <- r1 + r2, 1000 times: strictly serial, 1 cycle each.
    for (int i = 0; i < 1000; ++i)
        b.alu(RegId::intReg(1), RegId::intReg(1), RegId::intReg(2));
    VectorTraceStream s(b.records());
    auto core = std::make_unique<Core>(s, baseConfig(GetParam()));
    while (core->tick()) {
    }
    // One per cycle plus pipeline fill/drain slack.
    EXPECT_GE(core->cycle(), 1000u);
    EXPECT_LE(core->cycle(), 1100u);
}

TEST_P(AllSchemesPipeline, FpChainBoundByFpLatency)
{
    TraceBuilder b;
    for (int i = 0; i < 300; ++i)
        b.fpAdd(RegId::fpReg(1), RegId::fpReg(1), RegId::fpReg(2));
    VectorTraceStream s(b.records());
    auto core = std::make_unique<Core>(s, baseConfig(GetParam()));
    while (core->tick()) {
    }
    // 4-cycle FP adds back to back.
    EXPECT_GE(core->cycle(), 300u * 4u);
    EXPECT_LE(core->cycle(), 300u * 4u + 150u);
}

TEST_P(AllSchemesPipeline, StoreToLoadForwardingWorks)
{
    TraceBuilder b;
    for (int i = 0; i < 200; ++i) {
        b.store(RegId::intReg(2), RegId::intReg(3), 0x5000);
        b.load(RegId::intReg(4), RegId::intReg(5), 0x5000);
    }
    VectorTraceStream s(b.records());
    auto core = std::make_unique<Core>(s, baseConfig(GetParam()));
    while (core->tick()) {
    }
    EXPECT_EQ(core->committedInsts(), 400u);
    EXPECT_GT(core->lsq().forwards(), 100u);
}

TEST_P(AllSchemesPipeline, MispredictRecoveryKeepsArchState)
{
    TraceBuilder b;
    // Alternating-taken branch: the 2-bit BHT mispredicts regularly.
    for (int i = 0; i < 400; ++i) {
        b.alu(RegId::intReg(1), RegId::intReg(1), RegId::intReg(2));
        b.branch(RegId::intReg(1), i % 2 == 0, 0x9000);
    }
    CoreConfig cfg = baseConfig(GetParam());
    cfg.fetch.wrongPath = WrongPathMode::Synthesize;  // exercise squash
    VectorTraceStream s(b.records());
    auto core = std::make_unique<Core>(s, cfg);
    while (core->tick()) {
    }
    EXPECT_EQ(core->committedInsts(), 800u);
    MetricsRecord snap = statsOf(*core);
    EXPECT_GT(snap.counter("fetch.mispredicts"), 50u);
    // Wrong-path work was squashed.
    EXPECT_GT(snap.counter("core.squashed"), 0u);
    // After drain every speculative register came back.
    EXPECT_EQ(core->renamer().freePhysRegs(RegClass::Int),
              static_cast<std::size_t>(
                  core->config().rename.numPhysRegs - kNumLogicalRegs));
    core->renamer().checkInvariants();
}

TEST_P(AllSchemesPipeline, CacheMissLatencyVisible)
{
    TraceBuilder b;
    // A serial pointer-chase over cold lines: every load misses and the
    // next depends on it (base register written by alu of the result).
    for (int i = 0; i < 100; ++i) {
        b.load(RegId::intReg(1), RegId::intReg(1),
               0x100000 + static_cast<Addr>(i) * 64);
        b.alu(RegId::intReg(1), RegId::intReg(1), RegId::intReg(2));
    }
    VectorTraceStream s(b.records());
    auto core = std::make_unique<Core>(s, baseConfig(GetParam()));
    while (core->tick()) {
    }
    // ~100 serialized 50-cycle misses.
    EXPECT_GT(core->cycle(), 100u * 50u);
}

TEST_P(AllSchemesPipeline, DivergentLatenciesStillCommitInOrder)
{
    TraceBuilder b;
    for (int i = 0; i < 50; ++i) {
        b.fpDiv(RegId::fpReg(1), RegId::fpReg(2), RegId::fpReg(3));
        b.alu(RegId::intReg(1), RegId::intReg(2), RegId::intReg(3));
        b.alu(RegId::intReg(4), RegId::intReg(5), RegId::intReg(6));
    }
    VectorTraceStream s(b.records());
    auto core = std::make_unique<Core>(s, baseConfig(GetParam()));
    while (core->tick()) {
    }
    EXPECT_EQ(core->committedInsts(), 150u);
}

TEST_P(AllSchemesPipeline, NopsFlowThrough)
{
    TraceBuilder b;
    for (int i = 0; i < 100; ++i)
        b.nop();
    VectorTraceStream s(b.records());
    auto core = std::make_unique<Core>(s, baseConfig(GetParam()));
    while (core->tick()) {
    }
    EXPECT_EQ(core->committedInsts(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemesPipeline,
    ::testing::Values(RenameScheme::Conventional,
                      RenameScheme::VPAllocAtWriteback,
                      RenameScheme::VPAllocAtIssue),
    [](const auto &info) {
        std::string s = renameSchemeName(info.param);
        for (auto &ch : s)
            if (ch == '-')
                ch = '_';
        return s;
    });

TEST(Pipeline, VpSchemeDelaysAllocationToWriteback)
{
    // One long-latency FP divide: under VP write-back allocation the FP
    // pool must stay untouched while the divide executes.
    TraceBuilder b;
    b.fpDiv(RegId::fpReg(1), RegId::fpReg(2), RegId::fpReg(3));
    CoreConfig cfg = baseConfig(RenameScheme::VPAllocAtWriteback);
    VectorTraceStream s(b.records());
    Core core(s, cfg);
    // Run a few cycles: renamed and issued but not completed.
    for (int i = 0; i < 8; ++i)
        core.tick();
    EXPECT_EQ(core.renamer().freePhysRegs(RegClass::Float), 32u);
    while (core.tick()) {
    }
    EXPECT_EQ(core.committedInsts(), 1u);
}

TEST(Pipeline, ConventionalAllocatesAtDecode)
{
    TraceBuilder b;
    b.fpDiv(RegId::fpReg(1), RegId::fpReg(2), RegId::fpReg(3));
    CoreConfig cfg = baseConfig(RenameScheme::Conventional);
    VectorTraceStream s(b.records());
    Core core(s, cfg);
    for (int i = 0; i < 8; ++i)
        core.tick();
    EXPECT_EQ(core.renamer().freePhysRegs(RegClass::Float), 31u);
}

TEST(Pipeline, StatsTreeDeltasAfterReset)
{
    TraceBuilder b;
    for (int i = 0; i < 600; ++i)
        b.alu(RegId::intReg(i % 8), RegId::intReg(9), RegId::intReg(10));
    VectorTraceStream s(b.records());
    Core core(s, baseConfig());
    core.runUntilCommitted(300);
    core.resetStats();
    while (core.tick()) {
    }
    MetricsRecord snap = statsOf(core);
    EXPECT_EQ(snap.counter("commit.committed"), 300u);
    EXPECT_GT(snap.counter("core.cycles"), 0u);
    EXPECT_LT(snap.counter("core.cycles"), core.cycle());
    // Occupancy distributions restarted with the interval.
    EXPECT_EQ(snap.counter("rob.occupancy.samples"),
              snap.counter("core.cycles"));
}

} // namespace
} // namespace vpr
