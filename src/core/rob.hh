/**
 * @file
 * Reorder buffer.
 *
 * Owns the DynInst storage for all in-flight instructions. The paper's
 * configuration is a 128-entry ROB; its size *is* the instruction
 * window. Entries carry the Figure-2 fields (logical destination,
 * completed bit, previous VP mapping) inside DynInst; the hot scalars
 * (phase, seq, cycle stamps, scheduler flags) live in the InstHotPool,
 * indexed by the entry's physical slot — allocate() binds the two and
 * fully reinitialises the hot row, which is what makes slot reuse after
 * the recovery walk safe for the lazy-staleness idiom. The buffer
 * supports the paper's recovery walk: popping entries youngest-first
 * down to the offending instruction.
 */

#ifndef VPR_CORE_ROB_HH
#define VPR_CORE_ROB_HH

#include "common/circular_buffer.hh"
#include "common/stats.hh"
#include "core/dyn_inst.hh"
#include "core/inst_hot.hh"

namespace vpr
{

/** The reorder buffer; owner of in-flight DynInsts. */
class Rob
{
  public:
    Rob(std::size_t entries, InstHotPool &hotPool)
        : buf(entries), hot(hotPool),
          occupancy(stats::Distribution::evenBuckets(
              "occupancy", "entries occupied per cycle", 0, entries, 16))
    {
        VPR_ASSERT(hotPool.capacity() >= entries,
                   "hot-state pool smaller than the ROB");
        group.add(&occupancy);
    }

    /** Register the "rob" stat group into the core's stats tree. */
    void regStats(stats::StatRegistry &r) { r.add(&group); }

    bool full() const { return buf.full(); }
    bool empty() const { return buf.empty(); }
    std::size_t size() const { return buf.size(); }
    std::size_t capacity() const { return buf.capacity(); }

    /**
     * Allocate the tail entry: a default-initialised DynInst bound to
     * its (fully reset) hot-state row. The caller fills in the cold
     * fields and hot stamps in place — no DynInst copy.
     * @return a pointer that stays valid until the entry is removed.
     */
    DynInst *
    allocate()
    {
        buf.pushBack(DynInst());
        DynInst &d = buf.back();
        auto slot = static_cast<HotIdx>(buf.physIndexOf(buf.size() - 1));
        hot.reset(slot);
        d.bindHot(&hot, slot);
        return &d;
    }

    /** Oldest instruction. */
    DynInst &head() { return buf.front(); }
    const DynInst &head() const { return buf.front(); }

    /** Hot-state slot of the oldest instruction: the commit walk checks
     *  the head's phase through the packed arrays without touching the
     *  DynInst. */
    HotIdx headSlot() const { return static_cast<HotIdx>(buf.physIndexOf(0)); }

    /** Youngest instruction. */
    DynInst &tail() { return buf.back(); }

    /** Retire the oldest instruction. */
    void commitHead() { buf.popFront(); }

    /** Remove the youngest instruction (recovery walk step). */
    void squashTail() { buf.popBack(); }

    /** Logical indexing, 0 = oldest (tests/inspection). */
    DynInst &at(std::size_t i) { return buf.at(i); }
    const DynInst &at(std::size_t i) const { return buf.at(i); }

    /** Hot-state slot of the entry at logical position @p i. */
    HotIdx
    slotAt(std::size_t i) const
    {
        return static_cast<HotIdx>(buf.physIndexOf(i));
    }

    /** The pool holding every entry's hot state. */
    const InstHotPool &hotPool() const { return hot; }

    /** Drop every entry (simulator reuse between grid cells). The hot
     *  rows are re-reset by allocate(); the caller resets the pool. */
    void clear() { buf.clear(); }

    /** Record the occupancy for this cycle. */
    void sampleOccupancy() { occupancy.sample(buf.size()); }

    const stats::Distribution &occupancyStat() const { return occupancy; }
    stats::Distribution &occupancyStat() { return occupancy; }

  private:
    CircularBuffer<DynInst> buf;
    InstHotPool &hot;
    stats::StatGroup group{"rob"};
    stats::Distribution occupancy;
};

} // namespace vpr

#endif // VPR_CORE_ROB_HH
