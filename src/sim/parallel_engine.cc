#include "sim/parallel_engine.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/experiment.hh"
#include "sim/result_cache.hh"

namespace vpr
{

namespace
{

/**
 * One worker's reusable simulator (sim.pool). A cell whose benchmark
 * and seed match the pooled simulator re-arms it through
 * Simulator::reinit — keeping the stream, the core's warmed
 * allocations, and (for identical core configurations) the core itself
 * in place; anything else constructs fresh. One slot is enough: cells
 * of one sweep share a benchmark run-to-run far more often than they
 * alternate, and a stale slot just falls back to construction cost.
 */
class SimulatorPool
{
  public:
    SimResults
    run(const std::string &benchmark, const SimConfig &config)
    {
        if (!sim || !sim->reinit(benchmark, config))
            sim = std::make_unique<Simulator>(benchmark, config);
        try {
            return sim->run();
        } catch (...) {
            // A half-run simulator must never be re-armed.
            sim.reset();
            throw;
        }
    }

  private:
    std::unique_ptr<Simulator> sim;
};

SimResults
runCell(const GridCell &cell)
{
    // Content-addressed result cache: a cell whose (benchmark,
    // provenance, seed, scale) digest has been simulated before — by
    // this run, an earlier batch run, or the vpr_simd daemon — is
    // served from disk, byte-identical to a cold run. Cells with a
    // custom stream factory are never cached: their workload is not
    // covered by the provenance digest.
    const std::string &cacheDir = cell.config.resultCache.dir;
    const bool cacheable = !cacheDir.empty() && !cell.makeStream;
    if (cacheable) {
        SimResults cached;
        if (loadCachedResult(cacheDir, cell, cached))
            return cached;
    }

    SimConfig config = cell.config;
    applyInstructionScale(config);
    SimResults results = [&] {
        if (cell.makeStream) {
            std::unique_ptr<TraceStream> stream = cell.makeStream();
            Simulator sim(*stream, config);
            return sim.run();
        }
        if (config.pool) {
            // Per-thread: workers run cells concurrently, and the main
            // thread's pool survives across whole runGrid calls.
            static thread_local SimulatorPool pool;
            return pool.run(cell.benchmark, config);
        }
        Simulator sim(cell.benchmark, config);
        return sim.run();
    }();

    if (cacheable && cell.config.resultCache.save)
        storeCachedResult(cacheDir, cell, results);
    return results;
}

} // namespace

ParallelExperimentEngine::ParallelExperimentEngine(unsigned jobs)
    : nJobs(jobs)
{
    if (nJobs == 0) {
        nJobs = std::thread::hardware_concurrency();
        if (nJobs == 0)
            nJobs = 1;
    }
}

unsigned
ParallelExperimentEngine::workersFor(std::size_t cellCount) const
{
    return cellCount < nJobs ? static_cast<unsigned>(cellCount) : nJobs;
}

std::vector<SimResults>
ParallelExperimentEngine::run(const std::vector<GridCell> &cells) const
{
    std::vector<SimResults> results(cells.size());

    const unsigned workers = workersFor(cells.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            results[i] = runCell(cells[i]);
        return results;
    }

    // Dynamic work queue: cells vary wildly in runtime (IPC differs 5×
    // between benchmarks), so static striping would leave workers idle.
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorLock;

    auto worker = [&]() {
        for (;;) {
            std::size_t i = cursor.fetch_add(1);
            if (i >= cells.size() || failed.load())
                return;
            try {
                results[i] = runCell(cells[i]);
            } catch (...) {
                std::lock_guard<std::mutex> g(errorLock);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

} // namespace vpr
