#include "core/stages/fetch_stage.hh"

namespace vpr
{

FetchStage::FetchStage(PipelineState &state) : s(state)
{
    group.add(&branches);
    group.add(&mispredicts);
    s.statsTree.add(
        &group,
        [this] {
            branches.set(s.fetch.branches() - baseBranches);
            mispredicts.set(s.fetch.mispredicts() - baseMispredicts);
        },
        [this] {
            group.resetAll();
            baseBranches = s.fetch.branches();
            baseMispredicts = s.fetch.mispredicts();
        });
}

void
FetchStage::tick()
{
    s.fetch.tick(s.curCycle);
}

void
FetchStage::squash(InstSeqNum)
{
    // The wrong-path flush happens synchronously through the
    // FetchRedirectPort when the branch resolves; nothing else to do.
}

} // namespace vpr
