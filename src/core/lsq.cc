#include "core/lsq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vpr
{

void
Lsq::insert(DynInst *inst)
{
    VPR_ASSERT(!full(), "insert into full LSQ");
    VPR_ASSERT(inst->isMem(), "non-memory instruction in LSQ");
    VPR_ASSERT(list.empty() || list.back()->seq < inst->seq,
               "LSQ insert out of program order");
    list.push_back(inst);
}

void
Lsq::remove(DynInst *inst)
{
    auto it = std::find(list.begin(), list.end(), inst);
    VPR_ASSERT(it != list.end(), "LSQ remove: entry not present");
    list.erase(it);
}

void
Lsq::squashYoungerThan(InstSeqNum seq)
{
    while (!list.empty() && list.back()->seq > seq)
        list.pop_back();
}

LoadHold
Lsq::checkLoad(const DynInst *load, Cycle now) const
{
    VPR_ASSERT(load->isLoad(), "checkLoad on non-load");

    // Walk older entries from youngest to oldest so the *nearest*
    // matching store decides forwarding.
    for (auto it = list.rbegin(); it != list.rend(); ++it) {
        const DynInst *other = *it;
        if (other->seq >= load->seq)
            continue;
        if (!other->isStore())
            continue;
        if (!other->addrReady || other->addrReadyCycle > now)
            return LoadHold::UnknownAddress;
        if (!overlap(other->si.effAddr, other->si.memSize,
                     load->si.effAddr, load->si.memSize))
            continue;
        // Containing store with the data available: forward.
        if (other->si.effAddr <= load->si.effAddr &&
            other->si.effAddr + other->si.memSize >=
                load->si.effAddr + load->si.memSize) {
            return LoadHold::Forward;
        }
        return LoadHold::PartialOverlap;
    }
    return LoadHold::Ready;
}

void
Lsq::recordHold(LoadHold h)
{
    switch (h) {
      case LoadHold::Forward:
        ++nForwards;
        break;
      case LoadHold::UnknownAddress:
        ++nUnknownHolds;
        break;
      case LoadHold::PartialOverlap:
        ++nPartialHolds;
        break;
      default:
        break;
    }
}

} // namespace vpr
