#include "core/regfile_ports.hh"

namespace vpr
{

bool
PortSchedule::tryClaim(Cycle cycle)
{
    unsigned &used = usage[cycle];
    if (used >= ports)
        return false;
    ++used;
    return true;
}

Cycle
PortSchedule::claimFirstFree(Cycle earliest)
{
    Cycle c = earliest;
    while (!tryClaim(c))
        ++c;
    return c;
}

void
PortSchedule::pruneBefore(Cycle now)
{
    usage.erase(usage.begin(), usage.lower_bound(now));
}

unsigned
PortSchedule::used(Cycle cycle) const
{
    auto it = usage.find(cycle);
    return it == usage.end() ? 0 : it->second;
}

void
RegFilePorts::beginCycle(Cycle now)
{
    readsUsed[0] = readsUsed[1] = 0;
    writes[0].pruneBefore(now);
    writes[1].pruneBefore(now);
}

bool
RegFilePorts::canClaimReads(unsigned nInt, unsigned nFp) const
{
    return readsUsed[classIdx(RegClass::Int)] + nInt <= nReadPorts &&
           readsUsed[classIdx(RegClass::Float)] + nFp <= nReadPorts;
}

bool
RegFilePorts::tryClaimReads(unsigned nInt, unsigned nFp)
{
    if (!canClaimReads(nInt, nFp))
        return false;
    readsUsed[classIdx(RegClass::Int)] += nInt;
    readsUsed[classIdx(RegClass::Float)] += nFp;
    return true;
}

void
RegFilePorts::unclaimReads(unsigned nInt, unsigned nFp)
{
    readsUsed[classIdx(RegClass::Int)] -= nInt;
    readsUsed[classIdx(RegClass::Float)] -= nFp;
}

Cycle
RegFilePorts::scheduleWrite(RegClass cls, Cycle earliest)
{
    return writes[classIdx(cls)].claimFirstFree(earliest);
}

} // namespace vpr
