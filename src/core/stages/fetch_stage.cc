#include "core/stages/fetch_stage.hh"

namespace vpr
{

void
FetchStage::tick()
{
    s.fetch.tick(s.curCycle);
}

void
FetchStage::squash(InstSeqNum)
{
    // The wrong-path flush happens synchronously through the
    // FetchRedirectPort when the branch resolves; nothing else to do.
}

void
FetchStage::resetStats()
{
    baseBranches = s.fetch.branches();
    baseMispredicts = s.fetch.mispredicts();
}

std::uint64_t
FetchStage::branchesDelta() const
{
    return s.fetch.branches() - baseBranches;
}

std::uint64_t
FetchStage::mispredictsDelta() const
{
    return s.fetch.mispredicts() - baseMispredicts;
}

} // namespace vpr
