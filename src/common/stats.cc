#include "common/stats.hh"

#include <iomanip>

#include "common/logging.hh"

namespace vpr::stats
{

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " " << std::right
       << std::setw(14) << val << "  # " << desc() << "\n";
}

void
Real::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " " << std::right
       << std::setw(14) << std::fixed << std::setprecision(4) << value()
       << "  # " << desc() << "\n";
}

void
Average::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " " << std::right
       << std::setw(14) << std::fixed << std::setprecision(4) << mean()
       << "  # " << desc() << " (" << n << " samples)\n";
}

Distribution::Distribution(std::string name, std::string desc,
                           std::uint64_t min, std::uint64_t max,
                           std::uint64_t bucketSize)
    : StatBase(std::move(name), std::move(desc)), lo(min), hi(max),
      bsize(bucketSize)
{
    VPR_ASSERT(max >= min, "distribution range inverted");
    VPR_ASSERT(bucketSize > 0, "bucket size must be positive");
    buckets.assign((max - min) / bucketSize + 1, 0);
}

void
Distribution::sample(std::uint64_t v)
{
    if (n == 0 || v < minSeen)
        minSeen = v;
    if (n == 0 || v > maxSeen)
        maxSeen = v;
    ++n;
    sum += static_cast<double>(v);
    if (v < lo) {
        ++under;
    } else if (v > hi) {
        ++over;
    } else {
        ++buckets[(v - lo) / bsize];
    }
}

void
Distribution::reset()
{
    under = over = n = 0;
    sum = 0.0;
    minSeen = maxSeen = 0;
    buckets.assign(buckets.size(), 0);
}

void
Distribution::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " mean="
       << std::fixed << std::setprecision(3) << mean() << " n=" << n
       << " min=" << minSeen << " max=" << maxSeen << "  # " << desc()
       << "\n";
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        os << "  [" << (lo + i * bsize) << ".."
           << (lo + (i + 1) * bsize - 1) << "] " << buckets[i] << "\n";
    }
    if (under)
        os << "  underflows " << under << "\n";
    if (over)
        os << "  overflows " << over << "\n";
}

void
Distribution::visit(StatVisitor &v) const
{
    v.visitReal(name() + ".mean", desc(), mean());
    v.visitUInt(name() + ".samples", desc(), n);
    v.visitUInt(name() + ".min", desc(), minSeen);
    v.visitUInt(name() + ".max", desc(), maxSeen);
    v.visitUInt(name() + ".underflows", desc(), under);
    v.visitUInt(name() + ".overflows", desc(), over);
}

namespace
{

/** Forwards to an inner visitor with "<prefix>." prepended to names. */
class PrefixVisitor : public StatVisitor
{
  public:
    PrefixVisitor(const std::string &prefix, StatVisitor &inner)
        : pfx(prefix + "."), v(inner)
    {}

    void
    visitUInt(const std::string &name, const std::string &desc,
              std::uint64_t val) override
    {
        v.visitUInt(pfx + name, desc, val);
    }

    void
    visitReal(const std::string &name, const std::string &desc,
              double val) override
    {
        v.visitReal(pfx + name, desc, val);
    }

  private:
    std::string pfx;
    StatVisitor &v;
};

} // namespace

void
StatGroup::visit(StatVisitor &v) const
{
    PrefixVisitor prefixed(groupName, v);
    for (const auto *s : statList)
        s->visit(prefixed);
}

void
StatGroup::resetAll()
{
    for (auto *s : statList)
        s->reset();
}

void
StatGroup::print(std::ostream &os) const
{
    os << "---------- " << groupName << " ----------\n";
    for (const auto *s : statList)
        s->print(os);
}

} // namespace vpr::stats
