/**
 * @file
 * Deadlock-freedom property (paper section 3.3): for any legal NRR in
 * [1, NPR - NLR], any physical-register count and both allocation
 * policies, the machine always makes forward progress. The Core panics
 * if nothing commits for `deadlockThreshold` cycles, so simply running
 * each configuration to a commit target is the property check. The
 * renamer's structural invariants are verified every 64 cycles.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/experiment.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{
namespace
{

using Param = std::tuple<RenameScheme, int /*physRegs*/, int /*nrr*/,
                         std::string /*bench*/>;

class DeadlockFreedom : public ::testing::TestWithParam<Param>
{
};

TEST_P(DeadlockFreedom, MakesForwardProgress)
{
    auto [scheme, physRegs, nrr, bench] = GetParam();
    SimConfig c = paperConfig();
    c.setScheme(scheme);
    c.setPhysRegs(static_cast<std::uint16_t>(physRegs));
    if (nrr > 0)
        c.setNrr(static_cast<std::uint16_t>(nrr));
    c.skipInsts = 0;
    c.measureInsts = 15000;
    c.core.invariantChecks = true;
    c.core.deadlockThreshold = 100000;
    c.core.fetch.wrongPath = WrongPathMode::Synthesize;

    auto r = runOne(bench, c);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_GE(r.committed(), 15000u);
}

INSTANTIATE_TEST_SUITE_P(
    TightRegisterFiles, DeadlockFreedom,
    ::testing::Combine(
        ::testing::Values(RenameScheme::VPAllocAtWriteback,
                          RenameScheme::VPAllocAtIssue),
        ::testing::Values(34, 40, 48),
        ::testing::Values(1, 2, -1),  // -1 = maximum (NPR - NLR)
        ::testing::Values(std::string("swim"), std::string("apsi"),
                          std::string("compress"))),
    [](const auto &info) {
        std::string s = renameSchemeName(std::get<0>(info.param));
        for (auto &ch : s)
            if (ch == '-')
                ch = '_';
        int nrr = std::get<2>(info.param);
        return s + "_r" + std::to_string(std::get<1>(info.param)) +
               "_n" +
               (nrr < 0 ? std::string("max") : std::to_string(nrr)) +
               "_" + std::get<3>(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    ConventionalBaseline, DeadlockFreedom,
    ::testing::Combine(::testing::Values(RenameScheme::Conventional),
                       ::testing::Values(34, 64),
                       ::testing::Values(-1),
                       ::testing::Values(std::string("swim"),
                                         std::string("go"))),
    [](const auto &info) {
        return "conv_r" + std::to_string(std::get<1>(info.param)) + "_" +
               std::get<3>(info.param);
    });

TEST(DeadlockEdge, MinimumMachineOneSpareRegister)
{
    // NPR = NLR + 1 with NRR = 1: the tightest legal VP configuration.
    // Execution degenerates to near-serial but must not deadlock.
    SimConfig c = paperConfig();
    c.setScheme(RenameScheme::VPAllocAtWriteback);
    c.setPhysRegs(33, 1);
    c.skipInsts = 0;
    c.measureInsts = 1500;
    c.core.deadlockThreshold = 200000;
    auto r = runOne("compress", c);
    EXPECT_GE(r.committed(), 1500u);
}

TEST(DeadlockEdge, MixedClassesDoNotInterlock)
{
    // FP registers exhausted must not block integer progress (a paper
    // advantage: "the processor is allowed to continue executing
    // instructions of the other type").
    SimConfig c = paperConfig();
    c.setScheme(RenameScheme::VPAllocAtWriteback);
    c.setPhysRegs(34, 2);
    c.skipInsts = 0;
    c.measureInsts = 8000;
    auto r = runOne("apsi", c);  // mixes FP and integer work
    EXPECT_GE(r.committed(), 8000u);
}

} // namespace
} // namespace vpr
