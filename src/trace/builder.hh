/**
 * @file
 * TraceBuilder: a tiny DSL for writing instruction traces by hand.
 *
 * Used by unit tests, examples and the motivating-example bench to
 * construct exact instruction sequences. PCs are assigned sequentially
 * (4 bytes per instruction) from a configurable base.
 */

#ifndef VPR_TRACE_BUILDER_HH
#define VPR_TRACE_BUILDER_HH

#include <memory>
#include <vector>

#include "trace/record.hh"
#include "trace/stream.hh"

namespace vpr
{

/** Fluent builder producing a vector of trace records. */
class TraceBuilder
{
  public:
    explicit TraceBuilder(Addr pcBase = 0x1000) : nextPc(pcBase) {}

    /** Append an arbitrary pre-built instruction (pc is overwritten). */
    TraceBuilder &append(StaticInst si);

    /** Convenience emitters mirroring StaticInst's named constructors. @{ */
    TraceBuilder &alu(RegId d, RegId s1, RegId s2 = RegId::none());
    TraceBuilder &mult(RegId d, RegId s1, RegId s2);
    TraceBuilder &div(RegId d, RegId s1, RegId s2);
    TraceBuilder &fpAdd(RegId d, RegId s1, RegId s2 = RegId::none());
    TraceBuilder &fpMul(RegId d, RegId s1, RegId s2);
    TraceBuilder &fpDiv(RegId d, RegId s1, RegId s2);
    TraceBuilder &fpSqrt(RegId d, RegId s1);
    TraceBuilder &load(RegId d, RegId base, Addr addr);
    TraceBuilder &store(RegId data, RegId base, Addr addr);
    TraceBuilder &branch(RegId s1, bool taken, Addr target);
    TraceBuilder &nop();
    /** @} */

    /** Repeat the instructions added since the last mark() @p n times. */
    TraceBuilder &mark();
    TraceBuilder &repeat(unsigned n);

    /** Number of records so far. */
    std::size_t size() const { return recs.size(); }

    /** The built trace (copy). */
    std::vector<TraceRecord> records() const { return recs; }

    /** Wrap the built trace in a stream. */
    std::unique_ptr<VectorTraceStream> stream(bool loop = false) const;

  private:
    std::vector<TraceRecord> recs;
    Addr nextPc;
    std::size_t markPos = 0;
};

} // namespace vpr

#endif // VPR_TRACE_BUILDER_HH
