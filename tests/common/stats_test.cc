/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace vpr::stats
{
namespace
{

TEST(Scalar, CountsAndResets)
{
    Scalar s("s", "a counter");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 6u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Scalar, SetOverwrites)
{
    Scalar s("s", "gauge");
    s.set(42);
    EXPECT_EQ(s.value(), 42u);
}

TEST(Average, MeanOfSamples)
{
    Average a("a", "mean");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 6.0);
}

TEST(Distribution, BucketsSamples)
{
    Distribution d("d", "dist", 0, 99, 10);
    EXPECT_EQ(d.numBuckets(), 10u);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(95);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.bucketCount(9), 1u);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), (5 + 15 + 15 + 95) / 4.0);
}

TEST(Distribution, UnderOverflow)
{
    Distribution d("d", "dist", 10, 19, 5);
    d.sample(9);
    d.sample(25);
    d.sample(12);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_EQ(d.minSample(), 9u);
    EXPECT_EQ(d.maxSample(), 25u);
}

TEST(Distribution, ResetClearsEverything)
{
    Distribution d("d", "dist", 0, 9, 1);
    d.sample(3);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.bucketCount(3), 0u);
}

TEST(StatGroup, PrintsAllMembers)
{
    StatGroup g("grp");
    Scalar s("grp.count", "counts things");
    Average a("grp.avg", "averages things");
    g.add(&s);
    g.add(&a);
    ++s;
    a.sample(4.0);

    std::ostringstream os;
    g.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("grp.count"), std::string::npos);
    EXPECT_NE(out.find("grp.avg"), std::string::npos);
    EXPECT_NE(out.find("counts things"), std::string::npos);
}

TEST(StatGroup, ResetAllResetsMembers)
{
    StatGroup g("grp");
    Scalar s("s", "d");
    g.add(&s);
    s += 10;
    g.resetAll();
    EXPECT_EQ(s.value(), 0u);
}

TEST(DistributionDeath, BadRangePanics)
{
    EXPECT_DEATH(Distribution("d", "x", 10, 5, 1), "range inverted");
    EXPECT_DEATH(Distribution("d", "x", 0, 5, 0), "bucket size");
}

/** Collects visited triples as "name=value" strings, in order. */
class RecordingVisitor : public StatVisitor
{
  public:
    void
    visitUInt(SymId name, SymId desc, std::uint64_t v) override
    {
        auto &tab = SymbolTable::global();
        entries.push_back(tab.text(name) + "=" + std::to_string(v));
        descs.push_back(tab.text(desc));
    }

    void
    visitReal(SymId name, SymId desc, double v) override
    {
        auto &tab = SymbolTable::global();
        std::ostringstream os;
        os << tab.text(name) << "=" << v;
        entries.push_back(os.str());
        descs.push_back(tab.text(desc));
    }

    std::vector<std::string> entries;
    std::vector<std::string> descs;
};

TEST(SymbolTable, InternIsIdempotentAndStable)
{
    auto &tab = SymbolTable::global();
    const SymId a = tab.intern("symtab.test.alpha");
    const SymId b = tab.intern("symtab.test.beta");
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
    // Same text, same id — interning is idempotent.
    EXPECT_EQ(tab.intern("symtab.test.alpha"), a);
    EXPECT_EQ(tab.text(a), "symtab.test.alpha");
    // text() references are stable even as the table grows.
    const std::string *before = &tab.text(a);
    for (int i = 0; i < 100; ++i)
        tab.intern("symtab.test.filler." + std::to_string(i));
    EXPECT_EQ(before, &tab.text(a));
}

TEST(SymbolTable, FindNeverInserts)
{
    auto &tab = SymbolTable::global();
    const std::size_t before = tab.size();
    EXPECT_EQ(tab.find("symtab.test.never-interned"), 0u);
    EXPECT_EQ(tab.size(), before);
    const SymId id = tab.intern("symtab.test.findable");
    EXPECT_EQ(tab.find("symtab.test.findable"), id);
}

TEST(Visitation, PrefixChangeRecomposesNames)
{
    // The per-stat symbol cache must be keyed by the visiting group's
    // prefix: the same stat visited under two groups (or directly)
    // reports different full names.
    Scalar s("n", "x");
    s.set(1);
    StatGroup g1("first"), g2("second");
    g1.add(&s);
    g2.add(&s);

    RecordingVisitor v;
    g1.visit(v);
    g2.visit(v);
    g1.visit(v);
    s.visit(v);  // direct visit reuses the last prefix set: "first"
    ASSERT_EQ(v.entries.size(), 4u);
    EXPECT_EQ(v.entries[0], "first.n=1");
    EXPECT_EQ(v.entries[1], "second.n=1");
    EXPECT_EQ(v.entries[2], "first.n=1");
    EXPECT_EQ(v.entries[3], "first.n=1");
}

TEST(Visitation, ScalarVisitsItsValue)
{
    Scalar s("count", "how many");
    s += 7;
    RecordingVisitor v;
    s.visit(v);
    ASSERT_EQ(v.entries.size(), 1u);
    EXPECT_EQ(v.entries[0], "count=7");
    EXPECT_EQ(v.descs[0], "how many");
}

TEST(Visitation, RealVisitsItsValue)
{
    Real r("rate", "a ratio");
    r.set(0.5);
    RecordingVisitor v;
    r.visit(v);
    ASSERT_EQ(v.entries.size(), 1u);
    EXPECT_EQ(v.entries[0], "rate=0.5");
}

TEST(Visitation, AverageVisitsMeanAndSamples)
{
    Average a("lat", "latency");
    a.sample(2.0);
    a.sample(4.0);
    RecordingVisitor v;
    a.visit(v);
    ASSERT_EQ(v.entries.size(), 2u);
    EXPECT_EQ(v.entries[0], "lat=3");
    EXPECT_EQ(v.entries[1], "lat.samples=2");
}

TEST(Visitation, DistributionVisitsSubValuesAndBuckets)
{
    Distribution d("occ", "occupancy", 0, 9, 1);
    d.sample(2);
    d.sample(4);
    RecordingVisitor v;
    d.visit(v);
    // Moments first, then the bucket geometry, then one hist[i] per
    // bucket.
    ASSERT_EQ(v.entries.size(), 9u + d.numBuckets());
    EXPECT_EQ(v.entries[0], "occ.mean=3");
    EXPECT_EQ(v.entries[1], "occ.stddev=1");
    EXPECT_EQ(v.entries[2], "occ.samples=2");
    EXPECT_EQ(v.entries[3], "occ.min=2");
    EXPECT_EQ(v.entries[4], "occ.max=4");
    EXPECT_EQ(v.entries[5], "occ.underflows=0");
    EXPECT_EQ(v.entries[6], "occ.overflows=0");
    EXPECT_EQ(v.entries[7], "occ.range_min=0");
    EXPECT_EQ(v.entries[8], "occ.bucket_size=1");
    EXPECT_EQ(v.entries[9], "occ.hist[0]=0");
    EXPECT_EQ(v.entries[11], "occ.hist[2]=1");
    EXPECT_EQ(v.entries[13], "occ.hist[4]=1");
}

TEST(Distribution, StddevOfConstantIsZero)
{
    Distribution d("d", "dist", 0, 9, 1);
    d.sample(4);
    d.sample(4);
    d.sample(4);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Distribution, StddevMatchesPopulationFormula)
{
    Distribution d("d", "dist", 0, 99, 10);
    // Samples 2 and 4: mean 3, population variance 1.
    d.sample(2);
    d.sample(4);
    EXPECT_DOUBLE_EQ(d.stddev(), 1.0);
    EXPECT_DOUBLE_EQ(Distribution("e", "x", 0, 9, 1).stddev(), 0.0);
}

TEST(Distribution, EvenBucketsFixesTheBucketCount)
{
    // The bucket count must not depend on the range — that is what
    // keeps export schemas identical across a structure-size sweep.
    for (std::uint64_t max : {47u, 48u, 63u, 96u, 100u, 255u}) {
        Distribution d = Distribution::evenBuckets("d", "x", 0, max, 16);
        EXPECT_EQ(d.numBuckets(), 16u) << "max=" << max;
        d.sample(max);  // the top value must land in a bucket
        EXPECT_EQ(d.overflows(), 0u) << "max=" << max;
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < d.numBuckets(); ++i)
            total += d.bucketCount(i);
        EXPECT_EQ(total, 1u) << "max=" << max;
    }
}

TEST(Counter2D, CountsAndTotals)
{
    Counter2D c("m", "matrix", {"a", "b"}, {"x", "y", "z"});
    c.inc(0, 0);
    c.inc(0, 2, 5);
    c.inc(1, 1);
    EXPECT_EQ(c.count(0, 0), 1u);
    EXPECT_EQ(c.count(0, 2), 5u);
    EXPECT_EQ(c.rowTotal(0), 6u);
    EXPECT_EQ(c.colTotal(1), 1u);
    EXPECT_EQ(c.total(), 7u);
    c.reset();
    EXPECT_EQ(c.total(), 0u);
}

TEST(Counter2D, VisitsEveryLabelledCell)
{
    Counter2D c("m", "matrix", {"a", "b"}, {"x", "y"});
    c.inc(1, 0, 3);
    RecordingVisitor v;
    c.visit(v);
    ASSERT_EQ(v.entries.size(), 4u);
    EXPECT_EQ(v.entries[0], "m.a.x=0");
    EXPECT_EQ(v.entries[1], "m.a.y=0");
    EXPECT_EQ(v.entries[2], "m.b.x=3");
    EXPECT_EQ(v.entries[3], "m.b.y=0");
}

TEST(Registry, VisitRunsUpdateHooksInRegistrationOrder)
{
    StatRegistry reg;
    StatGroup g1("one"), g2("two");
    Scalar s1("n", "x"), s2("n", "x");
    Real derived("sum", "derived from both scalars");
    g1.add(&s1);
    g2.add(&s2);
    g2.add(&derived);
    s1.set(2);
    s2.set(3);
    reg.add(&g1);
    reg.add(&g2, [&] {
        derived.set(static_cast<double>(s1.value() + s2.value()));
    });

    RecordingVisitor v;
    reg.visit(v);
    ASSERT_EQ(v.entries.size(), 3u);
    EXPECT_EQ(v.entries[0], "one.n=2");
    EXPECT_EQ(v.entries[1], "two.n=3");
    EXPECT_EQ(v.entries[2], "two.sum=5");
}

TEST(Registry, ResetUsesCustomHookOrDefaultsToResetAll)
{
    StatRegistry reg;
    StatGroup g1("one"), g2("two");
    Scalar s1("n", "x"), s2("n", "x");
    g1.add(&s1);
    g2.add(&s2);
    s1.set(7);
    s2.set(9);
    bool customRan = false;
    reg.add(&g1);
    reg.add(&g2, {}, [&] { customRan = true; });  // keeps s2's value

    reg.reset();
    EXPECT_EQ(s1.value(), 0u);
    EXPECT_EQ(s2.value(), 9u);
    EXPECT_TRUE(customRan);
}

TEST(Visitation, GroupPrefixesAndPreservesOrder)
{
    StatGroup g("core");
    Scalar s1("cycles", "c");
    Scalar s2("committed", "i");
    Real r("ipc", "rate");
    g.add(&s1);
    g.add(&s2);
    g.add(&r);
    s1.set(10);
    s2.set(20);
    r.set(2.0);

    RecordingVisitor v;
    g.visit(v);
    ASSERT_EQ(v.entries.size(), 3u);
    EXPECT_EQ(v.entries[0], "core.cycles=10");
    EXPECT_EQ(v.entries[1], "core.committed=20");
    EXPECT_EQ(v.entries[2], "core.ipc=2");
}

} // namespace
} // namespace vpr::stats
