/**
 * @file
 * Ablation: counter-based early register release versus virtual-
 * physical registers.
 *
 * Section 3.1 of the paper identifies two waste factors of decode-time
 * allocation and positions virtual-physical registers as eliminating
 * the *first* (decode→write-back holding), citing Moudgill et al. and
 * Smith & Sohi for the *second* (dead value waiting for its
 * superseder's commit). This bench runs all four schemes so the two
 * factors can be compared head to head.
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    printTableHeader(std::cout,
                     "Ablation: early release vs virtual-physical "
                     "(IPC, 64 regs)",
                     {"conv", "early-rel", "vp-wb", "er-gain", "vp-gain"});

    // Grid: (conv, early-release, vp) per benchmark, run on the engine.
    SimConfig config = experimentConfig();
    const auto &names = benchmarkNames();
    std::vector<GridCell> cells;
    for (const auto &name : names) {
        config.setScheme(RenameScheme::Conventional);
        cells.push_back({name, config});
        config.setScheme(RenameScheme::ConventionalEarlyRelease);
        cells.push_back({name, config});
        config.setScheme(RenameScheme::VPAllocAtWriteback);
        config.setNrr(32);
        cells.push_back({name, config});
    }
    std::vector<SimResults> results = runGrid(cells, config.jobs);

    std::vector<double> convAll, erAll, vpAll;
    for (std::size_t bi = 0; bi < names.size(); ++bi) {
        double conv = results[3 * bi].ipc();
        double er = results[3 * bi + 1].ipc();
        double vp = results[3 * bi + 2].ipc();

        convAll.push_back(conv);
        erAll.push_back(er);
        vpAll.push_back(vp);
        printTableRow(std::cout, names[bi],
                      {conv, er, vp, er / conv, vp / conv}, 3);
    }
    std::cout << std::string(12 + 12 * 5, '-') << "\n";
    printTableRow(std::cout, "hmean",
                  {harmonicMean(convAll), harmonicMean(erAll),
                   harmonicMean(vpAll),
                   harmonicMean(erAll) / harmonicMean(convAll),
                   harmonicMean(vpAll) / harmonicMean(convAll)},
                  3);

    std::cout << "\nexpectation: early release helps (it shortens the "
                 "tail of a value's lifetime) but recovers only part of "
                 "the virtual-physical gain — on miss-bound codes the "
                 "decode->write-back holding time dominates, which is "
                 "the paper's motivating argument.\n";
    return 0;
}
