/**
 * @file
 * Fundamental scalar types shared by every module of the simulator.
 */

#ifndef VPR_COMMON_TYPES_HH
#define VPR_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

/** Force inlining of a hot helper the optimizer would outline (only
 *  where a measured regression justifies overriding its heuristics). */
#if defined(__GNUC__) || defined(__clang__)
#define VPR_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define VPR_ALWAYS_INLINE inline
#endif

namespace vpr
{

/** Simulation time expressed in processor clock cycles. */
using Cycle = std::uint64_t;

/** Dynamic instruction sequence number (monotonic, never reused). */
using InstSeqNum = std::uint64_t;

/** Byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** Identifier of a physical register inside one register file. */
using PhysRegId = std::uint16_t;

/** Identifier of a virtual-physical register inside one register file. */
using VPRegId = std::uint16_t;

/** Sentinel for "no cycle": events that have not happened yet. */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no register". */
inline constexpr std::uint16_t kNoReg =
    std::numeric_limits<std::uint16_t>::max();

/** Sentinel for "no sequence number". */
inline constexpr InstSeqNum kNoSeqNum =
    std::numeric_limits<InstSeqNum>::max();

} // namespace vpr

#endif // VPR_COMMON_TYPES_HH
