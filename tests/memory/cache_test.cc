/** @file Unit tests for the lockup-free cache. */

#include <gtest/gtest.h>

#include "memory/cache.hh"

namespace vpr
{
namespace
{

CacheConfig
smallConfig()
{
    CacheConfig c;
    c.sizeBytes = 1024;
    c.lineSize = 32;
    c.assoc = 1;
    c.hitLatency = 2;
    c.missPenalty = 50;
    c.numMshrs = 4;
    c.busOccupancy = 4;
    return c;
}

TEST(Cache, PaperDefaults)
{
    NonBlockingCache c;
    EXPECT_EQ(c.config().sizeBytes, 16u * 1024u);
    EXPECT_EQ(c.config().lineSize, 32u);
    EXPECT_EQ(c.config().assoc, 1u);
    EXPECT_EQ(c.config().hitLatency, 2u);
    EXPECT_EQ(c.config().missPenalty, 50u);
    EXPECT_EQ(c.config().numMshrs, 8u);
}

TEST(Cache, ColdMissTakesMissPenalty)
{
    NonBlockingCache c(smallConfig());
    auto r = c.access(0x1000, false, 100);
    EXPECT_EQ(r.outcome, CacheOutcome::Miss);
    // Fill lands missPenalty later; data readable one hit-latency after.
    EXPECT_EQ(r.readyCycle, 100u + 50u + 2u);
}

TEST(Cache, HitAfterFill)
{
    NonBlockingCache c(smallConfig());
    c.access(0x1000, false, 0);
    auto r = c.access(0x1000, false, 100);
    EXPECT_EQ(r.outcome, CacheOutcome::Hit);
    EXPECT_EQ(r.readyCycle, 102u);
}

TEST(Cache, SameLineDifferentWordStillHits)
{
    NonBlockingCache c(smallConfig());
    c.access(0x1000, false, 0);
    auto r = c.access(0x1018, false, 100);
    EXPECT_EQ(r.outcome, CacheOutcome::Hit);
}

TEST(Cache, AccessBeforeFillMerges)
{
    NonBlockingCache c(smallConfig());
    auto miss = c.access(0x1000, false, 0);
    auto merged = c.access(0x1008, false, 10);
    EXPECT_EQ(merged.outcome, CacheOutcome::MergedMiss);
    // Merged access becomes ready when the fill lands (+ array read).
    EXPECT_GE(merged.readyCycle, miss.readyCycle - 2 + 2);
    EXPECT_EQ(c.mergedMisses(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, BlocksWhenMshrsExhausted)
{
    auto cfg = smallConfig();
    cfg.numMshrs = 2;
    NonBlockingCache c(cfg);
    EXPECT_EQ(c.access(0x1000, false, 0).outcome, CacheOutcome::Miss);
    EXPECT_EQ(c.access(0x2000, false, 0).outcome, CacheOutcome::Miss);
    auto r = c.access(0x3000, false, 0);
    EXPECT_EQ(r.outcome, CacheOutcome::Blocked);
    EXPECT_EQ(c.blockedAccesses(), 1u);
    // After the fills land, the access goes through.
    auto r2 = c.access(0x3000, false, 200);
    EXPECT_EQ(r2.outcome, CacheOutcome::Miss);
}

TEST(Cache, WouldBlockMatchesAccess)
{
    auto cfg = smallConfig();
    cfg.numMshrs = 1;
    NonBlockingCache c(cfg);
    EXPECT_FALSE(c.wouldBlock(0x1000, 0));
    c.access(0x1000, false, 0);
    EXPECT_FALSE(c.wouldBlock(0x1000, 1));   // in-flight line: merge ok
    EXPECT_TRUE(c.wouldBlock(0x2000, 1));    // new line: MSHRs full
    EXPECT_FALSE(c.wouldBlock(0x2000, 300)); // fill retired
}

TEST(Cache, DirectMappedConflictEvicts)
{
    NonBlockingCache c(smallConfig());  // 1 KB, 32 sets... 32 lines
    c.access(0x0, false, 0);
    // Same set, different tag (1 KB apart in a 1 KB direct-mapped cache).
    c.access(0x400, false, 100);
    // Wait for fill, then the original line must be gone.
    EXPECT_TRUE(c.isPresent(0x400, 300));
    EXPECT_FALSE(c.isPresent(0x0, 300));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    NonBlockingCache c(smallConfig());
    c.access(0x0, true, 0);       // write-allocate; line becomes dirty
    c.access(0x400, false, 100);  // conflicting line
    c.access(0x800, false, 300);  // force another eviction round
    // The dirty line 0x0 must have been written back when evicted.
    EXPECT_GE(c.writebacks(), 1u);
}

TEST(Cache, WriteMarksLineDirtyOnHit)
{
    NonBlockingCache c(smallConfig());
    c.access(0x0, false, 0);      // clean fill
    c.access(0x0, true, 100);     // dirty it via a hit
    c.access(0x400, false, 200);  // evict
    c.access(0x400, false, 300);
    EXPECT_GE(c.writebacks(), 1u);
}

TEST(Cache, BusSerializesConcurrentFills)
{
    NonBlockingCache c(smallConfig());
    auto r1 = c.access(0x1000, false, 0);
    auto r2 = c.access(0x2000, false, 0);
    auto r3 = c.access(0x3000, false, 0);
    EXPECT_EQ(r2.readyCycle, r1.readyCycle + 4);
    EXPECT_EQ(r3.readyCycle, r2.readyCycle + 4);
}

TEST(Cache, SetAssociativeAvoidsConflict)
{
    auto cfg = smallConfig();
    cfg.assoc = 2;
    NonBlockingCache c(cfg);
    c.access(0x0, false, 0);
    c.access(0x400, false, 100);  // same set, second way
    EXPECT_TRUE(c.isPresent(0x0, 300));
    EXPECT_TRUE(c.isPresent(0x400, 300));
}

TEST(Cache, LruReplacementInSet)
{
    auto cfg = smallConfig();
    cfg.assoc = 2;
    NonBlockingCache c(cfg);
    c.access(0x0, false, 0);
    c.access(0x400, false, 100);
    // Touch 0x0 so 0x400 is LRU, then bring a third conflicting line.
    c.access(0x0, false, 300);
    c.access(0x800, false, 400);
    EXPECT_TRUE(c.isPresent(0x0, 600));
    EXPECT_FALSE(c.isPresent(0x400, 600));
    EXPECT_TRUE(c.isPresent(0x800, 600));
}

TEST(Cache, MissRateAccounting)
{
    NonBlockingCache c(smallConfig());
    c.access(0x1000, false, 0);    // miss
    c.access(0x1000, false, 100);  // hit
    c.access(0x1000, false, 101);  // hit
    c.access(0x1008, false, 102);  // hit
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
    EXPECT_EQ(c.accesses(), 4u);
}

TEST(Cache, BlockedAccessNotCountedAsDemand)
{
    auto cfg = smallConfig();
    cfg.numMshrs = 1;
    NonBlockingCache c(cfg);
    c.access(0x1000, false, 0);
    c.access(0x2000, false, 0);  // blocked
    EXPECT_EQ(c.accesses(), 1u);
    EXPECT_EQ(c.blockedAccesses(), 1u);
}

TEST(Cache, ResetRestoresColdState)
{
    NonBlockingCache c(smallConfig());
    c.access(0x1000, false, 0);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.access(0x1000, false, 500).outcome, CacheOutcome::Miss);
}

TEST(Cache, LineAddrMasksOffset)
{
    NonBlockingCache c(smallConfig());
    EXPECT_EQ(c.lineAddr(0x1234), 0x1220u);
    EXPECT_EQ(c.lineAddr(0x1220), 0x1220u);
}

TEST(CacheDeath, BadGeometryPanics)
{
    CacheConfig cfg;
    cfg.lineSize = 30;  // not a power of two
    EXPECT_DEATH(NonBlockingCache{cfg}, "power of 2");
}

} // namespace
} // namespace vpr
