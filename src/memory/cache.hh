/**
 * @file
 * Lockup-free L1 data cache.
 *
 * Paper configuration (section 4.1): 16 KB direct-mapped, 32-byte lines,
 * 2-cycle hit, 50-cycle miss penalty, up to 8 outstanding misses to
 * distinct lines (Kroft lockup-free organization), infinite L2 behind a
 * 64-bit bus (4-cycle line occupancy). Write-back, write-allocate.
 *
 * The model is timestamp-based: an access at cycle `now` immediately
 * yields the cycle its data is available, accounting for MSHR merging
 * and bus queueing. Associativity is configurable (default 1 = direct
 * mapped) with LRU replacement for the set-associative extension.
 */

#ifndef VPR_MEMORY_CACHE_HH
#define VPR_MEMORY_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "memory/bus.hh"
#include "memory/mshr.hh"

namespace vpr
{

class ParamVisitor;

/** Static cache parameters. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned lineSize = 32;
    unsigned assoc = 1;           ///< 1 = direct mapped
    unsigned hitLatency = 2;
    unsigned missPenalty = 50;    ///< total latency of a fill
    unsigned numMshrs = 8;
    unsigned busOccupancy = 4;    ///< cycles a line holds the L1-L2 bus

    /** Reflect the cache parameters (sim/params.hh). */
    void visitParams(ParamVisitor &v);
};

/** Possible outcomes of a cache access. */
enum class CacheOutcome : std::uint8_t
{
    Hit,         ///< data ready after the hit latency
    Miss,        ///< new fill issued
    MergedMiss,  ///< merged into an outstanding fill of the same line
    Blocked      ///< all MSHRs busy; retry next cycle
};

/** Result of one access: outcome plus data-ready cycle. */
struct CacheAccessResult
{
    CacheOutcome outcome;
    Cycle readyCycle;  ///< unspecified for Blocked
};

/** Non-blocking write-back write-allocate cache with an occupancy bus. */
class NonBlockingCache
{
  public:
    explicit NonBlockingCache(const CacheConfig &config = CacheConfig());

    /**
     * Perform a timing access.
     *
     * @param addr byte address
     * @param isWrite true for stores
     * @param now current cycle; must be non-decreasing across calls
     * @return the outcome and data-ready cycle
     */
    CacheAccessResult access(Addr addr, bool isWrite, Cycle now);

    /** Line-aligned address. */
    Addr lineAddr(Addr a) const { return a & ~static_cast<Addr>(lineMask); }

    const CacheConfig &config() const { return cfg; }
    const Bus &bus() const { return theBus; }
    const MshrFile &mshrs() const { return mshrFile; }

    /** True if the line is present in the tag array right now (after
     *  retiring any fills that completed by @p now). Test hook. */
    bool isPresent(Addr addr, Cycle now);

    /**
     * Side-effect-free check: would access(addr, isWrite, now) return
     * Blocked? (Retires completed fills, which only moves time forward.)
     */
    bool wouldBlock(Addr addr, Cycle now);

    /** Statistics. @{ */
    std::uint64_t accesses() const { return nAccesses; }
    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    std::uint64_t mergedMisses() const { return nMerged; }
    std::uint64_t blockedAccesses() const { return nBlocked; }
    std::uint64_t writebacks() const { return nWritebacks; }
    double
    missRate() const
    {
        std::uint64_t demand = nHits + nMisses + nMerged;
        return demand ? static_cast<double>(nMisses + nMerged) /
                            static_cast<double>(demand)
                      : 0.0;
    }
    /** @} */

    void reset();

    /**
     * Serialize/restore the tag array, the in-flight MSHRs, the bus and
     * the whole-run counters (common/state.hh). The monotonic counters
     * must travel so whole-run metrics (miss rate) exported after a
     * restore match a cold run byte for byte.
     */
    void visitState(StateVisitor &v);

    /**
     * Register the "memory" stat group into the core's stats tree. The
     * exported access/miss counts are measurement-interval deltas of
     * the monotonic counters above; the miss rate stays whole-run (the
     * steady-state figure the paper quotes).
     */
    void regStats(stats::StatRegistry &r);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;       ///< full line address for simplicity
        Cycle lastUse = 0;  ///< LRU timestamp
    };

    /** Install fills that have completed by @p now. */
    void retireFills(Cycle now);

    /** Find the way holding @p line in @p set, or -1. */
    int findWay(std::size_t set, Addr line) const;

    /** Pick a victim way in @p set (invalid first, then LRU). */
    std::size_t victimWay(std::size_t set) const;

    std::size_t setIndex(Addr line) const;

    CacheConfig cfg;
    std::size_t numSets;
    std::uint64_t lineMask;
    std::vector<Line> lines;  ///< numSets * assoc, way-major within set
    MshrFile mshrFile;
    Bus theBus;

    std::uint64_t nAccesses = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
    std::uint64_t nMerged = 0;
    std::uint64_t nBlocked = 0;
    std::uint64_t nWritebacks = 0;

    stats::StatGroup group{"memory"};
    stats::Scalar accessesStat{"cache_accesses",
                               "L1 data cache accesses"};
    stats::Scalar missesStat{"cache_misses",
                             "L1 data cache misses (incl. merged)"};
    stats::Real missRateStat{"cache_miss_rate",
                             "L1 data cache miss rate"};
    std::uint64_t baseAccesses = 0;
    std::uint64_t baseMisses = 0;
};

} // namespace vpr

#endif // VPR_MEMORY_CACHE_HH
