/**
 * @file
 * The four ablation studies as FigureDefs: early release vs VP,
 * MSHR-count sweep, window-size sweep, and misprediction modelling
 * (fetch stall vs synthetic wrong path vs wrong path with memory ops).
 */

#include "figures.hh"

namespace vpr::bench
{

FigureDef
ablationEarlyReleaseFigure()
{
    FigureDef def;
    def.name = "ablation_early_release";
    def.build = [] {
        SimConfig config = experimentConfig();
        std::vector<GridCell> cells;
        for (const auto &name : benchmarkNames()) {
            config.setScheme(RenameScheme::Conventional);
            cells.push_back({name, config});
            config.setScheme(RenameScheme::ConventionalEarlyRelease);
            cells.push_back({name, config});
            config.setScheme(RenameScheme::VPAllocAtWriteback);
            config.setNrr(32);
            cells.push_back({name, config});
        }
        return cells;
    };
    def.render = [](const std::vector<GridCell> &,
                    const std::vector<SimResults> &results,
                    std::ostream &os) {
        printTableHeader(os,
                         "Ablation: early release vs virtual-physical "
                         "(IPC, 64 regs)",
                         {"conv", "early-rel", "vp-wb", "er-gain",
                          "vp-gain"});

        const auto &names = benchmarkNames();
        std::vector<double> convAll, erAll, vpAll;
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            double conv = results[3 * bi].ipc();
            double er = results[3 * bi + 1].ipc();
            double vp = results[3 * bi + 2].ipc();

            convAll.push_back(conv);
            erAll.push_back(er);
            vpAll.push_back(vp);
            printTableRow(os, names[bi],
                          {conv, er, vp, er / conv, vp / conv}, 3);
        }
        os << std::string(12 + 12 * 5, '-') << "\n";
        printTableRow(os, "hmean",
                      {harmonicMean(convAll), harmonicMean(erAll),
                       harmonicMean(vpAll),
                       harmonicMean(erAll) / harmonicMean(convAll),
                       harmonicMean(vpAll) / harmonicMean(convAll)},
                      3);

        os << "\nexpectation: early release helps (it shortens the "
              "tail of a value's lifetime) but recovers only part of "
              "the virtual-physical gain — on miss-bound codes the "
              "decode->write-back holding time dominates, which is "
              "the paper's motivating argument.\n";
    };
    return def;
}

FigureDef
ablationMshrFigure()
{
    static const std::vector<unsigned> mshrs = {2, 4, 8, 16, 32};
    static const std::vector<std::string> names = {"swim", "mgrid",
                                                   "apsi", "compress"};
    FigureDef def;
    def.name = "ablation_mshr";
    def.build = [] {
        std::vector<GridCell> cells;
        for (const auto &name : names) {
            for (unsigned m : mshrs) {
                SimConfig config = experimentConfig();
                config.core.cache.numMshrs = m;
                config.setScheme(RenameScheme::Conventional);
                cells.push_back({name, config});
                config.setScheme(RenameScheme::VPAllocAtWriteback);
                cells.push_back({name, config});
            }
        }
        return cells;
    };
    def.render = [](const std::vector<GridCell> &,
                    const std::vector<SimResults> &results,
                    std::ostream &os) {
        std::vector<std::string> cols;
        for (auto m : mshrs)
            cols.push_back("MSHR=" + std::to_string(m));
        printTableHeader(os,
                         "Ablation: VP speedup vs outstanding-miss "
                         "limit (64 regs, write-back alloc)",
                         cols);

        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            std::vector<double> row;
            for (std::size_t i = 0; i < mshrs.size(); ++i) {
                double conv = results[2 * (bi * mshrs.size() + i)].ipc();
                double vp =
                    results[2 * (bi * mshrs.size() + i) + 1].ipc();
                row.push_back(vp / conv);
            }
            printTableRow(os, names[bi], row, 3);
        }

        os << "\nexpectation: with very few MSHRs both schemes are "
              "pinned to the same miss ceiling (speedup -> 1); the "
              "speedup grows with MSHRs until the 128-entry window "
              "becomes the limit.\n";
    };
    return def;
}

FigureDef
ablationWindowFigure()
{
    static const std::vector<std::size_t> windows = {32, 64, 128, 256};
    FigureDef def;
    def.name = "ablation_window";
    def.build = [] {
        std::vector<GridCell> cells;
        for (const auto &name : benchmarkNames()) {
            for (std::size_t w : windows) {
                SimConfig config = experimentConfig();
                config.core.robSize = w;
                config.core.iqSize = w;
                config.core.lsqSize = w;
                config.setPhysRegs(64, 32);  // resizes the VP pool too

                config.setScheme(RenameScheme::Conventional);
                cells.push_back({name, config});
                config.setScheme(RenameScheme::VPAllocAtWriteback);
                cells.push_back({name, config});
            }
        }
        return cells;
    };
    def.render = [](const std::vector<GridCell> &,
                    const std::vector<SimResults> &results,
                    std::ostream &os) {
        std::vector<std::string> cols;
        for (auto w : windows)
            cols.push_back("ROB=" + std::to_string(w));
        printTableHeader(os,
                         "Ablation: VP speedup vs window size (64 regs, "
                         "write-back alloc, NRR=32)",
                         cols);

        const auto &names = benchmarkNames();
        std::vector<std::vector<double>> colVals(windows.size());
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            std::vector<double> row;
            for (std::size_t i = 0; i < windows.size(); ++i) {
                double conv =
                    results[2 * (bi * windows.size() + i)].ipc();
                double vp =
                    results[2 * (bi * windows.size() + i) + 1].ipc();
                row.push_back(vp / conv);
                colVals[i].push_back(vp / conv);
            }
            printTableRow(os, names[bi], row, 3);
        }
        os << std::string(12 + 12 * windows.size(), '-') << "\n";
        std::vector<double> means;
        for (const auto &col : colVals)
            means.push_back(geoMean(col));
        printTableRow(os, "geomean", means, 3);

        os << "\nexpectation: the speedup is a non-decreasing "
              "function of the window size — a small window cannot "
              "out-run 32 rename registers, a large one starves the "
              "conventional scheme (paper, Conclusions).\n";
    };
    return def;
}

FigureDef
ablationWrongPathFigure()
{
    FigureDef def;
    def.name = "ablation_wrongpath";
    def.build = [] {
        // (conv, vp) per misprediction model per benchmark: fetch
        // stall, synthetic ALU/FP wrong path, and wrong path with
        // memory ops probing the cache (speculative pollution).
        auto appendCells = [](std::vector<GridCell> &cells,
                              const std::string &bench,
                              WrongPathMode mode, bool mem) {
            SimConfig config = experimentConfig();
            config.core.fetch.wrongPath = mode;
            config.core.fetch.wrongPathMem = mem;
            config.setScheme(RenameScheme::Conventional);
            cells.push_back({bench, config});
            config.setScheme(RenameScheme::VPAllocAtWriteback);
            cells.push_back({bench, config});
        };
        std::vector<GridCell> cells;
        for (const auto &name : benchmarkNames()) {
            appendCells(cells, name, WrongPathMode::Stall, false);
            appendCells(cells, name, WrongPathMode::Synthesize, false);
            appendCells(cells, name, WrongPathMode::Synthesize, true);
        }
        return cells;
    };
    def.render = [](const std::vector<GridCell> &,
                    const std::vector<SimResults> &results,
                    std::ostream &os) {
        printTableHeader(os,
                         "Ablation: VP speedup under three misprediction "
                         "models (64 regs, NRR=32)",
                         {"stall", "wrong-path", "wp-mem"});
        const auto &names = benchmarkNames();
        std::vector<double> stallAll, wpAll, wpMemAll;
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            double st =
                results[6 * bi + 1].ipc() / results[6 * bi].ipc();
            double wp =
                results[6 * bi + 3].ipc() / results[6 * bi + 2].ipc();
            double wpMem =
                results[6 * bi + 5].ipc() / results[6 * bi + 4].ipc();
            stallAll.push_back(st);
            wpAll.push_back(wp);
            wpMemAll.push_back(wpMem);
            printTableRow(os, names[bi], {st, wp, wpMem}, 3);
        }
        os << std::string(48, '-') << "\n";
        printTableRow(os, "geomean",
                      {geoMean(stallAll), geoMean(wpAll),
                       geoMean(wpMemAll)},
                      3);
        os << "\nexpectation: wrong-path fetch consumes decode-time "
              "rename registers in the conventional scheme only, so "
              "the VP advantage is equal or slightly larger on branchy "
              "codes; wrong-path memory ops additionally pollute the "
              "cache and occupy MSHRs for both schemes. All paper "
              "benches use the stall model for methodological "
              "fidelity.\n";
    };
    return def;
}

} // namespace vpr::bench
