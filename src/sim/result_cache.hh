/**
 * @file
 * Content-addressed per-cell result cache.
 *
 * Every grid cell is a pure function of (benchmark, config provenance,
 * seed, instruction scale), so its merged MetricsRecord can be cached
 * on disk and replayed byte-identically instead of re-simulated. The
 * cache key is a digest over exactly the provenance subset results_io
 * embeds in every exported record (seed included, execution-only knobs
 * excluded) plus the global instruction scale and the cache format
 * version — the same content-addressing discipline the warm-state
 * checkpoint cache uses (sim/checkpoint.hh), applied to whole-cell
 * *results* rather than warm state.
 *
 * Entries are small VPRZ-wrapped text records (common/io/zio.hh, kind
 * "result"): metric kinds, names, descriptions and exact values (reals
 * as raw IEEE-754 bits, so a replayed record renders byte-identically
 * to a cold run in every exporter). Every load re-verifies container
 * checksum, digest and benchmark; any damage is a miss — the cell is
 * re-simulated and the file repaired, never a wrong row.
 *
 * The cache is wired into the parallel experiment engine: any grid run
 * — bench binaries, vpr_sim sweeps, and the vpr_simd daemon — with
 * sim.result_cache.dir set serves previously computed cells from disk.
 * Cells with a custom stream factory are never cached (their workload
 * is not covered by the provenance digest).
 */

#ifndef VPR_SIM_RESULT_CACHE_HH
#define VPR_SIM_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/parallel_engine.hh"

namespace vpr
{

/** Bump to invalidate every cached result at the name level (the
 *  digest covers it) when the entry format changes. */
constexpr std::uint32_t kResultCacheFormatVersion = 1;

/**
 * Process-wide cache traffic counters (monotonic, thread-safe): the
 * engine's workers update them from any thread; the daemon's /status
 * page and the tests read them as before/after deltas.
 */
struct ResultCacheCounters
{
    std::atomic<std::uint64_t> hits{0};     ///< cells served from disk
    std::atomic<std::uint64_t> misses{0};   ///< cells simulated (no entry)
    std::atomic<std::uint64_t> corrupt{0};  ///< damaged entries discarded
    std::atomic<std::uint64_t> stores{0};   ///< entries written
};

ResultCacheCounters &resultCacheCounters();

/** The content digest of @p cell: provenance subset + benchmark +
 *  instruction scale + format version. Stable across processes. */
std::uint64_t resultCacheDigest(const GridCell &cell);

/** Cache-file path: `<dir>/<benchmark>-<hex16digest>.vprr`. */
std::string resultCachePath(const std::string &dir,
                            const std::string &benchmark,
                            std::uint64_t digest);

/**
 * Look up @p cell in the cache under @p dir. True and fills @p out on
 * a verified hit; false on a miss. A present-but-damaged entry (bad
 * container, checksum, digest or benchmark) counts as corrupt + miss —
 * the caller re-simulates and the re-save repairs the file.
 */
bool loadCachedResult(const std::string &dir, const GridCell &cell,
                      SimResults &out);

/** Publish @p results for @p cell (atomic write; racing same-digest
 *  writers are benign — identical content, last writer wins). Failures
 *  only warn: the cache is an optimization, never a correctness
 *  dependency. */
void storeCachedResult(const std::string &dir, const GridCell &cell,
                       const SimResults &results);

/** @name Cache directory garbage collection (LRU on file mtime)
 *  Shared by tools/cache_gc and the vpr_simd startup pass: enforce a
 *  byte budget over checkpoint (*.vprck) and result (*.vprr) cache
 *  files, evicting least-recently-touched files first. @{ */

/** One cache file considered by the collector. */
struct CacheFileInfo
{
    std::string path;
    std::uint64_t sizeBytes = 0;
    /** Seconds-resolution modification time, Unix epoch (LRU key). */
    std::int64_t mtime = 0;
};

/** The collector's decision over a set of directories. */
struct CacheGcPlan
{
    std::vector<CacheFileInfo> evict;  ///< oldest-first eviction list
    std::uint64_t totalBytes = 0;      ///< cache size before eviction
    std::uint64_t evictBytes = 0;      ///< bytes the plan frees
    std::size_t keptFiles = 0;         ///< files surviving the budget
};

/** Enumerate the cache files (*.vprck, *.vprr) of @p dirs. Missing or
 *  unreadable directories are skipped with a warning. */
std::vector<CacheFileInfo>
listCacheFiles(const std::vector<std::string> &dirs);

/** Plan evictions so the surviving files fit @p budgetBytes, evicting
 *  by ascending mtime (ties broken by path for determinism). */
CacheGcPlan planCacheGc(const std::vector<std::string> &dirs,
                        std::uint64_t budgetBytes);

/** Delete the planned files; returns how many were removed (a file
 *  vanishing concurrently is not an error). */
std::size_t applyCacheGc(const CacheGcPlan &plan);

/** Human-readable plan listing (one line per eviction + a summary),
 *  shared by cache_gc --dry-run and the vpr_simd startup pass. */
void printCacheGcPlan(std::ostream &os, const CacheGcPlan &plan,
                      std::uint64_t budgetBytes, bool dryRun);

/** Strictly parse a byte-size budget: a non-negative integer with an
 *  optional K/M/G/T suffix (powers of 1024, case-insensitive), e.g.
 *  "500M". False on malformed input or overflow. */
bool parseByteSize(const std::string &text, std::uint64_t &bytes);

/** @} */

} // namespace vpr

#endif // VPR_SIM_RESULT_CACHE_HH
