/**
 * @file
 * Ablation: counter-based early register release versus virtual-
 * physical registers.
 *
 * Section 3.1 of the paper identifies two waste factors of decode-time
 * allocation and positions virtual-physical registers as eliminating
 * the *first* (decode→write-back holding), citing Moudgill et al. and
 * Smith & Sohi for the *second* (dead value waiting for its
 * superseder's commit). This bench runs all four schemes so the two
 * factors can be compared head to head. Grid/table: bench/figures/.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("ablation_early_release", argc, argv);
}
