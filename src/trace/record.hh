/**
 * @file
 * Trace record definition.
 *
 * The simulator is trace driven, like the paper's ATOM-based framework.
 * A trace record is simply a StaticInst: the static fields plus the
 * dynamic information recorded by the tracer (effective address, branch
 * outcome and target).
 */

#ifndef VPR_TRACE_RECORD_HH
#define VPR_TRACE_RECORD_HH

#include "isa/static_inst.hh"

namespace vpr
{

/** One dynamic instruction as recorded in a trace. */
using TraceRecord = StaticInst;

} // namespace vpr

#endif // VPR_TRACE_RECORD_HH
