#include "sim/result_cache.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/io/zio.hh"
#include "common/logging.hh"
#include "common/state.hh"
#include "sim/experiment.hh"
#include "sim/params.hh"

namespace vpr
{

namespace
{

std::string
toHex16(std::uint64_t v)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    for (int shift = 60; shift >= 0; shift -= 4)
        out += hex[(v >> shift) & 0xf];
    return out;
}

/** Round-trip-exact text of the global instruction scale (the same
 *  rendering results_io records in the file metadata). */
std::string
scaleKeyText()
{
    std::ostringstream os;
    os.precision(17);
    os << instructionScale();
    return os.str();
}

std::uint64_t
bitsOf(double d)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

double
doubleOf(std::uint64_t bits)
{
    double d = 0.0;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

/** Strict whole-string hex parse; throws CkptError on junk. */
std::uint64_t
parseHex64(const std::string &text)
{
    if (text.empty() || text.size() > 16)
        throw CkptError("result-cache entry: bad hex field '" + text +
                        "'");
    std::uint64_t v = 0;
    for (char c : text) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            throw CkptError("result-cache entry: bad hex field '" +
                            text + "'");
        v = (v << 4) | static_cast<std::uint64_t>(digit);
    }
    return v;
}

/** One "key=value" header line; throws on mismatch of @p key. */
std::string
headerValue(std::istream &is, const std::string &key)
{
    std::string line;
    if (!std::getline(is, line) ||
        line.compare(0, key.size() + 1, key + "=") != 0)
        throw CkptError("result-cache entry: missing '" + key +
                        "' header");
    return line.substr(key.size() + 1);
}

/** Serialize one record: header + one tab-separated line per metric.
 *  Reals travel as raw IEEE-754 bits so a replayed record renders
 *  byte-identically in every exporter. */
std::string
encodeEntry(std::uint64_t digest, const std::string &benchmark,
            const SimResults &results)
{
    std::ostringstream os;
    os << "vpr-result v" << kResultCacheFormatVersion << "\n";
    os << "digest=" << toHex16(digest) << "\n";
    os << "benchmark=" << benchmark << "\n";
    os << "metrics=" << results.metrics.size() << "\n";
    for (const Metric &m : results.metrics.all()) {
        VPR_ASSERT(m.name().find('\t') == std::string::npos &&
                       m.desc().find('\t') == std::string::npos &&
                       m.desc().find('\n') == std::string::npos,
                   "metric unsafe for the result-cache encoding: '",
                   m.name(), "'");
        if (m.kind == Metric::Kind::UInt)
            os << "U\t" << m.name() << "\t" << m.uval;
        else
            os << "R\t" << m.name() << "\t" << toHex16(bitsOf(m.rval));
        os << "\t" << m.desc() << "\n";
    }
    return os.str();
}

/** Invert encodeEntry; throws CkptError on any malformed or
 *  mismatching field. */
SimResults
decodeEntry(const std::string &payload, std::uint64_t expectDigest,
            const std::string &expectBenchmark)
{
    std::istringstream is(payload);
    std::string line;
    if (!std::getline(is, line) ||
        line != "vpr-result v" +
                    std::to_string(kResultCacheFormatVersion))
        throw CkptError("result-cache entry: bad format line");
    if (parseHex64(headerValue(is, "digest")) != expectDigest)
        throw CkptError("result-cache entry: digest mismatch (entry "
                        "for a different configuration)");
    if (headerValue(is, "benchmark") != expectBenchmark)
        throw CkptError("result-cache entry: benchmark mismatch");
    std::uint64_t count = 0;
    if (!parseParamU64(headerValue(is, "metrics"), count))
        throw CkptError("result-cache entry: bad metric count");

    SimResults out;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!std::getline(is, line))
            throw CkptError("result-cache entry: truncated metric "
                            "list");
        std::size_t t1 = line.find('\t');
        std::size_t t2 =
            t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
        std::size_t t3 =
            t2 == std::string::npos ? t2 : line.find('\t', t2 + 1);
        if (line.size() < 2 || line[1] != '\t' ||
            t3 == std::string::npos)
            throw CkptError("result-cache entry: malformed metric "
                            "line");
        const std::string name = line.substr(t1 + 1, t2 - t1 - 1);
        const std::string value = line.substr(t2 + 1, t3 - t2 - 1);
        const std::string desc = line.substr(t3 + 1);
        if (line[0] == 'U') {
            std::uint64_t v = 0;
            if (!parseParamU64(value, v))
                throw CkptError("result-cache entry: bad counter "
                                "value '" + value + "'");
            out.metrics.setUInt(name, desc, v);
        } else if (line[0] == 'R') {
            out.metrics.setReal(name, desc, doubleOf(parseHex64(value)));
        } else {
            throw CkptError("result-cache entry: unknown metric kind");
        }
    }
    if (std::getline(is, line) && !line.empty())
        throw CkptError("result-cache entry: trailing garbage");
    if (out.metrics.size() != count)
        throw CkptError("result-cache entry: duplicate metric names");
    return out;
}

} // namespace

ResultCacheCounters &
resultCacheCounters()
{
    static ResultCacheCounters counters;
    return counters;
}

std::uint64_t
resultCacheDigest(const GridCell &cell)
{
    std::uint64_t h = fnv1a("result", 6);
    const std::uint64_t version = kResultCacheFormatVersion;
    h = fnv1a(&version, sizeof(version), h);
    // The instruction scale rescales skip/measure after provenance is
    // recorded, so it is part of the content key even though it is not
    // a parameter.
    const std::string scale = "scale=" + scaleKeyText() + "\n";
    h = fnv1a(scale.data(), scale.size(), h);
    for (const auto &[name, value] : configProvenance(cell.config)) {
        const std::string line = name + "=" + value + "\n";
        h = fnv1a(line.data(), line.size(), h);
    }
    h = fnv1a(cell.benchmark.data(), cell.benchmark.size(), h);
    return h;
}

std::string
resultCachePath(const std::string &dir, const std::string &benchmark,
                std::uint64_t digest)
{
    return dir + "/" + benchmark + "-" + toHex16(digest) + ".vprr";
}

bool
loadCachedResult(const std::string &dir, const GridCell &cell,
                 SimResults &out)
{
    const std::uint64_t digest = resultCacheDigest(cell);
    const std::string path =
        resultCachePath(dir, cell.benchmark, digest);
    std::string raw;
    if (!readFileBytes(path, raw)) {
        resultCacheCounters().misses.fetch_add(1);
        return false;
    }
    try {
        out = decodeEntry(vprzUnpack(raw, "result"), digest,
                          cell.benchmark);
    } catch (const CkptError &e) {
        VPR_WARN("discarding damaged result-cache entry '", path,
                 "': ", e.what(), " (re-simulating the cell)");
        resultCacheCounters().corrupt.fetch_add(1);
        resultCacheCounters().misses.fetch_add(1);
        return false;
    }
    resultCacheCounters().hits.fetch_add(1);
    return true;
}

void
storeCachedResult(const std::string &dir, const GridCell &cell,
                  const SimResults &results)
{
    const std::uint64_t digest = resultCacheDigest(cell);
    const std::string path =
        resultCachePath(dir, cell.benchmark, digest);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort
    const std::string entry =
        vprzPack(encodeEntry(digest, cell.benchmark, results), "result",
                 cell.config.resultCache.compress);
    if (!writeFileAtomic(path, entry)) {
        VPR_WARN("cannot write result-cache entry '", path,
                 "' (results are unaffected)");
        return;
    }
    resultCacheCounters().stores.fetch_add(1);
}

std::vector<CacheFileInfo>
listCacheFiles(const std::vector<std::string> &dirs)
{
    namespace fs = std::filesystem;
    // file_clock's epoch is implementation-defined (not 1970 on
    // libstdc++); rebase through "now" on both clocks so mtime reads
    // as Unix seconds. One shared offset keeps the LRU order exact.
    const auto fileNow = fs::file_time_type::clock::now();
    const auto sysNow = std::chrono::system_clock::now();
    std::vector<CacheFileInfo> files;
    for (const std::string &dir : dirs) {
        if (dir.empty())
            continue;
        std::error_code ec;
        fs::directory_iterator it(dir, ec);
        if (ec) {
            VPR_WARN("cache GC: cannot list '", dir, "': ",
                     ec.message());
            continue;
        }
        for (const fs::directory_entry &entry : it) {
            const std::string ext = entry.path().extension().string();
            if (ext != ".vprck" && ext != ".vprr")
                continue;
            if (!entry.is_regular_file(ec) || ec)
                continue;
            CacheFileInfo info;
            info.path = entry.path().string();
            info.sizeBytes = entry.file_size(ec);
            if (ec)
                continue;
            const auto mtime = entry.last_write_time(ec);
            if (ec)
                continue;
            info.mtime =
                std::chrono::duration_cast<std::chrono::seconds>(
                    (mtime - fileNow) + sysNow.time_since_epoch())
                    .count();
            files.push_back(std::move(info));
        }
    }
    return files;
}

CacheGcPlan
planCacheGc(const std::vector<std::string> &dirs,
            std::uint64_t budgetBytes)
{
    std::vector<CacheFileInfo> files = listCacheFiles(dirs);
    // Oldest first; path tiebreak keeps the plan deterministic when a
    // burst of grid cells lands inside one mtime granule.
    std::sort(files.begin(), files.end(),
              [](const CacheFileInfo &a, const CacheFileInfo &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    CacheGcPlan plan;
    for (const CacheFileInfo &f : files)
        plan.totalBytes += f.sizeBytes;

    std::uint64_t remaining = plan.totalBytes;
    for (const CacheFileInfo &f : files) {
        if (remaining <= budgetBytes) {
            ++plan.keptFiles;
            continue;
        }
        remaining -= f.sizeBytes;
        plan.evictBytes += f.sizeBytes;
        plan.evict.push_back(f);
    }
    return plan;
}

std::size_t
applyCacheGc(const CacheGcPlan &plan)
{
    std::size_t removed = 0;
    for (const CacheFileInfo &f : plan.evict) {
        std::error_code ec;
        if (std::filesystem::remove(f.path, ec) && !ec)
            ++removed;
    }
    return removed;
}

bool
parseByteSize(const std::string &text, std::uint64_t &bytes)
{
    if (text.empty())
        return false;
    std::uint64_t shift = 0;
    std::string digits = text;
    switch (text.back()) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      case 't': case 'T': shift = 40; break;
      default: break;
    }
    if (shift)
        digits.pop_back();
    std::uint64_t value = 0;
    if (!parseParamU64(digits, value))
        return false;
    if (shift && value > (std::numeric_limits<std::uint64_t>::max() >>
                          shift))
        return false;
    bytes = value << shift;
    return true;
}

void
printCacheGcPlan(std::ostream &os, const CacheGcPlan &plan,
                 std::uint64_t budgetBytes, bool dryRun)
{
    for (const CacheFileInfo &f : plan.evict)
        os << (dryRun ? "would evict " : "evict ") << f.path << " ("
           << f.sizeBytes << " bytes, mtime " << f.mtime << ")\n";
    os << "cache GC: " << plan.totalBytes << " bytes in "
       << (plan.keptFiles + plan.evict.size()) << " files, budget "
       << budgetBytes << " bytes: "
       << (dryRun ? "would evict " : "evicting ") << plan.evict.size()
       << " files (" << plan.evictBytes << " bytes), keeping "
       << plan.keptFiles << "\n";
}

} // namespace vpr
