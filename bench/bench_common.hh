/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries.
 *
 * Every bench regenerates one table or figure of the paper. Instruction
 * budgets are scaled-down from the paper's 50 M (see DESIGN.md §4) and
 * can be rescaled with VPR_INSTS_SCALE=<factor> or --scale=<factor>.
 * Any configuration parameter can be overridden by dotted name with
 * --set <key>=<value> / --config=<file.json> (see sim/params.hh and
 * vpr_sim --help-params); overrides apply to the base config every
 * figure grid is built from, so the axes a figure itself sweeps win.
 */

#ifndef VPR_BENCH_BENCH_COMMON_HH
#define VPR_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/params.hh"
#include "trace/kernels/kernels.hh"

namespace vpr::bench
{

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    /** --shard=i/N: run only the cells of slice i. */
    ShardSpec shard;
    /** --out=<path>: write one record per executed grid cell (CSV, or
     *  JSON when the path ends in .json). Empty = no export. */
    std::string outPath;
    /** --set / --config= / --dump-config, applied to the base config
     *  with the shared contract (config file first, then --set). */
    ConfigCliArgs config;
};

/** The options parseArgs() collected. */
const BenchOptions &benchOptions();

/**
 * Tuned SMARTS sampling protocol for one registered figure: the
 * sim.sampling.* values --sampling-preset=<figure> applies. Periods are
 * matched to the figure's measurement budget and grid size — wide grids
 * (fig4/fig5's seven NRR points per benchmark) take coarser periods,
 * single-table figures finer ones — keeping every preset's interval
 * count high enough for a meaningful ci95.
 */
struct SamplingPreset
{
    const char *figure;         ///< registered figure name
    std::uint64_t periodInsts;  ///< sim.sampling.period_insts
    std::uint64_t warmupInsts;  ///< sim.sampling.warmup_insts
    std::uint64_t detailedInsts;///< sim.sampling.detailed_insts
};

/** The full preset table — one entry per registered figure (a coverage
 *  test enforces the bijection against the figure registry). */
const std::vector<SamplingPreset> &samplingPresets();

/** Preset lookup by figure name; nullptr when unknown. */
const SamplingPreset *findSamplingPreset(const std::string &figure);

/** Parse --scale=<f> into VPR_INSTS_SCALE, --jobs=<n> into VPR_JOBS,
 *  and --shard=i/N / --out=<path> / --config=<path> / --set <k>=<v> /
 *  --dump-config into benchOptions(), before anything runs. */
void parseArgs(int argc, char **argv);

/** Append one "key=value" override as if passed via --set (used by
 *  tools that share the figure registry, e.g. merge_results). */
void addConfigOverride(const std::string &assignment);

/** The SimConfig all paper experiments start from: section 4.1 machine,
 *  trace-driven fetch stall on mispredictions, scaled-down budget,
 *  jobs from VPR_JOBS (see --jobs), with any --config/--set overrides
 *  applied last. */
SimConfig experimentConfig();

/** Geometric-mean helper used when summarizing speedup figures. */
double geoMean(const std::vector<double> &values);

} // namespace vpr::bench

#endif // VPR_BENCH_BENCH_COMMON_HH
