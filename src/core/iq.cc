#include "core/iq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vpr
{

void
InstQueue::insert(DynInst *inst)
{
    VPR_ASSERT(!full(), "insert into full IQ");
    if (list.empty() || list.back()->seq < inst->seq) {
        list.push_back(inst);
        return;
    }
    // Re-insertion after a write-back allocation squash: keep age order.
    auto it = std::lower_bound(
        list.begin(), list.end(), inst,
        [](const DynInst *a, const DynInst *b) { return a->seq < b->seq; });
    VPR_ASSERT(it == list.end() || (*it)->seq != inst->seq,
               "duplicate IQ entry sn:", inst->seq);
    list.insert(it, inst);
}

void
InstQueue::remove(DynInst *inst)
{
    auto it = std::lower_bound(
        list.begin(), list.end(), inst,
        [](const DynInst *a, const DynInst *b) { return a->seq < b->seq; });
    VPR_ASSERT(it != list.end() && *it == inst,
               "IQ remove: entry not present");
    list.erase(it);
}

void
InstQueue::removeAt(std::size_t i)
{
    VPR_ASSERT(i < list.size(), "IQ removeAt: index out of range");
    list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
}

void
InstQueue::squashYoungerThan(InstSeqNum seq)
{
    while (!list.empty() && list.back()->seq > seq)
        list.pop_back();
}

unsigned
InstQueue::wakeup(RegClass cls, std::uint16_t tag, std::uint16_t physReg)
{
    unsigned woken = 0;
    for (DynInst *inst : list) {
        for (auto &s : inst->src) {
            if (s.valid && !s.ready && s.cls == cls && s.tag == tag) {
                s.tag = physReg;
                s.ready = true;
                ++woken;
            }
        }
    }
    return woken;
}

} // namespace vpr
