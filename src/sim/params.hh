/**
 * @file
 * Reflective configuration-parameter API.
 *
 * Every config struct of the simulator (SimConfig, CoreConfig,
 * RenameConfig, FetchConfig, FuPoolConfig, CacheConfig) exposes its
 * fields as typed, documented parameters with stable dotted names
 * ("core.iq_size", "core.cache.miss_penalty", ...) through a
 * visitParams(ParamVisitor &) method — the configuration mirror of the
 * visitStats pattern the stats tree uses. On top of the visitor:
 *
 *  - ConfigRegistry binds the whole parameter tree of one SimConfig so
 *    any parameter can be read or set by dotted name ("--set key=value"
 *    in every binary);
 *  - dumpConfig/loadConfig serialize a full configuration as one
 *    dotted-key JSON document that round-trips byte-exactly
 *    ("--dump-config" / "--config=file.json");
 *  - configProvenance enumerates the provenance-relevant (name, value)
 *    pairs of a config — what results_io embeds in every exported
 *    record (execution-only knobs like "jobs" are excluded; "seed" is
 *    included for reproducibility);
 *  - paramReference/printParamHelp generate the parameter reference
 *    ("--help-params", checked in as docs/params.txt).
 *
 * A parameter is *derived* when setting it writes through to several
 * underlying parameters (e.g. "core.rename.regfile_size" applies the
 * paper's register-file sizing rule). Derived parameters are settable
 * and sweepable like any other but excluded from dumps and provenance,
 * which only ever contain the underlying values.
 */

#ifndef VPR_SIM_PARAMS_HH
#define VPR_SIM_PARAMS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vpr
{

struct SimConfig;

/** Strictly parse an unsigned decimal integer (whole string, no sign);
 *  false on malformed input or overflow. */
bool parseParamU64(const std::string &text, std::uint64_t &out);

/** One reflected parameter: metadata plus text accessors bound to a
 *  concrete config instance's field. */
struct ParamDef
{
    enum class Kind : std::uint8_t { UInt, Bool, Enum, Str };

    std::string name;  ///< stable dotted name
    std::string type;  ///< "u16", "u32", "u64", "bool", "enum{a|b}"
    std::string doc;   ///< one-line description
    Kind kind = Kind::UInt;
    /** UInt params: largest storable value (the field's width). */
    std::uint64_t maxValue = 0;
    /** Enum params: the canonical value names (set() also accepts the
     *  registered aliases; get() always returns a canonical name). */
    std::vector<std::string> enumNames;
    /** Execution-only knob (worker threads): settable but excluded from
     *  provenance — records must not depend on how a grid was run. */
    bool execOnly = false;
    /** Writes through to other parameters; excluded from dumps and
     *  provenance (only underlying values are serialized). */
    bool derived = false;

    std::function<std::string()> get;  ///< current value as exact text
    /** Parse and assign; false on malformed/out-of-range input. */
    std::function<bool(const std::string &)> set;
};

/**
 * Visitor over a config tree's parameters. visitParams implementations
 * call the typed registration helpers; concrete visitors receive one
 * fully bound ParamDef per parameter via onParam.
 */
class ParamVisitor
{
  public:
    virtual ~ParamVisitor() = default;

    /** Register an unsigned integral field. */
    template <typename T>
    void
    uintParam(const std::string &name, T &field, const std::string &doc,
              bool execOnly = false)
    {
        static_assert(std::is_unsigned_v<T> && !std::is_same_v<T, bool>,
                      "uintParam takes unsigned integral fields");
        ParamDef def;
        def.name = prefixed(name);
        def.kind = ParamDef::Kind::UInt;
        def.maxValue = std::numeric_limits<T>::max();
        def.type = "u" + std::to_string(sizeof(T) * 8);
        def.doc = doc;
        def.execOnly = execOnly;
        T *field_p = &field;
        def.get = [field_p] { return std::to_string(*field_p); };
        def.set = [field_p](const std::string &text) {
            std::uint64_t v = 0;
            if (!parseParamU64(text, v) ||
                v > std::numeric_limits<T>::max())
                return false;
            *field_p = static_cast<T>(v);
            return true;
        };
        onParam(std::move(def));
    }

    /** Register a boolean field ("0"/"1"; set also takes true/false). */
    void boolParam(const std::string &name, bool &field,
                   const std::string &doc, bool execOnly = false);

    /** Register a free-text field (paths and the like). Any value is
     *  accepted verbatim, so string parameters are execution-only by
     *  nature unless stated otherwise. */
    void strParam(const std::string &name, std::string &field,
                  const std::string &doc, bool execOnly = false);

    /**
     * Register an enum field. @p names maps text to values; the first
     * entry for a value is its canonical name (used by get()), further
     * entries for the same value are accepted aliases (e.g. "conv" for
     * "conventional").
     */
    template <typename E>
    void
    enumParam(const std::string &name, E &field,
              std::vector<std::pair<const char *, E>> names,
              const std::string &doc)
    {
        static_assert(std::is_enum_v<E>, "enumParam takes enum fields");
        ParamDef def;
        def.name = prefixed(name);
        def.kind = ParamDef::Kind::Enum;
        def.doc = doc;
        std::vector<E> seen;
        for (const auto &[text, value] : names) {
            bool dup = false;
            for (E s : seen)
                dup = dup || s == value;
            if (!dup) {
                seen.push_back(value);
                def.enumNames.push_back(text);
            }
        }
        def.type = "enum{";
        for (std::size_t i = 0; i < def.enumNames.size(); ++i)
            def.type += (i ? "|" : "") + def.enumNames[i];
        def.type += "}";
        E *field_p = &field;
        def.get = [field_p, names] {
            for (const auto &[text, value] : names)
                if (value == *field_p)
                    return std::string(text);
            return std::string("?");
        };
        def.set = [field_p, names](const std::string &text) {
            for (const auto &[candidate, value] : names) {
                if (text == candidate) {
                    *field_p = value;
                    return true;
                }
            }
            return false;
        };
        onParam(std::move(def));
    }

    /** Register a derived (write-through) numeric parameter. @p get
     *  returns the representative underlying value; @p set applies the
     *  sizing rule. */
    void derivedUInt(const std::string &name, const std::string &doc,
                     std::uint64_t maxValue,
                     std::function<std::string()> get,
                     std::function<bool(std::uint64_t)> set);

    /** Scoped dotted prefix: pushGroup("core") makes subsequent names
     *  "core.<name>" until the matching popGroup. @{ */
    void pushGroup(const std::string &group);
    void popGroup();
    /** @} */

  protected:
    /** Receive one bound parameter. */
    virtual void onParam(ParamDef def) = 0;

  private:
    std::string prefixed(const std::string &name) const;

    std::string prefix;
};

/**
 * The dotted-name registry over one SimConfig instance: every parameter
 * of the tree, addressable for get/set by name. The registry borrows
 * the config — it must not outlive it.
 */
class ConfigRegistry : public ParamVisitor
{
  public:
    explicit ConfigRegistry(SimConfig &config);

    /** Every parameter, in visitation (= documentation) order. */
    const std::vector<ParamDef> &params() const { return defs; }

    /** Lookup by dotted name; nullptr when unknown. */
    const ParamDef *find(const std::string &name) const;

    /** Set by dotted name; fatal()s on unknown name or bad value. */
    void set(const std::string &name, const std::string &value);

    /** Current value as round-trip-exact text; fatal()s on unknown. */
    std::string get(const std::string &name) const;

  private:
    void onParam(ParamDef def) override;

    std::vector<ParamDef> defs;
    std::unordered_map<std::string, std::size_t> index;
};

/** Apply one "key=value" assignment (the --set argument form) to
 *  @p config; fatal()s on a malformed assignment, unknown key, or bad
 *  value. */
void applyAssignment(SimConfig &config, const std::string &assignment);

/** Apply a list of assignments in order. */
void applyAssignments(SimConfig &config,
                      const std::vector<std::string> &assignments);

/**
 * The generic config-related command-line arguments every binary
 * understands, collected by parseConfigArg and applied by
 * applyConfigCli with one shared contract: the --config file loads
 * first, then the --set assignments in command-line order (--set wins).
 */
struct ConfigCliArgs
{
    std::string configPath;              ///< --config=<file.json>
    std::vector<std::string> assignments;  ///< --set <k>=<v>, in order
    bool dumpConfig = false;             ///< --dump-config
};

/** Recognize one of --set <k>=<v>, --set=<k>=<v>, --config=<file>,
 *  --dump-config at argv[i]; consumes a second argv slot for the
 *  two-token --set form. @return true when the argument was taken. */
bool parseConfigArg(int argc, char **argv, int &i, ConfigCliArgs &args);

/** Apply @p args to @p config: config file first, then assignments. */
void applyConfigCli(SimConfig &config, const ConfigCliArgs &args);

/**
 * Write @p config as a JSON document of dotted keys to string values,
 * one parameter per line in registry order. Derived parameters are
 * skipped (their underlying values carry the information) and so are
 * execution-only knobs like jobs (a config file describes the machine,
 * not how a grid is run — loading one never clobbers --jobs).
 * loadConfig inverts it: dump -> load -> dump is byte-identical.
 */
void dumpConfig(std::ostream &os, const SimConfig &config);

/** Parse a dumpConfig document and apply every assignment; @p name is
 *  used in error messages. fatal()s on malformed input. */
void loadConfig(SimConfig &config, std::istream &is,
                const std::string &name);

/** loadConfig from a file path; fatal()s if unreadable. */
void loadConfigFile(SimConfig &config, const std::string &path);

/**
 * The provenance-relevant (dotted name, exact value text) pairs of
 * @p config, in registry order: every value parameter except
 * execution-only knobs. This is what results_io embeds in every
 * exported record.
 */
std::vector<std::pair<std::string, std::string>>
configProvenance(const SimConfig &config);

/** Static description of one parameter for reference docs. */
struct ParamInfo
{
    std::string name;
    std::string type;
    std::string doc;
    std::string defaultText;  ///< value in a default-constructed SimConfig
    bool execOnly = false;
    bool derived = false;
};

/** Every parameter with its default value (from SimConfig{}), in
 *  registry order. */
std::vector<ParamInfo> paramReference();

/** Print the generated parameter reference (--help-params; the
 *  checked-in docs/params.txt is this output verbatim). */
void printParamHelp(std::ostream &os);

} // namespace vpr

#endif // VPR_SIM_PARAMS_HH
