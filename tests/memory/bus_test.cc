/** @file Unit tests for the L1-L2 bus occupancy model. */

#include <gtest/gtest.h>

#include "memory/bus.hh"

namespace vpr
{
namespace
{

TEST(Bus, FirstTransferStartsImmediately)
{
    Bus bus(4);
    EXPECT_EQ(bus.acquire(10), 10u);
    EXPECT_EQ(bus.nextFreeCycle(), 14u);
}

TEST(Bus, BackToBackTransfersSerialize)
{
    Bus bus(4);
    EXPECT_EQ(bus.acquire(10), 10u);
    EXPECT_EQ(bus.acquire(10), 14u);
    EXPECT_EQ(bus.acquire(10), 18u);
}

TEST(Bus, IdleGapResetsQueue)
{
    Bus bus(4);
    bus.acquire(0);
    EXPECT_EQ(bus.acquire(100), 100u);
}

TEST(Bus, QueueingCyclesAccumulated)
{
    Bus bus(4);
    bus.acquire(0);   // 0-3
    bus.acquire(0);   // waits 4
    bus.acquire(2);   // starts at 8, waited 6
    EXPECT_EQ(bus.queueingCycles(), 10u);
    EXPECT_EQ(bus.transfers(), 3u);
}

TEST(Bus, PaperOccupancyDefault)
{
    // 32-byte line over a 64-bit bus = 4 cycles (paper section 4.1).
    Bus bus;
    EXPECT_EQ(bus.occupancy(), 4u);
}

TEST(Bus, ResetClears)
{
    Bus bus(4);
    bus.acquire(5);
    bus.reset();
    EXPECT_EQ(bus.nextFreeCycle(), 0u);
    EXPECT_EQ(bus.transfers(), 0u);
    EXPECT_EQ(bus.queueingCycles(), 0u);
}

TEST(BusDeath, ZeroOccupancyPanics)
{
    EXPECT_DEATH(Bus(0), "positive");
}

} // namespace
} // namespace vpr
