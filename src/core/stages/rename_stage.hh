/**
 * @file
 * Rename stage: drains the fetch buffer into ROB/IQ/LSQ through the
 * RenameManager, stalling on full structures or an empty free list.
 */

#ifndef VPR_CORE_STAGES_RENAME_STAGE_HH
#define VPR_CORE_STAGES_RENAME_STAGE_HH

#include "core/stages/latches.hh"
#include "core/stages/pipeline_state.hh"
#include "core/stages/stage.hh"

namespace vpr
{

/** The rename/dispatch stage. */
class RenameStage : public Stage
{
  public:
    RenameStage(PipelineState &state, FetchBufferPort &fetchBuffer)
        : s(state), fetched(fetchBuffer)
    {}

    const char *name() const override { return "rename"; }

    void tick() override;

    void
    squash(InstSeqNum) override
    {
        // Rename holds no instruction state between cycles; the fetch
        // buffer (its input latch) is flushed by the redirect port.
    }

    void
    resetStats() override
    {
        base = Counters{};
        base.stallReg = n.stallReg;
        base.stallRob = n.stallRob;
        base.stallIq = n.stallIq;
        base.stallLsq = n.stallLsq;
    }

    /** Interval counters since the last resetStats. @{ */
    std::uint64_t stallRegDelta() const { return n.stallReg - base.stallReg; }
    std::uint64_t stallRobDelta() const { return n.stallRob - base.stallRob; }
    std::uint64_t stallIqDelta() const { return n.stallIq - base.stallIq; }
    std::uint64_t stallLsqDelta() const { return n.stallLsq - base.stallLsq; }
    /** @} */

  private:
    struct Counters
    {
        std::uint64_t stallReg = 0;
        std::uint64_t stallRob = 0;
        std::uint64_t stallIq = 0;
        std::uint64_t stallLsq = 0;
    };

    PipelineState &s;
    FetchBufferPort &fetched;
    Counters n;
    Counters base;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_RENAME_STAGE_HH
