/**
 * @file
 * Ablation: misprediction modelling — fetch stall (the paper's
 * trace-driven methodology) versus synthetic wrong-path fetch, with and
 * without wrong-path memory operations.
 *
 * Trace-driven simulators cannot follow the actual wrong path. The
 * paper's framework (like most of its era) stalls fetch at a detected
 * misprediction. Our fetch unit can instead synthesize wrong-path
 * instructions that occupy rename registers, queue slots and functional
 * units until the branch resolves — and, with wrongPathMem, loads and
 * stores that probe the cache and LSQ (speculative pollution) — closer
 * to real hardware for a register-pressure study. This bench
 * quantifies the differences. Grid/table: bench/figures/.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("ablation_wrongpath", argc, argv);
}
