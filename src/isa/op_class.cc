#include "isa/op_class.hh"

#include "common/logging.hh"

namespace vpr
{

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "intalu";
      case OpClass::IntMult: return "intmult";
      case OpClass::IntDiv: return "intdiv";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::FpAdd: return "fpadd";
      case OpClass::FpMult: return "fpmult";
      case OpClass::FpDiv: return "fpdiv";
      case OpClass::FpSqrt: return "fpsqrt";
      case OpClass::Branch: return "branch";
      case OpClass::Nop: return "nop";
      default: VPR_PANIC("bad op class");
    }
}

const char *
fuTypeName(FUType fu)
{
    switch (fu) {
      case FUType::SimpleInt: return "SimpleInt";
      case FUType::ComplexInt: return "ComplexInt";
      case FUType::EffAddr: return "EffAddr";
      case FUType::SimpleFp: return "SimpleFp";
      case FUType::FpMul: return "FpMul";
      case FUType::FpDivSqrt: return "FpDivSqrt";
      case FUType::None: return "None";
      default: VPR_PANIC("bad FU type");
    }
}

FUType
fuTypeFor(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Branch:
        return FUType::SimpleInt;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FUType::ComplexInt;
      case OpClass::Load:
      case OpClass::Store:
        return FUType::EffAddr;
      case OpClass::FpAdd:
        return FUType::SimpleFp;
      case OpClass::FpMult:
        return FUType::FpMul;
      case OpClass::FpDiv:
      case OpClass::FpSqrt:
        return FUType::FpDivSqrt;
      case OpClass::Nop:
        return FUType::None;
      default:
        VPR_PANIC("bad op class");
    }
}

unsigned
opLatency(OpClass op)
{
    // Table 1 of the paper.
    switch (op) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMult: return 9;
      case OpClass::IntDiv: return 67;
      case OpClass::Load: return 1;    // address generation
      case OpClass::Store: return 1;   // address generation
      case OpClass::FpAdd: return 4;
      case OpClass::FpMult: return 4;
      case OpClass::FpDiv: return 16;
      case OpClass::FpSqrt: return 16;
      case OpClass::Branch: return 1;
      case OpClass::Nop: return 1;
      default: VPR_PANIC("bad op class");
    }
}

bool
opUnpipelined(OpClass op)
{
    // "Functional units are fully pipelined except for integer and FP
    // division" (paper, section 4.1). Square root shares the divider.
    return op == OpClass::IntDiv || op == OpClass::FpDiv ||
           op == OpClass::FpSqrt;
}

} // namespace vpr
