#include "rename/early_release.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace vpr
{

EarlyReleaseRename::EarlyReleaseRename(const RenameConfig &config)
    : ConventionalRename(config)
{
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        state[c].assign(cfg.numPhysRegs, RegState{});
        // Architected values exist already.
        for (std::uint16_t i = 0; i < kNumLogicalRegs; ++i)
            state[c][i].written = true;
    }
}

void
EarlyReleaseRename::reinit()
{
    ConventionalRename::reinit();
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        state[c].assign(cfg.numPhysRegs, RegState{});
        for (std::uint16_t i = 0; i < kNumLogicalRegs; ++i)
            state[c][i].written = true;
    }
    owedFrees.clear();
    nEarlyReleases = 0;
}

void
EarlyReleaseRename::maybeRelease(RegClass cls, PhysRegId reg, Cycle now)
{
    RegState &st = state[classIdx(cls)][reg];
    if (st.written && st.superseded && st.pendingReaders == 0 &&
        !st.earlyFreed) {
        st.earlyFreed = true;
        owedFrees.insert(st.supersederSeq);
        ++nEarlyReleases;
        freeReg(cls, reg, now);
    }
}

void
EarlyReleaseRename::renameInst(DynInst &inst, Cycle now)
{
    ConventionalRename::renameInst(inst, now);

    // Count this instruction as a pending reader of each source.
    for (const auto &s : inst.src) {
        if (s.valid)
            ++state[classIdx(s.cls)][s.tag].pendingReaders;
    }

    if (inst.hasDest()) {
        RegClass cls = inst.destClass();
        // Fresh register: clean state.
        state[classIdx(cls)][inst.physReg] = RegState{};
        // The previous mapping is now superseded; it may already be
        // releasable (value written, no readers left).
        PhysRegId prev = static_cast<PhysRegId>(inst.prevTag);
        state[classIdx(cls)][prev].superseded = true;
        state[classIdx(cls)][prev].supersederSeq = inst.seq();
        maybeRelease(cls, prev, now);
    }
}

bool
EarlyReleaseRename::tryIssue(DynInst &inst, Cycle now)
{
    // The register-file read happens at issue: drop the reader counts.
    for (const auto &s : inst.src) {
        if (!s.valid)
            continue;
        RegState &st = state[classIdx(s.cls)][s.tag];
        VPR_ASSERT(st.pendingReaders > 0, "reader underflow on reg ",
                   s.tag);
        --st.pendingReaders;
        maybeRelease(s.cls, static_cast<PhysRegId>(s.tag), now);
    }
    return true;
}

CompleteResult
EarlyReleaseRename::complete(DynInst &inst, Cycle now)
{
    auto res = ConventionalRename::complete(inst, now);
    if (inst.hasDest()) {
        RegClass cls = inst.destClass();
        state[classIdx(cls)][inst.physReg].written = true;
        maybeRelease(cls, inst.physReg, now);
    }
    return res;
}

void
EarlyReleaseRename::commitInst(DynInst &inst, Cycle now)
{
    if (!inst.hasDest())
        return;
    if (owedFrees.erase(inst.seq())) {
        // The previous mapping was already released by the counter
        // mechanism (and may even have been reallocated since).
        return;
    }
    ConventionalRename::commitInst(inst, now);
}

void
EarlyReleaseRename::squashInst(DynInst &inst, Cycle now)
{
    // Un-count readers that have not issued (issued ones already read).
    if (inst.phase() == InstPhase::Renamed) {
        for (const auto &s : inst.src) {
            if (!s.valid)
                continue;
            RegState &st = state[classIdx(s.cls)][s.tag];
            VPR_ASSERT(st.pendingReaders > 0,
                       "squash reader underflow on reg ", s.tag);
            --st.pendingReaders;
        }
    }
    if (inst.hasDest()) {
        RegClass cls = inst.destClass();
        PhysRegId prev = static_cast<PhysRegId>(inst.prevTag);
        RegState &st = state[classIdx(cls)][prev];
        VPR_ASSERT(owedFrees.count(inst.seq()) == 0,
                   "early release is incompatible with squashing a "
                   "superseder; run with WrongPathMode::Stall "
                   "(see early_release.hh)");
        if (st.supersederSeq == inst.seq()) {
            st.superseded = false;
            st.supersederSeq = kNoSeqNum;
        }
        state[classIdx(cls)][inst.physReg] = RegState{};
    }
    ConventionalRename::squashInst(inst, now);
}

void
EarlyReleaseRename::checkInvariants() const
{
    ConventionalRename::checkInvariants();
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        for (std::uint16_t l = 0; l < kNumLogicalRegs; ++l) {
            PhysRegId p = mapTable[c][l];
            VPR_ASSERT(!state[c][p].earlyFreed,
                       "mapped register ", p, " marked early-freed");
            VPR_ASSERT(!state[c][p].superseded,
                       "current mapping ", p, " marked superseded");
        }
    }
}

void
EarlyReleaseRename::visitState(StateVisitor &v)
{
    ConventionalRename::visitState(v);
    v.section("rename.er");
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        std::uint64_t n = state[c].size();
        v.value(n);
        if (v.loading() && n != state[c].size())
            throw CkptError("early-release table size mismatch");
        for (RegState &st : state[c]) {
            v.value(st.pendingReaders);
            v.value(st.written);
            v.value(st.superseded);
            v.value(st.earlyFreed);
            v.value(st.supersederSeq);
        }
    }
    // The set is empty at a drained point; serialize it sorted anyway so
    // the encoding is canonical and independent of hashing order.
    std::vector<InstSeqNum> owed(owedFrees.begin(), owedFrees.end());
    std::sort(owed.begin(), owed.end());
    v.dynVec(owed);
    if (v.loading())
        owedFrees = std::unordered_set<InstSeqNum>(owed.begin(),
                                                   owed.end());
    v.value(nEarlyReleases);
}

} // namespace vpr
