/**
 * @file
 * LoopTrace: a procedural trace generator.
 *
 * A kernel is a small control-flow graph of basic blocks. Each block is
 * a list of instruction templates followed by an optional branch with
 * either counted-loop or Bernoulli behaviour. Memory operands draw their
 * effective addresses from named memory streams (strided, random or
 * pointer-chase). The generator replays this graph forever, producing an
 * unbounded, deterministic dynamic instruction stream — our substitute
 * for the paper's ATOM-generated SPEC95 traces (see DESIGN.md §4).
 */

#ifndef VPR_TRACE_LOOP_TRACE_HH
#define VPR_TRACE_LOOP_TRACE_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "trace/record.hh"
#include "trace/stream.hh"

namespace vpr
{

/** How a memory stream generates successive effective addresses. */
struct MemStreamDesc
{
    enum class Kind
    {
        Stride,       ///< base, base+stride, base+2*stride, ... mod region
        Random,       ///< uniform random element inside the region
        PointerChase  ///< random like Random; dependence comes from regs
    };

    Kind kind = Kind::Stride;
    Addr base = 0;            ///< starting byte address
    std::int64_t stride = 8;  ///< bytes between accesses (Stride only)
    std::uint64_t region = 1 << 20; ///< working-set size in bytes
    std::uint8_t elemSize = 8;      ///< access size / alignment
};

/** One instruction position inside a block. */
struct InstTemplate
{
    OpClass op = OpClass::Nop;
    RegId dest;
    RegId src0;
    RegId src1;
    int memStream = -1;  ///< index into KernelDesc::streams for mem ops

    /** Helpers for concise kernel descriptions. @{ */
    static InstTemplate compute(OpClass op, RegId d, RegId s0,
                                RegId s1 = RegId::none());
    static InstTemplate loadFrom(int stream, RegId d, RegId base);
    static InstTemplate storeTo(int stream, RegId data, RegId base);
    /** @} */
};

/** Terminating branch of a block. */
struct BranchDesc
{
    enum class Kind
    {
        None,      ///< fall through without a branch instruction
        Loop,      ///< taken (tripCount-1) times, then falls through
        Bernoulli  ///< taken with fixed probability each execution
    };

    Kind kind = Kind::None;
    RegId src;                   ///< condition register
    unsigned tripCount = 1;      ///< Loop kind
    unsigned takenPermille = 500; ///< Bernoulli kind
    int takenTarget = 0;         ///< block index when taken
    int fallThrough = 0;         ///< block index when not taken
};

/** A basic block: instruction templates plus the closing branch. */
struct BlockDesc
{
    std::vector<InstTemplate> insts;
    BranchDesc branch;
};

/** A complete synthetic kernel. */
struct KernelDesc
{
    std::string name;
    std::vector<MemStreamDesc> streams;
    std::vector<BlockDesc> blocks;
    std::uint64_t seed = 1;
    Addr pcBase = 0x10000;

    /** Sanity-check block/stream indices; panics on malformed graphs. */
    void validate() const;
};

/**
 * The generator: walks the kernel CFG and materializes TraceRecords.
 * Deterministic per (desc, seed); reset() restores the initial state.
 */
class LoopTraceStream : public TraceStream
{
  public:
    explicit LoopTraceStream(KernelDesc desc);

    std::optional<TraceRecord> next() override;
    std::size_t nextBatch(TraceRecord *out, std::size_t max) override;
    void reset() override;

    /** "loop:<kernel>:<seed>" — (desc, seed) fully determines the
     *  sequence, which makes generated streams checkpointable. */
    std::string identity() const override;

    /** Position = RNG state + CFG cursor + per-stream/block counters;
     *  blockPc/geom are derived from desc and never travel. */
    void visitState(StateVisitor &v) override;

    const KernelDesc &kernel() const { return desc; }

  private:
    /** The generator step behind next()/nextBatch: write the next
     *  record into @p rec, or return false at end of trace. */
    bool produce(TraceRecord &rec);

    /** Materialize the effective address for a template. */
    Addr nextAddr(int streamIdx);

    /** PC of instruction @p idx of block @p blk (branch is last). */
    Addr pcOf(std::size_t blk, std::size_t idx) const;

    /** Per-stream constants hoisted out of nextAddr. When region and
     *  element size are powers of two (every shipped kernel) the modulo
     *  and alignment reduce to masks — `x % 2^k == x & (2^k - 1)` for
     *  unsigned x — which keeps strided address generation free of
     *  64-bit divisions on the fast-forward path. */
    struct StreamGeom
    {
        std::uint64_t elems;      ///< region / elemSize
        std::uint64_t regionMask; ///< region - 1, or 0 if not pow2
        std::uint64_t alignMask;  ///< ~(elemSize - 1), or 0 if not pow2
    };

    KernelDesc desc;
    Random rng;
    std::size_t curBlock = 0;
    std::size_t curInst = 0;
    std::vector<std::uint64_t> streamPos;  ///< per-stream access counter
    std::vector<unsigned> loopCount;       ///< per-block loop iteration
    std::vector<Addr> blockPc;             ///< per-block starting PC
    std::vector<StreamGeom> geom;          ///< per-stream constants
};

} // namespace vpr

#endif // VPR_TRACE_LOOP_TRACE_HH
