/**
 * @file
 * Packed hot-state pool and ROB slot reuse.
 *
 * The lazy-staleness idiom lets scheduler records (ready entries,
 * wait-list waiters, completion events) outlive their instruction: a
 * record is detected stale because the (seq, slot) pair it captured no
 * longer matches the pool. That only holds if Rob::allocate() fully
 * reinitialises the hot row when a recovery walk hands a slot to a
 * younger instruction — these tests stress exactly that path.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/rob.hh"

namespace vpr
{
namespace
{

/** Dirty every hot field of @p d as an in-flight instruction would. */
void
dirtyAll(DynInst &d, InstSeqNum seq, Cycle base)
{
    d.setSeq(seq);
    d.setPhase(InstPhase::Issued);
    d.setLastHold(LoadHold::UnknownAddress);
    d.setInIq(true);
    d.setInReadyQ(true);
    d.setFetchCycle(base);
    d.setRenameCycle(base + 1);
    d.setIssueCycle(base + 4);
    d.setCompleteCycle(base + 9);
    d.setCommitCycle(base + 11);
}

TEST(InstHotPool, ResetReinitialisesEveryField)
{
    InstHotPool pool(4);
    DynInst d;
    pool.reset(2);
    d.bindHot(&pool, 2);
    dirtyAll(d, 77, 100);

    pool.reset(2);
    EXPECT_EQ(pool.seqOf(2), 0u);
    EXPECT_EQ(pool.phaseOf(2), InstPhase::Renamed);
    EXPECT_EQ(pool.lastHoldOf(2), LoadHold::Ready);
    EXPECT_FALSE(pool.isInIq(2));
    EXPECT_FALSE(pool.isInReadyQ(2));
    EXPECT_EQ(pool.fetchCycleOf(2), kNoCycle);
    EXPECT_EQ(pool.renameCycleOf(2), kNoCycle);
    EXPECT_EQ(pool.issueCycleOf(2), kNoCycle);
    EXPECT_EQ(pool.completeCycleOf(2), kNoCycle);
    EXPECT_EQ(pool.commitCycleOf(2), kNoCycle);
}

TEST(InstHotPool, LivenessDistinguishesReusedSlots)
{
    InstHotPool pool(2);
    pool.reset(0);
    pool.setSeq(0, 10);
    pool.setPhase(0, InstPhase::Issued);
    EXPECT_TRUE(pool.live(0, 10));
    EXPECT_TRUE(pool.liveInPhase(0, 10, InstPhase::Issued));
    EXPECT_FALSE(pool.liveInPhase(0, 10, InstPhase::Completed));

    // The slot is squashed and reused by sn:11.
    pool.reset(0);
    EXPECT_FALSE(pool.live(0, 10)) << "reset must invalidate old seq";
    pool.setSeq(0, 11);
    EXPECT_FALSE(pool.live(0, 10));
    EXPECT_TRUE(pool.live(0, 11));
}

TEST(RobSlotReuse, AllocateResetsTheRowAfterSquash)
{
    InstHotPool pool(4);
    Rob rob(4, pool);

    // Fill the ROB and dirty every row.
    for (InstSeqNum sn = 1; sn <= 4; ++sn) {
        DynInst *d = rob.allocate();
        dirtyAll(*d, sn, sn * 10);
    }
    ASSERT_TRUE(rob.full());
    // The next allocation after the walk lands on sn:3's slot.
    HotIdx reused = rob.slotAt(2);

    // Recovery walk squashes the two youngest. The rows are NOT reset
    // here — staleness comes from reset-on-allocate, so until reuse a
    // captured (seq, slot) record still matches.
    rob.squashTail();
    rob.squashTail();
    EXPECT_EQ(rob.size(), 2u);
    EXPECT_TRUE(pool.live(reused, 3));

    // A younger instruction reuses the freed slot: completely fresh row.
    DynInst *d = rob.allocate();
    EXPECT_EQ(d->slot, reused);
    EXPECT_EQ(d->seq(), 0u);
    EXPECT_EQ(d->phase(), InstPhase::Renamed);
    EXPECT_FALSE(d->inIq());
    EXPECT_FALSE(d->inReadyQ());
    EXPECT_EQ(d->lastHold(), LoadHold::Ready);
    EXPECT_EQ(d->issueCycle(), kNoCycle);
    d->setSeq(5);
    EXPECT_TRUE(pool.live(reused, 5));
    EXPECT_FALSE(pool.live(reused, 3)) << "old records stay stale";
}

TEST(RobSlotReuse, CommitSquashChurnKeepsRowsFresh)
{
    // Randomized churn: allocate/commit/squash for thousands of steps
    // over a small ROB so every slot is reused many times, checking on
    // each allocation that the row is fully reinitialised and that
    // records captured by the previous tenant read as stale.
    InstHotPool pool(8);
    Rob rob(8, pool);
    std::mt19937 rng(1234);
    InstSeqNum nextSeq = 0;

    for (int step = 0; step < 20000; ++step) {
        unsigned action = rng() % 3;
        if (action == 0 && !rob.full()) {
            DynInst *d = rob.allocate();
            // The freshly bound row must be indistinguishable from a
            // never-used one, whatever its previous tenant did.
            ASSERT_EQ(d->seq(), 0u) << "step " << step;
            ASSERT_EQ(d->phase(), InstPhase::Renamed);
            ASSERT_FALSE(d->inIq());
            ASSERT_FALSE(d->inReadyQ());
            ASSERT_EQ(d->lastHold(), LoadHold::Ready);
            ASSERT_EQ(d->fetchCycle(), kNoCycle);
            ASSERT_EQ(d->commitCycle(), kNoCycle);
            dirtyAll(*d, ++nextSeq, static_cast<Cycle>(step));
        } else if (action == 1 && !rob.empty()) {
            InstSeqNum gone = rob.head().seq();
            HotIdx slot = rob.headSlot();
            rob.commitHead();
            // Until the slot is reallocated the record still matches —
            // staleness comes from reset-on-allocate, and commit-path
            // records are dropped eagerly, so nothing reads it.
            ASSERT_TRUE(pool.live(slot, gone));
        } else if (action == 2 && !rob.empty()) {
            InstSeqNum gone = rob.tail().seq();
            HotIdx slot = rob.slotAt(rob.size() - 1);
            rob.squashTail();
            // A stale completion event for sn:gone would re-check
            // live(slot, gone); it must miss once the slot is reused.
            if (!rob.full()) {
                DynInst *d = rob.allocate();
                ASSERT_FALSE(pool.live(slot, gone))
                    << "step " << step << " sn:" << gone;
                dirtyAll(*d, ++nextSeq, static_cast<Cycle>(step));
            }
        }
    }
}

} // namespace
} // namespace vpr
