/** @file Unit tests for the reorder buffer. */

#include <gtest/gtest.h>

#include "core/rob.hh"

namespace vpr
{
namespace
{

DynInst
alu(InstSeqNum seq)
{
    DynInst d;
    d.si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                           RegId::intReg(3));
    d.seq = seq;
    return d;
}

TEST(Rob, InsertAndHeadTail)
{
    Rob rob(4);
    rob.insert(alu(1));
    rob.insert(alu(2));
    EXPECT_EQ(rob.head().seq, 1u);
    EXPECT_EQ(rob.tail().seq, 2u);
    EXPECT_EQ(rob.size(), 2u);
}

TEST(Rob, PointersStableAcrossOtherOps)
{
    Rob rob(4);
    DynInst *a = rob.insert(alu(1));
    DynInst *b = rob.insert(alu(2));
    rob.insert(alu(3));
    EXPECT_EQ(a->seq, 1u);
    rob.commitHead();
    EXPECT_EQ(b->seq, 2u);
    EXPECT_EQ(&rob.head(), b);
}

TEST(Rob, CommitHeadAdvances)
{
    Rob rob(4);
    rob.insert(alu(1));
    rob.insert(alu(2));
    rob.commitHead();
    EXPECT_EQ(rob.head().seq, 2u);
}

TEST(Rob, SquashTailWalk)
{
    Rob rob(4);
    rob.insert(alu(1));
    rob.insert(alu(2));
    rob.insert(alu(3));
    // Paper-style recovery: pop from the newest down to the offender.
    while (!rob.empty() && rob.tail().seq > 1)
        rob.squashTail();
    EXPECT_EQ(rob.size(), 1u);
    EXPECT_EQ(rob.tail().seq, 1u);
}

TEST(Rob, FullWindow)
{
    Rob rob(2);
    rob.insert(alu(1));
    EXPECT_FALSE(rob.full());
    rob.insert(alu(2));
    EXPECT_TRUE(rob.full());
    rob.commitHead();
    EXPECT_FALSE(rob.full());
}

TEST(Rob, PaperWindowSizeDefaultUsable)
{
    // The paper's 128-entry reorder buffer.
    Rob rob(128);
    for (InstSeqNum i = 1; i <= 128; ++i)
        rob.insert(alu(i));
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.capacity(), 128u);
}

TEST(Rob, OccupancySampling)
{
    Rob rob(16);
    rob.insert(alu(1));
    rob.sampleOccupancy();
    rob.insert(alu(2));
    rob.sampleOccupancy();
    EXPECT_EQ(rob.occupancyStat().samples(), 2u);
    EXPECT_DOUBLE_EQ(rob.occupancyStat().mean(), 1.5);
}

TEST(Rob, AtIndexesFromOldest)
{
    Rob rob(4);
    rob.insert(alu(7));
    rob.insert(alu(8));
    rob.commitHead();
    rob.insert(alu(9));
    EXPECT_EQ(rob.at(0).seq, 8u);
    EXPECT_EQ(rob.at(1).seq, 9u);
}

} // namespace
} // namespace vpr
