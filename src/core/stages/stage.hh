/**
 * @file
 * The common interface of the pipeline stages.
 *
 * The core is a small graph of five stages (commit, complete, issue,
 * rename, fetch) ticked back to front once per cycle, so a value
 * produced this cycle is visible to the consumer stages that run later
 * in the same tick — the same idiom as gem5's TimeBuffer-connected
 * stages. Stages own their statistics as StatGroups registered into the
 * PipelineState stats tree (interval resets and exports run through the
 * tree, not through the stage interface) and communicate only through
 * the shared PipelineState structures (ROB/IQ/LSQ and friends) and the
 * explicit latch/port objects in latches.hh; no stage reaches into
 * another stage.
 */

#ifndef VPR_CORE_STAGES_STAGE_HH
#define VPR_CORE_STAGES_STAGE_HH

#include "common/types.hh"

namespace vpr
{

/** One pipeline stage. */
class Stage
{
  public:
    virtual ~Stage() = default;

    /** Stage name for diagnostics and ordering tests. */
    virtual const char *name() const = 0;

    /** Run the stage for the current cycle. */
    virtual void tick() = 0;

    /**
     * Branch recovery: discard stage-local state belonging to
     * instructions younger than @p youngestKept. The shared structures
     * (ROB/IQ/LSQ, rename maps) are recovered by
     * PipelineState::squashYoungerThan; this hook is only for latches
     * and buffers a stage owns privately.
     */
    virtual void squash(InstSeqNum youngestKept) = 0;
};

/**
 * Recovery entry point handed to the stage that detects mispredictions.
 * Implemented by the composition root (Core), which walks the shared
 * structures and then fans the squash out to every stage.
 */
class SquashCoordinator
{
  public:
    virtual ~SquashCoordinator() = default;

    /** Squash every instruction younger than @p youngestKept. */
    virtual void squashYoungerThan(InstSeqNum youngestKept) = 0;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_STAGE_HH
