#include "rename/pressure.hh"

#include "common/logging.hh"

namespace vpr
{

PressureTracker::PressureTracker(std::size_t numPhysRegs,
                                 stats::Distribution *lifetimeDist)
    : allocCycle(numPhysRegs, kNoCycle), lifetime(lifetimeDist)
{
}

void
PressureTracker::onAlloc(PhysRegId reg, Cycle now)
{
    VPR_ASSERT(reg < allocCycle.size(), "bad phys reg ", reg);
    VPR_ASSERT(allocCycle[reg] == kNoCycle, "double alloc of reg ", reg);
    allocCycle[reg] = now;
    ++nBusy;
    if (nBusy > peak)
        peak = nBusy;
}

void
PressureTracker::onFree(PhysRegId reg, Cycle now)
{
    VPR_ASSERT(reg < allocCycle.size(), "bad phys reg ", reg);
    VPR_ASSERT(allocCycle[reg] != kNoCycle, "free of unallocated reg ",
               reg);
    VPR_ASSERT(now >= allocCycle[reg], "free before alloc");
    holdCycles += now - allocCycle[reg];
    if (lifetime)
        lifetime->sample(now - allocCycle[reg]);
    allocCycle[reg] = kNoCycle;
    ++nFrees;
    VPR_ASSERT(nBusy > 0, "busy underflow");
    --nBusy;
}

void
PressureTracker::reset(Cycle now)
{
    // Restart the integration: registers currently held are treated as
    // if allocated at the reset point so warm-up does not pollute stats.
    for (auto &c : allocCycle)
        if (c != kNoCycle)
            c = now;
    holdCycles = 0;
    nFrees = 0;
    peak = nBusy;
}

} // namespace vpr
