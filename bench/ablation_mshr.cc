/**
 * @file
 * Ablation: MSHR count (lockup-free cache depth).
 *
 * The virtual-physical win on streaming FP codes comes from overlapping
 * more cache misses than 32 rename registers allow. That makes the
 * 8-entry MSHR file (paper §4.1) the complementary ceiling: this bench
 * sweeps it to show where the VP speedup saturates.
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    const std::vector<unsigned> mshrs = {2, 4, 8, 16, 32};
    std::vector<std::string> cols;
    for (auto m : mshrs)
        cols.push_back("MSHR=" + std::to_string(m));
    printTableHeader(std::cout,
                     "Ablation: VP speedup vs outstanding-miss limit "
                     "(64 regs, write-back alloc)",
                     cols);

    // Grid: (conv, vp) per (benchmark × MSHR count), run on the engine.
    const std::vector<std::string> names = {"swim", "mgrid", "apsi",
                                            "compress"};
    std::vector<GridCell> cells;
    for (const auto &name : names) {
        for (unsigned m : mshrs) {
            SimConfig config = experimentConfig();
            config.core.cache.numMshrs = m;
            config.setScheme(RenameScheme::Conventional);
            cells.push_back({name, config});
            config.setScheme(RenameScheme::VPAllocAtWriteback);
            cells.push_back({name, config});
        }
    }
    std::vector<SimResults> results =
        runGrid(cells, defaultJobs());

    for (std::size_t bi = 0; bi < names.size(); ++bi) {
        std::vector<double> row;
        for (std::size_t i = 0; i < mshrs.size(); ++i) {
            double conv = results[2 * (bi * mshrs.size() + i)].ipc();
            double vp = results[2 * (bi * mshrs.size() + i) + 1].ipc();
            row.push_back(vp / conv);
        }
        printTableRow(std::cout, names[bi], row, 3);
    }

    std::cout << "\nexpectation: with very few MSHRs both schemes are "
                 "pinned to the same miss ceiling (speedup -> 1); the "
                 "speedup grows with MSHRs until the 128-entry window "
                 "becomes the limit.\n";
    return 0;
}
