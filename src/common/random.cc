#include "common/random.hh"

// Random is header-only; this translation unit exists so the build file can
// list the module and future out-of-line additions have a home.
