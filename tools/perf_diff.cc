/**
 * @file
 * Compare two google-benchmark JSON exports: a checked-in baseline
 * (BENCH_<n>.json) against a fresh run.
 *
 * Matches benchmarks by name, compares real_time, and prints a delta
 * table. Rows regressing past the threshold get a WARNING; the exit
 * status stays 0 unless --gate is given, because shared-runner timings
 * are too noisy to gate CI on — the table in the job log and the
 * checked-in trajectory are the record.
 *
 *   perf_diff [options] <baseline.json> <current.json>
 *     --filter=<substr>    only rows whose name contains <substr>;
 *                          repeatable, a row matching any filter is
 *                          kept (default: BM_SimulatorEndToEnd; use
 *                          --filter= for everything)
 *     --threshold=<pct>    regression warning threshold (default 10)
 *     --gate               exit 1 if any row regresses past threshold
 *
 * Both files' context blocks are checked for the build flavour. The
 * bench binary records "vpr_build_type" (NDEBUG-derived — the library's
 * own "library_build_type" only describes how the distro built
 * libbenchmark and is "debug" on Debian even for release simulator
 * trees). A debug *baseline* is a hard error regardless of --gate:
 * every diff against it is meaningless, so there is nothing useful to
 * print (the BENCH_6/7/8.json incident — three baselines silently
 * recorded from a debug tree). A debug *current* file draws a warning,
 * and a failing exit under --gate.
 *
 * The parser is deliberately small: it scans the "benchmarks" array for
 * "name"/"real_time"/"time_unit" fields rather than pulling in a JSON
 * library. Aggregate rows (_mean/_median/_stddev/_cv) are kept; when a
 * benchmark was run with repetitions, only the _mean rows are compared.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

struct BenchRow
{
    std::string name;
    double realTime = 0.0;
    std::string unit;
};

/** Extract the JSON string value following `"key":` at/after @p pos. */
std::string
stringField(const std::string &text, std::size_t objAt, const char *key)
{
    std::string pat = std::string("\"") + key + "\":";
    std::size_t k = text.find(pat, objAt);
    if (k == std::string::npos)
        return "";
    std::size_t q1 = text.find('"', k + pat.size());
    if (q1 == std::string::npos)
        return "";
    std::size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos)
        return "";
    return text.substr(q1 + 1, q2 - q1 - 1);
}

/** Extract the numeric value following `"key":` at/after @p pos. */
double
numberField(const std::string &text, std::size_t objAt, const char *key)
{
    std::string pat = std::string("\"") + key + "\":";
    std::size_t k = text.find(pat, objAt);
    if (k == std::string::npos)
        return NAN;
    return std::strtod(text.c_str() + k + pat.size(), nullptr);
}

/**
 * The export's build flavour: "release", "debug", or "" (unknown).
 * Trusts "vpr_build_type" (written by the bench binary, NDEBUG-derived)
 * when present; falls back to the library's "library_build_type" for
 * exports that predate the custom context — which misclassifies
 * release simulator trees linked against a distro debug libbenchmark,
 * and that is deliberate: an old baseline that cannot prove it was a
 * release build must be re-recorded, not trusted.
 */
std::string
buildFlavour(const std::string &text)
{
    std::string t = stringField(text, 0, "vpr_build_type");
    if (t.empty())
        t = stringField(text, 0, "library_build_type");
    if (t.empty())
        return "";
    return t == "release" ? "release" : "debug";
}

/** All rows of the "benchmarks" array of one benchmark JSON export. */
std::vector<BenchRow>
parseBenchmarks(const std::string &path, std::string &flavour)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "perf_diff: cannot open " << path << "\n";
        std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    flavour = buildFlavour(text);

    std::vector<BenchRow> rows;
    std::size_t arr = text.find("\"benchmarks\":");
    if (arr == std::string::npos)
        return rows;
    // Each row object begins with its "name" field.
    for (std::size_t pos = text.find("\"name\":", arr);
         pos != std::string::npos;
         pos = text.find("\"name\":", pos + 1)) {
        BenchRow row;
        row.name = stringField(text, pos, "name");
        row.realTime = numberField(text, pos, "real_time");
        row.unit = stringField(text, pos, "time_unit");
        if (!row.name.empty() && !std::isnan(row.realTime))
            rows.push_back(row);
    }
    return rows;
}

const BenchRow *
findRow(const std::vector<BenchRow> &rows, const std::string &name)
{
    for (const BenchRow &r : rows)
        if (r.name == name)
            return &r;
    return nullptr;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> filters;
    bool matchAll = false;
    double threshold = 10.0;
    bool gate = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--filter=", 0) == 0) {
            std::string f = arg.substr(9);
            if (f.empty())
                matchAll = true;
            else
                filters.push_back(f);
        } else if (arg.rfind("--threshold=", 0) == 0) {
            threshold = std::strtod(arg.c_str() + 12, nullptr);
        } else if (arg == "--gate") {
            gate = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: perf_diff [--filter=SUBSTR]... "
                         "[--threshold=PCT] [--gate] "
                         "<baseline.json> <current.json>\n";
            return 0;
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2) {
        std::cerr << "perf_diff: need exactly two JSON files "
                     "(baseline, current)\n";
        return 2;
    }

    std::string baseFlavour, curFlavour;
    auto baseline = parseBenchmarks(files[0], baseFlavour);
    auto current = parseBenchmarks(files[1], curFlavour);

    // A debug baseline poisons every row of the table, so this is a
    // hard error even without --gate — refusing is the only output
    // that cannot mislead.
    if (baseFlavour == "debug") {
        std::cerr << "perf_diff: ERROR: baseline " << files[0]
                  << " was recorded from a debug build (or cannot "
                     "prove otherwise); timings from debug trees are "
                     "not comparable. Re-record it from a Release "
                     "tree with the perf-baseline target.\n";
        return 2;
    }
    if (curFlavour == "debug")
        std::cerr << "perf_diff: WARNING: " << files[1]
                  << " was recorded from a debug build; deltas below "
                     "overstate every cost. Rebuild in Release before "
                     "trusting (or gating on) this table.\n";
    const bool buildTypeOk = curFlavour != "debug";

    if (filters.empty() && !matchAll)
        filters.push_back("BM_SimulatorEndToEnd");
    auto matches = [&](const std::string &name) {
        if (matchAll)
            return true;
        for (const std::string &f : filters)
            if (name.find(f) != std::string::npos)
                return true;
        return false;
    };

    // Prefer _mean aggregates when present on the baseline side.
    bool hasMeans = false;
    for (const BenchRow &r : baseline)
        hasMeans = hasMeans || endsWith(r.name, "_mean");

    std::printf("%-48s %12s %12s %9s\n", "benchmark", "baseline",
                "current", "delta");
    int compared = 0, regressed = 0;
    for (const BenchRow &b : baseline) {
        if (!matches(b.name))
            continue;
        if (hasMeans && !endsWith(b.name, "_mean"))
            continue;
        const BenchRow *c = findRow(current, b.name);
        if (!c) {
            std::printf("%-48s %12.4g %12s %9s\n", b.name.c_str(),
                        b.realTime, "-", "gone");
            continue;
        }
        double delta = 100.0 * (c->realTime - b.realTime) / b.realTime;
        bool warn = delta > threshold;
        std::printf("%-48s %10.4g %s %10.4g %s %+8.1f%%%s\n",
                    b.name.c_str(), b.realTime, b.unit.c_str(),
                    c->realTime, c->unit.c_str(), delta,
                    warn ? "  WARNING: regression" : "");
        ++compared;
        if (warn)
            ++regressed;
    }

    if (compared == 0) {
        std::cerr << "perf_diff: no common benchmarks matched the "
                     "filter(s)\n";
        return 2;
    }
    if (regressed > 0) {
        std::cerr << "perf_diff: " << regressed << "/" << compared
                  << " benchmarks regressed more than " << threshold
                  << "% (timings on shared runners are noisy; see the "
                     "table)\n";
        return gate ? 1 : 0;
    }
    if (!buildTypeOk && gate) {
        std::cerr << "perf_diff: refusing to gate on non-release "
                     "timings\n";
        return 1;
    }
    std::cout << "perf_diff: " << compared
              << " benchmarks within threshold\n";
    return 0;
}
