/**
 * @file
 * Ablation: MSHR count (lockup-free cache depth).
 *
 * The virtual-physical win on streaming FP codes comes from overlapping
 * more cache misses than 32 rename registers allow. That makes the
 * 8-entry MSHR file (paper §4.1) the complementary ceiling: this bench
 * sweeps it to show where the VP speedup saturates.
 * Grid/table: bench/figures/.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("ablation_mshr", argc, argv);
}
