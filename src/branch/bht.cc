#include "branch/bht.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace vpr
{

BhtPredictor::BhtPredictor(std::size_t entries)
    : table(entries, 2), mask(entries - 1)
{
    VPR_ASSERT(isPowerOf2(entries), "BHT size must be a power of two");
}

bool
BhtPredictor::predict(Addr pc) const
{
    return table[index(pc)] >= 2;
}

void
BhtPredictor::update(Addr pc, bool taken)
{
    std::uint8_t &ctr = table[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

bool
BhtPredictor::predictAndUpdate(Addr pc, bool taken)
{
    bool pred = predict(pc);
    ++nLookups;
    if (pred != taken)
        ++nMispredicts;
    update(pc, taken);
    return pred == taken;
}

double
BhtPredictor::accuracy() const
{
    if (nLookups == 0)
        return 1.0;
    return 1.0 - static_cast<double>(nMispredicts) /
                     static_cast<double>(nLookups);
}

void
BhtPredictor::reset()
{
    table.assign(table.size(), 2);
    nLookups = 0;
    nMispredicts = 0;
}

} // namespace vpr
