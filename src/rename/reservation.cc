#include "rename/reservation.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vpr
{

ReservationTracker::ReservationTracker(unsigned nrr_) : nrr(nrr_)
{
    VPR_ASSERT(nrr >= 1, "NRR must be at least 1 to avoid deadlock");
}

void
ReservationTracker::onRename(InstSeqNum seq)
{
    VPR_ASSERT(entries.empty() || entries.back().seq < seq,
               "rename out of program order");
    entries.push_back({seq, false});
}

void
ReservationTracker::onAllocate(InstSeqNum seq)
{
    // Entries are age-ordered (rename is in program order), so the
    // instruction is found by binary search rather than a walk of the
    // whole in-flight window.
    auto it = std::lower_bound(entries.begin(), entries.end(), seq,
                               [](const Entry &e, InstSeqNum s) {
                                   return e.seq < s;
                               });
    if (it == entries.end() || it->seq != seq)
        VPR_PANIC("onAllocate: unknown instruction sn:", seq);
    VPR_ASSERT(!it->allocated, "double allocation for sn:", seq);
    it->allocated = true;
    if (static_cast<std::size_t>(it - entries.begin()) < reservedCount())
        ++usedRes;
}

void
ReservationTracker::onCommit(InstSeqNum seq)
{
    VPR_ASSERT(!entries.empty() && entries.front().seq == seq,
               "commit of non-oldest dest instruction sn:", seq);
    if (entries.front().allocated)
        --usedRes;
    // The old (nrr+1)-th oldest entry (if any) enters the reserved set.
    if (entries.size() > nrr && entries[nrr].allocated)
        ++usedRes;
    entries.pop_front();
}

void
ReservationTracker::onSquash(InstSeqNum seq)
{
    VPR_ASSERT(!entries.empty() && entries.back().seq == seq,
               "squash of non-youngest dest instruction sn:", seq);
    if (entries.size() <= nrr && entries.back().allocated)
        --usedRes;
    entries.pop_back();
}

bool
ReservationTracker::isReserved(InstSeqNum seq) const
{
    std::size_t lim = reservedCount();
    if (lim == 0 || seq > entries[lim - 1].seq)
        return false;
    auto end = entries.begin() + static_cast<std::ptrdiff_t>(lim);
    auto it = std::lower_bound(entries.begin(), end, seq,
                               [](const Entry &e, InstSeqNum s) {
                                   return e.seq < s;
                               });
    return it != end && it->seq == seq;
}

bool
ReservationTracker::mayAllocate(InstSeqNum seq, std::size_t freeRegs) const
{
    if (freeRegs == 0)
        return false;
    // Reserved instructions may always take a register (one is kept for
    // each of them by construction).
    if (isReserved(seq))
        return true;
    // Younger instructions must leave enough registers for the
    // not-yet-allocated part of the reserved set.
    unsigned needed = nrr - usedInReserved();
    return freeRegs > needed;
}

} // namespace vpr
