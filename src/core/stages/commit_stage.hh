/**
 * @file
 * Commit stage: up to commitWidth in-order retires per cycle; stores
 * write the data cache (needing a cache port and an unblocked cache);
 * the renamer frees the previous mapping of each retired destination.
 */

#ifndef VPR_CORE_STAGES_COMMIT_STAGE_HH
#define VPR_CORE_STAGES_COMMIT_STAGE_HH

#include "core/stages/pipeline_state.hh"
#include "core/stages/stage.hh"

namespace vpr
{

/** The commit/retire stage. */
class CommitStage : public Stage
{
  public:
    explicit CommitStage(PipelineState &state) : s(state) {}

    const char *name() const override { return "commit"; }

    void tick() override;

    void
    squash(InstSeqNum) override
    {
        // Commit only ever touches the ROB head, which is never younger
        // than a resolving branch; nothing to recover.
    }

    void
    resetStats() override
    {
        baseCommitted = nCommitted;
        baseCommittedExecutions = nCommittedExecutions;
        baseStoreCommitStalls = nStoreCommitStalls;
    }

    /** Committed instructions since construction (monotonic). */
    std::uint64_t committedTotal() const { return nCommitted; }

    /** Interval counters since the last resetStats. @{ */
    std::uint64_t
    committedDelta() const
    {
        return nCommitted - baseCommitted;
    }
    std::uint64_t
    committedExecutionsDelta() const
    {
        return nCommittedExecutions - baseCommittedExecutions;
    }
    std::uint64_t
    storeCommitStallsDelta() const
    {
        return nStoreCommitStalls - baseStoreCommitStalls;
    }
    /** @} */

  private:
    PipelineState &s;
    std::uint64_t nCommitted = 0;
    std::uint64_t nCommittedExecutions = 0;
    std::uint64_t nStoreCommitStalls = 0;
    std::uint64_t baseCommitted = 0;
    std::uint64_t baseCommittedExecutions = 0;
    std::uint64_t baseStoreCommitStalls = 0;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_COMMIT_STAGE_HH
