/**
 * @file
 * Determinism pin for the simulator reuse pool (Simulator::reinit).
 *
 * A reused simulator must be indistinguishable from a freshly
 * constructed one: for every rename scheme, running a cell on a
 * simulator that already ran a full cell (same core configuration →
 * in-place Core::reinit; different core configuration → core rebuild
 * over the rewound stream) must reproduce every exported metric of a
 * cold simulator exactly. Any missed member in the reinit chain —
 * a counter not zeroed, a ring not rewound, an RNG not reseeded —
 * shows up here as a metric mismatch.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/config.hh"
#include "sim/simulator.hh"

namespace vpr
{
namespace
{

SimConfig
smallConfig(const char *scheme, bool sampled)
{
    SimConfig config = paperConfig();
    config.setScheme(scheme == std::string("conv")
                         ? RenameScheme::Conventional
                     : scheme == std::string("conv-er")
                         ? RenameScheme::ConventionalEarlyRelease
                     : scheme == std::string("vp-wb")
                         ? RenameScheme::VPAllocAtWriteback
                         : RenameScheme::VPAllocAtIssue);
    if (config.core.scheme == RenameScheme::ConventionalEarlyRelease)
        config.core.fetch.wrongPath = WrongPathMode::Stall;
    config.skipInsts = 2000;
    config.measureInsts = 4000;
    if (sampled) {
        config.sampling.enable = true;
        config.sampling.periodInsts = 2000;
    }
    return config;
}

void
expectIdentical(const MetricsRecord &a, const MetricsRecord &b)
{
    ASSERT_EQ(a.all().size(), b.all().size());
    for (std::size_t i = 0; i < a.all().size(); ++i) {
        const Metric &ma = a.all()[i];
        const Metric &mb = b.all()[i];
        ASSERT_EQ(ma.name(), mb.name());
        ASSERT_EQ(static_cast<int>(ma.kind), static_cast<int>(mb.kind));
        if (ma.kind == Metric::Kind::UInt)
            EXPECT_EQ(ma.uval, mb.uval) << ma.name();
        else
            EXPECT_EQ(ma.rval, mb.rval) << ma.name();
    }
}

class SimulatorPoolDeterminism
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SimulatorPoolDeterminism, ReinitSameConfigMatchesFresh)
{
    const SimConfig config = smallConfig(GetParam(), /*sampled=*/false);

    Simulator fresh("compress", config);
    const SimResults cold = fresh.run();

    // Same cell twice on one simulator: the second run goes through the
    // in-place Core::reinit path with every structure dirty.
    Simulator reused("compress", config);
    reused.run();
    ASSERT_TRUE(reused.reinit("compress", config));
    const SimResults warm = reused.run();

    expectIdentical(cold.metrics, warm.metrics);
}

TEST_P(SimulatorPoolDeterminism, ReinitSampledMatchesFresh)
{
    const SimConfig config = smallConfig(GetParam(), /*sampled=*/true);

    Simulator fresh("compress", config);
    const SimResults cold = fresh.run();

    Simulator reused("compress", config);
    reused.run();
    ASSERT_TRUE(reused.reinit("compress", config));
    const SimResults warm = reused.run();

    expectIdentical(cold.metrics, warm.metrics);
}

TEST_P(SimulatorPoolDeterminism, ReinitAcrossCoreConfigsRebuilds)
{
    SimConfig first = smallConfig(GetParam(), /*sampled=*/true);
    first.setPhysRegs(48);
    SimConfig second = smallConfig(GetParam(), /*sampled=*/true);
    second.setPhysRegs(64);

    Simulator fresh("compress", second);
    const SimResults cold = fresh.run();

    // The core configuration differs, so reinit rebuilds the core over
    // the rewound stream instead of reinitialising it in place.
    Simulator reused("compress", first);
    reused.run();
    ASSERT_TRUE(reused.reinit("compress", second));
    const SimResults warm = reused.run();

    expectIdentical(cold.metrics, warm.metrics);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SimulatorPoolDeterminism,
                         ::testing::Values("conv", "conv-er", "vp-wb",
                                           "vp-issue"));

TEST(SimulatorPool, ReinitRefusesForeignCells)
{
    const SimConfig config = smallConfig("conv", /*sampled=*/true);
    Simulator sim("compress", config);
    sim.run();

    // A different benchmark cannot reuse the owned stream.
    EXPECT_FALSE(sim.reinit("swim", config));

    // Neither can a different seed (the kernel bakes it in).
    SimConfig reseeded = config;
    reseeded.seed = 7;
    EXPECT_FALSE(sim.reinit("compress", reseeded));

    // The refused simulator still works as-is.
    ASSERT_TRUE(sim.reinit("compress", config));
    const SimResults again = sim.run();
    EXPECT_GT(again.committed(), 0u);
}

TEST(SimulatorPool, ExternalStreamIsNeverReused)
{
    const SimConfig config = smallConfig("conv", /*sampled=*/false);
    Simulator owned("compress", config);
    TraceStream &stream = owned.core().stream();
    Simulator external(stream, config);
    EXPECT_FALSE(external.reinit("compress", config));
}

} // namespace
} // namespace vpr
