/**
 * @file
 * Steady-state allocation regression for the detailed hot loop.
 *
 * After the data-oriented refactors (completion calendar, packed hot
 * state, ring deques, interned stat symbols) the per-cycle path must
 * not touch the heap at all once every pool and ring has grown to its
 * working size. These tests pin that property with the alloc_count
 * hook — per measured interval AND per individual simulated cycle, so
 * a single rare-path allocation (a ring growing, a map rehashing, a
 * string materialising) fails the suite instead of hiding in an
 * interval average.
 *
 * The warm-up length matters: ring deques and MSHR vectors grow on
 * demand, and the swim kernel's working set stops provoking growth
 * comfortably before 60k committed instructions. Shrinking the warm-up
 * makes the test flaky-by-construction; don't.
 *
 * Wrong-path fetch runs in Stall mode, like every BM_Simulator* row:
 * under squash-mode recovery the IQ wait lists accumulate stale
 * waiters that only drain when their tag is next broadcast, so their
 * capacities keep converging for hundreds of thousands of cycles —
 * the steady state exists but is not reachable in test time.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"
#include "trace/kernels/kernels.hh"

#include "../support/alloc_count.hh"

namespace vpr
{
namespace
{

using testsupport::AllocGuard;

constexpr std::uint64_t kWarmupInsts = 60000;

TEST(HotLoopAlloc, ZeroAllocationsPerMeasuredInterval)
{
    SimConfig config = paperConfig();
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    auto stream = makeBenchmarkStream("swim");
    Core core(*stream, config.core);

    core.runUntilCommitted(kWarmupInsts);
    ASSERT_GE(core.committedInsts(), kWarmupInsts);

    AllocGuard g;
    core.runUntilCommitted(kWarmupInsts + 20000);
    EXPECT_EQ(g.count(), 0u)
        << "heap allocations leaked into the steady-state hot loop";
}

TEST(HotLoopAlloc, ZeroAllocationsPerSimulatedCycle)
{
    SimConfig config = paperConfig();
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    auto stream = makeBenchmarkStream("swim");
    Core core(*stream, config.core);

    core.runUntilCommitted(kWarmupInsts);

    // Per-cycle, not per-interval: every single tick must stay off the
    // heap, so one allocating cycle cannot hide among thousands.
    for (int cycle = 0; cycle < 5000; ++cycle) {
        AllocGuard g;
        core.tick();
        ASSERT_EQ(g.count(), 0u)
            << "allocation during steady-state cycle " << cycle
            << " (cycle " << core.cycle() << " of the run)";
    }
}

TEST(HotLoopAlloc, MetricsCollectionIsAllocationFreeWhenWarm)
{
    // The per-cell metrics path: after one collection has interned
    // every symbol and sized the record's storage, re-collecting into
    // the same record must not allocate. This is what lets a pooled
    // simulator export metrics for thousands of grid cells with zero
    // fixed overhead.
    SimConfig config = paperConfig();
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    auto stream = makeBenchmarkStream("swim");
    Core core(*stream, config.core);
    core.runUntilCommitted(5000);

    MetricsRecord warm;
    core.visitStats(warm);
    core.visitStats(warm);

    AllocGuard g;
    core.visitStats(warm);
    EXPECT_EQ(g.count(), 0u)
        << "warm metrics collection touched the heap";
}

} // namespace
} // namespace vpr
