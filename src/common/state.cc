#include "common/state.hh"

namespace vpr
{

const char kCkptMagic[8] = {'V', 'P', 'R', 'C', 'K', 'P', 'T', '\0'};

const char *
ckptScopeName(CkptScope s)
{
    return s == CkptScope::Functional ? "func" : "full";
}

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t seed)
{
    std::uint64_t h = seed;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

void
StateVisitor::section(const char *name)
{
    std::uint64_t tag = fnv1a(name, std::strlen(name));
    std::uint64_t got = tag;
    word(got);
    if (loading() && got != tag)
        throw CkptError(std::string("section tag mismatch at '") + name +
                        "' (layout drift or corruption)");
}

void
StateSaver::word(std::uint64_t &v)
{
    char le[8];
    for (int i = 0; i < 8; ++i)
        le[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    buf.append(le, 8);
}

void
StateSaver::bytes(void *p, std::size_t n)
{
    buf.append(static_cast<const char *>(p), n);
}

void
StateLoader::word(std::uint64_t &v)
{
    if (buf.size() - pos < 8)
        throw CkptError("truncated checkpoint payload");
    std::uint64_t w = 0;
    for (int i = 0; i < 8; ++i)
        w |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf[pos + i]))
             << (8 * i);
    pos += 8;
    v = w;
}

void
StateLoader::bytes(void *p, std::size_t n)
{
    if (buf.size() - pos < n)
        throw CkptError("truncated checkpoint payload");
    std::memcpy(p, buf.data() + pos, n);
    pos += n;
}

namespace
{

void
appendWord(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t
readWord(const std::string &in, std::size_t &pos)
{
    if (in.size() - pos < 8)
        throw CkptError("truncated checkpoint header");
    std::uint64_t w = 0;
    for (int i = 0; i < 8; ++i)
        w |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[pos + i]))
             << (8 * i);
    pos += 8;
    return w;
}

} // namespace

std::string
packCheckpoint(CkptScope scope, std::uint64_t digest,
               const std::string &payload)
{
    std::string out;
    out.reserve(sizeof(kCkptMagic) + 5 * 8 + payload.size());
    out.append(kCkptMagic, sizeof(kCkptMagic));
    appendWord(out, kStateFormatVersion);
    appendWord(out, static_cast<std::uint64_t>(scope));
    appendWord(out, digest);
    appendWord(out, payload.size());
    out += payload;
    appendWord(out, fnv1a(payload));
    return out;
}

std::string
unpackCheckpoint(const std::string &raw, CkptScope expectScope,
                 std::uint64_t expectDigest)
{
    if (raw.size() < sizeof(kCkptMagic))
        throw CkptError("truncated checkpoint (no magic)");
    if (std::memcmp(raw.data(), kCkptMagic, sizeof(kCkptMagic)) != 0)
        throw CkptError("not a checkpoint (wrong magic)");
    std::size_t pos = sizeof(kCkptMagic);
    std::uint64_t version = readWord(raw, pos);
    if (version != kStateFormatVersion)
        throw CkptError("checkpoint format version skew (file v" +
                        std::to_string(version) + ", expected v" +
                        std::to_string(kStateFormatVersion) + ")");
    std::uint64_t scope = readWord(raw, pos);
    if (scope != static_cast<std::uint64_t>(expectScope))
        throw CkptError("checkpoint scope mismatch");
    std::uint64_t digest = readWord(raw, pos);
    if (expectDigest != 0 && digest != expectDigest)
        throw CkptError("warm-state digest mismatch (stale checkpoint "
                        "for a different warm-relevant configuration)");
    std::uint64_t size = readWord(raw, pos);
    if (raw.size() - pos < size + 8)
        throw CkptError("truncated checkpoint payload");
    std::string payload = raw.substr(pos, size);
    pos += size;
    if (readWord(raw, pos) != fnv1a(payload))
        throw CkptError("checkpoint payload checksum mismatch "
                        "(corrupted file)");
    if (pos != raw.size())
        throw CkptError("trailing garbage after checkpoint payload");
    return payload;
}

} // namespace vpr
