/** @file Unit tests for the LSQ and PA-8000-style disambiguation. */

#include <gtest/gtest.h>

#include "core/lsq.hh"

namespace vpr
{
namespace
{

DynInst
load(InstSeqNum seq, Addr addr, unsigned size = 8)
{
    DynInst d;
    d.si = StaticInst::load(RegId::intReg(1), RegId::intReg(2), addr);
    d.si.memSize = static_cast<std::uint8_t>(size);
    d.seq = seq;
    return d;
}

DynInst
store(InstSeqNum seq, Addr addr, unsigned size = 8)
{
    DynInst d;
    d.si = StaticInst::store(RegId::intReg(3), RegId::intReg(2), addr);
    d.si.memSize = static_cast<std::uint8_t>(size);
    d.seq = seq;
    return d;
}

TEST(Lsq, LoadWithNoOlderStoresIsReady)
{
    Lsq lsq(8);
    DynInst l = load(1, 0x100);
    lsq.insert(&l);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Ready);
}

TEST(Lsq, LoadWaitsForUnknownStoreAddress)
{
    Lsq lsq(8);
    DynInst s = store(1, 0x100);
    DynInst l = load(2, 0x200);
    lsq.insert(&s);
    lsq.insert(&l);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::UnknownAddress);
    // Address known but only in the future: still unknown at cycle 10.
    s.addrReady = true;
    s.addrReadyCycle = 20;
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::UnknownAddress);
    EXPECT_EQ(lsq.checkLoad(&l, 20), LoadHold::Ready);
}

TEST(Lsq, MatchingStoreForwards)
{
    Lsq lsq(8);
    DynInst s = store(1, 0x100);
    s.addrReady = true;
    s.addrReadyCycle = 5;
    DynInst l = load(2, 0x100);
    lsq.insert(&s);
    lsq.insert(&l);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Forward);
}

TEST(Lsq, ContainedAccessForwards)
{
    Lsq lsq(8);
    DynInst s = store(1, 0x100, 8);
    s.addrReady = true;
    s.addrReadyCycle = 0;
    DynInst l = load(2, 0x104, 4);  // inside the store's 8 bytes
    lsq.insert(&s);
    lsq.insert(&l);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Forward);
}

TEST(Lsq, PartialOverlapHolds)
{
    Lsq lsq(8);
    DynInst s = store(1, 0x104, 4);
    s.addrReady = true;
    s.addrReadyCycle = 0;
    DynInst l = load(2, 0x100, 8);  // covers more than the store wrote
    lsq.insert(&s);
    lsq.insert(&l);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::PartialOverlap);
}

TEST(Lsq, NearestStoreWins)
{
    Lsq lsq(8);
    DynInst s1 = store(1, 0x100);
    DynInst s2 = store(2, 0x100);
    s1.addrReady = s2.addrReady = true;
    s1.addrReadyCycle = s2.addrReadyCycle = 0;
    DynInst l = load(3, 0x100);
    lsq.insert(&s1);
    lsq.insert(&s2);
    lsq.insert(&l);
    // Forward (from s2, the youngest older store) — still Forward, and
    // an unknown-address s2 would have blocked even though s1 matches.
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Forward);
    s2.addrReady = false;
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::UnknownAddress);
}

TEST(Lsq, YoungerStoresDoNotAffectLoad)
{
    Lsq lsq(8);
    DynInst l = load(1, 0x100);
    DynInst s = store(2, 0x100);
    lsq.insert(&l);
    lsq.insert(&s);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Ready);
}

TEST(Lsq, DisjointStoresIgnored)
{
    Lsq lsq(8);
    DynInst s = store(1, 0x200);
    s.addrReady = true;
    s.addrReadyCycle = 0;
    DynInst l = load(2, 0x100);
    lsq.insert(&s);
    lsq.insert(&l);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Ready);
}

TEST(Lsq, SquashDropsYoungest)
{
    Lsq lsq(8);
    DynInst a = load(1, 0x100), b = store(5, 0x200), c = load(9, 0x300);
    lsq.insert(&a);
    lsq.insert(&b);
    lsq.insert(&c);
    lsq.squashYoungerThan(5);
    EXPECT_EQ(lsq.size(), 2u);
    EXPECT_EQ(lsq.entries().back()->seq, 5u);
}

TEST(Lsq, RemoveAtCommit)
{
    Lsq lsq(8);
    DynInst a = load(1, 0x100), b = load(2, 0x200);
    lsq.insert(&a);
    lsq.insert(&b);
    lsq.remove(&a);
    EXPECT_EQ(lsq.size(), 1u);
    EXPECT_EQ(lsq.entries().front()->seq, 2u);
}

TEST(Lsq, HoldStatsAccumulate)
{
    Lsq lsq(8);
    lsq.recordHold(LoadHold::Forward);
    lsq.recordHold(LoadHold::UnknownAddress);
    lsq.recordHold(LoadHold::UnknownAddress);
    lsq.recordHold(LoadHold::PartialOverlap);
    lsq.recordHold(LoadHold::Ready);  // not counted
    EXPECT_EQ(lsq.forwards(), 1u);
    EXPECT_EQ(lsq.unknownAddrHolds(), 2u);
    EXPECT_EQ(lsq.partialOverlapHolds(), 1u);
}

TEST(LsqDeath, OutOfOrderInsertPanics)
{
    Lsq lsq(8);
    DynInst a = load(5, 0x100), b = load(3, 0x200);
    lsq.insert(&a);
    EXPECT_DEATH(lsq.insert(&b), "program order");
}

TEST(LsqDeath, NonMemInsertPanics)
{
    Lsq lsq(8);
    DynInst d;
    d.si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                           RegId::intReg(3));
    d.seq = 1;
    EXPECT_DEATH(lsq.insert(&d), "non-memory");
}

} // namespace
} // namespace vpr
