/**
 * @file
 * Integer synthetic kernels: go, li, compress, vortex.
 *
 * Integer codes in the paper gain little (4-9%) from virtual-physical
 * registers: their windows are bounded by branch mispredictions and
 * short dependence chains rather than by register-file exhaustion. The
 * kernels therefore keep working sets mostly cache-resident and derive
 * their IPC ceilings from branch behaviour and chain depth. Stream bases
 * are set-colored against the 16 KB direct-mapped L1 (see
 * fp_kernels.cc).
 */

#include "trace/kernels/kernels.hh"

namespace vpr
{

namespace
{

using K = MemStreamDesc::Kind;

constexpr RegId r(std::uint16_t i) { return RegId::intReg(i); }

InstTemplate
op(OpClass c, RegId d, RegId s0, RegId s1 = RegId::none())
{
    return InstTemplate::compute(c, d, s0, s1);
}

MemStreamDesc
stride(Addr base, std::int64_t strideBytes, std::uint64_t region,
       std::uint8_t elem = 8)
{
    MemStreamDesc m;
    m.kind = K::Stride;
    m.base = base;
    m.stride = strideBytes;
    m.region = region;
    m.elemSize = elem;
    return m;
}

MemStreamDesc
randomIn(Addr base, std::uint64_t region)
{
    MemStreamDesc m;
    m.kind = K::Random;
    m.base = base;
    m.region = region;
    return m;
}

MemStreamDesc
chaseIn(Addr base, std::uint64_t region)
{
    MemStreamDesc m;
    m.kind = K::PointerChase;
    m.base = base;
    m.region = region;
    return m;
}

BranchDesc
loopBranch(RegId src, unsigned trip, int self, int exit)
{
    BranchDesc b;
    b.kind = BranchDesc::Kind::Loop;
    b.src = src;
    b.tripCount = trip;
    b.takenTarget = self;
    b.fallThrough = exit;
    return b;
}

BranchDesc
coinBranch(RegId src, unsigned permille, int takenBlk, int fallBlk)
{
    BranchDesc b;
    b.kind = BranchDesc::Kind::Bernoulli;
    b.src = src;
    b.takenPermille = permille;
    b.takenTarget = takenBlk;
    b.fallThrough = fallBlk;
    return b;
}

} // namespace

KernelDesc
makeGo(std::uint64_t seed)
{
    // Game-tree evaluation: short dependent ALU chains over a resident
    // board, a data-dependent branch every four to five instructions.
    // Biases around 75/25 leave the 2-bit BHT at roughly 70-75%
    // accuracy, so mispredictions dominate and the window stays small.
    KernelDesc k;
    k.name = "go";
    k.seed = seed ? seed : 0x60a11ull;
    k.streams = {
        randomIn(0x10000000, 4 << 10),     // board state (resident)
        randomIn(0x20001000, 8 << 10),     // pattern table (resident)
    };

    BlockDesc eval;
    eval.insts = {
        InstTemplate::loadFrom(0, r(10), r(1)),
        op(OpClass::IntAlu, r(11), r(10), r(12)),
        op(OpClass::IntAlu, r(12), r(11), r(13)),
        op(OpClass::IntAlu, r(13), r(12), r(10)),
    };
    eval.branch = coinBranch(r(11), 680, 1, 2);

    BlockDesc explore;
    explore.insts = {
        InstTemplate::loadFrom(1, r(14), r(2)),
        op(OpClass::IntAlu, r(15), r(14), r(13)),
        op(OpClass::IntAlu, r(16), r(15), r(14)),
    };
    explore.branch = coinBranch(r(15), 380, 0, 2);

    BlockDesc backup;
    backup.insts = {
        op(OpClass::IntAlu, r(17), r(16), r(13)),
        op(OpClass::IntAlu, r(18), r(17), r(11)),
        op(OpClass::IntAlu, r(1), r(1), r(5)),
    };
    backup.branch = coinBranch(r(17), 620, 0, 0);

    k.blocks = {eval, explore, backup};
    return k;
}

KernelDesc
makeLi(std::uint64_t seed)
{
    // Lisp interpreter: cons-cell chasing where the next pointer comes
    // from the previous load (serial chain) over a heap slightly larger
    // than L1 (~12% misses), with tag-dispatch branches. The serial
    // chain means a wider window buys little — the VP gain is small.
    KernelDesc k;
    k.name = "li";
    k.seed = seed ? seed : 0x11e1ull;
    k.streams = {
        chaseIn(0x10000000, 15 << 10),     // cons heap (~fits L1)
        randomIn(0x20003800, 2 << 10),     // symbol table (resident)
    };

    BlockDesc chase;
    chase.insts = {
        InstTemplate::loadFrom(0, r(10), r(10)),   // car/cdr chase
        op(OpClass::IntAlu, r(11), r(10), r(12)),  // tag extract
        InstTemplate::loadFrom(1, r(13), r(11)),   // symbol lookup
        op(OpClass::IntAlu, r(14), r(13), r(11)),
    };
    chase.branch = coinBranch(r(11), 880, 0, 1);

    BlockDesc apply;
    apply.insts = {
        op(OpClass::IntAlu, r(15), r(14), r(10)),
        op(OpClass::IntAlu, r(16), r(15), r(13)),
        op(OpClass::IntAlu, r(2), r(2), r(5)),
    };
    apply.branch = coinBranch(r(15), 850, 0, 0);

    k.blocks = {chase, apply};
    return k;
}

KernelDesc
makeCompress(std::uint64_t seed)
{
    // LZW-style compression: byte-stream input (resident lines), hash
    // probes into a dictionary slightly larger than L1 (~20% misses),
    // predictable inner loops and decent independent ILP.
    KernelDesc k;
    k.name = "compress";
    k.seed = seed ? seed : 0xc03b9ull;
    k.streams = {
        stride(0x10000000, 1, 1 << 20, 1), // input text, byte stream
        randomIn(0x20001000, 14 << 10),    // hash table (light misses)
        stride(0x30002000, 1, 1 << 20, 1), // output stream
    };

    BlockDesc body;
    body.insts = {
        InstTemplate::loadFrom(0, r(10), r(1)),    // next input byte
        op(OpClass::IntAlu, r(11), r(10), r(12)),  // hash
        op(OpClass::IntAlu, r(12), r(11), r(10)),
        InstTemplate::loadFrom(1, r(13), r(12)),   // table probe
        op(OpClass::IntAlu, r(14), r(13), r(11)),
        InstTemplate::storeTo(2, r(14), r(2)),     // emit code
        op(OpClass::IntAlu, r(1), r(1), r(5)),
        op(OpClass::IntAlu, r(20), r(20), r(5)),
    };
    body.branch = loopBranch(r(14), 128, 0, 1);

    BlockDesc flush;
    flush.insts = {
        op(OpClass::IntAlu, r(15), r(14), r(13)),
        op(OpClass::IntMult, r(16), r(15), r(12)),
        op(OpClass::IntAlu, r(3), r(3), r(5)),
    };
    flush.branch = loopBranch(r(3), 32, 0, 0);

    k.blocks = {body, flush};
    return k;
}

KernelDesc
makeVortex(std::uint64_t seed)
{
    // Object database: random record fetches over a 40 KB store (~60%
    // hits), a dependent descriptor lookup, field updates with stores,
    // and well-predicted dispatch. Moderate misses with a partly serial
    // iteration give the mid-single-digit VP gain of the paper.
    KernelDesc k;
    k.name = "vortex";
    k.seed = seed ? seed : 0xbeadull;
    k.streams = {
        randomIn(0x10000000, 20 << 10),    // object store (~20% miss)
        randomIn(0x20003000, 2 << 10),     // descriptor cache (resident)
        randomIn(0x30003800, 2 << 10),     // field write-back (resident)
    };

    BlockDesc lookup;
    lookup.insts = {
        InstTemplate::loadFrom(0, r(10), r(1)),    // fetch record
        op(OpClass::IntAlu, r(11), r(10), r(12)),
        InstTemplate::loadFrom(1, r(13), r(2)),    // descriptor probe
        op(OpClass::IntAlu, r(14), r(13), r(10)),
        op(OpClass::IntAlu, r(15), r(14), r(11)),
        InstTemplate::storeTo(2, r(15), r(2)),     // update field
        op(OpClass::IntAlu, r(1), r(1), r(5)),
    };
    lookup.branch = coinBranch(r(14), 810, 0, 1);

    BlockDesc maintenance;
    maintenance.insts = {
        op(OpClass::IntAlu, r(16), r(15), r(13)),
        op(OpClass::IntAlu, r(17), r(16), r(14)),
        op(OpClass::IntAlu, r(4), r(4), r(5)),
    };
    maintenance.branch = loopBranch(r(4), 16, 0, 0);

    k.blocks = {lookup, maintenance};
    return k;
}

} // namespace vpr
