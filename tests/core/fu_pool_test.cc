/** @file Unit tests for the functional-unit pool. */

#include <gtest/gtest.h>

#include "core/fu_pool.hh"

namespace vpr
{
namespace
{

TEST(FuPool, Table1UnitCounts)
{
    FuPoolConfig cfg;
    EXPECT_EQ(cfg.count(FUType::SimpleInt), 3u);
    EXPECT_EQ(cfg.count(FUType::ComplexInt), 2u);
    EXPECT_EQ(cfg.count(FUType::EffAddr), 3u);
    EXPECT_EQ(cfg.count(FUType::SimpleFp), 3u);
    EXPECT_EQ(cfg.count(FUType::FpMul), 2u);
    EXPECT_EQ(cfg.count(FUType::FpDivSqrt), 2u);
}

TEST(FuPool, PerCycleIssueLimit)
{
    FuPool pool;
    pool.beginCycle(1);
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 1, 2));
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 1, 2));
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 1, 2));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntAlu, 1, 2));
    EXPECT_EQ(pool.structuralHazards(), 1u);
    // Next cycle the units are free again (pipelined).
    pool.beginCycle(2);
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 2, 3));
}

TEST(FuPool, BranchesShareSimpleIntUnits)
{
    FuPool pool;
    pool.beginCycle(1);
    EXPECT_TRUE(pool.tryIssue(OpClass::Branch, 1, 2));
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 1, 2));
    EXPECT_TRUE(pool.tryIssue(OpClass::Branch, 1, 2));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntAlu, 1, 2));
}

TEST(FuPool, UnpipelinedDividerStaysBusy)
{
    FuPool pool;
    pool.beginCycle(1);
    // Two dividers: both busy for 16 cycles.
    EXPECT_TRUE(pool.tryIssue(OpClass::FpDiv, 1, 17));
    EXPECT_TRUE(pool.tryIssue(OpClass::FpDiv, 1, 17));
    pool.beginCycle(2);
    EXPECT_EQ(pool.available(FUType::FpDivSqrt, 2), 0u);
    EXPECT_FALSE(pool.tryIssue(OpClass::FpSqrt, 2, 18));
    // After completion the units free up.
    pool.beginCycle(17);
    EXPECT_EQ(pool.available(FUType::FpDivSqrt, 17), 2u);
    EXPECT_TRUE(pool.tryIssue(OpClass::FpDiv, 17, 33));
}

TEST(FuPool, PipelinedMultiplierAcceptsEveryCycle)
{
    FuPool pool;
    for (Cycle c = 1; c <= 5; ++c) {
        pool.beginCycle(c);
        EXPECT_TRUE(pool.tryIssue(OpClass::IntMult, c, c + 9));
        EXPECT_TRUE(pool.tryIssue(OpClass::IntMult, c, c + 9));
        EXPECT_FALSE(pool.tryIssue(OpClass::IntMult, c, c + 9));
    }
}

TEST(FuPool, MixedDivAndMultShareComplexInt)
{
    FuPool pool;
    pool.beginCycle(1);
    EXPECT_TRUE(pool.tryIssue(OpClass::IntDiv, 1, 68));  // unpipelined
    EXPECT_TRUE(pool.tryIssue(OpClass::IntMult, 1, 10));
    pool.beginCycle(2);
    // One unit is parked on the divide; the other is free.
    EXPECT_EQ(pool.available(FUType::ComplexInt, 2), 1u);
}

TEST(FuPool, NopsNeedNoUnit)
{
    FuPool pool;
    pool.beginCycle(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(pool.tryIssue(OpClass::Nop, 1, 2));
}

TEST(FuPool, IssuedCountersPerType)
{
    FuPool pool;
    pool.beginCycle(1);
    pool.tryIssue(OpClass::FpAdd, 1, 5);
    pool.tryIssue(OpClass::FpAdd, 1, 5);
    pool.tryIssue(OpClass::Load, 1, 2);
    EXPECT_EQ(pool.issuedOps(FUType::SimpleFp), 2u);
    EXPECT_EQ(pool.issuedOps(FUType::EffAddr), 1u);
}

TEST(FuPool, CustomConfig)
{
    FuPoolConfig cfg;
    cfg.simpleInt = 1;
    FuPool pool(cfg);
    pool.beginCycle(1);
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 1, 2));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntAlu, 1, 2));
}

} // namespace
} // namespace vpr
