#include "bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace vpr::bench
{

void
parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0) {
            setenv("VPR_INSTS_SCALE", argv[i] + 8, 1);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--scale=<factor>]\n"
                        "  --scale scales the simulated instruction "
                        "budget (default 1.0;\n"
                        "  also settable via VPR_INSTS_SCALE)\n",
                        argv[0]);
            std::exit(0);
        }
    }
}

SimConfig
experimentConfig()
{
    SimConfig config = paperConfig();
    // The paper skips 100 M instructions and measures 50 M per run; we
    // default to 20 k + 120 k, which keeps the full figure suite under a
    // few minutes while preserving every qualitative result. Use
    // --scale=10 (or more) for higher-fidelity runs.
    config.skipInsts = 20000;
    config.measureInsts = 120000;
    // Trace-driven methodology: fetch stalls on a detected
    // misprediction, as in the paper's ATOM-based framework.
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    return config;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += std::log(v);
    return std::exp(s / static_cast<double>(values.size()));
}

std::vector<double>
printSpeedupFigure(const std::string &title, RenameScheme scheme,
                   const std::vector<unsigned> &nrrValues)
{
    SimConfig config = experimentConfig();

    // Baseline: conventional renaming, same machine.
    std::vector<double> base;
    for (const auto &name : benchmarkNames()) {
        config.setScheme(RenameScheme::Conventional);
        base.push_back(runOne(name, config).ipc());
    }

    std::vector<std::string> cols;
    for (unsigned nrr : nrrValues)
        cols.push_back("NRR=" + std::to_string(nrr));
    printTableHeader(std::cout, title, cols);

    std::vector<double> lastColumn;
    std::vector<std::vector<double>> columns(nrrValues.size());
    std::size_t bi = 0;
    for (const auto &name : benchmarkNames()) {
        std::vector<double> row;
        for (std::size_t c = 0; c < nrrValues.size(); ++c) {
            config.setScheme(scheme);
            config.setNrr(static_cast<std::uint16_t>(nrrValues[c]));
            double ipc = runOne(name, config).ipc();
            row.push_back(ipc / base[bi]);
            columns[c].push_back(ipc / base[bi]);
        }
        lastColumn.push_back(row.back());
        printTableRow(std::cout, name, row, 3);
        ++bi;
    }

    std::vector<double> means;
    for (const auto &col : columns)
        means.push_back(geoMean(col));
    std::cout << std::string(12 + 12 * nrrValues.size(), '-') << "\n";
    printTableRow(std::cout, "geomean", means, 3);
    return lastColumn;
}

} // namespace vpr::bench
