/**
 * @file
 * Lightweight statistics package (a miniature of gem5's Stats).
 *
 * Stats are plain accumulators registered with a StatGroup so that whole
 * subsystems can be dumped or reset uniformly. No global registry: each
 * simulator instance owns its groups, keeping runs independent. A
 * StatRegistry ties the groups of one core into a single stats tree:
 * components register their group (plus optional update/reset hooks)
 * and every exporter reaches them through one walk.
 *
 * Names are *interned*: every dotted stat name ("rob.occupancy.mean")
 * and description is entered once into the process-global SymbolTable
 * and carried as a SymId (u32) through the StatVisitor interface, so a
 * steady-state tree walk moves integers, not strings. Text is resolved
 * only at serialization boundaries (CSV/JSON writers, reports).
 */

#ifndef VPR_COMMON_STATS_HH
#define VPR_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace vpr::stats
{

/** Interned-name handle: index into the process-global SymbolTable.
 *  0 is "no symbol" and is never returned by intern(). */
using SymId = std::uint32_t;

/**
 * The process-global intern table for stat/metric names and
 * descriptions. Names are immutable once interned and never removed, so
 * a SymId is valid for the life of the process and equal text implies
 * equal id — schema comparisons are integer compares. Thread-safe: grid
 * cells intern from worker threads concurrently.
 */
class SymbolTable
{
  public:
    static SymbolTable &global();

    /** Intern @p text, returning its (possibly pre-existing) id. */
    SymId intern(std::string_view text);

    /** Id of @p text if already interned, 0 otherwise. Never inserts,
     *  so read-only lookups cannot grow the table. */
    SymId find(std::string_view text) const;

    /** The interned text; the reference is stable for the process
     *  lifetime. @p id must come from intern()/find(). */
    const std::string &text(SymId id) const;

    /** Number of interned symbols (diagnostics). */
    std::size_t size() const;

  private:
    SymbolTable() = default;

    struct Impl;
    Impl &impl() const;
};

/**
 * Visitor over the (name, desc, typed value) triples a statistic
 * exposes. This is the machine-readable face of the package: anything
 * that can pretty-print can also be enumerated into an export record.
 * A multi-valued stat (e.g. Distribution) visits one triple per
 * sub-value, suffixing its name. Names and descriptions arrive as
 * interned SymIds; resolve with SymbolTable::global().text() only where
 * text is genuinely needed.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    /** An integral counter/gauge value. */
    virtual void visitUInt(SymId name, SymId desc, std::uint64_t v) = 0;
    /** A real-valued mean/rate/ratio. */
    virtual void visitReal(SymId name, SymId desc, double v) = 0;
};

/** Base class for every statistic. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : statName(std::move(name)), statDesc(std::move(desc))
    {}
    virtual ~StatBase() = default;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Reset the accumulator to its initial state. */
    virtual void reset() = 0;
    /** Print "name value # desc" style line(s). */
    virtual void print(std::ostream &os) const = 0;
    /** Enumerate the stat's values into @p v. */
    virtual void visit(StatVisitor &v) const = 0;

    /**
     * Select the dotted prefix under which the next visit() composes
     * its names ("<prefix>.<name><suffix>"; empty = unprefixed).
     * Called by StatGroup::visit before every walk; a no-op string
     * compare when unchanged, so the cached name symbols survive
     * across walks and steady-state visits intern nothing.
     */
    void
    setVisitPrefix(std::string_view prefix) const
    {
        if (prefix != visitPrefix) {
            visitPrefix.assign(prefix);
            symCache.clear();
        }
    }

  protected:
    /**
     * Interned symbol for "<prefix>.<name><suffix>", cached per
     * sub-value slot. Slots are dense small integers fixed by the
     * stat's shape (0 for a single-valued stat); the composed string
     * is built only on a cache miss.
     */
    SymId
    nameSym(std::size_t slot, std::string_view suffix = {}) const
    {
        if (slot < symCache.size() && symCache[slot] != 0)
            return symCache[slot];
        return internName(slot, suffix);
    }

    /** Cache-only lookup: the slot's symbol, or 0 on a miss. Lets a
     *  stat with a composed suffix ("name.row.col") skip building the
     *  suffix string entirely on the hot (cached) path. */
    SymId
    cachedNameSym(std::size_t slot) const
    {
        return slot < symCache.size() ? symCache[slot] : 0;
    }

    /** Interned symbol of the stat's own description. */
    SymId
    descSym() const
    {
        if (descCache == 0)
            descCache = SymbolTable::global().intern(statDesc);
        return descCache;
    }

  private:
    SymId internName(std::size_t slot, std::string_view suffix) const;

    std::string statName;
    std::string statDesc;
    /** Prefix the cached symbols were composed under. */
    mutable std::string visitPrefix;
    /** Per-slot interned full names; cleared on prefix change. */
    mutable std::vector<SymId> symCache;
    mutable SymId descCache = 0;
};

/** A simple monotonic counter / gauge. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(std::uint64_t d) { val += d; return *this; }
    void set(std::uint64_t v) { val = v; }
    std::uint64_t value() const { return val; }

    void reset() override { val = 0; }
    void print(std::ostream &os) const override;

    void
    visit(StatVisitor &v) const override
    {
        v.visitUInt(nameSym(0), descSym(), val);
    }

  private:
    std::uint64_t val = 0;
};

/** A real-valued gauge for derived rates and ratios (IPC, miss rate). */
class Real : public StatBase
{
  public:
    using StatBase::StatBase;

    void set(double v) { val = v; }
    double value() const { return val; }

    void reset() override { val = 0.0; }
    void print(std::ostream &os) const override;

    void
    visit(StatVisitor &v) const override
    {
        v.visitReal(nameSym(0), descSym(), val);
    }

  private:
    double val = 0.0;
};

/** Mean of a stream of samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    std::uint64_t samples() const { return n; }
    double total() const { return sum; }

    void reset() override { sum = 0.0; n = 0; }
    void print(std::ostream &os) const override;

    void
    visit(StatVisitor &v) const override
    {
        v.visitReal(nameSym(0), descSym(), mean());
        v.visitUInt(nameSym(1, ".samples"), descSym(), n);
    }

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
};

/**
 * Mean-with-confidence-interval estimator over a small number of
 * real-valued observations (one per sampled measurement interval). The
 * accumulation mirrors Distribution's running sum/sum-of-squares, but
 * the observations are reals and the derived values are the SMARTS
 * estimator outputs: sample mean, standard error of the mean, and the
 * half-width of the two-sided 95% confidence interval (Student-t for
 * small sample counts, the normal 1.96 asymptote beyond 30). With
 * fewer than two observations the spread is undefined and both stderr
 * and ci95 report 0 — consumers must check intervals before trusting
 * the error bar. Visits as .mean/.stderr/.ci95/.intervals.
 */
class SampleEstimator : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        ++n;
        sum += v;
        sumSq += v * v;
    }

    std::uint64_t samples() const { return n; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    /** Sample standard deviation (n-1 denominator). */
    double stddev() const;

    /** Standard error of the mean: s / sqrt(n). */
    double standardError() const;

    /** Half-width of the two-sided 95% confidence interval. */
    double ci95() const;

    void reset() override { n = 0; sum = 0.0; sumSq = 0.0; }
    void print(std::ostream &os) const override;
    void visit(StatVisitor &v) const override;

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
};

/** Two-sided 95% Student-t critical value for @p df degrees of freedom
 *  (1.96 beyond 30). Exposed for tests and external CI computations. */
double tCritical95(std::uint64_t df);

/**
 * Bucketed distribution over [min, max] with uniform buckets, tracking
 * mean, population standard deviation, and the observed min/max. The
 * usual producer samples once per cycle (occupancies) or once per event
 * (lifetimes). Visitation exports the moments and then one "hist[i]"
 * triple per bucket, so records carry the full shape.
 *
 * For metrics exported across a parameter sweep use evenBuckets(): the
 * bucket *count* is fixed regardless of the range, which keeps the
 * export schema identical across grid cells that differ in structure
 * sizes (a requirement for sharded CSV merging).
 */
class Distribution : public StatBase
{
  public:
    Distribution(std::string name, std::string desc, std::uint64_t min,
                 std::uint64_t max, std::uint64_t bucketSize);

    /** A distribution over [min, max] with exactly @p numBuckets
     *  equal-width buckets (the last may reach past max). */
    static Distribution evenBuckets(std::string name, std::string desc,
                                    std::uint64_t min, std::uint64_t max,
                                    std::size_t numBuckets);

    /** Record one sample. Inline: the cycle loop samples every
     *  structure occupancy each cycle plus one per pipeline event, so
     *  this runs tens of millions of times per simulation. */
    void
    sample(std::uint64_t v)
    {
        if (n == 0 || v < minSeen)
            minSeen = v;
        if (n == 0 || v > maxSeen)
            maxSeen = v;
        ++n;
        const double dv = static_cast<double>(v);
        sum += dv;
        sumSq += dv * dv;
        if (v < lo) {
            ++under;
        } else if (v > hi) {
            ++over;
        } else {
            ++buckets[(v - lo) / bsize];
        }
    }

    std::uint64_t bucketCount(std::size_t i) const { return buckets.at(i); }
    std::size_t numBuckets() const { return buckets.size(); }
    std::uint64_t underflows() const { return under; }
    std::uint64_t overflows() const { return over; }
    std::uint64_t samples() const { return n; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double stddev() const;
    std::uint64_t minSample() const { return minSeen; }
    std::uint64_t maxSample() const { return maxSeen; }

    void reset() override;
    void print(std::ostream &os) const override;
    void visit(StatVisitor &v) const override;

  private:
    std::uint64_t lo;
    std::uint64_t hi;
    std::uint64_t bsize;
    std::vector<std::uint64_t> buckets;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    std::uint64_t minSeen = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * A labelled 2-D counter matrix (e.g. issues per op class split by
 * first execution vs re-execution). Rows and columns are fixed at
 * construction, so the visitation schema never depends on the data.
 * Each cell visits as "name.<row>.<col>".
 */
class Counter2D : public StatBase
{
  public:
    Counter2D(std::string name, std::string desc,
              std::vector<std::string> rowNames,
              std::vector<std::string> colNames);

    void
    inc(std::size_t row, std::size_t col, std::uint64_t d = 1)
    {
        counts.at(row * cols.size() + col) += d;
    }

    std::uint64_t
    count(std::size_t row, std::size_t col) const
    {
        return counts.at(row * cols.size() + col);
    }

    std::uint64_t rowTotal(std::size_t row) const;
    std::uint64_t colTotal(std::size_t col) const;
    std::uint64_t total() const;

    std::size_t numRows() const { return rows.size(); }
    std::size_t numCols() const { return cols.size(); }

    void reset() override;
    void print(std::ostream &os) const override;
    void visit(StatVisitor &v) const override;

  private:
    std::vector<std::string> rows;
    std::vector<std::string> cols;
    std::vector<std::uint64_t> counts;  ///< row-major
};

/**
 * A named collection of statistics. Groups own no stat storage — stats
 * live as members of their subsystem and register themselves here.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : groupName(std::move(name)) {}

    void add(StatBase *stat) { statList.push_back(stat); }

    const std::string &name() const { return groupName; }
    const std::vector<StatBase *> &all() const { return statList; }

    void resetAll();
    void print(std::ostream &os) const;

    /** Enumerate every stat in registration order, with each name
     *  prefixed "<group>." so records from different groups can share a
     *  flat namespace. */
    void visit(StatVisitor &v) const;

  private:
    std::string groupName;
    std::vector<StatBase *> statList;
};

/**
 * The stats tree of one simulated core: every component registers its
 * StatGroup(s) here, optionally with an update hook (bring derived
 * values — rates, interval deltas — up to date before a visit) and a
 * reset hook (begin a measurement interval; defaults to resetAll on the
 * group). Registration order is visitation order, which makes the
 * export schema a deterministic function of construction order alone.
 */
class StatRegistry
{
  public:
    /** One registered group with its hooks. */
    struct Entry
    {
        StatGroup *group;
        std::function<void()> update;  ///< may be empty
        std::function<void()> reset;   ///< empty = group->resetAll()
    };

    void
    add(StatGroup *group, std::function<void()> update = {},
        std::function<void()> reset = {})
    {
        entryList.push_back({group, std::move(update), std::move(reset)});
        namesVerified = false;
    }

    /** Run every update hook, then visit every group in order. */
    void visit(StatVisitor &v);

    /** Begin a measurement interval across the whole tree. */
    void reset();

    /** Human-readable dump of the whole tree (updates first). */
    void print(std::ostream &os);

    const std::vector<Entry> &entries() const { return entryList; }

  private:
    std::vector<Entry> entryList;
    /** The duplicate-name invariant has been checked by a full walk;
     *  later walks skip the per-name set insertions. Cleared when a
     *  group is added so late registration is still checked. */
    bool namesVerified = false;
};

} // namespace vpr::stats

#endif // VPR_COMMON_STATS_HH
