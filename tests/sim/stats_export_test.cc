/**
 * @file
 * End-to-end checks of the component-owned stats tree: a simulation's
 * MetricsRecord is one walk of the tree, distributions flow into it
 * with stable dotted names, and the export schema is identical across
 * schemes and structure sizes (the property sharded CSV merging needs).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace vpr
{
namespace
{

SimConfig
tiny(RenameScheme scheme = RenameScheme::VPAllocAtWriteback)
{
    SimConfig c = paperConfig();
    c.setScheme(scheme);
    c.skipInsts = 1000;
    c.measureInsts = 8000;
    c.core.fetch.wrongPath = WrongPathMode::Stall;
    return c;
}

TEST(StatsExport, RecordCarriesEveryComponentGroup)
{
    SimResults r = runOne("swim", tiny());
    const MetricsRecord &m = r.metrics;

    // One stable dotted name per component tree node.
    for (const char *name :
         {"core.cycles", "core.squashed", "core.ipc",
          "core.exec_per_commit", "rob.occupancy.mean",
          "rob.occupancy.stddev", "rob.occupancy.range_min",
          "rob.occupancy.bucket_size", "rob.occupancy.hist[0]",
          "iq.occupancy.mean", "iq.wakeup_broadcasts",
          "iq.operands_woken", "lsq.occupancy.mean", "lsq.forwards",
          "memory.cache_accesses", "memory.cache_misses",
          "memory.cache_miss_rate", "branch.bht_accuracy",
          "rename.mean_hold_cycles_int", "rename.mean_hold_cycles_fp",
          "rename.vp.lifetime.int.mean", "rename.vp.lifetime.fp.hist[0]",
          "regfile.occupancy.int.mean", "regfile.occupancy.fp.hist[15]",
          "regfile.peak_busy_fp", "commit.committed",
          "commit.committed_executions", "commit.store_stalls",
          "complete.wb_rejections", "issue.issued",
          "issue.issued_by_class.fpadd.first",
          "issue.issued_by_class.fpadd.reexec", "rename.stall_reg",
          "fetch.branches", "fetch.mispredicts"})
        EXPECT_TRUE(m.has(name)) << name;

    // Occupancies are sampled once per measured cycle.
    EXPECT_EQ(m.counter("rob.occupancy.samples"),
              m.counter("core.cycles"));
    EXPECT_EQ(m.counter("regfile.occupancy.fp.samples"),
              m.counter("core.cycles"));

    // The histogram integrates to the sample count.
    std::uint64_t total = 0;
    for (int i = 0; i < 16; ++i)
        total += m.counter("rob.occupancy.hist[" + std::to_string(i) +
                           "]");
    total += m.counter("rob.occupancy.underflows");
    total += m.counter("rob.occupancy.overflows");
    EXPECT_EQ(total, m.counter("rob.occupancy.samples"));

    // The issued_by_class matrix sums to the issue counter.
    std::uint64_t issued = 0;
    for (const Metric &metric : m.all())
        if (metric.name().rfind("issue.issued_by_class.", 0) == 0)
            issued += metric.uval;
    EXPECT_EQ(issued, m.counter("issue.issued"));
}

TEST(StatsExport, SchemaIsIdenticalAcrossSchemesAndSizes)
{
    // Every grid cell of a sweep must produce the same metric names in
    // the same order, whatever its scheme or register-file size —
    // otherwise the CSV writer (rightly) refuses to export the grid.
    SimResults ref = runOne("compress", tiny());
    for (RenameScheme scheme : {RenameScheme::Conventional,
                                RenameScheme::ConventionalEarlyRelease,
                                RenameScheme::VPAllocAtIssue}) {
        SimResults r = runOne("compress", tiny(scheme));
        EXPECT_TRUE(ref.metrics.sameSchema(r.metrics))
            << renameSchemeName(scheme);
    }
    for (std::uint16_t regs : {48, 96}) {
        SimConfig c = tiny();
        c.setPhysRegs(regs);
        SimResults r = runOne("compress", c);
        EXPECT_TRUE(ref.metrics.sameSchema(r.metrics)) << regs;
    }
    SimConfig big = tiny();
    big.core.robSize = big.core.iqSize = big.core.lsqSize = 256;
    big.setPhysRegs(big.core.rename.numPhysRegs);  // re-derive VP pool
    EXPECT_TRUE(
        ref.metrics.sameSchema(runOne("compress", big).metrics));
}

TEST(StatsExport, MeasurementIntervalExcludesWarmup)
{
    // The same workload measured after different warm-ups: interval
    // counters must reflect only the measured slice.
    SimConfig c = tiny();
    c.skipInsts = 0;
    c.measureInsts = 5000;
    SimResults all = runOne("li", c);
    c.skipInsts = 5000;
    SimResults tail = runOne("li", c);
    // The 8-wide commit can overshoot the target within the last cycle.
    EXPECT_GE(all.committed(), 5000u);
    EXPECT_LT(all.committed(), 5008u);
    EXPECT_GE(tail.committed(), 5000u);
    EXPECT_LT(tail.committed(), 5008u);
    EXPECT_EQ(tail.metrics.counter("rob.occupancy.samples"),
              tail.cycles());
}

} // namespace
} // namespace vpr
