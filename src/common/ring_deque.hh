/**
 * @file
 * A power-of-two ring buffer with a deque's interface and a vector's
 * allocation behaviour.
 *
 * std::deque slides a chunk allocation past the allocator for every
 * chunk's worth of FIFO traffic (push_back maps a fresh chunk as the
 * tail fills, pop_front unmaps the head chunk as it drains), so a
 * deque in the simulated hot loop allocates forever at steady state.
 * This ring grows like a vector — capacity doublings only — and then
 * never touches the allocator again: pushes and pops just move the
 * head/count indices.
 *
 * The interface is the subset the pipeline structures need: indexed
 * access in logical (FIFO) order, both-end push/pop, and positional
 * erase. Erase shifts whichever side of the ring is shorter, so
 * removing near the front (the common case — commit removes the
 * oldest) is O(1)-ish rather than O(n).
 */

#ifndef VPR_COMMON_RING_DEQUE_HH
#define VPR_COMMON_RING_DEQUE_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace vpr
{

template <typename T>
class RingDeque
{
  public:
    RingDeque() : buf(kMinCapacity) {}

    std::size_t size() const { return num; }
    bool empty() const { return num == 0; }

    /** Element at logical position @p i, 0 = front/oldest. */
    T &
    operator[](std::size_t i)
    {
        return buf[(head + i) & (buf.size() - 1)];
    }

    const T &
    operator[](std::size_t i) const
    {
        return buf[(head + i) & (buf.size() - 1)];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[num - 1]; }
    const T &back() const { return (*this)[num - 1]; }

    void
    push_back(const T &v)
    {
        if (num == buf.size())
            grow();
        ++num;
        back() = v;
    }

    void
    pop_front()
    {
        VPR_ASSERT(num != 0, "pop_front on empty RingDeque");
        head = (head + 1) & (buf.size() - 1);
        --num;
    }

    void
    pop_back()
    {
        VPR_ASSERT(num != 0, "pop_back on empty RingDeque");
        --num;
    }

    /** Erase the element at logical position @p i, shifting the
     *  shorter side over it. */
    void
    erase(std::size_t i)
    {
        VPR_ASSERT(i < num, "RingDeque erase out of range");
        if (i < num / 2) {
            for (std::size_t j = i; j > 0; --j)
                (*this)[j] = (*this)[j - 1];
            pop_front();
        } else {
            for (std::size_t j = i; j + 1 < num; ++j)
                (*this)[j] = (*this)[j + 1];
            pop_back();
        }
    }

    void
    clear()
    {
        head = 0;
        num = 0;
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;

    void
    grow()
    {
        std::vector<T> bigger(buf.size() * 2);
        for (std::size_t i = 0; i < num; ++i)
            bigger[i] = (*this)[i];
        buf.swap(bigger);
        head = 0;
    }

    std::vector<T> buf;  ///< power-of-two capacity
    std::size_t head = 0;
    std::size_t num = 0;
};

} // namespace vpr

#endif // VPR_COMMON_RING_DEQUE_HH
