/** @file Unit tests for SimConfig and the paper machine defaults. */

#include <gtest/gtest.h>

#include "sim/config.hh"

namespace vpr
{
namespace
{

TEST(SimConfig, PaperMachineDefaults)
{
    SimConfig c = paperConfig();
    // Section 4.1 of the paper.
    EXPECT_EQ(c.core.fetch.fetchWidth, 8u);
    EXPECT_EQ(c.core.commitWidth, 8u);
    EXPECT_EQ(c.core.robSize, 128u);
    EXPECT_EQ(c.core.fetch.bhtEntries, 2048u);
    EXPECT_EQ(c.core.regReadPorts, 16u);
    EXPECT_EQ(c.core.regWritePorts, 8u);
    EXPECT_EQ(c.core.cachePorts, 3u);
    EXPECT_EQ(c.core.cache.sizeBytes, 16u * 1024u);
    EXPECT_EQ(c.core.cache.lineSize, 32u);
    EXPECT_EQ(c.core.cache.hitLatency, 2u);
    EXPECT_EQ(c.core.cache.missPenalty, 50u);
    EXPECT_EQ(c.core.cache.numMshrs, 8u);
    EXPECT_EQ(c.core.cache.busOccupancy, 4u);
    EXPECT_EQ(c.core.rename.numPhysRegs, 64);
    EXPECT_EQ(c.core.rename.nrrInt, 32);
    EXPECT_EQ(c.core.rename.numVPRegs, 32 + 128);
    c.validate();
}

TEST(SimConfig, SetPhysRegsDefaultsNrrToMax)
{
    SimConfig c = paperConfig();
    c.setPhysRegs(48);
    EXPECT_EQ(c.core.rename.numPhysRegs, 48);
    EXPECT_EQ(c.core.rename.nrrInt, 16);
    EXPECT_EQ(c.core.rename.nrrFp, 16);
    c.setPhysRegs(96, 8);
    EXPECT_EQ(c.core.rename.nrrInt, 8);
    c.validate();
}

TEST(SimConfig, SetPhysRegsResizesVpPoolToWindow)
{
    SimConfig c = paperConfig();
    c.core.robSize = 256;
    c.core.iqSize = 256;
    c.setPhysRegs(64);
    EXPECT_EQ(c.core.rename.numVPRegs, 32 + 256);
    c.validate();
}

TEST(SimConfig, SetSchemeAndNrr)
{
    SimConfig c = paperConfig();
    c.setScheme(RenameScheme::VPAllocAtIssue);
    EXPECT_EQ(c.core.scheme, RenameScheme::VPAllocAtIssue);
    c.setNrr(4);
    EXPECT_EQ(c.core.rename.nrrInt, 4);
    EXPECT_EQ(c.core.rename.nrrFp, 4);
}

TEST(SimConfigDeath, ValidateRejectsTooFewPhysRegs)
{
    SimConfig c = paperConfig();
    c.core.rename.numPhysRegs = 32;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "must exceed");
}

TEST(SimConfigDeath, ValidateRejectsSmallVpPool)
{
    SimConfig c = paperConfig();
    c.core.rename.numVPRegs = 100;  // < 32 + 128
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "NLR \\+ window");
}

TEST(SimConfigDeath, ValidateRejectsOversizedNrr)
{
    SimConfig c = paperConfig();
    c.core.rename.nrrInt = 40;  // > 64 - 32
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "NRR must be <=");
}

TEST(SimConfigDeath, ValidateRejectsSmallIq)
{
    SimConfig c = paperConfig();
    c.core.iqSize = 64;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "iqSize");
}

} // namespace
} // namespace vpr
