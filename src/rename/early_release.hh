/**
 * @file
 * Conventional renaming with counter-based early register release.
 *
 * The paper (section 3.1) distinguishes two sources of register waste
 * under decode-time allocation and cites Moudgill et al. and Smith &
 * Sohi for eliminating the second one: a value whose readers have all
 * read it and whose logical register has been renamed again still holds
 * its physical register until the superseding instruction *commits*.
 * This renamer frees such registers as soon as
 *
 *   (a) the value has been produced (write-back done),
 *   (b) the logical register has been renamed again (superseded), and
 *   (c) no in-flight reader still needs to read it (pending-reader
 *       counter is zero).
 *
 * It is provided as an *ablation* against virtual-physical registers:
 * the paper argues the first waste factor (decode→write-back holding)
 * dominates; `bench/ablation_early_release` quantifies that claim.
 *
 * Restriction: early release is incompatible with squash-based recovery
 * unless counters are checkpointed (as the original papers do). Use it
 * with `WrongPathMode::Stall` (the paper's trace-driven methodology,
 * where no wrong-path instructions are ever renamed); squashing an
 * instruction whose previous mapping was already released panics.
 */

#ifndef VPR_RENAME_EARLY_RELEASE_HH
#define VPR_RENAME_EARLY_RELEASE_HH

#include <unordered_set>

#include "rename/conventional.hh"

namespace vpr
{

/** Conventional renamer + pending-reader counters for early freeing. */
class EarlyReleaseRename : public ConventionalRename
{
  public:
    explicit EarlyReleaseRename(const RenameConfig &config);

    RenameScheme
    scheme() const override
    {
        return RenameScheme::ConventionalEarlyRelease;
    }

    void renameInst(DynInst &inst, Cycle now) override;
    bool tryIssue(DynInst &inst, Cycle now) override;
    CompleteResult complete(DynInst &inst, Cycle now) override;
    void commitInst(DynInst &inst, Cycle now) override;
    void squashInst(DynInst &inst, Cycle now) override;
    void checkInvariants() const override;
    void reinit() override;
    void visitState(StateVisitor &v) override;

    /** Registers freed before their superseder committed. */
    std::uint64_t earlyReleases() const { return nEarlyReleases; }

    /** Pending-reader count of a register (tests). */
    unsigned
    pendingReaders(RegClass cls, PhysRegId reg) const
    {
        return state[classIdx(cls)][reg].pendingReaders;
    }

  private:
    struct RegState
    {
        unsigned pendingReaders = 0;
        bool written = false;     ///< value produced
        bool superseded = false;  ///< logical register renamed again
        bool earlyFreed = false;  ///< released before superseder commit
        InstSeqNum supersederSeq = kNoSeqNum; ///< who superseded it
    };

    /** Free @p reg early if (a), (b) and (c) all hold. */
    void maybeRelease(RegClass cls, PhysRegId reg, Cycle now);

    std::vector<RegState> state[kNumRegClasses];
    /** Superseders whose previous mapping was already released; their
     *  commit must not free it again (the register may have been
     *  reallocated by then, so this cannot live in RegState). */
    std::unordered_set<InstSeqNum> owedFrees;
    std::uint64_t nEarlyReleases = 0;
};

} // namespace vpr

#endif // VPR_RENAME_EARLY_RELEASE_HH
