/**
 * @file
 * Self-tests for the allocation-accounting harness: the zero-alloc
 * regression tests are only as trustworthy as the hook they stand on,
 * so pin its install/uninstall behaviour and nested-scope arithmetic
 * here.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alloc_count.hh"

namespace vpr
{
namespace
{

using testsupport::AllocGuard;
using testsupport::allocScopeDepth;
using testsupport::recordedAllocs;

// Defeat allocation elision: the compiler may drop a new/delete pair
// it can prove unobservable, which would make these tests vacuous.
void
touch(std::unique_ptr<int> &p)
{
    static volatile int sink = 0;
    sink = sink + *p;
}

TEST(AllocCount, DisarmedOutsideAnyScope)
{
    ASSERT_EQ(allocScopeDepth(), 0);
    const std::uint64_t before = recordedAllocs();
    auto p = std::make_unique<int>(42);
    touch(p);
    EXPECT_EQ(recordedAllocs(), before);
}

TEST(AllocCount, CountsInsideScope)
{
    AllocGuard g;
    EXPECT_EQ(allocScopeDepth(), 1);
    EXPECT_EQ(g.count(), 0u);
    auto p = std::make_unique<int>(42);
    touch(p);
    EXPECT_GE(g.count(), 1u);
}

TEST(AllocCount, UninstallsWhenScopeCloses)
{
    {
        AllocGuard g;
        auto p = std::make_unique<int>(1);
        touch(p);
    }
    ASSERT_EQ(allocScopeDepth(), 0);
    const std::uint64_t before = recordedAllocs();
    auto p = std::make_unique<int>(2);
    touch(p);
    EXPECT_EQ(recordedAllocs(), before);
}

TEST(AllocCount, NestedScopesEachSeeTheirWindow)
{
    AllocGuard outer;
    auto a = std::make_unique<int>(1);
    touch(a);
    const std::uint64_t outerBeforeInner = outer.count();
    EXPECT_GE(outerBeforeInner, 1u);
    {
        AllocGuard inner;
        EXPECT_EQ(allocScopeDepth(), 2);
        EXPECT_EQ(inner.count(), 0u);
        auto b = std::make_unique<int>(2);
        touch(b);
        EXPECT_GE(inner.count(), 1u);
        // The outer guard sees the inner window's allocations too.
        EXPECT_EQ(outer.count(), outerBeforeInner + inner.count());
    }
    EXPECT_EQ(allocScopeDepth(), 1);
}

TEST(AllocCount, VectorGrowthIsVisible)
{
    AllocGuard g;
    std::vector<int> v;
    v.reserve(64);
    EXPECT_GE(g.count(), 1u);
}

TEST(AllocCount, FreesAreNotCounted)
{
    auto p = std::make_unique<std::vector<int>>(1024);
    AllocGuard g;
    p.reset();
    EXPECT_EQ(g.count(), 0u);
}

} // namespace
} // namespace vpr
