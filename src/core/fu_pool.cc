#include "core/fu_pool.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/params.hh"

namespace vpr
{

void
FuPoolConfig::visitParams(ParamVisitor &v)
{
    v.uintParam("simple_int", simpleInt,
                "simple-integer units (fully pipelined)");
    v.uintParam("complex_int", complexInt,
                "complex-integer units (mul pipelined, div holds the "
                "unit)");
    v.uintParam("eff_addr", effAddr,
                "effective-address units (fully pipelined)");
    v.uintParam("simple_fp", simpleFp,
                "simple-FP units (fully pipelined)");
    v.uintParam("fp_mul", fpMul, "FP multiply units (fully pipelined)");
    v.uintParam("fp_div_sqrt", fpDivSqrt,
                "FP divide/sqrt units (unpipelined)");
}

unsigned
FuPoolConfig::count(FUType t) const
{
    switch (t) {
      case FUType::SimpleInt: return simpleInt;
      case FUType::ComplexInt: return complexInt;
      case FUType::EffAddr: return effAddr;
      case FUType::SimpleFp: return simpleFp;
      case FUType::FpMul: return fpMul;
      case FUType::FpDivSqrt: return fpDivSqrt;
      case FUType::None: return ~0u;  // nops need no unit
      default: VPR_PANIC("bad FU type");
    }
}

FuPool::FuPool(const FuPoolConfig &config) : cfg(config)
{
    for (std::size_t i = 0; i < kNumFUTypes; ++i)
        counts[i] = cfg.count(static_cast<FUType>(i));
}

void
FuPool::beginCycle(Cycle now)
{
    usedThisCycle.fill(0);
    // Drop expired unpipelined reservations.
    for (auto &v : busyUntil) {
        v.erase(std::remove_if(v.begin(), v.end(),
                               [now](Cycle c) { return c <= now; }),
                v.end());
    }
}

bool
FuPool::tryIssue(OpClass op, Cycle now, Cycle completeCycle)
{
    FUType t = fuTypeFor(op);
    if (t == FUType::None) {
        ++issued[static_cast<std::size_t>(t)];
        return true;
    }
    if (available(t, now) == 0) {
        ++nHazards;
        return false;
    }
    std::size_t i = static_cast<std::size_t>(t);
    ++issued[i];
    if (opUnpipelined(op)) {
        // The busy-until entry covers the issue cycle as well (the
        // completion cycle is strictly in the future), so the
        // per-cycle counter must not double-count the unit.
        busyUntil[i].push_back(completeCycle);
    } else {
        ++usedThisCycle[i];
    }
    return true;
}

} // namespace vpr
