/**
 * @file
 * Issue stage: oldest-first selection over ready IQ entries constrained
 * by functional units, register-file read ports, cache ports, memory
 * disambiguation and the renamer's issue gate. Completion events it
 * schedules land in the CompletionQueue latch consumed by the complete
 * stage.
 */

#ifndef VPR_CORE_STAGES_ISSUE_STAGE_HH
#define VPR_CORE_STAGES_ISSUE_STAGE_HH

#include "common/stats.hh"
#include "core/stages/latches.hh"
#include "core/stages/pipeline_state.hh"
#include "core/stages/stage.hh"

namespace vpr
{

/** The issue/execute stage. */
class IssueStage : public Stage
{
  public:
    IssueStage(PipelineState &state, CompletionQueue &completionQueue);

    const char *name() const override { return "issue"; }

    void tick() override;

    void
    squash(InstSeqNum) override
    {
        // Selection re-reads the IQ each cycle; nothing buffered here.
    }

  private:
    /** Try to issue one instruction; true on success. */
    bool tryIssueOne(DynInst *inst);

    PipelineState &s;
    CompletionQueue &completions;

    stats::StatGroup group{"issue"};
    stats::Scalar issued{"issued", "instructions issued"};
    stats::Counter2D byClass;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_ISSUE_STAGE_HH
