/**
 * @file
 * Fetch unit.
 *
 * Fetches up to fetchWidth consecutive instructions per cycle from the
 * trace (perfect instruction cache, as in the paper). A fetch group ends
 * at a predicted-taken branch. Branch directions come from the BHT;
 * targets come from the trace (perfect BTB).
 *
 * Because the simulator is trace driven, a misprediction cannot redirect
 * fetch down the *actual* wrong path. Two models are provided:
 *
 *  - wrong-path synthesis (default): after a mispredicted branch, fetch
 *    produces synthetic wrong-path instructions that are renamed,
 *    scheduled and executed normally and squashed when the branch
 *    resolves — so mispredictions consume registers, queue slots and
 *    functional units, which matters for a register-pressure study;
 *  - fetch stall: fetch simply stops until the branch resolves (the
 *    classic trace-driven simplification).
 */

#ifndef VPR_CORE_FETCH_HH
#define VPR_CORE_FETCH_HH

#include "branch/bht.hh"
#include "common/circular_buffer.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "trace/stream.hh"

namespace vpr
{

class ParamVisitor;
class NonBlockingCache;

/** How fetch behaves after a detected misprediction. */
enum class WrongPathMode : std::uint8_t
{
    Synthesize,  ///< fetch synthetic wrong-path instructions
    Stall        ///< stop fetching until the branch resolves
};

/** One fetched instruction awaiting rename. */
struct FetchedInst
{
    StaticInst si;
    bool wrongPath = false;
    bool mispredictedBranch = false;
    Cycle fetchCycle = kNoCycle;
};

/** Fetch-unit parameters. */
struct FetchConfig
{
    unsigned fetchWidth = 8;
    unsigned bufferCapacity = 16;
    unsigned bhtEntries = 2048;
    unsigned redirectDelay = 1;  ///< cycles from resolve to next fetch
    WrongPathMode wrongPath = WrongPathMode::Synthesize;
    std::uint64_t wrongPathSeed = 0x77f00dull;

    /**
     * Let synthesized wrong-path instructions include loads and stores
     * that really probe the cache and LSQ (speculative pollution).
     * Off by default: the paper's methodology keeps wrong-path memory
     * accesses out of scope, and the reproduction numbers match it.
     */
    bool wrongPathMem = false;

    /** Reflect the fetch parameters (sim/params.hh). */
    void visitParams(ParamVisitor &v);
};

/** Short stable name for a WrongPathMode ("stall"/"synthesize"). */
const char *wrongPathModeName(WrongPathMode mode);

/** The fetch unit. */
class FetchUnit
{
  public:
    FetchUnit(TraceStream &stream, const FetchConfig &config);

    /** Run one fetch cycle, filling the fetch buffer. */
    void tick(Cycle now);

    /** Instructions available for rename this cycle. */
    bool hasInst() const { return !buffer.empty(); }
    const FetchedInst &peek() const { return buffer.front(); }
    FetchedInst pop();

    /** The mispredicted branch resolved; redirect fetch. */
    void resolveBranch(Cycle now);

    /**
     * Pause/resume detailed fetch. While paused, tick() is a no-op, so
     * the pipeline behind the fetch buffer can drain without consuming
     * trace records — the quiesce step before a sampled fast-forward.
     */
    void setPaused(bool p) { paused = p; }

    /**
     * Retire up to @p n trace records through the functional-warming
     * path: no buffering, no fetch-group shaping, no wrong-path
     * machinery — but branches train the BHT and memory ops probe
     * @p cache, so long-lived microarchitectural state stays warm
     * across a fast-forward. @p now advances one cycle per instruction
     * (the cache's MSHR/fill machinery is timestamp ordered and needs
     * a moving clock). Whole-run fetch/branch counters are untouched;
     * the detailed intervals own those. Requires the buffer to be
     * empty and no mispredict outstanding (the caller drains first).
     * One batched call per fast-forward keeps the per-instruction cost
     * at the trace-generation + cache-probe floor.
     * @return records actually retired; fewer than @p n only at end of
     * trace.
     */
    std::size_t warmFunctional(std::size_t n, NonBlockingCache &cache,
                               Cycle &now);

    /**
     * Skip @p n records without observing them at all (fast-forward
     * with functional warming disabled). @return records actually
     * skipped; fewer than @p n only at end of trace.
     */
    std::size_t skipFunctional(std::size_t n);

    /**
     * Return to the constructed state — buffer empty, BHT cold,
     * wrong-path synthesizer reseeded, counters zeroed (simulator reuse
     * between grid cells). The trace stream is shared with the owner,
     * who rewinds it separately.
     */
    void reinit();

    /** True while fetch is past an unresolved mispredicted branch. */
    bool awaitingResolve() const { return waiting; }

    /** Trace exhausted and buffer drained. */
    bool done() const { return exhausted && buffer.empty() && !waiting; }

    const BhtPredictor &predictor() const { return bht; }

    /** The trace stream fetch reads from (checkpointing). */
    TraceStream &stream() { return trace; }
    const TraceStream &stream() const { return trace; }

    /**
     * Serialize/restore fetch state at a drained point (buffer empty,
     * no mispredict outstanding). Functional scope covers the warm
     * subset that survives a fast-forward: trace position and BHT.
     * Full scope adds the wrong-path synthesizer and the whole-run
     * fetch/branch counters.
     */
    void visitState(StateVisitor &v, CkptScope scope);

    /** Statistics. @{ */
    std::uint64_t fetchedReal() const { return nReal; }
    std::uint64_t fetchedWrongPath() const { return nWrongPath; }
    std::uint64_t branches() const { return nBranches; }
    std::uint64_t mispredicts() const { return nMispredicts; }
    /** @} */

    /** Register the "branch" stat group (predictor accuracy, whole-run)
     *  into the core's stats tree. */
    void
    regStats(stats::StatRegistry &r)
    {
        r.add(&branchGroup,
              [this] { bhtAccuracy.set(bht.accuracy()); });
    }

  private:
    /** Generate one synthetic wrong-path instruction. */
    StaticInst synthesizeWrongPath();

    TraceStream &trace;
    FetchConfig cfg;
    BhtPredictor bht;
    /** Bounded FIFO between fetch and rename — a fixed ring, not a
     *  deque: fetch pushes and rename pops every cycle of the run. */
    CircularBuffer<FetchedInst> buffer;

    bool waiting = false;     ///< unresolved mispredicted branch
    bool paused = false;      ///< detailed fetch suspended (quiesce)
    Cycle stallUntil = 0;     ///< no fetch before this cycle
    bool exhausted = false;
    Random wpRng;
    Addr wpPc = 0xdead0000;

    std::uint64_t nReal = 0;
    std::uint64_t nWrongPath = 0;
    std::uint64_t nBranches = 0;
    std::uint64_t nMispredicts = 0;

    stats::StatGroup branchGroup{"branch"};
    stats::Real bhtAccuracy{"bht_accuracy", "branch predictor accuracy"};
};

} // namespace vpr

#endif // VPR_CORE_FETCH_HH
