/** @file Unit tests for StaticInst. */

#include <gtest/gtest.h>

#include "isa/static_inst.hh"

namespace vpr
{
namespace
{

TEST(StaticInst, AluBuilder)
{
    auto si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                              RegId::intReg(3));
    EXPECT_EQ(si.op, OpClass::IntAlu);
    EXPECT_TRUE(si.hasDest());
    EXPECT_EQ(si.dest, RegId::intReg(1));
    EXPECT_EQ(si.numSrcs(), 2u);
    EXPECT_FALSE(si.isMem());
    EXPECT_FALSE(si.isBranch());
}

TEST(StaticInst, LoadBuilder)
{
    auto si = StaticInst::load(RegId::fpReg(2), RegId::intReg(6), 0x100);
    EXPECT_TRUE(si.isLoad());
    EXPECT_TRUE(si.isMem());
    EXPECT_EQ(si.effAddr, 0x100u);
    EXPECT_EQ(si.dest, RegId::fpReg(2));
    EXPECT_EQ(si.src[0], RegId::intReg(6));
    EXPECT_EQ(si.numSrcs(), 1u);
}

TEST(StaticInst, StoreHasNoDest)
{
    auto si = StaticInst::store(RegId::fpReg(2), RegId::intReg(6), 0x80);
    EXPECT_TRUE(si.isStore());
    EXPECT_FALSE(si.hasDest());
    // src[0] = data, src[1] = address base.
    EXPECT_EQ(si.src[0], RegId::fpReg(2));
    EXPECT_EQ(si.src[1], RegId::intReg(6));
}

TEST(StaticInst, BranchCarriesOutcome)
{
    auto si = StaticInst::branch(RegId::intReg(1), true, 0x4000);
    EXPECT_TRUE(si.isBranch());
    EXPECT_TRUE(si.taken);
    EXPECT_EQ(si.target, 0x4000u);
    EXPECT_FALSE(si.hasDest());
}

TEST(StaticInst, NopHasNothing)
{
    auto si = StaticInst::nop();
    EXPECT_TRUE(si.isNop());
    EXPECT_FALSE(si.hasDest());
    EXPECT_EQ(si.numSrcs(), 0u);
}

TEST(StaticInst, FpSqrtSingleSource)
{
    auto si = StaticInst::fpSqrt(RegId::fpReg(1), RegId::fpReg(2));
    EXPECT_EQ(si.op, OpClass::FpSqrt);
    EXPECT_EQ(si.numSrcs(), 1u);
}

TEST(StaticInst, DisassembleMentionsOperands)
{
    auto si = StaticInst::fpMul(RegId::fpReg(5), RegId::fpReg(1),
                                RegId::fpReg(2));
    si.pc = 0x1000;
    auto d = si.disassemble();
    EXPECT_NE(d.find("fpmult"), std::string::npos);
    EXPECT_NE(d.find("f5"), std::string::npos);
    EXPECT_NE(d.find("f1"), std::string::npos);
    EXPECT_NE(d.find("1000"), std::string::npos);
}

TEST(StaticInst, DisassembleBranchDirection)
{
    auto t = StaticInst::branch(RegId::intReg(1), true, 0x2000);
    auto n = StaticInst::branch(RegId::intReg(1), false, 0x2000);
    EXPECT_NE(t.disassemble().find(" T->"), std::string::npos);
    EXPECT_NE(n.disassemble().find(" NT->"), std::string::npos);
}

TEST(StaticInst, DefaultMemSize)
{
    auto si = StaticInst::load(RegId::intReg(1), RegId::intReg(2), 0x0);
    EXPECT_EQ(si.memSize, 8);
}

} // namespace
} // namespace vpr
