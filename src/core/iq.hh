/**
 * @file
 * Instruction queue with broadcast wakeup and oldest-first selection.
 *
 * Entries are the Figure-2 IQ fields, held inside DynInst (Src/R bits).
 * Completion broadcasts a (class, wakeup tag, physical register) triple;
 * matching sources capture the physical register and set their R bit —
 * exactly the paper's mechanism where a virtual-physical tag is replaced
 * by the allocated physical register. The conventional scheme broadcasts
 * physical tags and the capture is the identity.
 */

#ifndef VPR_CORE_IQ_HH
#define VPR_CORE_IQ_HH

#include <cstdint>
#include <vector>

#include "core/dyn_inst.hh"
#include "isa/reg.hh"

namespace vpr
{

/** The unified instruction queue. */
class InstQueue
{
  public:
    explicit InstQueue(std::size_t capacity) : cap(capacity) {}

    bool full() const { return list.size() >= cap; }
    bool empty() const { return list.empty(); }
    std::size_t size() const { return list.size(); }
    std::size_t capacity() const { return cap; }

    /**
     * Insert @p inst keeping age order. Newly renamed instructions go to
     * the back; re-inserted (squashed-at-writeback) instructions find
     * their place by sequence number.
     */
    void insert(DynInst *inst);

    /**
     * Remove a specific entry. The list is seq-ordered, so the entry is
     * located by binary search — O(log n) compare plus the erase shift,
     * not a linear scan.
     */
    void remove(DynInst *inst);

    /** Entry at age-order position @p i (0 = oldest). */
    DynInst *
    at(std::size_t i) const
    {
        return list[i];
    }

    /** Remove the entry at age-order position @p i — the issue path,
     *  where the caller already knows the position. */
    void removeAt(std::size_t i);

    /** Remove every entry younger than @p seq (branch recovery). */
    void squashYoungerThan(InstSeqNum seq);

    /**
     * Broadcast a completed value: sources of class @p cls waiting on
     * @p tag become ready and capture @p physReg.
     * @return number of source operands woken.
     */
    unsigned wakeup(RegClass cls, std::uint16_t tag, std::uint16_t physReg);

    /** Age-ordered entries, oldest first (selection scans this). */
    const std::vector<DynInst *> &entries() const { return list; }

    void clear() { list.clear(); }

  private:
    std::size_t cap;
    std::vector<DynInst *> list;  ///< sorted by seq, oldest first
};

} // namespace vpr

#endif // VPR_CORE_IQ_HH
