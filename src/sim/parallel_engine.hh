/**
 * @file
 * ParallelExperimentEngine: runs (benchmark × scheme × parameter) grid
 * cells on a pool of worker threads.
 *
 * Every Simulator owns its trace stream and core, so grid cells are
 * share-nothing and embarrassingly parallel; the only shared state is
 * the atomic work-queue cursor. Results are written into a slot indexed
 * by the cell's position, so the output order — and therefore every
 * table printed from it — is byte-identical regardless of the number of
 * jobs or the interleaving of workers.
 */

#ifndef VPR_SIM_PARALLEL_ENGINE_HH
#define VPR_SIM_PARALLEL_ENGINE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace vpr
{

/**
 * One cell of an experiment grid: a benchmark under a configuration.
 * By default the benchmark name resolves through makeBenchmarkStream;
 * a cell may instead carry its own stream factory (custom traces), which
 * must be a pure function so re-running the cell is deterministic.
 */
struct GridCell
{
    GridCell() = default;

    GridCell(std::string bench, SimConfig cfg,
             std::function<std::unique_ptr<TraceStream>()> stream = {})
        : benchmark(std::move(bench)), config(std::move(cfg)),
          makeStream(std::move(stream))
    {}

    std::string benchmark;
    SimConfig config;
    std::function<std::unique_ptr<TraceStream>()> makeStream;
};

/** The work-queue + thread-pool experiment runner. */
class ParallelExperimentEngine
{
  public:
    /**
     * @param jobs worker threads; 1 = serial in the calling thread,
     *        0 = one per hardware thread.
     */
    explicit ParallelExperimentEngine(unsigned jobs = 1);

    /**
     * Run every cell and return results in cell order. The instruction
     * scale (VPR_INSTS_SCALE) is applied to each cell exactly as the
     * serial runOne does. Deterministic: results depend only on the
     * cells, never on jobs or scheduling.
     */
    std::vector<SimResults> run(const std::vector<GridCell> &cells) const;

    unsigned jobs() const { return nJobs; }

    /** Threads actually used for @p cellCount cells. */
    unsigned workersFor(std::size_t cellCount) const;

  private:
    unsigned nJobs;
};

} // namespace vpr

#endif // VPR_SIM_PARALLEL_ENGINE_HH
