/**
 * @file
 * Explore the paper's key design parameter: NRR, the number of oldest
 * destination-writing instructions guaranteed a physical register
 * (section 3.3). Runs one benchmark across the full NRR range for both
 * allocation policies and prints the speedup curve over conventional
 * renaming — the per-benchmark view behind Figures 4 and 5.
 *
 * The whole sweep is submitted to the ParallelExperimentEngine as one
 * grid; the printed table is byte-identical for every --jobs value.
 *
 * Usage: nrr_explorer [--jobs N] [--out F] [--set k=v] [--config=F]
 *                     [--dump-config] [benchmark] [physRegs]
 *        (defaults: hydro2d 64, jobs 1; jobs 0 = one per hw thread;
 *        --out writes one record per grid cell, CSV or .json; --set /
 *        --config override any dotted config parameter of the base
 *        machine — run vpr_sim --help-params for the list)
 */

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/params.hh"
#include "sim/results_io.hh"
#include "trace/kernels/kernels.hh"

using namespace vpr;

int
main(int argc, char **argv)
{
    std::string bench = "hydro2d";
    std::uint16_t physRegs = 64;
    unsigned jobs = 1;
    std::string outPath;
    ConfigCliArgs cliConfig;

    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = parseJobs(argv[++i]);
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            jobs = parseJobs(argv[i] + 7);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            outPath = argv[i] + 6;
        } else if (parseConfigArg(argc, argv, i, cliConfig)) {
            // --set / --set= / --config= / --dump-config taken.
        } else {
            positional.push_back(argv[i]);
        }
    }
    if (positional.size() > 0)
        bench = positional[0];
    if (positional.size() > 1)
        physRegs =
            static_cast<std::uint16_t>(std::atoi(positional[1].c_str()));

    SimConfig config = paperConfig();
    config.setPhysRegs(physRegs);
    config.skipInsts = 10000;
    config.measureInsts = 80000;
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    applyConfigCli(config, cliConfig);
    if (cliConfig.dumpConfig) {
        dumpConfig(std::cout, config);
        return 0;
    }

    // The NRR points of the sweep (powers of two up to NPR - NLR, with
    // the maximum always included). Read back from the config so a
    // --set/--config override of the register-file size is honoured.
    physRegs = config.core.rename.numPhysRegs;
    std::uint16_t maxNrr =
        static_cast<std::uint16_t>(physRegs - kNumLogicalRegs);
    std::vector<std::uint16_t> nrrs;
    for (std::uint16_t nrr = 1; nrr <= maxNrr; nrr *= 2) {
        nrrs.push_back(nrr);
        if (nrr == maxNrr)
            break;
        if (nrr * 2 > maxNrr)
            nrr = maxNrr / 2;  // make sure the max value is included
    }

    // One grid: the conventional baseline plus (writeback, issue) cells
    // for every NRR point.
    std::vector<GridCell> cells;
    config.setScheme(RenameScheme::Conventional);
    cells.push_back({bench, config});
    for (std::uint16_t nrr : nrrs) {
        config.setNrr(nrr);
        config.setScheme(RenameScheme::VPAllocAtWriteback);
        cells.push_back({bench, config});
        config.setScheme(RenameScheme::VPAllocAtIssue);
        cells.push_back({bench, config});
    }
    std::vector<SimResults> results = runGrid(cells, jobs);

    if (!outPath.empty())
        exportAllCells(outPath, "nrr_explorer", cells, results);

    double conv = results[0].ipc();
    std::cout << "benchmark " << bench << ", " << physRegs
              << " physical registers/file; conventional IPC = "
              << std::fixed << std::setprecision(3) << conv << "\n\n";
    std::cout << std::setw(6) << "NRR" << std::setw(14) << "writeback"
              << std::setw(14) << "issue" << "   (speedup over conv)\n";

    for (std::size_t i = 0; i < nrrs.size(); ++i) {
        double wb = results[1 + 2 * i].ipc() / conv;
        double iss = results[2 + 2 * i].ipc() / conv;
        std::cout << std::setw(6) << nrrs[i] << std::setw(14) << wb
                  << std::setw(14) << iss << "\n";
    }
    std::cout << "\nLow NRR starves the oldest instructions (they must "
                 "wait for re-execution slots);\nhigh NRR reserves "
                 "everything for the oldest, behaving like the "
                 "conventional scheme\nplus late allocation. The paper "
                 "finds NRR = 32 best on average for both policies.\n";
    return 0;
}
