/**
 * @file
 * Machine-readable result files for grid sweeps.
 *
 * One record per grid cell: the cell's global index, benchmark, the
 * cell's full configuration provenance, and every metric of its
 * MetricsRecord, in schema order. The provenance columns are generated
 * from the reflective parameter registry (sim/params.hh): one
 * "cfg.<dotted name>" column per parameter, covering every parameter
 * that can affect results (seed included; execution-only knobs like
 * jobs and the shard spec excluded — records are byte-identical for
 * any --jobs value and any sharding). Two formats:
 *
 *  - CSV: one header row, one line per cell, preceded by a single
 *    "# vpr-results v1 figure=<name> cells=<N> shard=<i>/<n>
 *    scale=<s> cfg=<digest>" metadata comment, where <digest> hashes
 *    the provenance of the *whole* grid (every cell, not just the
 *    shard's slice). This is the shard/merge interchange format:
 *    integers are written exactly and reals with 17 significant
 *    digits, so a merged file reproduces the unsharded run bit for
 *    bit, and shards produced from different base configurations can
 *    never be merged (their digests disagree).
 *  - JSON: the same records as one self-describing document (for
 *    plotting pipelines that prefer structure over columns).
 *
 * readResultsCsv/mergeResults/resultsFromFile invert the CSV writer so
 * tools/merge_results can stitch shard files back into the full
 * cell-ordered result set and re-render the paper tables;
 * verifyCellProvenance checks a file's embedded provenance against a
 * rebuilt grid, key by key.
 */

#ifndef VPR_SIM_RESULTS_IO_HH
#define VPR_SIM_RESULTS_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/parallel_engine.hh"

namespace vpr
{

/** Fixed (non-metric) column names: "cell", "benchmark", then one
 *  "cfg.<dotted name>" column per provenance parameter. */
const std::vector<std::string> &resultFixedColumns();

/** The fixed-column values for one cell (everything but "cell"):
 *  benchmark, then the provenance values in column order. */
std::vector<std::string> cellConfigValues(const GridCell &cell);

/** Digest (16 hex chars) over the provenance of every cell of a grid;
 *  shards of one run share it, runs from different configurations
 *  don't. */
std::string gridConfigDigest(const std::vector<GridCell> &cells);

/**
 * Write the records of one (possibly sharded) run: @p cells is the
 * FULL grid, @p indices the global cell indices actually run, and
 * @p results their outcomes, parallel to @p indices. @{
 */
void writeResultsCsv(std::ostream &os, const std::string &figure,
                     const ShardSpec &shard,
                     const std::vector<std::size_t> &indices,
                     const std::vector<GridCell> &cells,
                     const std::vector<SimResults> &results);
void writeResultsJson(std::ostream &os, const std::string &figure,
                      const ShardSpec &shard,
                      const std::vector<std::size_t> &indices,
                      const std::vector<GridCell> &cells,
                      const std::vector<SimResults> &results);
/** @} */

/** Write to @p path, picking the format from the extension
 *  (".json" = JSON, anything else = CSV). fatal()s if unwritable. */
void writeResultsFile(const std::string &path, const std::string &figure,
                      const ShardSpec &shard,
                      const std::vector<std::size_t> &indices,
                      const std::vector<GridCell> &cells,
                      const std::vector<SimResults> &results);

/** Convenience for unsharded exporters (vpr_sim, examples): write every
 *  cell of @p cells/@p results to @p path as one complete grid. */
void exportAllCells(const std::string &path, const std::string &figure,
                    const std::vector<GridCell> &cells,
                    const std::vector<SimResults> &results);

/** A parsed result file (one shard or a whole grid). Row values are
 *  kept as raw text so re-emitting them is byte-exact. */
struct ResultsFile
{
    std::string figure;
    std::size_t totalCells = 0;
    /** Instruction scale the records were produced under (raw metadata
     *  text; shards must agree exactly to merge). */
    std::string scale;
    /** Whole-grid config-provenance digest (raw metadata text; shards
     *  must agree exactly to merge). */
    std::string configDigest;
    std::vector<std::string> header;

    struct Row
    {
        std::size_t cell = 0;
        std::vector<std::string> values;  ///< header order, incl. cell
    };
    std::vector<Row> rows;
};

/** Parse a CSV result stream; @p name is used in error messages. */
ResultsFile readResultsCsv(std::istream &is, const std::string &name);

/** Parse a CSV result file; fatal()s if unreadable or malformed. */
ResultsFile readResultsCsvFile(const std::string &path);

/**
 * Merge shard files into the full cell-ordered result set. All inputs
 * must agree on figure, grid size, header, instruction scale and
 * config-provenance digest; every cell must appear exactly once across
 * the inputs. fatal()s otherwise — a shard produced from a different
 * configuration can never merge silently.
 */
ResultsFile mergeResults(const std::vector<ResultsFile> &shards);

/**
 * Check the embedded config provenance of every row of @p file against
 * the expected grid (@p cells must be the full @p file.totalCells-cell
 * grid, e.g. rebuilt via the figure registry); fatal()s naming the
 * first differing dotted key. @p name labels error messages.
 */
void verifyCellProvenance(const ResultsFile &file,
                          const std::vector<GridCell> &cells,
                          const std::string &name);

/** Write a merged (complete) file back out as CSV, byte-identical to
 *  what an unsharded --out export would have produced. */
void writeMergedCsv(std::ostream &os, const ResultsFile &merged);

/** Reconstruct cell-ordered SimResults from a complete result file so
 *  figure tables can be re-rendered from merged records. */
std::vector<SimResults> resultsFromFile(const ResultsFile &file);

} // namespace vpr

#endif // VPR_SIM_RESULTS_IO_HH
