/**
 * @file
 * Benchmark registry: name → kernel constructor, paper reporting order.
 */

#include "trace/kernels/kernels.hh"

#include "common/logging.hh"

namespace vpr
{

const std::vector<BenchmarkInfo> &
benchmarkTable()
{
    static const std::vector<BenchmarkInfo> table = {
        {"go", false,
         "branchy game-tree search, short chains, low ILP"},
        {"li", false,
         "pointer-chasing interpreter over a >L1 heap"},
        {"compress", false,
         "LZW hash probes, dictionary partly resident"},
        {"vortex", false,
         "object database, random 512 KB working set"},
        {"apsi", true,
         "mixed-hit stencil with periodic divides"},
        {"swim", true,
         "independent streaming stencil over multi-MB arrays"},
        {"mgrid", true,
         "strided sweeps, ~100% miss, deep FP chains"},
        {"hydro2d", true,
         "cache-resident high-ILP accumulations"},
        {"wave5", true,
         "particle update, mostly resident, light scatter"},
    };
    return table;
}

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &b : benchmarkTable())
        names.push_back(b.name);
    return names;
}

const BenchmarkInfo &
benchmarkInfo(const std::string &name)
{
    for (const auto &b : benchmarkTable())
        if (b.name == name)
            return b;
    VPR_FATAL("unknown benchmark '", name, "'");
}

KernelDesc
makeKernel(const std::string &name, std::uint64_t seed)
{
    if (name == "go")
        return makeGo(seed);
    if (name == "li")
        return makeLi(seed);
    if (name == "compress")
        return makeCompress(seed);
    if (name == "vortex")
        return makeVortex(seed);
    if (name == "apsi")
        return makeApsi(seed);
    if (name == "swim")
        return makeSwim(seed);
    if (name == "mgrid")
        return makeMgrid(seed);
    if (name == "hydro2d")
        return makeHydro2d(seed);
    if (name == "wave5")
        return makeWave5(seed);
    VPR_FATAL("unknown benchmark '", name, "'");
}

std::unique_ptr<LoopTraceStream>
makeBenchmarkStream(const std::string &name, std::uint64_t seed)
{
    return std::make_unique<LoopTraceStream>(makeKernel(name, seed));
}

} // namespace vpr
