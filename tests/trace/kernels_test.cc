/** @file Tests for the nine SPEC95-like benchmark kernels. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/kernels/kernels.hh"

namespace vpr
{
namespace
{

TEST(Kernels, RegistryListsPaperBenchmarks)
{
    auto names = benchmarkNames();
    ASSERT_EQ(names.size(), 9u);
    // Paper order: integer first, then FP.
    EXPECT_EQ(names[0], "go");
    EXPECT_EQ(names[1], "li");
    EXPECT_EQ(names[2], "compress");
    EXPECT_EQ(names[3], "vortex");
    EXPECT_EQ(names[4], "apsi");
    EXPECT_EQ(names[5], "swim");
    EXPECT_EQ(names[6], "mgrid");
    EXPECT_EQ(names[7], "hydro2d");
    EXPECT_EQ(names[8], "wave5");
}

TEST(Kernels, FpFlagMatchesPaperGrouping)
{
    std::set<std::string> fp = {"apsi", "swim", "mgrid", "hydro2d",
                                "wave5"};
    for (const auto &info : benchmarkTable())
        EXPECT_EQ(info.isFp, fp.count(info.name) == 1) << info.name;
}

TEST(Kernels, AllKernelsValidate)
{
    for (const auto &name : benchmarkNames()) {
        KernelDesc k = makeKernel(name);
        EXPECT_EQ(k.name, name);
        k.validate();  // panics on malformed graphs
        EXPECT_FALSE(k.blocks.empty());
    }
}

TEST(Kernels, StreamsAreDeterministicPerSeed)
{
    for (const auto &name : benchmarkNames()) {
        auto a = makeBenchmarkStream(name);
        auto b = makeBenchmarkStream(name);
        for (int i = 0; i < 500; ++i) {
            auto ra = a->next();
            auto rb = b->next();
            ASSERT_TRUE(ra && rb);
            EXPECT_EQ(ra->pc, rb->pc) << name;
            EXPECT_EQ(ra->effAddr, rb->effAddr) << name;
            EXPECT_EQ(ra->taken, rb->taken) << name;
        }
    }
}

TEST(Kernels, DifferentSeedsChangeRandomBehaviour)
{
    auto a = makeBenchmarkStream("go", 1);
    auto b = makeBenchmarkStream("go", 2);
    int differ = 0;
    for (int i = 0; i < 2000; ++i) {
        auto ra = a->next();
        auto rb = b->next();
        if (ra->pc != rb->pc || ra->taken != rb->taken)
            ++differ;
    }
    EXPECT_GT(differ, 0);
}

/** Instruction-mix signature checks: FP benchmarks are FP-heavy, integer
 *  benchmarks contain no FP computation, every kernel loops forever. */
class KernelMixTest : public ::testing::TestWithParam<std::string>
{
  protected:
    std::map<OpClass, unsigned>
    histogram(unsigned n)
    {
        auto s = makeBenchmarkStream(GetParam());
        std::map<OpClass, unsigned> h;
        for (unsigned i = 0; i < n; ++i) {
            auto r = s->next();
            EXPECT_TRUE(r.has_value());
            ++h[r->op];
        }
        return h;
    }
};

TEST_P(KernelMixTest, MatchesClassSignature)
{
    const auto &info = benchmarkInfo(GetParam());
    auto h = histogram(20000);

    unsigned fpOps = h[OpClass::FpAdd] + h[OpClass::FpMult] +
                     h[OpClass::FpDiv] + h[OpClass::FpSqrt];
    unsigned branches = h[OpClass::Branch];
    unsigned mem = h[OpClass::Load] + h[OpClass::Store];

    EXPECT_GT(branches, 0u);
    EXPECT_GT(mem, 0u);
    if (info.isFp) {
        EXPECT_GT(fpOps, 20000u / 10) << "FP benchmark lacks FP ops";
    } else {
        EXPECT_EQ(fpOps, 0u) << "integer benchmark contains FP ops";
        EXPECT_GT(h[OpClass::IntAlu], 20000u / 4);
    }
}

TEST_P(KernelMixTest, LoadsHaveValidDestAndAddress)
{
    auto s = makeBenchmarkStream(GetParam());
    for (int i = 0; i < 5000; ++i) {
        auto r = s->next();
        if (r->isLoad()) {
            EXPECT_TRUE(r->dest.valid());
            EXPECT_NE(r->effAddr, 0u);
        }
        if (r->isStore()) {
            EXPECT_FALSE(r->dest.valid());
        }
    }
}

TEST_P(KernelMixTest, BranchDensityIsSane)
{
    auto h = histogram(20000);
    double frac = h[OpClass::Branch] / 20000.0;
    EXPECT_GT(frac, 0.02);
    EXPECT_LT(frac, 0.35);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, KernelMixTest,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto &info) { return info.param; });

TEST(Kernels, UnknownBenchmarkDies)
{
    EXPECT_EXIT(makeKernel("nonexistent"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Kernels, SketchesNonEmpty)
{
    for (const auto &info : benchmarkTable())
        EXPECT_FALSE(info.sketch.empty());
}

} // namespace
} // namespace vpr
