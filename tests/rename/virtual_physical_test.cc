/**
 * @file
 * Unit tests for the virtual-physical renamer: GMT/PMT semantics
 * (paper section 3.2), the NRR gate (3.3) and both allocation policies
 * (3.2/3.4).
 */

#include <gtest/gtest.h>

#include "rename/virtual_physical.hh"

namespace vpr
{
namespace
{

RenameConfig
cfg(std::uint16_t physRegs = 64, std::uint16_t nrr = 32)
{
    RenameConfig c;
    c.numPhysRegs = physRegs;
    c.numVPRegs = 160;
    c.nrrInt = nrr;
    c.nrrFp = nrr;
    return c;
}

/** Bind a standalone DynInst to a fresh hot-pool slot (the ROB does
 *  this in production) and stamp its sequence number. */
void
bind(DynInst &d, InstSeqNum seq)
{
    static InstHotPool pool(1 << 12);
    static HotIdx next = 0;
    HotIdx sl = next++ % pool.capacity();
    pool.reset(sl);
    d.bindHot(&pool, sl);
    d.setSeq(seq);
}

DynInst
inst(InstSeqNum seq, StaticInst si)
{
    DynInst d;
    d.si = si;
    bind(d, seq);
    return d;
}

TEST(VirtualPhysical, InitialArchitectedState)
{
    VirtualPhysicalRename rn(cfg(), false);
    for (std::uint16_t i = 0; i < kNumLogicalRegs; ++i) {
        EXPECT_EQ(rn.gmtVP(RegClass::Int, i), i);
        EXPECT_EQ(rn.gmtPhys(RegClass::Int, i), i);
        EXPECT_TRUE(rn.gmtValid(RegClass::Int, i));
        EXPECT_EQ(rn.pmtPhys(RegClass::Int, i), i);
    }
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 32u);
    EXPECT_EQ(rn.freeVPRegs(RegClass::Int), 160u - 32u);
}

TEST(VirtualPhysical, DestGetsVPTagNotPhysicalRegister)
{
    VirtualPhysicalRename rn(cfg(), false);
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    EXPECT_NE(d.vpReg, kNoReg);
    EXPECT_EQ(d.physReg, kNoReg);          // no storage allocated yet!
    EXPECT_EQ(d.wakeupTag, d.vpReg);
    EXPECT_EQ(d.prevTag, 5);               // previous VP mapping
    EXPECT_EQ(rn.gmtVP(RegClass::Int, 5), d.vpReg);
    EXPECT_FALSE(rn.gmtValid(RegClass::Int, 5));  // V bit reset
    // Physical pool untouched at decode — the paper's key property.
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 32u);
}

TEST(VirtualPhysical, SourceRenamingFollowsVBit)
{
    VirtualPhysicalRename rn(cfg(), false);
    auto p = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(p, 1);
    auto c = inst(2, StaticInst::alu(RegId::intReg(6), RegId::intReg(5),
                                     RegId::intReg(1)));
    rn.renameInst(c, 1);
    // r5: V clear -> VP tag, not ready.
    EXPECT_EQ(c.src[0].tag, p.vpReg);
    EXPECT_FALSE(c.src[0].ready);
    // r1: architected, V set -> physical register, ready.
    EXPECT_EQ(c.src[1].tag, 1);
    EXPECT_TRUE(c.src[1].ready);
}

TEST(VirtualPhysical, CompleteAllocatesAndUpdatesPmtGmt)
{
    VirtualPhysicalRename rn(cfg(), false);
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    auto res = rn.complete(d, 10);
    ASSERT_TRUE(res.ok);
    EXPECT_NE(d.physReg, kNoReg);
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 31u);
    EXPECT_EQ(rn.pmtPhys(RegClass::Int, d.vpReg), d.physReg);
    EXPECT_TRUE(rn.gmtValid(RegClass::Int, 5));
    EXPECT_EQ(rn.gmtPhys(RegClass::Int, 5), d.physReg);
}

TEST(VirtualPhysical, GmtBroadcastSkippedWhenRemapped)
{
    // If a younger instruction renamed the same logical register before
    // the producer completed, the GMT must NOT be updated by the older
    // completion (its VP field no longer matches).
    VirtualPhysicalRename rn(cfg(), false);
    auto a = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(a, 1);
    auto b = inst(2, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(b, 1);
    rn.complete(a, 5);
    EXPECT_FALSE(rn.gmtValid(RegClass::Int, 5));
    EXPECT_EQ(rn.gmtVP(RegClass::Int, 5), b.vpReg);
    // The PMT still records a's binding for consumers holding its tag.
    EXPECT_EQ(rn.pmtPhys(RegClass::Int, a.vpReg), a.physReg);
}

TEST(VirtualPhysical, CommitFreesPreviousVPAndItsPhysical)
{
    VirtualPhysicalRename rn(cfg(), false);
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    rn.complete(d, 5);
    std::size_t vpFree = rn.freeVPRegs(RegClass::Int);
    rn.commitInst(d, 10);
    // Previous VP register (initial vp 5) returns immediately.
    EXPECT_EQ(rn.freeVPRegs(RegClass::Int), vpFree + 1);
    EXPECT_EQ(rn.pmtPhys(RegClass::Int, 5), kNoReg);
    // The physical register frees one cycle later (PMT-lookup delay).
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 31u);
    rn.tick(11);
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 32u);
}

TEST(VirtualPhysical, SquashRestoresGmtIncludingVBit)
{
    VirtualPhysicalRename rn(cfg(), false);
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    rn.complete(d, 5);  // allocated a register
    rn.squashInst(d, 6);
    // GMT restored to the architected mapping (valid via PMT).
    EXPECT_EQ(rn.gmtVP(RegClass::Int, 5), 5);
    EXPECT_TRUE(rn.gmtValid(RegClass::Int, 5));
    EXPECT_EQ(rn.gmtPhys(RegClass::Int, 5), 5);
    // Both the VP tag and the physical register returned to the pools.
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 32u);
    EXPECT_EQ(rn.freeVPRegs(RegClass::Int), 128u);
    rn.checkInvariants();
}

TEST(VirtualPhysical, SquashOfUncompletedRestoresInvalidV)
{
    VirtualPhysicalRename rn(cfg(), false);
    auto a = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(a, 1);
    auto b = inst(2, StaticInst::alu(RegId::intReg(5), RegId::intReg(3),
                                     RegId::intReg(4)));
    rn.renameInst(b, 1);
    // Squash b (youngest first): r5 maps back to a's VP, which has no
    // physical register yet -> V must be clear.
    rn.squashInst(b, 2);
    EXPECT_EQ(rn.gmtVP(RegClass::Int, 5), a.vpReg);
    EXPECT_FALSE(rn.gmtValid(RegClass::Int, 5));
}

TEST(VirtualPhysical, WritebackRejectionWhenNotAllowed)
{
    // 34 physical regs, NRR = 2: two reserved slots. A younger
    // instruction completing while free <= NRR - Used is denied.
    VirtualPhysicalRename rn(cfg(34, 2), false);
    std::vector<DynInst> insts;
    for (InstSeqNum i = 1; i <= 3; ++i) {
        insts.push_back(inst(i, StaticInst::alu(RegId::intReg(10 + i),
                                                RegId::intReg(1),
                                                RegId::intReg(2))));
        rn.renameInst(insts.back(), 1);
    }
    // Youngest (seq 3, not reserved) completes first: free = 2 is not
    // > NRR - Used = 2 -> rejected.
    auto res = rn.complete(insts[2], 5);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(insts[2].physReg, kNoReg);
    EXPECT_EQ(rn.allocationRejections(), 1u);
    // Reserved instructions may allocate.
    EXPECT_TRUE(rn.complete(insts[0], 6).ok);
    EXPECT_TRUE(rn.complete(insts[1], 6).ok);
    // Now free = 0: the retry still fails...
    EXPECT_FALSE(rn.complete(insts[2], 7).ok);
    // ...until a commit frees a register (one-cycle delay).
    rn.commitInst(insts[0], 8);
    rn.tick(9);
    EXPECT_TRUE(rn.complete(insts[2], 9).ok);
}

TEST(VirtualPhysical, IssuePolicyAllocatesAtIssue)
{
    VirtualPhysicalRename rn(cfg(), true);
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    EXPECT_EQ(d.physReg, kNoReg);
    EXPECT_TRUE(rn.tryIssue(d, 3));
    EXPECT_NE(d.physReg, kNoReg);
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 31u);
    // Completion must not allocate again, only bind tables.
    EXPECT_TRUE(rn.complete(d, 6).ok);
    EXPECT_EQ(rn.pmtPhys(RegClass::Int, d.vpReg), d.physReg);
}

TEST(VirtualPhysical, IssuePolicyDeniesYoungWhenScarce)
{
    VirtualPhysicalRename rn(cfg(34, 2), true);
    std::vector<DynInst> insts;
    for (InstSeqNum i = 1; i <= 3; ++i) {
        insts.push_back(inst(i, StaticInst::alu(RegId::intReg(10 + i),
                                                RegId::intReg(1),
                                                RegId::intReg(2))));
        rn.renameInst(insts.back(), 1);
    }
    EXPECT_FALSE(rn.tryIssue(insts[2], 2));  // young, free == NRR - Used
    EXPECT_EQ(rn.issueRejections(), 1u);
    EXPECT_TRUE(rn.tryIssue(insts[0], 2));   // reserved: always allowed
    // Used = 1, free = 1: the young instruction still needs free > 1.
    EXPECT_FALSE(rn.tryIssue(insts[2], 3));
    EXPECT_TRUE(rn.tryIssue(insts[1], 3));   // second reserved slot
    // Used = 2, free = 0: nothing more may allocate.
    EXPECT_FALSE(rn.tryIssue(insts[2], 4));
    EXPECT_EQ(rn.issueRejections(), 3u);
}

TEST(VirtualPhysical, WritebackPolicyIssueNeverBlocks)
{
    VirtualPhysicalRename rn(cfg(34, 2), false);
    auto d = inst(1, StaticInst::alu(RegId::intReg(5), RegId::intReg(1),
                                     RegId::intReg(2)));
    rn.renameInst(d, 1);
    EXPECT_TRUE(rn.tryIssue(d, 2));
    EXPECT_EQ(d.physReg, kNoReg);  // still no storage
}

TEST(VirtualPhysical, VPPoolNeverNeededBeyondNlrPlusWindow)
{
    // Rename 128 instructions (a full window) without commits: the VP
    // pool sized at NLR + 128 must suffice.
    VirtualPhysicalRename rn(cfg(), false);
    std::vector<DynInst> insts;
    insts.reserve(128);
    for (InstSeqNum i = 1; i <= 128; ++i) {
        EXPECT_TRUE(rn.canRename(1, 0));
        insts.push_back(inst(i, StaticInst::alu(RegId::intReg(i % 32),
                                                RegId::intReg(1),
                                                RegId::intReg(2))));
        rn.renameInst(insts.back(), 1);
    }
    EXPECT_EQ(rn.freeVPRegs(RegClass::Int), 0u);
    EXPECT_FALSE(rn.canRename(1, 0));
    rn.checkInvariants();
}

TEST(VirtualPhysical, NoDecodeStallWhileConventionalWouldStall)
{
    // The paper's headline property: decode never stalls for *physical*
    // registers. Rename 60 integer destinations (conventional would
    // stall at 32) and check the physical pool is untouched.
    VirtualPhysicalRename rn(cfg(), false);
    std::vector<DynInst> insts;
    for (InstSeqNum i = 1; i <= 60; ++i) {
        insts.push_back(inst(i, StaticInst::alu(RegId::intReg(i % 32),
                                                RegId::intReg(1),
                                                RegId::intReg(2))));
        rn.renameInst(insts.back(), 1);
    }
    EXPECT_EQ(rn.freePhysRegs(RegClass::Int), 32u);
}

TEST(VirtualPhysicalDeath, NrrBeyondSparePanics)
{
    EXPECT_DEATH(VirtualPhysicalRename(cfg(40, 16), false),
                 "NRRint larger");
}

TEST(VirtualPhysicalDeath, ZeroNrrPanics)
{
    EXPECT_DEATH(VirtualPhysicalRename(cfg(64, 0), false), "NRR");
}

} // namespace
} // namespace vpr
