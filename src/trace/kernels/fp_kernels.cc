/**
 * @file
 * Floating-point synthetic kernels: apsi, swim, mgrid, hydro2d, wave5.
 *
 * Calibration model (see DESIGN.md §4): with NPR = 64 the conventional
 * scheme sustains about (NPR-NLR)/fpDestsPerIter iterations in flight,
 * the VP scheme about ROB/instsPerIter; the achievable IPC is the
 * minimum of the memory bandwidth bound
 *     outstandingMisses / (missesPerIter * missPenalty) * instsPerIter
 * (outstanding capped by the 8 MSHRs), the cross-iteration dependence
 * bound, and the FU/issue bounds. Each kernel picks missesPerIter,
 * fpDestsPerIter and chain depth so the conventional/VP gap lands near
 * the paper's Table 2 ratio for that benchmark.
 *
 * Stream bases are offset by distinct multiples of 4 KB modulo the
 * 16 KB direct-mapped cache so concurrently touched lines do not map to
 * the same set (array "padding" a Fortran compiler would give you).
 */

#include "trace/kernels/kernels.hh"

namespace vpr
{

namespace
{

using K = MemStreamDesc::Kind;

constexpr RegId r(std::uint16_t i) { return RegId::intReg(i); }
constexpr RegId f(std::uint16_t i) { return RegId::fpReg(i); }

InstTemplate
op(OpClass c, RegId d, RegId s0, RegId s1 = RegId::none())
{
    return InstTemplate::compute(c, d, s0, s1);
}

MemStreamDesc
stride(Addr base, std::int64_t strideBytes, std::uint64_t region)
{
    MemStreamDesc m;
    m.kind = K::Stride;
    m.base = base;
    m.stride = strideBytes;
    m.region = region;
    return m;
}

MemStreamDesc
randomIn(Addr base, std::uint64_t region)
{
    MemStreamDesc m;
    m.kind = K::Random;
    m.base = base;
    m.region = region;
    return m;
}

BranchDesc
loopBranch(RegId src, unsigned trip, int self, int exit)
{
    BranchDesc b;
    b.kind = BranchDesc::Kind::Loop;
    b.src = src;
    b.tripCount = trip;
    b.takenTarget = self;
    b.fallThrough = exit;
    return b;
}

} // namespace

KernelDesc
makeSwim(std::uint64_t seed)
{
    // Shallow-water stencil: independent iterations streaming through
    // three 2 MB arrays (2 loads + 1 store, 8 B elements, so 0.75 line
    // misses per iteration). 6 FP destinations per 10-instruction
    // iteration: the conventional scheme holds ~5 iterations (~4
    // outstanding misses), the VP scheme ~13 (MSHR-capped at 8) —
    // memory-level parallelism is exactly what late allocation buys.
    KernelDesc k;
    k.name = "swim";
    k.seed = seed ? seed : 0x5317ull;
    k.streams = {
        stride(0x10000000, 8, 2 << 20),           // u[]
        stride(0x20001000, 8, 2 << 20),           // v[]
        stride(0x30002000, 8, 2 << 20),           // p[] (output)
    };

    BlockDesc body;
    body.insts = {
        InstTemplate::loadFrom(0, f(1), r(1)),
        InstTemplate::loadFrom(1, f(2), r(2)),
        op(OpClass::FpAdd, f(3), f(1), f(2)),
        op(OpClass::FpMult, f(4), f(3), f(10)),
        op(OpClass::FpAdd, f(5), f(4), f(1)),
        op(OpClass::FpAdd, f(6), f(5), f(2)),
        InstTemplate::storeTo(2, f(6), r(3)),
        op(OpClass::IntAlu, r(1), r(1), r(5)),
        op(OpClass::IntAlu, r(2), r(2), r(5)),
    };
    body.branch = loopBranch(r(1), 2048, 0, 0);
    k.blocks = {body};
    return k;
}

KernelDesc
makeMgrid(std::uint64_t seed)
{
    // Multigrid relaxation: a large-stride sweep (every other access a
    // new line) plus a resident plane, with a deeper per-iteration FP
    // chain and one accumulator. Conventional: ~4.5 iterations in
    // flight, ~2.3 outstanding misses; VP: ~11 iterations, ~5.8 misses.
    KernelDesc k;
    k.name = "mgrid";
    k.seed = seed ? seed : 0x96123ull;
    k.streams = {
        stride(0x10000000, 8, 4 << 20),           // fine grid
        stride(0x20001000, 8, 4 << 20),           // coarse grid
        stride(0x30002000, 8, 4 << 20),           // residual output
    };

    BlockDesc body;
    body.insts = {
        InstTemplate::loadFrom(0, f(1), r(1)),
        InstTemplate::loadFrom(1, f(2), r(2)),
        op(OpClass::FpAdd, f(3), f(1), f(2)),
        op(OpClass::FpMult, f(4), f(3), f(10)),
        op(OpClass::FpAdd, f(5), f(4), f(2)),
        InstTemplate::storeTo(2, f(5), r(3)),
        op(OpClass::IntAlu, r(1), r(1), r(5)),
        op(OpClass::IntAlu, r(2), r(2), r(5)),
    };
    body.branch = loopBranch(r(1), 1024, 0, 0);
    k.blocks = {body};
    return k;
}

KernelDesc
makeApsi(std::uint64_t seed)
{
    // Mesoscale-model mix: a lightly missing stream (0.25 line misses
    // per iteration), few FP destinations per iteration (so the
    // conventional window is not badly register-bound), one accumulator
    // chain, and a divide block every 16 inner iterations.
    KernelDesc k;
    k.name = "apsi";
    k.seed = seed ? seed : 0xa931ull;
    k.streams = {
        stride(0x10000000, 8, 1 << 20),           // 0.25 miss/access
        randomIn(0x20001000, 4 << 10),            // resident table
        stride(0x30002000, 8, 4 << 10),           // resident output
    };

    BlockDesc inner;
    inner.insts = {
        InstTemplate::loadFrom(0, f(1), r(1)),
        InstTemplate::loadFrom(1, r(10), r(2)),
        op(OpClass::FpMult, f(2), f(1), f(10)),
        op(OpClass::FpAdd, f(3), f(2), f(1)),
        op(OpClass::FpAdd, f(12), f(12), f(3)),    // accumulator
        InstTemplate::storeTo(2, f(3), r(3)),
        op(OpClass::IntAlu, r(1), r(1), r(5)),
        op(OpClass::IntAlu, r(11), r(10), r(5)),
    };
    inner.branch = loopBranch(r(1), 16, 0, 1);

    BlockDesc outer;
    outer.insts = {
        op(OpClass::FpDiv, f(20), f(12), f(21)),
        op(OpClass::FpAdd, f(12), f(20), f(22)),
        op(OpClass::IntAlu, r(6), r(6), r(5)),
    };
    outer.branch = loopBranch(r(6), 64, 0, 0);
    k.blocks = {inner, outer};
    return k;
}

KernelDesc
makeHydro2d(std::uint64_t seed)
{
    // Hydrodynamics with a cache-resident working set and four
    // independent multiply/accumulate chains per iteration: high ILP,
    // almost no misses, short register lifetimes — the conventional
    // window already saturates the FP units, so the virtual-physical
    // advantage is small (paper: 4%).
    KernelDesc k;
    k.name = "hydro2d";
    k.seed = seed ? seed : 0x42d0ull;
    k.streams = {
        stride(0x10000000, 8, 4 << 10),           // resident row
        stride(0x20001000, 8, 4 << 10),           // resident column
    };

    BlockDesc body;
    body.insts = {
        InstTemplate::loadFrom(0, f(1), r(1)),
        InstTemplate::loadFrom(1, f(2), r(2)),
        op(OpClass::FpMult, f(3), f(1), f(26)),
        op(OpClass::FpAdd, f(10), f(10), f(3)),
        op(OpClass::FpMult, f(4), f(2), f(26)),
        op(OpClass::FpAdd, f(11), f(11), f(4)),
        op(OpClass::FpMult, f(5), f(1), f(2)),
        op(OpClass::FpAdd, f(12), f(12), f(5)),
        op(OpClass::FpAdd, f(6), f(1), f(2)),
        op(OpClass::FpAdd, f(13), f(13), f(6)),
        op(OpClass::IntAlu, r(1), r(1), r(5)),
        op(OpClass::IntAlu, r(2), r(2), r(5)),
    };
    body.branch = loopBranch(r(1), 512, 0, 0);
    k.blocks = {body};
    return k;
}

KernelDesc
makeWave5(std::uint64_t seed)
{
    // Particle-in-cell update: mostly cache-resident particle state with
    // a light random grid scatter, moderate ILP. Few FP destinations per
    // iteration keep the conventional window adequate, so the VP gain
    // stays small (paper: 4%).
    KernelDesc k;
    k.name = "wave5";
    k.seed = seed ? seed : 0x3a7e5ull;
    k.streams = {
        stride(0x10000000, 8, 4 << 10),           // particle list
        randomIn(0x20001000, 6 << 10),            // grid (resident)
        stride(0x30003000, 8, 4 << 10),           // output
    };

    BlockDesc body;
    body.insts = {
        InstTemplate::loadFrom(0, f(1), r(1)),
        InstTemplate::loadFrom(1, f(2), r(2)),
        op(OpClass::FpMult, f(3), f(1), f(20)),
        op(OpClass::FpAdd, f(4), f(3), f(2)),
        op(OpClass::FpAdd, f(10), f(10), f(4)),    // serial accumulator
        InstTemplate::storeTo(2, f(4), r(3)),
        op(OpClass::IntAlu, r(1), r(1), r(5)),
        op(OpClass::IntAlu, r(2), r(2), r(5)),
    };
    body.branch = loopBranch(r(1), 256, 0, 0);
    k.blocks = {body};
    return k;
}

} // namespace vpr
