/**
 * @file
 * The paper's main results: Table 2 and Figures 4-7, as FigureDefs.
 * Grid layouts and table formats are unchanged from the original bench
 * binaries; only the plumbing moved behind build()/render().
 */

#include "figures.hh"

namespace vpr::bench
{

namespace
{

/**
 * Shared shape of Figures 4 and 5: conventional baselines first, then
 * every (benchmark × NRR) cell of one VP scheme; rendered as speedup
 * over the baseline with a geometric-mean row.
 */
FigureDef
speedupFigure(std::string figName, std::string title, RenameScheme scheme,
              std::vector<unsigned> nrrValues, std::string trailer)
{
    FigureDef def;
    def.name = std::move(figName);
    def.build = [scheme, nrrValues] {
        SimConfig config = experimentConfig();
        const auto &names = benchmarkNames();
        std::vector<GridCell> cells;
        config.setScheme(RenameScheme::Conventional);
        for (const auto &name : names)
            cells.push_back({name, config});
        for (const auto &name : names) {
            for (unsigned nrr : nrrValues) {
                config.setScheme(scheme);
                config.setNrr(static_cast<std::uint16_t>(nrr));
                cells.push_back({name, config});
            }
        }
        return cells;
    };
    def.render = [title = std::move(title), nrrValues,
                  trailer = std::move(trailer)](
                     const std::vector<GridCell> &,
                     const std::vector<SimResults> &results,
                     std::ostream &os) {
        const auto &names = benchmarkNames();
        std::vector<std::string> cols;
        for (unsigned nrr : nrrValues)
            cols.push_back("NRR=" + std::to_string(nrr));
        printTableHeader(os, title, cols);

        std::vector<std::vector<double>> columns(nrrValues.size());
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            double base = results[bi].ipc();
            std::vector<double> row;
            for (std::size_t c = 0; c < nrrValues.size(); ++c) {
                double ipc =
                    results[names.size() + bi * nrrValues.size() + c]
                        .ipc();
                row.push_back(ipc / base);
                columns[c].push_back(ipc / base);
            }
            printTableRow(os, names[bi], row, 3);
        }

        std::vector<double> means;
        for (const auto &col : columns)
            means.push_back(geoMean(col));
        os << std::string(12 + 12 * nrrValues.size(), '-') << "\n";
        printTableRow(os, "geomean", means, 3);
        os << trailer;
    };
    return def;
}

} // namespace

FigureDef
fig4Figure()
{
    return speedupFigure(
        "fig4_nrr_writeback",
        "Figure 4: VP speedup over conventional, write-back allocation",
        RenameScheme::VPAllocAtWriteback, {1, 4, 8, 16, 24, 32},
        "\npaper reference: NRR=32 best overall (FP average speedup "
        "1.3); small NRR can fall below 1.0 for FP programs; swim "
        "speeds up (1.27-1.84) at every NRR.\n");
}

FigureDef
fig5Figure()
{
    return speedupFigure(
        "fig5_nrr_issue",
        "Figure 5: VP speedup over conventional, issue allocation",
        RenameScheme::VPAllocAtIssue, {1, 4, 8, 16, 24, 32},
        "\npaper reference: optimal NRR is 32 (24 equal on average), "
        "giving ~4% over conventional — far less than write-back "
        "allocation.\n");
}

FigureDef
fig6Figure()
{
    FigureDef def;
    def.name = "fig6_wb_vs_issue";
    def.build = [] {
        SimConfig config = experimentConfig();
        std::vector<GridCell> cells;
        for (const auto &name : benchmarkNames()) {
            config.setScheme(RenameScheme::Conventional);
            cells.push_back({name, config});
            config.setScheme(RenameScheme::VPAllocAtWriteback);
            config.setNrr(32);
            cells.push_back({name, config});
            config.setScheme(RenameScheme::VPAllocAtIssue);
            config.setNrr(32);
            cells.push_back({name, config});
        }
        return cells;
    };
    def.render = [](const std::vector<GridCell> &,
                    const std::vector<SimResults> &results,
                    std::ostream &os) {
        const auto &names = benchmarkNames();
        printTableHeader(os,
                         "Figure 6: write-back vs issue allocation "
                         "(speedup over conventional, NRR=32)",
                         {"writeback", "issue"});

        std::vector<double> wbAll, issAll;
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            double conv = results[3 * bi].ipc();
            double wb = results[3 * bi + 1].ipc() / conv;
            double iss = results[3 * bi + 2].ipc() / conv;

            wbAll.push_back(wb);
            issAll.push_back(iss);
            printTableRow(os, names[bi], {wb, iss}, 3);
        }
        os << std::string(36, '-') << "\n";
        printTableRow(os, "geomean", {geoMean(wbAll), geoMean(issAll)},
                      3);
        os << "\npaper reference: write-back allocation significantly "
              "outperforms issue allocation on every benchmark, in "
              "spite of the re-executions it causes.\n";
    };
    return def;
}

FigureDef
fig7Figure()
{
    static const std::vector<std::uint16_t> sizes = {48, 64, 96};
    FigureDef def;
    def.name = "fig7_regfile_size";
    def.build = [] {
        SimConfig config = experimentConfig();
        std::vector<GridCell> cells;
        for (const auto &name : benchmarkNames()) {
            for (std::size_t i = 0; i < sizes.size(); ++i) {
                config.setPhysRegs(sizes[i]);  // NRR = max = NPR - 32
                config.setScheme(RenameScheme::Conventional);
                cells.push_back({name, config});
                config.setScheme(RenameScheme::VPAllocAtWriteback);
                cells.push_back({name, config});
            }
        }
        return cells;
    };
    def.render = [](const std::vector<GridCell> &,
                    const std::vector<SimResults> &results,
                    std::ostream &os) {
        std::vector<std::string> cols;
        for (auto s : sizes) {
            cols.push_back("conv(" + std::to_string(s) + ")");
            cols.push_back("virt(" + std::to_string(s) + ")");
        }
        printTableHeader(os,
                         "Figure 7: IPC for 48/64/96 physical registers "
                         "(VP: write-back alloc, NRR = NPR-32)",
                         cols);

        const auto &names = benchmarkNames();
        std::vector<std::vector<double>> convI(sizes.size()),
            vpI(sizes.size());
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            std::vector<double> row;
            for (std::size_t i = 0; i < sizes.size(); ++i) {
                double c = results[2 * (bi * sizes.size() + i)].ipc();
                double v = results[2 * (bi * sizes.size() + i) + 1].ipc();
                row.push_back(c);
                row.push_back(v);
                convI[i].push_back(c);
                vpI[i].push_back(v);
            }
            printTableRow(os, names[bi], row, 2);
        }

        os << std::string(12 + 12 * cols.size(), '-') << "\n";
        std::vector<double> hm;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            hm.push_back(harmonicMean(convI[i]));
            hm.push_back(harmonicMean(vpI[i]));
        }
        printTableRow(os, "hmean", hm, 2);

        os << "\nimprovement by size:";
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            os << "  " << sizes[i] << " regs: "
               << static_cast<int>(
                      (hm[2 * i + 1] / hm[2 * i] - 1.0) * 100.0 + 0.5)
               << "%";
        }
        os << "\nregister saving check: virt(48) hmean = " << hm[1]
           << " vs conv(64) hmean = " << hm[2] << "\n";
        os << "\npaper reference: +31% / +19% / +8% for 48/64/96 "
              "registers; virt(48) IPC 1.17 ~ conv(64) IPC 1.23 — a "
              "25% register saving at equal performance.\n";
    };
    return def;
}

FigureDef
table2Figure()
{
    // Two sub-grids: the main 50-cycle-miss table, then the paper's
    // 20-cycle side note. Each is a (conv, vp) cell pair per benchmark.
    static const std::vector<unsigned> penalties = {50, 20};
    FigureDef def;
    def.name = "table2_ipc";
    def.build = [] {
        std::vector<GridCell> cells;
        for (unsigned missPenalty : penalties) {
            SimConfig config = experimentConfig();
            config.core.cache.missPenalty = missPenalty;
            for (const auto &name : benchmarkNames()) {
                config.setScheme(RenameScheme::Conventional);
                cells.push_back({name, config});
                config.setScheme(RenameScheme::VPAllocAtWriteback);
                config.setNrr(32);
                cells.push_back({name, config});
            }
        }
        return cells;
    };
    def.render = [](const std::vector<GridCell> &,
                    const std::vector<SimResults> &results,
                    std::ostream &os) {
        const auto &names = benchmarkNames();

        auto renderTable = [&](std::size_t offset, unsigned missPenalty,
                               bool verbose) {
            std::vector<double> convIpcs, vpIpcs;
            if (verbose)
                printTableHeader(
                    os,
                    "Table 2: IPC, conventional vs virtual-physical "
                    "(write-back alloc, NRR=32, 64 regs, miss=" +
                        std::to_string(missPenalty) + ")",
                    {"conv", "virt-phys", "imp(%)", "exec/ci"});
            for (std::size_t bi = 0; bi < names.size(); ++bi) {
                const SimResults &conv = results[offset + 2 * bi];
                const SimResults &vp = results[offset + 2 * bi + 1];

                convIpcs.push_back(conv.ipc());
                vpIpcs.push_back(vp.ipc());
                if (verbose) {
                    printTableRow(os, names[bi],
                                  {conv.ipc(), vp.ipc(),
                                   (vp.ipc() / conv.ipc() - 1.0) * 100.0,
                                   vp.executionsPerCommit()},
                                  2);
                }
            }
            double ch = harmonicMean(convIpcs);
            double vh = harmonicMean(vpIpcs);
            if (verbose)
                os << std::string(60, '-') << "\n";
            printTableRow(os,
                          verbose ? "hmean"
                                  : ("hmean(miss=" +
                                     std::to_string(missPenalty) + ")"),
                          {ch, vh, (vh / ch - 1.0) * 100.0}, 2);
        };

        renderTable(0, penalties[0], true);
        os << "\npaper note: improvement at a 20-cycle miss penalty\n";
        renderTable(2 * names.size(), penalties[1], false);

        os << "\npaper reference: hmean IPC 1.23 (conv) vs 1.46 "
              "(virt-phys), +19% at miss=50; +12% at miss=20;\n"
              "FP improvements 4-84%, integer 4-9%; ~3.3 executions "
              "per committed instruction.\n";
    };
    return def;
}

} // namespace vpr::bench
