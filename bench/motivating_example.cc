/**
 * @file
 * Section 3.1 of the paper: the motivating register-pressure example.
 *
 *     load f2,0(r6)    (cache miss, 20 cycles in the paper's example)
 *     fdiv f2,f2,f10   (20 cycles)
 *     fmul f2,f2,f12   (10 cycles)
 *     fadd f2,f2,f1    (5 cycles)
 *
 * The paper counts register-holding times of p1..p3 (the registers
 * renamed to f2 by the first three instructions): 42/52/57 cycles with
 * decode allocation, 21/11/6 with write-back allocation (-75% register
 * pressure) and 41/31/16 with issue allocation (-42%).
 *
 * We replay the same chain on the full simulator with each renaming
 * scheme and report the measured FP register pressure (sum of holding
 * cycles per produced value), reproducing the ordering and rough
 * magnitudes of the example. Latencies differ slightly (our machine
 * uses Table 1 latencies and a 50-cycle miss), so the absolute cycle
 * counts differ; the ranking and the large decode-allocation waste are
 * the point.
 */

#include <iostream>

#include "bench_common.hh"
#include "trace/builder.hh"

using namespace vpr;
using namespace vpr::bench;

namespace
{

/** The paper's four-instruction chain, repeated to reach steady state. */
std::vector<TraceRecord>
exampleTrace(unsigned repeats)
{
    TraceBuilder b;
    for (unsigned i = 0; i < repeats; ++i) {
        // A fresh line each time so every load misses, like the example.
        Addr addr = 0x10000000 + static_cast<Addr>(i) * 64;
        b.load(RegId::fpReg(2), RegId::intReg(6), addr);
        b.fpDiv(RegId::fpReg(2), RegId::fpReg(2), RegId::fpReg(10));
        b.fpMul(RegId::fpReg(2), RegId::fpReg(2), RegId::fpReg(12));
        b.fpAdd(RegId::fpReg(2), RegId::fpReg(2), RegId::fpReg(1));
    }
    return b.records();
}

double
measure(RenameScheme scheme, double *ipcOut)
{
    SimConfig config = experimentConfig();
    config.setScheme(scheme);
    config.skipInsts = 0;
    config.measureInsts = 4000;

    VectorTraceStream stream(exampleTrace(1200));
    Simulator sim(stream, config);
    SimResults r = sim.run();
    if (ipcOut)
        *ipcOut = r.ipc();
    return r.meanHoldCyclesFp;
}

} // namespace

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    std::cout << "Section 3.1 motivating example: load->fdiv->fmul->fadd "
                 "chain, all writing f2\n\n";

    double ipcConv, ipcWb, ipcIss;
    double conv = measure(RenameScheme::Conventional, &ipcConv);
    double wb = measure(RenameScheme::VPAllocAtWriteback, &ipcWb);
    double iss = measure(RenameScheme::VPAllocAtIssue, &ipcIss);

    printTableHeader(std::cout,
                     "FP register holding time per produced value",
                     {"cycles", "vs conv", "IPC"});
    printTableRow(std::cout, "decode", {conv, 1.0, ipcConv}, 2);
    printTableRow(std::cout, "issue", {iss, iss / conv, ipcIss}, 2);
    printTableRow(std::cout, "writeback", {wb, wb / conv, ipcWb}, 2);

    std::cout << "\npaper reference (its latencies): decode allocation "
                 "holds registers 151 cycles total per 3 values,\n"
                 "write-back allocation 38 (-75%), issue allocation 88 "
                 "(-42%). The ordering decode > issue > writeback\n"
                 "and the magnitude of the decode-allocation waste are "
                 "the reproduced claims.\n";
    return 0;
}
