/**
 * @file
 * Experiment harness: runs (benchmark × scheme × parameters) grids and
 * formats tables in the paper's style. Every bench binary is a thin
 * wrapper around these helpers.
 */

#ifndef VPR_SIM_EXPERIMENT_HH
#define VPR_SIM_EXPERIMENT_HH

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace vpr
{

/** One cell of an experiment grid. */
struct ExperimentCell
{
    std::string benchmark;
    SimResults results;
};

/** Harmonic mean (the paper's average for IPC tables). */
double harmonicMean(const std::vector<double> &values);

/**
 * Run one benchmark under @p config and return the results.
 * @param mutate optional hook to adjust the config per run.
 */
SimResults runOne(const std::string &benchmark, SimConfig config);

/**
 * Run every benchmark of the paper under @p config.
 * @return results keyed by benchmark name (paper order preserved via
 *         benchmarkNames()).
 */
std::map<std::string, SimResults> runAll(const SimConfig &config);

/** Scale factor for instruction budgets, settable from the command
 *  line / environment (VPR_INSTS_SCALE) to trade time for fidelity. */
double instructionScale();

/** Apply the global instruction scale to a config. */
void applyInstructionScale(SimConfig &config);

/** Pretty-printing helpers for paper-style tables. @{ */
void printTableHeader(std::ostream &os, const std::string &title,
                      const std::vector<std::string> &columns);
void printTableRow(std::ostream &os, const std::string &label,
                   const std::vector<double> &values, int precision = 2);
/** @} */

} // namespace vpr

#endif // VPR_SIM_EXPERIMENT_HH
