#include "sim/config.hh"

#include "common/logging.hh"

namespace vpr
{

void
SimConfig::setPhysRegs(std::uint16_t numPhysRegs, int nrr)
{
    core.rename.numPhysRegs = numPhysRegs;
    core.rename.numVPRegs =
        static_cast<std::uint16_t>(kNumLogicalRegs + core.robSize);
    std::uint16_t maxNrr =
        static_cast<std::uint16_t>(numPhysRegs - kNumLogicalRegs);
    std::uint16_t v = nrr < 0 ? maxNrr : static_cast<std::uint16_t>(nrr);
    core.rename.nrrInt = v;
    core.rename.nrrFp = v;
}

void
SimConfig::setNrr(std::uint16_t nrr)
{
    core.rename.nrrInt = nrr;
    core.rename.nrrFp = nrr;
}

void
SimConfig::setScheme(RenameScheme scheme)
{
    core.scheme = scheme;
}

void
SimConfig::validate() const
{
    const RenameConfig &r = core.rename;
    if (r.numPhysRegs <= kNumLogicalRegs)
        VPR_FATAL("numPhysRegs (", r.numPhysRegs,
                  ") must exceed the ", kNumLogicalRegs,
                  " logical registers");
    if (isVirtualPhysical(core.scheme)) {
        if (r.numVPRegs < kNumLogicalRegs + core.robSize)
            VPR_FATAL("numVPRegs (", r.numVPRegs, ") must be >= NLR + "
                      "window (", kNumLogicalRegs + core.robSize,
                      ") so decode never starves for tags");
        if (r.nrrInt < 1 || r.nrrFp < 1)
            VPR_FATAL("NRR must be >= 1 (deadlock avoidance)");
        if (r.nrrInt > r.numPhysRegs - kNumLogicalRegs ||
            r.nrrFp > r.numPhysRegs - kNumLogicalRegs)
            VPR_FATAL("NRR must be <= NPR - NLR = ",
                      r.numPhysRegs - kNumLogicalRegs);
    }
    if (core.iqSize < core.robSize)
        VPR_FATAL("iqSize must be >= robSize (unified queue)");
}

SimConfig
paperConfig()
{
    SimConfig sc;
    // CoreConfig defaults already encode section 4.1; make the
    // dependent sizing explicit.
    sc.setPhysRegs(64, 32);
    return sc;
}

} // namespace vpr
