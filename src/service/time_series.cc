#include "service/time_series.hh"

#include <ostream>

namespace vpr::service
{

RequestTimeSeries::Slot &
RequestTimeSeries::rotate(std::uint64_t minute)
{
    Slot &slot = slots[minute % kMinutes];
    if (slot.minute != minute) {
        slot = Slot{};
        slot.minute = minute;
    }
    return slot;
}

const RequestTimeSeries::Slot *
RequestTimeSeries::slotFor(std::uint64_t minute) const
{
    const Slot &slot = slots[minute % kMinutes];
    return slot.minute == minute ? &slot : nullptr;
}

void
RequestTimeSeries::add(std::uint64_t minute, bool error,
                       std::uint64_t latencyUsec)
{
    Slot &slot = rotate(minute);
    ++slot.requests;
    slot.errors += error ? 1 : 0;
    slot.latencyUsec += latencyUsec;
    ++totalReq;
    totalErr += error ? 1 : 0;
    totalLatencyUsec += latencyUsec;
}

std::uint64_t
RequestTimeSeries::requestsAt(std::uint64_t minute) const
{
    const Slot *slot = slotFor(minute);
    return slot ? slot->requests : 0;
}

std::uint64_t
RequestTimeSeries::errorsAt(std::uint64_t minute) const
{
    const Slot *slot = slotFor(minute);
    return slot ? slot->errors : 0;
}

void
RequestTimeSeries::serializeJson(std::ostream &os,
                                 std::uint64_t nowMinute) const
{
    const std::size_t entries =
        nowMinute + 1 < kMinutes
            ? static_cast<std::size_t>(nowMinute + 1)
            : kMinutes;

    os << "{\"window_minutes\": " << kMinutes << ", \"total\": {"
       << "\"requests\": " << totalReq << ", \"errors\": " << totalErr
       << ", \"avg_latency_usec\": "
       << (totalReq ? totalLatencyUsec / totalReq : 0) << "}";

    const auto emit = [&](const char *name, auto field) {
        os << ", \"" << name << "\": [";
        for (std::size_t i = 0; i < entries; ++i) {
            const Slot *slot = slotFor(nowMinute - i);
            os << (i ? ", " : "") << (slot ? field(*slot) : 0);
        }
        os << "]";
    };
    emit("requests", [](const Slot &s) { return s.requests; });
    emit("errors", [](const Slot &s) { return s.errors; });
    emit("avg_latency_usec", [](const Slot &s) {
        return s.requests ? s.latencyUsec / s.requests : 0;
    });
    os << "}";
}

} // namespace vpr::service
