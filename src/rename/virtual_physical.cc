#include "rename/virtual_physical.hh"

#include "common/logging.hh"

namespace vpr
{

VirtualPhysicalRename::VirtualPhysicalRename(const RenameConfig &config,
                                             bool atIssue)
    : RenameManager(config), allocAtIssue(atIssue),
      tracker{ReservationTracker(config.nrrInt),
              ReservationTracker(config.nrrFp)}
{
    VPR_ASSERT(cfg.numVPRegs > kNumLogicalRegs,
               "need more VP than logical registers");
    VPR_ASSERT(cfg.nrrInt >= 1 && cfg.nrrFp >= 1,
               "NRR must be >= 1 (deadlock avoidance)");
    VPR_ASSERT(cfg.nrrInt <= cfg.numPhysRegs - kNumLogicalRegs,
               "NRRint larger than NPR - NLR");
    VPR_ASSERT(cfg.nrrFp <= cfg.numPhysRegs - kNumLogicalRegs,
               "NRRfp larger than NPR - NLR");

    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        gmt[c].assign(kNumLogicalRegs, GmtEntry{});
        pmt[c].assign(cfg.numVPRegs, PmtEntry{});
        // Architected state: logical i is VP register i, which is
        // mapped to physical register i and valid.
        for (std::uint16_t i = 0; i < kNumLogicalRegs; ++i) {
            gmt[c][i] = GmtEntry{i, i, true};
            pmt[c][i] = PmtEntry{i, true};
            pressureTrk[c].onAlloc(i, 0);
        }
        for (std::uint16_t v = cfg.numVPRegs; v-- > kNumLogicalRegs;)
            vpFreeList[c].push_back(v);
        for (std::uint16_t p = cfg.numPhysRegs; p-- > kNumLogicalRegs;)
            physFreeList[c].push_back(p);
    }
}

void
VirtualPhysicalRename::reinit()
{
    // Replays the constructor body exactly (both free-list pop orders
    // are architecturally visible downstream, so they must match).
    reinitBase();
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        gmt[c].assign(kNumLogicalRegs, GmtEntry{});
        pmt[c].assign(cfg.numVPRegs, PmtEntry{});
        vpFreeList[c].clear();
        physFreeList[c].clear();
        for (std::uint16_t i = 0; i < kNumLogicalRegs; ++i) {
            gmt[c][i] = GmtEntry{i, i, true};
            pmt[c][i] = PmtEntry{i, true};
            pressureTrk[c].onAlloc(i, 0);
        }
        for (std::uint16_t v = cfg.numVPRegs; v-- > kNumLogicalRegs;)
            vpFreeList[c].push_back(v);
        for (std::uint16_t p = cfg.numPhysRegs; p-- > kNumLogicalRegs;)
            physFreeList[c].push_back(p);
        tracker[c].clear();
        pendingFrees[c].clear();
    }
    pendingFreeCycle = 0;
    nIssueRejections = 0;
}

void
VirtualPhysicalRename::tick(Cycle now)
{
    // Release the frees queued by commits of earlier cycles (the paper's
    // one-cycle commit delay for the PMT lookup).
    if (now > pendingFreeCycle) {
        for (std::size_t c = 0; c < kNumRegClasses; ++c) {
            for (PhysRegId r : pendingFrees[c]) {
                physFreeList[c].push_back(r);
                pressureTrk[c].onFree(r, now);
            }
            pendingFrees[c].clear();
        }
    }
}

bool
VirtualPhysicalRename::canRename(unsigned nIntDests,
                                 unsigned nFpDests) const
{
    // VP registers are the only decode-time resource. Sized per the
    // paper (NVR >= NLR + window) the pools never run dry, but the check
    // keeps arbitrary configurations safe.
    return vpFreeList[classIdx(RegClass::Int)].size() >= nIntDests &&
           vpFreeList[classIdx(RegClass::Float)].size() >= nFpDests;
}

void
VirtualPhysicalRename::renameInst(DynInst &inst, Cycle now)
{
    // Sources: GMT lookup. V set -> physical register (ready); V clear
    // -> VP register tag (will be woken by the completion broadcast).
    for (std::size_t i = 0; i < kMaxSrcRegs; ++i) {
        const RegId &sr = inst.si.src[i];
        if (!sr.valid())
            continue;
        std::size_t c = classIdx(sr.regClass());
        const GmtEntry &e = gmt[c][sr.index()];
        inst.src[i].valid = true;
        inst.src[i].cls = sr.regClass();
        if (e.v) {
            inst.src[i].tag = e.p;
            inst.src[i].ready = true;
        } else {
            inst.src[i].tag = e.vp;
            inst.src[i].ready = false;
        }
    }

    if (inst.hasDest()) {
        RegClass cls = inst.destClass();
        std::size_t c = classIdx(cls);
        std::uint16_t logical = inst.si.dest.index();
        auto &fl = vpFreeList[c];
        VPR_ASSERT(!fl.empty(), "VP free pool empty; size NVR >= NLR + "
                   "window to prevent this");
        VPRegId vp = fl.back();
        fl.pop_back();
        VPR_ASSERT(!pmt[c][vp].valid, "fresh VP reg has stale PMT entry");

        inst.prevTag = gmt[c][logical].vp;
        gmt[c][logical].vp = vp;
        gmt[c][logical].v = false;

        inst.vpReg = vp;
        inst.wakeupTag = vp;
        inst.physReg = kNoReg;
        tracker[c].onRename(inst.seq());
    }
    inst.setRenameCycle(now);
}

PhysRegId
VirtualPhysicalRename::allocPhys(RegClass cls, InstSeqNum seq, Cycle now)
{
    std::size_t c = classIdx(cls);
    auto &fl = physFreeList[c];
    VPR_ASSERT(!fl.empty(), "allocPhys with empty free list");
    PhysRegId reg = fl.back();
    fl.pop_back();
    pressureTrk[c].onAlloc(reg, now);
    tracker[c].onAllocate(seq);
    return reg;
}

void
VirtualPhysicalRename::freePhysDelayed(RegClass cls, PhysRegId reg)
{
    pendingFrees[classIdx(cls)].push_back(reg);
}

void
VirtualPhysicalRename::freePhysNow(RegClass cls, PhysRegId reg, Cycle now)
{
    physFreeList[classIdx(cls)].push_back(reg);
    pressureTrk[classIdx(cls)].onFree(reg, now);
}

bool
VirtualPhysicalRename::tryIssue(DynInst &inst, Cycle now)
{
    if (!allocAtIssue || !inst.hasDest())
        return true;
    VPR_ASSERT(inst.physReg == kNoReg, "issue-alloc: already has a reg");

    RegClass cls = inst.destClass();
    std::size_t c = classIdx(cls);
    if (!tracker[c].mayAllocate(inst.seq(), physFreeList[c].size())) {
        ++nIssueRejections;
        return false;
    }
    inst.physReg = allocPhys(cls, inst.seq(), now);
    return true;
}

CompleteResult
VirtualPhysicalRename::complete(DynInst &inst, Cycle now)
{
    if (!inst.hasDest())
        return {true};

    RegClass cls = inst.destClass();
    std::size_t c = classIdx(cls);

    if (!allocAtIssue) {
        VPR_ASSERT(inst.physReg == kNoReg,
                   "writeback-alloc: completing twice");
        if (!tracker[c].mayAllocate(inst.seq(), physFreeList[c].size())) {
            // No register may be taken: squash back to the IQ and
            // re-execute later (paper, section 3.3).
            ++nRejections;
            return {false};
        }
        inst.physReg = allocPhys(cls, inst.seq(), now);
    }
    VPR_ASSERT(inst.physReg != kNoReg, "complete without phys reg");

    // Record the VP -> physical binding in the PMT.
    VPR_ASSERT(!pmt[c][inst.vpReg].valid, "PMT entry already valid");
    pmt[c][inst.vpReg] = PmtEntry{inst.physReg, true};

    // Broadcast to the GMT: if the logical register still maps to this
    // VP register, expose the physical register to future decodes.
    std::uint16_t logical = inst.si.dest.index();
    if (gmt[c][logical].vp == inst.vpReg) {
        gmt[c][logical].p = inst.physReg;
        gmt[c][logical].v = true;
    }
    return {true};
}

void
VirtualPhysicalRename::commitInst(DynInst &inst, Cycle now)
{
    if (!inst.hasDest())
        return;

    RegClass cls = inst.destClass();
    std::size_t c = classIdx(cls);
    tracker[c].onCommit(inst.seq());

    // Free the VP register of the previous instruction with the same
    // logical destination, and the physical register found through the
    // PMT (always valid: that producer committed earlier, so it had
    // completed and allocated).
    VPRegId prevVp = static_cast<VPRegId>(inst.prevTag);
    PmtEntry &pe = pmt[c][prevVp];
    VPR_ASSERT(pe.valid, "commit: previous VP sn has no phys mapping");
    freePhysDelayed(cls, pe.phys);
    pendingFreeCycle = now;
    pe = PmtEntry{};
    vpFreeList[c].push_back(prevVp);
}

void
VirtualPhysicalRename::squashInst(DynInst &inst, Cycle now)
{
    for (auto &s : inst.src) {
        s.valid = false;
        s.ready = false;
        s.tag = kNoReg;
    }
    if (!inst.hasDest())
        return;

    RegClass cls = inst.destClass();
    std::size_t c = classIdx(cls);
    std::uint16_t logical = inst.si.dest.index();
    tracker[c].onSquash(inst.seq());

    VPR_ASSERT(gmt[c][logical].vp == inst.vpReg,
               "squash: GMT does not point at squashed inst");

    // Return this instruction's VP register (and physical register, if
    // one was already allocated) to the pools.
    if (inst.physReg != kNoReg) {
        VPR_ASSERT(!pmt[c][inst.vpReg].valid ||
                       pmt[c][inst.vpReg].phys == inst.physReg,
                   "squash: PMT mismatch");
        freePhysNow(cls, inst.physReg, now);
    }
    pmt[c][inst.vpReg] = PmtEntry{};
    vpFreeList[c].push_back(inst.vpReg);

    // Restore the previous mapping: VP field from the ROB-held previous
    // tag, physical mapping (and V bit) through the PMT.
    VPRegId prevVp = static_cast<VPRegId>(inst.prevTag);
    gmt[c][logical].vp = prevVp;
    const PmtEntry &pe = pmt[c][prevVp];
    gmt[c][logical].p = pe.valid ? pe.phys : 0;
    gmt[c][logical].v = pe.valid;

    inst.physReg = kNoReg;
    inst.vpReg = kNoReg;
    inst.wakeupTag = kNoReg;
}

std::size_t
VirtualPhysicalRename::freePhysRegs(RegClass cls) const
{
    return physFreeList[classIdx(cls)].size();
}

void
VirtualPhysicalRename::checkInvariants() const
{
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        std::vector<bool> physFree(cfg.numPhysRegs, false);
        for (PhysRegId r : physFreeList[c]) {
            VPR_ASSERT(!physFree[r], "phys reg ", r, " doubly free");
            physFree[r] = true;
        }
        for (PhysRegId r : pendingFrees[c]) {
            VPR_ASSERT(!physFree[r], "phys reg ", r,
                       " both free and pending");
            physFree[r] = true;
        }

        std::vector<bool> vpFree(cfg.numVPRegs, false);
        for (VPRegId v : vpFreeList[c]) {
            VPR_ASSERT(!vpFree[v], "VP reg ", v, " doubly free");
            vpFree[v] = true;
            VPR_ASSERT(!pmt[c][v].valid, "free VP reg ", v,
                       " has valid PMT entry");
        }

        // PMT-valid physical registers are distinct and not free.
        std::vector<bool> seen(cfg.numPhysRegs, false);
        for (std::uint16_t v = 0; v < cfg.numVPRegs; ++v) {
            if (!pmt[c][v].valid)
                continue;
            PhysRegId p = pmt[c][v].phys;
            VPR_ASSERT(!seen[p], "phys reg ", p, " mapped by two VP regs");
            seen[p] = true;
            VPR_ASSERT(!physFree[p], "mapped phys reg ", p, " is free");
        }

        // GMT consistency: the VP mapping is live (not free); a valid P
        // field matches the PMT.
        for (std::uint16_t l = 0; l < kNumLogicalRegs; ++l) {
            const GmtEntry &e = gmt[c][l];
            VPR_ASSERT(!vpFree[e.vp], "GMT vp of logical ", l, " is free");
            if (e.v) {
                VPR_ASSERT(pmt[c][e.vp].valid &&
                               pmt[c][e.vp].phys == e.p,
                           "GMT/PMT disagree for logical ", l);
            }
        }
    }
}

void
VirtualPhysicalRename::visitState(StateVisitor &v)
{
    RenameManager::visitState(v);
    v.section("rename.vp");
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        std::uint64_t n = gmt[c].size();
        v.value(n);
        if (v.loading() && n != gmt[c].size())
            throw CkptError("GMT size mismatch");
        for (GmtEntry &e : gmt[c]) {
            v.value(e.vp);
            v.value(e.p);
            v.value(e.v);
        }
        n = pmt[c].size();
        v.value(n);
        if (v.loading() && n != pmt[c].size())
            throw CkptError("PMT size mismatch");
        for (PmtEntry &e : pmt[c]) {
            v.value(e.phys);
            v.value(e.valid);
        }
        v.dynVec(vpFreeList[c]);
        v.dynVec(physFreeList[c]);
        tracker[c].visitState(v);
        // The last commit before the drain point may have queued frees
        // that only release on the next tick — they must travel.
        v.dynVec(pendingFrees[c]);
    }
    v.value(pendingFreeCycle);
    v.value(nIssueRejections);
}

} // namespace vpr
