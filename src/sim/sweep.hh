/**
 * @file
 * Declarative sweep driver: turn "--sweep key=v1,v2,..." axes into the
 * cross-product GridCell list the parallel experiment engine runs.
 *
 * The grid order is fixed so a sweep reproduces the hand-rolled figure
 * grids cell for cell: benchmarks are the outermost axis, then the
 * sweep axes left to right with the rightmost varying fastest. E.g.
 *
 *   vpr_sim --sweep core.rename.regfile_size=48,64,96
 *           --sweep core.scheme=conv,vp-wb  all
 *
 * enumerates, per benchmark, (48,conv), (48,vp-wb), (64,conv), ... —
 * exactly the fig7_regfile_size grid.
 */

#ifndef VPR_SIM_SWEEP_HH
#define VPR_SIM_SWEEP_HH

#include <string>
#include <vector>

#include "sim/parallel_engine.hh"

namespace vpr
{

/** One sweep axis: a dotted parameter name and its value list. */
struct SweepAxis
{
    std::string key;
    std::vector<std::string> values;
};

/** Strictly parse a "key=v1,v2,..." axis spec; fatal()s on a missing
 *  key, missing '=', or an empty value. The key itself is validated
 *  (and each value parsed) when the grid is built. */
SweepAxis parseSweepAxis(const std::string &spec);

/**
 * Build the cross-product grid: for every benchmark (outermost), every
 * combination of axis values (rightmost axis fastest), copy @p base and
 * apply the axis assignments left to right through the config registry.
 * fatal()s on an unknown key or a bad value.
 */
std::vector<GridCell>
buildSweepGrid(const std::vector<std::string> &benchmarks,
               const SimConfig &base, const std::vector<SweepAxis> &axes);

} // namespace vpr

#endif // VPR_SIM_SWEEP_HH
