#include "rename/rename_iface.hh"

#include "common/logging.hh"
#include "sim/params.hh"

namespace vpr
{

// renameSchemeName lives in factory.cc next to the scheme registry, so
// a scheme's name and constructor are registered in one place.

void
RenameConfig::visitParams(ParamVisitor &v)
{
    v.uintParam("phys_regs", numPhysRegs,
                "physical registers per register file (paper: 48, 64 "
                "or 96)");
    v.uintParam("vp_regs", numVPRegs,
                "virtual-physical registers per file (must be >= NLR + "
                "window)");
    v.uintParam("nrr_int", nrrInt,
                "reserved int registers for the oldest instructions "
                "(VP schemes)");
    v.uintParam("nrr_fp", nrrFp,
                "reserved FP registers for the oldest instructions "
                "(VP schemes)");
}

namespace
{

/** Register-lifetime histogram range: [0, 255] cycles in 16 buckets;
 *  longer holds land in the overflow counter. Fixed regardless of the
 *  configuration so sweep cells share one export schema. */
constexpr std::uint64_t kLifetimeMax = 255;
constexpr std::size_t kLifetimeBuckets = 16;

/** Occupancy histograms always use 16 buckets so sweeps over the
 *  register-file size keep a stable schema. */
constexpr std::size_t kOccupancyBuckets = 16;

} // namespace

RenameManager::RenameManager(const RenameConfig &config)
    : cfg(config),
      lifetimeDist{stats::Distribution::evenBuckets(
                       "lifetime.int",
                       "cycles a physical int register stays allocated",
                       0, kLifetimeMax, kLifetimeBuckets),
                   stats::Distribution::evenBuckets(
                       "lifetime.fp",
                       "cycles a physical FP register stays allocated",
                       0, kLifetimeMax, kLifetimeBuckets)},
      occupancyDist{stats::Distribution::evenBuckets(
                        "occupancy.int",
                        "busy integer physical registers per cycle", 0,
                        config.numPhysRegs, kOccupancyBuckets),
                    stats::Distribution::evenBuckets(
                        "occupancy.fp",
                        "busy FP physical registers per cycle", 0,
                        config.numPhysRegs, kOccupancyBuckets)},
      pressureTrk{PressureTracker(config.numPhysRegs, &lifetimeDist[0]),
                  PressureTracker(config.numPhysRegs, &lifetimeDist[1])}
{
    VPR_ASSERT(cfg.numPhysRegs > kNumLogicalRegs,
               "need more physical than logical registers");
    for (std::size_t c = 0; c < kNumRegClasses; ++c)
        renameGroup.add(&meanHold[c]);
    for (std::size_t c = 0; c < kNumRegClasses; ++c)
        vpGroup.add(&lifetimeDist[c]);
    for (std::size_t c = 0; c < kNumRegClasses; ++c)
        regfileGroup.add(&occupancyDist[c]);
    for (std::size_t c = 0; c < kNumRegClasses; ++c)
        regfileGroup.add(&peakBusy[c]);
}

void
RenameManager::visitState(StateVisitor &v)
{
    v.section("rename.base");
    for (std::size_t c = 0; c < kNumRegClasses; ++c)
        pressureTrk[c].visitState(v);
    v.value(nRejections);
    // The lifetime/occupancy distributions are interval stats: the
    // resetStats() that starts every measurement clears them in cold
    // and restored runs alike, so they never travel.
}

void
RenameManager::regStats(stats::StatRegistry &r)
{
    r.add(&renameGroup, [this] {
        for (std::size_t c = 0; c < kNumRegClasses; ++c)
            meanHold[c].set(pressureTrk[c].meanHoldCycles());
    });
    r.add(&vpGroup);
    r.add(&regfileGroup, [this] {
        for (std::size_t c = 0; c < kNumRegClasses; ++c)
            peakBusy[c].set(pressureTrk[c].peakBusy());
    });
}

} // namespace vpr
