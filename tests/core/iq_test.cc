/** @file Unit tests for the instruction queue. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/iq.hh"

namespace vpr
{
namespace
{

/** An IQ with its backing hot-state pool. Tests bind instructions to
 *  fresh pool slots through adopt() (the ROB does this in production). */
struct IqFixture
{
    explicit IqFixture(std::size_t cap, std::size_t slots = 2048)
        : hot(slots), iq(cap, hot)
    {
    }

    /** Bind @p d to a fresh (reset) hot slot and stamp @p seq. */
    void
    adopt(DynInst &d, InstSeqNum seq)
    {
        adoptAt(d, next++, seq);
    }

    /** Bind @p d to a specific slot — slot-reuse tests. */
    void
    adoptAt(DynInst &d, HotIdx sl, InstSeqNum seq)
    {
        hot.reset(sl);
        d.bindHot(&hot, sl);
        d.setSeq(seq);
    }

    DynInst
    alu(InstSeqNum seq)
    {
        DynInst d;
        d.si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                               RegId::intReg(3));
        adopt(d, seq);
        return d;
    }

    DynInst
    waiter(InstSeqNum seq, RegClass cls, std::uint16_t tag)
    {
        DynInst d = alu(seq);
        d.src[0].valid = true;
        d.src[0].cls = cls;
        d.src[0].tag = tag;
        return d;
    }

    InstHotPool hot;
    InstQueue iq;
    HotIdx next = 0;
};

TEST(InstQueue, InsertKeepsAgeOrder)
{
    IqFixture f(8);
    DynInst a = f.alu(1), b = f.alu(2), c = f.alu(3);
    f.iq.insert(&a);
    f.iq.insert(&c);
    // Re-insertion of an older instruction (write-back squash path).
    f.iq.insert(&b);
    ASSERT_EQ(f.iq.size(), 3u);
    EXPECT_EQ(f.iq.entries()[0]->seq(), 1u);
    EXPECT_EQ(f.iq.entries()[1]->seq(), 2u);
    EXPECT_EQ(f.iq.entries()[2]->seq(), 3u);
}

TEST(InstQueue, RemoveSpecificEntry)
{
    IqFixture f(8);
    DynInst a = f.alu(1), b = f.alu(2);
    f.iq.insert(&a);
    f.iq.insert(&b);
    f.iq.remove(&a);
    ASSERT_EQ(f.iq.size(), 1u);
    EXPECT_EQ(f.iq.entries()[0]->seq(), 2u);
}

TEST(InstQueue, WakeupMatchesClassAndTag)
{
    IqFixture f(8);
    DynInst a = f.alu(1);
    a.src[0].valid = true;
    a.src[0].cls = RegClass::Int;
    a.src[0].tag = 40;
    a.src[1].valid = true;
    a.src[1].cls = RegClass::Float;
    a.src[1].tag = 40;  // same tag number, different class!
    f.iq.insert(&a);

    EXPECT_EQ(f.iq.wakeup(RegClass::Int, 40, 7), 1u);
    EXPECT_TRUE(a.src[0].ready);
    EXPECT_EQ(a.src[0].tag, 7);      // captured the physical register
    EXPECT_FALSE(a.src[1].ready);    // FP operand untouched
}

TEST(InstQueue, WakeupIgnoresAlreadyReady)
{
    IqFixture f(8);
    DynInst a = f.alu(1);
    a.src[0].valid = true;
    a.src[0].cls = RegClass::Int;
    a.src[0].tag = 40;
    a.src[0].ready = true;
    f.iq.insert(&a);
    EXPECT_EQ(f.iq.wakeup(RegClass::Int, 40, 9), 0u);
    EXPECT_EQ(a.src[0].tag, 40);
}

TEST(InstQueue, WakeupHitsAllWaiters)
{
    IqFixture f(8);
    DynInst a = f.alu(1), b = f.alu(2);
    for (DynInst *d : {&a, &b}) {
        d->src[0].valid = true;
        d->src[0].cls = RegClass::Float;
        d->src[0].tag = 99;
        f.iq.insert(d);
    }
    EXPECT_EQ(f.iq.wakeup(RegClass::Float, 99, 3), 2u);
    EXPECT_TRUE(a.src[0].ready && b.src[0].ready);
}

TEST(InstQueue, SquashYoungerThanDropsTail)
{
    IqFixture f(8);
    DynInst a = f.alu(1), b = f.alu(5), c = f.alu(9);
    f.iq.insert(&a);
    f.iq.insert(&b);
    f.iq.insert(&c);
    f.iq.squashYoungerThan(5);
    ASSERT_EQ(f.iq.size(), 2u);
    EXPECT_EQ(f.iq.entries().back()->seq(), 5u);
    f.iq.squashYoungerThan(0);
    EXPECT_TRUE(f.iq.empty());
}

TEST(InstQueue, CapacityTracking)
{
    IqFixture f(2);
    DynInst a = f.alu(1), b = f.alu(2);
    EXPECT_FALSE(f.iq.full());
    f.iq.insert(&a);
    f.iq.insert(&b);
    EXPECT_TRUE(f.iq.full());
}

TEST(InstQueueDeath, InsertIntoFullPanics)
{
    IqFixture f(1);
    DynInst a = f.alu(1), b = f.alu(2);
    f.iq.insert(&a);
    EXPECT_DEATH(f.iq.insert(&b), "full IQ");
}

TEST(InstQueueDeath, DuplicateInsertPanics)
{
    IqFixture f(4);
    DynInst a = f.alu(1), b = f.alu(2);
    f.iq.insert(&a);
    f.iq.insert(&b);
    DynInst dup = f.alu(1);
    EXPECT_DEATH(f.iq.insert(&dup), "duplicate IQ entry");
}

TEST(InstQueueDeath, RemoveAbsentPanics)
{
    IqFixture f(4);
    DynInst a = f.alu(1);
    EXPECT_DEATH(f.iq.remove(&a), "not present");
}

// --- per-tag wait-list wakeup ---------------------------------------------

TEST(InstQueueWaitList, RemovedEntryIsNotWoken)
{
    IqFixture f(8);
    DynInst a = f.waiter(1, RegClass::Int, 40);
    DynInst b = f.waiter(2, RegClass::Int, 40);
    f.iq.insert(&a);
    f.iq.insert(&b);
    f.iq.remove(&a);  // e.g. issued before the broadcast
    EXPECT_EQ(f.iq.wakeup(RegClass::Int, 40, 7), 1u);
    EXPECT_FALSE(a.src[0].ready);
    EXPECT_TRUE(b.src[0].ready);
}

TEST(InstQueueWaitList, SquashedEntryIsNotWoken)
{
    IqFixture f(8);
    DynInst a = f.waiter(1, RegClass::Float, 9);
    DynInst b = f.waiter(5, RegClass::Float, 9);
    f.iq.insert(&a);
    f.iq.insert(&b);
    f.iq.squashYoungerThan(1);
    EXPECT_EQ(f.iq.wakeup(RegClass::Float, 9, 3), 1u);
    EXPECT_TRUE(a.src[0].ready);
    EXPECT_FALSE(b.src[0].ready);
}

TEST(InstQueueWaitList, SlotReuseAfterSquashIsDetected)
{
    // A squashed instruction's ROB slot (and hot row) is recycled for a
    // younger one; the stale wait-list entry must not wake the new
    // occupant, while the new occupant's own entry must.
    IqFixture f(8);
    DynInst slot = f.waiter(3, RegClass::Int, 12);
    HotIdx sl = slot.slot;
    f.iq.insert(&slot);
    f.iq.squashYoungerThan(0);
    ASSERT_TRUE(f.iq.empty());

    // Recycle the same storage and hot row with a new sequence number.
    slot = DynInst();
    slot.si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                              RegId::intReg(3));
    f.adoptAt(slot, sl, 9);
    slot.src[0].valid = true;
    slot.src[0].cls = RegClass::Int;
    slot.src[0].tag = 12;
    f.iq.insert(&slot);
    EXPECT_EQ(f.iq.wakeup(RegClass::Int, 12, 4), 1u);
    EXPECT_TRUE(slot.src[0].ready);
    EXPECT_EQ(slot.src[0].tag, 4);
}

TEST(InstQueueWaitList, ReinsertionDoesNotDoubleWake)
{
    // Write-back squash path: an instruction re-enters the queue while
    // its original wait-list entry may still be pending.
    IqFixture f(8);
    DynInst a = f.waiter(4, RegClass::Int, 17);
    f.iq.insert(&a);
    f.iq.remove(&a);
    f.iq.insert(&a);  // re-inserted, still waiting on tag 17
    EXPECT_EQ(f.iq.wakeup(RegClass::Int, 17, 6), 1u);
    EXPECT_TRUE(a.src[0].ready);
}

// --- ready-list publication -----------------------------------------------

/** Drain helper: newly published entries since the last call. */
std::vector<ReadyRef>
drain(InstQueue &iq)
{
    std::vector<ReadyRef> out;
    iq.drainReadyEvents(out);
    return out;
}

TEST(InstQueueReady, ReadyAtInsertIsPublishedImmediately)
{
    IqFixture f(8);
    DynInst a = f.alu(1);  // no sources: issue-ready on arrival
    f.iq.insert(&a);
    auto out = drain(f.iq);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &a);
    EXPECT_EQ(out[0].seq, 1u);
    EXPECT_EQ(out[0].slot, a.slot);
    EXPECT_TRUE(a.inReadyQ());
    // Published exactly once.
    EXPECT_TRUE(drain(f.iq).empty());
}

TEST(InstQueueReady, PublishedWhenLastSourceWakes)
{
    IqFixture f(8);
    DynInst a = f.alu(1);
    a.src[0] = {10, RegClass::Int, true, false};
    a.src[1] = {11, RegClass::Float, true, false};
    f.iq.insert(&a);
    EXPECT_TRUE(drain(f.iq).empty());
    f.iq.wakeup(RegClass::Int, 10, 70);
    EXPECT_TRUE(drain(f.iq).empty());  // one source still outstanding
    f.iq.wakeup(RegClass::Float, 11, 71);
    auto out = drain(f.iq);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &a);
}

TEST(InstQueueReady, StorePublishesOnAddressOperandOnly)
{
    // A store issues on its address operand (src[1]); the data operand
    // (src[0]) gates completion, not readiness for issue.
    IqFixture f(8);
    DynInst st;
    st.si = StaticInst::store(RegId::intReg(3), RegId::intReg(2), 0x100);
    f.adopt(st, 1);
    st.src[0] = {20, RegClass::Int, true, false};  // data
    st.src[1] = {21, RegClass::Int, true, false};  // address base
    f.iq.insert(&st);
    EXPECT_TRUE(drain(f.iq).empty());
    f.iq.wakeup(RegClass::Int, 20, 70);  // data wakes: still not ready
    EXPECT_TRUE(drain(f.iq).empty());
    f.iq.wakeup(RegClass::Int, 21, 71);  // address wakes: publish
    auto out = drain(f.iq);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &st);
}

TEST(InstQueueReady, ReinsertionAfterRemoveRepublishes)
{
    // Write-back rejection path: the instruction issued (leaving the
    // queue), got denied a register, and re-enters ready.
    IqFixture f(8);
    DynInst a = f.alu(1);
    f.iq.insert(&a);
    ASSERT_EQ(drain(f.iq).size(), 1u);
    f.iq.remove(&a);
    EXPECT_FALSE(a.inReadyQ());
    f.iq.insert(&a);
    auto out = drain(f.iq);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &a);
}

TEST(InstQueueReady, ScanIssueModeDoesNotPublish)
{
    IqFixture f(8);
    f.iq.setTrackReady(false);
    DynInst a = f.alu(1);
    f.iq.insert(&a);
    EXPECT_TRUE(drain(f.iq).empty());
    EXPECT_FALSE(a.inReadyQ());
}

TEST(InstQueueReady, MatchesFullScanOnRandomStimulus)
{
    // Random inserts/wakeups/removes/squashes; the set of instructions
    // ever published (and still valid) must equal exactly the resident
    // issue-ready instructions a full-queue scan would select from —
    // no duplicates, no misses.
    IqFixture f(64);
    std::vector<DynInst> pool(1024);
    std::vector<ReadyRef> published;

    std::uint64_t rng = 0x853c49e6748fea9bull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    std::size_t created = 0;
    InstSeqNum seq = 0;
    for (int step = 0; step < 4000; ++step) {
        switch (next() % 4) {
          case 0:
          case 1: {  // insert (sometimes a store, sometimes ready)
            if (created >= pool.size() || f.iq.full())
                break;
            DynInst d;
            if ((next() & 3) == 0) {
                d.si = StaticInst::store(RegId::intReg(3),
                                         RegId::intReg(2), 0x100);
            } else {
                d.si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                                       RegId::intReg(3));
            }
            f.adopt(d, ++seq);
            for (int si = 0; si < 2; ++si) {
                d.src[si].valid = (next() & 3) != 0;
                d.src[si].cls =
                    (next() & 1) ? RegClass::Int : RegClass::Float;
                d.src[si].tag = static_cast<std::uint16_t>(next() % 48);
                d.src[si].ready = (next() & 3) == 0;
            }
            pool[created] = d;
            f.iq.insert(&pool[created]);
            ++created;
            break;
          }
          case 2: {  // remove a random resident entry (issue)
            if (f.iq.empty())
                break;
            f.iq.removeAt(next() % f.iq.size());
            break;
          }
          case 3: {  // broadcast or squash
            if ((next() & 7) == 0) {
                f.iq.squashYoungerThan(seq > 0 ? next() % seq : 0);
            } else {
                f.iq.wakeup((next() & 1) ? RegClass::Int : RegClass::Float,
                            static_cast<std::uint16_t>(next() % 48),
                            static_cast<std::uint16_t>(64 + next() % 32));
            }
            break;
          }
        }
        if ((next() & 15) == 0)
            f.iq.drainReadyEvents(published);
    }
    f.iq.drainReadyEvents(published);

    // Valid publications, deduplicated by instruction.
    std::set<const DynInst *> readySet;
    for (const ReadyRef &e : published) {
        if (!e.inst->inIq() || e.inst->seq() != e.seq)
            continue;  // stale: issued, squashed, or slot reused
        EXPECT_TRUE(e.inst->issueOperandsReady());
        EXPECT_TRUE(readySet.insert(e.inst).second)
            << "duplicate publication of sn:" << e.seq;
    }
    // Exactly the entries a full scan would find ready.
    for (const DynInst *inst : f.iq.entries()) {
        EXPECT_EQ(readySet.count(inst) == 1, inst->issueOperandsReady())
            << "sn:" << inst->seq();
    }
}

TEST(InstQueueWaitList, MatchesScanReferenceOnRandomStimulus)
{
    // Drive a wait-list queue and a scan-mode queue with an identical
    // pseudo-random insert/remove/squash/wakeup stimulus; every wakeup
    // must report the same count and leave identical operand state.
    // Each queue gets its own hot pool (parallel universes must not
    // share residency flags).
    IqFixture fast(64, 1024);
    IqFixture ref(64, 1024);
    ref.iq.setScanWakeup(true);

    std::vector<DynInst> fastPool(512), refPool(512);
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    std::size_t created = 0;
    InstSeqNum seq = 0;
    for (int step = 0; step < 2000; ++step) {
        std::uint64_t r = next();
        switch (r % 4) {
          case 0:
          case 1: {  // insert a fresh instruction
            if (created >= fastPool.size() || fast.iq.full())
                break;
            DynInst d;
            d.si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                                   RegId::intReg(3));
            ++seq;
            for (int si = 0; si < 2; ++si) {
                d.src[si].valid = (next() & 3) != 0;
                d.src[si].cls =
                    (next() & 1) ? RegClass::Int : RegClass::Float;
                d.src[si].tag = static_cast<std::uint16_t>(next() % 48);
                d.src[si].ready = (next() & 3) == 0;
            }
            fastPool[created] = d;
            fast.adopt(fastPool[created], seq);
            refPool[created] = d;
            ref.adopt(refPool[created], seq);
            fast.iq.insert(&fastPool[created]);
            ref.iq.insert(&refPool[created]);
            ++created;
            break;
          }
          case 2: {  // remove a random resident entry (issue)
            if (fast.iq.empty())
                break;
            std::size_t i = next() % fast.iq.size();
            ASSERT_EQ(fast.iq.at(i)->seq(), ref.iq.at(i)->seq());
            fast.iq.removeAt(i);
            ref.iq.removeAt(i);
            break;
          }
          case 3: {  // broadcast or squash
            if ((next() & 7) == 0) {
                InstSeqNum keep = seq > 0 ? next() % seq : 0;
                fast.iq.squashYoungerThan(keep);
                ref.iq.squashYoungerThan(keep);
            } else {
                RegClass cls =
                    (next() & 1) ? RegClass::Int : RegClass::Float;
                std::uint16_t tag =
                    static_cast<std::uint16_t>(next() % 48);
                std::uint16_t phys =
                    static_cast<std::uint16_t>(64 + next() % 32);
                EXPECT_EQ(fast.iq.wakeup(cls, tag, phys),
                          ref.iq.wakeup(cls, tag, phys));
            }
            break;
          }
        }
        ASSERT_EQ(fast.iq.size(), ref.iq.size());
    }

    // Every operand of every instruction ever created agrees bit for
    // bit between the two implementations.
    for (std::size_t i = 0; i < created; ++i) {
        for (int si = 0; si < 2; ++si) {
            EXPECT_EQ(fastPool[i].src[si].ready, refPool[i].src[si].ready)
                << "inst " << i << " src " << si;
            EXPECT_EQ(fastPool[i].src[si].tag, refPool[i].src[si].tag)
                << "inst " << i << " src " << si;
        }
    }
}

} // namespace
} // namespace vpr
