/**
 * @file
 * The sweep daemon's request handling, factored away from sockets:
 * SweepService maps one parsed HttpRequest to one HttpResponse, so the
 * whole endpoint surface is unit-testable without ever binding a port
 * (vpr_simd wires it behind HttpServer; the tests call handle()
 * directly).
 *
 * Endpoints:
 *
 *  - POST /sweep — body is a small flat JSON object mirroring the
 *    vpr_sim --sweep grammar:
 *
 *      {"target": "all",
 *       "sweep": ["core.rename.regfile_size=48,64,96",
 *                 "core.scheme=conv,vp-wb"],
 *       "set": ["measure_insts=120000"],
 *       "figure": "fig7_regfile_size",
 *       "format": "csv"}
 *
 *    "target" is "all" or a benchmark list; "sweep"/"set" accept a
 *    string or an array of strings; "format" is "csv" (default) or
 *    "json". The grid is expanded with sim/sweep.hh, run on the
 *    parallel engine (with the result cache, when configured), and the
 *    merged records come back as the response body — byte-identical to
 *    what `vpr_sim --sweep ... --out` writes for the same spec.
 *    Validation is non-fatal: a bad key, value, or benchmark is a 400
 *    naming the offender, never a daemon exit.
 *
 *  - GET /status — JSON: uptime, jobs, instruction scale, result-cache
 *    configuration + hit/miss/corrupt/store counters, and per-endpoint
 *    request/error/latency minute-ring time series (time_series.hh).
 *
 *  - GET /params — the parameter reference (--help-params text).
 *
 *  - POST /shutdown — ask the daemon to exit after this response.
 */

#ifndef VPR_SERVICE_SWEEP_SERVICE_HH
#define VPR_SERVICE_SWEEP_SERVICE_HH

#include <cstdint>
#include <string>

#include "service/http.hh"
#include "service/time_series.hh"
#include "sim/config.hh"

namespace vpr::service
{

class SweepService
{
  public:
    /**
     * @param base configuration every request starts from (the daemon's
     *        command line: paper defaults + --set/--config overrides,
     *        including any sim.result_cache.dir)
     * @param jobs worker threads per sweep (0 = one per hardware thread)
     */
    SweepService(SimConfig base, unsigned jobs);

    /**
     * Handle one request. @p minute is the request's minute index
     * (minutes since daemon start) for the time series — passed in, not
     * read from a clock, so tests control rotation.
     */
    HttpResponse handle(const HttpRequest &request, std::uint64_t minute);

    /** True once a POST /shutdown has been served. */
    bool shutdownRequested() const { return shutdown; }

    /** Per-endpoint series, for the /status page and the tests.
     *  @p endpoint is a known path ("/sweep", "/status", "/params",
     *  "/shutdown") or anything else for the catch-all bucket. */
    const RequestTimeSeries &series(const std::string &endpoint) const;

    /** Render the /status JSON document at @p minute. */
    std::string statusJson(std::uint64_t minute) const;

  private:
    HttpResponse dispatch(const HttpRequest &request,
                          std::uint64_t minute);
    HttpResponse handleSweep(const std::string &body);

    RequestTimeSeries &seriesFor(const std::string &path);

    SimConfig base;
    unsigned jobs;
    bool shutdown = false;

    RequestTimeSeries sweepSeries;
    RequestTimeSeries statusSeries;
    RequestTimeSeries paramsSeries;
    RequestTimeSeries shutdownSeries;
    RequestTimeSeries otherSeries;  ///< unknown paths (all 404s)
};

/** Escape @p text as the contents of a JSON string literal. */
std::string jsonEscape(const std::string &text);

} // namespace vpr::service

#endif // VPR_SERVICE_SWEEP_SERVICE_HH
