/**
 * @file
 * Content-addressed warm-state checkpoint cache.
 *
 * A checkpoint is only valid for re-use when everything that shaped the
 * warm state is identical: the benchmark (trace identity), the warm-up
 * length, and the subset of the configuration the warmed structures
 * depend on. That subset is hashed into a *warm-key digest* which names
 * the file (content addressing) and is embedded in the checkpoint
 * header, so a stale file for a different warm-relevant configuration
 * is rejected on load rather than silently producing wrong results.
 *
 * Two scopes with different key widths (common/state.hh):
 *
 *  - Functional: a sampled run's initial fast-forward only warms the
 *    trace position, BHT and cache hierarchy. Core-width, queue sizes
 *    and the renaming scheme are irrelevant, so ONE functional
 *    checkpoint is shared by every cell of a scheme x regfile-size
 *    sweep grid — the digest only covers the warm-relevant keys.
 *  - Full: a non-sampled run's detailed warm-up touches everything, so
 *    the digest covers the full provenance (all result-relevant
 *    parameters) except the measurement length, which begins after the
 *    checkpoint.
 */

#ifndef VPR_SIM_CHECKPOINT_HH
#define VPR_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "common/state.hh"
#include "sim/config.hh"

namespace vpr
{

/**
 * The warm-key digest of (@p cfg, @p benchmark, @p streamIdentity) for
 * checkpoints of @p scope. Stable across processes and runs: built
 * from the canonical provenance text of the warm-relevant parameters
 * plus the state-format version (a format bump invalidates every
 * cached checkpoint at the name level, not just on load).
 */
std::uint64_t warmStateDigest(const SimConfig &cfg,
                              const std::string &benchmark,
                              const std::string &streamIdentity,
                              CkptScope scope);

/** Cache-file path: `<dir>/<benchmark>-<func|full>-<hex16digest>.vprck`. */
std::string checkpointPath(const std::string &dir,
                           const std::string &benchmark, CkptScope scope,
                           std::uint64_t digest);

} // namespace vpr

#endif // VPR_SIM_CHECKPOINT_HH
