/**
 * @file
 * Issue stage: oldest-first selection over ready IQ entries constrained
 * by functional units, register-file read ports, cache ports, memory
 * disambiguation and the renamer's issue gate. Completion events it
 * schedules land in the CompletionQueue latch consumed by the complete
 * stage.
 *
 * Selection is event-driven: the stage merges the IQ's newly published
 * ready instructions with its own parked entries (per-FU stall lists
 * gated on unit availability, a retry list for the per-cycle resources,
 * and the LSQ's released hold subscriptions), sorts the merged
 * candidates by age and attempts them oldest first — the whole
 * instruction queue is never walked. Entries that fail a structural
 * check are re-parked on the matching list; holds park inside the LSQ
 * until the blocking store resolves. The legacy full-queue scan
 * survives behind CoreConfig::iqScanIssue (core.iq.scan_issue) and is
 * byte-identical, as the determinism test asserts.
 */

#ifndef VPR_CORE_STAGES_ISSUE_STAGE_HH
#define VPR_CORE_STAGES_ISSUE_STAGE_HH

#include <array>
#include <vector>

#include "common/stats.hh"
#include "core/stages/latches.hh"
#include "core/stages/pipeline_state.hh"
#include "core/stages/stage.hh"

namespace vpr
{

/** The issue/execute stage. */
class IssueStage : public Stage
{
  public:
    IssueStage(PipelineState &state, CompletionQueue &completionQueue);

    const char *name() const override { return "issue"; }

    void tick() override;

    void
    squash(InstSeqNum) override
    {
        // Parked entries of squashed instructions go stale through the
        // seq + inIq check and are dropped at the next merge; nothing
        // to walk here.
    }

    /** Drop carried-over candidates and stall queues (simulator reuse
     *  between grid cells). Capacities stay resident. */
    void
    reinit()
    {
        cand.clear();
        retryQ.clear();
        for (auto &q : fuStallQ)
            q.clear();
    }

  private:
    /** Why an issue attempt did not issue. */
    enum class Outcome : std::uint8_t
    {
        Issued,    ///< side effects committed, instruction left the IQ
        Hold,      ///< LSQ disambiguation hold (blocker identifies why)
        NoFu,      ///< all functional units of the class busy
        Resource,  ///< per-cycle resource (ports, renamer gate, cache)
    };

    /** One attempt's verdict, with the LSQ blocker for holds. */
    struct Attempt
    {
        Outcome outcome;
        LoadHold hold = LoadHold::Ready;
        const DynInst *blocker = nullptr;
    };

    /** Try to issue one instruction (all structural checks in scan
     *  order); commits the side effects only when it issues. */
    Attempt tryIssueOne(DynInst *inst);

    /** The legacy full-queue oldest-first walk (reference path). */
    void scanTick();

    PipelineState &s;
    CompletionQueue &completions;
    bool scanIssue;

    /** This cycle's merged, age-sorted candidates (member to reuse the
     *  allocation across cycles). */
    std::vector<ReadyRef> cand;
    /** Ready entries that failed a per-cycle resource; retried next
     *  cycle, exactly when the scan would retry them. */
    std::vector<ReadyRef> retryQ;
    /** Ready entries stalled on a busy FU class; merged back the first
     *  cycle a unit is available again (until then every scan attempt
     *  would fail the same availability check). */
    std::array<std::vector<ReadyRef>, kNumFUTypes> fuStallQ;

    stats::StatGroup group{"issue"};
    stats::Scalar issued{"issued", "instructions issued"};
    stats::Counter2D byClass;
    /** Fetch-to-first-issue latency per op class (satellite of the
     *  event-driven scheduler work; re-executions are not resampled). */
    std::vector<stats::Distribution> fetchToIssue;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_ISSUE_STAGE_HH
