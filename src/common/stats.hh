/**
 * @file
 * Lightweight statistics package (a miniature of gem5's Stats).
 *
 * Stats are plain accumulators registered with a StatGroup so that whole
 * subsystems can be dumped or reset uniformly. No global registry: each
 * simulator instance owns its groups, keeping runs independent.
 */

#ifndef VPR_COMMON_STATS_HH
#define VPR_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vpr::stats
{

/**
 * Visitor over the (name, desc, typed value) triples a statistic
 * exposes. This is the machine-readable face of the package: anything
 * that can pretty-print can also be enumerated into an export record.
 * A multi-valued stat (e.g. Distribution) visits one triple per
 * sub-value, suffixing its name.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    /** An integral counter/gauge value. */
    virtual void visitUInt(const std::string &name,
                           const std::string &desc, std::uint64_t v) = 0;
    /** A real-valued mean/rate/ratio. */
    virtual void visitReal(const std::string &name,
                           const std::string &desc, double v) = 0;
};

/** Base class for every statistic. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : statName(std::move(name)), statDesc(std::move(desc))
    {}
    virtual ~StatBase() = default;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Reset the accumulator to its initial state. */
    virtual void reset() = 0;
    /** Print "name value # desc" style line(s). */
    virtual void print(std::ostream &os) const = 0;
    /** Enumerate the stat's values into @p v. */
    virtual void visit(StatVisitor &v) const = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** A simple monotonic counter / gauge. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(std::uint64_t d) { val += d; return *this; }
    void set(std::uint64_t v) { val = v; }
    std::uint64_t value() const { return val; }

    void reset() override { val = 0; }
    void print(std::ostream &os) const override;

    void
    visit(StatVisitor &v) const override
    {
        v.visitUInt(name(), desc(), val);
    }

  private:
    std::uint64_t val = 0;
};

/** A real-valued gauge for derived rates and ratios (IPC, miss rate). */
class Real : public StatBase
{
  public:
    using StatBase::StatBase;

    void set(double v) { val = v; }
    double value() const { return val; }

    void reset() override { val = 0.0; }
    void print(std::ostream &os) const override;

    void
    visit(StatVisitor &v) const override
    {
        v.visitReal(name(), desc(), val);
    }

  private:
    double val = 0.0;
};

/** Mean of a stream of samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    std::uint64_t samples() const { return n; }
    double total() const { return sum; }

    void reset() override { sum = 0.0; n = 0; }
    void print(std::ostream &os) const override;

    void
    visit(StatVisitor &v) const override
    {
        v.visitReal(name(), desc(), mean());
        v.visitUInt(name() + ".samples", desc(), n);
    }

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
};

/** Bucketed distribution over [min, max] with uniform buckets. */
class Distribution : public StatBase
{
  public:
    Distribution(std::string name, std::string desc, std::uint64_t min,
                 std::uint64_t max, std::uint64_t bucketSize);

    void sample(std::uint64_t v);

    std::uint64_t bucketCount(std::size_t i) const { return buckets.at(i); }
    std::size_t numBuckets() const { return buckets.size(); }
    std::uint64_t underflows() const { return under; }
    std::uint64_t overflows() const { return over; }
    std::uint64_t samples() const { return n; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    std::uint64_t minSample() const { return minSeen; }
    std::uint64_t maxSample() const { return maxSeen; }

    void reset() override;
    void print(std::ostream &os) const override;
    void visit(StatVisitor &v) const override;

  private:
    std::uint64_t lo;
    std::uint64_t hi;
    std::uint64_t bsize;
    std::vector<std::uint64_t> buckets;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t n = 0;
    double sum = 0.0;
    std::uint64_t minSeen = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * A named collection of statistics. Groups own no stat storage — stats
 * live as members of their subsystem and register themselves here.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : groupName(std::move(name)) {}

    void add(StatBase *stat) { statList.push_back(stat); }

    const std::string &name() const { return groupName; }
    const std::vector<StatBase *> &all() const { return statList; }

    void resetAll();
    void print(std::ostream &os) const;

    /** Enumerate every stat in registration order, with each name
     *  prefixed "<group>." so records from different groups can share a
     *  flat namespace. */
    void visit(StatVisitor &v) const;

  private:
    std::string groupName;
    std::vector<StatBase *> statList;
};

} // namespace vpr::stats

#endif // VPR_COMMON_STATS_HH
