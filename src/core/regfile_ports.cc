#include "core/regfile_ports.hh"

// All members are defined inline in the header; this translation unit
// anchors the module in the build.
