#include "core/stages/rename_stage.hh"

namespace vpr
{

void
RenameStage::tick()
{
    for (unsigned k = 0; k < s.cfg.renameWidth && fetched.hasInst(); ++k) {
        const FetchedInst &fi = fetched.peek();

        if (s.rob.full()) {
            ++stallRob;
            break;
        }
        if (s.iq.full()) {
            ++stallIq;
            break;
        }
        if (fi.si.isMem() && s.lsq.full()) {
            ++stallLsq;
            break;
        }

        unsigned nInt = 0, nFp = 0;
        if (fi.si.hasDest()) {
            if (fi.si.dest.regClass() == RegClass::Int)
                nInt = 1;
            else
                nFp = 1;
        }
        if (!s.renameMgr->canRename(nInt, nFp)) {
            ++stallReg;
            break;
        }

        FetchedInst f = fetched.pop();
        // Allocate the ROB entry first (binding it to its freshly reset
        // hot-state row), then fill it in place — no DynInst copy.
        DynInst *inst = s.rob.allocate();
        inst->si = f.si;
        inst->setSeq(++s.nextSeq);
        inst->wrongPath = f.wrongPath;
        inst->mispredictedBranch = f.mispredictedBranch;
        inst->setFetchCycle(f.fetchCycle);

        s.renameMgr->renameInst(*inst, s.curCycle);
        s.iq.insert(inst);
        if (inst->isMem())
            s.lsq.insert(inst);
    }
}

} // namespace vpr
