/**
 * @file
 * Figure 6 of the paper: write-back versus issue allocation, each at
 * its optimal NRR (32 for both), reported as speedup over the
 * conventional scheme per benchmark.
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    SimConfig config = experimentConfig();

    printTableHeader(std::cout,
                     "Figure 6: write-back vs issue allocation "
                     "(speedup over conventional, NRR=32)",
                     {"writeback", "issue"});

    std::vector<double> wbAll, issAll;
    for (const auto &name : benchmarkNames()) {
        config.setScheme(RenameScheme::Conventional);
        double conv = runOne(name, config).ipc();

        config.setScheme(RenameScheme::VPAllocAtWriteback);
        config.setNrr(32);
        double wb = runOne(name, config).ipc() / conv;

        config.setScheme(RenameScheme::VPAllocAtIssue);
        config.setNrr(32);
        double iss = runOne(name, config).ipc() / conv;

        wbAll.push_back(wb);
        issAll.push_back(iss);
        printTableRow(std::cout, name, {wb, iss}, 3);
    }
    std::cout << std::string(36, '-') << "\n";
    printTableRow(std::cout, "geomean", {geoMean(wbAll), geoMean(issAll)},
                  3);
    std::cout << "\npaper reference: write-back allocation significantly "
                 "outperforms issue allocation on every benchmark, in "
                 "spite of the re-executions it causes.\n";
    return 0;
}
