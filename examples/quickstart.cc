/**
 * @file
 * Quickstart: simulate one benchmark under the conventional and the
 * virtual-physical renaming schemes and compare IPC.
 *
 * Usage: quickstart [benchmark] (default: swim)
 */

#include <iostream>
#include <string>

#include "sim/experiment.hh"
#include "trace/kernels/kernels.hh"

using namespace vpr;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "swim";

    std::cout << "benchmark: " << bench << " — "
              << benchmarkInfo(bench).sketch << "\n\n";

    // The paper's machine: 8-wide, 128-entry window, 64 physical
    // registers per file, NRR at its maximum (32).
    SimConfig config = paperConfig();
    config.skipInsts = 10000;
    config.measureInsts = 100000;

    config.setScheme(RenameScheme::Conventional);
    SimResults conv = runOne(bench, config);

    config.setScheme(RenameScheme::VPAllocAtWriteback);
    SimResults vp = runOne(bench, config);

    std::cout << "conventional renaming:        IPC = " << conv.ipc()
              << "\n";
    std::cout << "virtual-physical (writeback): IPC = " << vp.ipc()
              << "\n";
    std::cout << "speedup: " << vp.ipc() / conv.ipc() << "x\n\n";

    std::cout << "register holding time per value (cycles):\n";
    std::cout << "  conventional: int=" << conv.meanHoldCyclesInt()
              << " fp=" << conv.meanHoldCyclesFp() << "\n";
    std::cout << "  virt-phys:    int=" << vp.meanHoldCyclesInt()
              << " fp=" << vp.meanHoldCyclesFp() << "\n";
    std::cout << "\nre-executions per committed instruction (vp): "
              << vp.executionsPerCommit() << "\n";
    return 0;
}
