#include "common/stats.hh"

#include <cmath>
#include <iomanip>
#include <unordered_set>

#include "common/logging.hh"

namespace vpr::stats
{

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " " << std::right
       << std::setw(14) << val << "  # " << desc() << "\n";
}

void
Real::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " " << std::right
       << std::setw(14) << std::fixed << std::setprecision(4) << value()
       << "  # " << desc() << "\n";
}

void
Average::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " " << std::right
       << std::setw(14) << std::fixed << std::setprecision(4) << mean()
       << "  # " << desc() << " (" << n << " samples)\n";
}

Distribution::Distribution(std::string name, std::string desc,
                           std::uint64_t min, std::uint64_t max,
                           std::uint64_t bucketSize)
    : StatBase(std::move(name), std::move(desc)), lo(min), hi(max),
      bsize(bucketSize)
{
    VPR_ASSERT(max >= min, "distribution range inverted");
    VPR_ASSERT(bucketSize > 0, "bucket size must be positive");
    buckets.assign((max - min) / bucketSize + 1, 0);
}

Distribution
Distribution::evenBuckets(std::string name, std::string desc,
                          std::uint64_t min, std::uint64_t max,
                          std::size_t numBuckets)
{
    VPR_ASSERT(max >= min, "distribution range inverted");
    VPR_ASSERT(numBuckets > 0, "bucket count must be positive");
    const std::uint64_t range = max - min + 1;
    const std::uint64_t width = (range + numBuckets - 1) / numBuckets;
    Distribution d(std::move(name), std::move(desc), min, max, width);
    // The ceil-divided width can make the natural bucket count smaller
    // than requested; pad so the count is exactly numBuckets for any
    // range — that fixed count is what keeps export schemas identical
    // across grid cells with different structure sizes.
    d.buckets.assign(numBuckets, 0);
    return d;
}

double
Distribution::stddev() const
{
    if (n == 0)
        return 0.0;
    const double m = mean();
    const double var = sumSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    under = over = n = 0;
    sum = 0.0;
    sumSq = 0.0;
    minSeen = maxSeen = 0;
    buckets.assign(buckets.size(), 0);
}

void
Distribution::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " mean="
       << std::fixed << std::setprecision(3) << mean() << " sd="
       << stddev() << " n=" << n << " min=" << minSeen << " max="
       << maxSeen << "  # " << desc() << "\n";
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        os << "  [" << (lo + i * bsize) << ".."
           << (lo + (i + 1) * bsize - 1) << "] " << buckets[i] << "\n";
    }
    if (under)
        os << "  underflows " << under << "\n";
    if (over)
        os << "  overflows " << over << "\n";
}

void
Distribution::visit(StatVisitor &v) const
{
    v.visitReal(name() + ".mean", desc(), mean());
    v.visitReal(name() + ".stddev", desc(), stddev());
    v.visitUInt(name() + ".samples", desc(), n);
    v.visitUInt(name() + ".min", desc(), minSeen);
    v.visitUInt(name() + ".max", desc(), maxSeen);
    v.visitUInt(name() + ".underflows", desc(), under);
    v.visitUInt(name() + ".overflows", desc(), over);
    // The bucket geometry travels with the data so consumers (figure
    // renderers, plotters) never re-derive the origin or width by hand.
    v.visitUInt(name() + ".range_min", desc(), lo);
    v.visitUInt(name() + ".bucket_size", desc(), bsize);
    for (std::size_t i = 0; i < buckets.size(); ++i)
        v.visitUInt(name() + ".hist[" + std::to_string(i) + "]", desc(),
                    buckets[i]);
}

Counter2D::Counter2D(std::string name, std::string desc,
                     std::vector<std::string> rowNames,
                     std::vector<std::string> colNames)
    : StatBase(std::move(name), std::move(desc)),
      rows(std::move(rowNames)), cols(std::move(colNames)),
      counts(rows.size() * cols.size(), 0)
{
    VPR_ASSERT(!rows.empty() && !cols.empty(),
               "Counter2D needs at least one row and one column");
}

std::uint64_t
Counter2D::rowTotal(std::size_t row) const
{
    std::uint64_t t = 0;
    for (std::size_t c = 0; c < cols.size(); ++c)
        t += count(row, c);
    return t;
}

std::uint64_t
Counter2D::colTotal(std::size_t col) const
{
    std::uint64_t t = 0;
    for (std::size_t r = 0; r < rows.size(); ++r)
        t += count(r, col);
    return t;
}

std::uint64_t
Counter2D::total() const
{
    std::uint64_t t = 0;
    for (std::uint64_t c : counts)
        t += c;
    return t;
}

void
Counter2D::reset()
{
    counts.assign(counts.size(), 0);
}

void
Counter2D::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " total="
       << total() << "  # " << desc() << "\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rowTotal(r) == 0)
            continue;
        os << "  " << std::left << std::setw(12) << rows[r];
        for (std::size_t c = 0; c < cols.size(); ++c)
            os << " " << cols[c] << "=" << count(r, c);
        os << "\n";
    }
}

void
Counter2D::visit(StatVisitor &v) const
{
    for (std::size_t r = 0; r < rows.size(); ++r)
        for (std::size_t c = 0; c < cols.size(); ++c)
            v.visitUInt(name() + "." + rows[r] + "." + cols[c], desc(),
                        count(r, c));
}

namespace
{

/** Forwards to an inner visitor with "<prefix>." prepended to names. */
class PrefixVisitor : public StatVisitor
{
  public:
    PrefixVisitor(const std::string &prefix, StatVisitor &inner)
        : pfx(prefix + "."), v(inner)
    {}

    void
    visitUInt(const std::string &name, const std::string &desc,
              std::uint64_t val) override
    {
        v.visitUInt(pfx + name, desc, val);
    }

    void
    visitReal(const std::string &name, const std::string &desc,
              double val) override
    {
        v.visitReal(pfx + name, desc, val);
    }

  private:
    std::string pfx;
    StatVisitor &v;
};

} // namespace

void
StatGroup::visit(StatVisitor &v) const
{
    PrefixVisitor prefixed(groupName, v);
    for (const auto *s : statList)
        s->visit(prefixed);
}

void
StatGroup::resetAll()
{
    for (auto *s : statList)
        s->reset();
}

void
StatGroup::print(std::ostream &os) const
{
    os << "---------- " << groupName << " ----------\n";
    for (const auto *s : statList)
        s->print(os);
}

namespace
{

/**
 * Forwarding visitor that panics on a repeated full name. Groups may
 * share a prefix (two components both exporting under "core."), so a
 * leaf-name collision would otherwise be silently collapsed by
 * consumers like MetricsRecord — better to fail loudly at the source.
 */
class UniqueNameVisitor : public StatVisitor
{
  public:
    explicit UniqueNameVisitor(StatVisitor &inner) : v(inner) {}

    void
    visitUInt(const std::string &name, const std::string &desc,
              std::uint64_t val) override
    {
        check(name);
        v.visitUInt(name, desc, val);
    }

    void
    visitReal(const std::string &name, const std::string &desc,
              double val) override
    {
        check(name);
        v.visitReal(name, desc, val);
    }

  private:
    void
    check(const std::string &name)
    {
        VPR_ASSERT(seen.insert(name).second,
                   "duplicate stat name in tree walk: ", name);
    }

    StatVisitor &v;
    std::unordered_set<std::string> seen;
};

} // namespace

void
StatRegistry::visit(StatVisitor &v)
{
    UniqueNameVisitor unique(v);
    for (Entry &e : entryList) {
        if (e.update)
            e.update();
        e.group->visit(unique);
    }
}

void
StatRegistry::reset()
{
    for (Entry &e : entryList) {
        if (e.reset)
            e.reset();
        else
            e.group->resetAll();
    }
}

void
StatRegistry::print(std::ostream &os)
{
    for (Entry &e : entryList) {
        if (e.update)
            e.update();
        e.group->print(os);
    }
}

} // namespace vpr::stats
