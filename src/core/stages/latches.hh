/**
 * @file
 * Explicit inter-stage latches and ports.
 *
 * Instead of stages mutating each other's members, every inter-stage
 * signal travels through one of these objects, owned by the composition
 * root and injected into the stages that drive or sample them:
 *
 *   CompletionQueue   issue -> complete: scheduled completion events and
 *                     stores parked on an in-flight data operand.
 *   FetchBufferPort   fetch -> rename: the fetch buffer's consumer side.
 *   FetchRedirectPort complete -> fetch: the branch-resolution wire.
 */

#ifndef VPR_CORE_STAGES_LATCHES_HH
#define VPR_CORE_STAGES_LATCHES_HH

#include <queue>
#include <utility>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/fetch.hh"

namespace vpr
{

/** A scheduled "instruction finishes execution" event. */
struct CompletionEvent
{
    Cycle when;
    InstSeqNum seq;
    DynInst *inst;

    bool
    operator>(const CompletionEvent &o) const
    {
        return when != o.when ? when > o.when : seq > o.seq;
    }
};

/**
 * The issue→complete latch: a time-ordered queue of completion events
 * plus the issued stores waiting for their data operand. Events for
 * squashed instructions are filtered lazily at pop time (the ROB slot
 * may have been reused, so the (seq, phase) pair is re-checked), which
 * keeps recovery O(squashed instructions).
 */
class CompletionQueue
{
  public:
    /** Schedule @p inst to complete at @p when. */
    void
    schedule(Cycle when, InstSeqNum seq, DynInst *inst)
    {
        events.push({when, seq, inst});
    }

    /** Is an event due at or before @p now? */
    bool
    hasDue(Cycle now) const
    {
        return !events.empty() && events.top().when <= now;
    }

    /** Pop the next due event (caller must check hasDue). */
    CompletionEvent
    popDue()
    {
        CompletionEvent ev = events.top();
        events.pop();
        return ev;
    }

    std::size_t pendingEvents() const { return events.size(); }

    /** Park an issued store until its data operand is produced. */
    void
    parkStore(DynInst *inst, InstSeqNum seq)
    {
        storesAwaitingData.emplace_back(inst, seq);
    }

    std::vector<std::pair<DynInst *, InstSeqNum>> &
    parkedStores()
    {
        return storesAwaitingData;
    }

    std::size_t parkedStoreCount() const { return storesAwaitingData.size(); }

    /** Drop parked stores younger than @p youngestKept (recovery). */
    void
    squashYoungerThan(InstSeqNum youngestKept)
    {
        std::size_t keep = 0;
        for (auto &entry : storesAwaitingData)
            if (entry.second <= youngestKept)
                storesAwaitingData[keep++] = entry;
        storesAwaitingData.resize(keep);
    }

    /** True if any event or parked store references @p seq (tests). */
    bool
    pendingFor(InstSeqNum seq) const
    {
        auto copy = events;
        while (!copy.empty()) {
            if (copy.top().seq == seq)
                return true;
            copy.pop();
        }
        for (const auto &[inst, sn] : storesAwaitingData)
            if (sn == seq)
                return true;
        return false;
    }

  private:
    std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                        std::greater<CompletionEvent>>
        events;

    /** Issued stores whose data operand has not been produced yet; they
     *  complete once the data broadcast arrives. */
    std::vector<std::pair<DynInst *, InstSeqNum>> storesAwaitingData;
};

/** The consumer side of the fetch buffer (fetch→rename latch). */
class FetchBufferPort
{
  public:
    explicit FetchBufferPort(FetchUnit &unit) : fetch(unit) {}

    bool hasInst() const { return fetch.hasInst(); }
    const FetchedInst &peek() const { return fetch.peek(); }
    FetchedInst pop() { return fetch.pop(); }

  private:
    FetchUnit &fetch;
};

/** The branch-resolution wire (complete→fetch). Driving it redirects
 *  fetch immediately, within the same cycle — the consumer stages that
 *  tick later this cycle (rename, fetch) observe the flushed buffer. */
class FetchRedirectPort
{
  public:
    explicit FetchRedirectPort(FetchUnit &unit) : fetch(unit) {}

    void redirect(Cycle now) { fetch.resolveBranch(now); }

  private:
    FetchUnit &fetch;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_LATCHES_HH
