/** @file Unit tests for CircularBuffer. */

#include <gtest/gtest.h>

#include "common/circular_buffer.hh"

namespace vpr
{
namespace
{

TEST(CircularBuffer, StartsEmpty)
{
    CircularBuffer<int> b(4);
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.full());
    EXPECT_EQ(b.size(), 0u);
    EXPECT_EQ(b.capacity(), 4u);
    EXPECT_EQ(b.freeSlots(), 4u);
}

TEST(CircularBuffer, PushBackGrows)
{
    CircularBuffer<int> b(4);
    b.pushBack(1);
    b.pushBack(2);
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(b.front(), 1);
    EXPECT_EQ(b.back(), 2);
}

TEST(CircularBuffer, FillsToCapacity)
{
    CircularBuffer<int> b(3);
    b.pushBack(1);
    b.pushBack(2);
    b.pushBack(3);
    EXPECT_TRUE(b.full());
    EXPECT_EQ(b.freeSlots(), 0u);
}

TEST(CircularBuffer, PopFrontFifoOrder)
{
    CircularBuffer<int> b(3);
    b.pushBack(1);
    b.pushBack(2);
    b.pushBack(3);
    b.popFront();
    EXPECT_EQ(b.front(), 2);
    b.popFront();
    EXPECT_EQ(b.front(), 3);
    b.popFront();
    EXPECT_TRUE(b.empty());
}

TEST(CircularBuffer, PopBackLifoFromTail)
{
    CircularBuffer<int> b(3);
    b.pushBack(1);
    b.pushBack(2);
    b.popBack();
    EXPECT_EQ(b.back(), 1);
    EXPECT_EQ(b.size(), 1u);
}

TEST(CircularBuffer, WrapsAround)
{
    CircularBuffer<int> b(3);
    for (int i = 0; i < 100; ++i) {
        b.pushBack(i);
        if (b.size() == 3) {
            EXPECT_EQ(b.front(), i - 2);
            b.popFront();
        }
    }
    // Elements survive wrapping in order.
    EXPECT_EQ(b.at(0), 98);
    EXPECT_EQ(b.at(1), 99);
}

TEST(CircularBuffer, LogicalIndexingOldestFirst)
{
    CircularBuffer<int> b(5);
    for (int i = 10; i < 14; ++i)
        b.pushBack(i);
    b.popFront();
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_EQ(b.at(i), 11 + static_cast<int>(i));
}

TEST(CircularBuffer, PointerStabilityWhileAlive)
{
    // The ROB relies on element addresses staying fixed while the
    // element is in the buffer, across pushes and pops of *other*
    // elements.
    CircularBuffer<int> b(4);
    b.pushBack(1);
    b.pushBack(2);
    int *p2 = &b.at(1);
    b.popFront();
    b.pushBack(3);
    b.pushBack(4);
    EXPECT_EQ(*p2, 2);
    EXPECT_EQ(&b.at(0), p2);
}

TEST(CircularBuffer, ClearResets)
{
    CircularBuffer<int> b(3);
    b.pushBack(1);
    b.pushBack(2);
    b.clear();
    EXPECT_TRUE(b.empty());
    b.pushBack(9);
    EXPECT_EQ(b.front(), 9);
}

TEST(CircularBufferDeath, OverflowPanics)
{
    CircularBuffer<int> b(1);
    b.pushBack(1);
    EXPECT_DEATH(b.pushBack(2), "pushBack on full");
}

TEST(CircularBufferDeath, UnderflowPanics)
{
    CircularBuffer<int> b(1);
    EXPECT_DEATH(b.popFront(), "popFront on empty");
    EXPECT_DEATH(b.front(), "front of empty");
}

TEST(CircularBufferDeath, OutOfRangeIndexPanics)
{
    CircularBuffer<int> b(4);
    b.pushBack(1);
    EXPECT_DEATH(b.at(1), "out of range");
}

} // namespace
} // namespace vpr
