/**
 * @file
 * Streaming compression + self-identifying container ("VPRZ") for
 * checkpoints and large grid result files, plus magic-byte format
 * autodetection so readers ingest compressed and plain inputs alike.
 *
 * Container layout:
 *
 *   magic "VPRZ" (4 bytes)
 *   u8  container version (1)
 *   u8  codec: 0 = store (no compression), 1 = zlib deflate
 *   u16 kind length, kind bytes — what the payload is ("ckpt",
 *       "results"); a reader expecting one kind rejects another
 *   u64 raw (uncompressed) payload size
 *   u64 stored (possibly compressed) payload size
 *   stored payload bytes
 *   u64 FNV-1a of the raw payload
 *
 * zlib is found by CMake; when absent the codec falls back to store so
 * the container still round-trips (compression is a size optimization,
 * never a correctness dependency). Every malformed input throws
 * CkptError with a message naming the first failed check.
 */

#ifndef VPR_COMMON_IO_ZIO_HH
#define VPR_COMMON_IO_ZIO_HH

#include <cstdint>
#include <string>

namespace vpr
{

/** Detected on-disk format of an input file (by magic bytes). */
enum class FileFormat : std::uint8_t
{
    Vprz,        ///< "VPRZ" compressed container
    Checkpoint,  ///< bare "VPRCKPT" checkpoint
    Plain,       ///< anything else (CSV/JSON results, text)
};

/** Classify a buffer by its leading magic bytes. */
FileFormat guessFormat(const std::string &data);

/** True when zlib was linked in (codec 1 available). */
bool zlibAvailable();

/** Wrap @p payload in a VPRZ container of @p kind, deflated when zlib
 *  is available (or @p compress is false → store codec). */
std::string vprzPack(const std::string &payload, const std::string &kind,
                     bool compress = true);

/** Unwrap a VPRZ container, inflating as needed. Throws CkptError on
 *  any malformed field or on a kind mismatch (@p expectKind empty =
 *  accept any kind). */
std::string vprzUnpack(const std::string &raw,
                       const std::string &expectKind = std::string());

/** Read a whole file into a string; false when unreadable. */
bool readFileBytes(const std::string &path, std::string &out);

/** Write @p data to @p path atomically (unique temp file in the same
 *  directory + rename), so concurrent grid cells racing to publish the
 *  same checkpoint never expose a partial file. False on I/O failure. */
bool writeFileAtomic(const std::string &path, const std::string &data);

} // namespace vpr

#endif // VPR_COMMON_IO_ZIO_HH
