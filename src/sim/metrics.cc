#include "sim/metrics.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace vpr
{

const std::string &
Metric::name() const
{
    return stats::SymbolTable::global().text(nameSym);
}

const std::string &
Metric::desc() const
{
    return stats::SymbolTable::global().text(descSym);
}

std::string
Metric::text() const
{
    if (kind == Kind::UInt)
        return std::to_string(uval);
    std::ostringstream os;
    os << std::setprecision(17) << rval;
    return os.str();
}

Metric &
MetricsRecord::slot(stats::SymId name, stats::SymId desc)
{
    // Revisits of the same stats tree arrive in insertion order; the
    // cursor turns each lookup into a single compare. Out-of-order
    // writes (derived-metric setters, sampled-run folding) fall back
    // to the index and re-anchor the cursor behind themselves.
    if (cursor >= metrics.size())
        cursor = 0;
    if (cursor < metrics.size() && metrics[cursor].nameSym == name)
        return metrics[cursor++];
    auto it = index.find(name);
    if (it != index.end()) {
        cursor = it->second + 1;
        return metrics[it->second];
    }
    if (metrics.empty()) {
        // A record is almost always one full stats-tree walk; reserving
        // for a paper-config-sized schema avoids the reallocation and
        // rehash churn of growing through ~800 insertions.
        metrics.reserve(1024);
        index.reserve(1024);
    }
    index.emplace(name, metrics.size());
    metrics.push_back(Metric{name, desc, Metric::Kind::UInt, 0, 0.0});
    cursor = metrics.size();
    return metrics.back();
}

void
MetricsRecord::visitUInt(stats::SymId name, stats::SymId desc,
                         std::uint64_t v)
{
    Metric &m = slot(name, desc);
    m.kind = Metric::Kind::UInt;
    m.uval = v;
}

void
MetricsRecord::visitReal(stats::SymId name, stats::SymId desc, double v)
{
    Metric &m = slot(name, desc);
    m.kind = Metric::Kind::Real;
    m.rval = v;
}

void
MetricsRecord::setUInt(const std::string &name, const std::string &desc,
                       std::uint64_t v)
{
    auto &tab = stats::SymbolTable::global();
    visitUInt(tab.intern(name), tab.intern(desc), v);
}

void
MetricsRecord::setReal(const std::string &name, const std::string &desc,
                       double v)
{
    auto &tab = stats::SymbolTable::global();
    visitReal(tab.intern(name), tab.intern(desc), v);
}

const Metric *
MetricsRecord::findMetric(const std::string &name) const
{
    // Read-only lookups must not grow the intern table: a name that
    // was never interned is by construction absent from every record.
    const stats::SymId id = stats::SymbolTable::global().find(name);
    if (id == 0)
        return nullptr;
    auto it = index.find(id);
    return it == index.end() ? nullptr : &metrics[it->second];
}

bool
MetricsRecord::has(const std::string &name) const
{
    return findMetric(name) != nullptr;
}

std::uint64_t
MetricsRecord::counter(const std::string &name) const
{
    const Metric *m = findMetric(name);
    if (!m)
        return 0;
    return m->kind == Metric::Kind::UInt
               ? m->uval
               : static_cast<std::uint64_t>(m->rval);
}

double
MetricsRecord::real(const std::string &name) const
{
    const Metric *m = findMetric(name);
    return m ? m->asReal() : 0.0;
}

bool
MetricsRecord::sameSchema(const MetricsRecord &other) const
{
    if (metrics.size() != other.metrics.size())
        return false;
    for (std::size_t i = 0; i < metrics.size(); ++i)
        if (metrics[i].nameSym != other.metrics[i].nameSym)
            return false;
    return true;
}

void
printMetricHistogram(std::ostream &os, const MetricsRecord &m,
                     const std::string &stem)
{
    const std::uint64_t lo = m.counter(stem + ".range_min");
    const std::uint64_t width = m.counter(stem + ".bucket_size");
    const std::uint64_t under = m.counter(stem + ".underflows");
    const std::uint64_t over = m.counter(stem + ".overflows");
    std::vector<std::uint64_t> counts;
    std::uint64_t total = under + over, peak = 0;
    for (std::size_t i = 0;; ++i) {
        const std::string name =
            stem + ".hist[" + std::to_string(i) + "]";
        if (!m.has(name))
            break;
        counts.push_back(m.counter(name));
        total += counts.back();
        peak = peak > counts.back() ? peak : counts.back();
    }
    if (total == 0 || width == 0) {
        os << "    (no samples)\n";
        return;
    }
    // Percentages are of *all* samples, clipped mass included, so the
    // bars never overstate the in-range share.
    auto percent = [&](std::uint64_t c) {
        return 100.0 * static_cast<double>(c) /
               static_cast<double>(total);
    };
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const std::size_t bar = peak
            ? static_cast<std::size_t>(
                  40.0 * static_cast<double>(counts[i]) /
                      static_cast<double>(peak) + 0.5)
            : 0;
        os << "    [" << std::right << std::setw(3) << lo + i * width
           << ".." << std::setw(3) << (lo + (i + 1) * width - 1) << "] "
           << std::setw(6) << std::fixed << std::setprecision(1)
           << percent(counts[i]) << std::defaultfloat << "% "
           << std::string(bar, '#') << "\n";
    }
    if (under)
        os << "    below range " << std::setw(6) << std::fixed
           << std::setprecision(1) << percent(under)
           << std::defaultfloat << "%\n";
    if (over)
        os << "    above range " << std::setw(6) << std::fixed
           << std::setprecision(1) << percent(over) << std::defaultfloat
           << "%\n";
}

} // namespace vpr
