#include "core/dyn_inst.hh"

#include <sstream>

namespace vpr
{

namespace
{

const char *
phaseName(InstPhase p)
{
    switch (p) {
      case InstPhase::Renamed: return "renamed";
      case InstPhase::Issued: return "issued";
      case InstPhase::Completed: return "completed";
      case InstPhase::Committed: return "committed";
      case InstPhase::Squashed: return "squashed";
      default: return "?";
    }
}

} // namespace

std::string
DynInst::toString() const
{
    std::ostringstream os;
    if (hot)
        os << "[sn:" << seq() << " " << phaseName(phase())
           << (wrongPath ? " WP" : "") << "] " << si.disassemble();
    else
        os << "[unbound] " << si.disassemble();
    return os.str();
}

} // namespace vpr
