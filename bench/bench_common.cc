#include "bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace vpr::bench
{

void
parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0) {
            setenv("VPR_INSTS_SCALE", argv[i] + 8, 1);
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            setenv("VPR_JOBS", argv[i] + 7, 1);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--scale=<factor>] [--jobs=<n>]\n"
                        "  --scale scales the simulated instruction "
                        "budget (default 1.0;\n"
                        "  also settable via VPR_INSTS_SCALE)\n"
                        "  --jobs runs grid cells on <n> worker threads "
                        "(default 1; 0 = one\n"
                        "  per hardware thread; also settable via "
                        "VPR_JOBS). Output is\n"
                        "  byte-identical for every value of --jobs.\n",
                        argv[0]);
            std::exit(0);
        }
    }
}

SimConfig
experimentConfig()
{
    SimConfig config = paperConfig();
    // The paper skips 100 M instructions and measures 50 M per run; we
    // default to 20 k + 120 k, which keeps the full figure suite under a
    // few minutes while preserving every qualitative result. Use
    // --scale=10 (or more) for higher-fidelity runs.
    config.skipInsts = 20000;
    config.measureInsts = 120000;
    // Trace-driven methodology: fetch stalls on a detected
    // misprediction, as in the paper's ATOM-based framework.
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    config.jobs = defaultJobs();
    return config;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += std::log(v);
    return std::exp(s / static_cast<double>(values.size()));
}

std::vector<double>
printSpeedupFigure(const std::string &title, RenameScheme scheme,
                   const std::vector<unsigned> &nrrValues)
{
    SimConfig config = experimentConfig();
    const auto &names = benchmarkNames();

    // One grid for the whole figure: the conventional baselines first,
    // then every (benchmark × NRR) cell. All of it runs on the engine
    // at once; result order is fixed by cell order, so the printed
    // table does not depend on --jobs.
    std::vector<GridCell> cells;
    config.setScheme(RenameScheme::Conventional);
    for (const auto &name : names)
        cells.push_back({name, config});
    for (const auto &name : names) {
        for (unsigned nrr : nrrValues) {
            config.setScheme(scheme);
            config.setNrr(static_cast<std::uint16_t>(nrr));
            cells.push_back({name, config});
        }
    }
    std::vector<SimResults> results = runGrid(cells, config.jobs);

    std::vector<std::string> cols;
    for (unsigned nrr : nrrValues)
        cols.push_back("NRR=" + std::to_string(nrr));
    printTableHeader(std::cout, title, cols);

    std::vector<double> lastColumn;
    std::vector<std::vector<double>> columns(nrrValues.size());
    for (std::size_t bi = 0; bi < names.size(); ++bi) {
        double base = results[bi].ipc();
        std::vector<double> row;
        for (std::size_t c = 0; c < nrrValues.size(); ++c) {
            double ipc =
                results[names.size() + bi * nrrValues.size() + c].ipc();
            row.push_back(ipc / base);
            columns[c].push_back(ipc / base);
        }
        lastColumn.push_back(row.back());
        printTableRow(std::cout, names[bi], row, 3);
    }

    std::vector<double> means;
    for (const auto &col : columns)
        means.push_back(geoMean(col));
    std::cout << std::string(12 + 12 * nrrValues.size(), '-') << "\n";
    printTableRow(std::cout, "geomean", means, 3);
    return lastColumn;
}

} // namespace vpr::bench
