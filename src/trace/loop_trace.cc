#include "trace/loop_trace.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace vpr
{

InstTemplate
InstTemplate::compute(OpClass op, RegId d, RegId s0, RegId s1)
{
    InstTemplate t;
    t.op = op;
    t.dest = d;
    t.src0 = s0;
    t.src1 = s1;
    return t;
}

InstTemplate
InstTemplate::loadFrom(int stream, RegId d, RegId base)
{
    InstTemplate t;
    t.op = OpClass::Load;
    t.dest = d;
    t.src0 = base;
    t.memStream = stream;
    return t;
}

InstTemplate
InstTemplate::storeTo(int stream, RegId data, RegId base)
{
    InstTemplate t;
    t.op = OpClass::Store;
    t.src0 = data;
    t.src1 = base;
    t.memStream = stream;
    return t;
}

void
KernelDesc::validate() const
{
    VPR_ASSERT(!blocks.empty(), "kernel '", name, "' has no blocks");
    for (const auto &b : blocks) {
        for (const auto &t : b.insts) {
            if (isMemOp(t.op)) {
                VPR_ASSERT(t.memStream >= 0 &&
                           static_cast<std::size_t>(t.memStream) <
                               streams.size(),
                           "kernel '", name, "': bad memory stream index");
            }
        }
        if (b.branch.kind != BranchDesc::Kind::None) {
            VPR_ASSERT(static_cast<std::size_t>(b.branch.takenTarget) <
                           blocks.size(),
                       "kernel '", name, "': bad taken target");
            VPR_ASSERT(static_cast<std::size_t>(b.branch.fallThrough) <
                           blocks.size(),
                       "kernel '", name, "': bad fall-through");
            if (b.branch.kind == BranchDesc::Kind::Loop)
                VPR_ASSERT(b.branch.tripCount >= 1, "kernel '", name,
                           "': zero trip count");
        }
    }
    for (const auto &s : streams) {
        VPR_ASSERT(s.region >= s.elemSize, "kernel '", name,
                   "': region smaller than element");
        VPR_ASSERT(s.elemSize > 0, "kernel '", name, "': zero elem size");
    }
}

LoopTraceStream::LoopTraceStream(KernelDesc d) : desc(std::move(d)),
    rng(desc.seed)
{
    desc.validate();
    streamPos.assign(desc.streams.size(), 0);
    loopCount.assign(desc.blocks.size(), 0);

    geom.reserve(desc.streams.size());
    for (const MemStreamDesc &s : desc.streams) {
        StreamGeom g;
        g.elems = s.region / s.elemSize;
        g.regionMask = isPowerOf2(s.region) ? s.region - 1 : 0;
        g.alignMask = isPowerOf2(s.elemSize)
                          ? ~(static_cast<std::uint64_t>(s.elemSize) - 1)
                          : 0;
        geom.push_back(g);
    }

    // Lay blocks out back to back in the simulated text segment so that
    // distinct static branches map to distinct BHT entries.
    blockPc.resize(desc.blocks.size());
    Addr pc = desc.pcBase;
    for (std::size_t i = 0; i < desc.blocks.size(); ++i) {
        blockPc[i] = pc;
        std::size_t n = desc.blocks[i].insts.size();
        if (desc.blocks[i].branch.kind != BranchDesc::Kind::None)
            ++n;
        pc += n * 4;
    }
}

void
LoopTraceStream::reset()
{
    rng.reseed(desc.seed);
    curBlock = 0;
    curInst = 0;
    streamPos.assign(desc.streams.size(), 0);
    loopCount.assign(desc.blocks.size(), 0);
}

std::string
LoopTraceStream::identity() const
{
    return "loop:" + desc.name + ":" + std::to_string(desc.seed);
}

void
LoopTraceStream::visitState(StateVisitor &v)
{
    v.section("looptrace");
    v.rng(rng);
    v.value(curBlock);
    v.value(curInst);
    v.fixedVec(streamPos);
    v.fixedVec(loopCount);
}

Addr
LoopTraceStream::pcOf(std::size_t blk, std::size_t idx) const
{
    return blockPc[blk] + idx * 4;
}

Addr
LoopTraceStream::nextAddr(int streamIdx)
{
    const MemStreamDesc &s = desc.streams[streamIdx];
    const StreamGeom &g = geom[streamIdx];
    std::uint64_t pos = streamPos[streamIdx]++;
    switch (s.kind) {
      case MemStreamDesc::Kind::Stride: {
        std::int64_t off =
            static_cast<std::int64_t>(pos) * s.stride;
        std::uint64_t wrapped = g.regionMask
            ? (static_cast<std::uint64_t>(off) & g.regionMask)
            : static_cast<std::uint64_t>(off) % s.region;
        return s.base + (g.alignMask ? (wrapped & g.alignMask)
                                     : roundDown(wrapped, s.elemSize));
      }
      case MemStreamDesc::Kind::Random:
      case MemStreamDesc::Kind::PointerChase:
        return s.base + rng.below(g.elems) * s.elemSize;
      default:
        VPR_PANIC("bad memory stream kind");
    }
}

// Forced inline: produce() is the per-record step behind both next()
// and nextBatch(); left to its own heuristics GCC outlines it, which
// costs the detailed fetch path (one next() per fetched instruction)
// several ns per record.
VPR_ALWAYS_INLINE bool
LoopTraceStream::produce(TraceRecord &rec)
{
    for (;;) {
        const BlockDesc &blk = desc.blocks[curBlock];

        if (curInst < blk.insts.size()) {
            const InstTemplate &t = blk.insts[curInst];
            rec = TraceRecord{};
            rec.pc = pcOf(curBlock, curInst);
            rec.op = t.op;
            rec.dest = t.dest;
            rec.src[0] = t.src0;
            rec.src[1] = t.src1;
            if (isMemOp(t.op)) {
                rec.effAddr = nextAddr(t.memStream);
                rec.memSize = desc.streams[t.memStream].elemSize;
            }
            ++curInst;
            return true;
        }

        // End of block: emit the branch (if any) and move on.
        std::size_t blkIdx = curBlock;
        curInst = 0;

        if (blk.branch.kind == BranchDesc::Kind::None) {
            curBlock = (curBlock + 1) % desc.blocks.size();
            continue;
        }

        bool taken = false;
        if (blk.branch.kind == BranchDesc::Kind::Loop) {
            ++loopCount[blkIdx];
            if (loopCount[blkIdx] < blk.branch.tripCount) {
                taken = true;
            } else {
                loopCount[blkIdx] = 0;
                taken = false;
            }
        } else {
            taken = rng.chancePermille(blk.branch.takenPermille);
        }

        std::size_t nextBlock = taken
            ? static_cast<std::size_t>(blk.branch.takenTarget)
            : static_cast<std::size_t>(blk.branch.fallThrough);

        rec = StaticInst::branch(
            blk.branch.src, taken, blockPc[nextBlock]);
        rec.pc = pcOf(blkIdx, blk.insts.size());
        curBlock = nextBlock;
        return true;
    }
}

std::optional<TraceRecord>
LoopTraceStream::next()
{
    TraceRecord rec;
    if (!produce(rec))
        return std::nullopt;
    return rec;
}

std::size_t
LoopTraceStream::nextBatch(TraceRecord *out, std::size_t max)
{
    // One virtual call for the whole batch; produce() writes records
    // in place, with no optional<> wrapping on the per-record path.
    std::size_t k = 0;
    while (k < max && produce(out[k]))
        ++k;
    return k;
}

} // namespace vpr
