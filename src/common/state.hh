/**
 * @file
 * Microarchitectural state serialization — the checkpoint mirror of the
 * visitStats / visitParams patterns.
 *
 * Every structure that carries state across a drained (quiescent) point
 * exposes visitState(StateVisitor &): one walk that either appends the
 * live fields to a byte buffer (StateSaver) or assigns them back from
 * one (StateLoader). The walk is direction-agnostic — each field is
 * written exactly once with value()/bytes(), and the visitor decides
 * whether that means read or write — so the save and load paths cannot
 * drift apart.
 *
 * Encoding: little-endian fixed 64-bit words for scalars, raw bytes for
 * byte arrays, an FNV-1a tag per section() so a load that goes out of
 * sync fails loudly instead of scrambling fields. The container adds a
 * magic, a format version, the checkpoint scope, the warm-state digest
 * and a trailing payload checksum; every mismatch throws CkptError,
 * which callers turn into a cold run plus a warning — never a wrong
 * result.
 */

#ifndef VPR_COMMON_STATE_HH
#define VPR_COMMON_STATE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "common/random.hh"

namespace vpr
{

/** Any checkpoint (de)serialization failure: wrong magic, version skew,
 *  digest mismatch, truncation, section drift, out-of-range field.
 *  Callers catch it and fall back to a cold run. */
class CkptError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** What a checkpoint captures. */
enum class CkptScope : std::uint8_t
{
    /** Only the long-lived warm state a functional fast-forward builds
     *  (trace position, BHT, cache, clocks). Everything else is still
     *  at its construction default, so one functional checkpoint is
     *  shared by every grid cell with the same warm prefix regardless
     *  of rename scheme or register-file size. */
    Functional,
    /** Every live structure at a drained point, including the renamer —
     *  the per-cell checkpoint a detailed warm-up produces. */
    Full,
};

/** Short stable scope name ("func"/"full"); used in file names. */
const char *ckptScopeName(CkptScope s);

/** Bumped whenever the serialized layout of any structure changes; a
 *  checkpoint from another version is rejected (version skew). */
constexpr std::uint32_t kStateFormatVersion = 1;

/** FNV-1a 64-bit over a byte range (section tags, payload checksums,
 *  warm-state digests). */
std::uint64_t fnv1a(const void *data, std::size_t n,
                    std::uint64_t seed = 14695981039346656037ull);

inline std::uint64_t
fnv1a(const std::string &s, std::uint64_t seed = 14695981039346656037ull)
{
    return fnv1a(s.data(), s.size(), seed);
}

/**
 * Direction-agnostic walker over serialized fields. Structures
 * implement visitState(StateVisitor &) in terms of the typed helpers;
 * StateSaver/StateLoader below provide the two directions.
 */
class StateVisitor
{
  public:
    virtual ~StateVisitor() = default;

    /** True when fields are being assigned from the buffer. */
    virtual bool loading() const = 0;

    /** Raw primitives — everything funnels through these two. @{ */
    virtual void word(std::uint64_t &v) = 0;
    virtual void bytes(void *p, std::size_t n) = 0;
    /** @} */

    /** Named section marker: a tag word derived from @p name. A load
     *  whose next tag differs throws CkptError — catches truncation
     *  and layout drift at the structure boundary it happens. */
    void section(const char *name);

    /** One integral, enum or bool field (widened to a word). On load an
     *  encoded value that does not fit the field throws CkptError. */
    template <typename T>
    void
    value(T &field)
    {
        static_assert((std::is_integral_v<T> || std::is_enum_v<T>) &&
                          sizeof(T) <= sizeof(std::uint64_t),
                      "value() takes integral/enum fields");
        std::uint64_t w = static_cast<std::uint64_t>(field);
        word(w);
        if (!loading())
            return;
        if constexpr (!std::is_same_v<T, std::uint64_t>) {
            // Round-trip check: a corrupted word must not silently
            // truncate into a narrower field.
            T narrowed = static_cast<T>(w);
            if (static_cast<std::uint64_t>(narrowed) != w)
                throw CkptError("field value out of range");
            field = narrowed;
        } else {
            field = w;
        }
    }

    /** One double field (bit pattern through a word). */
    void
    value(double &field)
    {
        std::uint64_t w;
        std::memcpy(&w, &field, sizeof(w));
        word(w);
        if (loading())
            std::memcpy(&field, &w, sizeof(field));
    }

    /** A Random generator's raw state. */
    void
    rng(Random &r)
    {
        std::uint64_t s = r.rawState();
        word(s);
        if (loading())
            r.setRawState(s);
    }

    /**
     * A vector whose size is fixed by the configuration (map tables,
     * cache lines, BHT counters): only the elements travel; a load into
     * a vector of a different size throws CkptError (the digest should
     * have prevented the restore — this is the backstop).
     */
    template <typename T>
    void
    fixedVec(std::vector<T> &v)
    {
        std::uint64_t n = v.size();
        word(n);
        if (loading() && n != v.size())
            throw CkptError("fixed-size table length mismatch");
        for (auto &e : v)
            value(e);
    }

    /** A variable-size vector (free lists, MSHRs, pending frees): the
     *  size travels and the load resizes. @p maxSize bounds corrupted
     *  inputs. */
    template <typename T>
    void
    dynVec(std::vector<T> &v, std::uint64_t maxSize = 1u << 24)
    {
        std::uint64_t n = v.size();
        word(n);
        if (loading()) {
            if (n > maxSize)
                throw CkptError("sequence length implausibly large");
            v.resize(static_cast<std::size_t>(n));
        }
        for (auto &e : v)
            value(e);
    }

    /** A fixed-size vector<bool> (scoreboards), one word per bit for
     *  simplicity — scoreboards are at most a few hundred entries. */
    void
    boolVec(std::vector<bool> &v)
    {
        std::uint64_t n = v.size();
        word(n);
        if (loading() && n != v.size())
            throw CkptError("fixed-size bitmap length mismatch");
        for (std::size_t i = 0; i < v.size(); ++i) {
            std::uint64_t b = v[i] ? 1 : 0;
            word(b);
            if (loading()) {
                if (b > 1)
                    throw CkptError("bitmap entry not a bit");
                v[i] = b != 0;
            }
        }
    }
};

/** The save direction: appends fields to an in-memory byte buffer. */
class StateSaver : public StateVisitor
{
  public:
    bool loading() const override { return false; }
    void word(std::uint64_t &v) override;
    void bytes(void *p, std::size_t n) override;

    /** The serialized payload so far. */
    const std::string &buffer() const { return buf; }
    std::string take() { return std::move(buf); }

  private:
    std::string buf;
};

/** The load direction: assigns fields from a byte buffer. Underrun and
 *  every mismatch throw CkptError; the structure being loaded must be
 *  rebuilt by the caller on failure (fields may be half-assigned). */
class StateLoader : public StateVisitor
{
  public:
    explicit StateLoader(const std::string &payload)
        : buf(payload), pos(0)
    {}

    bool loading() const override { return true; }
    void word(std::uint64_t &v) override;
    void bytes(void *p, std::size_t n) override;

    /** All payload bytes consumed? Checked after a full walk so a
     *  payload with trailing garbage is rejected too. */
    bool exhausted() const { return pos == buf.size(); }

  private:
    const std::string &buf;
    std::size_t pos;
};

/**
 * Checkpoint container framing (before optional compression):
 *
 *   magic "VPRCKPT\0" (8 bytes)
 *   u64 format version   — kStateFormatVersion; skew rejected
 *   u64 scope            — CkptScope; mismatch rejected
 *   u64 warm-state digest — content address; mismatch = stale file
 *   u64 payload size
 *   payload bytes         — one StateSaver walk
 *   u64 payload FNV-1a    — corruption backstop
 *
 * unpackCheckpoint verifies every field and throws CkptError naming the
 * first failure; packCheckpoint is its exact inverse.
 */
extern const char kCkptMagic[8];

std::string packCheckpoint(CkptScope scope, std::uint64_t digest,
                           const std::string &payload);

/** @return the verified payload. @p expectDigest 0 skips the digest
 *  check (tools that inspect foreign checkpoints). */
std::string unpackCheckpoint(const std::string &raw, CkptScope expectScope,
                             std::uint64_t expectDigest);

} // namespace vpr

#endif // VPR_COMMON_STATE_HH
