/**
 * @file
 * Walk through the paper's section 3.1 example at trace level and show
 * how each renaming scheme times register allocation.
 *
 * The example chain (destinations on the left):
 *
 *     load f2,0(r6)   ; misses in the cache
 *     fdiv f2,f2,f10
 *     fmul f2,f2,f12
 *     fadd f2,f2,f1
 *
 * All four instructions rename f2. Under decode-time (conventional)
 * allocation, four physical registers are held from decode; under
 * virtual-physical renaming each instruction holds only a VP *tag*
 * until it issues or completes. The numbers printed here come straight
 * from the stats tree the regfile exports for every run — the
 * regfile.occupancy.* distribution (busy registers, sampled per cycle)
 * and the rename.vp.lifetime.* distribution (cycles each register
 * stays allocated) — the same metrics every CSV/JSON record carries.
 */

#include <iomanip>
#include <iostream>

#include "sim/simulator.hh"
#include "trace/builder.hh"

using namespace vpr;

namespace
{

void
runScheme(RenameScheme scheme)
{
    TraceBuilder b;
    // One iteration of the paper's chain on a cold line, plus index
    // update; repeated enough times to reach steady state.
    for (unsigned i = 0; i < 600; ++i) {
        b.load(RegId::fpReg(2), RegId::intReg(6),
               0x40000000 + static_cast<Addr>(i) * 64);
        b.fpDiv(RegId::fpReg(2), RegId::fpReg(2), RegId::fpReg(10));
        b.fpMul(RegId::fpReg(2), RegId::fpReg(2), RegId::fpReg(12));
        b.fpAdd(RegId::fpReg(2), RegId::fpReg(2), RegId::fpReg(1));
    }
    VectorTraceStream stream(b.records());

    SimConfig config = paperConfig();
    config.setScheme(scheme);
    config.skipInsts = 400;
    config.measureInsts = 1600;
    config.core.fetch.wrongPath = WrongPathMode::Stall;

    Simulator sim(stream, config);
    SimResults r = sim.run();

    std::cout << std::left << std::setw(14)
              << renameSchemeName(scheme) << std::fixed
              << std::setprecision(2) << "  hold/value(fp)="
              << std::setw(8) << r.regLifetimeMean(RegClass::Float)
              << "  avg busy fp regs=" << std::setw(7)
              << r.avgBusyFpRegs() << "  IPC=" << r.ipc() << "\n";
    std::cout << "  fp regfile occupancy distribution (busy regs per "
                 "cycle):\n";
    printMetricHistogram(std::cout, r.metrics, "regfile.occupancy.fp");
}

} // namespace

int
main()
{
    std::cout << "Register pressure on the paper's section 3.1 chain\n"
              << "(four instructions all writing f2; every load "
                 "misses)\n\n";
    runScheme(RenameScheme::Conventional);
    runScheme(RenameScheme::VPAllocAtIssue);
    runScheme(RenameScheme::VPAllocAtWriteback);

    std::cout << "\nReading: the conventional scheme allocates a "
                 "physical register at decode and\nholds it through the "
                 "entire miss + divide + multiply chain; issue "
                 "allocation\nwaits until operands are ready; write-back "
                 "allocation holds a register only\nfrom result "
                 "production to the consumer's commit — the paper's "
                 "-75% example.\n";
    return 0;
}
