/** @file Golden-file and round-trip tests for the result exporters. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/io/zio.hh"
#include "sim/results_io.hh"

namespace vpr
{
namespace
{

/** A fully pinned-down cell so the golden strings cannot drift with
 *  default-config changes. */
GridCell
goldenCell()
{
    SimConfig config;
    config.setScheme(RenameScheme::VPAllocAtWriteback);
    config.core.rename.numPhysRegs = 64;
    config.core.rename.numVPRegs = 160;
    config.core.rename.nrrInt = 32;
    config.core.rename.nrrFp = 32;
    config.core.robSize = 128;
    config.core.iqSize = 128;
    config.core.lsqSize = 128;
    config.core.cache.missPenalty = 50;
    config.core.cache.numMshrs = 8;
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    config.core.fetch.wrongPathMem = false;
    config.skipInsts = 1000;
    config.measureInsts = 2000;
    config.seed = 7;
    return GridCell("swim", config);
}

SimResults
goldenResult()
{
    SimResults r;
    r.metrics.setUInt("core.cycles", "cycles", 1600);
    r.metrics.setUInt("core.committed", "committed", 2000);
    r.metrics.setReal("core.ipc", "ipc", 1.25);
    return r;
}

/** The provenance columns of goldenCell(), in registry order (one
 *  cfg.<dotted name> column per parameter; jobs excluded). */
constexpr const char *kGoldenConfigColumns =
    "cfg.skip_insts,cfg.measure_insts,cfg.seed,cfg.sim.sampling.enable,"
    "cfg.sim.sampling.period_insts,cfg.sim.sampling.warmup_insts,"
    "cfg.sim.sampling.detailed_insts,cfg.sim.sampling.functional_warming,"
    "cfg.core.rename_width,"
    "cfg.core.issue_width,cfg.core.commit_width,cfg.core.rob_size,"
    "cfg.core.iq_size,cfg.core.lsq_size,cfg.core.reg_read_ports,"
    "cfg.core.reg_write_ports,cfg.core.cache_ports,cfg.core.scheme,"
    "cfg.core.iq.scan_wakeup,cfg.core.iq.scan_issue,"
    "cfg.core.lsq.scan_disambig,cfg.core.cq.calendar,"
    "cfg.core.invariant_checks,"
    "cfg.core.deadlock_threshold,cfg.core.rename.phys_regs,"
    "cfg.core.rename.vp_regs,cfg.core.rename.nrr_int,"
    "cfg.core.rename.nrr_fp,cfg.core.fetch.fetch_width,"
    "cfg.core.fetch.buffer_capacity,cfg.core.fetch.bht_entries,"
    "cfg.core.fetch.redirect_delay,cfg.core.fetch.wrong_path,"
    "cfg.core.fetch.wrong_path_seed,cfg.core.fetch.wrong_path_mem,"
    "cfg.core.fu.simple_int,cfg.core.fu.complex_int,"
    "cfg.core.fu.eff_addr,cfg.core.fu.simple_fp,cfg.core.fu.fp_mul,"
    "cfg.core.fu.fp_div_sqrt,cfg.core.cache.size_bytes,"
    "cfg.core.cache.line_size,cfg.core.cache.assoc,"
    "cfg.core.cache.hit_latency,cfg.core.cache.miss_penalty,"
    "cfg.core.cache.num_mshrs,cfg.core.cache.bus_occupancy";

constexpr const char *kGoldenConfigValues =
    "1000,2000,7,0,20000,150,250,1,8,8,8,128,128,128,16,8,3,"
    "vp-writeback,0,0,0,1,0,200000,"
    "64,160,32,32,8,16,2048,1,stall,7860237,0,3,2,3,3,2,2,16384,32,1,"
    "2,50,8,4";

std::string
goldenCsv()
{
    std::string row = std::string("swim,") + kGoldenConfigValues +
                      ",1600,2000,1.25\n";
    return "# vpr-results v1 figure=golden cells=2 shard=0/1 scale=1 "
           "cfg=75c64f96ca717efd\n"
           "cell,benchmark," + std::string(kGoldenConfigColumns) +
           ",core.cycles,core.committed,core.ipc\n"
           "0," + row + "1," + row;
}

TEST(ResultsCsv, GoldenHeaderAndRowOrderAreStable)
{
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    std::vector<SimResults> results = {goldenResult(), goldenResult()};
    std::ostringstream os;
    writeResultsCsv(os, "golden", ShardSpec{}, {0, 1}, cells, results);
    EXPECT_EQ(os.str(), goldenCsv());
}

TEST(ResultsCsv, ProvenanceColumnsIncludeSeedButNotJobs)
{
    const std::vector<std::string> &fixed = resultFixedColumns();
    EXPECT_EQ(fixed[0], "cell");
    EXPECT_EQ(fixed[1], "benchmark");
    EXPECT_NE(std::find(fixed.begin(), fixed.end(), "cfg.seed"),
              fixed.end());
    EXPECT_EQ(std::find(fixed.begin(), fixed.end(), "cfg.jobs"),
              fixed.end());
}

TEST(ResultsCsv, RecordsAreIdenticalAcrossJobsValues)
{
    // jobs is an execution-only knob: two cells differing only in it
    // must export byte-identical rows (and one shared grid digest).
    GridCell serial = goldenCell(), parallel = goldenCell();
    parallel.config.jobs = 8;
    std::ostringstream a, b;
    writeResultsCsv(a, "golden", ShardSpec{}, {0}, {serial},
                    {goldenResult()});
    writeResultsCsv(b, "golden", ShardSpec{}, {0}, {parallel},
                    {goldenResult()});
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(gridConfigDigest({serial}), gridConfigDigest({parallel}));
}

TEST(ResultsJson, GoldenKeyOrderIsStable)
{
    std::vector<GridCell> cells = {goldenCell()};
    std::vector<SimResults> results = {goldenResult()};
    std::ostringstream os;
    writeResultsJson(os, "golden", ShardSpec{}, {0}, cells, results);
    const std::string json = os.str();
    // Metadata, then per-record config (dotted keys, no cfg. prefix)
    // and metrics.
    EXPECT_NE(json.find("\"format\": \"vpr-results\""),
              std::string::npos);
    EXPECT_NE(json.find("\"config_digest\": \"5c4a629e84e3509b\""),
              std::string::npos);
    EXPECT_NE(json.find("\"sim.sampling.enable\": \"0\""),
              std::string::npos);
    EXPECT_NE(json.find("\"benchmark\": \"swim\""), std::string::npos);
    EXPECT_NE(json.find("\"core.scheme\": \"vp-writeback\""),
              std::string::npos);
    EXPECT_NE(json.find("\"core.cache.miss_penalty\": \"50\""),
              std::string::npos);
    EXPECT_NE(json.find("\"seed\": \"7\""), std::string::npos);
    EXPECT_EQ(json.find("\"jobs\""), std::string::npos);
    EXPECT_NE(json.find("\"metrics\": {\"core.cycles\": 1600, "
                        "\"core.committed\": 2000, \"core.ipc\": 1.25}"),
              std::string::npos);
}

TEST(ResultsCsv, ReadInvertsWrite)
{
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    std::vector<SimResults> results = {goldenResult(), goldenResult()};
    std::ostringstream os;
    writeResultsCsv(os, "golden", ShardSpec{}, {0, 1}, cells, results);

    std::istringstream is(os.str());
    ResultsFile file = readResultsCsv(is, "test");
    EXPECT_EQ(file.figure, "golden");
    EXPECT_EQ(file.totalCells, 2u);
    EXPECT_EQ(file.configDigest, gridConfigDigest(cells));
    ASSERT_EQ(file.rows.size(), 2u);
    EXPECT_EQ(file.rows[1].cell, 1u);

    std::vector<SimResults> back = resultsFromFile(file);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].metrics.counter("core.cycles"), 1600u);
    EXPECT_DOUBLE_EQ(back[0].ipc(), 1.25);
    EXPECT_TRUE(back[0].metrics.sameSchema(results[0].metrics));
}

TEST(ResultsCsv, MergeOfSingleCompleteFileIsIdentity)
{
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    std::vector<SimResults> results = {goldenResult(), goldenResult()};
    std::ostringstream os;
    writeResultsCsv(os, "golden", ShardSpec{}, {0, 1}, cells, results);

    std::istringstream is(os.str());
    ResultsFile merged = mergeResults({readResultsCsv(is, "test")});
    std::ostringstream out;
    writeMergedCsv(out, merged);
    EXPECT_EQ(out.str(), os.str());
}

TEST(ResultsCsv, MergeReordersShardsByCell)
{
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    std::vector<SimResults> results = {goldenResult()};

    // Shard 1/2 holds cell 1, shard 0/2 holds cell 0; merge in reverse.
    std::ostringstream s1, s0;
    writeResultsCsv(s1, "golden", ShardSpec{1, 2}, {1}, cells, results);
    writeResultsCsv(s0, "golden", ShardSpec{0, 2}, {0}, cells, results);
    std::istringstream i1(s1.str()), i0(s0.str());
    ResultsFile merged = mergeResults(
        {readResultsCsv(i1, "s1"), readResultsCsv(i0, "s0")});
    ASSERT_EQ(merged.rows.size(), 2u);
    EXPECT_EQ(merged.rows[0].cell, 0u);
    EXPECT_EQ(merged.rows[1].cell, 1u);
}

/** One half-grid shard as CSV text (cell 0 of 2). */
std::string
halfShardCsv()
{
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    std::vector<SimResults> results = {goldenResult()};
    std::ostringstream os;
    writeResultsCsv(os, "golden", ShardSpec{0, 2}, {0}, cells, results);
    return os.str();
}

void
mergeSameShardTwice(const std::string &csv)
{
    std::istringstream a(csv), b(csv);
    std::vector<ResultsFile> files;
    files.push_back(readResultsCsv(a, "a"));
    files.push_back(readResultsCsv(b, "b"));
    mergeResults(files);
}

void
mergeSingleShard(const std::string &csv)
{
    std::istringstream a(csv);
    mergeResults({readResultsCsv(a, "a")});
}

void
readMalformed()
{
    std::istringstream is("not,a,results,file\n");
    readResultsCsv(is, "bad");
}

TEST(ResultsCsv, EmptyShardDoesNotVetoTheMerge)
{
    // A shard dealt no cells (shard count > grid size) exports only the
    // fixed header; merging it with the shards that did run must work.
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    std::vector<SimResults> results = {goldenResult(), goldenResult()};
    std::ostringstream full, empty;
    writeResultsCsv(full, "golden", ShardSpec{0, 3}, {0, 1}, cells,
                    results);
    writeResultsCsv(empty, "golden", ShardSpec{2, 3}, {}, cells, {});

    std::istringstream e(empty.str()), f(full.str());
    std::vector<ResultsFile> files;
    files.push_back(readResultsCsv(e, "empty"));  // empty shard first
    files.push_back(readResultsCsv(f, "full"));
    ResultsFile merged = mergeResults(files);
    ASSERT_EQ(merged.rows.size(), 2u);
    EXPECT_EQ(merged.header.size(),
              resultFixedColumns().size() + 3);  // metric columns kept
}

TEST(ResultsCsvDeath, ScaleMismatchIsFatal)
{
    std::string a = halfShardCsv();
    // Forge the sibling shard with a different recorded scale.
    std::string b = halfShardCsv();
    std::size_t pos = b.find("scale=");
    ASSERT_NE(pos, std::string::npos);
    b.replace(pos, std::string("scale=1").size(), "scale=2");
    std::size_t cellCol = b.rfind("\n0,");
    ASSERT_NE(cellCol, std::string::npos);
    b.replace(cellCol, 3, "\n1,");  // cover cell 1 so only scale differs
    auto mergeMismatched = [&a, &b] {
        std::istringstream ia(a);
        std::istringstream ib(b);
        std::vector<ResultsFile> files;
        files.push_back(readResultsCsv(ia, "a"));
        files.push_back(readResultsCsv(ib, "b"));
        mergeResults(files);
    };
    EXPECT_EXIT(mergeMismatched(), ::testing::ExitedWithCode(1),
                "instruction-scale mismatch");
}

TEST(ResultsCsvDeath, ConfigDigestMismatchIsFatal)
{
    // A sibling shard produced from a different base configuration
    // carries a different whole-grid provenance digest: the merge must
    // refuse it instead of zipping records of unrelated machines.
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    cells[1].config.core.cache.missPenalty = 100;
    std::ostringstream os;
    writeResultsCsv(os, "golden", ShardSpec{1, 2}, {1}, cells,
                    {goldenResult()});
    std::string a = halfShardCsv();
    std::string b = os.str();
    auto mergeMismatched = [&a, &b] {
        std::istringstream ia(a), ib(b);
        std::vector<ResultsFile> files;
        files.push_back(readResultsCsv(ia, "a"));
        files.push_back(readResultsCsv(ib, "b"));
        mergeResults(files);
    };
    EXPECT_EXIT(mergeMismatched(), ::testing::ExitedWithCode(1),
                "config provenance disagrees");
}

TEST(ResultsCsvDeath, SamplingConfigMismatchCannotMerge)
{
    // A sibling shard run with sampling switched on measured a
    // statistical estimate, not the same experiment: its grid digest
    // differs, so the merge must refuse to zip the two.
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    cells[0].config.sampling.enable = true;
    cells[1].config.sampling.enable = true;
    std::ostringstream os;
    writeResultsCsv(os, "golden", ShardSpec{1, 2}, {1}, cells,
                    {goldenResult()});
    std::string a = halfShardCsv();
    std::string b = os.str();
    auto mergeMismatched = [&a, &b] {
        std::istringstream ia(a), ib(b);
        std::vector<ResultsFile> files;
        files.push_back(readResultsCsv(ia, "a"));
        files.push_back(readResultsCsv(ib, "b"));
        mergeResults(files);
    };
    EXPECT_EXIT(mergeMismatched(), ::testing::ExitedWithCode(1),
                "config provenance disagrees");
}

TEST(ResultsCsvDeath, SamplingParamMismatchNamesTheKey)
{
    // Row-level provenance verification pins the exact disagreeing
    // parameter: a record whose sim.sampling.enable column contradicts
    // the expected grid dies naming that dotted key.
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    std::ostringstream os;
    writeResultsCsv(os, "golden", ShardSpec{0, 2}, {0}, cells,
                    {goldenResult()});
    std::string csv = os.str();
    // Forge the sampling.enable value in the data row: the columns run
    // ...,cfg.seed,cfg.sim.sampling.enable,... so the row reads
    // "...,2000,7,0,20000,...". Flip the 0 between seed and period.
    std::size_t pos = csv.find(",2000,7,0,20000,");
    ASSERT_NE(pos, std::string::npos);
    csv.replace(pos, std::string(",2000,7,0,20000,").size(),
                ",2000,7,1,20000,");
    auto verifyForged = [&csv, &cells] {
        std::istringstream is(csv);
        ResultsFile file = readResultsCsv(is, "forged");
        verifyCellProvenance(file, cells, "forged");
    };
    EXPECT_EXIT(verifyForged(), ::testing::ExitedWithCode(1),
                "config provenance mismatch at cfg.sim.sampling.enable");
}

TEST(ResultsCsvDeath, DuplicateCellIsFatal)
{
    EXPECT_EXIT(mergeSameShardTwice(halfShardCsv()),
                ::testing::ExitedWithCode(1), "more than one shard");
}

TEST(ResultsCsvDeath, IncompleteMergeIsFatal)
{
    EXPECT_EXIT(mergeSingleShard(halfShardCsv()),
                ::testing::ExitedWithCode(1), "incomplete merge");
}

TEST(ResultsCsvDeath, MalformedFileIsFatal)
{
    EXPECT_EXIT(readMalformed(), ::testing::ExitedWithCode(1),
                "vpr-results");
}

// --- reader error paths ---------------------------------------------------

void
readCsvText(const std::string &text)
{
    std::istringstream is(text);
    readResultsCsv(is, "bad");
}

TEST(ResultsCsvDeath, EmptyFileIsFatal)
{
    EXPECT_EXIT(readCsvText(""), ::testing::ExitedWithCode(1),
                "empty result file");
}

TEST(ResultsCsvDeath, UnsupportedVersionIsFatal)
{
    EXPECT_EXIT(
        readCsvText("# vpr-results v9 figure=f cells=1 shard=0/1\n"),
        ::testing::ExitedWithCode(1), "unsupported version");
}

TEST(ResultsCsvDeath, TruncatedAfterMetadataIsFatal)
{
    EXPECT_EXIT(
        readCsvText("# vpr-results v1 figure=f cells=1 shard=0/1\n"),
        ::testing::ExitedWithCode(1), "missing header row");
}

TEST(ResultsCsvDeath, UnknownHeaderIsFatal)
{
    // A header whose fixed columns do not match the writer's layout
    // (e.g. a hand-edited or foreign file).
    EXPECT_EXIT(
        readCsvText("# vpr-results v1 figure=f cells=1 shard=0/1\n"
                    "cell,bogus_column,core.ipc\n"),
        ::testing::ExitedWithCode(1), "unexpected header row");
}

TEST(ResultsCsvDeath, TruncatedRowIsFatal)
{
    // Chop the final field off the last data row: the column count no
    // longer matches the header.
    std::string csv = halfShardCsv();
    std::size_t lastComma = csv.rfind(',');
    ASSERT_NE(lastComma, std::string::npos);
    csv = csv.substr(0, lastComma) + "\n";
    EXPECT_EXIT(readCsvText(csv), ::testing::ExitedWithCode(1),
                "columns");
}

TEST(ResultsCsvDeath, CellIndexOutOfRangeIsFatal)
{
    // Forge a row claiming cell 7 of a 2-cell grid.
    std::string csv = halfShardCsv();
    std::size_t rowStart = csv.rfind("\n0,");
    ASSERT_NE(rowStart, std::string::npos);
    csv.replace(rowStart, 3, "\n7,");
    EXPECT_EXIT(readCsvText(csv), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(ResultsCsvDeath, MixedMetricSchemasCannotMerge)
{
    // Two shards whose records carry different metric names (e.g. one
    // produced by an older binary) must be rejected, not zipped.
    std::string a = halfShardCsv();
    std::string b = halfShardCsv();
    std::size_t pos = b.find("core.ipc");
    ASSERT_NE(pos, std::string::npos);
    b.replace(pos, std::string("core.ipc").size(), "core.wat");
    std::size_t cellCol = b.rfind("\n0,");
    ASSERT_NE(cellCol, std::string::npos);
    b.replace(cellCol, 3, "\n1,");  // cover cell 1 so only names differ
    auto mergeMixed = [&a, &b] {
        std::istringstream ia(a), ib(b);
        std::vector<ResultsFile> files;
        files.push_back(readResultsCsv(ia, "a"));
        files.push_back(readResultsCsv(ib, "b"));
        mergeResults(files);
    };
    EXPECT_EXIT(mergeMixed(), ::testing::ExitedWithCode(1),
                "header mismatch");
}

// --- distribution metrics round-trip --------------------------------------

/** A result whose record carries a full distribution (as produced by
 *  visiting a component's StatGroup). */
SimResults
distributionResult()
{
    stats::Distribution occ = stats::Distribution::evenBuckets(
        "occupancy", "busy registers per cycle", 0, 64, 16);
    for (std::uint64_t v : {3u, 7u, 7u, 12u, 40u, 64u})
        occ.sample(v);
    stats::StatGroup g("regfile");
    g.add(&occ);

    SimResults r;
    g.visit(r.metrics);
    return r;
}

TEST(ResultsCsv, DistributionMetricsRoundTripBitExact)
{
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    std::vector<SimResults> results = {distributionResult(),
                                       distributionResult()};
    std::ostringstream os;
    writeResultsCsv(os, "dist", ShardSpec{}, {0, 1}, cells, results);

    std::istringstream is(os.str());
    ResultsFile file = readResultsCsv(is, "dist");
    std::vector<SimResults> back = resultsFromFile(file);
    ASSERT_EQ(back.size(), 2u);

    // Every metric — moments and histogram buckets — reproduces its
    // exact text form, so re-exporting is byte-identical.
    const auto &orig = results[0].metrics.all();
    const auto &rt = back[0].metrics.all();
    ASSERT_EQ(orig.size(), rt.size());
    for (std::size_t i = 0; i < orig.size(); ++i) {
        EXPECT_EQ(orig[i].name(), rt[i].name());
        EXPECT_EQ(orig[i].text(), rt[i].text()) << orig[i].name();
    }
    EXPECT_EQ(back[0].metrics.counter("regfile.occupancy.hist[1]"), 2u);
    EXPECT_EQ(back[0].metrics.counter("regfile.occupancy.samples"), 6u);
    EXPECT_DOUBLE_EQ(back[0].metrics.real("regfile.occupancy.mean"),
                     results[0].metrics.real("regfile.occupancy.mean"));
}

TEST(ResultsJson, DistributionMetricsAppearAsKeys)
{
    std::vector<GridCell> cells = {goldenCell()};
    std::vector<SimResults> results = {distributionResult()};
    std::ostringstream os;
    writeResultsJson(os, "dist", ShardSpec{}, {0}, cells, results);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"regfile.occupancy.mean\""), std::string::npos);
    EXPECT_NE(json.find("\"regfile.occupancy.stddev\""),
              std::string::npos);
    EXPECT_NE(json.find("\"regfile.occupancy.hist[15]\""),
              std::string::npos);
}

TEST(ResultsVprz, CompressedArchiveRoundTripsByteIdentically)
{
    // A .vprz results archive is the same CSV inside a compressed
    // container: reading it back must reproduce figure, header and
    // every raw row value, and merging must treat compressed and plain
    // shards interchangeably.
    std::vector<GridCell> cells = {goldenCell(), goldenCell()};
    std::vector<SimResults> results = {goldenResult(), goldenResult()};
    const std::string dir = ::testing::TempDir();
    const std::string plainPath = dir + "/vpr_results_roundtrip.csv";
    const std::string vprzPath = dir + "/vpr_results_roundtrip.vprz";
    writeResultsFile(plainPath, "golden", ShardSpec{}, {0, 1}, cells,
                     results);
    writeResultsFile(vprzPath, "golden", ShardSpec{}, {0, 1}, cells,
                     results);

    ResultsFile plain = readResultsCsvFile(plainPath);
    ResultsFile packed = readResultsCsvFile(vprzPath);
    EXPECT_EQ(packed.figure, plain.figure);
    EXPECT_EQ(packed.totalCells, plain.totalCells);
    EXPECT_EQ(packed.scale, plain.scale);
    EXPECT_EQ(packed.configDigest, plain.configDigest);
    EXPECT_EQ(packed.header, plain.header);
    ASSERT_EQ(packed.rows.size(), plain.rows.size());
    for (std::size_t i = 0; i < plain.rows.size(); ++i)
        EXPECT_EQ(packed.rows[i].values, plain.rows[i].values);

    // A merge over the compressed file equals one over the plain file.
    std::ostringstream fromPlain, fromPacked;
    writeMergedCsv(fromPlain, mergeResults({plain}));
    writeMergedCsv(fromPacked, mergeResults({packed}));
    EXPECT_EQ(fromPacked.str(), fromPlain.str());

    std::remove(plainPath.c_str());
    std::remove(vprzPath.c_str());
}

TEST(ResultsVprzDeath, CorruptedArchiveIsFatal)
{
    // Damage inside the container must be caught by the checksum and
    // reported as a read error, never parsed as CSV.
    std::vector<GridCell> cells = {goldenCell()};
    std::vector<SimResults> results = {goldenResult()};
    const std::string path =
        ::testing::TempDir() + "/vpr_results_corrupt.vprz";
    writeResultsFile(path, "golden", ShardSpec{}, {0}, cells, results);
    std::string raw;
    ASSERT_TRUE(readFileBytes(path, raw));
    raw[raw.size() / 2] ^= 0x01;
    ASSERT_TRUE(writeFileAtomic(path, raw));
    EXPECT_EXIT(readResultsCsvFile(path),
                ::testing::ExitedWithCode(1), "");
    std::remove(path.c_str());
}

} // namespace
} // namespace vpr
