#include "rename/factory.hh"

#include <map>

#include "common/logging.hh"
#include "rename/conventional.hh"
#include "rename/early_release.hh"
#include "rename/virtual_physical.hh"

namespace vpr
{

namespace
{

struct SchemeEntry
{
    const char *name;
    RenamerFactory factory;
};

using Registry = std::map<RenameScheme, SchemeEntry>;

Registry
builtinSchemes()
{
    Registry r;
    auto reg = [&r](RenameScheme s, const char *name, RenamerFactory f) {
        r.emplace(s, SchemeEntry{name, std::move(f)});
    };
    // One line per scheme — new schemes plug in here.
    reg(RenameScheme::Conventional, "conventional",
        [](const RenameConfig &c) {
            return std::make_unique<ConventionalRename>(c);
        });
    reg(RenameScheme::VPAllocAtWriteback, "vp-writeback",
        [](const RenameConfig &c) {
            return std::make_unique<VirtualPhysicalRename>(c, false);
        });
    reg(RenameScheme::VPAllocAtIssue, "vp-issue",
        [](const RenameConfig &c) {
            return std::make_unique<VirtualPhysicalRename>(c, true);
        });
    reg(RenameScheme::ConventionalEarlyRelease, "conv-early-release",
        [](const RenameConfig &c) {
            return std::make_unique<EarlyReleaseRename>(c);
        });
    return r;
}

Registry &
registry()
{
    // Magic static: built once, thread-safe to *read* afterwards (the
    // parallel experiment engine constructs renamers from many threads).
    static Registry r = builtinSchemes();
    return r;
}

} // namespace

void
registerRenameScheme(RenameScheme scheme, const char *name,
                     RenamerFactory factory)
{
    registry()[scheme] = SchemeEntry{name, std::move(factory)};
}

std::unique_ptr<RenameManager>
makeRenamer(RenameScheme scheme, const RenameConfig &config)
{
    const Registry &r = registry();
    auto it = r.find(scheme);
    if (it == r.end())
        VPR_PANIC("unregistered rename scheme ",
                  static_cast<int>(scheme));
    return it->second.factory(config);
}

std::vector<RenameScheme>
registeredRenameSchemes()
{
    std::vector<RenameScheme> out;
    for (const auto &[scheme, entry] : registry())
        out.push_back(scheme);
    return out;
}

const char *
renameSchemeName(RenameScheme s)
{
    const Registry &r = registry();
    auto it = r.find(s);
    if (it == r.end())
        VPR_PANIC("bad rename scheme ", static_cast<int>(s));
    return it->second.name;
}

} // namespace vpr
