/**
 * @file
 * Complete (write-back) stage: drains due completion events from the
 * CompletionQueue. Write-back register allocation happens here — the VP
 * write-back policy may refuse and squash the instruction back to the
 * IQ; values broadcast to the IQ; mispredicted branches trigger the
 * recovery walk (via the SquashCoordinator) and the fetch redirect
 * (via the FetchRedirectPort).
 */

#ifndef VPR_CORE_STAGES_COMPLETE_STAGE_HH
#define VPR_CORE_STAGES_COMPLETE_STAGE_HH

#include <vector>

#include "common/stats.hh"
#include "core/stages/latches.hh"
#include "core/stages/pipeline_state.hh"
#include "core/stages/stage.hh"

namespace vpr
{

/** The completion/write-back stage. */
class CompleteStage : public Stage
{
  public:
    CompleteStage(PipelineState &state, CompletionQueue &completionQueue,
                  FetchRedirectPort &redirectPort,
                  SquashCoordinator &squashCoordinator);

    const char *name() const override { return "complete"; }

    void tick() override;

    void
    squash(InstSeqNum youngestKept) override
    {
        completions.squashYoungerThan(youngestKept);
    }

  private:
    PipelineState &s;
    CompletionQueue &completions;
    FetchRedirectPort &redirect;
    SquashCoordinator &squasher;

    stats::StatGroup group{"complete"};
    stats::Scalar wbRejections{"wb_rejections",
                               "write-back allocation denials (VP)"};
    /** Issue-to-completion latency per op class (the final, successful
     *  execution of write-back-squashed instructions). */
    std::vector<stats::Distribution> issueToComplete;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_COMPLETE_STAGE_HH
