/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace vpr::stats
{
namespace
{

TEST(Scalar, CountsAndResets)
{
    Scalar s("s", "a counter");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 6u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Scalar, SetOverwrites)
{
    Scalar s("s", "gauge");
    s.set(42);
    EXPECT_EQ(s.value(), 42u);
}

TEST(Average, MeanOfSamples)
{
    Average a("a", "mean");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 6.0);
}

TEST(Distribution, BucketsSamples)
{
    Distribution d("d", "dist", 0, 99, 10);
    EXPECT_EQ(d.numBuckets(), 10u);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(95);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.bucketCount(9), 1u);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), (5 + 15 + 15 + 95) / 4.0);
}

TEST(Distribution, UnderOverflow)
{
    Distribution d("d", "dist", 10, 19, 5);
    d.sample(9);
    d.sample(25);
    d.sample(12);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_EQ(d.minSample(), 9u);
    EXPECT_EQ(d.maxSample(), 25u);
}

TEST(Distribution, ResetClearsEverything)
{
    Distribution d("d", "dist", 0, 9, 1);
    d.sample(3);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.bucketCount(3), 0u);
}

TEST(StatGroup, PrintsAllMembers)
{
    StatGroup g("grp");
    Scalar s("grp.count", "counts things");
    Average a("grp.avg", "averages things");
    g.add(&s);
    g.add(&a);
    ++s;
    a.sample(4.0);

    std::ostringstream os;
    g.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("grp.count"), std::string::npos);
    EXPECT_NE(out.find("grp.avg"), std::string::npos);
    EXPECT_NE(out.find("counts things"), std::string::npos);
}

TEST(StatGroup, ResetAllResetsMembers)
{
    StatGroup g("grp");
    Scalar s("s", "d");
    g.add(&s);
    s += 10;
    g.resetAll();
    EXPECT_EQ(s.value(), 0u);
}

TEST(DistributionDeath, BadRangePanics)
{
    EXPECT_DEATH(Distribution("d", "x", 10, 5, 1), "range inverted");
    EXPECT_DEATH(Distribution("d", "x", 0, 5, 0), "bucket size");
}

} // namespace
} // namespace vpr::stats
