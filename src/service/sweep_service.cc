#include "service/sweep_service.hh"

#include <chrono>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <utility>

#include "sim/experiment.hh"
#include "sim/params.hh"
#include "sim/result_cache.hh"
#include "sim/results_io.hh"
#include "sim/sweep.hh"
#include "trace/kernels/kernels.hh"

namespace vpr::service
{

namespace
{

/**
 * Minimal parser for the /sweep request body: one flat JSON object
 * whose values are strings or arrays of strings. That is the whole
 * grammar the endpoint accepts, so nested objects, numbers, booleans
 * and null are rejected up front with a precise message — a daemon must
 * answer 400, not guess.
 */
class FlatJsonParser
{
  public:
    explicit FlatJsonParser(const std::string &text) : text(text) {}

    /** Parsed fields in document order (a repeated key appends). */
    using Fields =
        std::vector<std::pair<std::string, std::vector<std::string>>>;

    bool
    parse(Fields &fields, std::string &error)
    {
        skipSpace();
        if (!consume('{'))
            return fail(error, "expected '{'");
        skipSpace();
        if (consume('}'))
            return atEnd(error);
        for (;;) {
            std::string key;
            if (!parseString(key, error))
                return false;
            skipSpace();
            if (!consume(':'))
                return fail(error, "expected ':' after \"" + key + "\"");
            std::vector<std::string> values;
            if (!parseValue(key, values, error))
                return false;
            fields.emplace_back(std::move(key), std::move(values));
            skipSpace();
            if (consume(',')) {
                skipSpace();
                continue;
            }
            if (consume('}'))
                return atEnd(error);
            return fail(error, "expected ',' or '}'");
        }
    }

  private:
    bool
    fail(std::string &error, const std::string &what) const
    {
        error = what + " at offset " + std::to_string(pos);
        return false;
    }

    bool
    atEnd(std::string &error)
    {
        skipSpace();
        if (pos != text.size())
            return fail(error, "trailing content after object");
        return true;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &out, std::string &error)
    {
        skipSpace();
        if (!consume('"'))
            return fail(error, "expected '\"'");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                break;
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              default:
                return fail(error, std::string("unsupported escape '\\") +
                                       esc + "'");
            }
        }
        return fail(error, "unterminated string");
    }

    /** A value: one string, or an array of strings. */
    bool
    parseValue(const std::string &key, std::vector<std::string> &values,
               std::string &error)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == '[') {
            ++pos;
            skipSpace();
            if (consume(']'))
                return true;
            for (;;) {
                std::string item;
                if (!parseString(item, error))
                    return false;
                values.push_back(std::move(item));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail(error, "expected ',' or ']' in \"" + key +
                                       "\"");
            }
        }
        std::string item;
        if (!parseString(item, error))
            return fail(error, "field \"" + key +
                                   "\" must be a string or an array of "
                                   "strings");
        values.push_back(std::move(item));
        return true;
    }

    const std::string &text;
    std::size_t pos = 0;
};

HttpResponse
errorResponse(int status, const std::string &message)
{
    HttpResponse response;
    response.status = status;
    response.body = message + "\n";
    return response;
}

/** Non-fatal twin of applyAssignment: apply "key=value" to @p config
 *  through the registry; false + @p error instead of exiting. */
bool
applyAssignmentChecked(SimConfig &config, const std::string &assignment,
                       std::string &error)
{
    const std::size_t eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0) {
        error = "malformed assignment '" + assignment +
                "' (want key=value)";
        return false;
    }
    const std::string key = assignment.substr(0, eq);
    const std::string value = assignment.substr(eq + 1);
    ConfigRegistry registry(config);
    const ParamDef *def = registry.find(key);
    if (!def) {
        error = "unknown parameter '" + key + "'";
        return false;
    }
    if (!def->set(value)) {
        error = "bad value '" + value + "' for " + key + " (" +
                def->type + ")";
        return false;
    }
    return true;
}

/** Non-fatal twin of parseSweepAxis + the grid builder's validation:
 *  parse "key=v1,v2,..." and check every value parses for the key. */
bool
parseSweepAxisChecked(const SimConfig &base, const std::string &spec,
                      SweepAxis &axis, std::string &error)
{
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        error = "malformed sweep axis '" + spec +
                "' (want key=v1,v2,...)";
        return false;
    }
    axis.key = spec.substr(0, eq);
    axis.values.clear();
    std::size_t start = eq + 1;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        if (comma == start) {
            error = "empty value in sweep axis '" + spec + "'";
            return false;
        }
        axis.values.push_back(spec.substr(start, comma - start));
        start = comma + 1;
    }

    SimConfig scratch = base;
    ConfigRegistry registry(scratch);
    const ParamDef *def = registry.find(axis.key);
    if (!def) {
        error = "unknown sweep parameter '" + axis.key + "'";
        return false;
    }
    for (const std::string &value : axis.values) {
        if (!def->set(value)) {
            error = "bad value '" + value + "' for " + axis.key + " (" +
                    def->type + ")";
            return false;
        }
    }
    return true;
}

/** Resolve the "target" field: "all" (alone) or benchmark names. */
bool
resolveTargets(const std::vector<std::string> &targets,
               std::vector<std::string> &benchmarks, std::string &error)
{
    const std::vector<std::string> known = benchmarkNames();
    if (targets.size() == 1 && targets[0] == "all") {
        benchmarks = known;
        return true;
    }
    for (const std::string &name : targets) {
        bool found = false;
        for (const std::string &k : known)
            found = found || k == name;
        if (!found) {
            error = "unknown benchmark '" + name +
                    "' (want \"all\" or names from GET /params)";
            return false;
        }
        benchmarks.push_back(name);
    }
    if (benchmarks.empty()) {
        error = "empty target list";
        return false;
    }
    return true;
}

void
serializeCounter(std::ostream &os, const char *name, std::uint64_t value,
                 bool first = false)
{
    os << (first ? "" : ", ") << "\"" << name << "\": " << value;
}

} // namespace

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

SweepService::SweepService(SimConfig base, unsigned jobs)
    : base(std::move(base)), jobs(jobs)
{
}

RequestTimeSeries &
SweepService::seriesFor(const std::string &path)
{
    if (path == "/sweep")
        return sweepSeries;
    if (path == "/status")
        return statusSeries;
    if (path == "/params")
        return paramsSeries;
    if (path == "/shutdown")
        return shutdownSeries;
    return otherSeries;
}

const RequestTimeSeries &
SweepService::series(const std::string &endpoint) const
{
    return const_cast<SweepService *>(this)->seriesFor(endpoint);
}

HttpResponse
SweepService::handle(const HttpRequest &request, std::uint64_t minute)
{
    const auto start = std::chrono::steady_clock::now();
    HttpResponse response = dispatch(request, minute);
    const auto usec =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    seriesFor(request.path)
        .add(minute, response.status >= 400,
             static_cast<std::uint64_t>(usec));
    return response;
}

HttpResponse
SweepService::dispatch(const HttpRequest &request, std::uint64_t minute)
{
    if (request.path == "/sweep") {
        if (request.method != "POST")
            return errorResponse(405, "use POST /sweep");
        return handleSweep(request.body);
    }
    if (request.path == "/status") {
        if (request.method != "GET")
            return errorResponse(405, "use GET /status");
        HttpResponse response;
        response.contentType = "application/json";
        response.body = statusJson(minute);
        return response;
    }
    if (request.path == "/params") {
        if (request.method != "GET")
            return errorResponse(405, "use GET /params");
        std::ostringstream os;
        printParamHelp(os);
        os << "\nBenchmarks:\n";
        for (const std::string &name : benchmarkNames())
            os << "  " << name << "\n";
        HttpResponse response;
        response.body = os.str();
        return response;
    }
    if (request.path == "/shutdown") {
        if (request.method != "POST")
            return errorResponse(405, "use POST /shutdown");
        shutdown = true;
        HttpResponse response;
        response.body = "shutting down\n";
        return response;
    }
    return errorResponse(404, "no such endpoint '" + request.path +
                                  "' (have /sweep /status /params "
                                  "/shutdown)");
}

HttpResponse
SweepService::handleSweep(const std::string &body)
{
    FlatJsonParser::Fields fields;
    std::string error;
    if (!FlatJsonParser(body).parse(fields, error))
        return errorResponse(400, "bad JSON body: " + error);

    std::vector<std::string> targets;
    std::vector<std::string> sweeps;
    std::vector<std::string> sets;
    std::string figure = "vpr_simd-sweep";
    std::string format = "csv";
    for (const auto &[key, values] : fields) {
        if (key == "target") {
            targets.insert(targets.end(), values.begin(), values.end());
        } else if (key == "sweep") {
            sweeps.insert(sweeps.end(), values.begin(), values.end());
        } else if (key == "set") {
            sets.insert(sets.end(), values.begin(), values.end());
        } else if (key == "figure" && values.size() == 1) {
            figure = values[0];
        } else if (key == "format" && values.size() == 1) {
            format = values[0];
        } else {
            return errorResponse(400, "unknown or malformed field \"" +
                                          key +
                                          "\" (want target, sweep, set, "
                                          "figure, format)");
        }
    }
    if (format != "csv" && format != "json")
        return errorResponse(400, "bad format '" + format +
                                      "' (want csv or json)");
    if (targets.empty())
        targets.push_back("all");

    std::vector<std::string> benchmarks;
    if (!resolveTargets(targets, benchmarks, error))
        return errorResponse(400, error);

    SimConfig config = base;
    for (const std::string &assignment : sets)
        if (!applyAssignmentChecked(config, assignment, error))
            return errorResponse(400, error);

    std::vector<SweepAxis> axes;
    for (const std::string &spec : sweeps) {
        SweepAxis axis;
        if (!parseSweepAxisChecked(config, spec, axis, error))
            return errorResponse(400, error);
        axes.push_back(std::move(axis));
    }

    // Everything is pre-validated, so the fatal()ing sweep/grid helpers
    // below cannot fire — the daemon shares their one code path (and
    // its cell order) with the batch binaries.
    const std::vector<GridCell> cells =
        buildSweepGrid(benchmarks, config, axes);
    const std::vector<SimResults> results = runGrid(cells, jobs);

    std::vector<std::size_t> indices(cells.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;

    std::ostringstream os;
    HttpResponse response;
    if (format == "json") {
        writeResultsJson(os, figure, ShardSpec{}, indices, cells,
                         results);
        response.contentType = "application/json";
    } else {
        writeResultsCsv(os, figure, ShardSpec{}, indices, cells,
                        results);
        response.contentType = "text/csv";
    }
    response.body = os.str();
    return response;
}

std::string
SweepService::statusJson(std::uint64_t minute) const
{
    const ResultCacheCounters &cache = resultCacheCounters();
    std::ostringstream os;
    os << "{\"service\": \"vpr_simd\"";
    os << ", \"uptime_minutes\": " << minute;
    os << ", \"jobs\": " << jobs;
    os << ", \"scale\": " << std::setprecision(17)
       << instructionScale();
    os << ", \"result_cache\": {\"dir\": \""
       << jsonEscape(base.resultCache.dir) << "\"";
    serializeCounter(os, "hits", cache.hits.load());
    serializeCounter(os, "misses", cache.misses.load());
    serializeCounter(os, "corrupt", cache.corrupt.load());
    serializeCounter(os, "stores", cache.stores.load());
    os << "}, \"endpoints\": {";
    bool first = true;
    for (const char *endpoint :
         {"/sweep", "/status", "/params", "/shutdown", "other"}) {
        os << (first ? "" : ", ") << "\"" << endpoint << "\": ";
        series(endpoint).serializeJson(os, minute);
        first = false;
    }
    os << "}}";
    return os.str();
}

} // namespace vpr::service
