/**
 * @file
 * Shared scaffolding for the paper-reproduction bench binaries.
 *
 * Every bench regenerates one table or figure of the paper. Instruction
 * budgets are scaled-down from the paper's 50 M (see DESIGN.md §4) and
 * can be rescaled with VPR_INSTS_SCALE=<factor> or --scale=<factor>.
 */

#ifndef VPR_BENCH_BENCH_COMMON_HH
#define VPR_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "trace/kernels/kernels.hh"

namespace vpr::bench
{

/** Parse --scale=<f> into VPR_INSTS_SCALE and --jobs=<n> into VPR_JOBS
 *  before anything runs. */
void parseArgs(int argc, char **argv);

/** The SimConfig all paper experiments start from: section 4.1 machine,
 *  trace-driven fetch stall on mispredictions, scaled-down budget,
 *  jobs from VPR_JOBS (see --jobs). */
SimConfig experimentConfig();

/** Run conv + one VP scheme for every benchmark and print speedups in
 *  the paper's figure style; returns the per-benchmark speedups. */
std::vector<double> printSpeedupFigure(
    const std::string &title, RenameScheme scheme,
    const std::vector<unsigned> &nrrValues);

/** Geometric-mean helper used when summarizing speedup figures. */
double geoMean(const std::vector<double> &values);

} // namespace vpr::bench

#endif // VPR_BENCH_BENCH_COMMON_HH
