/**
 * @file
 * NRR reservation tracker — the paper's deadlock-avoidance mechanism
 * (section 3.3).
 *
 * The paper maintains, per register class, a pointer PRR to the NRR-th
 * oldest in-flight instruction with a destination register, plus
 * counters Reg (destination-writing instructions at or below PRR) and
 * Used (how many of those already allocated a physical register). An
 * instruction may allocate a physical register iff
 *
 *     freeRegs > NRR - Used   (leave room for the reserved set), or
 *     it is itself one of the oldest NRR destination-writing
 *     instructions (not younger than PRR).
 *
 * We represent the same state directly as an age-ordered window of
 * destination-writing instructions with an "allocated" flag; the oldest
 * min(NRR, size) entries are the reserved set. This is exactly the
 * PRR/Reg/Used bookkeeping, just held in one structure. The window
 * lives in a power-of-two ring buffer: the in-flight set is bounded by
 * the ROB, so once the ring reaches that bound the per-instruction
 * push/pop traffic never touches the allocator (a deque would slide an
 * allocation every chunk's worth of renames).
 */

#ifndef VPR_RENAME_RESERVATION_HH
#define VPR_RENAME_RESERVATION_HH

#include <cstdint>
#include <vector>

#include "common/state.hh"
#include "common/types.hh"

namespace vpr
{

/** Deadlock-avoidance reservation bookkeeping for one register class. */
class ReservationTracker
{
  public:
    explicit ReservationTracker(unsigned nrr);

    /** A destination-writing instruction was renamed (program order). */
    void onRename(InstSeqNum seq);

    /** The instruction allocated its physical register. */
    void onAllocate(InstSeqNum seq);

    /** The oldest instruction committed. */
    void onCommit(InstSeqNum seq);

    /** The youngest instruction was squashed. */
    void onSquash(InstSeqNum seq);

    /**
     * The paper's allocation predicate.
     *
     * @param seq the completing/issuing instruction
     * @param freeRegs free physical registers right now
     * @return true if the instruction may take a register
     */
    bool mayAllocate(InstSeqNum seq, std::size_t freeRegs) const;

    /** True if @p seq is within the oldest-NRR reserved set. */
    bool isReserved(InstSeqNum seq) const;

    /** Used counter: allocated instructions inside the reserved set.
     *  Maintained incrementally — O(1), read on every allocation
     *  attempt. */
    unsigned usedInReserved() const { return usedRes; }

    /** Reg counter: size of the reserved set (<= NRR). */
    unsigned
    reservedCount() const
    {
        return static_cast<unsigned>(num < nrr ? num : nrr);
    }

    unsigned nrrValue() const { return nrr; }
    std::size_t inFlight() const { return num; }
    bool empty() const { return num == 0; }

    void
    clear()
    {
        head = 0;
        num = 0;
        usedRes = 0;
    }

    /** Serialize/restore the age-ordered window (empty at a drained
     *  point, but the walk stays total so the encoding never depends
     *  on that invariant). */
    void
    visitState(StateVisitor &v)
    {
        v.section("reservation");
        std::uint64_t n = num;
        v.value(n);
        if (v.loading()) {
            clear();
            reserve(static_cast<std::size_t>(n));
            num = static_cast<std::size_t>(n);
        }
        for (std::size_t i = 0; i < num; ++i) {
            v.value(at(i).seq);
            v.value(at(i).allocated);
        }
        v.value(usedRes);
    }

  private:
    struct Entry
    {
        InstSeqNum seq;
        bool allocated;
    };

    /** Entry @p i of the age-ordered window, 0 = oldest. */
    Entry &
    at(std::size_t i)
    {
        return ring[(head + i) & (ring.size() - 1)];
    }

    const Entry &
    at(std::size_t i) const
    {
        return ring[(head + i) & (ring.size() - 1)];
    }

    /** First window index whose seq is >= @p s (the window is age- and
     *  therefore seq-ordered). */
    std::size_t lowerBound(InstSeqNum s) const;

    /** Grow the ring so at least @p cap entries fit (power of two). */
    void reserve(std::size_t cap);

    unsigned nrr;
    /** Power-of-two ring holding the window at (head + i) % size. */
    std::vector<Entry> ring;
    std::size_t head = 0;
    std::size_t num = 0;
    /** Allocated entries within the oldest-min(nrr,size) window. */
    unsigned usedRes = 0;
};

} // namespace vpr

#endif // VPR_RENAME_RESERVATION_HH
