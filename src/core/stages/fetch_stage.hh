/**
 * @file
 * Fetch stage: fills the fetch buffer from the trace through the
 * FetchUnit (perfect I-cache, BHT-predicted branches, optional
 * wrong-path synthesis). Runs last in the back-to-front tick, so a
 * branch resolved by the complete stage this cycle redirects fetch
 * before it runs.
 */

#ifndef VPR_CORE_STAGES_FETCH_STAGE_HH
#define VPR_CORE_STAGES_FETCH_STAGE_HH

#include "core/stages/pipeline_state.hh"
#include "core/stages/stage.hh"

namespace vpr
{

/** The fetch stage. */
class FetchStage : public Stage
{
  public:
    explicit FetchStage(PipelineState &state) : s(state) {}

    const char *name() const override { return "fetch"; }

    void tick() override;
    void squash(InstSeqNum youngestKept) override;
    void resetStats() override;

    /** Interval counters since the last resetStats. @{ */
    std::uint64_t branchesDelta() const;
    std::uint64_t mispredictsDelta() const;
    /** @} */

  private:
    PipelineState &s;
    std::uint64_t baseBranches = 0;
    std::uint64_t baseMispredicts = 0;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_FETCH_STAGE_HH
