#include "memory/cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"
#include "sim/params.hh"

namespace vpr
{

void
CacheConfig::visitParams(ParamVisitor &v)
{
    v.uintParam("size_bytes", sizeBytes, "L1 data-cache capacity");
    v.uintParam("line_size", lineSize, "line size in bytes");
    v.uintParam("assoc", assoc, "associativity (1 = direct mapped)");
    v.uintParam("hit_latency", hitLatency, "hit latency in cycles");
    v.uintParam("miss_penalty", missPenalty,
                "total latency of a fill in cycles");
    v.uintParam("num_mshrs", numMshrs,
                "outstanding misses to distinct lines (lockup-free)");
    v.uintParam("bus_occupancy", busOccupancy,
                "cycles a line fill holds the L1-L2 bus");
}

NonBlockingCache::NonBlockingCache(const CacheConfig &config)
    : cfg(config), mshrFile(config.numMshrs), theBus(config.busOccupancy)
{
    VPR_ASSERT(isPowerOf2(cfg.lineSize), "line size must be a power of 2");
    VPR_ASSERT(cfg.assoc >= 1, "associativity must be >= 1");
    VPR_ASSERT(cfg.sizeBytes % (cfg.lineSize * cfg.assoc) == 0,
               "cache size not divisible by line size * assoc");
    numSets = cfg.sizeBytes / (cfg.lineSize * cfg.assoc);
    VPR_ASSERT(isPowerOf2(numSets), "number of sets must be a power of 2");
    lineMask = cfg.lineSize - 1;
    lines.assign(numSets * cfg.assoc, Line{});

    group.add(&accessesStat);
    group.add(&missesStat);
    group.add(&missRateStat);
}

std::size_t
NonBlockingCache::setIndex(Addr line) const
{
    return (line / cfg.lineSize) & (numSets - 1);
}

int
NonBlockingCache::findWay(std::size_t set, Addr line) const
{
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const Line &l = lines[set * cfg.assoc + w];
        if (l.valid && l.tag == line)
            return static_cast<int>(w);
    }
    return -1;
}

std::size_t
NonBlockingCache::victimWay(std::size_t set) const
{
    std::size_t victim = 0;
    Cycle best = kNoCycle;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const Line &l = lines[set * cfg.assoc + w];
        if (!l.valid)
            return w;
        if (l.lastUse < best) {
            best = l.lastUse;
            victim = w;
        }
    }
    return victim;
}

void
NonBlockingCache::retireFills(Cycle now)
{
    mshrFile.retireUpTo(now, [this](const Mshr &m) {
        std::size_t set = setIndex(m.lineAddr);
        std::size_t way = victimWay(set);
        Line &l = lines[set * cfg.assoc + way];
        if (l.valid && l.dirty) {
            // Dirty victim: write it back over the bus. The transfer is
            // queued from the fill time; it does not block the fill.
            theBus.acquire(m.fillCycle);
            ++nWritebacks;
        }
        l.valid = true;
        l.dirty = m.dirty;
        l.tag = m.lineAddr;
        l.lastUse = m.fillCycle;
    });
}

CacheAccessResult
NonBlockingCache::access(Addr addr, bool isWrite, Cycle now)
{
    retireFills(now);
    ++nAccesses;

    Addr line = lineAddr(addr);
    std::size_t set = setIndex(line);
    int way = findWay(set, line);

    if (way >= 0) {
        Line &l = lines[set * cfg.assoc + way];
        l.lastUse = now;
        if (isWrite)
            l.dirty = true;
        ++nHits;
        return {CacheOutcome::Hit, now + cfg.hitLatency};
    }

    if (Mshr *m = mshrFile.find(line)) {
        // Line already in flight: merge. Data is usable once the fill
        // lands (plus the array access), never earlier than a hit.
        ++m->targets;
        if (isWrite)
            m->dirty = true;
        ++nMerged;
        Cycle ready = m->fillCycle > now ? m->fillCycle : now;
        return {CacheOutcome::MergedMiss, ready + cfg.hitLatency};
    }

    if (mshrFile.full()) {
        ++nBlocked;
        --nAccesses;  // a blocked access will be retried; count it once
        return {CacheOutcome::Blocked, kNoCycle};
    }

    // New outstanding miss. The fill takes missPenalty cycles end to
    // end; the final busOccupancy cycles need the L1-L2 bus, so bus
    // contention can push the fill later.
    Cycle idealStart = now + cfg.missPenalty - cfg.busOccupancy;
    Cycle start = theBus.acquire(idealStart);
    Cycle fill = start + cfg.busOccupancy;
    Mshr &m = mshrFile.allocate(line, fill);
    m.dirty = isWrite;
    ++nMisses;
    return {CacheOutcome::Miss, fill + cfg.hitLatency};
}

bool
NonBlockingCache::wouldBlock(Addr addr, Cycle now)
{
    retireFills(now);
    Addr line = lineAddr(addr);
    if (findWay(setIndex(line), line) >= 0)
        return false;
    if (mshrFile.find(line))
        return false;
    return mshrFile.full();
}

bool
NonBlockingCache::isPresent(Addr addr, Cycle now)
{
    retireFills(now);
    Addr line = lineAddr(addr);
    return findWay(setIndex(line), line) >= 0;
}

void
NonBlockingCache::reset()
{
    lines.assign(lines.size(), Line{});
    mshrFile.clear();
    theBus.reset();
    nAccesses = nHits = nMisses = nMerged = nBlocked = nWritebacks = 0;
    baseAccesses = baseMisses = 0;
}

void
NonBlockingCache::visitState(StateVisitor &v)
{
    v.section("cache");
    std::uint64_t n = lines.size();
    v.value(n);
    if (v.loading() && n != lines.size())
        throw CkptError("cache geometry mismatch");
    for (Line &l : lines) {
        v.value(l.valid);
        v.value(l.dirty);
        v.value(l.tag);
        v.value(l.lastUse);
    }
    mshrFile.visitState(v);
    theBus.visitState(v);
    v.value(nAccesses);
    v.value(nHits);
    v.value(nMisses);
    v.value(nMerged);
    v.value(nBlocked);
    v.value(nWritebacks);
    v.value(baseAccesses);
    v.value(baseMisses);
}

void
NonBlockingCache::regStats(stats::StatRegistry &r)
{
    r.add(
        &group,
        [this] {
            accessesStat.set(nAccesses - baseAccesses);
            missesStat.set(nMisses + nMerged - baseMisses);
            missRateStat.set(missRate());
        },
        [this] {
            group.resetAll();
            baseAccesses = nAccesses;
            baseMisses = nMisses + nMerged;
        });
}

} // namespace vpr
