/**
 * @file
 * Table 2 of the paper: committed IPC of the conventional and the
 * virtual-physical (write-back allocation, NRR = 32) organizations with
 * 64 physical registers per file, plus the paper's side notes — the
 * harmonic-mean improvement (19% at a 50-cycle miss penalty, 12% at
 * 20 cycles) and the ~3.3 executions per committed instruction.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

namespace
{

struct Row
{
    double conv;
    double vp;
    double execPerCommit;
};

void
runTable(unsigned missPenalty, bool verbose)
{
    SimConfig config = experimentConfig();
    config.core.cache.missPenalty = missPenalty;
    const auto &names = benchmarkNames();

    // Grid: (conv, vp) cell pair per benchmark, run on the engine.
    std::vector<GridCell> cells;
    for (const auto &name : names) {
        config.setScheme(RenameScheme::Conventional);
        cells.push_back({name, config});
        config.setScheme(RenameScheme::VPAllocAtWriteback);
        config.setNrr(32);
        cells.push_back({name, config});
    }
    std::vector<SimResults> results = runGrid(cells, config.jobs);

    std::vector<double> convIpcs, vpIpcs;
    if (verbose)
        printTableHeader(std::cout,
                         "Table 2: IPC, conventional vs virtual-physical "
                         "(write-back alloc, NRR=32, 64 regs, miss=" +
                             std::to_string(missPenalty) + ")",
                         {"conv", "virt-phys", "imp(%)", "exec/ci"});
    for (std::size_t bi = 0; bi < names.size(); ++bi) {
        const std::string &name = names[bi];
        const SimResults &conv = results[2 * bi];
        const SimResults &vp = results[2 * bi + 1];

        convIpcs.push_back(conv.ipc());
        vpIpcs.push_back(vp.ipc());
        if (verbose) {
            printTableRow(std::cout, name,
                          {conv.ipc(), vp.ipc(),
                           (vp.ipc() / conv.ipc() - 1.0) * 100.0,
                           vp.stats.executionsPerCommit()},
                          2);
        }
    }
    double ch = harmonicMean(convIpcs);
    double vh = harmonicMean(vpIpcs);
    if (verbose)
        std::cout << std::string(60, '-') << "\n";
    printTableRow(std::cout,
                  verbose ? "hmean" : ("hmean(miss=" +
                                       std::to_string(missPenalty) + ")"),
                  {ch, vh, (vh / ch - 1.0) * 100.0}, 2);
}

} // namespace

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    // Main experiment: 50-cycle miss penalty (the paper's Table 2).
    runTable(50, true);

    // The paper's side note: with a 20-cycle penalty the improvement
    // drops (19% -> 12%) because register lifetimes shrink.
    std::cout << "\npaper note: improvement at a 20-cycle miss penalty\n";
    runTable(20, false);

    std::cout << "\npaper reference: hmean IPC 1.23 (conv) vs 1.46 "
                 "(virt-phys), +19% at miss=50; +12% at miss=20;\n"
                 "FP improvements 4-84%, integer 4-9%; ~3.3 executions "
                 "per committed instruction.\n";
    return 0;
}
