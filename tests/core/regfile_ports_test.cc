/** @file Unit tests for register-file and cache port arbitration. */

#include <gtest/gtest.h>

#include "core/regfile_ports.hh"

namespace vpr
{
namespace
{

TEST(PortSchedule, ClaimsUpToLimit)
{
    PortSchedule ps(3);
    EXPECT_TRUE(ps.tryClaim(5));
    EXPECT_TRUE(ps.tryClaim(5));
    EXPECT_TRUE(ps.tryClaim(5));
    EXPECT_FALSE(ps.tryClaim(5));
    EXPECT_TRUE(ps.tryClaim(6));
    EXPECT_EQ(ps.used(5), 3u);
    EXPECT_EQ(ps.used(6), 1u);
}

TEST(PortSchedule, ClaimFirstFreeSlips)
{
    PortSchedule ps(1);
    EXPECT_EQ(ps.claimFirstFree(10), 10u);
    EXPECT_EQ(ps.claimFirstFree(10), 11u);
    EXPECT_EQ(ps.claimFirstFree(10), 12u);
}

TEST(PortSchedule, PruneDropsPast)
{
    PortSchedule ps(1);
    ps.tryClaim(5);
    ps.tryClaim(6);
    ps.pruneBefore(6);
    EXPECT_EQ(ps.used(5), 0u);
    EXPECT_EQ(ps.used(6), 1u);
}

TEST(PortSchedule, RingGrowsAcrossWideClaimSpans)
{
    // Two live claims a full ring period apart land in the same slot;
    // the ring must grow rather than collapse them into one counter.
    PortSchedule ps(1);
    EXPECT_TRUE(ps.tryClaim(5));
    EXPECT_TRUE(ps.tryClaim(5 + 4096));
    EXPECT_FALSE(ps.tryClaim(5));
    EXPECT_EQ(ps.used(5), 1u);
    EXPECT_EQ(ps.used(5 + 4096), 1u);
    EXPECT_FALSE(ps.tryClaim(5 + 4096));
}

TEST(PortSchedule, LappedSlotReadsFreeAfterPrune)
{
    // A slot owned by a pruned cycle must read as free for the cycle
    // that laps onto it — pruning is lazy, not eager.
    PortSchedule ps(2);
    EXPECT_TRUE(ps.tryClaim(3));
    EXPECT_TRUE(ps.tryClaim(3));
    ps.pruneBefore(5000);
    EXPECT_EQ(ps.used(3), 0u);
    // 5123 = 3 + 5*1024 shares cycle 3's slot in the initial ring.
    EXPECT_TRUE(ps.tryClaim(5123));
    EXPECT_TRUE(ps.tryClaim(5123));
    EXPECT_FALSE(ps.tryClaim(5123));
    EXPECT_EQ(ps.used(5123), 2u);
}

TEST(PortSchedule, ClearForgetsEverything)
{
    PortSchedule ps(1);
    ps.tryClaim(7);
    ps.pruneBefore(7);
    ps.clear();
    EXPECT_EQ(ps.used(7), 0u);
    EXPECT_TRUE(ps.tryClaim(0));  // watermark rewound to zero
    EXPECT_TRUE(ps.tryClaim(7));
}

TEST(RegFilePorts, PaperPortCounts)
{
    RegFilePorts p(16, 8);
    EXPECT_EQ(p.readPortsPerCycle(), 16u);
    EXPECT_EQ(p.writePortsPerCycle(), 8u);
}

TEST(RegFilePorts, ReadsLimitedPerClassPerCycle)
{
    RegFilePorts p(4, 8);
    p.beginCycle(1);
    EXPECT_TRUE(p.tryClaimReads(2, 0));
    EXPECT_TRUE(p.tryClaimReads(2, 4));  // int full, fp has room
    EXPECT_FALSE(p.tryClaimReads(1, 0));
    EXPECT_FALSE(p.tryClaimReads(0, 1));
    p.beginCycle(2);
    EXPECT_TRUE(p.tryClaimReads(4, 4));
}

TEST(RegFilePorts, AtomicClaimAcrossClasses)
{
    RegFilePorts p(4, 8);
    p.beginCycle(1);
    p.tryClaimReads(3, 0);
    // 2 int + 1 fp: int side fails, nothing may be claimed at all.
    EXPECT_FALSE(p.tryClaimReads(2, 1));
    EXPECT_TRUE(p.canClaimReads(1, 1));
    EXPECT_TRUE(p.tryClaimReads(1, 1));
}

TEST(RegFilePorts, UnclaimRefunds)
{
    RegFilePorts p(2, 8);
    p.beginCycle(1);
    EXPECT_TRUE(p.tryClaimReads(2, 0));
    EXPECT_FALSE(p.tryClaimReads(1, 0));
    p.unclaimReads(2, 0);
    EXPECT_TRUE(p.tryClaimReads(1, 0));
}

TEST(RegFilePorts, WriteSchedulingSlipsPastFullCycles)
{
    RegFilePorts p(16, 2);
    p.beginCycle(1);
    EXPECT_EQ(p.scheduleWrite(RegClass::Int, 10), 10u);
    EXPECT_EQ(p.scheduleWrite(RegClass::Int, 10), 10u);
    EXPECT_EQ(p.scheduleWrite(RegClass::Int, 10), 11u);
    // The FP file has its own ports.
    EXPECT_EQ(p.scheduleWrite(RegClass::Float, 10), 10u);
}

TEST(RegFilePorts, BeginCycleRestoresReads)
{
    RegFilePorts p(1, 8);
    p.beginCycle(1);
    EXPECT_TRUE(p.tryClaimReads(1, 1));
    EXPECT_FALSE(p.tryClaimReads(1, 0));
    p.beginCycle(2);
    EXPECT_TRUE(p.tryClaimReads(1, 0));
}

} // namespace
} // namespace vpr
