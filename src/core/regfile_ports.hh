/**
 * @file
 * Register-file and cache port arbitration.
 *
 * The paper's register files have 16 read and 8 write ports each, and
 * the cache has 3 ports. Reads are consumed at issue within one cycle;
 * writes are scheduled at completion time (completion slips to the next
 * cycle with a free port); cache ports are claimed for the cycle of the
 * access.
 */

#ifndef VPR_CORE_REGFILE_PORTS_HH
#define VPR_CORE_REGFILE_PORTS_HH

#include <cstdint>
#include <map>

#include "common/types.hh"
#include "isa/reg.hh"

namespace vpr
{

/** Per-cycle counting arbiter used for write and cache ports. */
class PortSchedule
{
  public:
    explicit PortSchedule(unsigned portsPerCycle)
        : ports(portsPerCycle)
    {}

    /** Claim a port at exactly @p cycle; false if none left. */
    bool
    tryClaim(Cycle cycle)
    {
        unsigned &used = usage[cycle];
        if (used >= ports)
            return false;
        ++used;
        return true;
    }

    /** First cycle >= @p earliest with a free port; claims it. */
    Cycle
    claimFirstFree(Cycle earliest)
    {
        Cycle c = earliest;
        while (!tryClaim(c))
            ++c;
        return c;
    }

    /** Drop bookkeeping for cycles before @p now. */
    void
    pruneBefore(Cycle now)
    {
        usage.erase(usage.begin(), usage.lower_bound(now));
    }

    unsigned portsPerCycle() const { return ports; }

    /** Ports already claimed at @p cycle (tests). */
    unsigned
    used(Cycle cycle) const
    {
        auto it = usage.find(cycle);
        return it == usage.end() ? 0 : it->second;
    }

    void clear() { usage.clear(); }

  private:
    unsigned ports;
    std::map<Cycle, unsigned> usage;
};

/** Read/write port tracking for both register files. */
class RegFilePorts
{
  public:
    RegFilePorts(unsigned readPorts, unsigned writePorts)
        : nReadPorts(readPorts),
          writes{PortSchedule(writePorts), PortSchedule(writePorts)}
    {}

    /** Start a cycle: read ports replenish. */
    void
    beginCycle(Cycle now)
    {
        readsUsed[0] = readsUsed[1] = 0;
        writes[0].pruneBefore(now);
        writes[1].pruneBefore(now);
    }

    /** Could @p nInt integer and @p nFp FP reads be claimed now? */
    bool
    canClaimReads(unsigned nInt, unsigned nFp) const
    {
        return readsUsed[classIdx(RegClass::Int)] + nInt <= nReadPorts &&
               readsUsed[classIdx(RegClass::Float)] + nFp <= nReadPorts;
    }

    /** Claim read ports for one issuing instruction (both classes). */
    bool
    tryClaimReads(unsigned nInt, unsigned nFp)
    {
        if (!canClaimReads(nInt, nFp))
            return false;
        readsUsed[classIdx(RegClass::Int)] += nInt;
        readsUsed[classIdx(RegClass::Float)] += nFp;
        return true;
    }

    /** Undo a claim made this cycle (issue aborted later in the chain). */
    void
    unclaimReads(unsigned nInt, unsigned nFp)
    {
        readsUsed[classIdx(RegClass::Int)] -= nInt;
        readsUsed[classIdx(RegClass::Float)] -= nFp;
    }

    /** Schedule a result write at the first free cycle >= earliest. */
    Cycle
    scheduleWrite(RegClass cls, Cycle earliest)
    {
        return writes[classIdx(cls)].claimFirstFree(earliest);
    }

    unsigned readPortsPerCycle() const { return nReadPorts; }
    unsigned
    writePortsPerCycle() const
    {
        return writes[0].portsPerCycle();
    }

  private:
    unsigned nReadPorts;
    unsigned readsUsed[kNumRegClasses] = {0, 0};
    PortSchedule writes[kNumRegClasses];
};

} // namespace vpr

#endif // VPR_CORE_REGFILE_PORTS_HH
