#include "common/random.hh"

namespace vpr
{

std::uint64_t
deriveSeed(std::uint64_t masterSeed, std::uint64_t salt)
{
    // splitmix64 finalizer over (master, salt). The golden-ratio
    // multiple decorrelates consecutive salts; the final zero guard
    // keeps the result usable as an xorshift64* state directly.
    std::uint64_t z = masterSeed + 0x9e3779b97f4a7c15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z ? z : 0x9e3779b97f4a7c15ull;
}

} // namespace vpr
