/**
 * @file
 * Abstract interface shared by the register-renaming schemes.
 *
 * The pipeline is scheme-agnostic: it renames through this interface at
 * decode, consults it at issue (the VP issue-allocation policy may deny
 * issue), notifies it at completion (the VP write-back policy may demand
 * a squash-and-re-execute), and at commit/squash. Implementations:
 * ConventionalRename (R10000-style baseline) and VirtualPhysicalRename
 * (the paper's contribution, with both allocation policies).
 */

#ifndef VPR_RENAME_RENAME_IFACE_HH
#define VPR_RENAME_RENAME_IFACE_HH

#include <cstdint>
#include <string>

#include "common/state.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/dyn_inst.hh"
#include "isa/reg.hh"
#include "rename/pressure.hh"

namespace vpr
{

/** Which renaming organization a core uses. */
enum class RenameScheme : std::uint8_t
{
    Conventional,        ///< R10000: allocate phys reg at decode
    VPAllocAtWriteback,  ///< virtual-physical, allocate at write-back
    VPAllocAtIssue,      ///< virtual-physical, allocate at issue
    /** Conventional renaming + counter-based early release (Moudgill et
     *  al. / Smith & Sohi, cited in paper §3.1): eliminates the
     *  *second* waste factor (dead value awaiting its superseder's
     *  commit) while still allocating at decode. Ablation scheme. */
    ConventionalEarlyRelease
};

/** Human-readable scheme name. */
const char *renameSchemeName(RenameScheme s);

/** True for the two virtual-physical variants. */
inline bool
isVirtualPhysical(RenameScheme s)
{
    return s == RenameScheme::VPAllocAtWriteback ||
           s == RenameScheme::VPAllocAtIssue;
}

/** Outcome of notifying the renamer that an instruction completed. */
struct CompleteResult
{
    /** False only under VP write-back allocation when no physical
     *  register may be taken: the instruction must be squashed back to
     *  the instruction queue and re-executed. */
    bool ok = true;
};

class ParamVisitor;

/** Register-file sizing for one core. */
struct RenameConfig
{
    /** Physical registers per register file (paper: 48, 64 or 96). */
    std::uint16_t numPhysRegs = 64;
    /** Virtual-physical registers per file; the paper requires
     *  NVR >= NLR + window so the pool can never run dry. */
    std::uint16_t numVPRegs = kNumLogicalRegs + 128;
    /** Reserved registers (NRR) for the oldest instructions, per class.
     *  Only meaningful for the VP schemes. */
    std::uint16_t nrrInt = 32;
    std::uint16_t nrrFp = 32;

    /** Reflect the sizing parameters (sim/params.hh). */
    void visitParams(ParamVisitor &v);
};

/**
 * The renaming engine of one simulated core. All methods take the
 * current cycle where timing matters (pressure accounting and the VP
 * scheme's one-cycle-delayed commit-time frees).
 */
class RenameManager
{
  public:
    explicit RenameManager(const RenameConfig &config);
    virtual ~RenameManager() = default;

    virtual RenameScheme scheme() const = 0;

    /** Called once at the top of every cycle (releases delayed frees). */
    virtual void tick(Cycle now) = 0;

    /**
     * Can the decode stage rename instructions needing @p nIntDests
     * integer and @p nFpDests FP destinations this cycle? The
     * conventional scheme requires free physical registers; the VP
     * schemes require free VP registers (never exhausted when sized per
     * the paper).
     */
    virtual bool canRename(unsigned nIntDests, unsigned nFpDests)
        const = 0;

    /**
     * Rename @p inst: fill in its SrcOperand tags/ready bits and its
     * destination tags, and record the previous mapping for recovery.
     */
    virtual void renameInst(DynInst &inst, Cycle now) = 0;

    /**
     * Called when @p inst is about to issue. The VP issue-allocation
     * policy allocates the physical destination here and may refuse
     * (keeping the instruction in the IQ). Other schemes always accept.
     */
    virtual bool tryIssue(DynInst &inst, Cycle now) = 0;

    /**
     * Called when @p inst finishes execution. Updates map state and, for
     * VP write-back allocation, tries to allocate the physical register;
     * on failure returns ok=false and the core must re-queue the
     * instruction.
     */
    virtual CompleteResult complete(DynInst &inst, Cycle now) = 0;

    /** Called at commit: frees the previous mapping of the dest. */
    virtual void commitInst(DynInst &inst, Cycle now) = 0;

    /**
     * Called youngest-first for every squashed instruction: undo the
     * rename, returning tags/registers to their pools and restoring the
     * previous mapping (the paper's ROB-walk recovery).
     */
    virtual void squashInst(DynInst &inst, Cycle now) = 0;

    /** Free physical registers right now (inspection/tests). */
    virtual std::size_t freePhysRegs(RegClass cls) const = 0;

    /** Registers currently allocated, i.e.\ NPR - free (per class). */
    std::size_t
    busyPhysRegs(RegClass cls) const
    {
        return cfg.numPhysRegs - freePhysRegs(cls);
    }

    /** Self-check of internal invariants; panics when broken. */
    virtual void checkInvariants() const = 0;

    /**
     * Return to the constructed state: architected mappings restored,
     * free lists rebuilt in construction order (allocation order is
     * architecturally visible downstream), pressure trackers and
     * whole-run counters zeroed. Simulator reuse between grid cells;
     * must be indistinguishable from a freshly constructed renamer.
     */
    virtual void reinit() = 0;

    /**
     * Register the renamer's stat groups — "rename" (mean holding
     * times), "rename.vp" (per-value register-lifetime distributions)
     * and "regfile" (occupancy distributions, peaks) — into the core's
     * stats tree.
     */
    void regStats(stats::StatRegistry &r);

    /** Record this cycle's busy-register counts into the occupancy
     *  distributions (called once per cycle by the pipeline). */
    void
    sampleOccupancy()
    {
        for (std::size_t c = 0; c < kNumRegClasses; ++c)
            occupancyDist[c].sample(busyPhysRegs(static_cast<RegClass>(c)));
    }

    /** Regfile occupancy distribution for one class (tests/figures). */
    const stats::Distribution &
    occupancyStat(RegClass cls) const
    {
        return occupancyDist[classIdx(cls)];
    }

    /** Register-lifetime distribution for one class. */
    const stats::Distribution &
    lifetimeStat(RegClass cls) const
    {
        return lifetimeDist[classIdx(cls)];
    }

    const RenameConfig &config() const { return cfg; }

    /** Pressure integration for each register class. */
    const PressureTracker &
    pressure(RegClass cls) const
    {
        return pressureTrk[classIdx(cls)];
    }
    PressureTracker &
    pressure(RegClass cls)
    {
        return pressureTrk[classIdx(cls)];
    }

    /** Times VP write-back allocation refused a register. */
    std::uint64_t allocationRejections() const { return nRejections; }

    /**
     * Serialize/restore the scheme's live state at a drained point
     * (common/state.hh): map tables, free-list *order* (allocation
     * order is architecturally visible downstream), pressure trackers
     * and whole-run counters. Subclasses extend the base walk, which
     * covers the shared members.
     */
    virtual void visitState(StateVisitor &v);

  protected:
    /** Shared half of reinit(): clear the pressure trackers and the
     *  base-class counters. Subclasses replay their constructor bodies
     *  on top (re-allocating the architected registers). */
    void
    reinitBase()
    {
        for (std::size_t c = 0; c < kNumRegClasses; ++c)
            pressureTrk[c].clear();
        nRejections = 0;
    }

    RenameConfig cfg;
    /** Lifetime distributions are declared before the trackers that
     *  sample into them (construction order). */
    stats::Distribution lifetimeDist[kNumRegClasses];
    stats::Distribution occupancyDist[kNumRegClasses];
    PressureTracker pressureTrk[kNumRegClasses];
    std::uint64_t nRejections = 0;

  private:
    stats::StatGroup renameGroup{"rename"};
    stats::StatGroup vpGroup{"rename.vp"};
    stats::StatGroup regfileGroup{"regfile"};
    stats::Real meanHold[kNumRegClasses] = {
        {"mean_hold_cycles_int",
         "mean register-holding cycles per int value"},
        {"mean_hold_cycles_fp",
         "mean register-holding cycles per FP value"}};
    stats::Scalar peakBusy[kNumRegClasses] = {
        {"peak_busy_int", "peak busy integer physical registers"},
        {"peak_busy_fp", "peak busy FP physical registers"}};
};

} // namespace vpr

#endif // VPR_RENAME_RENAME_IFACE_HH
