#include "core/stages/issue_stage.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/op_class.hh"

namespace vpr
{

namespace
{

/** Row labels of the issued_by_class matrix: every op class. */
std::vector<std::string>
opClassRows()
{
    std::vector<std::string> rows;
    for (std::size_t i = 0; i < kNumOpClasses; ++i)
        rows.push_back(opClassName(static_cast<OpClass>(i)));
    return rows;
}

} // namespace

IssueStage::IssueStage(PipelineState &state,
                       CompletionQueue &completionQueue)
    : s(state), completions(completionQueue),
      scanIssue(state.cfg.iqScanIssue),
      byClass("issued_by_class",
              "issues per op class, split first execution vs re-execution",
              opClassRows(), {"first", "reexec"})
{
    group.add(&issued);
    group.add(&byClass);
    fetchToIssue.reserve(kNumOpClasses);
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        // Queueing delay dominates (an instruction can sit behind a
        // whole 128-entry window), so the range is wider than the
        // execution-latency distribution's.
        fetchToIssue.push_back(stats::Distribution::evenBuckets(
            std::string("fetch_to_issue.") +
                opClassName(static_cast<OpClass>(i)),
            "cycles from fetch to first issue", 0, 256, 16));
        group.add(&fetchToIssue.back());
    }
    s.statsTree.add(&group);
}

IssueStage::Attempt
IssueStage::tryIssueOne(DynInst *inst)
{
    if (!inst->issueOperandsReady())
        return {Outcome::Resource};

    OpClass op = inst->si.op;
    const Cycle now = s.curCycle;

    // A re-execution (squashed at write-back for lack of a register,
    // paper §3.3) already performed its memory access and disambiguation;
    // it only needs to traverse the execution pipeline again.
    const bool reExecution = inst->executions > 0;

    // Memory disambiguation (PA-8000 style) for loads. Hold statistics
    // count episodes (transitions into a blocking state), so the
    // event-driven path — which re-attempts a held load only when its
    // blocker resolves — and the legacy every-cycle scan agree.
    LoadHold hold = LoadHold::Ready;
    if (inst->isLoad() && !reExecution) {
        LoadCheck chk = s.lsq.disambiguate(inst, now);
        hold = chk.hold;
        if (hold == LoadHold::UnknownAddress ||
            hold == LoadHold::PartialOverlap) {
            if (inst->lastHold() != hold) {
                s.lsq.recordHold(hold);
                inst->setLastHold(hold);
            }
            return {Outcome::Hold, hold, chk.blocker};
        }
    }

    // Functional unit available?
    if (s.fus.available(fuTypeFor(op), now) == 0)
        return {Outcome::NoFu};

    // Register-file read ports. A store reads only its address operand
    // at issue; the data register is picked up when it completes.
    unsigned nIntReads = 0, nFpReads = 0;
    for (std::size_t i = 0; i < kMaxSrcRegs; ++i) {
        const auto &src = inst->src[i];
        if (!src.valid)
            continue;
        if (inst->isStore() && i == 0)
            continue;
        if (src.cls == RegClass::Int)
            ++nIntReads;
        else
            ++nFpReads;
    }
    if (!s.regPorts.canClaimReads(nIntReads, nFpReads))
        return {Outcome::Resource};

    // Cache port and MSHR space for loads that really access the cache.
    bool needsCache =
        inst->isLoad() && hold != LoadHold::Forward && !reExecution;
    if (needsCache) {
        if (s.cachePortSched.used(now + 1) >= s.cfg.cachePorts)
            return {Outcome::Resource};
        if (s.cache.wouldBlock(inst->si.effAddr, now + 1))
            return {Outcome::Resource};
    }

    // The renamer's issue gate (VP issue-allocation policy).
    if (!s.renameMgr->tryIssue(*inst, now))
        return {Outcome::Resource};

    // All checks passed: commit the side effects.
    s.regPorts.tryClaimReads(nIntReads, nFpReads);

    Cycle raw;
    if (inst->isLoad()) {
        if (reExecution) {
            // The line was filled by the first execution; the retry hits.
            raw = now + 1 + s.cache.config().hitLatency;
        } else if (hold == LoadHold::Forward) {
            s.lsq.recordHold(hold);
            inst->storeForwarded = true;
            raw = now + 1 + s.cache.config().hitLatency;
        } else {
            bool claimed = s.cachePortSched.tryClaim(now + 1);
            VPR_ASSERT(claimed, "cache port vanished");
            auto res = s.cache.access(inst->si.effAddr, false, now + 1);
            VPR_ASSERT(res.outcome != CacheOutcome::Blocked,
                       "cache blocked after wouldBlock said otherwise");
            raw = res.readyCycle;
        }
        inst->addrReady = true;
        inst->addrReadyCycle = now + 1;
    } else if (inst->isStore()) {
        // Address generation only; data is written to the cache at
        // commit. The store completes once address *and* data are
        // known; with the data still in flight it parks in the
        // CompletionQueue (drained at the end of the complete stage).
        raw = now + 1;
        inst->addrReady = true;
        inst->addrReadyCycle = now + 1;
        if (!reExecution)
            s.lsq.onStoreAddrComputed(inst);
        if (!inst->operandsReady()) {
            inst->setPhase(InstPhase::Issued);
            inst->setIssueCycle(now);
            if (!reExecution)
                fetchToIssue[static_cast<std::size_t>(op)].sample(
                    now - inst->fetchCycle());
            ++inst->executions;
            ++issued;
            byClass.inc(static_cast<std::size_t>(op), reExecution ? 1 : 0);
            completions.parkStore(inst, inst->seq());
            bool fuOkStore = s.fus.tryIssue(op, now, raw);
            VPR_ASSERT(fuOkStore, "FU vanished after availability check");
            return {Outcome::Issued};
        }
    } else {
        raw = now + opLatency(op);
    }

    // Schedule the result write port; completion slips if all write
    // ports at the ideal cycle are taken. Re-executions write only on
    // their final (successful) attempt; charging a slot per retry would
    // let rejection storms build an unbounded port backlog that no real
    // machine exhibits, so retries bypass the scheduler.
    Cycle completion = inst->hasDest() && !reExecution
        ? s.regPorts.scheduleWrite(inst->destClass(), raw)
        : raw;

    bool fuOk = s.fus.tryIssue(op, now, completion);
    VPR_ASSERT(fuOk, "FU vanished after availability check");

    inst->setPhase(InstPhase::Issued);
    inst->setIssueCycle(now);
    if (!reExecution)
        fetchToIssue[static_cast<std::size_t>(op)].sample(
            now - inst->fetchCycle());
    ++inst->executions;
    ++issued;
    byClass.inc(static_cast<std::size_t>(op), reExecution ? 1 : 0);
    completions.schedule(completion, inst->seq(), inst);
    return {Outcome::Issued};
}

void
IssueStage::scanTick()
{
    // Reference path: oldest-first selection directly over the
    // age-ordered list — no per-cycle snapshot copy. Issue is the only
    // mutation during the scan (nothing is inserted or squashed from
    // inside tryIssueOne), so removing the issued entry and keeping the
    // index in place walks every remaining entry exactly once. Two
    // passes: first executions have priority; re-executions fill the
    // remaining slots ("resources that otherwise would be unused",
    // paper §4.2.1).
    unsigned nIssued = 0;
    for (int pass = 0; pass < 2 && nIssued < s.cfg.issueWidth; ++pass) {
        std::size_t i = 0;
        while (i < s.iq.size() && nIssued < s.cfg.issueWidth) {
            DynInst *inst = s.iq.at(i);
            if ((inst->executions > 0) != (pass == 1) ||
                inst->phase() != InstPhase::Renamed) {
                ++i;
                continue;
            }
            if (tryIssueOne(inst).outcome == Outcome::Issued) {
                s.iq.removeAt(i);
                ++nIssued;
            } else {
                ++i;
            }
        }
    }
}

void
IssueStage::tick()
{
    if (scanIssue) {
        scanTick();
        return;
    }

    const Cycle now = s.curCycle;

    // Merge this cycle's candidates: newly published ready
    // instructions, last cycle's per-cycle-resource failures, FU-stall
    // lists whose unit class has capacity again (availability only
    // shrinks within a tick, so a class gated here would fail every
    // scan attempt this cycle too), and released LSQ holds.
    cand.clear();
    s.iq.drainReadyEvents(cand);
    cand.insert(cand.end(), retryQ.begin(), retryQ.end());
    retryQ.clear();
    for (std::size_t t = 0; t < kNumFUTypes; ++t) {
        auto &q = fuStallQ[t];
        if (q.empty() ||
            s.fus.available(static_cast<FUType>(t), now) == 0)
            continue;
        cand.insert(cand.end(), q.begin(), q.end());
        q.clear();
    }
    s.lsq.takeReadyHolds(now, cand);
    std::sort(cand.begin(), cand.end(),
              [](const ReadyRef &a, const ReadyRef &b) {
                  return a.seq < b.seq;
              });

    // Oldest-first over the candidates, same two-pass priority as the
    // scan. Failures are re-parked by reason; entries the width cutoff
    // left unattempted stay ready for next cycle.
    unsigned nIssued = 0;
    for (int pass = 0; pass < 2 && nIssued < s.cfg.issueWidth; ++pass) {
        for (ReadyRef &e : cand) {
            if (nIssued >= s.cfg.issueWidth)
                break;
            DynInst *inst = e.inst;
            if (!inst)
                continue;
            // Staleness (issued, squashed, or slot reused): decided
            // entirely inside the packed hot arrays via the recorded
            // slot — a stale entry never touches its DynInst.
            if (!s.hot.liveInPhase(e.slot, e.seq, InstPhase::Renamed) ||
                !s.hot.isInIq(e.slot)) {
                e.inst = nullptr;  // stale: issued, squashed, or reused
                continue;
            }
            if ((inst->executions > 0) != (pass == 1))
                continue;
            Attempt a = tryIssueOne(inst);
            e.inst = nullptr;
            switch (a.outcome) {
              case Outcome::Issued:
                s.iq.remove(inst);
                ++nIssued;
                break;
              case Outcome::Hold:
                s.lsq.subscribeHold(inst, a.blocker, a.hold);
                break;
              case Outcome::NoFu:
                fuStallQ[static_cast<std::size_t>(
                             fuTypeFor(inst->si.op))]
                    .push_back(inst->ref());
                break;
              case Outcome::Resource:
                retryQ.push_back(inst->ref());
                break;
            }
        }
    }
    for (const ReadyRef &e : cand) {
        if (e.inst && s.hot.live(e.slot, e.seq) && s.hot.isInIq(e.slot))
            retryQ.push_back(e);
    }
}

} // namespace vpr
