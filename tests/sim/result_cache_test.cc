/**
 * @file
 * The content-addressed result cache end to end: digests must share
 * exactly when results are shareable (and never across configurations),
 * a cached sweep must be byte-identical to the cold run that populated
 * it for any worker count, and every damaged cache entry must fall back
 * to re-simulation with the same results — a bad cache file may cost
 * time, never a wrong row.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/io/zio.hh"
#include "common/state.hh"
#include "sim/experiment.hh"
#include "sim/result_cache.hh"
#include "sim/results_io.hh"
#include "sim/sweep.hh"

namespace vpr
{
namespace
{

namespace fs = std::filesystem;

SimConfig
quick()
{
    SimConfig c = paperConfig();
    c.skipInsts = 2000;
    c.measureInsts = 20000;
    c.core.fetch.wrongPath = WrongPathMode::Stall;
    return c;
}

/** A fresh, empty cache directory under the test temp root. */
std::string
freshDir(const std::string &tag)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("vpr_rc_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::size_t
countEntries(const std::string &dir)
{
    std::size_t n = 0;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".vprr")
            ++n;
    return n;
}

/** Snapshot of the process-wide counters (they are monotonic, so tests
 *  assert on deltas). */
struct CounterSnap
{
    std::uint64_t hits, misses, corrupt, stores;

    static CounterSnap
    now()
    {
        const ResultCacheCounters &c = resultCacheCounters();
        return {c.hits.load(), c.misses.load(), c.corrupt.load(),
                c.stores.load()};
    }
};

/** The sweep grid both the byte-identity and corruption tests run:
 *  one benchmark, three register-file sizes. */
std::vector<GridCell>
testGrid(const SimConfig &base)
{
    return buildSweepGrid(
        {"compress"}, base,
        {SweepAxis{"core.rename.regfile_size", {"48", "64", "96"}}});
}

std::string
renderCsv(const std::vector<GridCell> &cells,
          const std::vector<SimResults> &results)
{
    std::vector<std::size_t> indices(cells.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    std::ostringstream os;
    writeResultsCsv(os, "result-cache-test", ShardSpec{}, indices, cells,
                    results);
    return os.str();
}

TEST(ResultCacheDigest, StableAndDiscriminating)
{
    const GridCell cell{"go", quick()};
    EXPECT_EQ(resultCacheDigest(cell), resultCacheDigest(cell));

    // Any provenance parameter or the benchmark changes the key...
    GridCell otherBench = cell;
    otherBench.benchmark = "compress";
    EXPECT_NE(resultCacheDigest(cell), resultCacheDigest(otherBench));

    GridCell otherSeed = cell;
    otherSeed.config.seed = 7;
    EXPECT_NE(resultCacheDigest(cell), resultCacheDigest(otherSeed));

    GridCell otherRegs = cell;
    otherRegs.config.setPhysRegs(96, -1);
    EXPECT_NE(resultCacheDigest(cell), resultCacheDigest(otherRegs));

    // ...while execution-only knobs must not: how a grid is run (or
    // where its caches live) is not part of what was computed.
    GridCell otherJobs = cell;
    otherJobs.config.jobs = 8;
    EXPECT_EQ(resultCacheDigest(cell), resultCacheDigest(otherJobs));

    GridCell otherCacheCfg = cell;
    otherCacheCfg.config.resultCache.dir = "/somewhere/else";
    otherCacheCfg.config.resultCache.compress = false;
    EXPECT_EQ(resultCacheDigest(cell), resultCacheDigest(otherCacheCfg));
}

TEST(ResultCache, MissThenHitRoundTrip)
{
    const std::string dir = freshDir("roundtrip");
    SimConfig config = quick();
    config.resultCache.dir = dir;
    const GridCell cell{"go", config};

    const CounterSnap before = CounterSnap::now();
    SimResults out;
    EXPECT_FALSE(loadCachedResult(dir, cell, out));
    EXPECT_EQ(CounterSnap::now().misses, before.misses + 1);

    const SimResults cold = runOne(cell.benchmark, cell.config);
    storeCachedResult(dir, cell, cold);
    EXPECT_EQ(CounterSnap::now().stores, before.stores + 1);
    EXPECT_TRUE(fs::exists(
        resultCachePath(dir, cell.benchmark, resultCacheDigest(cell))));

    ASSERT_TRUE(loadCachedResult(dir, cell, out));
    EXPECT_EQ(CounterSnap::now().hits, before.hits + 1);
    ASSERT_TRUE(cold.metrics.sameSchema(out.metrics));
    for (std::size_t i = 0; i < cold.metrics.all().size(); ++i)
        EXPECT_EQ(cold.metrics.all()[i].text(),
                  out.metrics.all()[i].text())
            << cold.metrics.all()[i].name();

    // A different cell must not see this entry.
    GridCell other = cell;
    other.config.seed = 3;
    EXPECT_FALSE(loadCachedResult(dir, other, out));
}

TEST(ResultCache, CachedSweepIsByteIdenticalForAnyJobs)
{
    const std::string dir = freshDir("sweep");

    // Cold, uncached reference run.
    const std::vector<GridCell> plain = testGrid(quick());
    const std::string reference = renderCsv(plain, runGrid(plain, 1));

    // Cold run that populates the cache: identical bytes already.
    SimConfig cached = quick();
    cached.resultCache.dir = dir;
    const std::vector<GridCell> cells = testGrid(cached);
    const CounterSnap before = CounterSnap::now();
    EXPECT_EQ(renderCsv(cells, runGrid(cells, 1)), reference);
    EXPECT_EQ(CounterSnap::now().misses, before.misses + cells.size());
    EXPECT_EQ(CounterSnap::now().stores, before.stores + cells.size());
    EXPECT_EQ(countEntries(dir), cells.size());

    // Warm runs: every cell served from disk, for any worker count.
    for (unsigned jobs : {1u, 2u, 3u}) {
        const CounterSnap warm = CounterSnap::now();
        EXPECT_EQ(renderCsv(cells, runGrid(cells, jobs)), reference)
            << "jobs=" << jobs;
        EXPECT_EQ(CounterSnap::now().hits, warm.hits + cells.size());
        EXPECT_EQ(CounterSnap::now().misses, warm.misses);
    }
}

TEST(ResultCache, CorruptEntriesFallBackAndRepair)
{
    const std::string dir = freshDir("corrupt");
    SimConfig config = quick();
    config.resultCache.dir = dir;
    const std::vector<GridCell> cells = testGrid(config);
    const std::string reference = renderCsv(cells, runGrid(cells, 1));
    ASSERT_EQ(countEntries(dir), cells.size());

    // Damage every entry a different way: truncation, garbage, and a
    // flipped payload byte (caught by the container checksum).
    std::vector<std::string> paths;
    for (const GridCell &cell : cells)
        paths.push_back(resultCachePath(dir, cell.benchmark,
                                        resultCacheDigest(cell)));
    std::string bytes;
    ASSERT_TRUE(readFileBytes(paths[0], bytes));
    ASSERT_TRUE(
        writeFileAtomic(paths[0], bytes.substr(0, bytes.size() / 2)));
    ASSERT_TRUE(writeFileAtomic(paths[1], "not a container at all"));
    ASSERT_TRUE(readFileBytes(paths[2], bytes));
    bytes[bytes.size() - 3] ^= 0x20;
    ASSERT_TRUE(writeFileAtomic(paths[2], bytes));

    // The damaged entries cost a re-simulation, never a wrong row, and
    // the re-save repairs them in place.
    const CounterSnap before = CounterSnap::now();
    EXPECT_EQ(renderCsv(cells, runGrid(cells, 1)), reference);
    EXPECT_EQ(CounterSnap::now().corrupt, before.corrupt + cells.size());
    EXPECT_EQ(CounterSnap::now().stores, before.stores + cells.size());

    const CounterSnap after = CounterSnap::now();
    EXPECT_EQ(renderCsv(cells, runGrid(cells, 1)), reference);
    EXPECT_EQ(CounterSnap::now().hits, after.hits + cells.size());
    EXPECT_EQ(CounterSnap::now().corrupt, after.corrupt);
}

TEST(ResultCache, WrongDigestEntryIsRejected)
{
    // An entry renamed onto another cell's path (digest mismatch inside
    // the payload) must be treated as corrupt, not replayed.
    const std::string dir = freshDir("wrongdigest");
    SimConfig config = quick();
    config.resultCache.dir = dir;
    const GridCell cell{"go", config};
    storeCachedResult(dir, cell, runOne(cell.benchmark, cell.config));

    GridCell other = cell;
    other.config.seed = 9;
    const std::string from =
        resultCachePath(dir, cell.benchmark, resultCacheDigest(cell));
    const std::string to =
        resultCachePath(dir, other.benchmark, resultCacheDigest(other));
    fs::rename(from, to);

    const CounterSnap before = CounterSnap::now();
    SimResults out;
    EXPECT_FALSE(loadCachedResult(dir, other, out));
    EXPECT_EQ(CounterSnap::now().corrupt, before.corrupt + 1);
}

TEST(ResultCache, SaveOffReadsButNeverWrites)
{
    const std::string dir = freshDir("readonly");
    SimConfig config = quick();
    config.resultCache.dir = dir;
    const std::vector<GridCell> writer = testGrid(config);
    runGrid(writer, 1);
    ASSERT_EQ(countEntries(dir), writer.size());

    // save=0: a reader deployment (CI shards against a shared cache)
    // hits existing entries but adds nothing.
    SimConfig readOnly = config;
    readOnly.resultCache.save = false;
    readOnly.seed = 11;  // all-new cells
    const std::vector<GridCell> reader = testGrid(readOnly);
    const CounterSnap before = CounterSnap::now();
    runGrid(reader, 1);
    EXPECT_EQ(CounterSnap::now().misses, before.misses + reader.size());
    EXPECT_EQ(CounterSnap::now().stores, before.stores);
    EXPECT_EQ(countEntries(dir), writer.size());
}

TEST(ResultCacheGc, EvictsOldestUntilBudgetFits)
{
    const std::string dir = freshDir("gc");
    // Four 100-byte files with strictly increasing mtimes.
    std::vector<std::string> names = {"a.vprr", "b.vprck", "c.vprr",
                                      "d.vprr"};
    const auto base = fs::file_time_type::clock::now();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string path = dir + "/" + names[i];
        ASSERT_TRUE(writeFileAtomic(path, std::string(100, 'x')));
        fs::last_write_time(path,
                            base - std::chrono::hours(names.size() - i));
    }
    // A non-cache file must be ignored entirely.
    ASSERT_TRUE(writeFileAtomic(dir + "/notes.txt",
                                std::string(1000, 'y')));

    const CacheGcPlan plan = planCacheGc({dir}, 250);
    EXPECT_EQ(plan.totalBytes, 400u);
    ASSERT_EQ(plan.evict.size(), 2u);  // oldest two of four
    EXPECT_EQ(plan.evictBytes, 200u);
    EXPECT_EQ(plan.keptFiles, 2u);
    EXPECT_EQ(fs::path(plan.evict[0].path).filename().string(),
              "a.vprr");
    EXPECT_EQ(fs::path(plan.evict[1].path).filename().string(),
              "b.vprck");

    EXPECT_EQ(applyCacheGc(plan), 2u);
    EXPECT_FALSE(fs::exists(dir + "/a.vprr"));
    EXPECT_TRUE(fs::exists(dir + "/c.vprr"));
    EXPECT_TRUE(fs::exists(dir + "/notes.txt"));

    // Under budget: nothing to do. Missing directory: skipped quietly.
    EXPECT_TRUE(planCacheGc({dir}, 1 << 20).evict.empty());
    EXPECT_TRUE(planCacheGc({dir + "/missing"}, 0).evict.empty());

    std::ostringstream os;
    printCacheGcPlan(os, plan, 250, /*dryRun=*/true);
    EXPECT_NE(os.str().find("would evict"), std::string::npos);
}

TEST(ResultCacheGc, ParseByteSize)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseByteSize("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseByteSize("1234", v));
    EXPECT_EQ(v, 1234u);
    EXPECT_TRUE(parseByteSize("4K", v));
    EXPECT_EQ(v, 4096u);
    EXPECT_TRUE(parseByteSize("2m", v));
    EXPECT_EQ(v, 2u << 20);
    EXPECT_TRUE(parseByteSize("3G", v));
    EXPECT_EQ(v, 3ull << 30);
    EXPECT_TRUE(parseByteSize("1T", v));
    EXPECT_EQ(v, 1ull << 40);
    EXPECT_FALSE(parseByteSize("", v));
    EXPECT_FALSE(parseByteSize("K", v));
    EXPECT_FALSE(parseByteSize("12Q", v));
    EXPECT_FALSE(parseByteSize("-5", v));
    EXPECT_FALSE(parseByteSize("999999999999999999G", v));
}

} // namespace
} // namespace vpr
