/**
 * @file
 * cache_gc — garbage-collect the on-disk simulation caches.
 *
 * Enforces a byte budget over warm-state checkpoint (*.vprck) and
 * result-cache (*.vprr) files by LRU on file mtime: the
 * least-recently-written files are deleted until what remains fits the
 * budget. Both caches are pure re-computable optimizations, so eviction
 * only ever costs re-simulation, never correctness.
 *
 * Usage:
 *   cache_gc --budget=<size>[K|M|G|T] [--dry-run] <dir> [<dir>...]
 *
 * The budget spans all listed directories together (the same pass
 * vpr_simd runs at startup with --cache-budget). --dry-run prints the
 * eviction plan without deleting anything.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/result_cache.hh"

using namespace vpr;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " --budget=<size>[K|M|G|T] [--dry-run] <dir> "
                 "[<dir>...]\n"
                 "evicts *.vprck / *.vprr cache files, least recently "
                 "written first,\nuntil the remaining files fit the "
                 "budget\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t budget = 0;
    bool haveBudget = false;
    bool dryRun = false;
    std::vector<std::string> dirs;

    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--budget=", 9) == 0) {
            if (!parseByteSize(argv[i] + 9, budget)) {
                std::cerr << "bad --budget '" << (argv[i] + 9)
                          << "' (want bytes with an optional K/M/G/T "
                             "suffix)\n";
                return 1;
            }
            haveBudget = true;
        } else if (std::strcmp(argv[i], "--dry-run") == 0) {
            dryRun = true;
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
        } else {
            dirs.push_back(argv[i]);
        }
    }
    if (!haveBudget || dirs.empty())
        usage(argv[0]);

    const CacheGcPlan plan = planCacheGc(dirs, budget);
    printCacheGcPlan(std::cout, plan, budget, dryRun);
    if (!dryRun) {
        const std::size_t removed = applyCacheGc(plan);
        if (removed != plan.evict.size())
            std::cerr << "cache_gc: removed " << removed << " of "
                      << plan.evict.size()
                      << " planned files (some vanished concurrently)\n";
    }
    return 0;
}
