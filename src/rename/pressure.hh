/**
 * @file
 * Register-pressure instrumentation.
 *
 * The paper quantifies register pressure as "the sum of the number of
 * cycles that a register is allocated for each produced value" (section
 * 3.1). This tracker integrates exactly that: every physical-register
 * allocation/free pair contributes its holding time. It also tracks the
 * instantaneous number of busy registers and its peak.
 */

#ifndef VPR_RENAME_PRESSURE_HH
#define VPR_RENAME_PRESSURE_HH

#include <cstdint>
#include <vector>

#include "common/state.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/reg.hh"

namespace vpr
{

/** Tracks physical-register holding times for one register class. */
class PressureTracker
{
  public:
    /**
     * @param numPhysRegs registers in the class's file
     * @param lifetimeDist optional distribution sampled with the holding
     *        time (cycles) of every completed alloc/free pair
     */
    explicit PressureTracker(std::size_t numPhysRegs,
                             stats::Distribution *lifetimeDist = nullptr);

    /** A physical register was taken from the free pool. */
    void onAlloc(PhysRegId reg, Cycle now);

    /** A physical register was returned to the free pool. */
    void onFree(PhysRegId reg, Cycle now);

    /** Number of registers currently allocated. */
    std::size_t busy() const { return nBusy; }

    /** Largest number simultaneously allocated. */
    std::size_t peakBusy() const { return peak; }

    /** Total register-cycles over all completed allocations. */
    std::uint64_t totalHoldCycles() const { return holdCycles; }

    /** Number of completed alloc/free pairs. */
    std::uint64_t completedAllocations() const { return nFrees; }

    /** Mean holding time per value (cycles). */
    double
    meanHoldCycles() const
    {
        return nFrees ? static_cast<double>(holdCycles) /
                            static_cast<double>(nFrees)
                      : 0.0;
    }

    void reset(Cycle now);

    /** Return to the constructed state — every register free, integrals
     *  zeroed (simulator reuse between grid cells). Distinct from
     *  reset(), which starts a measurement interval with live
     *  allocations carried over. */
    void
    clear()
    {
        allocCycle.assign(allocCycle.size(), kNoCycle);
        nBusy = 0;
        peak = 0;
        holdCycles = 0;
        nFrees = 0;
    }

    /** Serialize/restore live allocation stamps + whole-run integrals.
     *  Architectural mappings stay allocated across a drained point, so
     *  the alloc-cycle stamps are genuinely live state. */
    void
    visitState(StateVisitor &v)
    {
        v.section("pressure");
        v.fixedVec(allocCycle);
        v.value(nBusy);
        v.value(peak);
        v.value(holdCycles);
        v.value(nFrees);
    }

  private:
    std::vector<Cycle> allocCycle;  ///< kNoCycle when free
    stats::Distribution *lifetime;  ///< may be null
    std::size_t nBusy = 0;
    std::size_t peak = 0;
    std::uint64_t holdCycles = 0;
    std::uint64_t nFrees = 0;
};

} // namespace vpr

#endif // VPR_RENAME_PRESSURE_HH
