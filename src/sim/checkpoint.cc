#include "sim/checkpoint.hh"

#include <cstring>

#include "sim/params.hh"

namespace vpr
{

namespace
{

/** Warm-relevant provenance keys for a Functional-scope checkpoint:
 *  exactly what a functional fast-forward warms. The trace stream is
 *  keyed by "seed" and the stream identity; the warmed structures by
 *  the BHT geometry and the whole cache subtree. */
bool
functionalKey(const std::string &name)
{
    return name == "seed" || name == "skip_insts" ||
           name == "sim.sampling.functional_warming" ||
           name == "core.fetch.bht_entries" ||
           name.rfind("core.cache.", 0) == 0;
}

/** Full-scope checkpoints depend on everything that shapes the warm-up
 *  except the measurement length, which begins after the checkpoint. */
bool
fullKey(const std::string &name)
{
    return name != "measure_insts";
}

} // namespace

std::uint64_t
warmStateDigest(const SimConfig &cfg, const std::string &benchmark,
                const std::string &streamIdentity, CkptScope scope)
{
    const char *tag = ckptScopeName(scope);
    std::uint64_t h = fnv1a(tag, std::strlen(tag));
    const std::uint64_t version = kStateFormatVersion;
    h = fnv1a(&version, sizeof(version), h);
    for (const auto &[name, value] : configProvenance(cfg)) {
        if (scope == CkptScope::Functional ? !functionalKey(name)
                                           : !fullKey(name))
            continue;
        const std::string line = name + "=" + value + "\n";
        h = fnv1a(line.data(), line.size(), h);
    }
    h = fnv1a(benchmark.data(), benchmark.size(), h);
    h = fnv1a(streamIdentity.data(), streamIdentity.size(), h);
    return h;
}

std::string
checkpointPath(const std::string &dir, const std::string &benchmark,
               CkptScope scope, std::uint64_t digest)
{
    static const char *hex = "0123456789abcdef";
    std::string name;
    for (int shift = 60; shift >= 0; shift -= 4)
        name += hex[(digest >> shift) & 0xf];
    return dir + "/" + benchmark + "-" + ckptScopeName(scope) + "-" +
           name + ".vprck";
}

} // namespace vpr
