/** @file Unit tests for the integer-math helpers. */

#include <gtest/gtest.h>

#include "common/intmath.hh"

namespace vpr
{
namespace
{

TEST(IntMath, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(IntMath, RoundUpDown)
{
    EXPECT_EQ(roundUp(0, 32), 0u);
    EXPECT_EQ(roundUp(1, 32), 32u);
    EXPECT_EQ(roundUp(32, 32), 32u);
    EXPECT_EQ(roundDown(31, 32), 0u);
    EXPECT_EQ(roundDown(33, 32), 32u);
}

TEST(IntMath, PaperGmtWidthExample)
{
    // Section 3.2.1: GMT rows are log2(NVR) + log2(NPR) + 1 bits. For
    // NVR = 160 and NPR = 64 that is 8 + 6 + 1 = 15 bits.
    EXPECT_EQ(ceilLog2(160) + ceilLog2(64) + 1, 15u);
}

} // namespace
} // namespace vpr
