/**
 * @file
 * Register-pressure figure: occupancy and lifetime distributions per
 * rename scheme across a register-file size sweep — the data behind the
 * paper's wasted-register motivation. Grid/table: bench/figures/.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("regpressure", argc, argv);
}
