/**
 * @file
 * The out-of-order core: an 8-wide dynamically scheduled processor with
 * precise exceptions, matching section 4.1 of the paper.
 *
 * Core is a thin composition root. The pipeline logic lives in five
 * stage classes under core/stages/ behind the common Stage interface;
 * Core owns the shared PipelineState, the inter-stage latches, and the
 * stage graph, and ticks the stages back to front (one call to tick() =
 * one cycle) so same-cycle producer→consumer wakeups behave like a
 * bypass network:
 *
 *   commit  — up to commitWidth in-order retires; stores write the
 *             cache; the renamer frees the previous mapping.
 *   complete— completion events fire: write-back allocation happens
 *             here (VP write-back policy may squash back to the IQ);
 *             values broadcast to the IQ; mispredicted branches trigger
 *             the recovery walk and fetch redirect.
 *   issue   — oldest-first select over ready IQ entries constrained by
 *             FUs, register-file read ports, cache ports, memory
 *             disambiguation and the renamer's issue gate.
 *   rename  — drains the fetch buffer into ROB/IQ/LSQ through the
 *             RenameManager.
 *   fetch   — fills the fetch buffer from the trace.
 */

#ifndef VPR_CORE_CORE_HH
#define VPR_CORE_CORE_HH

#include <array>
#include <memory>

#include "core/core_config.hh"
#include "core/stages/commit_stage.hh"
#include "core/stages/complete_stage.hh"
#include "core/stages/fetch_stage.hh"
#include "core/stages/issue_stage.hh"
#include "core/stages/latches.hh"
#include "core/stages/pipeline_state.hh"
#include "core/stages/rename_stage.hh"
#include "core/stages/stage.hh"
#include "rename/factory.hh"

namespace vpr
{

/** Counters reported after a run (deltas since the last resetStats). */
struct CoreStatsSnapshot
{
    Cycle cycles = 0;
    std::uint64_t committed = 0;
    std::uint64_t committedExecutions = 0; ///< issues of committed insts
    std::uint64_t issued = 0;
    std::uint64_t squashed = 0;
    std::uint64_t wbRejections = 0;  ///< VP write-back denials
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t renameStallReg = 0;
    std::uint64_t renameStallRob = 0;
    std::uint64_t renameStallIq = 0;
    std::uint64_t renameStallLsq = 0;
    std::uint64_t storeCommitStalls = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheAccesses = 0;
    double avgBusyIntRegs = 0.0;
    double avgBusyFpRegs = 0.0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committed) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Mean executions per committed instruction (re-execution factor,
     *  ~1.0 for schemes without write-back squashes). */
    double
    executionsPerCommit() const
    {
        return committed ? static_cast<double>(committedExecutions) /
                               static_cast<double>(committed)
                         : 0.0;
    }
};

/** One simulated out-of-order core: state + latches + stage graph. */
class Core : public SquashCoordinator
{
  public:
    Core(TraceStream &stream, const CoreConfig &config);

    /** Advance one cycle. @return false once the pipeline has drained. */
    bool tick();

    /** Run until @p maxCommitted instructions committed (or done). */
    void runUntilCommitted(std::uint64_t maxCommitted);

    Cycle cycle() const { return state.curCycle; }
    std::uint64_t committedInsts() const { return commit.committedTotal(); }
    bool done() const;

    /** Start a measurement interval: zero all delta counters. */
    void resetStats();

    /** Counters accumulated since the last resetStats(). */
    CoreStatsSnapshot snapshot() const;

    /** True if a completion event for @p seq is pending (tests/debug). */
    bool
    hasPendingEvent(InstSeqNum seq) const
    {
        return completions.pendingFor(seq);
    }

    /** SquashCoordinator: recovery walk over the shared structures,
     *  then fan the squash out to every stage's private state. */
    void squashYoungerThan(InstSeqNum youngestKept) override;

    /** The stage graph in tick order, back (commit) to front (fetch). */
    const std::array<Stage *, 5> &stages() const { return stageGraph; }

    /** Component access (tests / detailed reporting). @{ */
    const Rob &rob() const { return state.rob; }
    const InstQueue &iq() const { return state.iq; }
    const Lsq &lsq() const { return state.lsq; }
    const NonBlockingCache &cache() const { return state.cache; }
    const FetchUnit &fetchUnit() const { return state.fetch; }
    const RenameManager &renamer() const { return *state.renameMgr; }
    RenameManager &renamer() { return *state.renameMgr; }
    const FuPool &fuPool() const { return state.fus; }
    const CoreConfig &config() const { return state.cfg; }
    /** @} */

  private:
    PipelineState state;

    // Inter-stage latches/ports (see stages/latches.hh).
    CompletionQueue completions;
    FetchBufferPort fetchBuffer;
    FetchRedirectPort fetchRedirect;

    // The stages, back to front.
    CommitStage commit;
    CompleteStage complete;
    IssueStage issue;
    RenameStage rename;
    FetchStage fetchStage;
    std::array<Stage *, 5> stageGraph;

    // Interval baselines for state-level counters (stage counters are
    // baselined inside the stages themselves).
    Cycle baseCycles = 0;
    std::uint64_t baseSquashed = 0;
    std::uint64_t baseCacheMisses = 0;
    std::uint64_t baseCacheAccesses = 0;
    double baseBusyIntRegsSum = 0.0;
    double baseBusyFpRegsSum = 0.0;

    // Busy-register integrals, sampled once per cycle.
    double busyIntRegsSum = 0.0;
    double busyFpRegsSum = 0.0;
};

} // namespace vpr

#endif // VPR_CORE_CORE_HH
