/**
 * @file
 * Property tests for the lockup-free cache: random access streams must
 * preserve timing and accounting invariants for any geometry.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.hh"
#include "memory/cache.hh"

namespace vpr
{
namespace
{

struct Geometry
{
    std::uint64_t size;
    unsigned assoc;
    unsigned mshrs;
};

class CachePropertyTest
    : public ::testing::TestWithParam<std::tuple<Geometry, std::uint64_t>>
{
};

TEST_P(CachePropertyTest, RandomStreamInvariants)
{
    const auto &[geo, seed] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = geo.size;
    cfg.lineSize = 32;
    cfg.assoc = geo.assoc;
    cfg.numMshrs = geo.mshrs;
    NonBlockingCache cache(cfg);
    Random rng(seed);

    Cycle now = 0;
    std::uint64_t demand = 0;
    for (int i = 0; i < 20000; ++i) {
        now += rng.below(3);
        Addr addr = 0x100000 + rng.below(1 << 14);
        bool write = rng.chancePermille(300);
        auto r = cache.access(addr, write, now);

        switch (r.outcome) {
          case CacheOutcome::Hit:
            // Hits complete exactly one hit latency later.
            ASSERT_EQ(r.readyCycle, now + cfg.hitLatency);
            ++demand;
            break;
          case CacheOutcome::Miss:
            // A miss can never be faster than the raw penalty nor
            // earlier than a hit.
            ASSERT_GE(r.readyCycle, now + cfg.missPenalty);
            ++demand;
            break;
          case CacheOutcome::MergedMiss:
            ASSERT_GE(r.readyCycle, now + cfg.hitLatency);
            ++demand;
            break;
          case CacheOutcome::Blocked:
            // Blocked requires a full MSHR file.
            ASSERT_EQ(cache.mshrs().size(), cfg.numMshrs);
            break;
        }
        // MSHR occupancy never exceeds the configured limit.
        ASSERT_LE(cache.mshrs().size(), cfg.numMshrs);
    }

    // Accounting: outcomes partition demand accesses.
    EXPECT_EQ(cache.accesses(), demand);
    EXPECT_EQ(cache.hits() + cache.misses() + cache.mergedMisses(),
              demand);
    EXPECT_GE(cache.missRate(), 0.0);
    EXPECT_LE(cache.missRate(), 1.0);
}

TEST_P(CachePropertyTest, RepeatedLineEventuallyHits)
{
    const auto &[geo, seed] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = geo.size;
    cfg.assoc = geo.assoc;
    cfg.numMshrs = geo.mshrs;
    NonBlockingCache cache(cfg);

    cache.access(0x5000, false, 0);
    auto r = cache.access(0x5000, false, 1000);
    EXPECT_EQ(r.outcome, CacheOutcome::Hit);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CachePropertyTest,
    ::testing::Combine(
        ::testing::Values(Geometry{1024, 1, 2}, Geometry{4096, 1, 8},
                          Geometry{4096, 2, 4}, Geometry{16384, 1, 8},
                          Geometry{16384, 4, 8}),
        ::testing::Values(1ull, 42ull, 0xdeadull)),
    [](const auto &info) {
        const Geometry &geo = std::get<0>(info.param);
        return "sz" + std::to_string(geo.size) + "w" +
               std::to_string(geo.assoc) + "m" +
               std::to_string(geo.mshrs) + "s" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace vpr
