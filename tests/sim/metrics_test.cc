/** @file Unit tests for MetricsRecord and its StatGroup plumbing. */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "sim/metrics.hh"

namespace vpr
{
namespace
{

TEST(MetricsRecord, KeepsInsertionOrder)
{
    MetricsRecord m;
    m.setUInt("b.two", "", 2);
    m.setReal("a.one", "", 1.0);
    m.setUInt("c.three", "", 3);
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m.all()[0].name(), "b.two");
    EXPECT_EQ(m.all()[1].name(), "a.one");
    EXPECT_EQ(m.all()[2].name(), "c.three");
}

TEST(MetricsRecord, LookupByName)
{
    MetricsRecord m;
    m.setUInt("core.cycles", "cycles", 100);
    m.setReal("core.ipc", "ipc", 1.5);
    EXPECT_TRUE(m.has("core.cycles"));
    EXPECT_FALSE(m.has("core.nope"));
    EXPECT_EQ(m.counter("core.cycles"), 100u);
    EXPECT_DOUBLE_EQ(m.real("core.ipc"), 1.5);
    // real() works on UInt metrics too; counter() truncates reals.
    EXPECT_DOUBLE_EQ(m.real("core.cycles"), 100.0);
    EXPECT_EQ(m.counter("core.ipc"), 1u);
    // Missing names read as zero.
    EXPECT_EQ(m.counter("core.nope"), 0u);
    EXPECT_DOUBLE_EQ(m.real("core.nope"), 0.0);
}

TEST(MetricsRecord, OverwriteKeepsPosition)
{
    MetricsRecord m;
    m.setUInt("x", "", 1);
    m.setUInt("y", "", 2);
    m.setReal("x", "", 9.5);
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m.all()[0].name(), "x");
    EXPECT_DOUBLE_EQ(m.real("x"), 9.5);
}

TEST(MetricsRecord, SameSchemaComparesNamesAndOrder)
{
    MetricsRecord a, b, c;
    a.setUInt("one", "", 1);
    a.setUInt("two", "", 2);
    b.setUInt("one", "", 7);
    b.setUInt("two", "", 8);
    c.setUInt("two", "", 2);
    c.setUInt("one", "", 1);
    EXPECT_TRUE(a.sameSchema(b));
    EXPECT_FALSE(a.sameSchema(c));  // same names, different order
}

TEST(MetricsRecord, PopulatedByVisitingStatGroups)
{
    stats::StatGroup g("core");
    stats::Scalar cycles("cycles", "elapsed");
    cycles.set(42);
    stats::Real ipc("ipc", "rate");
    ipc.set(1.25);
    g.add(&cycles);
    g.add(&ipc);

    MetricsRecord m;
    g.visit(m);
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m.counter("core.cycles"), 42u);
    EXPECT_DOUBLE_EQ(m.real("core.ipc"), 1.25);
    EXPECT_EQ(m.all()[0].desc(), "elapsed");
}

TEST(MetricsRecord, RevisitOverwritesInAnyOrder)
{
    // Sampled runs revisit one record per measurement interval; the
    // in-order revisit takes the cursor fast path, but correctness
    // must not depend on arrival order.
    MetricsRecord m;
    m.setUInt("a", "", 1);
    m.setUInt("b", "", 2);
    m.setUInt("c", "", 3);
    // In-order revisit.
    m.setUInt("a", "", 10);
    m.setUInt("b", "", 20);
    m.setUInt("c", "", 30);
    // Out-of-order revisit.
    m.setUInt("c", "", 300);
    m.setUInt("a", "", 100);
    m.setUInt("b", "", 200);
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m.counter("a"), 100u);
    EXPECT_EQ(m.counter("b"), 200u);
    EXPECT_EQ(m.counter("c"), 300u);
    EXPECT_EQ(m.all()[0].name(), "a");
    EXPECT_EQ(m.all()[2].name(), "c");
}

TEST(Metric, TextRoundTripsExactly)
{
    auto &tab = stats::SymbolTable::global();
    Metric u{tab.intern("n"), tab.intern(""), Metric::Kind::UInt,
             1234567890123456789ull, 0.0};
    EXPECT_EQ(u.text(), "1234567890123456789");

    Metric r{tab.intern("r"), tab.intern(""), Metric::Kind::Real, 0, 0.0};
    r.rval = 1.0 / 3.0;
    double back = std::strtod(r.text().c_str(), nullptr);
    EXPECT_EQ(back, r.rval);  // bit-exact, not just close

    r.rval = 3.0;  // integral-valued real prints without a decimal point
    EXPECT_EQ(r.text(), "3");
}

} // namespace
} // namespace vpr
