/**
 * @file
 * Commit stage: up to commitWidth in-order retires per cycle; stores
 * write the data cache (needing a cache port and an unblocked cache);
 * the renamer frees the previous mapping of each retired destination.
 */

#ifndef VPR_CORE_STAGES_COMMIT_STAGE_HH
#define VPR_CORE_STAGES_COMMIT_STAGE_HH

#include "common/stats.hh"
#include "core/stages/pipeline_state.hh"
#include "core/stages/stage.hh"

namespace vpr
{

/** The commit/retire stage. */
class CommitStage : public Stage
{
  public:
    explicit CommitStage(PipelineState &state) : s(state)
    {
        group.add(&committed);
        group.add(&committedExecutions);
        group.add(&storeStalls);
        s.statsTree.add(&group);
    }

    const char *name() const override { return "commit"; }

    void tick() override;

    void
    squash(InstSeqNum) override
    {
        // Commit only ever touches the ROB head, which is never younger
        // than a resolving branch; nothing to recover.
    }

    /** Committed instructions since construction (monotonic; drives the
     *  run-until protocol across stat resets). */
    std::uint64_t committedTotal() const { return nCommittedTotal; }

    /** Zero the whole-run commit counter (simulator reuse between grid
     *  cells); the interval stats reset through the stats tree. */
    void reinit() { nCommittedTotal = 0; }

    /** Interval counters (reset through the stats tree). @{ */
    std::uint64_t committedInterval() const { return committed.value(); }
    std::uint64_t
    committedExecutionsInterval() const
    {
        return committedExecutions.value();
    }
    /** @} */

  private:
    PipelineState &s;
    std::uint64_t nCommittedTotal = 0;

    stats::StatGroup group{"commit"};
    stats::Scalar committed{"committed", "committed instructions"};
    stats::Scalar committedExecutions{
        "committed_executions", "issues of committed instructions"};
    stats::Scalar storeStalls{"store_stalls",
                              "commit stalls on store write"};
};

} // namespace vpr

#endif // VPR_CORE_STAGES_COMMIT_STAGE_HH
