/**
 * @file
 * Instruction queue with broadcast wakeup and oldest-first selection.
 *
 * Entries are the Figure-2 IQ fields, held inside DynInst (Src/R bits).
 * Completion broadcasts a (class, wakeup tag, physical register) triple;
 * matching sources capture the physical register and set their R bit —
 * exactly the paper's mechanism where a virtual-physical tag is replaced
 * by the allocated physical register. The conventional scheme broadcasts
 * physical tags and the capture is the identity.
 *
 * Wakeup is implemented with per-(class, tag) wait lists: a source that
 * enters the queue unready is recorded under its tag, and a broadcast
 * touches exactly the recorded waiters instead of scanning the whole
 * queue. Waiters that left the queue in the meantime (issue, squash)
 * are detected lazily via their sequence number and residency flag —
 * the same stale-entry idiom the CompletionQueue uses. The original
 * full-queue scan is kept behind setScanWakeup() as a reference
 * implementation; a determinism test asserts both paths produce
 * byte-identical results.
 *
 * Selection is event-driven the same way: the queue *publishes* an
 * instruction onto its ready list at the exact moment its last
 * issue-relevant source operand wakes (or at insert, if it arrives
 * ready). IssueStage drains the ready list each cycle instead of
 * walking the whole queue; entries that fail structural checks are
 * re-parked by the stage on per-resource stall lists. Stale ready
 * entries (issued/squashed/slot-reused) are dropped lazily via the
 * seq + inIq check; the DynInst::inReadyQ flag guarantees each
 * resident instruction is published at most once.
 */

#ifndef VPR_CORE_IQ_HH
#define VPR_CORE_IQ_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "core/dyn_inst.hh"
#include "isa/reg.hh"

namespace vpr
{

/** The unified instruction queue. */
class InstQueue
{
  public:
    InstQueue(std::size_t capacity, InstHotPool &hotPool)
        : cap(capacity), hot(hotPool),
          occupancy(stats::Distribution::evenBuckets(
              "occupancy", "entries occupied per cycle", 0, capacity, 16))
    {
        group.add(&occupancy);
        group.add(&broadcasts);
        group.add(&woken);
    }

    bool full() const { return list.size() >= cap; }
    bool empty() const { return list.empty(); }
    std::size_t size() const { return list.size(); }
    std::size_t capacity() const { return cap; }

    /**
     * Insert @p inst keeping age order. Newly renamed instructions go to
     * the back; re-inserted (squashed-at-writeback) instructions find
     * their place by sequence number. Unready sources are recorded in
     * the wakeup wait lists; an instruction whose issue operands are
     * already ready is published on the ready list.
     */
    void insert(DynInst *inst);

    /**
     * Remove a specific entry. The list is seq-ordered, so the entry is
     * located by binary search — O(log n) compare plus the erase shift,
     * not a linear scan.
     */
    void remove(DynInst *inst);

    /** Entry at age-order position @p i (0 = oldest). */
    DynInst *
    at(std::size_t i) const
    {
        return list[i];
    }

    /** Remove the entry at age-order position @p i — the legacy issue
     *  scan, where the caller already knows the position. */
    void removeAt(std::size_t i);

    /** Remove every entry younger than @p seq (branch recovery). */
    void squashYoungerThan(InstSeqNum seq);

    /**
     * Broadcast a completed value: sources of class @p cls waiting on
     * @p tag become ready and capture @p physReg. An instruction whose
     * last issue-relevant source wakes is published on the ready list.
     * @return number of source operands woken.
     */
    unsigned wakeup(RegClass cls, std::uint16_t tag, std::uint16_t physReg);

    /** Age-ordered entries, oldest first (the legacy selection scans
     *  this). */
    const std::vector<DynInst *> &entries() const { return list; }

    void clear();

    /** Use the legacy full-queue wakeup scan instead of the wait lists
     *  (reference path for the determinism test). Must be selected
     *  before the first insert. */
    void setScanWakeup(bool scan) { scanWakeup = scan; }

    /** Publish ready instructions for the event-driven issue stage
     *  (off when the legacy issue scan is selected, so the unconsumed
     *  ready list cannot grow without bound). Must be selected before
     *  the first insert. */
    void setTrackReady(bool track) { trackReady = track; }

    /**
     * Move this cycle's newly published ready instructions into
     * @p out (appended; publication order, not seq order — the issue
     * stage sorts its merged candidate list). Entries stay owned by the
     * scheduler (inReadyQ remains set) until they issue or vanish.
     */
    void
    drainReadyEvents(std::vector<ReadyRef> &out)
    {
        out.insert(out.end(), readyEvents.begin(), readyEvents.end());
        readyEvents.clear();
    }

    /** Record this cycle's occupancy (called once per cycle). */
    void sampleOccupancy() { occupancy.sample(list.size()); }

    /** Register the "iq" stat group into the core's stats tree. */
    void regStats(stats::StatRegistry &r) { r.add(&group); }

  private:
    /** Initial capacity of a tag's wait list, reserved on first use:
     *  large enough that a typical burst of dependents never grows the
     *  list (zero steady-state allocations), small enough that even a
     *  full VP tag space stays under ~1 MB of wait-list storage. */
    static constexpr std::size_t kWaitListReserve = 64;

    /** One recorded waiter: source @p srcIdx of @p inst, valid while
     *  the instruction (identified by seq) is still queue-resident. */
    struct Waiter
    {
        DynInst *inst;
        InstSeqNum seq;
        HotIdx slot;
        std::uint8_t srcIdx;
    };

    /** Record every unready source of @p inst in the wait lists. */
    void addWaiters(DynInst *inst);

    /** Publish @p inst on the ready list if it is issue-ready and not
     *  already owned by the scheduler. */
    void
    maybePublishReady(DynInst *inst)
    {
        if (!trackReady || inst->inReadyQ() || !inst->issueOperandsReady())
            return;
        inst->setInReadyQ(true);
        readyEvents.push_back(inst->ref());
    }

    std::size_t cap;
    InstHotPool &hot;
    std::vector<DynInst *> list;  ///< sorted by seq, oldest first
    /** Wait lists per register class, indexed by tag (grown on use). */
    std::vector<std::vector<Waiter>> waitLists[kNumRegClasses];
    /** Instructions published since the last drain (event-driven
     *  selection). */
    std::vector<ReadyRef> readyEvents;
    /** Reused storage for wakeup(): holds a copy of the tag's waiters
     *  while they are processed (the tag's own buffer is cleared, not
     *  swapped away, so its capacity stays with the tag). */
    std::vector<Waiter> wakeScratch;
    bool scanWakeup = false;
    bool trackReady = true;

    stats::StatGroup group{"iq"};
    stats::Distribution occupancy;
    stats::Scalar broadcasts{"wakeup_broadcasts",
                             "completion wakeup broadcasts"};
    stats::Scalar woken{"operands_woken",
                        "source operands woken by broadcasts"};
};

} // namespace vpr

#endif // VPR_CORE_IQ_HH
