#include "memory/mshr.hh"

#include "common/logging.hh"

namespace vpr
{

MshrFile::MshrFile(std::size_t entries) : capacity(entries)
{
    VPR_ASSERT(entries > 0, "MSHR file needs at least one entry");
    live.reserve(entries);
}

Mshr *
MshrFile::find(Addr lineAddr)
{
    for (auto &m : live)
        if (m.lineAddr == lineAddr)
            return &m;
    return nullptr;
}

Mshr &
MshrFile::allocate(Addr lineAddr, Cycle fillCycle)
{
    VPR_ASSERT(!full(), "allocate on full MSHR file");
    VPR_ASSERT(find(lineAddr) == nullptr, "duplicate MSHR for line");
    live.push_back(Mshr{lineAddr, fillCycle, false, 0, 1, false});
    if (fillCycle < earliestFill)
        earliestFill = fillCycle;
    return live.back();
}

} // namespace vpr
