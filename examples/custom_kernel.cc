/**
 * @file
 * Build a custom workload with the LoopTrace DSL and run it under every
 * renaming scheme.
 *
 * The kernel below is a sparse "gather-accumulate": random gathers from
 * a large table feed a dependent FP accumulation — a structure somewhere
 * between swim (streaming misses) and li (serial dependences). The
 * example shows the public workload-authoring API end to end: memory
 * streams, instruction templates, block CFG with counted and random
 * branches, and the simulation driver.
 */

#include <iostream>

#include "sim/simulator.hh"
#include "trace/loop_trace.hh"

using namespace vpr;

int
main()
{
    KernelDesc k;
    k.name = "gather-accumulate";
    k.seed = 0xa77e;

    // Memory streams: a 1 MB gather table (mostly missing in a 16 KB
    // L1) and a resident index vector.
    MemStreamDesc table;
    table.kind = MemStreamDesc::Kind::Random;
    table.base = 0x10000000;
    table.region = 1 << 20;

    MemStreamDesc index;
    index.kind = MemStreamDesc::Kind::Stride;
    index.base = 0x20001000;
    index.stride = 8;
    index.region = 4 << 10;

    k.streams = {table, index};

    // Inner block: gather, scale, accumulate.
    BlockDesc gather;
    gather.insts = {
        InstTemplate::loadFrom(1, RegId::intReg(10), RegId::intReg(1)),
        InstTemplate::loadFrom(0, RegId::fpReg(1), RegId::intReg(10)),
        InstTemplate::compute(OpClass::FpMult, RegId::fpReg(2),
                              RegId::fpReg(1), RegId::fpReg(20)),
        InstTemplate::compute(OpClass::FpAdd, RegId::fpReg(10),
                              RegId::fpReg(10), RegId::fpReg(2)),
        InstTemplate::compute(OpClass::IntAlu, RegId::intReg(1),
                              RegId::intReg(1), RegId::intReg(5)),
    };
    gather.branch.kind = BranchDesc::Kind::Loop;
    gather.branch.src = RegId::intReg(1);
    gather.branch.tripCount = 64;
    gather.branch.takenTarget = 0;
    gather.branch.fallThrough = 1;

    // Occasional reduction block with a divide.
    BlockDesc reduce;
    reduce.insts = {
        InstTemplate::compute(OpClass::FpDiv, RegId::fpReg(11),
                              RegId::fpReg(10), RegId::fpReg(21)),
        InstTemplate::compute(OpClass::IntAlu, RegId::intReg(2),
                              RegId::intReg(2), RegId::intReg(5)),
    };
    reduce.branch.kind = BranchDesc::Kind::Loop;
    reduce.branch.src = RegId::intReg(2);
    reduce.branch.tripCount = 8;
    reduce.branch.takenTarget = 0;
    reduce.branch.fallThrough = 0;

    k.blocks = {gather, reduce};
    k.validate();

    SimConfig config = paperConfig();
    config.skipInsts = 5000;
    config.measureInsts = 60000;
    config.core.fetch.wrongPath = WrongPathMode::Stall;

    std::cout << "custom kernel: " << k.name << "\n\n";
    for (RenameScheme s : {RenameScheme::Conventional,
                           RenameScheme::VPAllocAtIssue,
                           RenameScheme::VPAllocAtWriteback}) {
        config.setScheme(s);
        LoopTraceStream stream(k);
        Simulator sim(stream, config);
        SimResults r = sim.run();
        std::cout << renameSchemeName(s) << ": IPC = " << r.ipc()
                  << "  (miss rate " << r.cacheMissRate()
                  << ", exec/commit "
                  << r.executionsPerCommit() << ")\n";
    }
    return 0;
}
