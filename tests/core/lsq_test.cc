/**
 * @file
 * Unit tests for the LSQ and PA-8000-style disambiguation: the
 * address-indexed store table and the legacy reverse scan are run
 * through the same cases (parameterized), plus table-only edge cases
 * (line-boundary overlaps, squash/commit cleanup), the hold
 * subscription machinery, and a randomized table-vs-scan fuzz.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/lsq.hh"

namespace vpr
{
namespace
{

/** Shared hot-state pool for the file's standalone DynInsts; every
 *  instruction gets a fresh slot, so staleness checks behave as with
 *  the real ROB binding. */
void
bind(DynInst &d, InstSeqNum seq)
{
    static InstHotPool pool(1 << 16);
    static HotIdx next = 0;
    pool.reset(next);
    d.bindHot(&pool, next++);
    d.setSeq(seq);
}

DynInst
load(InstSeqNum seq, Addr addr, unsigned size = 8)
{
    DynInst d;
    d.si = StaticInst::load(RegId::intReg(1), RegId::intReg(2), addr);
    d.si.memSize = static_cast<std::uint8_t>(size);
    bind(d, seq);
    return d;
}

DynInst
store(InstSeqNum seq, Addr addr, unsigned size = 8)
{
    DynInst d;
    d.si = StaticInst::store(RegId::intReg(3), RegId::intReg(2), addr);
    d.si.memSize = static_cast<std::uint8_t>(size);
    bind(d, seq);
    return d;
}

/** Mark a store's address computed, visible from @p cycle, through the
 *  real protocol (the issue stage sets the fields then notifies). */
void
computeAddr(Lsq &lsq, DynInst &s, Cycle cycle)
{
    s.addrReady = true;
    s.addrReadyCycle = cycle;
    lsq.onStoreAddrComputed(&s);
}

/** Both disambiguation paths must pass every behavioural case. */
class LsqPaths : public ::testing::TestWithParam<bool>
{
  protected:
    void
    configure(Lsq &lsq)
    {
        lsq.setScanDisambig(GetParam());
    }
};

INSTANTIATE_TEST_SUITE_P(Paths, LsqPaths, ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "scan" : "table";
                         });

TEST_P(LsqPaths, LoadWithNoOlderStoresIsReady)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst l = load(1, 0x100);
    lsq.insert(&l);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Ready);
}

TEST_P(LsqPaths, LoadWaitsForUnknownStoreAddress)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst s = store(1, 0x100);
    DynInst l = load(2, 0x200);
    lsq.insert(&s);
    lsq.insert(&l);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::UnknownAddress);
    // Address computed but visible only in the future: still unknown at
    // cycle 10.
    computeAddr(lsq, s, 20);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::UnknownAddress);
    EXPECT_EQ(lsq.checkLoad(&l, 20), LoadHold::Ready);
}

TEST_P(LsqPaths, MatchingStoreForwards)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst s = store(1, 0x100);
    DynInst l = load(2, 0x100);
    lsq.insert(&s);
    lsq.insert(&l);
    computeAddr(lsq, s, 5);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Forward);
}

TEST_P(LsqPaths, ContainedAccessForwards)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst s = store(1, 0x100, 8);
    DynInst l = load(2, 0x104, 4);  // inside the store's 8 bytes
    lsq.insert(&s);
    lsq.insert(&l);
    computeAddr(lsq, s, 0);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Forward);
}

TEST_P(LsqPaths, PartialOverlapHolds)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst s = store(1, 0x104, 4);
    DynInst l = load(2, 0x100, 8);  // covers more than the store wrote
    lsq.insert(&s);
    lsq.insert(&l);
    computeAddr(lsq, s, 0);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::PartialOverlap);
}

TEST_P(LsqPaths, NearestStoreWins)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst s1 = store(1, 0x100);
    DynInst s2 = store(2, 0x100);
    DynInst l = load(3, 0x100);
    lsq.insert(&s1);
    lsq.insert(&s2);
    lsq.insert(&l);
    computeAddr(lsq, s1, 0);
    // Only the older store's address is known: the younger one blocks
    // even though s1 matches.
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::UnknownAddress);
    computeAddr(lsq, s2, 0);
    // Forward (from s2, the youngest older store).
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Forward);
}

TEST_P(LsqPaths, YoungerStoresDoNotAffectLoad)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst l = load(1, 0x100);
    DynInst s = store(2, 0x100);
    lsq.insert(&l);
    lsq.insert(&s);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Ready);
}

TEST_P(LsqPaths, DisjointStoresIgnored)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst s = store(1, 0x200);
    DynInst l = load(2, 0x100);
    lsq.insert(&s);
    lsq.insert(&l);
    computeAddr(lsq, s, 0);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Ready);
}

TEST_P(LsqPaths, DecisiveStoreIsReported)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst s1 = store(1, 0x100);
    DynInst s2 = store(2, 0x300);
    DynInst l = load(3, 0x100);
    lsq.insert(&s1);
    lsq.insert(&s2);
    lsq.insert(&l);
    computeAddr(lsq, s1, 0);
    // s2 (younger, unknown) decides, and is reported as the blocker.
    LoadCheck chk = lsq.disambiguate(&l, 10);
    EXPECT_EQ(chk.hold, LoadHold::UnknownAddress);
    EXPECT_EQ(chk.blocker, &s2);
    computeAddr(lsq, s2, 5);
    chk = lsq.disambiguate(&l, 10);
    EXPECT_EQ(chk.hold, LoadHold::Forward);
    EXPECT_EQ(chk.blocker, &s1);
}

// --- disambiguation-line edge cases ---------------------------------------

TEST_P(LsqPaths, PartialOverlapAcrossLineBoundary)
{
    // The store straddles the 16-byte disambiguation-line boundary at
    // 0x100; the load lives in the second line only and overlaps the
    // store's tail without being contained.
    Lsq lsq(8);
    configure(lsq);
    DynInst s = store(1, 0xFC, 8);  // [0xFC, 0x104)
    DynInst l = load(2, 0x100, 8);  // [0x100, 0x108)
    lsq.insert(&s);
    lsq.insert(&l);
    computeAddr(lsq, s, 0);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::PartialOverlap);
}

TEST_P(LsqPaths, ForwardAcrossLineBoundary)
{
    // Both the store and the contained load straddle the boundary; the
    // load appears in two line buckets and must still resolve once.
    Lsq lsq(8);
    configure(lsq);
    DynInst s = store(1, 0xFC, 8);  // [0xFC, 0x104)
    DynInst l = load(2, 0xFE, 4);   // [0xFE, 0x102) — contained
    lsq.insert(&s);
    lsq.insert(&l);
    computeAddr(lsq, s, 0);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Forward);
}

TEST_P(LsqPaths, AdjacentLinesDoNotFalseAlias)
{
    // Same 16-byte line neighbourhood, no byte overlap: the line-granular
    // table must not report a conflict the scan would not.
    Lsq lsq(8);
    configure(lsq);
    DynInst s = store(1, 0x100, 4);  // [0x100, 0x104)
    DynInst l = load(2, 0x104, 4);   // [0x104, 0x108): same line
    lsq.insert(&s);
    lsq.insert(&l);
    computeAddr(lsq, s, 0);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Ready);
}

TEST_P(LsqPaths, ForwardThenStoreSquashed)
{
    // A store forwards; branch recovery squashes it (and the load).
    // A fresh load at the same address must not see the dead store
    // through a stale table entry.
    Lsq lsq(8);
    configure(lsq);
    DynInst s = store(2, 0x100);
    DynInst l = load(3, 0x100);
    lsq.insert(&s);
    lsq.insert(&l);
    computeAddr(lsq, s, 0);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Forward);
    lsq.squashYoungerThan(1);
    EXPECT_TRUE(lsq.empty());
    DynInst l2 = load(4, 0x100);
    lsq.insert(&l2);
    EXPECT_EQ(lsq.checkLoad(&l2, 12), LoadHold::Ready);
}

TEST_P(LsqPaths, CommittedStoreClearsItsHold)
{
    // A partial-overlap hold clears the cycle the store leaves the
    // queue at commit.
    Lsq lsq(8);
    configure(lsq);
    DynInst s = store(1, 0x104, 4);
    DynInst l = load(2, 0x100, 8);
    lsq.insert(&s);
    lsq.insert(&l);
    computeAddr(lsq, s, 0);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::PartialOverlap);
    lsq.remove(&s);
    EXPECT_EQ(lsq.checkLoad(&l, 10), LoadHold::Ready);
}

TEST_P(LsqPaths, SquashDropsYoungest)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst a = load(1, 0x100), b = store(5, 0x200), c = load(9, 0x300);
    lsq.insert(&a);
    lsq.insert(&b);
    lsq.insert(&c);
    lsq.squashYoungerThan(5);
    EXPECT_EQ(lsq.size(), 2u);
    EXPECT_EQ(lsq.entries().back()->seq(), 5u);
}

TEST_P(LsqPaths, RemoveAtCommit)
{
    Lsq lsq(8);
    configure(lsq);
    DynInst a = load(1, 0x100), b = load(2, 0x200);
    lsq.insert(&a);
    lsq.insert(&b);
    lsq.remove(&a);
    EXPECT_EQ(lsq.size(), 1u);
    EXPECT_EQ(lsq.entries().front()->seq(), 2u);
}

// --- hold subscriptions ---------------------------------------------------

TEST(LsqHolds, UnknownHoldReleasesWhenAddressBecomesVisible)
{
    Lsq lsq(8);
    DynInst s = store(1, 0x100);
    DynInst l = load(2, 0x100);
    lsq.insert(&s);
    lsq.insert(&l);
    l.setInIq(true);

    LoadCheck chk = lsq.disambiguate(&l, 5);
    ASSERT_EQ(chk.hold, LoadHold::UnknownAddress);
    lsq.subscribeHold(&l, chk.blocker, chk.hold);

    std::vector<ReadyRef> out;
    lsq.takeReadyHolds(5, out);
    EXPECT_TRUE(out.empty());

    // The store computes its address at cycle 5; visible from cycle 6.
    computeAddr(lsq, s, 6);
    lsq.takeReadyHolds(5, out);
    EXPECT_TRUE(out.empty());
    lsq.takeReadyHolds(6, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &l);
    EXPECT_EQ(out[0].seq, l.seq());
    // One-shot: nothing left pending.
    out.clear();
    lsq.takeReadyHolds(9, out);
    EXPECT_TRUE(out.empty());
}

TEST(LsqHolds, SubscriptionAfterSameCycleAddressComputationStillFires)
{
    // The store issues earlier in the same cycle as the load's attempt:
    // its release event has already fired when the load subscribes, so
    // the subscription must park directly on the pending list.
    Lsq lsq(8);
    DynInst s = store(1, 0x100);
    DynInst l = load(2, 0x100);
    lsq.insert(&s);
    lsq.insert(&l);
    l.setInIq(true);

    computeAddr(lsq, s, 6);  // issued at cycle 5, visible at 6
    LoadCheck chk = lsq.disambiguate(&l, 5);
    ASSERT_EQ(chk.hold, LoadHold::UnknownAddress);
    ASSERT_EQ(chk.blocker, &s);
    lsq.subscribeHold(&l, chk.blocker, chk.hold);

    std::vector<ReadyRef> out;
    lsq.takeReadyHolds(6, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &l);
}

TEST(LsqHolds, PartialHoldReleasesAtCommit)
{
    Lsq lsq(8);
    DynInst s = store(1, 0x104, 4);
    DynInst l = load(2, 0x100, 8);
    lsq.insert(&s);
    lsq.insert(&l);
    l.setInIq(true);

    computeAddr(lsq, s, 0);
    LoadCheck chk = lsq.disambiguate(&l, 5);
    ASSERT_EQ(chk.hold, LoadHold::PartialOverlap);
    lsq.subscribeHold(&l, chk.blocker, chk.hold);

    std::vector<ReadyRef> out;
    lsq.takeReadyHolds(20, out);
    EXPECT_TRUE(out.empty());  // address visibility does not release it

    lsq.remove(&s);  // commit
    lsq.takeReadyHolds(20, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &l);
}

TEST(LsqHolds, SquashedBlockerDropsItsSubscribers)
{
    Lsq lsq(8);
    DynInst s = store(2, 0x100);
    DynInst l = load(3, 0x100);
    lsq.insert(&s);
    lsq.insert(&l);
    l.setInIq(true);

    LoadCheck chk = lsq.disambiguate(&l, 5);
    lsq.subscribeHold(&l, chk.blocker, chk.hold);
    lsq.squashYoungerThan(1);  // kills blocker and subscriber

    std::vector<ReadyRef> out;
    lsq.takeReadyHolds(100, out);
    EXPECT_TRUE(out.empty());
}

// --- statistics and invariants --------------------------------------------

TEST(Lsq, HoldStatsAccumulate)
{
    Lsq lsq(8);
    lsq.recordHold(LoadHold::Forward);
    lsq.recordHold(LoadHold::UnknownAddress);
    lsq.recordHold(LoadHold::UnknownAddress);
    lsq.recordHold(LoadHold::PartialOverlap);
    lsq.recordHold(LoadHold::Ready);  // not counted
    EXPECT_EQ(lsq.forwards(), 1u);
    EXPECT_EQ(lsq.unknownAddrHolds(), 2u);
    EXPECT_EQ(lsq.partialOverlapHolds(), 1u);
}

TEST(LsqDeath, OutOfOrderInsertPanics)
{
    Lsq lsq(8);
    DynInst a = load(5, 0x100), b = load(3, 0x200);
    lsq.insert(&a);
    EXPECT_DEATH(lsq.insert(&b), "program order");
}

TEST(LsqDeath, NonMemInsertPanics)
{
    Lsq lsq(8);
    DynInst d;
    d.si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                           RegId::intReg(3));
    bind(d, 1);
    EXPECT_DEATH(lsq.insert(&d), "non-memory");
}

// --- randomized table-vs-scan fuzz ----------------------------------------

TEST(LsqFuzz, TableMatchesScanOnRandomStimulus)
{
    // Drive a table-mode and a scan-mode LSQ with an identical
    // pseudo-random stream of inserts, address computations, commits
    // and squashes (sharing the DynInst pool — neither path mutates the
    // instructions), and require every resident load to disambiguate
    // identically, blocker included, at every step.
    Lsq table(64);
    Lsq scan(64);
    scan.setScanDisambig(true);

    std::vector<DynInst> pool;
    pool.reserve(4096);
    std::vector<DynInst *> live;  // mirrors the queues, oldest first

    std::uint64_t rng = 0x2545f4914f6cdd1dull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    InstSeqNum seq = 0;
    Cycle now = 10;
    for (int step = 0; step < 4000; ++step) {
        std::uint64_t r = next();
        switch (r % 8) {
          case 0:
          case 1:
          case 2: {  // insert a load or store
            if (pool.size() == pool.capacity() || table.full())
                break;
            Addr addr = 0x1000 + (next() % 96);  // dense: real conflicts
            unsigned size = 1u << (next() % 4);  // 1/2/4/8 bytes
            pool.push_back((next() & 1) ? store(++seq, addr, size)
                                        : load(++seq, addr, size));
            DynInst *d = &pool.back();
            table.insert(d);
            scan.insert(d);
            live.push_back(d);
            break;
          }
          case 3: {  // a random unknown store computes its address
            std::vector<DynInst *> unknown;
            for (DynInst *d : live)
                if (d->isStore() && !d->addrReady)
                    unknown.push_back(d);
            if (unknown.empty())
                break;
            DynInst *s = unknown[next() % unknown.size()];
            s->addrReady = true;
            s->addrReadyCycle = now + 1;
            table.onStoreAddrComputed(s);
            scan.onStoreAddrComputed(s);
            break;
          }
          case 4: {  // commit: remove the oldest entry
            if (live.empty())
                break;
            DynInst *d = live.front();
            table.remove(d);
            scan.remove(d);
            live.erase(live.begin());
            break;
          }
          case 5: {  // branch recovery: squash a random suffix
            if ((next() & 3) != 0 || live.empty())
                break;
            InstSeqNum keep = live[next() % live.size()]->seq();
            table.squashYoungerThan(keep);
            scan.squashYoungerThan(keep);
            while (!live.empty() && live.back()->seq() > keep)
                live.pop_back();
            break;
          }
          default:
            ++now;
            break;
        }

        ASSERT_EQ(table.size(), scan.size());
        for (DynInst *d : live) {
            if (!d->isLoad())
                continue;
            LoadCheck a = table.disambiguate(d, now);
            LoadCheck b = scan.disambiguate(d, now);
            ASSERT_EQ(a.hold, b.hold)
                << "load sn:" << d->seq() << " at cycle " << now;
            ASSERT_EQ(a.blocker, b.blocker)
                << "load sn:" << d->seq() << " at cycle " << now;
        }
    }
}

} // namespace
} // namespace vpr
