/**
 * @file
 * Minute-granularity request time series for the sweep daemon's
 * /status page, modelled on the NCBI PubSeq Gateway's per-endpoint
 * CRequestTimeSeries counters: a fixed ring of per-minute slots that
 * the request path bumps in O(1) and the status page serializes as
 * JSON arrays, most recent minute first.
 *
 * The series is clock-free: callers pass an absolute minute index
 * (minutes since some epoch — the daemon uses its steady-clock start),
 * which makes the rotation logic directly unit-testable. A slot whose
 * stored minute does not match the minute that hashes to it is stale
 * and is reset on the next touch (and skipped — reported as zero — by
 * the serializer), so an idle gap longer than the window never leaks
 * old counts into the present.
 */

#ifndef VPR_SERVICE_TIME_SERIES_HH
#define VPR_SERVICE_TIME_SERIES_HH

#include <array>
#include <cstdint>
#include <iosfwd>

namespace vpr::service
{

/** Per-endpoint request/error/latency counters over a sliding
 *  minute-granularity window, plus since-start totals. */
class RequestTimeSeries
{
  public:
    /** Sliding-window width in minutes (one hour, as the PubSeq
     *  Gateway's most-recent band). */
    static constexpr std::size_t kMinutes = 60;

    /** Record one finished request in @p minute. */
    void add(std::uint64_t minute, bool error,
             std::uint64_t latencyUsec);

    /** Since-start totals (not windowed). @{ */
    std::uint64_t totalRequests() const { return totalReq; }
    std::uint64_t totalErrors() const { return totalErr; }
    /** @} */

    /** Windowed counts for @p minute; zero when the slot is stale. @{ */
    std::uint64_t requestsAt(std::uint64_t minute) const;
    std::uint64_t errorsAt(std::uint64_t minute) const;
    /** @} */

    /**
     * Serialize as one JSON object:
     *
     *   {"window_minutes": 60,
     *    "total": {"requests": R, "errors": E, "avg_latency_usec": L},
     *    "requests": [m0, m1, ...], "errors": [...],
     *    "avg_latency_usec": [...]}
     *
     * Array index 0 is @p nowMinute, index i is i minutes earlier; all
     * three arrays have min(nowMinute + 1, 60) entries, so a freshly
     * started server reports a short window instead of leading zeroes.
     */
    void serializeJson(std::ostream &os, std::uint64_t nowMinute) const;

  private:
    struct Slot
    {
        std::uint64_t minute = 0;  ///< which minute the counts belong to
        std::uint64_t requests = 0;
        std::uint64_t errors = 0;
        std::uint64_t latencyUsec = 0;  ///< sum over the slot's requests
    };

    /** The slot for @p minute, reset if it still holds an older
     *  minute's counts. */
    Slot &rotate(std::uint64_t minute);

    /** Read-only slot lookup; nullptr when stale (counts are zero). */
    const Slot *slotFor(std::uint64_t minute) const;

    std::array<Slot, kMinutes> slots{};
    std::uint64_t totalReq = 0;
    std::uint64_t totalErr = 0;
    std::uint64_t totalLatencyUsec = 0;
};

} // namespace vpr::service

#endif // VPR_SERVICE_TIME_SERIES_HH
