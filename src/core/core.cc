#include "core/core.hh"

#include "common/logging.hh"
#include "rename/conventional.hh"
#include "rename/early_release.hh"
#include "rename/virtual_physical.hh"

namespace vpr
{

std::unique_ptr<RenameManager>
makeRenameManager(RenameScheme scheme, const RenameConfig &config)
{
    switch (scheme) {
      case RenameScheme::Conventional:
        return std::make_unique<ConventionalRename>(config);
      case RenameScheme::VPAllocAtWriteback:
        return std::make_unique<VirtualPhysicalRename>(config, false);
      case RenameScheme::VPAllocAtIssue:
        return std::make_unique<VirtualPhysicalRename>(config, true);
      case RenameScheme::ConventionalEarlyRelease:
        return std::make_unique<EarlyReleaseRename>(config);
      default:
        VPR_PANIC("bad rename scheme");
    }
}

Core::Core(TraceStream &stream, const CoreConfig &config)
    : cfg(config),
      renameMgr(makeRenameManager(config.scheme, config.rename)),
      fetch(stream, config.fetch),
      theRob(config.robSize),
      theIq(config.iqSize),
      theLsq(config.lsqSize),
      theCache(config.cache),
      fus(config.fu),
      regPorts(config.regReadPorts, config.regWritePorts),
      cachePortSched(config.cachePorts)
{
    VPR_ASSERT(cfg.iqSize >= cfg.robSize,
               "unified IQ must hold every in-flight instruction "
               "(write-back squashes re-insert issued instructions)");
}

bool
Core::done() const
{
    return fetch.done() && theRob.empty();
}

bool
Core::tick()
{
    ++curCycle;
    renameMgr->tick(curCycle);
    fus.beginCycle(curCycle);
    regPorts.beginCycle(curCycle);
    cachePortSched.pruneBefore(curCycle);

    commitStage();
    completeStage();
    issueStage();
    renameStage();
    fetch.tick(curCycle);

    theRob.sampleOccupancy();
    busyIntRegsSum +=
        static_cast<double>(renameMgr->busyPhysRegs(RegClass::Int));
    busyFpRegsSum +=
        static_cast<double>(renameMgr->busyPhysRegs(RegClass::Float));

    if (cfg.invariantChecks && (curCycle & 0x3f) == 0)
        renameMgr->checkInvariants();

    if (curCycle - lastCommitCycle > cfg.deadlockThreshold &&
        !theRob.empty()) {
        VPR_PANIC("deadlock: no commit for ", cfg.deadlockThreshold,
                  " cycles; head ", theRob.head().toString(),
                  " freeInt=", renameMgr->freePhysRegs(RegClass::Int),
                  " freeFp=", renameMgr->freePhysRegs(RegClass::Float),
                  " iq=", theIq.size(), " lsq=", theLsq.size(),
                  " mshrs=", theCache.mshrs().size(),
                  " portUsedNow=", cachePortSched.used(curCycle),
                  " storesWaiting=", storesAwaitingData.size(),
                  " events=", events.size());
    }

    return !done();
}

void
Core::runUntilCommitted(std::uint64_t maxCommitted)
{
    while (nCommitted < maxCommitted && tick()) {
    }
}

void
Core::commitStage()
{
    for (unsigned n = 0; n < cfg.commitWidth && !theRob.empty(); ++n) {
        DynInst &head = theRob.head();
        if (head.phase != InstPhase::Completed)
            break;
        VPR_ASSERT(!head.wrongPath, "committing a wrong-path instruction");

        if (head.isStore()) {
            // Stores update the data cache at commit. They need a cache
            // port and a non-blocked cache; otherwise commit retries.
            if (!cachePortSched.tryClaim(curCycle)) {
                ++nStoreCommitStalls;
                break;
            }
            auto res = theCache.access(head.si.effAddr, true, curCycle);
            if (res.outcome == CacheOutcome::Blocked) {
                ++nStoreCommitStalls;
                break;
            }
            theLsq.remove(&head);
        } else if (head.isLoad()) {
            theLsq.remove(&head);
        }

        renameMgr->commitInst(head, curCycle);
        head.phase = InstPhase::Committed;
        head.commitCycle = curCycle;
        ++nCommitted;
        nCommittedExecutions += head.executions;
        lastCommitCycle = curCycle;
        theRob.commitHead();
    }
}

void
Core::completeStage()
{
    while (!events.empty() && events.top().when <= curCycle) {
        CompletionEvent ev = events.top();
        events.pop();
        VPR_ASSERT(ev.when == curCycle, "completion event missed: when=",
                   ev.when, " now=", curCycle);

        DynInst *inst = ev.inst;
        // Stale events: the instruction was squashed (slot possibly
        // reused by a younger instruction).
        if (inst->seq != ev.seq || inst->phase != InstPhase::Issued)
            continue;

        CompleteResult res = renameMgr->complete(*inst, curCycle);
        if (!res.ok) {
            // VP write-back allocation denied a register: squash back
            // to the instruction queue and re-execute (paper §3.3).
            ++nWbRejections;
            inst->phase = InstPhase::Renamed;
            theIq.insert(inst);
            continue;
        }

        inst->phase = InstPhase::Completed;
        inst->completeCycle = curCycle;

        if (inst->hasDest()) {
            VPR_ASSERT(inst->physReg != kNoReg,
                       "completed without a physical register");
            theIq.wakeup(inst->destClass(), inst->wakeupTag,
                         inst->physReg);
            // Issued stores parked on their data operand listen too.
            for (auto &[store, seq] : storesAwaitingData) {
                if (store->seq != seq)
                    continue;
                auto &s = store->src[0];
                if (s.valid && !s.ready && s.cls == inst->destClass() &&
                    s.tag == inst->wakeupTag) {
                    s.tag = inst->physReg;
                    s.ready = true;
                }
            }
        }

        if (inst->mispredictedBranch) {
            // Branch resolution: recovery walk + fetch redirect.
            squashYoungerThan(inst->seq);
            fetch.resolveBranch(curCycle);
        }
    }

    // Stores whose data arrived (possibly via this cycle's broadcasts)
    // complete now that both address and data are known.
    std::size_t keep = 0;
    for (auto &[inst, seq] : storesAwaitingData) {
        if (inst->seq != seq || inst->phase != InstPhase::Issued)
            continue;  // squashed
        if (inst->operandsReady()) {
            Cycle when = curCycle + 1 > inst->addrReadyCycle
                ? curCycle + 1
                : inst->addrReadyCycle;
            events.push({when, seq, inst});
        } else {
            storesAwaitingData[keep++] = {inst, seq};
        }
    }
    storesAwaitingData.resize(keep);
}

void
Core::squashYoungerThan(InstSeqNum seq)
{
    theIq.squashYoungerThan(seq);
    theLsq.squashYoungerThan(seq);
    while (!theRob.empty() && theRob.tail().seq > seq) {
        DynInst &tail = theRob.tail();
        renameMgr->squashInst(tail, curCycle);
        tail.phase = InstPhase::Squashed;
        ++nSquashed;
        theRob.squashTail();
    }
}

bool
Core::tryIssueOne(DynInst *inst)
{
    if (!inst->issueOperandsReady())
        return false;

    OpClass op = inst->si.op;

    // A re-execution (squashed at write-back for lack of a register,
    // paper §3.3) already performed its memory access and disambiguation;
    // it only needs to traverse the execution pipeline again.
    const bool reExecution = inst->executions > 0;

    // Memory disambiguation (PA-8000 style) for loads.
    LoadHold hold = LoadHold::Ready;
    if (inst->isLoad() && !reExecution) {
        hold = theLsq.checkLoad(inst, curCycle);
        if (hold == LoadHold::UnknownAddress ||
            hold == LoadHold::PartialOverlap) {
            theLsq.recordHold(hold);
            return false;
        }
    }

    // Functional unit available?
    if (fus.available(fuTypeFor(op), curCycle) == 0)
        return false;

    // Register-file read ports. A store reads only its address operand
    // at issue; the data register is picked up when it completes.
    unsigned nIntReads = 0, nFpReads = 0;
    for (std::size_t i = 0; i < kMaxSrcRegs; ++i) {
        const auto &s = inst->src[i];
        if (!s.valid)
            continue;
        if (inst->isStore() && i == 0)
            continue;
        if (s.cls == RegClass::Int)
            ++nIntReads;
        else
            ++nFpReads;
    }
    if (!regPorts.canClaimReads(nIntReads, nFpReads))
        return false;

    // Cache port and MSHR space for loads that really access the cache.
    bool needsCache =
        inst->isLoad() && hold != LoadHold::Forward && !reExecution;
    if (needsCache) {
        if (cachePortSched.used(curCycle + 1) >= cfg.cachePorts)
            return false;
        if (theCache.wouldBlock(inst->si.effAddr, curCycle + 1))
            return false;
    }

    // The renamer's issue gate (VP issue-allocation policy).
    if (!renameMgr->tryIssue(*inst, curCycle))
        return false;

    // All checks passed: commit the side effects.
    regPorts.tryClaimReads(nIntReads, nFpReads);

    Cycle raw;
    if (inst->isLoad()) {
        if (reExecution) {
            // The line was filled by the first execution; the retry hits.
            raw = curCycle + 1 + theCache.config().hitLatency;
        } else if (hold == LoadHold::Forward) {
            theLsq.recordHold(hold);
            inst->storeForwarded = true;
            raw = curCycle + 1 + theCache.config().hitLatency;
        } else {
            bool claimed = cachePortSched.tryClaim(curCycle + 1);
            VPR_ASSERT(claimed, "cache port vanished");
            auto res =
                theCache.access(inst->si.effAddr, false, curCycle + 1);
            VPR_ASSERT(res.outcome != CacheOutcome::Blocked,
                       "cache blocked after wouldBlock said otherwise");
            raw = res.readyCycle;
        }
        inst->addrReady = true;
        inst->addrReadyCycle = curCycle + 1;
    } else if (inst->isStore()) {
        // Address generation only; data is written to the cache at
        // commit. The store completes once address *and* data are
        // known; with the data still in flight it parks in
        // storesAwaitingData (handled at the end of completeStage).
        raw = curCycle + 1;
        inst->addrReady = true;
        inst->addrReadyCycle = curCycle + 1;
        if (!inst->operandsReady()) {
            inst->phase = InstPhase::Issued;
            inst->issueCycle = curCycle;
            ++inst->executions;
            ++nIssued;
            storesAwaitingData.emplace_back(inst, inst->seq);
            bool fuOkStore = fus.tryIssue(op, curCycle, raw);
            VPR_ASSERT(fuOkStore, "FU vanished after availability check");
            return true;
        }
    } else {
        raw = curCycle + opLatency(op);
    }

    // Schedule the result write port; completion slips if all write
    // ports at the ideal cycle are taken. Re-executions write only on
    // their final (successful) attempt; charging a slot per retry would
    // let rejection storms build an unbounded port backlog that no real
    // machine exhibits, so retries bypass the scheduler.
    Cycle completion = inst->hasDest() && !reExecution
        ? regPorts.scheduleWrite(inst->destClass(), raw)
        : raw;

    bool fuOk = fus.tryIssue(op, curCycle, completion);
    VPR_ASSERT(fuOk, "FU vanished after availability check");

    inst->phase = InstPhase::Issued;
    inst->issueCycle = curCycle;
    ++inst->executions;
    ++nIssued;
    events.push({completion, inst->seq, inst});
    return true;
}

void
Core::issueStage()
{
    // Oldest-first selection over a snapshot (issue mutates the queue).
    // Two passes: first executions have priority; re-executions fill the
    // remaining slots ("resources that otherwise would be unused",
    // paper §4.2.1).
    std::vector<DynInst *> candidates(theIq.entries());
    unsigned issued = 0;
    for (int pass = 0; pass < 2 && issued < cfg.issueWidth; ++pass) {
        for (DynInst *inst : candidates) {
            if (issued >= cfg.issueWidth)
                break;
            if ((inst->executions > 0) != (pass == 1))
                continue;
            if (inst->phase != InstPhase::Renamed)
                continue;  // issued in the first pass
            if (tryIssueOne(inst)) {
                theIq.remove(inst);
                ++issued;
            }
        }
    }
}

void
Core::renameStage()
{
    for (unsigned n = 0; n < cfg.renameWidth && fetch.hasInst(); ++n) {
        const FetchedInst &fi = fetch.peek();

        if (theRob.full()) {
            ++nRenameStallRob;
            break;
        }
        if (theIq.full()) {
            ++nRenameStallIq;
            break;
        }
        if (fi.si.isMem() && theLsq.full()) {
            ++nRenameStallLsq;
            break;
        }

        unsigned nInt = 0, nFp = 0;
        if (fi.si.hasDest()) {
            if (fi.si.dest.regClass() == RegClass::Int)
                nInt = 1;
            else
                nFp = 1;
        }
        if (!renameMgr->canRename(nInt, nFp)) {
            ++nRenameStallReg;
            break;
        }

        FetchedInst f = fetch.pop();
        DynInst d;
        d.si = f.si;
        d.seq = ++nextSeq;
        d.wrongPath = f.wrongPath;
        d.mispredictedBranch = f.mispredictedBranch;
        d.fetchCycle = f.fetchCycle;

        DynInst *inst = theRob.insert(d);
        renameMgr->renameInst(*inst, curCycle);
        theIq.insert(inst);
        if (inst->isMem())
            theLsq.insert(inst);
    }
}

bool
Core::hasPendingEvent(InstSeqNum seq) const
{
    auto copy = events;
    while (!copy.empty()) {
        if (copy.top().seq == seq)
            return true;
        copy.pop();
    }
    for (const auto &[inst, sn] : storesAwaitingData)
        if (sn == seq)
            return true;
    return false;
}

void
Core::resetStats()
{
    baseline.cycles = curCycle;
    baseline.committed = nCommitted;
    baseline.committedExecutions = nCommittedExecutions;
    baseline.issued = nIssued;
    baseline.squashed = nSquashed;
    baseline.wbRejections = nWbRejections;
    baseline.branches = fetch.branches();
    baseline.mispredicts = fetch.mispredicts();
    baseline.renameStallReg = nRenameStallReg;
    baseline.renameStallRob = nRenameStallRob;
    baseline.renameStallIq = nRenameStallIq;
    baseline.renameStallLsq = nRenameStallLsq;
    baseline.storeCommitStalls = nStoreCommitStalls;
    baseline.cacheMisses = theCache.misses() + theCache.mergedMisses();
    baseline.cacheAccesses = theCache.accesses();
    baseline.avgBusyIntRegs = busyIntRegsSum;
    baseline.avgBusyFpRegs = busyFpRegsSum;

    renameMgr->pressure(RegClass::Int).reset(curCycle);
    renameMgr->pressure(RegClass::Float).reset(curCycle);
    theRob.occupancyStat().reset();
}

CoreStatsSnapshot
Core::snapshot() const
{
    CoreStatsSnapshot s;
    s.cycles = curCycle - baseline.cycles;
    s.committed = nCommitted - baseline.committed;
    s.committedExecutions =
        nCommittedExecutions - baseline.committedExecutions;
    s.issued = nIssued - baseline.issued;
    s.squashed = nSquashed - baseline.squashed;
    s.wbRejections = nWbRejections - baseline.wbRejections;
    s.branches = fetch.branches() - baseline.branches;
    s.mispredicts = fetch.mispredicts() - baseline.mispredicts;
    s.renameStallReg = nRenameStallReg - baseline.renameStallReg;
    s.renameStallRob = nRenameStallRob - baseline.renameStallRob;
    s.renameStallIq = nRenameStallIq - baseline.renameStallIq;
    s.renameStallLsq = nRenameStallLsq - baseline.renameStallLsq;
    s.storeCommitStalls =
        nStoreCommitStalls - baseline.storeCommitStalls;
    s.cacheMisses = theCache.misses() + theCache.mergedMisses() -
                    baseline.cacheMisses;
    s.cacheAccesses = theCache.accesses() - baseline.cacheAccesses;
    if (s.cycles > 0) {
        s.avgBusyIntRegs =
            (busyIntRegsSum - baseline.avgBusyIntRegs) /
            static_cast<double>(s.cycles);
        s.avgBusyFpRegs =
            (busyFpRegsSum - baseline.avgBusyFpRegs) /
            static_cast<double>(s.cycles);
    }
    return s;
}

} // namespace vpr
