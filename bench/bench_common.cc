#include "bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "sim/params.hh"

namespace vpr::bench
{

namespace
{

BenchOptions &
mutableOptions()
{
    static BenchOptions options;
    return options;
}

} // namespace

const BenchOptions &
benchOptions()
{
    return mutableOptions();
}

const std::vector<SamplingPreset> &
samplingPresets()
{
    // One entry per registered figure (bench/figures/registry.cc); the
    // coverage test keeps this list and the registry in lockstep.
    // Coarse periods for the wide NRR grids, finer ones where a single
    // table's accuracy is the whole point.
    static const std::vector<SamplingPreset> presets = {
        {"table2_ipc", 10000, 150, 500},
        {"fig4_nrr_writeback", 24000, 150, 250},
        {"fig5_nrr_issue", 24000, 150, 250},
        {"fig6_wb_vs_issue", 20000, 150, 250},
        {"fig7_regfile_size", 20000, 150, 250},
        {"ablation_early_release", 30000, 150, 250},
        {"ablation_mshr", 30000, 150, 250},
        {"ablation_window", 30000, 150, 250},
        {"ablation_wrongpath", 30000, 150, 250},
        {"motivating_example", 10000, 150, 500},
        {"regpressure", 15000, 150, 400},
    };
    return presets;
}

const SamplingPreset *
findSamplingPreset(const std::string &figure)
{
    for (const SamplingPreset &preset : samplingPresets())
        if (figure == preset.figure)
            return &preset;
    return nullptr;
}

void
parseArgs(int argc, char **argv)
{
    // Strict: an unrecognized argument aborts instead of silently
    // running the full grid — a CI matrix with a mistyped --shard must
    // fail at launch, not at merge time after the compute was spent.
    BenchOptions &opt = mutableOptions();
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0) {
            setenv("VPR_INSTS_SCALE", argv[i] + 8, 1);
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            setenv("VPR_JOBS", argv[i] + 7, 1);
        } else if (std::strncmp(argv[i], "--shard=", 8) == 0) {
            opt.shard = parseShard(argv[i] + 8);
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            opt.outPath = argv[i] + 6;
        } else if (std::strcmp(argv[i], "--sampling") == 0) {
            opt.config.assignments.push_back("sim.sampling.enable=1");
        } else if (std::strncmp(argv[i], "--sampling-preset=", 18) == 0) {
            const SamplingPreset *preset =
                findSamplingPreset(argv[i] + 18);
            if (!preset) {
                std::fprintf(stderr,
                             "%s: unknown sampling preset '%s'; one of:\n",
                             argv[0], argv[i] + 18);
                for (const SamplingPreset &p : samplingPresets())
                    std::fprintf(stderr, "  %s\n", p.figure);
                std::exit(1);
            }
            opt.config.assignments.push_back("sim.sampling.enable=1");
            opt.config.assignments.push_back(
                "sim.sampling.period_insts=" +
                std::to_string(preset->periodInsts));
            opt.config.assignments.push_back(
                "sim.sampling.warmup_insts=" +
                std::to_string(preset->warmupInsts));
            opt.config.assignments.push_back(
                "sim.sampling.detailed_insts=" +
                std::to_string(preset->detailedInsts));
        } else if (std::strncmp(argv[i], "--ckpt-dir=", 11) == 0) {
            opt.config.assignments.push_back(
                std::string("sim.ckpt.dir=") + (argv[i] + 11));
        } else if (std::strncmp(argv[i], "--result-cache=", 15) == 0) {
            opt.config.assignments.push_back(
                std::string("sim.result_cache.dir=") + (argv[i] + 15));
        } else if (parseConfigArg(argc, argv, i, opt.config)) {
            // --set / --set= / --config= / --dump-config taken.
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf(
                "usage: %s [--scale=<factor>] [--jobs=<n>] "
                "[--shard=i/N] [--out=<path>]\n"
                "          [--sampling] [--sampling-preset=<figure>] "
                "[--ckpt-dir=<dir>]\n"
                "          [--result-cache=<dir>]\n"
                "          [--set <key>=<value>] [--config=<file.json>] "
                "[--dump-config]\n"
                "  --scale scales the simulated instruction budget "
                "(default 1.0;\n"
                "  also settable via VPR_INSTS_SCALE)\n"
                "  --jobs runs grid cells on <n> worker threads "
                "(default 1; 0 = one\n"
                "  per hardware thread; also settable via VPR_JOBS). "
                "Output is\n"
                "  byte-identical for every value of --jobs.\n"
                "  --shard runs only slice i of N (cells dealt "
                "round-robin); merge the\n"
                "  per-shard --out files with tools/merge_results to "
                "recover the full\n"
                "  table byte-for-byte.\n"
                "  --out writes one record per executed grid cell "
                "(CSV; JSON when the\n"
                "  path ends in .json, compressed container when it "
                "ends in .vprz —\n"
                "  merge_results ingests both).\n"
                "  --sampling switches every cell to SMARTS-style "
                "sampled simulation\n"
                "  (= --set sim.sampling.enable=1); --sampling-preset "
                "additionally\n"
                "  applies the sim.sampling.* protocol tuned for the "
                "named figure's\n"
                "  grid (one preset per registered figure).\n"
                "  --ckpt-dir caches warm-up state across runs "
                "(= --set sim.ckpt.dir=<dir>;\n"
                "  see README \"Checkpoints & warm-start sweeps\").\n"
                "  --result-cache serves whole grid cells computed by "
                "any earlier run\n"
                "  from disk (= --set sim.result_cache.dir=<dir>; see "
                "README \"Sweep\n"
                "  service\").\n"
                "  --set overrides one config parameter by dotted name "
                "(repeatable;\n"
                "  run vpr_sim --help-params for the list). --config "
                "loads a\n"
                "  --dump-config dump first; --dump-config prints the "
                "effective base\n"
                "  config and exits. Overrides apply to the base "
                "config the figure\n"
                "  grid is built from; axes the figure itself sweeps "
                "win.\n",
                argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr,
                         "%s: unrecognized argument '%s' (see --help; "
                         "flags take the --flag=value form)\n",
                         argv[0], argv[i]);
            std::exit(1);
        }
    }

    if (opt.config.dumpConfig) {
        dumpConfig(std::cout, experimentConfig());
        std::exit(0);
    }
}

void
addConfigOverride(const std::string &assignment)
{
    mutableOptions().config.assignments.push_back(assignment);
}

SimConfig
experimentConfig()
{
    SimConfig config = paperConfig();
    // The paper skips 100 M instructions and measures 50 M per run; we
    // default to 20 k + 120 k, which keeps the full figure suite under a
    // few minutes while preserving every qualitative result. Use
    // --scale=10 (or more) for higher-fidelity runs.
    config.skipInsts = 20000;
    config.measureInsts = 120000;
    // Trace-driven methodology: fetch stalls on a detected
    // misprediction, as in the paper's ATOM-based framework.
    config.core.fetch.wrongPath = WrongPathMode::Stall;
    config.jobs = defaultJobs();
    // User overrides, by dotted parameter name: --config first, then
    // --set in command-line order.
    applyConfigCli(config, benchOptions().config);
    return config;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += std::log(v);
    return std::exp(s / static_cast<double>(values.size()));
}

} // namespace vpr::bench
