#include "core/core.hh"

#include "common/logging.hh"
#include "sim/params.hh"

namespace vpr
{

void
CoreConfig::visitParams(ParamVisitor &v)
{
    v.uintParam("rename_width", renameWidth,
                "instructions renamed per cycle");
    v.uintParam("issue_width", issueWidth,
                "instructions issued per cycle");
    v.uintParam("commit_width", commitWidth,
                "instructions committed per cycle");
    v.uintParam("rob_size", robSize,
                "reorder-buffer (instruction window) entries");
    v.uintParam("iq_size", iqSize,
                "instruction-queue entries (unified int+fp queue)");
    v.uintParam("lsq_size", lsqSize, "load/store-queue entries");
    v.uintParam("reg_read_ports", regReadPorts,
                "register-file read ports per cycle");
    v.uintParam("reg_write_ports", regWritePorts,
                "register-file write ports per cycle");
    v.uintParam("cache_ports", cachePorts,
                "data-cache ports per cycle");
    v.enumParam("scheme", scheme,
                {{"conventional", RenameScheme::Conventional},
                 {"conv", RenameScheme::Conventional},
                 {"vp-writeback", RenameScheme::VPAllocAtWriteback},
                 {"vp-wb", RenameScheme::VPAllocAtWriteback},
                 {"vp-issue", RenameScheme::VPAllocAtIssue},
                 {"conv-early-release",
                  RenameScheme::ConventionalEarlyRelease},
                 {"conv-er", RenameScheme::ConventionalEarlyRelease}},
                "register-renaming scheme");
    v.pushGroup("iq");
    v.boolParam("scan_wakeup", iqScanWakeup,
                "use the legacy full-queue IQ wakeup scan instead of "
                "per-tag wait lists (schedules are byte-identical)");
    v.boolParam("scan_issue", iqScanIssue,
                "use the legacy full-queue oldest-first issue scan "
                "instead of the event-driven ready list (schedules are "
                "byte-identical)");
    v.popGroup();
    v.pushGroup("lsq");
    v.boolParam("scan_disambig", lsqScanDisambig,
                "use the legacy reverse-scan memory disambiguation "
                "instead of the address-indexed store table (schedules "
                "are byte-identical)");
    v.popGroup();
    v.pushGroup("cq");
    v.boolParam("calendar", cqCalendar,
                "use the cycle-indexed completion calendar instead of "
                "the legacy binary-heap event queue (schedules are "
                "byte-identical)");
    v.popGroup();
    v.boolParam("invariant_checks", invariantChecks,
                "run the renamer's invariant self-check every 64 cycles");
    v.uintParam("deadlock_threshold", deadlockThreshold,
                "panic if no instruction commits for this many cycles");
    v.pushGroup("rename");
    rename.visitParams(v);
    v.popGroup();
    v.pushGroup("fetch");
    fetch.visitParams(v);
    v.popGroup();
    v.pushGroup("fu");
    fu.visitParams(v);
    v.popGroup();
    v.pushGroup("cache");
    cache.visitParams(v);
    v.popGroup();
}

Core::Core(TraceStream &stream, const CoreConfig &config)
    : state(stream, config),
      // Calendar horizon: the longest ordinary completion latency is a
      // cache miss (hit + miss penalty); pad for write-port slip and
      // MSHR queueing, and the constructor rounds up to a power of two.
      // Anything beyond still works via the overflow list.
      completions(state.cfg.cqCalendar,
                  state.cfg.cache.hitLatency + state.cfg.cache.missPenalty +
                      64),
      fetchBuffer(state.fetch),
      fetchRedirect(state.fetch),
      commit(state),
      complete(state, completions, fetchRedirect, *this),
      issue(state, completions),
      rename(state, fetchBuffer),
      fetchStage(state),
      stageGraph{&commit, &complete, &issue, &rename, &fetchStage}
{
    // Registered last so its update hook runs after the groups it
    // derives from ("core" cycles, "commit" counters) are up to date.
    derivedGroup.add(&ipcStat);
    derivedGroup.add(&execPerCommitStat);
    state.statsTree.add(&derivedGroup, [this] {
        const std::uint64_t c = state.intervalCycles();
        const std::uint64_t committed = commit.committedInterval();
        ipcStat.set(c ? static_cast<double>(committed) /
                            static_cast<double>(c)
                      : 0.0);
        execPerCommitStat.set(
            committed ? static_cast<double>(
                            commit.committedExecutionsInterval()) /
                            static_cast<double>(committed)
                      : 0.0);
    });
}

void
Core::reinit()
{
    completions.clear();
    ffRetired = 0;
    commit.reinit();
    issue.reinit();
    // Last: ends with the stats-tree reset, recapturing interval bases
    // against the zeroed counters.
    state.reinit();
}

bool
Core::done() const
{
    return state.fetch.done() && state.rob.empty();
}

bool
Core::tick()
{
    state.beginCycle();

    // Back-to-front: a result produced by an earlier (older) stage this
    // cycle is visible to the later (younger) stages of the same cycle.
    for (Stage *stage : stageGraph)
        stage->tick();

    state.sampleStats();

    if (state.cfg.invariantChecks && (state.curCycle & 0x3f) == 0)
        state.renameMgr->checkInvariants();

    if (state.curCycle - state.lastCommitCycle >
            state.cfg.deadlockThreshold &&
        !state.rob.empty()) {
        VPR_PANIC("deadlock: no commit for ", state.cfg.deadlockThreshold,
                  " cycles; head ", state.rob.head().toString(),
                  " freeInt=", state.renameMgr->freePhysRegs(RegClass::Int),
                  " freeFp=", state.renameMgr->freePhysRegs(RegClass::Float),
                  " iq=", state.iq.size(), " lsq=", state.lsq.size(),
                  " mshrs=", state.cache.mshrs().size(),
                  " portUsedNow=", state.cachePortSched.used(state.curCycle),
                  " storesWaiting=", completions.parkedStoreCount(),
                  " events=", completions.pendingEvents());
    }

    return !done();
}

void
Core::runUntilCommitted(std::uint64_t maxCommitted)
{
    while (commit.committedTotal() < maxCommitted && tick()) {
    }
}

bool
Core::quiescent() const
{
    return state.rob.empty() && state.iq.size() == 0 &&
           state.lsq.size() == 0 && !state.fetch.hasInst() &&
           !state.fetch.awaitingResolve() &&
           completions.pendingEvents() == 0 &&
           completions.parkedStoreCount() == 0;
}

void
Core::drain()
{
    // Pause fetch so no new trace records enter, then tick until every
    // in-flight instruction has committed and every latch is empty.
    // Stale (squashed) completion events pop harmlessly as the cycles
    // pass, so this terminates in at most the pipeline depth plus the
    // longest outstanding completion latency.
    state.fetch.setPaused(true);
    while (!quiescent())
        tick();
    state.fetch.setPaused(false);
}

std::uint64_t
Core::fastForward(std::uint64_t n, bool warm)
{
    drain();

    std::uint64_t done = 0;
    if (warm) {
        done = state.fetch.warmFunctional(n, state.cache, state.curCycle);
    } else {
        done = state.fetch.skipFunctional(n);
        state.curCycle += done;
    }

    ffRetired += done;
    // The clock jumped without commits; re-arm the deadlock detector so
    // the next detailed interval doesn't trip it spuriously.
    state.lastCommitCycle = state.curCycle;
    return done;
}

void
Core::visitState(StateVisitor &v, CkptScope scope)
{
    VPR_ASSERT(quiescent(), "checkpoint of a non-quiescent core");
    // At quiescence the ROB/IQ/LSQ, latches, event calendar, port
    // schedules and FU reservations are all empty or in the past —
    // only the long-lived state below needs to travel.
    v.section("clock");
    v.value(state.curCycle);
    v.value(state.lastCommitCycle);
    v.value(ffRetired);
    state.fetch.visitState(v, scope);
    state.cache.visitState(v);
    if (scope != CkptScope::Full)
        return;
    v.section("seq");
    v.value(state.nextSeq);
    state.renameMgr->visitState(v);
}

void
Core::squashYoungerThan(InstSeqNum youngestKept)
{
    state.squashYoungerThan(youngestKept);
    for (Stage *stage : stageGraph)
        stage->squash(youngestKept);
}

void
Core::resetStats()
{
    state.resetStats();
}

void
Core::visitStats(stats::StatVisitor &v)
{
    state.statsTree.visit(v);
}

} // namespace vpr
