/** @file Unit tests for the ParallelExperimentEngine. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{
namespace
{

SimConfig
tiny()
{
    SimConfig c = paperConfig();
    c.skipInsts = 500;
    c.measureInsts = 5000;
    c.core.fetch.wrongPath = WrongPathMode::Stall;
    return c;
}

TEST(ParallelEngine, EmptyGridIsFine)
{
    ParallelExperimentEngine engine(4);
    EXPECT_TRUE(engine.run({}).empty());
}

TEST(ParallelEngine, WorkerCountIsBoundedByCells)
{
    ParallelExperimentEngine engine(8);
    EXPECT_EQ(engine.jobs(), 8u);
    EXPECT_EQ(engine.workersFor(3), 3u);
    EXPECT_EQ(engine.workersFor(100), 8u);
    EXPECT_EQ(engine.workersFor(0), 0u);
}

TEST(ParallelEngine, ZeroMeansHardwareConcurrency)
{
    ParallelExperimentEngine engine(0);
    EXPECT_GE(engine.jobs(), 1u);
}

TEST(ParallelEngine, ResultsKeepCellOrderAcrossJobCounts)
{
    // A grid of unequal-runtime cells: results must land in cell order
    // and be identical for every worker count.
    std::vector<GridCell> cells;
    SimConfig c = tiny();
    for (const char *name : {"compress", "swim", "li", "go"}) {
        c.setScheme(RenameScheme::Conventional);
        cells.push_back({name, c});
        c.setScheme(RenameScheme::VPAllocAtWriteback);
        cells.push_back({name, c});
    }

    std::vector<SimResults> serial = runGrid(cells, 1);
    std::vector<SimResults> parallel = runGrid(cells, 4);
    ASSERT_EQ(serial.size(), cells.size());
    ASSERT_EQ(parallel.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(serial[i].cycles(), parallel[i].cycles())
            << cells[i].benchmark << " cell " << i;
        EXPECT_EQ(serial[i].committed(),
                  parallel[i].committed());
        EXPECT_EQ(serial[i].issued(), parallel[i].issued());
        EXPECT_DOUBLE_EQ(serial[i].ipc(), parallel[i].ipc());
    }
}

TEST(ParallelEngine, RunAllUsesConfigJobs)
{
    SimConfig c = tiny();
    c.skipInsts = 200;
    c.measureInsts = 2000;
    c.jobs = 3;
    auto all = runAll(c);
    EXPECT_EQ(all.size(), benchmarkNames().size());
    for (const auto &name : benchmarkNames()) {
        ASSERT_TRUE(all.count(name)) << name;
        EXPECT_GT(all[name].ipc(), 0.0) << name;
    }
}

} // namespace
} // namespace vpr
