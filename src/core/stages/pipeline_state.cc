#include "core/stages/pipeline_state.hh"

#include "common/logging.hh"
#include "rename/factory.hh"

namespace vpr
{

PipelineState::PipelineState(TraceStream &stream, const CoreConfig &config)
    : cfg(config),
      renameMgr(makeRenamer(config.scheme, config.rename)),
      fetch(stream, config.fetch),
      hot(config.robSize),
      rob(config.robSize, hot),
      iq(config.iqSize, hot),
      lsq(config.lsqSize),
      cache(config.cache),
      fus(config.fu),
      regPorts(config.regReadPorts, config.regWritePorts),
      cachePortSched(config.cachePorts)
{
    VPR_ASSERT(cfg.iqSize >= cfg.robSize,
               "unified IQ must hold every in-flight instruction "
               "(write-back squashes re-insert issued instructions)");
    iq.setScanWakeup(cfg.iqScanWakeup);
    // Ready publication is pointless (and would accumulate undrained)
    // under the legacy issue scan.
    iq.setTrackReady(!cfg.iqScanIssue);
    lsq.setScanDisambig(cfg.lsqScanDisambig);

    // Root of the stats tree: the shared structures register here, in a
    // fixed order; the stages append their groups when the composition
    // root constructs them. Registration order is export-schema order.
    coreGroup.add(&cyclesStat);
    coreGroup.add(&squashedStat);
    statsTree.add(
        &coreGroup,
        [this] { cyclesStat.set(curCycle - statBaseCycle); },
        [this] {
            coreGroup.resetAll();
            statBaseCycle = curCycle;
        });
    rob.regStats(statsTree);
    iq.regStats(statsTree);
    lsq.regStats(statsTree);
    cache.regStats(statsTree);
    fetch.regStats(statsTree);
    renameMgr->regStats(statsTree);
}

void
PipelineState::beginCycle()
{
    ++curCycle;
    renameMgr->tick(curCycle);
    fus.beginCycle(curCycle);
    regPorts.beginCycle(curCycle);
    cachePortSched.pruneBefore(curCycle);
}

void
PipelineState::sampleStats()
{
    rob.sampleOccupancy();
    iq.sampleOccupancy();
    lsq.sampleOccupancy();
    renameMgr->sampleOccupancy();
}

void
PipelineState::resetStats()
{
    statsTree.reset();
    // The pressure trackers integrate over time, so their interval
    // reset needs the current cycle (in-flight allocations restart
    // from the interval boundary).
    renameMgr->pressure(RegClass::Int).reset(curCycle);
    renameMgr->pressure(RegClass::Float).reset(curCycle);
}

void
PipelineState::reinit()
{
    hot.resetAll();
    rob.clear();
    iq.clear();
    lsq.clear();
    cache.reset();
    fus.clear();
    regPorts.clear();
    cachePortSched.clear();
    fetch.reinit();
    renameMgr->reinit();
    curCycle = 0;
    nextSeq = 0;
    lastCommitCycle = 0;
    statBaseCycle = 0;
    // Last: every group's reset hook recaptures its bases against the
    // zeroed counters above, leaving the tree as construction does.
    statsTree.reset();
}

void
PipelineState::squashYoungerThan(InstSeqNum youngestKept)
{
    iq.squashYoungerThan(youngestKept);
    lsq.squashYoungerThan(youngestKept);
    while (!rob.empty() && rob.tail().seq() > youngestKept) {
        DynInst &tail = rob.tail();
        renameMgr->squashInst(tail, curCycle);
        tail.setPhase(InstPhase::Squashed);
        ++squashedStat;
        rob.squashTail();
    }
}

} // namespace vpr
