/**
 * @file
 * The /status page's minute-ring request time series: O(1) slot
 * rotation must never leak counts from a minute that previously hashed
 * to the same slot, totals are since-start, and the JSON serialization
 * is exact (most recent minute first, short window while the server is
 * young).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "service/time_series.hh"

namespace vpr::service
{
namespace
{

std::string
json(const RequestTimeSeries &ts, std::uint64_t nowMinute)
{
    std::ostringstream os;
    ts.serializeJson(os, nowMinute);
    return os.str();
}

TEST(RequestTimeSeries, CountsPerMinuteAndTotals)
{
    RequestTimeSeries ts;
    EXPECT_EQ(ts.totalRequests(), 0u);
    EXPECT_EQ(ts.requestsAt(0), 0u);

    ts.add(0, /*error=*/false, /*latencyUsec=*/100);
    ts.add(0, /*error=*/true, /*latencyUsec=*/300);
    ts.add(2, /*error=*/false, /*latencyUsec=*/50);

    EXPECT_EQ(ts.totalRequests(), 3u);
    EXPECT_EQ(ts.totalErrors(), 1u);
    EXPECT_EQ(ts.requestsAt(0), 2u);
    EXPECT_EQ(ts.errorsAt(0), 1u);
    EXPECT_EQ(ts.requestsAt(1), 0u);  // untouched minute
    EXPECT_EQ(ts.requestsAt(2), 1u);
    EXPECT_EQ(ts.errorsAt(2), 0u);
}

TEST(RequestTimeSeries, RingRotationEvictsStaleSlots)
{
    RequestTimeSeries ts;
    ts.add(5, false, 10);
    // Minute 65 hashes to the same slot as minute 5: the slot must be
    // reset, not accumulated into.
    ts.add(65, false, 10);
    EXPECT_EQ(ts.requestsAt(65), 1u);
    EXPECT_EQ(ts.requestsAt(5), 0u);  // stale — reads as zero
    EXPECT_EQ(ts.totalRequests(), 2u);  // totals keep everything

    // A stale slot that is never re-touched also reads as zero.
    ts.add(7, false, 10);
    EXPECT_EQ(ts.requestsAt(7 + 60 * 3), 0u);
}

TEST(RequestTimeSeries, JsonExactShortWindow)
{
    RequestTimeSeries ts;
    ts.add(0, false, 100);
    ts.add(1, true, 200);
    ts.add(1, false, 400);

    // nowMinute=1: two entries, most recent first.
    EXPECT_EQ(json(ts, 1),
              "{\"window_minutes\": 60, \"total\": {\"requests\": 3, "
              "\"errors\": 1, \"avg_latency_usec\": 233}, "
              "\"requests\": [2, 1], \"errors\": [1, 0], "
              "\"avg_latency_usec\": [300, 100]}");

    // A fresh series at minute 0: single-entry arrays, zero averages.
    RequestTimeSeries fresh;
    EXPECT_EQ(json(fresh, 0),
              "{\"window_minutes\": 60, \"total\": {\"requests\": 0, "
              "\"errors\": 0, \"avg_latency_usec\": 0}, "
              "\"requests\": [0], \"errors\": [0], "
              "\"avg_latency_usec\": [0]}");
}

TEST(RequestTimeSeries, JsonWindowClampsToSixtyMinutes)
{
    RequestTimeSeries ts;
    for (std::uint64_t m = 0; m <= 100; ++m)
        ts.add(m, false, 10);

    const std::string doc = json(ts, 100);
    // 61+ minutes of uptime serialize exactly 60 entries.
    std::size_t ones = 0, pos = 0;
    const std::string needle = "\"requests\": [";
    pos = doc.find(needle) + needle.size();
    for (; doc[pos] != ']'; ++pos)
        ones += doc[pos] == '1';
    EXPECT_EQ(ones, RequestTimeSeries::kMinutes);
    EXPECT_EQ(ts.totalRequests(), 101u);
}

} // namespace
} // namespace vpr::service
