#include "common/stats.hh"

#include <cmath>
#include <deque>
#include <iomanip>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"

namespace vpr::stats
{

struct SymbolTable::Impl
{
    mutable std::shared_mutex mtx;
    /** id-1 -> text. A deque never moves settled elements, so the
     *  string_view keys below and the references handed out by text()
     *  stay valid as the table grows. */
    std::deque<std::string> texts;
    std::unordered_map<std::string_view, SymId> ids;
};

SymbolTable &
SymbolTable::global()
{
    static SymbolTable table;
    return table;
}

SymbolTable::Impl &
SymbolTable::impl() const
{
    static Impl theImpl;
    return theImpl;
}

SymId
SymbolTable::intern(std::string_view text)
{
    Impl &im = impl();
    {
        std::shared_lock<std::shared_mutex> lock(im.mtx);
        auto it = im.ids.find(text);
        if (it != im.ids.end())
            return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(im.mtx);
    auto it = im.ids.find(text);
    if (it != im.ids.end())
        return it->second;
    im.texts.emplace_back(text);
    const SymId id = static_cast<SymId>(im.texts.size());
    im.ids.emplace(std::string_view(im.texts.back()), id);
    return id;
}

SymId
SymbolTable::find(std::string_view text) const
{
    Impl &im = impl();
    std::shared_lock<std::shared_mutex> lock(im.mtx);
    auto it = im.ids.find(text);
    return it == im.ids.end() ? 0 : it->second;
}

const std::string &
SymbolTable::text(SymId id) const
{
    Impl &im = impl();
    std::shared_lock<std::shared_mutex> lock(im.mtx);
    VPR_ASSERT(id != 0 && id <= im.texts.size(),
               "SymbolTable::text on invalid SymId ", id);
    return im.texts[id - 1];
}

std::size_t
SymbolTable::size() const
{
    Impl &im = impl();
    std::shared_lock<std::shared_mutex> lock(im.mtx);
    return im.texts.size();
}

SymId
StatBase::internName(std::size_t slot, std::string_view suffix) const
{
    std::string full;
    full.reserve(visitPrefix.size() + 1 + statName.size() + suffix.size());
    if (!visitPrefix.empty()) {
        full += visitPrefix;
        full += '.';
    }
    full += statName;
    full += suffix;
    const SymId id = SymbolTable::global().intern(full);
    if (slot >= symCache.size())
        symCache.resize(slot + 1, 0);
    symCache[slot] = id;
    return id;
}

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " " << std::right
       << std::setw(14) << val << "  # " << desc() << "\n";
}

void
Real::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " " << std::right
       << std::setw(14) << std::fixed << std::setprecision(4) << value()
       << "  # " << desc() << "\n";
}

void
Average::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " " << std::right
       << std::setw(14) << std::fixed << std::setprecision(4) << mean()
       << "  # " << desc() << " (" << n << " samples)\n";
}

double
tCritical95(std::uint64_t df)
{
    // Two-sided 95% quantiles of the Student-t distribution for df
    // 1..30; beyond that the normal approximation is within 0.2%.
    static const double kT95[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0)
        return 0.0;
    return df <= 30 ? kT95[df - 1] : 1.960;
}

double
SampleEstimator::stddev() const
{
    if (n < 2)
        return 0.0;
    const double m = mean();
    // Sample variance with the n-1 denominator; clamp the numerically
    // negative case (all observations equal).
    const double var =
        (sumSq - static_cast<double>(n) * m * m) /
        static_cast<double>(n - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
SampleEstimator::standardError() const
{
    return n < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n));
}

double
SampleEstimator::ci95() const
{
    return n < 2 ? 0.0 : tCritical95(n - 1) * standardError();
}

void
SampleEstimator::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " " << std::right
       << std::setw(14) << std::fixed << std::setprecision(4) << mean()
       << " +/- " << ci95() << "  # " << desc() << " (" << n
       << " intervals)\n";
}

void
SampleEstimator::visit(StatVisitor &v) const
{
    // The derived sub-values carry their own fixed descriptions;
    // intern those once per process.
    static const SymId stderrDesc = SymbolTable::global().intern(
        "standard error of the interval mean");
    static const SymId ci95Desc = SymbolTable::global().intern(
        "95% confidence half-width of the interval mean");
    static const SymId intervalsDesc =
        SymbolTable::global().intern("measured sampling intervals");
    v.visitReal(nameSym(0, ".mean"), descSym(), mean());
    v.visitReal(nameSym(1, ".stderr"), stderrDesc, standardError());
    v.visitReal(nameSym(2, ".ci95"), ci95Desc, ci95());
    v.visitUInt(nameSym(3, ".intervals"), intervalsDesc, n);
}

Distribution::Distribution(std::string name, std::string desc,
                           std::uint64_t min, std::uint64_t max,
                           std::uint64_t bucketSize)
    : StatBase(std::move(name), std::move(desc)), lo(min), hi(max),
      bsize(bucketSize)
{
    VPR_ASSERT(max >= min, "distribution range inverted");
    VPR_ASSERT(bucketSize > 0, "bucket size must be positive");
    buckets.assign((max - min) / bucketSize + 1, 0);
}

Distribution
Distribution::evenBuckets(std::string name, std::string desc,
                          std::uint64_t min, std::uint64_t max,
                          std::size_t numBuckets)
{
    VPR_ASSERT(max >= min, "distribution range inverted");
    VPR_ASSERT(numBuckets > 0, "bucket count must be positive");
    const std::uint64_t range = max - min + 1;
    const std::uint64_t width = (range + numBuckets - 1) / numBuckets;
    Distribution d(std::move(name), std::move(desc), min, max, width);
    // The ceil-divided width can make the natural bucket count smaller
    // than requested; pad so the count is exactly numBuckets for any
    // range — that fixed count is what keeps export schemas identical
    // across grid cells with different structure sizes.
    d.buckets.assign(numBuckets, 0);
    return d;
}

double
Distribution::stddev() const
{
    if (n == 0)
        return 0.0;
    const double m = mean();
    const double var = sumSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    under = over = n = 0;
    sum = 0.0;
    sumSq = 0.0;
    minSeen = maxSeen = 0;
    buckets.assign(buckets.size(), 0);
}

void
Distribution::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " mean="
       << std::fixed << std::setprecision(3) << mean() << " sd="
       << stddev() << " n=" << n << " min=" << minSeen << " max="
       << maxSeen << "  # " << desc() << "\n";
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        os << "  [" << (lo + i * bsize) << ".."
           << (lo + (i + 1) * bsize - 1) << "] " << buckets[i] << "\n";
    }
    if (under)
        os << "  underflows " << under << "\n";
    if (over)
        os << "  overflows " << over << "\n";
}

void
Distribution::visit(StatVisitor &v) const
{
    const SymId d = descSym();
    v.visitReal(nameSym(0, ".mean"), d, mean());
    v.visitReal(nameSym(1, ".stddev"), d, stddev());
    v.visitUInt(nameSym(2, ".samples"), d, n);
    v.visitUInt(nameSym(3, ".min"), d, minSeen);
    v.visitUInt(nameSym(4, ".max"), d, maxSeen);
    v.visitUInt(nameSym(5, ".underflows"), d, under);
    v.visitUInt(nameSym(6, ".overflows"), d, over);
    // The bucket geometry travels with the data so consumers (figure
    // renderers, plotters) never re-derive the origin or width by hand.
    v.visitUInt(nameSym(7, ".range_min"), d, lo);
    v.visitUInt(nameSym(8, ".bucket_size"), d, bsize);
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        SymId nm = cachedNameSym(9 + i);
        if (nm == 0)
            nm = nameSym(9 + i, ".hist[" + std::to_string(i) + "]");
        v.visitUInt(nm, d, buckets[i]);
    }
}

Counter2D::Counter2D(std::string name, std::string desc,
                     std::vector<std::string> rowNames,
                     std::vector<std::string> colNames)
    : StatBase(std::move(name), std::move(desc)),
      rows(std::move(rowNames)), cols(std::move(colNames)),
      counts(rows.size() * cols.size(), 0)
{
    VPR_ASSERT(!rows.empty() && !cols.empty(),
               "Counter2D needs at least one row and one column");
}

std::uint64_t
Counter2D::rowTotal(std::size_t row) const
{
    std::uint64_t t = 0;
    for (std::size_t c = 0; c < cols.size(); ++c)
        t += count(row, c);
    return t;
}

std::uint64_t
Counter2D::colTotal(std::size_t col) const
{
    std::uint64_t t = 0;
    for (std::size_t r = 0; r < rows.size(); ++r)
        t += count(r, col);
    return t;
}

std::uint64_t
Counter2D::total() const
{
    std::uint64_t t = 0;
    for (std::uint64_t c : counts)
        t += c;
    return t;
}

void
Counter2D::reset()
{
    counts.assign(counts.size(), 0);
}

void
Counter2D::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " total="
       << total() << "  # " << desc() << "\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rowTotal(r) == 0)
            continue;
        os << "  " << std::left << std::setw(12) << rows[r];
        for (std::size_t c = 0; c < cols.size(); ++c)
            os << " " << cols[c] << "=" << count(r, c);
        os << "\n";
    }
}

void
Counter2D::visit(StatVisitor &v) const
{
    const SymId d = descSym();
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < cols.size(); ++c) {
            const std::size_t slot = r * cols.size() + c;
            SymId nm = cachedNameSym(slot);
            if (nm == 0)
                nm = nameSym(slot, "." + rows[r] + "." + cols[c]);
            v.visitUInt(nm, d, count(r, c));
        }
    }
}

void
StatGroup::visit(StatVisitor &v) const
{
    // Each stat composes its full names under the group prefix and
    // caches the interned symbols; steady-state walks are a string-free
    // pass over cached ids.
    for (const auto *s : statList) {
        s->setVisitPrefix(groupName);
        s->visit(v);
    }
}

void
StatGroup::resetAll()
{
    for (auto *s : statList)
        s->reset();
}

void
StatGroup::print(std::ostream &os) const
{
    os << "---------- " << groupName << " ----------\n";
    for (const auto *s : statList)
        s->print(os);
}

namespace
{

/**
 * Forwarding visitor that panics on a repeated full name. Groups may
 * share a prefix (two components both exporting under "core."), so a
 * leaf-name collision would otherwise be silently collapsed by
 * consumers like MetricsRecord — better to fail loudly at the source.
 */
class UniqueNameVisitor : public StatVisitor
{
  public:
    explicit UniqueNameVisitor(StatVisitor &inner) : v(inner) {}

    void
    visitUInt(SymId name, SymId desc, std::uint64_t val) override
    {
        check(name);
        v.visitUInt(name, desc, val);
    }

    void
    visitReal(SymId name, SymId desc, double val) override
    {
        check(name);
        v.visitReal(name, desc, val);
    }

  private:
    void
    check(SymId name)
    {
        VPR_ASSERT(seen.insert(name).second,
                   "duplicate stat name in tree walk: ",
                   SymbolTable::global().text(name));
    }

    StatVisitor &v;
    std::unordered_set<SymId> seen;
};

/**
 * Forwarding visitor that accumulates an order-sensitive FNV-1a hash
 * of every name symbol walked — a fingerprint of the tree's shape.
 * Interning makes equal text imply equal id, so mixing the ids is as
 * discriminating as mixing the characters; the fingerprint is
 * process-local (ids depend on interning order), which is fine for the
 * in-memory verified-schema set below.
 */
class SchemaHashVisitor : public StatVisitor
{
  public:
    explicit SchemaHashVisitor(StatVisitor &inner) : v(inner) {}

    void
    visitUInt(SymId name, SymId desc, std::uint64_t val) override
    {
        mix(name);
        v.visitUInt(name, desc, val);
    }

    void
    visitReal(SymId name, SymId desc, double val) override
    {
        mix(name);
        v.visitReal(name, desc, val);
    }

    std::uint64_t hash() const { return h; }

  private:
    void
    mix(SymId name)
    {
        for (int i = 0; i < 4; ++i)
            h = (h ^ ((name >> (8 * i)) & 0xffu)) * 0x100000001b3ull;
        h = (h ^ 0x1full) * 0x100000001b3ull; // name separator
    }

    StatVisitor &v;
    std::uint64_t h = 0xcbf29ce484222325ull;
};

/** Schema fingerprints whose name sets have passed the duplicate
 *  check. Every core built from the same config walks an identical
 *  tree, so a grid sweep (or a benchmark loop) pays the set-based
 *  check once per process, not once per core. Guarded: sweep cells
 *  run on worker threads. */
std::mutex verifiedSchemasMutex;
std::unordered_set<std::uint64_t> verifiedSchemas;

bool
schemaKnownVerified(std::uint64_t h)
{
    std::lock_guard<std::mutex> lock(verifiedSchemasMutex);
    return verifiedSchemas.count(h) != 0;
}

void
schemaMarkVerified(std::uint64_t h)
{
    std::lock_guard<std::mutex> lock(verifiedSchemasMutex);
    verifiedSchemas.insert(h);
}

} // namespace

void
StatRegistry::visit(StatVisitor &v)
{
    for (Entry &e : entryList)
        if (e.update)
            e.update();
    // Names are fixed at registration, so the duplicate check needs to
    // run once per registry, not once per walk — sampled runs visit
    // the tree every measurement interval.
    if (namesVerified) {
        for (Entry &e : entryList)
            e.group->visit(v);
        return;
    }
    // First walk of this registry: fingerprint the shape while
    // forwarding. If an identical shape was already verified in this
    // process, that's the proof — skip the per-name set.
    SchemaHashVisitor hashed(v);
    for (Entry &e : entryList)
        e.group->visit(hashed);
    if (!schemaKnownVerified(hashed.hash())) {
        // Unseen shape: re-walk into a sink with the duplicate checker
        // (the real visitor already consumed this walk's values).
        struct NullVisitor : StatVisitor
        {
            void visitUInt(SymId, SymId, std::uint64_t) override {}
            void visitReal(SymId, SymId, double) override {}
        } sink;
        UniqueNameVisitor unique(sink);
        for (Entry &e : entryList)
            e.group->visit(unique);
        schemaMarkVerified(hashed.hash());
    }
    namesVerified = true;
}

void
StatRegistry::reset()
{
    for (Entry &e : entryList) {
        if (e.reset)
            e.reset();
        else
            e.group->resetAll();
    }
}

void
StatRegistry::print(std::ostream &os)
{
    for (Entry &e : entryList) {
        if (e.update)
            e.update();
        e.group->print(os);
    }
}

} // namespace vpr::stats
