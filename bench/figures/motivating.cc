/**
 * @file
 * Section 3.1 motivating example as a FigureDef. The cells carry their
 * own trace factory (the paper's load->fdiv->fmul->fadd chain, all
 * writing f2) instead of a named benchmark kernel.
 */

#include "figures.hh"

#include "trace/builder.hh"

namespace vpr::bench
{

namespace
{

/** The paper's four-instruction chain, repeated to reach steady state. */
std::vector<TraceRecord>
exampleTrace(unsigned repeats)
{
    TraceBuilder b;
    for (unsigned i = 0; i < repeats; ++i) {
        // A fresh line each time so every load misses, like the example.
        Addr addr = 0x10000000 + static_cast<Addr>(i) * 64;
        b.load(RegId::fpReg(2), RegId::intReg(6), addr);
        b.fpDiv(RegId::fpReg(2), RegId::fpReg(2), RegId::fpReg(10));
        b.fpMul(RegId::fpReg(2), RegId::fpReg(2), RegId::fpReg(12));
        b.fpAdd(RegId::fpReg(2), RegId::fpReg(2), RegId::fpReg(1));
    }
    return b.records();
}

GridCell
chainCell(RenameScheme scheme)
{
    SimConfig config = experimentConfig();
    config.setScheme(scheme);
    config.skipInsts = 0;
    config.measureInsts = 4000;
    // Looping stream: at the default budget (4000 < 4800 records) the
    // wrap never engages, but --scale > 1 keeps measuring the same
    // chain instead of silently draining the pipeline early.
    return GridCell("section3.1-chain", config, [] {
        return std::make_unique<VectorTraceStream>(exampleTrace(1200),
                                                   /*loop=*/true);
    });
}

} // namespace

FigureDef
motivatingExampleFigure()
{
    FigureDef def;
    def.name = "motivating_example";
    def.build = [] {
        return std::vector<GridCell>{
            chainCell(RenameScheme::Conventional),
            chainCell(RenameScheme::VPAllocAtIssue),
            chainCell(RenameScheme::VPAllocAtWriteback),
        };
    };
    def.render = [](const std::vector<GridCell> &,
                    const std::vector<SimResults> &results,
                    std::ostream &os) {
        os << "Section 3.1 motivating example: load->fdiv->fmul->fadd "
              "chain, all writing f2\n\n";

        const SimResults &conv = results[0];
        const SimResults &iss = results[1];
        const SimResults &wb = results[2];
        double base = conv.meanHoldCyclesFp();

        printTableHeader(os,
                         "FP register holding time per produced value",
                         {"cycles", "vs conv", "IPC"});
        printTableRow(os, "decode", {base, 1.0, conv.ipc()}, 2);
        printTableRow(os, "issue",
                      {iss.meanHoldCyclesFp(),
                       iss.meanHoldCyclesFp() / base, iss.ipc()},
                      2);
        printTableRow(os, "writeback",
                      {wb.meanHoldCyclesFp(),
                       wb.meanHoldCyclesFp() / base, wb.ipc()},
                      2);

        os << "\npaper reference (its latencies): decode allocation "
              "holds registers 151 cycles total per 3 values,\n"
              "write-back allocation 38 (-75%), issue allocation 88 "
              "(-42%). The ordering decode > issue > writeback\n"
              "and the magnitude of the decode-allocation waste are "
              "the reproduced claims.\n";
    };
    return def;
}

} // namespace vpr::bench
