/**
 * @file
 * MetricsRecord: the self-describing result record of one simulation.
 *
 * A record is an ordered list of (name, desc, typed value) metrics,
 * keyed by stable dotted names ("core.ipc", "memory.cache_miss_rate").
 * It is populated by visiting stats::StatGroups — MetricsRecord *is* a
 * StatVisitor — so any subsystem that registers stats is exported
 * without bespoke glue. Insertion order is the export schema order:
 * two records built from the same groups have identical schemas, which
 * is what lets shard files from different hosts be merged column-safe.
 *
 * Names and descriptions are stored as interned SymIds; a steady-state
 * revisit of an already-built record (sampled runs revisit one record
 * per measurement interval) touches no strings and — thanks to the
 * in-order cursor below — no hash tables either. Text comes back out
 * only through the name()/desc() accessors at serialization time.
 */

#ifndef VPR_SIM_METRICS_HH
#define VPR_SIM_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"

namespace vpr
{

/** One named value of a MetricsRecord. */
struct Metric
{
    enum class Kind : std::uint8_t { UInt, Real };

    stats::SymId nameSym = 0;
    stats::SymId descSym = 0;
    Kind kind = Kind::UInt;
    std::uint64_t uval = 0;
    double rval = 0.0;

    /** Interned text, resolved at the serialization boundary. @{ */
    const std::string &name() const;
    const std::string &desc() const;
    /** @} */

    /** The value as a double regardless of kind. */
    double
    asReal() const
    {
        return kind == Kind::UInt ? static_cast<double>(uval) : rval;
    }

    /** Exact text form: integers in full, reals with round-trip
     *  precision (17 significant digits). */
    std::string text() const;
};

/** An ordered, name-indexed collection of metrics. */
class MetricsRecord : public stats::StatVisitor
{
  public:
    /** StatVisitor: append (or overwrite) a metric. @{ */
    void visitUInt(stats::SymId name, stats::SymId desc,
                   std::uint64_t v) override;
    void visitReal(stats::SymId name, stats::SymId desc,
                   double v) override;
    /** @} */

    /** Direct setters for derived metrics; the SymId overloads are the
     *  allocation-free path for names already in hand. @{ */
    void
    setUInt(stats::SymId name, stats::SymId desc, std::uint64_t v)
    {
        visitUInt(name, desc, v);
    }

    void
    setReal(stats::SymId name, stats::SymId desc, double v)
    {
        visitReal(name, desc, v);
    }

    void setUInt(const std::string &name, const std::string &desc,
                 std::uint64_t v);
    void setReal(const std::string &name, const std::string &desc,
                 double v);
    /** @} */

    bool has(const std::string &name) const;

    /** Value lookups; a missing name returns 0 (empty record). @{ */
    std::uint64_t counter(const std::string &name) const;
    double real(const std::string &name) const;
    /** @} */

    /** Metrics in schema (insertion) order. */
    const std::vector<Metric> &all() const { return metrics; }

    std::size_t size() const { return metrics.size(); }
    bool empty() const { return metrics.empty(); }

    /** True if @p other has the same metric names in the same order. */
    bool sameSchema(const MetricsRecord &other) const;

  private:
    Metric &slot(stats::SymId name, stats::SymId desc);
    const Metric *findMetric(const std::string &name) const;

    std::vector<Metric> metrics;
    std::unordered_map<stats::SymId, std::size_t> index;
    /** Expected position of the next visited name. A revisit of the
     *  same stats tree arrives in schema order, so every lookup is one
     *  integer compare instead of a hash probe. */
    std::size_t cursor = 0;
};

/**
 * Render the histogram a Distribution exported under @p stem
 * ("<stem>.hist[i]", with its geometry from "<stem>.range_min" and
 * "<stem>.bucket_size") as indented ASCII bars with a per-bucket
 * percentage of *all* samples (clipped mass gets below/above-range
 * lines), one line per bucket. Reads only the record, so tables
 * re-rendered from merged shard files are byte-identical.
 */
void printMetricHistogram(std::ostream &os, const MetricsRecord &m,
                          const std::string &stem);

} // namespace vpr

#endif // VPR_SIM_METRICS_HH
