#include "core/stages/commit_stage.hh"

#include "common/logging.hh"

namespace vpr
{

void
CommitStage::tick()
{
    const Cycle now = s.curCycle;

    for (unsigned k = 0; k < s.cfg.commitWidth && !s.rob.empty(); ++k) {
        // Peek the head's phase through the packed hot arrays; the
        // DynInst itself is only touched once the head can retire.
        if (s.hot.phaseOf(s.rob.headSlot()) != InstPhase::Completed)
            break;
        DynInst &head = s.rob.head();
        VPR_ASSERT(!head.wrongPath, "committing a wrong-path instruction");

        if (head.isStore()) {
            // Stores update the data cache at commit. They need a cache
            // port and a non-blocked cache; otherwise commit retries.
            if (!s.cachePortSched.tryClaim(now)) {
                ++storeStalls;
                break;
            }
            auto res = s.cache.access(head.si.effAddr, true, now);
            if (res.outcome == CacheOutcome::Blocked) {
                ++storeStalls;
                break;
            }
            s.lsq.remove(&head);
        } else if (head.isLoad()) {
            s.lsq.remove(&head);
        }

        s.renameMgr->commitInst(head, now);
        head.setPhase(InstPhase::Committed);
        head.setCommitCycle(now);
        ++committed;
        ++nCommittedTotal;
        committedExecutions += head.executions;
        s.lastCommitCycle = now;
        s.rob.commitHead();
    }
}

} // namespace vpr
