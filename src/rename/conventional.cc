#include "rename/conventional.hh"

#include "common/logging.hh"

namespace vpr
{

ConventionalRename::ConventionalRename(const RenameConfig &config)
    : RenameManager(config)
{
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        mapTable[c].assign(kNumLogicalRegs, 0);
        ready[c].assign(cfg.numPhysRegs, false);
        // Architected state: logical register i lives in physical i.
        for (std::uint16_t i = 0; i < kNumLogicalRegs; ++i) {
            mapTable[c][i] = i;
            ready[c][i] = true;
        }
        for (std::uint16_t p = cfg.numPhysRegs; p-- > kNumLogicalRegs;)
            freeList[c].push_back(p);
        // Pressure accounting: the architected registers are live.
        for (std::uint16_t i = 0; i < kNumLogicalRegs; ++i)
            pressureTrk[c].onAlloc(i, 0);
    }
}

void
ConventionalRename::reinit()
{
    // Replays the constructor body exactly (the free-list pop order is
    // architecturally visible downstream, so it must match).
    reinitBase();
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        mapTable[c].assign(kNumLogicalRegs, 0);
        ready[c].assign(cfg.numPhysRegs, false);
        freeList[c].clear();
        for (std::uint16_t i = 0; i < kNumLogicalRegs; ++i) {
            mapTable[c][i] = i;
            ready[c][i] = true;
        }
        for (std::uint16_t p = cfg.numPhysRegs; p-- > kNumLogicalRegs;)
            freeList[c].push_back(p);
        for (std::uint16_t i = 0; i < kNumLogicalRegs; ++i)
            pressureTrk[c].onAlloc(i, 0);
    }
}

void
ConventionalRename::tick(Cycle)
{
    // Conventional frees are visible in the same cycle; nothing to do.
}

bool
ConventionalRename::canRename(unsigned nIntDests, unsigned nFpDests) const
{
    return freeList[classIdx(RegClass::Int)].size() >= nIntDests &&
           freeList[classIdx(RegClass::Float)].size() >= nFpDests;
}

PhysRegId
ConventionalRename::allocReg(RegClass cls, Cycle now)
{
    auto &fl = freeList[classIdx(cls)];
    VPR_ASSERT(!fl.empty(), "conventional: free list empty");
    PhysRegId reg = fl.back();
    fl.pop_back();
    pressureTrk[classIdx(cls)].onAlloc(reg, now);
    return reg;
}

void
ConventionalRename::freeReg(RegClass cls, PhysRegId reg, Cycle now)
{
    ready[classIdx(cls)][reg] = false;
    freeList[classIdx(cls)].push_back(reg);
    pressureTrk[classIdx(cls)].onFree(reg, now);
}

void
ConventionalRename::renameInst(DynInst &inst, Cycle now)
{
    // Sources first: they must see the mappings before this
    // instruction's own destination is remapped (handles "add r1,r1,r2").
    for (std::size_t i = 0; i < kMaxSrcRegs; ++i) {
        const RegId &sr = inst.si.src[i];
        if (!sr.valid())
            continue;
        std::size_t c = classIdx(sr.regClass());
        PhysRegId phys = mapTable[c][sr.index()];
        inst.src[i].valid = true;
        inst.src[i].cls = sr.regClass();
        inst.src[i].tag = phys;
        inst.src[i].ready = ready[c][phys];
    }

    if (inst.hasDest()) {
        RegClass cls = inst.destClass();
        std::size_t c = classIdx(cls);
        std::uint16_t logical = inst.si.dest.index();
        PhysRegId phys = allocReg(cls, now);
        inst.prevTag = mapTable[c][logical];
        mapTable[c][logical] = phys;
        inst.physReg = phys;
        inst.wakeupTag = phys;
    }
    inst.setRenameCycle(now);
}

bool
ConventionalRename::tryIssue(DynInst &, Cycle)
{
    // Registers were allocated at decode; issue never blocks on them.
    return true;
}

CompleteResult
ConventionalRename::complete(DynInst &inst, Cycle)
{
    if (inst.hasDest()) {
        std::size_t c = classIdx(inst.destClass());
        VPR_ASSERT(inst.physReg != kNoReg, "complete without phys reg");
        ready[c][inst.physReg] = true;
    }
    return {true};
}

void
ConventionalRename::commitInst(DynInst &inst, Cycle now)
{
    if (!inst.hasDest())
        return;
    // Free the physical register of the previous instruction with the
    // same logical destination (it can no longer be referenced).
    VPR_ASSERT(inst.prevTag != kNoReg, "commit without previous mapping");
    freeReg(inst.destClass(), static_cast<PhysRegId>(inst.prevTag), now);
}

void
ConventionalRename::squashInst(DynInst &inst, Cycle now)
{
    // Undo this instruction's rename (called youngest-first): return its
    // own physical register and restore the previous mapping.
    for (auto &s : inst.src) {
        s.valid = false;
        s.ready = false;
        s.tag = kNoReg;
    }
    if (!inst.hasDest())
        return;
    std::size_t c = classIdx(inst.destClass());
    std::uint16_t logical = inst.si.dest.index();
    VPR_ASSERT(mapTable[c][logical] == inst.physReg,
               "squash: map table does not point at squashed inst");
    mapTable[c][logical] = static_cast<PhysRegId>(inst.prevTag);
    freeReg(inst.destClass(), inst.physReg, now);
    inst.physReg = kNoReg;
    inst.wakeupTag = kNoReg;
}

std::size_t
ConventionalRename::freePhysRegs(RegClass cls) const
{
    return freeList[classIdx(cls)].size();
}

void
ConventionalRename::checkInvariants() const
{
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        // No register may be both free and mapped.
        std::vector<bool> isFree(cfg.numPhysRegs, false);
        for (PhysRegId r : freeList[c]) {
            VPR_ASSERT(!isFree[r], "register ", r, " doubly free");
            isFree[r] = true;
        }
        for (std::uint16_t l = 0; l < kNumLogicalRegs; ++l) {
            VPR_ASSERT(!isFree[mapTable[c][l]],
                       "mapped register ", mapTable[c][l], " is free");
        }
    }
}

void
ConventionalRename::visitState(StateVisitor &v)
{
    RenameManager::visitState(v);
    v.section("rename.conv");
    for (std::size_t c = 0; c < kNumRegClasses; ++c) {
        v.fixedVec(mapTable[c]);
        v.boolVec(ready[c]);
        v.dynVec(freeList[c]);
    }
}

} // namespace vpr
