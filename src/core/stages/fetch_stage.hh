/**
 * @file
 * Fetch stage: fills the fetch buffer from the trace through the
 * FetchUnit (perfect I-cache, BHT-predicted branches, optional
 * wrong-path synthesis). Runs last in the back-to-front tick, so a
 * branch resolved by the complete stage this cycle redirects fetch
 * before it runs.
 */

#ifndef VPR_CORE_STAGES_FETCH_STAGE_HH
#define VPR_CORE_STAGES_FETCH_STAGE_HH

#include "common/stats.hh"
#include "core/stages/pipeline_state.hh"
#include "core/stages/stage.hh"

namespace vpr
{

/** The fetch stage. */
class FetchStage : public Stage
{
  public:
    explicit FetchStage(PipelineState &state);

    const char *name() const override { return "fetch"; }

    void tick() override;
    void squash(InstSeqNum youngestKept) override;

  private:
    PipelineState &s;

    // The FetchUnit's counters are monotonic; the exported stats are
    // interval deltas against bases captured at each stats-tree reset.
    stats::StatGroup group{"fetch"};
    stats::Scalar branches{"branches", "branches fetched"};
    stats::Scalar mispredicts{"mispredicts", "mispredicted branches"};
    std::uint64_t baseBranches = 0;
    std::uint64_t baseMispredicts = 0;
};

} // namespace vpr

#endif // VPR_CORE_STAGES_FETCH_STAGE_HH
