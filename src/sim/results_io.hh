/**
 * @file
 * Machine-readable result files for grid sweeps.
 *
 * One record per grid cell: the cell's global index, benchmark, the
 * configuration parameters that define the cell, and every metric of
 * its MetricsRecord, in schema order. Two formats:
 *
 *  - CSV: one header row, one line per cell, preceded by a single
 *    "# vpr-results v1 figure=<name> cells=<N> shard=<i>/<n>" metadata
 *    comment. This is the shard/merge interchange format: integers are
 *    written exactly and reals with 17 significant digits, so a merged
 *    file reproduces the unsharded run bit for bit.
 *  - JSON: the same records as one self-describing document (for
 *    plotting pipelines that prefer structure over columns).
 *
 * readResultsCsv/mergeResults/resultsFromFile invert the CSV writer so
 * tools/merge_results can stitch shard files back into the full
 * cell-ordered result set and re-render the paper tables.
 */

#ifndef VPR_SIM_RESULTS_IO_HH
#define VPR_SIM_RESULTS_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/parallel_engine.hh"

namespace vpr
{

/** Fixed (non-metric) column names, starting with "cell". */
const std::vector<std::string> &resultFixedColumns();

/** The fixed-column values for one cell (everything but "cell"). */
std::vector<std::string> cellConfigValues(const GridCell &cell);

/**
 * Write the records for @p indices (global cell indices, parallel to
 * @p cells / @p results) of a @p totalCells grid. @{
 */
void writeResultsCsv(std::ostream &os, const std::string &figure,
                     std::size_t totalCells, const ShardSpec &shard,
                     const std::vector<std::size_t> &indices,
                     const std::vector<GridCell> &cells,
                     const std::vector<SimResults> &results);
void writeResultsJson(std::ostream &os, const std::string &figure,
                      std::size_t totalCells, const ShardSpec &shard,
                      const std::vector<std::size_t> &indices,
                      const std::vector<GridCell> &cells,
                      const std::vector<SimResults> &results);
/** @} */

/** Write to @p path, picking the format from the extension
 *  (".json" = JSON, anything else = CSV). fatal()s if unwritable. */
void writeResultsFile(const std::string &path, const std::string &figure,
                      std::size_t totalCells, const ShardSpec &shard,
                      const std::vector<std::size_t> &indices,
                      const std::vector<GridCell> &cells,
                      const std::vector<SimResults> &results);

/** Convenience for unsharded exporters (vpr_sim, examples): write every
 *  cell of @p cells/@p results to @p path as one complete grid. */
void exportAllCells(const std::string &path, const std::string &figure,
                    const std::vector<GridCell> &cells,
                    const std::vector<SimResults> &results);

/** A parsed result file (one shard or a whole grid). Row values are
 *  kept as raw text so re-emitting them is byte-exact. */
struct ResultsFile
{
    std::string figure;
    std::size_t totalCells = 0;
    /** Instruction scale the records were produced under (raw metadata
     *  text; shards must agree exactly to merge). */
    std::string scale;
    std::vector<std::string> header;

    struct Row
    {
        std::size_t cell = 0;
        std::vector<std::string> values;  ///< header order, incl. cell
    };
    std::vector<Row> rows;
};

/** Parse a CSV result stream; @p name is used in error messages. */
ResultsFile readResultsCsv(std::istream &is, const std::string &name);

/** Parse a CSV result file; fatal()s if unreadable or malformed. */
ResultsFile readResultsCsvFile(const std::string &path);

/**
 * Merge shard files into the full cell-ordered result set. All inputs
 * must agree on figure, grid size and header; every cell must appear
 * exactly once across the inputs. fatal()s otherwise.
 */
ResultsFile mergeResults(const std::vector<ResultsFile> &shards);

/** Write a merged (complete) file back out as CSV, byte-identical to
 *  what an unsharded --out export would have produced. */
void writeMergedCsv(std::ostream &os, const ResultsFile &merged);

/** Reconstruct cell-ordered SimResults from a complete result file so
 *  figure tables can be re-rendered from merged records. */
std::vector<SimResults> resultsFromFile(const ResultsFile &file);

} // namespace vpr

#endif // VPR_SIM_RESULTS_IO_HH
