/**
 * @file
 * Render the checked-in perf trajectory (BENCH_*.json, oldest first)
 * as a self-contained SVG sparkline table:
 *
 *   perf_trend [--out=FILE.svg] [--filter=SUBSTR] <bench.json>...
 *
 * One row per benchmark name, one sparkline point per input file that
 * carries the row. Each sparkline is scaled to its own min..max (the
 * series spans nanosecond structure probes and millisecond end-to-end
 * runs, so a shared axis would flatten everything but the slowest
 * row); the first/last values and the overall delta are printed next
 * to it so absolute movement stays readable. Files recorded from a
 * debug tree (vpr_build_type / library_build_type not "release") get
 * their points hollowed out — visibly present, visibly untrusted.
 *
 * The JSON scanner is the same deliberately small field-scanner
 * perf_diff uses; no JSON library, no dependencies.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

struct SeriesPoint
{
    double value = NAN;  ///< NAN = this file lacks the row
    bool debug = false;
};

struct FileRows
{
    std::string label;
    bool debug = false;
    std::vector<std::pair<std::string, double>> rows;  // name → ns
};

std::string
stringField(const std::string &text, std::size_t objAt, const char *key)
{
    std::string pat = std::string("\"") + key + "\":";
    std::size_t k = text.find(pat, objAt);
    if (k == std::string::npos)
        return "";
    std::size_t q1 = text.find('"', k + pat.size());
    if (q1 == std::string::npos)
        return "";
    std::size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos)
        return "";
    return text.substr(q1 + 1, q2 - q1 - 1);
}

double
numberField(const std::string &text, std::size_t objAt, const char *key)
{
    std::string pat = std::string("\"") + key + "\":";
    std::size_t k = text.find(pat, objAt);
    if (k == std::string::npos)
        return NAN;
    return std::strtod(text.c_str() + k + pat.size(), nullptr);
}

double
toNanos(double v, const std::string &unit)
{
    if (unit == "ms")
        return v * 1e6;
    if (unit == "us")
        return v * 1e3;
    if (unit == "s")
        return v * 1e9;
    return v;  // ns (google-benchmark's default)
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** Strip a path to its file name without extension (the column label). */
std::string
labelOf(const std::string &path)
{
    std::size_t slash = path.find_last_of("/\\");
    std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::size_t dot = name.rfind('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

FileRows
parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "perf_trend: cannot open " << path << "\n";
        std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    FileRows f;
    f.label = labelOf(path);
    std::string flavour = stringField(text, 0, "vpr_build_type");
    if (flavour.empty())
        flavour = stringField(text, 0, "library_build_type");
    f.debug = !flavour.empty() && flavour != "release";

    std::size_t arr = text.find("\"benchmarks\":");
    if (arr == std::string::npos)
        return f;
    bool hasMeans = text.find("_mean\"", arr) != std::string::npos;
    for (std::size_t pos = text.find("\"name\":", arr);
         pos != std::string::npos;
         pos = text.find("\"name\":", pos + 1)) {
        std::string name = stringField(text, pos, "name");
        double t = numberField(text, pos, "real_time");
        std::string unit = stringField(text, pos, "time_unit");
        if (name.empty() || std::isnan(t))
            continue;
        if (hasMeans) {
            if (!endsWith(name, "_mean"))
                continue;
            name.resize(name.size() - 5);
        }
        f.rows.emplace_back(name, toNanos(t, unit));
    }
    return f;
}

std::string
fmtTime(double ns)
{
    char buf[32];
    if (ns >= 1e6)
        std::snprintf(buf, sizeof buf, "%.3g ms", ns / 1e6);
    else if (ns >= 1e3)
        std::snprintf(buf, sizeof buf, "%.3g us", ns / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.3g ns", ns);
    return buf;
}

std::string
xmlEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '&')
            out += "&amp;";
        else if (c == '<')
            out += "&lt;";
        else if (c == '>')
            out += "&gt;";
        else
            out += c;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath = "docs/perf_trend.svg";
    std::string filter;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0) {
            outPath = arg.substr(6);
        } else if (arg.rfind("--filter=", 0) == 0) {
            filter = arg.substr(9);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: perf_trend [--out=FILE.svg] "
                         "[--filter=SUBSTR] <bench.json>...\n"
                         "Pass the BENCH_*.json series oldest first.\n";
            return 0;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() < 2) {
        std::cerr << "perf_trend: need at least two bench JSON files "
                     "(a trend has a direction)\n";
        return 2;
    }

    std::vector<FileRows> files;
    for (const std::string &p : paths)
        files.push_back(parseFile(p));

    // Row universe: every name seen anywhere, in first-seen order, that
    // appears in at least two files (one point is not a trend).
    std::vector<std::string> names;
    for (const FileRows &f : files)
        for (const auto &row : f.rows) {
            if (!filter.empty() &&
                row.first.find(filter) == std::string::npos)
                continue;
            if (std::find(names.begin(), names.end(), row.first) ==
                names.end())
                names.push_back(row.first);
        }
    std::vector<std::vector<SeriesPoint>> series(
        names.size(), std::vector<SeriesPoint>(files.size()));
    for (std::size_t fi = 0; fi < files.size(); ++fi)
        for (const auto &row : files[fi].rows) {
            auto it = std::find(names.begin(), names.end(), row.first);
            if (it == names.end())
                continue;
            SeriesPoint &pt = series[it - names.begin()][fi];
            pt.value = row.second;
            pt.debug = files[fi].debug;
        }
    for (std::size_t i = names.size(); i-- > 0;) {
        int n = 0;
        for (const SeriesPoint &pt : series[i])
            n += !std::isnan(pt.value);
        if (n < 2) {
            names.erase(names.begin() + i);
            series.erase(series.begin() + i);
        }
    }
    if (names.empty()) {
        std::cerr << "perf_trend: no benchmark appears in two or more "
                     "files\n";
        return 2;
    }

    // Layout: header row with file labels, then one 18px row per
    // benchmark — name, sparkline, first → last, delta.
    const int rowH = 18, headerH = 46, nameW = 330, sparkW = 170;
    const int valueW = 200, pad = 8;
    const int width = nameW + sparkW + valueW + 3 * pad;
    const int height =
        headerH + static_cast<int>(names.size()) * rowH + pad;

    std::ofstream out(outPath);
    if (!out) {
        std::cerr << "perf_trend: cannot write " << outPath << "\n";
        return 2;
    }
    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
        << "\" height=\"" << height << "\" font-family=\"monospace\" "
        << "font-size=\"11\">\n"
        << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
        << "<text x=\"" << pad << "\" y=\"16\" font-size=\"13\" "
        << "font-weight=\"bold\">simulator perf trajectory ("
        << files.front().label << " → " << files.back().label
        << ")</text>\n"
        << "<text x=\"" << pad << "\" y=\"32\" fill=\"#666\">"
        << "per-row scale; hollow points = debug-recorded file; "
        << "delta = last vs first</text>\n";

    for (std::size_t i = 0; i < names.size(); ++i) {
        const int y = headerH + static_cast<int>(i) * rowH;
        const int baseline = y + rowH - 5;
        double lo = INFINITY, hi = -INFINITY, first = NAN, last = NAN;
        for (const SeriesPoint &pt : series[i]) {
            if (std::isnan(pt.value))
                continue;
            lo = std::min(lo, pt.value);
            hi = std::max(hi, pt.value);
            if (std::isnan(first))
                first = pt.value;
            last = pt.value;
        }
        const double span = hi > lo ? hi - lo : 1.0;
        const double delta = 100.0 * (last - first) / first;
        const char *deltaColor =
            delta > 5.0 ? "#b00" : delta < -5.0 ? "#070" : "#666";

        out << "<text x=\"" << pad << "\" y=\"" << baseline << "\">"
            << xmlEscape(names[i]) << "</text>\n";

        // Sparkline: x spread over the file series, y inverted (down
        // is faster) inside a 12px band; gaps where a file lacks the
        // row break the polyline.
        const int sx = nameW + pad, bandTop = y + 3, bandH = rowH - 8;
        std::string poly;
        std::string dots;
        for (std::size_t fi = 0; fi < series[i].size(); ++fi) {
            const SeriesPoint &pt = series[i][fi];
            if (std::isnan(pt.value)) {
                if (!poly.empty()) {
                    out << "<polyline fill=\"none\" stroke=\"#36c\" "
                        << "points=\"" << poly << "\"/>\n";
                    poly.clear();
                }
                continue;
            }
            const double fx =
                sx + (sparkW - 8) *
                         (series[i].size() > 1
                              ? static_cast<double>(fi) /
                                    (series[i].size() - 1)
                              : 0.0);
            const double fy =
                bandTop + bandH * (1.0 - (hi - pt.value) / span);
            char buf[128];
            std::snprintf(buf, sizeof buf, "%.1f,%.1f ", fx, fy);
            poly += buf;
            std::snprintf(buf, sizeof buf,
                          "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2\" "
                          "fill=\"%s\" stroke=\"#36c\"/>\n",
                          fx, fy, pt.debug ? "white" : "#36c");
            dots += buf;
        }
        if (!poly.empty())
            out << "<polyline fill=\"none\" stroke=\"#36c\" points=\""
                << poly << "\"/>\n";
        out << dots;

        out << "<text x=\"" << nameW + sparkW + 2 * pad << "\" y=\""
            << baseline << "\">" << fmtTime(first) << " → "
            << fmtTime(last) << "</text>\n"
            << "<text x=\"" << width - pad << "\" y=\"" << baseline
            << "\" text-anchor=\"end\" fill=\"" << deltaColor << "\">"
            << (delta >= 0 ? "+" : "") << std::fixed
            << std::setprecision(1) << delta << "%</text>\n";
        out.unsetf(std::ios::fixed);
    }
    out << "</svg>\n";
    std::cout << "perf_trend: wrote " << outPath << " (" << names.size()
              << " rows x " << files.size() << " files)\n";
    return 0;
}
