/**
 * @file
 * The out-of-order core: an 8-wide dynamically scheduled processor with
 * precise exceptions, matching section 4.1 of the paper.
 *
 * Pipeline (one call to tick() = one cycle), processed back to front so
 * same-cycle producer→consumer wakeups behave like a bypass network:
 *
 *   commit  — up to commitWidth in-order retires; stores write the
 *             cache; the renamer frees the previous mapping.
 *   complete— completion events fire: write-back allocation happens
 *             here (VP write-back policy may squash back to the IQ);
 *             values broadcast to the IQ; mispredicted branches trigger
 *             the recovery walk and fetch redirect.
 *   issue   — oldest-first select over ready IQ entries constrained by
 *             FUs, register-file read ports, cache ports, memory
 *             disambiguation and the renamer's issue gate.
 *   rename  — drains the fetch buffer into ROB/IQ/LSQ through the
 *             RenameManager.
 *   fetch   — fills the fetch buffer from the trace.
 */

#ifndef VPR_CORE_CORE_HH
#define VPR_CORE_CORE_HH

#include <memory>
#include <queue>
#include <vector>

#include "core/fetch.hh"
#include "core/fu_pool.hh"
#include "core/iq.hh"
#include "core/lsq.hh"
#include "core/regfile_ports.hh"
#include "core/rob.hh"
#include "memory/cache.hh"
#include "rename/rename_iface.hh"

namespace vpr
{

/** Full configuration of one core (defaults = the paper's machine). */
struct CoreConfig
{
    unsigned renameWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    std::size_t robSize = 128;
    std::size_t iqSize = 128;
    std::size_t lsqSize = 128;
    unsigned regReadPorts = 16;
    unsigned regWritePorts = 8;
    unsigned cachePorts = 3;

    RenameScheme scheme = RenameScheme::VPAllocAtWriteback;
    RenameConfig rename;
    FetchConfig fetch;
    FuPoolConfig fu;
    CacheConfig cache;

    /** Run the renamer's invariant self-check every 64 cycles. */
    bool invariantChecks = false;
    /** Panic if no instruction commits for this many cycles. */
    Cycle deadlockThreshold = 200000;
};

/** Counters reported after a run (deltas since the last resetStats). */
struct CoreStatsSnapshot
{
    Cycle cycles = 0;
    std::uint64_t committed = 0;
    std::uint64_t committedExecutions = 0; ///< issues of committed insts
    std::uint64_t issued = 0;
    std::uint64_t squashed = 0;
    std::uint64_t wbRejections = 0;  ///< VP write-back denials
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t renameStallReg = 0;
    std::uint64_t renameStallRob = 0;
    std::uint64_t renameStallIq = 0;
    std::uint64_t renameStallLsq = 0;
    std::uint64_t storeCommitStalls = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheAccesses = 0;
    double avgBusyIntRegs = 0.0;
    double avgBusyFpRegs = 0.0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committed) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Mean executions per committed instruction (re-execution factor,
     *  ~1.0 for schemes without write-back squashes). */
    double
    executionsPerCommit() const
    {
        return committed ? static_cast<double>(committedExecutions) /
                               static_cast<double>(committed)
                         : 0.0;
    }
};

/** One simulated out-of-order core. */
class Core
{
  public:
    Core(TraceStream &stream, const CoreConfig &config);

    /** Advance one cycle. @return false once the pipeline has drained. */
    bool tick();

    /** Run until @p maxCommitted instructions committed (or done). */
    void runUntilCommitted(std::uint64_t maxCommitted);

    Cycle cycle() const { return curCycle; }
    std::uint64_t committedInsts() const { return nCommitted; }
    bool done() const;

    /** Start a measurement interval: zero all delta counters. */
    void resetStats();

    /** Counters accumulated since the last resetStats(). */
    CoreStatsSnapshot snapshot() const;

    /** True if a completion event for @p seq is pending (tests/debug). */
    bool hasPendingEvent(InstSeqNum seq) const;

    /** Component access (tests / detailed reporting). @{ */
    const Rob &rob() const { return theRob; }
    const InstQueue &iq() const { return theIq; }
    const Lsq &lsq() const { return theLsq; }
    const NonBlockingCache &cache() const { return theCache; }
    const FetchUnit &fetchUnit() const { return fetch; }
    const RenameManager &renamer() const { return *renameMgr; }
    RenameManager &renamer() { return *renameMgr; }
    const FuPool &fuPool() const { return fus; }
    const CoreConfig &config() const { return cfg; }
    /** @} */

  private:
    struct CompletionEvent
    {
        Cycle when;
        InstSeqNum seq;
        DynInst *inst;

        bool
        operator>(const CompletionEvent &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    void commitStage();
    void completeStage();
    void issueStage();
    void renameStage();
    bool tryIssueOne(DynInst *inst);
    void squashYoungerThan(InstSeqNum seq);

    CoreConfig cfg;
    std::unique_ptr<RenameManager> renameMgr;
    FetchUnit fetch;
    Rob theRob;
    InstQueue theIq;
    Lsq theLsq;
    NonBlockingCache theCache;
    FuPool fus;
    RegFilePorts regPorts;
    PortSchedule cachePortSched;

    std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                        std::greater<CompletionEvent>>
        events;

    /** Issued stores whose data operand has not been produced yet; they
     *  complete once the data broadcast arrives. */
    std::vector<std::pair<DynInst *, InstSeqNum>> storesAwaitingData;

    Cycle curCycle = 0;
    InstSeqNum nextSeq = 0;
    Cycle lastCommitCycle = 0;

    // Monotonic counters; snapshots subtract the reset-time baseline.
    std::uint64_t nCommitted = 0;
    std::uint64_t nCommittedExecutions = 0;
    std::uint64_t nIssued = 0;
    std::uint64_t nSquashed = 0;
    std::uint64_t nWbRejections = 0;
    std::uint64_t nRenameStallReg = 0;
    std::uint64_t nRenameStallRob = 0;
    std::uint64_t nRenameStallIq = 0;
    std::uint64_t nRenameStallLsq = 0;
    std::uint64_t nStoreCommitStalls = 0;
    double busyIntRegsSum = 0.0;
    double busyFpRegsSum = 0.0;

    CoreStatsSnapshot baseline;  ///< counters at the last resetStats()
};

/** Build the rename manager implementing @p scheme. */
std::unique_ptr<RenameManager>
makeRenameManager(RenameScheme scheme, const RenameConfig &config);

} // namespace vpr

#endif // VPR_CORE_CORE_HH
