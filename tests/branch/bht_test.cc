/** @file Unit tests for the 2-bit BHT predictor. */

#include <gtest/gtest.h>

#include "branch/bht.hh"

namespace vpr
{
namespace
{

TEST(Bht, PaperDefaultConfiguration)
{
    BhtPredictor bht;
    EXPECT_EQ(bht.numEntries(), 2048u);
}

TEST(Bht, InitiallyWeaklyTaken)
{
    BhtPredictor bht(64);
    EXPECT_TRUE(bht.predict(0x1000));
    EXPECT_EQ(bht.counter(0x1000), 2);
}

TEST(Bht, TrainsTowardTaken)
{
    BhtPredictor bht(64);
    bht.update(0x40, true);
    EXPECT_EQ(bht.counter(0x40), 3);
    bht.update(0x40, true);  // saturates
    EXPECT_EQ(bht.counter(0x40), 3);
    EXPECT_TRUE(bht.predict(0x40));
}

TEST(Bht, TrainsTowardNotTaken)
{
    BhtPredictor bht(64);
    bht.update(0x40, false);
    EXPECT_EQ(bht.counter(0x40), 1);
    EXPECT_FALSE(bht.predict(0x40));
    bht.update(0x40, false);
    bht.update(0x40, false);  // saturates at 0
    EXPECT_EQ(bht.counter(0x40), 0);
}

TEST(Bht, HysteresisNeedsTwoFlips)
{
    BhtPredictor bht(64);
    // Drive to strongly taken.
    bht.update(0x10, true);
    // One not-taken outcome should not flip the prediction.
    bht.update(0x10, false);
    EXPECT_TRUE(bht.predict(0x10));
    bht.update(0x10, false);
    EXPECT_FALSE(bht.predict(0x10));
}

TEST(Bht, DistinctPcsUseDistinctCounters)
{
    BhtPredictor bht(64);
    bht.update(0x0, false);
    bht.update(0x0, false);
    EXPECT_FALSE(bht.predict(0x0));
    EXPECT_TRUE(bht.predict(0x4));  // neighbouring instruction unaffected
}

TEST(Bht, AliasingWrapsAroundTable)
{
    BhtPredictor bht(16);
    // PCs 4 * 16 = 64 bytes apart alias in a 16-entry table.
    bht.update(0x0, false);
    bht.update(0x0, false);
    EXPECT_FALSE(bht.predict(0x40));
}

TEST(Bht, AccuracyTracking)
{
    BhtPredictor bht(64);
    // Alternate T/N: the 2-bit counter mispredicts often.
    for (int i = 0; i < 100; ++i)
        bht.predictAndUpdate(0x8, i % 2 == 0);
    EXPECT_EQ(bht.lookups(), 100u);
    EXPECT_GT(bht.mispredicts(), 30u);
    EXPECT_LT(bht.accuracy(), 0.7);
}

TEST(Bht, PerfectLoopBranchAccuracy)
{
    BhtPredictor bht(64);
    // Always-taken loop branch: after warm-up, always correct.
    for (int i = 0; i < 100; ++i)
        bht.predictAndUpdate(0x20, true);
    EXPECT_GE(bht.accuracy(), 0.99);
}

TEST(Bht, ResetClearsStateAndStats)
{
    BhtPredictor bht(64);
    bht.predictAndUpdate(0x8, false);
    bht.predictAndUpdate(0x8, false);
    bht.reset();
    EXPECT_EQ(bht.lookups(), 0u);
    EXPECT_EQ(bht.mispredicts(), 0u);
    EXPECT_EQ(bht.counter(0x8), 2);
}

TEST(Bht, AccuracyIsOneWithNoBranches)
{
    BhtPredictor bht(64);
    EXPECT_DOUBLE_EQ(bht.accuracy(), 1.0);
}

TEST(BhtDeath, NonPowerOfTwoSizePanics)
{
    EXPECT_DEATH(BhtPredictor(1000), "power of two");
}

} // namespace
} // namespace vpr
