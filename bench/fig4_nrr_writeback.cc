/**
 * @file
 * Figure 4 of the paper: speedup of the virtual-physical organization
 * (register allocation at write-back) over the conventional scheme for
 * NRR in {1, 4, 8, 16, 24, 32}, with 64 physical registers per file.
 *
 * The grid and table live in the figure registry (bench/figures/), so
 * this binary, a --shard slice of it, and a merge_results re-render all
 * produce the same bytes.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return vpr::bench::figureMain("fig4_nrr_writeback", argc, argv);
}
