/**
 * @file
 * vpr_simd — the sweep-as-a-service daemon: a long-lived single-process
 * HTTP/JSON front end over the same sweep machinery vpr_sim drives from
 * the command line. Clients POST a sweep spec (the --sweep grammar as
 * JSON; see src/service/sweep_service.hh for the body format and the
 * endpoint list), the daemon expands it with sim/sweep.hh, runs the
 * cells on the parallel engine, and streams back the merged records,
 * byte-identical to a batch `vpr_sim --sweep ... --out` run.
 *
 * With sim.result_cache.dir set (--result-cache=<dir>), every cell's
 * result is content-addressed on disk, so overlapping sweeps — across
 * requests, daemon restarts, and the batch binaries — are served from
 * cache instead of re-simulated.
 *
 * Usage:
 *   vpr_simd [--host=<addr>] [--port=<n>] [--jobs=<n>]
 *            [--result-cache=<dir>] [--ckpt-dir=<dir>]
 *            [--cache-budget=<size>[K|M|G|T]] [--gc-dry-run]
 *            [--set <key>=<value>] [--config=<file.json>]
 *
 * --cache-budget runs one LRU garbage-collection pass over the
 * checkpoint and result-cache directories at startup (the same
 * collector as tools/cache_gc; --gc-dry-run only prints the plan).
 * The base configuration matches vpr_sim's, so a request body
 * reproduces a vpr_sim command line field for field.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "service/http.hh"
#include "service/sweep_service.hh"
#include "sim/experiment.hh"
#include "sim/params.hh"
#include "sim/result_cache.hh"

using namespace vpr;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--host=<addr>] [--port=<n>] [--jobs=<n>]\n"
                 "  [--result-cache=<dir>] [--ckpt-dir=<dir>]\n"
                 "  [--cache-budget=<size>[K|M|G|T]] [--gc-dry-run]\n"
                 "  [--set <key>=<value>] [--config=<file.json>] "
                 "[--dump-config]\n"
                 "endpoints: POST /sweep, GET /status, GET /params, "
                 "POST /shutdown\n"
                 "(see the file header and README \"Sweep service\")\n";
    std::exit(1);
}

bool
matchArg(const char *arg, const char *key, const char **value)
{
    std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        *value = arg + n + 1;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig config = paperConfig();
    config.skipInsts = 20000;
    config.measureInsts = 200000;
    config.core.fetch.wrongPath = WrongPathMode::Stall;

    std::string host = "127.0.0.1";
    std::uint16_t port = 8390;
    unsigned jobs = defaultJobs();
    std::uint64_t cacheBudget = 0;
    bool haveBudget = false;
    bool gcDryRun = false;
    ConfigCliArgs cli;

    auto alias = [&cli](const std::string &key, const std::string &value) {
        cli.assignments.push_back(key + "=" + value);
    };

    for (int i = 1; i < argc; ++i) {
        const char *v = nullptr;
        if (parseConfigArg(argc, argv, i, cli)) {
            // --set / --set= / --config= / --dump-config taken.
        } else if (matchArg(argv[i], "--host", &v)) {
            host = v;
        } else if (matchArg(argv[i], "--port", &v)) {
            port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
        } else if (matchArg(argv[i], "--jobs", &v)) {
            jobs = parseJobs(v);
        } else if (matchArg(argv[i], "--result-cache", &v)) {
            alias("sim.result_cache.dir", v);
        } else if (matchArg(argv[i], "--ckpt-dir", &v)) {
            alias("sim.ckpt.dir", v);
        } else if (matchArg(argv[i], "--cache-budget", &v)) {
            if (!parseByteSize(v, cacheBudget)) {
                std::cerr << "bad --cache-budget '" << v
                          << "' (want bytes with an optional K/M/G/T "
                             "suffix)\n";
                return 1;
            }
            haveBudget = true;
        } else if (std::strcmp(argv[i], "--gc-dry-run") == 0) {
            gcDryRun = true;
        } else {
            usage(argv[0]);
        }
    }

    applyConfigCli(config, cli);
    if (cli.dumpConfig) {
        dumpConfig(std::cout, config);
        return 0;
    }

    // Startup GC pass: enforce the byte budget over both on-disk caches
    // before accepting work, oldest files first.
    if (haveBudget) {
        const CacheGcPlan plan = planCacheGc(
            {config.ckpt.dir, config.resultCache.dir}, cacheBudget);
        printCacheGcPlan(std::cout, plan, cacheBudget, gcDryRun);
        if (!gcDryRun)
            applyCacheGc(plan);
    }

    service::HttpServer server;
    std::string error;
    if (!server.bindAndListen(host, port, error)) {
        std::cerr << "vpr_simd: " << error << "\n";
        return 1;
    }

    service::SweepService sweepService(config, jobs);
    const auto start = std::chrono::steady_clock::now();

    std::cout << "vpr_simd listening on " << host << ":" << server.port()
              << " (jobs=" << jobs << ", result cache: "
              << (config.resultCache.dir.empty() ? "off"
                                                 : config.resultCache.dir)
              << ")\n"
              << std::flush;

    server.serve([&](const service::HttpRequest &request) {
        const auto minute =
            std::chrono::duration_cast<std::chrono::minutes>(
                std::chrono::steady_clock::now() - start)
                .count();
        service::HttpResponse response = sweepService.handle(
            request, static_cast<std::uint64_t>(minute));
        if (sweepService.shutdownRequested())
            server.requestStop();
        return response;
    });

    std::cout << "vpr_simd: shutting down\n";
    return 0;
}
