/**
 * @file
 * Unit tests for the issue→complete CompletionQueue: the cycle-indexed
 * calendar (timing wheel) against the legacy binary heap it replaced.
 * The two must agree event for event — the determinism test checks the
 * whole simulator; these tests pin the structure down in isolation,
 * including the paths a short run may never hit (bucket wrap-around,
 * beyond-horizon overflow, late drains that skip cycles).
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/stages/latches.hh"

namespace vpr
{
namespace
{

/** A DynInst bound to a hot-pool row, shared by every scheduled event:
 *  the queue only copies inst->slot at schedule time, and these tests
 *  compare (when, seq) pop order, not instruction identity. */
struct CqFixture
{
    CqFixture() : hot(8)
    {
        hot.reset(0);
        inst.bindHot(&hot, 0);
    }

    InstHotPool hot;
    DynInst inst;
};

TEST(CompletionQueue, PopsInWhenThenSeqOrder)
{
    CqFixture f;
    CompletionQueue cq(true, 16);
    // Same cycle out of seq order, plus a later cycle scheduled first.
    cq.schedule(5, 30, &f.inst);
    cq.schedule(3, 20, &f.inst);
    cq.schedule(3, 10, &f.inst);
    EXPECT_EQ(cq.pendingEvents(), 3u);

    EXPECT_FALSE(cq.hasDue(2));
    ASSERT_TRUE(cq.hasDue(3));
    EXPECT_EQ(cq.popDue().seq, 10u);
    ASSERT_TRUE(cq.hasDue(3));
    EXPECT_EQ(cq.popDue().seq, 20u);
    EXPECT_FALSE(cq.hasDue(3));
    EXPECT_FALSE(cq.hasDue(4));
    ASSERT_TRUE(cq.hasDue(5));
    EXPECT_EQ(cq.popDue().seq, 30u);
    EXPECT_EQ(cq.pendingEvents(), 0u);
}

TEST(CompletionQueue, WrapsAroundTheRingManyTimes)
{
    CqFixture f;
    // Horizon 4: every fourth cycle reuses a bucket.
    CompletionQueue cq(true, 4);
    InstSeqNum seq = 0;
    for (Cycle now = 0; now < 100; ++now) {
        cq.schedule(now + 3, ++seq, &f.inst);
        if (cq.hasDue(now)) {
            CompletionEvent ev = cq.popDue();
            EXPECT_EQ(ev.when, now);
            EXPECT_FALSE(cq.hasDue(now)) << "one event per cycle";
        }
    }
    // Drain the tail: the last schedule was for cycle 99 + 3.
    for (Cycle now = 100; now < 103; ++now) {
        ASSERT_TRUE(cq.hasDue(now));
        cq.popDue();
    }
    EXPECT_EQ(cq.pendingEvents(), 0u);
}

TEST(CompletionQueue, BeyondHorizonEventsOverflowAndMigrateBack)
{
    CqFixture f;
    CompletionQueue cq(true, 8);
    // Far beyond the 8-cycle ring: an unpipelined FP divide, say.
    cq.schedule(70, 1, &f.inst);
    cq.schedule(75, 2, &f.inst);
    cq.schedule(3, 3, &f.inst);
    EXPECT_EQ(cq.pendingEvents(), 3u);
    EXPECT_TRUE(cq.pendingFor(1));
    EXPECT_TRUE(cq.pendingFor(2));

    ASSERT_TRUE(cq.hasDue(3));
    EXPECT_EQ(cq.popDue().seq, 3u);
    // Nothing due while the wheel turns toward the overflow events.
    for (Cycle now = 4; now < 70; ++now)
        EXPECT_FALSE(cq.hasDue(now));
    ASSERT_TRUE(cq.hasDue(70));
    EXPECT_EQ(cq.popDue().seq, 1u);
    ASSERT_TRUE(cq.hasDue(75));
    EXPECT_EQ(cq.popDue().seq, 2u);
    EXPECT_EQ(cq.pendingEvents(), 0u);
}

TEST(CompletionQueue, LateDrainStillPopsInOrder)
{
    CqFixture f;
    CompletionQueue cq(true, 16);
    cq.schedule(2, 1, &f.inst);
    cq.schedule(4, 2, &f.inst);
    cq.schedule(4, 3, &f.inst);
    // The caller skips straight to cycle 9: the wheel must not skip
    // the non-empty buckets in between.
    ASSERT_TRUE(cq.hasDue(9));
    CompletionEvent a = cq.popDue();
    EXPECT_EQ(a.when, 2u);
    EXPECT_EQ(a.seq, 1u);
    ASSERT_TRUE(cq.hasDue(9));
    EXPECT_EQ(cq.popDue().seq, 2u);
    ASSERT_TRUE(cq.hasDue(9));
    EXPECT_EQ(cq.popDue().seq, 3u);
    EXPECT_FALSE(cq.hasDue(9));
}

TEST(CompletionQueue, RandomizedCalendarMatchesHeap)
{
    // Drive a calendar and a heap with an identical randomized
    // schedule/drain interleaving — bursty arrivals, idle stretches,
    // same-cycle completions, latencies past the horizon — and demand
    // the exact same pop sequence and pending count at every step.
    CqFixture f;
    CompletionQueue cal(true, 64);
    CompletionQueue heap(false);
    std::mt19937 rng(0xc0ffee);
    auto below = [&rng](unsigned n) { return rng() % n; };

    InstSeqNum seq = 0;
    Cycle now = 0;
    for (int step = 0; step < 4000; ++step) {
        // Bursty arrivals: usually a few, sometimes none.
        unsigned arrivals = below(10) < 7 ? below(4) : 0;
        for (unsigned i = 0; i < arrivals; ++i) {
            // 1..150 spans both in-ring and overflow latencies.
            Cycle when = now + 1 + below(150);
            ++seq;
            cal.schedule(when, seq, &f.inst);
            heap.schedule(when, seq, &f.inst);
        }
        ASSERT_EQ(cal.pendingEvents(), heap.pendingEvents());

        // Occasionally stall (skip draining) for a few cycles.
        Cycle stride = below(20) == 0 ? 1 + below(5) : 1;
        now += stride;
        while (heap.hasDue(now)) {
            ASSERT_TRUE(cal.hasDue(now));
            CompletionEvent a = cal.popDue();
            CompletionEvent b = heap.popDue();
            ASSERT_EQ(a.when, b.when) << "step " << step;
            ASSERT_EQ(a.seq, b.seq) << "step " << step;
        }
        ASSERT_FALSE(cal.hasDue(now));
    }
    // Drain what is left, still in lockstep.
    while (heap.pendingEvents() > 0) {
        ++now;
        while (heap.hasDue(now)) {
            ASSERT_TRUE(cal.hasDue(now));
            ASSERT_EQ(cal.popDue().seq, heap.popDue().seq);
        }
    }
    EXPECT_EQ(cal.pendingEvents(), 0u);
}

TEST(CompletionQueue, PendingForAgreesBetweenCalendarAndHeap)
{
    CqFixture f;
    CompletionQueue cal(true, 8);
    CompletionQueue heap(false);
    std::mt19937 rng(42);
    InstSeqNum seq = 0;
    Cycle now = 0;
    for (int step = 0; step < 200; ++step) {
        Cycle when = now + 1 + rng() % 40;
        ++seq;
        cal.schedule(when, seq, &f.inst);
        heap.schedule(when, seq, &f.inst);
        now += rng() % 3;
        while (heap.hasDue(now)) {
            ASSERT_TRUE(cal.hasDue(now));
            cal.popDue();
            heap.popDue();
        }
        for (InstSeqNum probe = seq > 10 ? seq - 10 : 1; probe <= seq;
             ++probe) {
            ASSERT_EQ(cal.pendingFor(probe), heap.pendingFor(probe))
                << "sn:" << probe;
        }
    }
}

TEST(CompletionQueue, ParkedStoresSquashYoungerThan)
{
    // Parked stores are common code between the two mechanisms, but the
    // squash filter is the recovery path — pin it down here.
    CqFixture f;
    CompletionQueue cq(true, 16);
    cq.parkStore(&f.inst, 5);
    cq.parkStore(&f.inst, 9);
    cq.parkStore(&f.inst, 12);
    EXPECT_EQ(cq.parkedStoreCount(), 3u);
    cq.squashYoungerThan(9);
    EXPECT_EQ(cq.parkedStoreCount(), 2u);
    EXPECT_TRUE(cq.pendingFor(5));
    EXPECT_TRUE(cq.pendingFor(9));
    EXPECT_FALSE(cq.pendingFor(12));
}

} // namespace
} // namespace vpr
