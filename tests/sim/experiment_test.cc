/** @file Unit tests for the experiment harness helpers. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "sim/experiment.hh"
#include "trace/kernels/kernels.hh"

namespace vpr
{
namespace
{

TEST(Experiment, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 2.0}), 4.0 / 3.0);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    // Harmonic mean is dominated by the smallest element — the reason
    // the paper uses it for IPC.
    EXPECT_LT(harmonicMean({0.5, 4.0}), 1.0);
}

TEST(Experiment, RunOneProducesPlausibleResults)
{
    SimConfig c = paperConfig();
    c.skipInsts = 1000;
    c.measureInsts = 10000;
    auto r = runOne("compress", c);
    EXPECT_GT(r.ipc(), 0.1);
    EXPECT_LT(r.ipc(), 8.0);
    EXPECT_GE(r.committed(), 10000u);
    EXPECT_GT(r.bhtAccuracy(), 0.5);
}

TEST(Experiment, RunAllCoversEveryBenchmark)
{
    SimConfig c = paperConfig();
    c.skipInsts = 200;
    c.measureInsts = 3000;
    auto all = runAll(c);
    EXPECT_EQ(all.size(), benchmarkNames().size());
    for (const auto &name : benchmarkNames()) {
        ASSERT_TRUE(all.count(name)) << name;
        EXPECT_GT(all[name].ipc(), 0.0) << name;
    }
}

TEST(Experiment, TableFormatting)
{
    std::ostringstream os;
    printTableHeader(os, "My Table", {"a", "b"});
    printTableRow(os, "row1", {1.5, 2.25}, 2);
    std::string out = os.str();
    EXPECT_NE(out.find("My Table"), std::string::npos);
    EXPECT_NE(out.find("row1"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(Experiment, InstructionScaleAppliesToBudgets)
{
    SimConfig c = paperConfig();
    c.skipInsts = 10000;
    c.measureInsts = 50000;
    applyInstructionScale(c);  // default scale 1.0
    EXPECT_EQ(c.skipInsts, 10000u);
    EXPECT_EQ(c.measureInsts, 50000u);
}

TEST(Experiment, MeasureFloorEnforced)
{
    SimConfig c = paperConfig();
    c.measureInsts = 10;  // absurdly small
    applyInstructionScale(c);
    EXPECT_GE(c.measureInsts, 1000u);
}

} // namespace
} // namespace vpr
