/**
 * @file
 * Sharded-sweep tests: shard arithmetic, and the acceptance property —
 * merging the per-shard records of a real figure reproduces both the
 * unsharded CSV and the rendered table byte for byte.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "figures.hh"
#include "sim/results_io.hh"

namespace vpr
{
namespace
{

TEST(ShardSpec, ParseAcceptsValidSpecs)
{
    ShardSpec s = parseShard("2/5");
    EXPECT_EQ(s.index, 2u);
    EXPECT_EQ(s.count, 5u);
    EXPECT_TRUE(s.active());
    EXPECT_FALSE(parseShard("0/1").active());
}

TEST(ShardSpecDeath, ParseRejectsGarbage)
{
    EXPECT_EXIT(parseShard("5/5"), ::testing::ExitedWithCode(1),
                "bad shard");
    EXPECT_EXIT(parseShard("3"), ::testing::ExitedWithCode(1),
                "bad shard");
    EXPECT_EXIT(parseShard("x/2"), ::testing::ExitedWithCode(1),
                "bad shard");
    EXPECT_EXIT(parseShard("1/0"), ::testing::ExitedWithCode(1),
                "bad shard");
}

TEST(ShardSpec, IndicesPartitionTheGrid)
{
    const std::size_t total = 11;
    const unsigned count = 3;
    std::vector<bool> seen(total, false);
    for (unsigned i = 0; i < count; ++i) {
        for (std::size_t cell :
             shardCellIndices(total, ShardSpec{i, count})) {
            ASSERT_LT(cell, total);
            EXPECT_FALSE(seen[cell]) << "cell in two shards";
            seen[cell] = true;
            EXPECT_EQ(cell % count, i);  // round-robin deal
        }
    }
    for (std::size_t c = 0; c < total; ++c)
        EXPECT_TRUE(seen[c]) << "cell " << c << " unassigned";
}

TEST(ShardSpec, SingleShardIsTheWholeGrid)
{
    std::vector<std::size_t> all = shardCellIndices(4, ShardSpec{});
    EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2, 3}));
}

/**
 * The acceptance property on a real (small) figure: run
 * motivating_example unsharded and as 2 shards; the merged shard
 * records must equal the unsharded export byte for byte, and the table
 * rendered from the merged records must equal the unsharded table byte
 * for byte.
 */
TEST(ShardEquivalence, MergedShardsReproduceUnshardedRunExactly)
{
    const bench::FigureDef *def = bench::findFigure("motivating_example");
    ASSERT_NE(def, nullptr);

    const std::vector<GridCell> cells = def->build();
    ASSERT_GE(cells.size(), 2u);

    // Unsharded reference run.
    std::vector<SimResults> direct = runGrid(cells, 2);
    std::ostringstream directTable;
    def->render(cells, direct, directTable);
    std::vector<std::size_t> allIndices(cells.size());
    std::iota(allIndices.begin(), allIndices.end(), 0);
    std::ostringstream directCsv;
    writeResultsCsv(directCsv, def->name, ShardSpec{}, allIndices,
                    cells, direct);

    // Two independent shard runs, exported and parsed back.
    std::vector<ResultsFile> shards;
    for (unsigned i = 0; i < 2; ++i) {
        ShardSpec spec{i, 2};
        std::vector<std::size_t> indices =
            shardCellIndices(cells.size(), spec);
        std::vector<GridCell> selected = selectCells(cells, indices);
        std::vector<SimResults> results = runGrid(selected, 1);

        std::ostringstream os;
        writeResultsCsv(os, def->name, spec, indices, cells, results);
        std::istringstream is(os.str());
        shards.push_back(readResultsCsv(is, "shard"));
        // Each shard's embedded provenance matches the figure's grid.
        verifyCellProvenance(shards.back(), cells, "shard");
    }

    ResultsFile merged = mergeResults(shards);
    verifyCellProvenance(merged, cells, "merged");
    std::ostringstream mergedCsv;
    writeMergedCsv(mergedCsv, merged);
    EXPECT_EQ(mergedCsv.str(), directCsv.str());

    std::vector<SimResults> rebuilt = resultsFromFile(merged);
    std::ostringstream rebuiltTable;
    def->render(cells, rebuilt, rebuiltTable);
    EXPECT_EQ(rebuiltTable.str(), directTable.str());
    EXPECT_NE(directTable.str().find("writeback"), std::string::npos);
}

TEST(FigureRegistry, EveryBenchBinaryIsRegistered)
{
    for (const char *name :
         {"table2_ipc", "fig4_nrr_writeback", "fig5_nrr_issue",
          "fig6_wb_vs_issue", "fig7_regfile_size",
          "ablation_early_release", "ablation_mshr", "ablation_window",
          "ablation_wrongpath", "motivating_example", "regpressure"}) {
        const bench::FigureDef *def = bench::findFigure(name);
        ASSERT_NE(def, nullptr) << name;
        EXPECT_EQ(def->name, name);
        EXPECT_FALSE(def->build().empty()) << name;
    }
    EXPECT_EQ(bench::findFigure("nope"), nullptr);
}

} // namespace
} // namespace vpr
