#include "core/iq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vpr
{

void
InstQueue::addWaiters(DynInst *inst)
{
    if (scanWakeup)
        return;
    for (std::size_t i = 0; i < kMaxSrcRegs; ++i) {
        const SrcOperand &s = inst->src[i];
        if (!s.valid || s.ready)
            continue;
        auto &lists = waitLists[classIdx(s.cls)];
        if (s.tag >= lists.size())
            lists.resize(s.tag + 1);
        // First waiter on this tag: size the list for a realistic
        // burst up front so steady state rarely needs to grow it at
        // all (growth beyond this is one-time per tag — the buffer is
        // never swapped away).
        if (lists[s.tag].capacity() == 0)
            lists[s.tag].reserve(kWaitListReserve);
        lists[s.tag].push_back(
            {inst, inst->seq(), inst->slot, static_cast<std::uint8_t>(i)});
    }
}

void
InstQueue::insert(DynInst *inst)
{
    VPR_ASSERT(!full(), "insert into full IQ");
    inst->setInIq(true);
    addWaiters(inst);
    maybePublishReady(inst);
    if (list.empty() || list.back()->seq() < inst->seq()) {
        list.push_back(inst);
        return;
    }
    // Re-insertion after a write-back allocation squash: keep age order.
    auto it = std::lower_bound(
        list.begin(), list.end(), inst,
        [](const DynInst *a, const DynInst *b) { return a->seq() < b->seq(); });
    VPR_ASSERT(it == list.end() || (*it)->seq() != inst->seq(),
               "duplicate IQ entry sn:", inst->seq());
    list.insert(it, inst);
}

void
InstQueue::remove(DynInst *inst)
{
    auto it = std::lower_bound(
        list.begin(), list.end(), inst,
        [](const DynInst *a, const DynInst *b) { return a->seq() < b->seq(); });
    VPR_ASSERT(it != list.end() && *it == inst,
               "IQ remove: entry not present");
    inst->setInIq(false);
    inst->setInReadyQ(false);
    list.erase(it);
}

void
InstQueue::removeAt(std::size_t i)
{
    VPR_ASSERT(i < list.size(), "IQ removeAt: index out of range");
    list[i]->setInIq(false);
    list[i]->setInReadyQ(false);
    list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
}

void
InstQueue::squashYoungerThan(InstSeqNum seq)
{
    while (!list.empty() && list.back()->seq() > seq) {
        list.back()->setInIq(false);
        list.back()->setInReadyQ(false);
        list.pop_back();
    }
}

void
InstQueue::clear()
{
    for (DynInst *inst : list) {
        inst->setInIq(false);
        inst->setInReadyQ(false);
    }
    list.clear();
    for (auto &lists : waitLists)
        lists.clear();
    readyEvents.clear();
}

unsigned
InstQueue::wakeup(RegClass cls, std::uint16_t tag, std::uint16_t physReg)
{
    ++broadcasts;
    unsigned nWoken = 0;

    if (scanWakeup) {
        // Reference path: scan every queue entry for matching sources.
        for (DynInst *inst : list) {
            bool touched = false;
            for (auto &s : inst->src) {
                if (s.valid && !s.ready && s.cls == cls && s.tag == tag) {
                    s.tag = physReg;
                    s.ready = true;
                    touched = true;
                    ++nWoken;
                }
            }
            if (touched)
                maybePublishReady(inst);
        }
        woken += nWoken;
        return nWoken;
    }

    auto &lists = waitLists[classIdx(cls)];
    if (tag >= lists.size()) {
        return 0;
    }
    // Consume the tag's wait list: every valid waiter wakes; stale
    // entries (instruction issued, squashed, or its slot reused — the
    // seq/residency check catches all three) are simply dropped. A tag
    // is broadcast at most once per allocation, so the list drains
    // exactly when the old scan would have found its waiters. The
    // staleness check reads only the packed hot arrays via the recorded
    // slot; a stale waiter never touches its DynInst.
    // Copy the tag's list into a persistent scratch buffer and clear
    // it (a waiter appended mid-processing must not be consumed by
    // this broadcast). Copy, never swap: with a swap the buffer
    // capacities circulate through the scratch across all tags, so a
    // hot tag keeps inheriting whichever small buffer the scratch last
    // held and re-grows it — rare reallocations that never converge.
    // With per-tag stable buffers every list reaches its own
    // high-water capacity once and the steady state allocates nothing
    // (pinned per cycle by the hot-loop allocation tests).
    wakeScratch.assign(lists[tag].begin(), lists[tag].end());
    lists[tag].clear();
    for (const Waiter &w : wakeScratch) {
        if (!hot.live(w.slot, w.seq) || !hot.isInIq(w.slot))
            continue;
        SrcOperand &s = w.inst->src[w.srcIdx];
        if (!s.valid || s.ready || s.cls != cls || s.tag != tag)
            continue;
        s.tag = physReg;
        s.ready = true;
        ++nWoken;
        maybePublishReady(w.inst);
    }
    woken += nWoken;
    return nWoken;
}

} // namespace vpr
