/**
 * @file
 * vpr_client — thin command-line client for the vpr_simd sweep daemon.
 *
 * Usage:
 *   vpr_client [--host=<addr>] [--port=<n>] [--out=<path>] <command>
 *
 * Commands:
 *   sweep     POST /sweep. The JSON body is built from the same flags
 *             vpr_sim takes (--sweep=<k=v1,v2,...> repeatable,
 *             --set=<k=v> repeatable, --target=<bench|all>,
 *             --figure=<name>, --format=csv|json) — or passed verbatim
 *             with --body=<file> ("-" = stdin).
 *   status    GET /status (the daemon's JSON health/metrics page).
 *   params    GET /params (the parameter reference + benchmark list).
 *   shutdown  POST /shutdown.
 *
 * The response body goes to --out or stdout. Exit status: 0 on HTTP
 * 200, 2 on a non-200 response (body printed to stderr), 1 on a
 * transport error or bad usage.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/http.hh"
#include "service/sweep_service.hh"

using namespace vpr;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--host=<addr>] [--port=<n>] [--out=<path>] <command>\n"
           "commands:\n"
           "  sweep [--target=<bench|all>] [--sweep=<k=v1,v2,...>]...\n"
           "        [--set=<k=v>]... [--figure=<name>] "
           "[--format=csv|json]\n"
           "        [--body=<file.json|->]\n"
           "  status | params | shutdown\n";
    std::exit(1);
}

bool
matchArg(const char *arg, const char *key, const char **value)
{
    std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
        *value = arg + n + 1;
        return true;
    }
    return false;
}

void
appendField(std::string &json, const char *key,
            const std::vector<std::string> &values)
{
    if (values.empty())
        return;
    if (json.size() > 1)
        json += ", ";
    json += std::string("\"") + key + "\": [";
    for (std::size_t i = 0; i < values.size(); ++i)
        json += (i ? ", \"" : "\"") + service::jsonEscape(values[i]) +
                "\"";
    json += "]";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 8390;
    std::string outPath;
    std::string command;
    std::string bodyFile;
    std::vector<std::string> targets, sweeps, sets;
    std::vector<std::string> figure, format;

    for (int i = 1; i < argc; ++i) {
        const char *v = nullptr;
        if (matchArg(argv[i], "--host", &v)) {
            host = v;
        } else if (matchArg(argv[i], "--port", &v)) {
            port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
        } else if (matchArg(argv[i], "--out", &v)) {
            outPath = v;
        } else if (matchArg(argv[i], "--target", &v)) {
            targets.push_back(v);
        } else if (matchArg(argv[i], "--sweep", &v)) {
            sweeps.push_back(v);
        } else if (matchArg(argv[i], "--set", &v)) {
            sets.push_back(v);
        } else if (matchArg(argv[i], "--figure", &v)) {
            figure.assign(1, v);
        } else if (matchArg(argv[i], "--format", &v)) {
            format.assign(1, v);
        } else if (matchArg(argv[i], "--body", &v)) {
            bodyFile = v;
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
        } else if (command.empty()) {
            command = argv[i];
        } else {
            usage(argv[0]);
        }
    }

    std::string method, path, body;
    if (command == "sweep") {
        method = "POST";
        path = "/sweep";
        if (!bodyFile.empty()) {
            if (bodyFile == "-") {
                std::ostringstream ss;
                ss << std::cin.rdbuf();
                body = ss.str();
            } else {
                std::ifstream in(bodyFile, std::ios::binary);
                if (!in) {
                    std::cerr << "cannot read body file '" << bodyFile
                              << "'\n";
                    return 1;
                }
                std::ostringstream ss;
                ss << in.rdbuf();
                body = ss.str();
            }
        } else {
            body = "{";
            appendField(body, "target", targets);
            appendField(body, "sweep", sweeps);
            appendField(body, "set", sets);
            appendField(body, "figure", figure);
            appendField(body, "format", format);
            body += "}";
        }
    } else if (command == "status") {
        method = "GET";
        path = "/status";
    } else if (command == "params") {
        method = "GET";
        path = "/params";
    } else if (command == "shutdown") {
        method = "POST";
        path = "/shutdown";
    } else {
        usage(argv[0]);
    }

    service::HttpResponse response;
    std::string error;
    if (!service::httpRequest(host, port, method, path, body, response,
                              error)) {
        std::cerr << "vpr_client: " << error << "\n";
        return 1;
    }
    if (response.status != 200) {
        std::cerr << "vpr_client: HTTP " << response.status << " "
                  << service::httpReason(response.status) << "\n"
                  << response.body;
        return 2;
    }

    if (outPath.empty()) {
        std::cout << response.body;
    } else {
        std::ofstream out(outPath, std::ios::binary);
        if (!out) {
            std::cerr << "cannot write '" << outPath << "'\n";
            return 1;
        }
        out << response.body;
    }
    return 0;
}
