/**
 * @file
 * Operation classes of the simulated ISA and their latency/FU mapping.
 *
 * The classes mirror Table 1 of the paper: simple integer, complex
 * integer (multiply/divide), effective address, simple FP, FP multiply,
 * and FP divide/sqrt, plus memory and control operations.
 */

#ifndef VPR_ISA_OP_CLASS_HH
#define VPR_ISA_OP_CLASS_HH

#include <cstdint>

namespace vpr
{

/** Operation class: determines functional unit and latency. */
enum class OpClass : std::uint8_t
{
    IntAlu,    ///< add/sub/logic/shift/compare — Simple Integer FU, 1 cyc
    IntMult,   ///< integer multiply — Complex Integer FU, 9 cyc
    IntDiv,    ///< integer divide — Complex Integer FU, 67 cyc, unpipelined
    Load,      ///< memory read — EffAddr FU + cache port
    Store,     ///< memory write — EffAddr FU; data written at commit
    FpAdd,     ///< FP add/sub/convert/compare — Simple FP FU, 4 cyc
    FpMult,    ///< FP multiply — FP Multiplication FU, 4 cyc
    FpDiv,     ///< FP divide — FP Div/Sqrt FU, 16 cyc, unpipelined
    FpSqrt,    ///< FP square root — FP Div/Sqrt FU, 16 cyc, unpipelined
    Branch,    ///< conditional/unconditional branch — Simple Integer FU
    Nop,       ///< no-operation (still occupies a ROB slot)
    NumOpClasses
};

/** Number of distinct op classes. */
inline constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::NumOpClasses);

/** Functional-unit groups from Table 1 of the paper. */
enum class FUType : std::uint8_t
{
    SimpleInt,   ///< 3 units, latency 1
    ComplexInt,  ///< 2 units, 9 (mult) / 67 (div)
    EffAddr,     ///< 3 units, latency 1 (address generation)
    SimpleFp,    ///< 3 units, latency 4
    FpMul,       ///< 2 units, latency 4
    FpDivSqrt,   ///< 2 units, latency 16
    None,        ///< nops: no functional unit needed
    NumFUTypes
};

/** Number of FU groups. */
inline constexpr std::size_t kNumFUTypes =
    static_cast<std::size_t>(FUType::NumFUTypes);

/** Short mnemonic for an op class ("intalu", "fpdiv", ...). */
const char *opClassName(OpClass op);

/** Short name for an FU type. */
const char *fuTypeName(FUType fu);

/** Which FU group executes the op class. */
FUType fuTypeFor(OpClass op);

/**
 * Execution latency of the op class on its functional unit, in cycles.
 * For loads this is the address-generation latency only; cache access
 * time is added by the memory system.
 */
unsigned opLatency(OpClass op);

/** True if the op class keeps its FU busy for the whole latency. */
bool opUnpipelined(OpClass op);

/** True for memory operations. */
inline bool
isMemOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

/** True for FP-computation classes (not loads/stores of FP data). */
inline bool
isFpOp(OpClass op)
{
    return op == OpClass::FpAdd || op == OpClass::FpMult ||
           op == OpClass::FpDiv || op == OpClass::FpSqrt;
}

} // namespace vpr

#endif // VPR_ISA_OP_CLASS_HH
