/**
 * @file
 * Tests for the reflective config-parameter API (sim/params.hh):
 * registry lookups, every-parameter reachability, round-trip fuzz of
 * --set / dump / load, provenance contents, and the error paths.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>

#include "sim/params.hh"
#include "sim/config.hh"

namespace vpr
{
namespace
{

TEST(ConfigRegistry, FindsDottedNamesWithDefaults)
{
    SimConfig config;
    ConfigRegistry registry(config);
    EXPECT_EQ(registry.get("core.iq_size"), "128");
    EXPECT_EQ(registry.get("core.cache.miss_penalty"), "50");
    EXPECT_EQ(registry.get("core.rename.phys_regs"), "64");
    EXPECT_EQ(registry.get("core.scheme"), "vp-writeback");
    EXPECT_EQ(registry.get("core.fetch.wrong_path"), "synthesize");
    EXPECT_EQ(registry.get("seed"), "0");
    EXPECT_NE(registry.find("core.fu.fp_div_sqrt"), nullptr);
    EXPECT_EQ(registry.find("core.nope"), nullptr);
}

TEST(ConfigRegistry, SetWritesThroughToTheStruct)
{
    SimConfig config;
    ConfigRegistry registry(config);
    registry.set("core.cache.miss_penalty", "75");
    EXPECT_EQ(config.core.cache.missPenalty, 75u);
    registry.set("core.scheme", "conv");  // alias accepted...
    EXPECT_EQ(config.core.scheme, RenameScheme::Conventional);
    // ...but get() always returns the canonical name.
    EXPECT_EQ(registry.get("core.scheme"), "conventional");
    registry.set("core.fetch.wrong_path_mem", "true");
    EXPECT_TRUE(config.core.fetch.wrongPathMem);
}

TEST(ConfigRegistry, DerivedParamsApplyTheSizingRules)
{
    SimConfig config;
    ConfigRegistry registry(config);
    registry.set("core.rename.regfile_size", "48");
    EXPECT_EQ(config.core.rename.numPhysRegs, 48u);
    EXPECT_EQ(config.core.rename.nrrInt, 16u);   // max = NPR - NLR
    EXPECT_EQ(config.core.rename.nrrFp, 16u);
    EXPECT_EQ(config.core.rename.numVPRegs, 32u + 128u);

    registry.set("core.rename.nrr", "4");
    EXPECT_EQ(config.core.rename.nrrInt, 4u);
    EXPECT_EQ(config.core.rename.nrrFp, 4u);

    registry.set("core.window", "256");
    EXPECT_EQ(config.core.robSize, 256u);
    EXPECT_EQ(config.core.iqSize, 256u);
    EXPECT_EQ(config.core.lsqSize, 256u);
    EXPECT_EQ(config.core.rename.numVPRegs, 32u + 256u);
    config.validate();
}

/** Pick a value different from @p current for @p def. */
std::string
differentValue(const ParamDef &def, const std::string &current)
{
    switch (def.kind) {
      case ParamDef::Kind::Bool:
        return current == "0" ? "1" : "0";
      case ParamDef::Kind::Enum:
        for (const std::string &name : def.enumNames)
            if (name != current)
                return name;
        ADD_FAILURE() << def.name << ": single-valued enum";
        return current;
      case ParamDef::Kind::UInt:
      default:
        return current == "1" ? "2" : "1";
    }
}

TEST(ConfigRegistry, EveryParameterIsReachable)
{
    // Walk the registry: every key must actually mutate a fresh
    // SimConfig — a registered-but-disconnected parameter (or two
    // params bound to one field) would break provenance.
    SimConfig reference;
    const std::size_t count = ConfigRegistry(reference).params().size();
    ASSERT_GT(count, 30u);

    for (std::size_t i = 0; i < count; ++i) {
        SimConfig config;
        ConfigRegistry registry(config);
        const ParamDef &def = registry.params()[i];
        const std::string before = def.get();
        const std::string target = differentValue(def, before);
        ASSERT_TRUE(def.set(target)) << def.name << " <- " << target;
        EXPECT_EQ(def.get(), target) << def.name;

        if (def.derived || def.execOnly)
            continue;  // not serialized; reachability checked above
        // The mutation must surface in the dumped document too.
        std::ostringstream dumped;
        dumpConfig(dumped, config);
        EXPECT_NE(dumped.str().find("\"" + def.name + "\": \"" + target +
                                    "\""),
                  std::string::npos)
            << def.name;
    }
}

TEST(ConfigRegistry, ProvenanceIncludesSeedButNeverJobs)
{
    SimConfig config;
    config.seed = 1234;
    config.jobs = 7;
    bool sawSeed = false;
    for (const auto &[name, value] : configProvenance(config)) {
        EXPECT_NE(name, "jobs");
        if (name == "seed") {
            sawSeed = true;
            EXPECT_EQ(value, "1234");
        }
    }
    EXPECT_TRUE(sawSeed);

    // And derived params never appear (only their underlying values).
    for (const auto &[name, value] : configProvenance(config)) {
        (void)value;
        EXPECT_NE(name, "core.rename.regfile_size");
        EXPECT_NE(name, "core.window");
    }
}

TEST(ConfigParams, AssignDumpLoadDumpIsByteIdenticalUnderFuzz)
{
    // Random --set batches must round-trip: apply -> dump -> load into
    // a fresh config -> dump again, byte-identical.
    std::mt19937_64 rng(0xc0ffee);
    SimConfig proto;
    const std::size_t count = ConfigRegistry(proto).params().size();

    for (int round = 0; round < 40; ++round) {
        SimConfig config;
        {
            ConfigRegistry registry(config);
            for (std::size_t i = 0; i < count; ++i) {
                if (rng() % 3 != 0)
                    continue;
                const ParamDef &def = registry.params()[i];
                std::string value;
                switch (def.kind) {
                  case ParamDef::Kind::Bool:
                    value = rng() % 2 ? "1" : "0";
                    break;
                  case ParamDef::Kind::Enum:
                    value = def.enumNames[rng() % def.enumNames.size()];
                    break;
                  case ParamDef::Kind::UInt:
                  default:
                    value = std::to_string(
                        rng() % (std::min<std::uint64_t>(
                                     def.maxValue, 1000000) +
                                 1));
                    break;
                }
                registry.set(def.name, value);
            }
        }

        std::ostringstream first;
        dumpConfig(first, config);

        SimConfig reloaded;
        std::istringstream in(first.str());
        loadConfig(reloaded, in, "fuzz");
        std::ostringstream second;
        dumpConfig(second, reloaded);
        ASSERT_EQ(first.str(), second.str()) << "round " << round;
    }
}

TEST(ConfigParams, DumpExcludesExecutionOnlyKnobs)
{
    // A config file describes the machine, not how a grid is run:
    // loading one must never clobber a --jobs given on the command
    // line, so jobs is not serialized at all.
    SimConfig config;
    config.jobs = 9;
    std::ostringstream os;
    dumpConfig(os, config);
    EXPECT_EQ(os.str().find("\"jobs\""), std::string::npos);

    SimConfig reloaded;
    reloaded.jobs = 4;
    std::istringstream is(os.str());
    loadConfig(reloaded, is, "dump");
    EXPECT_EQ(reloaded.jobs, 4u);
}

TEST(ConfigParams, CliContractLoadsConfigFileFirstSoSetWins)
{
    // The shared --set/--config contract: the file loads first and
    // --set assignments win, regardless of argument order (every
    // binary routes through applyConfigCli).
    SimConfig donor;
    donor.core.cache.missPenalty = 99;
    donor.core.cache.numMshrs = 2;
    const std::string path =
        testing::TempDir() + "params_test_cli_contract.json";
    {
        std::ofstream os(path);
        dumpConfig(os, donor);
    }

    ConfigCliArgs cli;
    cli.configPath = path;
    cli.assignments = {"core.cache.miss_penalty=10"};
    SimConfig config;
    applyConfigCli(config, cli);
    EXPECT_EQ(config.core.cache.missPenalty, 10u);  // --set wins
    EXPECT_EQ(config.core.cache.numMshrs, 2u);      // file applied
}

TEST(ConfigParams, ParseConfigArgRecognizesBothSetSpellings)
{
    const char *argv[] = {"prog",           "--set",
                          "core.iq_size=64", "--set=seed=3",
                          "--config=c.json", "--dump-config",
                          "positional"};
    const int argc = 7;
    ConfigCliArgs cli;
    std::vector<std::string> rest;
    for (int i = 1; i < argc; ++i)
        if (!parseConfigArg(argc, const_cast<char **>(argv), i, cli))
            rest.push_back(argv[i]);
    EXPECT_EQ(cli.assignments,
              (std::vector<std::string>{"core.iq_size=64", "seed=3"}));
    EXPECT_EQ(cli.configPath, "c.json");
    EXPECT_TRUE(cli.dumpConfig);
    EXPECT_EQ(rest, (std::vector<std::string>{"positional"}));
}

TEST(ConfigParams, ApplyAssignmentParsesKeyEqualsValue)
{
    SimConfig config;
    applyAssignment(config, "core.cache.num_mshrs=4");
    EXPECT_EQ(config.core.cache.numMshrs, 4u);
    applyAssignments(config,
                     {"skip_insts=111", "measure_insts=222"});
    EXPECT_EQ(config.skipInsts, 111u);
    EXPECT_EQ(config.measureInsts, 222u);
}

TEST(ConfigParams, ParamReferenceDocumentsEveryParam)
{
    const std::vector<ParamInfo> reference = paramReference();
    ASSERT_GT(reference.size(), 30u);
    for (const ParamInfo &p : reference) {
        EXPECT_FALSE(p.doc.empty()) << p.name;
        EXPECT_FALSE(p.type.empty()) << p.name;
        EXPECT_FALSE(p.defaultText.empty()) << p.name;
    }
    std::ostringstream help;
    printParamHelp(help);
    EXPECT_NE(help.str().find("core.cache.miss_penalty"),
              std::string::npos);
    EXPECT_NE(help.str().find("core.rename.regfile_size"),
              std::string::npos);
}

// --- error paths ----------------------------------------------------------

TEST(ConfigParamsDeath, UnknownKeyIsFatal)
{
    SimConfig config;
    EXPECT_EXIT(applyAssignment(config, "core.warp_drive=9"),
                ::testing::ExitedWithCode(1), "unknown parameter");
}

TEST(ConfigParamsDeath, MalformedAssignmentIsFatal)
{
    SimConfig config;
    EXPECT_EXIT(applyAssignment(config, "core.iq_size"),
                ::testing::ExitedWithCode(1), "malformed assignment");
}

TEST(ConfigParamsDeath, BadValueIsFatal)
{
    SimConfig config;
    EXPECT_EXIT(applyAssignment(config, "core.iq_size=lots"),
                ::testing::ExitedWithCode(1), "bad value");
}

TEST(ConfigParamsDeath, OutOfRangeValueIsFatal)
{
    SimConfig config;
    // phys_regs is a u16 field: 70000 does not fit.
    EXPECT_EXIT(applyAssignment(config, "core.rename.phys_regs=70000"),
                ::testing::ExitedWithCode(1), "bad value");
}

TEST(ConfigParamsDeath, BadEnumNameIsFatal)
{
    SimConfig config;
    EXPECT_EXIT(applyAssignment(config, "core.scheme=magic"),
                ::testing::ExitedWithCode(1), "bad value");
}

TEST(ConfigParamsDeath, BadBoolIsFatal)
{
    SimConfig config;
    EXPECT_EXIT(
        applyAssignment(config, "core.fetch.wrong_path_mem=maybe"),
        ::testing::ExitedWithCode(1), "bad value");
}

TEST(ConfigParamsDeath, LoadRejectsUnknownKey)
{
    SimConfig config;
    std::istringstream is("{\n  \"core.warp_drive\": \"9\"\n}\n");
    EXPECT_EXIT(loadConfig(config, is, "bad"),
                ::testing::ExitedWithCode(1), "unknown parameter");
}

TEST(ConfigParamsDeath, LoadRejectsMalformedDocument)
{
    SimConfig config;
    std::istringstream is("core.iq_size: 64\n");
    EXPECT_EXIT(loadConfig(config, is, "bad"),
                ::testing::ExitedWithCode(1), "expected");
}

TEST(ConfigParamsDeath, LoadRejectsMissingBraces)
{
    SimConfig config;
    std::istringstream is("  \"core.iq_size\": \"64\"\n");
    EXPECT_EXIT(loadConfig(config, is, "bad"),
                ::testing::ExitedWithCode(1), "missing braces");
}

} // namespace
} // namespace vpr
