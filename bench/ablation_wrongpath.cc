/**
 * @file
 * Ablation: misprediction modelling — fetch stall (the paper's
 * trace-driven methodology) versus synthetic wrong-path fetch.
 *
 * Trace-driven simulators cannot follow the actual wrong path. The
 * paper's framework (like most of its era) stalls fetch at a detected
 * misprediction. Our fetch unit can instead synthesize wrong-path
 * instructions that occupy rename registers, queue slots and functional
 * units until the branch resolves — closer to real hardware for a
 * register-pressure study. This bench quantifies the difference.
 */

#include <iostream>

#include "bench_common.hh"

using namespace vpr;
using namespace vpr::bench;

namespace
{

void
appendCells(std::vector<GridCell> &cells, const std::string &bench,
            WrongPathMode mode)
{
    SimConfig config = experimentConfig();
    config.core.fetch.wrongPath = mode;
    config.setScheme(RenameScheme::Conventional);
    cells.push_back({bench, config});
    config.setScheme(RenameScheme::VPAllocAtWriteback);
    cells.push_back({bench, config});
}

} // namespace

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);

    // Grid: (conv, vp) under each misprediction model per benchmark.
    const auto &names = benchmarkNames();
    std::vector<GridCell> cells;
    for (const auto &name : names) {
        appendCells(cells, name, WrongPathMode::Stall);
        appendCells(cells, name, WrongPathMode::Synthesize);
    }
    std::vector<SimResults> results =
        runGrid(cells, defaultJobs());

    printTableHeader(std::cout,
                     "Ablation: VP speedup under both misprediction "
                     "models (64 regs, NRR=32)",
                     {"stall", "wrong-path"});
    std::vector<double> stallAll, wpAll;
    for (std::size_t bi = 0; bi < names.size(); ++bi) {
        double st = results[4 * bi + 1].ipc() / results[4 * bi].ipc();
        double wp =
            results[4 * bi + 3].ipc() / results[4 * bi + 2].ipc();
        stallAll.push_back(st);
        wpAll.push_back(wp);
        printTableRow(std::cout, names[bi], {st, wp}, 3);
    }
    std::cout << std::string(36, '-') << "\n";
    printTableRow(std::cout, "geomean",
                  {geoMean(stallAll), geoMean(wpAll)}, 3);
    std::cout << "\nexpectation: wrong-path fetch consumes decode-time "
                 "rename registers in the conventional scheme only, so "
                 "the VP advantage is equal or slightly larger on "
                 "branchy codes; all paper benches use the stall model "
                 "for methodological fidelity.\n";
    return 0;
}
