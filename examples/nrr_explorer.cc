/**
 * @file
 * Explore the paper's key design parameter: NRR, the number of oldest
 * destination-writing instructions guaranteed a physical register
 * (section 3.3). Runs one benchmark across the full NRR range for both
 * allocation policies and prints the speedup curve over conventional
 * renaming — the per-benchmark view behind Figures 4 and 5.
 *
 * Usage: nrr_explorer [benchmark] [physRegs]  (defaults: hydro2d 64)
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "sim/experiment.hh"
#include "trace/kernels/kernels.hh"

using namespace vpr;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "hydro2d";
    std::uint16_t physRegs =
        argc > 2 ? static_cast<std::uint16_t>(std::atoi(argv[2])) : 64;

    SimConfig config = paperConfig();
    config.setPhysRegs(physRegs);
    config.skipInsts = 10000;
    config.measureInsts = 80000;
    config.core.fetch.wrongPath = WrongPathMode::Stall;

    config.setScheme(RenameScheme::Conventional);
    double conv = runOne(bench, config).ipc();

    std::cout << "benchmark " << bench << ", " << physRegs
              << " physical registers/file; conventional IPC = "
              << std::fixed << std::setprecision(3) << conv << "\n\n";
    std::cout << std::setw(6) << "NRR" << std::setw(14) << "writeback"
              << std::setw(14) << "issue" << "   (speedup over conv)\n";

    std::uint16_t maxNrr =
        static_cast<std::uint16_t>(physRegs - kNumLogicalRegs);
    for (std::uint16_t nrr = 1; nrr <= maxNrr; nrr *= 2) {
        config.setScheme(RenameScheme::VPAllocAtWriteback);
        config.setNrr(nrr);
        double wb = runOne(bench, config).ipc() / conv;
        config.setScheme(RenameScheme::VPAllocAtIssue);
        double iss = runOne(bench, config).ipc() / conv;
        std::cout << std::setw(6) << nrr << std::setw(14) << wb
                  << std::setw(14) << iss << "\n";
        if (nrr == maxNrr)
            break;
        if (nrr * 2 > maxNrr)
            nrr = maxNrr / 2;  // make sure the max value is printed
    }
    std::cout << "\nLow NRR starves the oldest instructions (they must "
                 "wait for re-execution slots);\nhigh NRR reserves "
                 "everything for the oldest, behaving like the "
                 "conventional scheme\nplus late allocation. The paper "
                 "finds NRR = 32 best on average for both policies.\n";
    return 0;
}
