/**
 * @file
 * Lightweight statistics package (a miniature of gem5's Stats).
 *
 * Stats are plain accumulators registered with a StatGroup so that whole
 * subsystems can be dumped or reset uniformly. No global registry: each
 * simulator instance owns its groups, keeping runs independent.
 */

#ifndef VPR_COMMON_STATS_HH
#define VPR_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vpr::stats
{

/** Base class for every statistic. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : statName(std::move(name)), statDesc(std::move(desc))
    {}
    virtual ~StatBase() = default;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Reset the accumulator to its initial state. */
    virtual void reset() = 0;
    /** Print "name value # desc" style line(s). */
    virtual void print(std::ostream &os) const = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** A simple monotonic counter / gauge. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(std::uint64_t d) { val += d; return *this; }
    void set(std::uint64_t v) { val = v; }
    std::uint64_t value() const { return val; }

    void reset() override { val = 0; }
    void print(std::ostream &os) const override;

  private:
    std::uint64_t val = 0;
};

/** Mean of a stream of samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    std::uint64_t samples() const { return n; }
    double total() const { return sum; }

    void reset() override { sum = 0.0; n = 0; }
    void print(std::ostream &os) const override;

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
};

/** Bucketed distribution over [min, max] with uniform buckets. */
class Distribution : public StatBase
{
  public:
    Distribution(std::string name, std::string desc, std::uint64_t min,
                 std::uint64_t max, std::uint64_t bucketSize);

    void sample(std::uint64_t v);

    std::uint64_t bucketCount(std::size_t i) const { return buckets.at(i); }
    std::size_t numBuckets() const { return buckets.size(); }
    std::uint64_t underflows() const { return under; }
    std::uint64_t overflows() const { return over; }
    std::uint64_t samples() const { return n; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    std::uint64_t minSample() const { return minSeen; }
    std::uint64_t maxSample() const { return maxSeen; }

    void reset() override;
    void print(std::ostream &os) const override;

  private:
    std::uint64_t lo;
    std::uint64_t hi;
    std::uint64_t bsize;
    std::vector<std::uint64_t> buckets;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t n = 0;
    double sum = 0.0;
    std::uint64_t minSeen = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * A named collection of statistics. Groups own no stat storage — stats
 * live as members of their subsystem and register themselves here.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : groupName(std::move(name)) {}

    void add(StatBase *stat) { statList.push_back(stat); }

    const std::string &name() const { return groupName; }
    const std::vector<StatBase *> &all() const { return statList; }

    void resetAll();
    void print(std::ostream &os) const;

  private:
    std::string groupName;
    std::vector<StatBase *> statList;
};

} // namespace vpr::stats

#endif // VPR_COMMON_STATS_HH
