/**
 * @file
 * The serialization substrate (common/state.hh) and the compressed
 * container (common/io/zio.hh): round trips must be byte-exact, and
 * every malformed input — truncation, wrong magic, version skew, stale
 * digest, flipped payload bytes — must be rejected with a CkptError,
 * never silently accepted.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/io/zio.hh"
#include "common/random.hh"
#include "common/state.hh"

namespace vpr
{
namespace
{

/** A little aggregate exercising every visitor helper. */
struct Widget
{
    std::uint64_t big = 0;
    std::uint32_t medium = 0;
    std::uint16_t small = 0;
    bool flag = false;
    double ratio = 0.0;
    Random rng;
    std::vector<std::uint16_t> fixed;
    std::vector<std::uint64_t> dynamic;
    std::vector<bool> bits;

    void
    visitState(StateVisitor &v)
    {
        v.section("widget");
        v.value(big);
        v.value(medium);
        v.value(small);
        v.value(flag);
        v.value(ratio);
        v.rng(rng);
        v.fixedVec(fixed);
        v.dynVec(dynamic);
        v.boolVec(bits);
    }
};

Widget
sampleWidget()
{
    Widget w;
    w.big = 0xfeedface12345678ull;
    w.medium = 0xabcdef01u;
    w.small = 0x7a5a;
    w.flag = true;
    w.ratio = 2.7182818284590451;
    w.rng.reseed(42);
    w.rng.next64();
    w.fixed = {1, 2, 3, 0xffff};
    w.dynamic = {9, 8, 7, 6, 5};
    w.bits = {true, false, true, true};
    return w;
}

TEST(StateVisitor, RoundTripIsExact)
{
    Widget w = sampleWidget();
    StateSaver saver;
    w.visitState(saver);

    Widget x;
    x.fixed.assign(4, 0);   // fixedVec needs the right geometry
    x.bits.assign(4, false);
    StateLoader loader(saver.buffer());
    x.visitState(loader);
    EXPECT_TRUE(loader.exhausted());

    EXPECT_EQ(x.big, w.big);
    EXPECT_EQ(x.medium, w.medium);
    EXPECT_EQ(x.small, w.small);
    EXPECT_EQ(x.flag, w.flag);
    EXPECT_DOUBLE_EQ(x.ratio, w.ratio);
    EXPECT_EQ(x.rng.rawState(), w.rng.rawState());
    EXPECT_EQ(x.fixed, w.fixed);
    EXPECT_EQ(x.dynamic, w.dynamic);
    EXPECT_EQ(x.bits, w.bits);

    // Saving the restored widget reproduces the encoding byte for byte.
    StateSaver again;
    x.visitState(again);
    EXPECT_EQ(again.buffer(), saver.buffer());
}

TEST(StateVisitor, SectionMismatchThrows)
{
    StateSaver saver;
    saver.section("alpha");
    StateLoader loader(saver.buffer());
    EXPECT_THROW(loader.section("beta"), CkptError);
}

TEST(StateVisitor, TruncatedPayloadThrows)
{
    Widget w = sampleWidget();
    StateSaver saver;
    w.visitState(saver);
    std::string cut = saver.buffer().substr(0, saver.buffer().size() - 3);

    Widget x;
    x.fixed.assign(4, 0);
    x.bits.assign(4, false);
    StateLoader loader(cut);
    EXPECT_THROW(x.visitState(loader), CkptError);
}

TEST(StateVisitor, NarrowingRangeIsChecked)
{
    std::uint64_t big = 0x10000;  // does not fit u16
    StateSaver saver;
    saver.value(big);
    StateLoader loader(saver.buffer());
    std::uint16_t small = 0;
    EXPECT_THROW(loader.value(small), CkptError);
}

TEST(StateVisitor, FixedVecLengthMismatchThrows)
{
    std::vector<std::uint16_t> four = {1, 2, 3, 4};
    StateSaver saver;
    saver.fixedVec(four);
    StateLoader loader(saver.buffer());
    std::vector<std::uint16_t> three(3, 0);
    EXPECT_THROW(loader.fixedVec(three), CkptError);
}

TEST(Checkpoint, PackUnpackRoundTrips)
{
    const std::string payload = "warm state bytes \x01\x02\x03";
    const std::uint64_t digest = 0x1122334455667788ull;
    std::string raw = packCheckpoint(CkptScope::Full, digest, payload);
    EXPECT_EQ(unpackCheckpoint(raw, CkptScope::Full, digest), payload);
    // Digest 0 means "don't check".
    EXPECT_EQ(unpackCheckpoint(raw, CkptScope::Full, 0), payload);
}

TEST(Checkpoint, WrongMagicThrows)
{
    std::string raw = packCheckpoint(CkptScope::Full, 1, "x");
    raw[0] = 'X';
    EXPECT_THROW(unpackCheckpoint(raw, CkptScope::Full, 1), CkptError);
    EXPECT_THROW(unpackCheckpoint("short", CkptScope::Full, 1), CkptError);
    EXPECT_THROW(unpackCheckpoint("", CkptScope::Full, 1), CkptError);
}

TEST(Checkpoint, VersionSkewThrows)
{
    std::string raw = packCheckpoint(CkptScope::Full, 1, "x");
    raw[8] ^= 0x40;  // version word follows the 8-byte magic
    EXPECT_THROW(unpackCheckpoint(raw, CkptScope::Full, 1), CkptError);
}

TEST(Checkpoint, ScopeMismatchThrows)
{
    std::string raw = packCheckpoint(CkptScope::Functional, 1, "x");
    EXPECT_THROW(unpackCheckpoint(raw, CkptScope::Full, 1), CkptError);
}

TEST(Checkpoint, DigestMismatchThrows)
{
    std::string raw = packCheckpoint(CkptScope::Full, 1, "x");
    EXPECT_THROW(unpackCheckpoint(raw, CkptScope::Full, 2), CkptError);
}

TEST(Checkpoint, CorruptedPayloadThrows)
{
    std::string raw =
        packCheckpoint(CkptScope::Full, 1, "some warm state payload");
    raw[raw.size() - 12] ^= 0x01;  // flip a payload byte, not the sum
    EXPECT_THROW(unpackCheckpoint(raw, CkptScope::Full, 1), CkptError);
}

TEST(Checkpoint, TruncatedFileThrows)
{
    std::string raw =
        packCheckpoint(CkptScope::Full, 1, "some warm state payload");
    for (std::size_t keep : {raw.size() - 1, raw.size() / 2,
                             std::size_t{9}}) {
        EXPECT_THROW(
            unpackCheckpoint(raw.substr(0, keep), CkptScope::Full, 1),
            CkptError)
            << "kept " << keep << " of " << raw.size() << " bytes";
    }
}

TEST(Checkpoint, TrailingGarbageThrows)
{
    std::string raw = packCheckpoint(CkptScope::Full, 1, "x") + "junk";
    EXPECT_THROW(unpackCheckpoint(raw, CkptScope::Full, 1), CkptError);
}

TEST(Vprz, StoredRoundTripsAndIsDetected)
{
    const std::string payload(10000, 'a');
    std::string packed = vprzPack(payload, "ckpt", /*compress=*/false);
    EXPECT_EQ(guessFormat(packed), FileFormat::Vprz);
    EXPECT_EQ(vprzUnpack(packed, "ckpt"), payload);
}

TEST(Vprz, CompressedRoundTripsAndShrinks)
{
    std::string payload;
    for (int i = 0; i < 5000; ++i)
        payload += "a very repetitive warm state line\n";
    std::string packed = vprzPack(payload, "results", /*compress=*/true);
    EXPECT_EQ(vprzUnpack(packed, "results"), payload);
    if (zlibAvailable())
        EXPECT_LT(packed.size(), payload.size() / 4)
            << "zlib present but the container did not compress";
    else
        EXPECT_GT(packed.size(), payload.size());  // stored fallback
}

TEST(Vprz, KindMismatchThrows)
{
    std::string packed = vprzPack("x", "ckpt");
    EXPECT_THROW(vprzUnpack(packed, "results"), CkptError);
    EXPECT_EQ(vprzUnpack(packed, ""), "x");  // empty = any kind
}

TEST(Vprz, CorruptionThrows)
{
    std::string packed = vprzPack("the quick brown fox", "ckpt",
                                  /*compress=*/false);
    std::string flipped = packed;
    flipped[flipped.size() - 10] ^= 0x04;
    EXPECT_THROW(vprzUnpack(flipped, "ckpt"), CkptError);
    EXPECT_THROW(vprzUnpack(packed.substr(0, packed.size() / 2), "ckpt"),
                 CkptError);
    EXPECT_THROW(vprzUnpack("VPRZ", "ckpt"), CkptError);
    EXPECT_THROW(vprzUnpack("not a container at all", "ckpt"), CkptError);
}

TEST(Vprz, FormatDetection)
{
    EXPECT_EQ(guessFormat("cell,benchmark\n0,go\n"), FileFormat::Plain);
    EXPECT_EQ(guessFormat(""), FileFormat::Plain);
    EXPECT_EQ(guessFormat(packCheckpoint(CkptScope::Full, 1, "x")),
              FileFormat::Checkpoint);
    EXPECT_EQ(guessFormat(vprzPack("x", "ckpt")), FileFormat::Vprz);
}

TEST(Fnv, MatchesKnownVectorsAndSeeds)
{
    // FNV-1a 64 reference values.
    EXPECT_EQ(fnv1a("", 0), 14695981039346656037ull);
    EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
    // Chaining through the seed differs from hashing the concatenation
    // only in where the boundary falls — both must be stable.
    const std::uint64_t ab = fnv1a("ab", 2);
    EXPECT_EQ(fnv1a("b", 1, fnv1a("a", 1)), ab);
}

TEST(AtomicWrite, TwoConcurrentWritersNeverMixPayloads)
{
    // Two writers hammering one path (shared-cache deployments: CI
    // shards publishing the same content-addressed entry, or a daemon
    // and a batch run racing). The tmp names are pid+counter-suffixed,
    // so writes must never observe each other: every read of the final
    // file sees exactly one writer's payload, start to finish.
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(::testing::TempDir()) / "vpr_state_two_writers";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "contended.bin").string();

    // Distinct page-crossing payloads, recognizable from any byte.
    const std::string payloadA(64 * 1024, 'A');
    const std::string payloadB(64 * 1024, 'B');

    constexpr int kRounds = 50;
    auto writer = [&path](const std::string &payload) {
        for (int i = 0; i < kRounds; ++i)
            ASSERT_TRUE(writeFileAtomic(path, payload)) << i;
    };
    std::thread a(writer, payloadA);
    std::thread b(writer, payloadB);
    a.join();
    b.join();

    std::string final;
    ASSERT_TRUE(readFileBytes(path, final));
    EXPECT_TRUE(final == payloadA || final == payloadB)
        << "final file mixes payloads (size " << final.size() << ")";

    // No orphaned tmp files: every temporary was renamed or cleaned up.
    std::size_t files = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST(AtomicWrite, WritesAndReadsBack)
{
    const std::string path =
        ::testing::TempDir() + "/vpr_state_test_atomic.bin";
    const std::string data("binary\0payload", 14);
    ASSERT_TRUE(writeFileAtomic(path, data));
    std::string back;
    ASSERT_TRUE(readFileBytes(path, back));
    EXPECT_EQ(back, data);
    EXPECT_FALSE(readFileBytes(path + ".does-not-exist", back));
    std::remove(path.c_str());
}

} // namespace
} // namespace vpr
