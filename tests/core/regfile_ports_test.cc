/** @file Unit tests for register-file and cache port arbitration. */

#include <gtest/gtest.h>

#include "core/regfile_ports.hh"

namespace vpr
{
namespace
{

TEST(PortSchedule, ClaimsUpToLimit)
{
    PortSchedule ps(3);
    EXPECT_TRUE(ps.tryClaim(5));
    EXPECT_TRUE(ps.tryClaim(5));
    EXPECT_TRUE(ps.tryClaim(5));
    EXPECT_FALSE(ps.tryClaim(5));
    EXPECT_TRUE(ps.tryClaim(6));
    EXPECT_EQ(ps.used(5), 3u);
    EXPECT_EQ(ps.used(6), 1u);
}

TEST(PortSchedule, ClaimFirstFreeSlips)
{
    PortSchedule ps(1);
    EXPECT_EQ(ps.claimFirstFree(10), 10u);
    EXPECT_EQ(ps.claimFirstFree(10), 11u);
    EXPECT_EQ(ps.claimFirstFree(10), 12u);
}

TEST(PortSchedule, PruneDropsPast)
{
    PortSchedule ps(1);
    ps.tryClaim(5);
    ps.tryClaim(6);
    ps.pruneBefore(6);
    EXPECT_EQ(ps.used(5), 0u);
    EXPECT_EQ(ps.used(6), 1u);
}

TEST(RegFilePorts, PaperPortCounts)
{
    RegFilePorts p(16, 8);
    EXPECT_EQ(p.readPortsPerCycle(), 16u);
    EXPECT_EQ(p.writePortsPerCycle(), 8u);
}

TEST(RegFilePorts, ReadsLimitedPerClassPerCycle)
{
    RegFilePorts p(4, 8);
    p.beginCycle(1);
    EXPECT_TRUE(p.tryClaimReads(2, 0));
    EXPECT_TRUE(p.tryClaimReads(2, 4));  // int full, fp has room
    EXPECT_FALSE(p.tryClaimReads(1, 0));
    EXPECT_FALSE(p.tryClaimReads(0, 1));
    p.beginCycle(2);
    EXPECT_TRUE(p.tryClaimReads(4, 4));
}

TEST(RegFilePorts, AtomicClaimAcrossClasses)
{
    RegFilePorts p(4, 8);
    p.beginCycle(1);
    p.tryClaimReads(3, 0);
    // 2 int + 1 fp: int side fails, nothing may be claimed at all.
    EXPECT_FALSE(p.tryClaimReads(2, 1));
    EXPECT_TRUE(p.canClaimReads(1, 1));
    EXPECT_TRUE(p.tryClaimReads(1, 1));
}

TEST(RegFilePorts, UnclaimRefunds)
{
    RegFilePorts p(2, 8);
    p.beginCycle(1);
    EXPECT_TRUE(p.tryClaimReads(2, 0));
    EXPECT_FALSE(p.tryClaimReads(1, 0));
    p.unclaimReads(2, 0);
    EXPECT_TRUE(p.tryClaimReads(1, 0));
}

TEST(RegFilePorts, WriteSchedulingSlipsPastFullCycles)
{
    RegFilePorts p(16, 2);
    p.beginCycle(1);
    EXPECT_EQ(p.scheduleWrite(RegClass::Int, 10), 10u);
    EXPECT_EQ(p.scheduleWrite(RegClass::Int, 10), 10u);
    EXPECT_EQ(p.scheduleWrite(RegClass::Int, 10), 11u);
    // The FP file has its own ports.
    EXPECT_EQ(p.scheduleWrite(RegClass::Float, 10), 10u);
}

TEST(RegFilePorts, BeginCycleRestoresReads)
{
    RegFilePorts p(1, 8);
    p.beginCycle(1);
    EXPECT_TRUE(p.tryClaimReads(1, 1));
    EXPECT_FALSE(p.tryClaimReads(1, 0));
    p.beginCycle(2);
    EXPECT_TRUE(p.tryClaimReads(1, 0));
}

} // namespace
} // namespace vpr
