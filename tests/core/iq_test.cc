/** @file Unit tests for the instruction queue. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/iq.hh"

namespace vpr
{
namespace
{

DynInst
alu(InstSeqNum seq)
{
    DynInst d;
    d.si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                           RegId::intReg(3));
    d.seq = seq;
    return d;
}

TEST(InstQueue, InsertKeepsAgeOrder)
{
    InstQueue iq(8);
    DynInst a = alu(1), b = alu(2), c = alu(3);
    iq.insert(&a);
    iq.insert(&c);
    // Re-insertion of an older instruction (write-back squash path).
    iq.insert(&b);
    ASSERT_EQ(iq.size(), 3u);
    EXPECT_EQ(iq.entries()[0]->seq, 1u);
    EXPECT_EQ(iq.entries()[1]->seq, 2u);
    EXPECT_EQ(iq.entries()[2]->seq, 3u);
}

TEST(InstQueue, RemoveSpecificEntry)
{
    InstQueue iq(8);
    DynInst a = alu(1), b = alu(2);
    iq.insert(&a);
    iq.insert(&b);
    iq.remove(&a);
    ASSERT_EQ(iq.size(), 1u);
    EXPECT_EQ(iq.entries()[0]->seq, 2u);
}

TEST(InstQueue, WakeupMatchesClassAndTag)
{
    InstQueue iq(8);
    DynInst a = alu(1);
    a.src[0].valid = true;
    a.src[0].cls = RegClass::Int;
    a.src[0].tag = 40;
    a.src[1].valid = true;
    a.src[1].cls = RegClass::Float;
    a.src[1].tag = 40;  // same tag number, different class!
    iq.insert(&a);

    EXPECT_EQ(iq.wakeup(RegClass::Int, 40, 7), 1u);
    EXPECT_TRUE(a.src[0].ready);
    EXPECT_EQ(a.src[0].tag, 7);      // captured the physical register
    EXPECT_FALSE(a.src[1].ready);    // FP operand untouched
}

TEST(InstQueue, WakeupIgnoresAlreadyReady)
{
    InstQueue iq(8);
    DynInst a = alu(1);
    a.src[0].valid = true;
    a.src[0].cls = RegClass::Int;
    a.src[0].tag = 40;
    a.src[0].ready = true;
    iq.insert(&a);
    EXPECT_EQ(iq.wakeup(RegClass::Int, 40, 9), 0u);
    EXPECT_EQ(a.src[0].tag, 40);
}

TEST(InstQueue, WakeupHitsAllWaiters)
{
    InstQueue iq(8);
    DynInst a = alu(1), b = alu(2);
    for (DynInst *d : {&a, &b}) {
        d->src[0].valid = true;
        d->src[0].cls = RegClass::Float;
        d->src[0].tag = 99;
        iq.insert(d);
    }
    EXPECT_EQ(iq.wakeup(RegClass::Float, 99, 3), 2u);
    EXPECT_TRUE(a.src[0].ready && b.src[0].ready);
}

TEST(InstQueue, SquashYoungerThanDropsTail)
{
    InstQueue iq(8);
    DynInst a = alu(1), b = alu(5), c = alu(9);
    iq.insert(&a);
    iq.insert(&b);
    iq.insert(&c);
    iq.squashYoungerThan(5);
    ASSERT_EQ(iq.size(), 2u);
    EXPECT_EQ(iq.entries().back()->seq, 5u);
    iq.squashYoungerThan(0);
    EXPECT_TRUE(iq.empty());
}

TEST(InstQueue, CapacityTracking)
{
    InstQueue iq(2);
    DynInst a = alu(1), b = alu(2);
    EXPECT_FALSE(iq.full());
    iq.insert(&a);
    iq.insert(&b);
    EXPECT_TRUE(iq.full());
}

TEST(InstQueueDeath, InsertIntoFullPanics)
{
    InstQueue iq(1);
    DynInst a = alu(1), b = alu(2);
    iq.insert(&a);
    EXPECT_DEATH(iq.insert(&b), "full IQ");
}

TEST(InstQueueDeath, DuplicateInsertPanics)
{
    InstQueue iq(4);
    DynInst a = alu(1), b = alu(2);
    iq.insert(&a);
    iq.insert(&b);
    DynInst dup = alu(1);
    EXPECT_DEATH(iq.insert(&dup), "duplicate IQ entry");
}

TEST(InstQueueDeath, RemoveAbsentPanics)
{
    InstQueue iq(4);
    DynInst a = alu(1);
    EXPECT_DEATH(iq.remove(&a), "not present");
}

// --- per-tag wait-list wakeup ---------------------------------------------

DynInst
waiter(InstSeqNum seq, RegClass cls, std::uint16_t tag)
{
    DynInst d = alu(seq);
    d.src[0].valid = true;
    d.src[0].cls = cls;
    d.src[0].tag = tag;
    return d;
}

TEST(InstQueueWaitList, RemovedEntryIsNotWoken)
{
    InstQueue iq(8);
    DynInst a = waiter(1, RegClass::Int, 40);
    DynInst b = waiter(2, RegClass::Int, 40);
    iq.insert(&a);
    iq.insert(&b);
    iq.remove(&a);  // e.g. issued before the broadcast
    EXPECT_EQ(iq.wakeup(RegClass::Int, 40, 7), 1u);
    EXPECT_FALSE(a.src[0].ready);
    EXPECT_TRUE(b.src[0].ready);
}

TEST(InstQueueWaitList, SquashedEntryIsNotWoken)
{
    InstQueue iq(8);
    DynInst a = waiter(1, RegClass::Float, 9);
    DynInst b = waiter(5, RegClass::Float, 9);
    iq.insert(&a);
    iq.insert(&b);
    iq.squashYoungerThan(1);
    EXPECT_EQ(iq.wakeup(RegClass::Float, 9, 3), 1u);
    EXPECT_TRUE(a.src[0].ready);
    EXPECT_FALSE(b.src[0].ready);
}

TEST(InstQueueWaitList, SlotReuseAfterSquashIsDetected)
{
    // A squashed instruction's storage is recycled for a younger one
    // (the ROB reuses slots); the stale wait-list entry must not wake
    // the new occupant, while the new occupant's own entry must.
    InstQueue iq(8);
    DynInst slot = waiter(3, RegClass::Int, 12);
    iq.insert(&slot);
    iq.squashYoungerThan(0);
    ASSERT_TRUE(iq.empty());

    slot = waiter(9, RegClass::Int, 12);  // recycled storage, new seq
    iq.insert(&slot);
    EXPECT_EQ(iq.wakeup(RegClass::Int, 12, 4), 1u);
    EXPECT_TRUE(slot.src[0].ready);
    EXPECT_EQ(slot.src[0].tag, 4);
}

TEST(InstQueueWaitList, ReinsertionDoesNotDoubleWake)
{
    // Write-back squash path: an instruction re-enters the queue while
    // its original wait-list entry may still be pending.
    InstQueue iq(8);
    DynInst a = waiter(4, RegClass::Int, 17);
    iq.insert(&a);
    iq.remove(&a);
    iq.insert(&a);  // re-inserted, still waiting on tag 17
    EXPECT_EQ(iq.wakeup(RegClass::Int, 17, 6), 1u);
    EXPECT_TRUE(a.src[0].ready);
}

// --- ready-list publication -----------------------------------------------

/** Drain helper: newly published entries since the last call. */
std::vector<ReadyRef>
drain(InstQueue &iq)
{
    std::vector<ReadyRef> out;
    iq.drainReadyEvents(out);
    return out;
}

TEST(InstQueueReady, ReadyAtInsertIsPublishedImmediately)
{
    InstQueue iq(8);
    DynInst a = alu(1);  // no sources: issue-ready on arrival
    iq.insert(&a);
    auto out = drain(iq);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &a);
    EXPECT_EQ(out[0].seq, 1u);
    EXPECT_TRUE(a.inReadyQ);
    // Published exactly once.
    EXPECT_TRUE(drain(iq).empty());
}

TEST(InstQueueReady, PublishedWhenLastSourceWakes)
{
    InstQueue iq(8);
    DynInst a = alu(1);
    a.src[0] = {10, RegClass::Int, true, false};
    a.src[1] = {11, RegClass::Float, true, false};
    iq.insert(&a);
    EXPECT_TRUE(drain(iq).empty());
    iq.wakeup(RegClass::Int, 10, 70);
    EXPECT_TRUE(drain(iq).empty());  // one source still outstanding
    iq.wakeup(RegClass::Float, 11, 71);
    auto out = drain(iq);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &a);
}

TEST(InstQueueReady, StorePublishesOnAddressOperandOnly)
{
    // A store issues on its address operand (src[1]); the data operand
    // (src[0]) gates completion, not readiness for issue.
    InstQueue iq(8);
    DynInst st;
    st.si = StaticInst::store(RegId::intReg(3), RegId::intReg(2), 0x100);
    st.seq = 1;
    st.src[0] = {20, RegClass::Int, true, false};  // data
    st.src[1] = {21, RegClass::Int, true, false};  // address base
    iq.insert(&st);
    EXPECT_TRUE(drain(iq).empty());
    iq.wakeup(RegClass::Int, 20, 70);  // data wakes: still not ready
    EXPECT_TRUE(drain(iq).empty());
    iq.wakeup(RegClass::Int, 21, 71);  // address wakes: publish
    auto out = drain(iq);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &st);
}

TEST(InstQueueReady, ReinsertionAfterRemoveRepublishes)
{
    // Write-back rejection path: the instruction issued (leaving the
    // queue), got denied a register, and re-enters ready.
    InstQueue iq(8);
    DynInst a = alu(1);
    iq.insert(&a);
    ASSERT_EQ(drain(iq).size(), 1u);
    iq.remove(&a);
    EXPECT_FALSE(a.inReadyQ);
    iq.insert(&a);
    auto out = drain(iq);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].inst, &a);
}

TEST(InstQueueReady, ScanIssueModeDoesNotPublish)
{
    InstQueue iq(8);
    iq.setTrackReady(false);
    DynInst a = alu(1);
    iq.insert(&a);
    EXPECT_TRUE(drain(iq).empty());
    EXPECT_FALSE(a.inReadyQ);
}

TEST(InstQueueReady, MatchesFullScanOnRandomStimulus)
{
    // Random inserts/wakeups/removes/squashes; the set of instructions
    // ever published (and still valid) must equal exactly the resident
    // issue-ready instructions a full-queue scan would select from —
    // no duplicates, no misses.
    InstQueue iq(64);
    std::vector<DynInst> pool(1024);
    std::vector<ReadyRef> published;

    std::uint64_t rng = 0x853c49e6748fea9bull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    std::size_t created = 0;
    InstSeqNum seq = 0;
    for (int step = 0; step < 4000; ++step) {
        switch (next() % 4) {
          case 0:
          case 1: {  // insert (sometimes a store, sometimes ready)
            if (created >= pool.size() || iq.full())
                break;
            DynInst d;
            if ((next() & 3) == 0) {
                d.si = StaticInst::store(RegId::intReg(3),
                                         RegId::intReg(2), 0x100);
            } else {
                d.si = StaticInst::alu(RegId::intReg(1), RegId::intReg(2),
                                       RegId::intReg(3));
            }
            d.seq = ++seq;
            for (int si = 0; si < 2; ++si) {
                d.src[si].valid = (next() & 3) != 0;
                d.src[si].cls =
                    (next() & 1) ? RegClass::Int : RegClass::Float;
                d.src[si].tag = static_cast<std::uint16_t>(next() % 48);
                d.src[si].ready = (next() & 3) == 0;
            }
            pool[created] = d;
            iq.insert(&pool[created]);
            ++created;
            break;
          }
          case 2: {  // remove a random resident entry (issue)
            if (iq.empty())
                break;
            iq.removeAt(next() % iq.size());
            break;
          }
          case 3: {  // broadcast or squash
            if ((next() & 7) == 0) {
                iq.squashYoungerThan(seq > 0 ? next() % seq : 0);
            } else {
                iq.wakeup((next() & 1) ? RegClass::Int : RegClass::Float,
                          static_cast<std::uint16_t>(next() % 48),
                          static_cast<std::uint16_t>(64 + next() % 32));
            }
            break;
          }
        }
        if ((next() & 15) == 0)
            iq.drainReadyEvents(published);
    }
    iq.drainReadyEvents(published);

    // Valid publications, deduplicated by instruction.
    std::set<const DynInst *> readySet;
    for (const ReadyRef &e : published) {
        if (!e.inst->inIq || e.inst->seq != e.seq)
            continue;  // stale: issued, squashed, or slot reused
        EXPECT_TRUE(e.inst->issueOperandsReady());
        EXPECT_TRUE(readySet.insert(e.inst).second)
            << "duplicate publication of sn:" << e.seq;
    }
    // Exactly the entries a full scan would find ready.
    for (const DynInst *inst : iq.entries()) {
        EXPECT_EQ(readySet.count(inst) == 1, inst->issueOperandsReady())
            << "sn:" << inst->seq;
    }
}

TEST(InstQueueWaitList, MatchesScanReferenceOnRandomStimulus)
{
    // Drive a wait-list queue and a scan-mode queue with an identical
    // pseudo-random insert/remove/squash/wakeup stimulus; every wakeup
    // must report the same count and leave identical operand state.
    InstQueue fast(64);
    InstQueue ref(64);
    ref.setScanWakeup(true);

    std::vector<DynInst> fastPool(512), refPool(512);
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    std::size_t created = 0;
    InstSeqNum seq = 0;
    for (int step = 0; step < 2000; ++step) {
        std::uint64_t r = next();
        switch (r % 4) {
          case 0:
          case 1: {  // insert a fresh instruction
            if (created >= fastPool.size() || fast.full())
                break;
            DynInst d = alu(++seq);
            for (int si = 0; si < 2; ++si) {
                d.src[si].valid = (next() & 3) != 0;
                d.src[si].cls =
                    (next() & 1) ? RegClass::Int : RegClass::Float;
                d.src[si].tag = static_cast<std::uint16_t>(next() % 48);
                d.src[si].ready = (next() & 3) == 0;
            }
            fastPool[created] = d;
            refPool[created] = d;
            fast.insert(&fastPool[created]);
            ref.insert(&refPool[created]);
            ++created;
            break;
          }
          case 2: {  // remove a random resident entry (issue)
            if (fast.empty())
                break;
            std::size_t i = next() % fast.size();
            ASSERT_EQ(fast.at(i)->seq, ref.at(i)->seq);
            fast.removeAt(i);
            ref.removeAt(i);
            break;
          }
          case 3: {  // broadcast or squash
            if ((next() & 7) == 0) {
                InstSeqNum keep = seq > 0 ? next() % seq : 0;
                fast.squashYoungerThan(keep);
                ref.squashYoungerThan(keep);
            } else {
                RegClass cls =
                    (next() & 1) ? RegClass::Int : RegClass::Float;
                std::uint16_t tag =
                    static_cast<std::uint16_t>(next() % 48);
                std::uint16_t phys =
                    static_cast<std::uint16_t>(64 + next() % 32);
                EXPECT_EQ(fast.wakeup(cls, tag, phys),
                          ref.wakeup(cls, tag, phys));
            }
            break;
          }
        }
        ASSERT_EQ(fast.size(), ref.size());
    }

    // Every operand of every instruction ever created agrees bit for
    // bit between the two implementations.
    for (std::size_t i = 0; i < created; ++i) {
        for (int si = 0; si < 2; ++si) {
            EXPECT_EQ(fastPool[i].src[si].ready, refPool[i].src[si].ready)
                << "inst " << i << " src " << si;
            EXPECT_EQ(fastPool[i].src[si].tag, refPool[i].src[si].tag)
                << "inst " << i << " src " << si;
        }
    }
}

} // namespace
} // namespace vpr
