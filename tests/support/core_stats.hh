/**
 * @file
 * Test support: walk a Core's stats tree into a fresh MetricsRecord so
 * assertions can read metrics by their stable dotted names.
 */

#ifndef VPR_TESTS_SUPPORT_CORE_STATS_HH
#define VPR_TESTS_SUPPORT_CORE_STATS_HH

#include "core/core.hh"
#include "sim/metrics.hh"

namespace vpr::test
{

/** One stats-tree walk into a fresh record. */
inline MetricsRecord
statsOf(Core &core)
{
    MetricsRecord m;
    core.visitStats(m);
    return m;
}

} // namespace vpr::test

#endif // VPR_TESTS_SUPPORT_CORE_STATS_HH
