/**
 * @file
 * Dynamic instruction: one in-flight instance of a trace record with all
 * of its pipeline and rename state.
 *
 * The fields mirror Figure 2 of the paper: the instruction-queue entry
 * (opcode, destination tag, Src1/R1, Src2/R2) and the reorder-buffer
 * entry (logical destination, completed bit, previous virtual-physical
 * mapping) are all carried here; the IQ and ROB reference DynInsts
 * rather than duplicating the fields.
 *
 * DynInst itself keeps only the *cold* rename/ISA state. The hot
 * scalars the cycle loop hammers — phase, sequence number, scheduler
 * residency flags, the pipeline cycle stamps, the last hold verdict —
 * live in the packed InstHotPool (inst_hot.hh), indexed by ROB slot;
 * the accessors below forward there so call sites stay readable.
 * Rob::allocate() binds an instruction to its slot; a DynInst is never
 * meaningfully copied once bound (the binding identifies a storage
 * slot, not a value).
 */

#ifndef VPR_CORE_DYN_INST_HH
#define VPR_CORE_DYN_INST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "core/inst_hot.hh"
#include "isa/static_inst.hh"

namespace vpr
{

/** One renamed source operand (Src/R fields of Figure 2). */
struct SrcOperand
{
    std::uint16_t tag = kNoReg; ///< phys reg if ready, else wakeup tag
    RegClass cls = RegClass::Int;
    bool valid = false;         ///< operand exists
    bool ready = false;         ///< R bit: value readable at issue
};

struct ReadyRef;

/** An in-flight instruction (the cold half; hot state in InstHotPool). */
struct DynInst
{
    StaticInst si;
    bool wrongPath = false;     ///< fetched past a mispredicted branch

    // --- hot-state binding ----------------------------------------------
    /** The packed hot-state row of this instruction: pool + ROB slot.
     *  Bound by Rob::allocate() (tests bind explicitly). */
    InstHotPool *hot = nullptr;
    HotIdx slot = kNoHotIdx;

    void
    bindHot(InstHotPool *pool, HotIdx idx)
    {
        hot = pool;
        slot = idx;
    }

    /** Hot-state accessors: forward to the pool row. @{ */
    InstSeqNum seq() const { return hot->seqOf(slot); }
    void setSeq(InstSeqNum s) { hot->setSeq(slot, s); }
    InstPhase phase() const { return hot->phaseOf(slot); }
    void setPhase(InstPhase p) { hot->setPhase(slot, p); }
    bool inIq() const { return hot->isInIq(slot); }
    void setInIq(bool b) { hot->setInIq(slot, b); }
    bool inReadyQ() const { return hot->isInReadyQ(slot); }
    void setInReadyQ(bool b) { hot->setInReadyQ(slot, b); }
    LoadHold lastHold() const { return hot->lastHoldOf(slot); }
    void setLastHold(LoadHold h) { hot->setLastHold(slot, h); }
    Cycle fetchCycle() const { return hot->fetchCycleOf(slot); }
    void setFetchCycle(Cycle c) { hot->setFetchCycle(slot, c); }
    Cycle renameCycle() const { return hot->renameCycleOf(slot); }
    void setRenameCycle(Cycle c) { hot->setRenameCycle(slot, c); }
    Cycle issueCycle() const { return hot->issueCycleOf(slot); }
    void setIssueCycle(Cycle c) { hot->setIssueCycle(slot, c); }
    Cycle completeCycle() const { return hot->completeCycleOf(slot); }
    void setCompleteCycle(Cycle c) { hot->setCompleteCycle(slot, c); }
    Cycle commitCycle() const { return hot->commitCycleOf(slot); }
    void setCommitCycle(Cycle c) { hot->setCommitCycle(slot, c); }
    /** @} */

    // --- rename state -------------------------------------------------
    SrcOperand src[kMaxSrcRegs];
    /** Tag consumers wake up on: the physical register in the
     *  conventional scheme, the VP register in the VP schemes. */
    std::uint16_t wakeupTag = kNoReg;
    /** VP register of the destination (VP schemes only). */
    VPRegId vpReg = kNoReg;
    /** Physical destination register. Conventional: set at rename.
     *  VP: set at issue or write-back depending on the policy. */
    PhysRegId physReg = kNoReg;
    /** Previous mapping of the logical destination (phys reg in the
     *  conventional scheme, VP reg in the VP schemes); freed when this
     *  instruction commits, restored if it squashes. */
    std::uint16_t prevTag = kNoReg;

    // --- pipeline state (cold remainder) --------------------------------
    bool mispredictedBranch = false;
    unsigned executions = 0;    ///< times issued (re-execution counter)

    // --- memory state (LSQ) -------------------------------------------
    bool addrReady = false;     ///< effective address computed
    Cycle addrReadyCycle = kNoCycle;
    bool storeForwarded = false; ///< load got data from an older store

    bool hasDest() const { return si.hasDest(); }
    RegClass destClass() const { return si.dest.regClass(); }
    bool isLoad() const { return si.isLoad(); }
    bool isStore() const { return si.isStore(); }
    bool isMem() const { return si.isMem(); }
    bool isBranch() const { return si.isBranch(); }

    /** All source operands ready (instruction may be selected). */
    bool
    operandsReady() const
    {
        for (const auto &s : src)
            if (s.valid && !s.ready)
                return false;
        return true;
    }

    /**
     * Operands needed to *issue*. Stores split like the PA-8000: the
     * address part (src[1], the base register) issues as soon as it is
     * ready; the data (src[0]) may arrive later and only gates
     * completion.
     */
    bool
    issueOperandsReady() const
    {
        if (isStore())
            return !src[1].valid || src[1].ready;
        return operandsReady();
    }

    /** A scheduler record of this instruction (defined below). */
    inline ReadyRef ref();

    /** Debug rendering: seq, phase and disassembly. */
    std::string toString() const;
};

/**
 * A published/parked scheduler entry (IQ ready list, issue-stage stall
 * lists, LSQ hold subscriptions, parked stores): @p inst is valid while
 * the instruction is still resident with the recorded sequence number.
 * The record carries the hot-pool slot so the lazy-staleness check
 * reads only the packed arrays — a stale entry never touches the
 * DynInst. The explicit constructor forces every construction site to
 * supply the slot (no silent aggregate zero-init).
 */
struct ReadyRef
{
    DynInst *inst = nullptr;
    InstSeqNum seq = 0;
    HotIdx slot = kNoHotIdx;

    ReadyRef() = default;
    ReadyRef(DynInst *i, InstSeqNum s, HotIdx sl)
        : inst(i), seq(s), slot(sl)
    {
    }
};

inline ReadyRef
DynInst::ref()
{
    return ReadyRef(this, seq(), slot);
}

} // namespace vpr

#endif // VPR_CORE_DYN_INST_HH
